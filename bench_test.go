package hyperdrive

// Benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (regenerating the figure end-to-end via
// internal/figures at reduced scale), plus micro-benchmarks of the
// performance-critical kernels (learning-curve MCMC fits, POP's ERT
// and slot-allocation math, the simulator engine, the synthetic
// trainers, and the wire protocol).
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate a single figure at paper scale instead with the CLI:
//
//	go run ./cmd/hdbench -fig fig7 -scale full

import (
	"fmt"
	mrand "math/rand"
	"net"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/core"
	"github.com/hyperdrive-ml/hyperdrive/internal/curve"
	"github.com/hyperdrive-ml/hyperdrive/internal/figures"
	"github.com/hyperdrive-ml/hyperdrive/internal/param"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
	"github.com/hyperdrive-ml/hyperdrive/internal/sim"
	"github.com/hyperdrive-ml/hyperdrive/internal/trace"
	"github.com/hyperdrive-ml/hyperdrive/internal/wire"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// benchFigure regenerates one figure per iteration.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := figures.Run(id, figures.Options{Scale: "fast", Seed: int64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per paper table/figure ------------------------------

func BenchmarkFig1CurveSweep(b *testing.B)         { benchFigure(b, "fig1") }
func BenchmarkFig2aAccuracyCDF(b *testing.B)       { benchFigure(b, "fig2a") }
func BenchmarkFig2bOvertake(b *testing.B)          { benchFigure(b, "fig2b") }
func BenchmarkFig2cPrediction(b *testing.B)        { benchFigure(b, "fig2c") }
func BenchmarkFig3PredictionOverTime(b *testing.B) { benchFigure(b, "fig3") }
func BenchmarkFig4SlotAllocation(b *testing.B)     { benchFigure(b, "fig4ab") }
func BenchmarkFig4cPromisingRatio(b *testing.B)    { benchFigure(b, "fig4c") }
func BenchmarkFig6JobDurations(b *testing.B)       { benchFigure(b, "fig6") }
func BenchmarkFig7TimeToTargetSL(b *testing.B)     { benchFigure(b, "fig7") }
func BenchmarkOverheadSupervised(b *testing.B)     { benchFigure(b, "overhead-sl") }
func BenchmarkFig8RLCurves(b *testing.B)           { benchFigure(b, "fig8") }
func BenchmarkFig9TimeToTargetRL(b *testing.B)     { benchFigure(b, "fig9") }
func BenchmarkFig10RLOverhead(b *testing.B)        { benchFigure(b, "fig10") }
func BenchmarkFig12aSimValidation(b *testing.B)    { benchFigure(b, "fig12a") }
func BenchmarkFig12bResourceSweep(b *testing.B)    { benchFigure(b, "fig12b") }
func BenchmarkFig12cOrderSensitivity(b *testing.B) { benchFigure(b, "fig12c") }
func BenchmarkHeadlineSpeedup(b *testing.B)        { benchFigure(b, "headline") }

// --- ablation benchmarks (DESIGN.md §6) --------------------------------

func BenchmarkAblationMCMCBudget(b *testing.B)      { benchFigure(b, "ablation-mcmc") }
func BenchmarkAblationInstantAccuracy(b *testing.B) { benchFigure(b, "ablation-instant") }
func BenchmarkAblationStaticThreshold(b *testing.B) { benchFigure(b, "ablation-threshold") }
func BenchmarkAblationOverlapPrediction(b *testing.B) {
	benchFigure(b, "ablation-overlap")
}
func BenchmarkAblationKillThreshold(b *testing.B) { benchFigure(b, "ablation-kill") }

// --- kernel micro-benchmarks -------------------------------------------

// benchObservations builds a realistic 30-epoch accuracy prefix.
func benchObservations(n int) []float64 {
	spec := workload.CIFAR10()
	cfg := param.Config{
		"learning_rate": 3e-3, "lr_gamma": 0.95, "lr_step": 10, "momentum": 0.9,
		"weight_decay": 4e-4, "batch_size": 128, "conv1_filters": 64,
		"conv2_filters": 64, "conv3_filters": 64, "fc_size": 256,
		"init_std": 0.01, "dropout": 0.2, "pool_type": 0, "lr_policy": 1,
	}
	prof := workload.NewCIFAR10Profile(spec.Space(), cfg, 1)
	out := make([]float64, n)
	for e := 1; e <= n; e++ {
		out[e-1] = prof.AccuracyAt(e)
	}
	return out
}

// BenchmarkCurveFitFast measures one learning-curve posterior fit at
// the sweep budget (30 walkers x 120 iterations).
func BenchmarkCurveFitFast(b *testing.B) {
	p := curve.MustPredictor(curve.FastConfig())
	obs := benchObservations(30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Fit(obs, 120, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCurveFitPaper measures the paper's production budget
// (100 walkers x 700 iterations, §5.2).
func BenchmarkCurveFitPaper(b *testing.B) {
	p := curve.MustPredictor(curve.PaperConfig())
	obs := benchObservations(30)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Fit(obs, 120, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPosteriorProbAtLeast measures the P(m, y) query cost.
func BenchmarkPosteriorProbAtLeast(b *testing.B) {
	p := curve.MustPredictor(curve.FastConfig())
	post, err := p.Fit(benchObservations(30), 120, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post.ProbAtLeast(120, 0.77)
	}
}

// BenchmarkEstimateERT measures the §3.1.1 expected-remaining-time
// computation over a 120-epoch horizon.
func BenchmarkEstimateERT(b *testing.B) {
	prob := func(m int) float64 {
		v := float64(m) / 150
		if v > 0.95 {
			v = 0.95
		}
		return v
	}
	for i := 0; i < b.N; i++ {
		core.EstimateERT("j", prob, 20, 120, time.Minute, 10*time.Hour)
	}
}

// BenchmarkAllocateSlots measures the desired/deserved argmax over 100
// active configurations.
func BenchmarkAllocateSlots(b *testing.B) {
	ests := make([]core.Estimate, 100)
	for i := range ests {
		ests[i] = core.Estimate{
			JobID:      fmt.Sprintf("job-%03d", i),
			Confidence: float64(i%20) / 20,
			ERT:        time.Duration(i) * time.Minute,
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.AllocateSlots(ests, 15, 1)
	}
}

// BenchmarkWorkloadStep measures one synthetic training epoch.
func BenchmarkWorkloadStep(b *testing.B) {
	spec := workload.CIFAR10()
	cfgs := []param.Config{spec.Space().Sample(newRandSource(1))}
	tr := spec.New(cfgs[0], 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, done := tr.Step(); done {
			tr = spec.New(cfgs[0], 1)
		}
	}
}

// BenchmarkTraceCollect measures full-trace generation for one config.
func BenchmarkTraceCollect(b *testing.B) {
	spec := workload.CIFAR10()
	cfg := spec.Space().Sample(newRandSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Collect(spec, []param.Config{cfg}, []int64{int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimDefaultPolicy measures the discrete-event engine
// replaying 20 configs on 4 machines under the Default policy (pure
// engine throughput; no MCMC).
func BenchmarkSimDefaultPolicy(b *testing.B) {
	tr := benchTrace(b, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(sim.Options{Trace: tr, Machines: 4, Policy: policy.NewDefault()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimPOP measures a full POP simulation (engine + kill rules +
// MCMC fits + slot allocation) on 20 configs.
func BenchmarkSimPOP(b *testing.B) {
	tr := benchTrace(b, 20)
	pcfg := curve.Config{Walkers: 12, Iters: 60, BurnFrac: 0.5, MaxSamples: 200, StretchA: 2, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pop, err := policy.NewPOP(policy.POPOptions{Predictor: pcfg})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(sim.Options{Trace: tr, Machines: 4, Policy: pop, StopAtTarget: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireRoundTrip measures one stat message over a TCP loopback
// connection (the scheduler-agent hot path).
func BenchmarkWireRoundTrip(b *testing.B) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		nc, err := l.Accept()
		if err != nil {
			return
		}
		conn := wire.NewConn(nc)
		for {
			msg, err := conn.Recv()
			if err != nil {
				return
			}
			if err := conn.Send(msg); err != nil {
				return
			}
		}
	}()
	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	conn := wire.NewConn(nc)
	payload := wire.AppStatPayload{JobID: "job-001", Epoch: 42, Metric: 0.71, Dur0nsec: int64(time.Minute)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := conn.SendTyped(wire.MsgAppStat, payload); err != nil {
			b.Fatal(err)
		}
		if _, err := conn.Recv(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	nc.Close()
	<-done
}

// --- helpers -----------------------------------------------------------

var benchTraceCache = map[int]*trace.Trace{}

func benchTrace(b *testing.B, n int) *trace.Trace {
	b.Helper()
	if tr, ok := benchTraceCache[n]; ok {
		return tr
	}
	spec := workload.CIFAR10()
	rng := newRandSource(7)
	cfgs := make([]param.Config, n)
	seeds := make([]int64, n)
	for i := range cfgs {
		cfgs[i] = spec.Space().Sample(rng)
		seeds[i] = int64(i)
	}
	tr, err := trace.Collect(spec, cfgs, seeds)
	if err != nil {
		b.Fatal(err)
	}
	benchTraceCache[n] = tr
	return tr
}

// newRandSource returns a seeded *rand.Rand (kept here to avoid
// polluting the package namespace).
func newRandSource(seed int64) *mrand.Rand { return mrand.New(mrand.NewSource(seed)) }

// --- extension benchmarks (§8/§9 features) -----------------------------

func BenchmarkExtDynamicTarget(b *testing.B) { benchFigure(b, "ext-dynamic-target") }
func BenchmarkExtSHAComparison(b *testing.B) { benchFigure(b, "ext-sha") }
func BenchmarkExtUtilization(b *testing.B)   { benchFigure(b, "ext-utilization") }
func BenchmarkExtCalibration(b *testing.B)   { benchFigure(b, "ext-calibration") }
