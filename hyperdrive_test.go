package hyperdrive

import (
	"context"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/clock"
	"github.com/hyperdrive-ml/hyperdrive/internal/param"
)

// newSpace builds a one-knob space for the custom-workload test.
func newSpace() (*ParamSpace, error) {
	return param.NewSpace(param.Param{Name: "k", Kind: param.Uniform, Min: 0.05, Max: 0.3})
}

func fastClk() clock.Clock {
	return clock.NewScaled(time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC), 200000)
}

func TestWorkloadsAndPolicies(t *testing.T) {
	w := Workloads()
	if len(w) != 2 || w[0] != "cifar10" || w[1] != "lunarlander" {
		t.Fatalf("Workloads = %v", w)
	}
	p := Policies()
	if len(p) != 5 {
		t.Fatalf("Policies = %v", p)
	}
}

func TestRunExperimentDefaults(t *testing.T) {
	res, err := RunExperiment(context.Background(), ExperimentConfig{
		Workload: "cifar10",
		Policy:   "default",
		Machines: 2,
		MaxJobs:  3,
		Clock:    fastClk(),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions != 3 {
		t.Fatalf("completions = %d, want 3", res.Completions)
	}
}

func TestRunExperimentValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := RunExperiment(ctx, ExperimentConfig{Workload: "nope", Machines: 1, MaxJobs: 1}); err == nil {
		t.Fatal("accepted unknown workload")
	}
	if _, err := RunExperiment(ctx, ExperimentConfig{Policy: "nope", Machines: 1, MaxJobs: 1}); err == nil {
		t.Fatal("accepted unknown policy")
	}
	if _, err := RunExperiment(ctx, ExperimentConfig{Generator: "nope", Machines: 1, MaxJobs: 1}); err == nil {
		t.Fatal("accepted unknown generator")
	}
	if _, err := RunExperiment(ctx, ExperimentConfig{PredictorBudget: "nope", Machines: 1, MaxJobs: 1}); err == nil {
		t.Fatal("accepted unknown predictor budget")
	}
	if _, err := RunExperiment(ctx, ExperimentConfig{CheckpointMode: "nope", Machines: 1, MaxJobs: 1}); err == nil {
		t.Fatal("accepted unknown checkpoint mode")
	}
}

func TestCollectTraceAndSimulate(t *testing.T) {
	tr, err := CollectTrace("cifar10", 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 6 {
		t.Fatalf("trace jobs = %d", len(tr.Jobs))
	}
	res, err := RunSimulation(SimConfig{Trace: tr, Policy: "bandit", Machines: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration <= 0 {
		t.Fatalf("sim duration = %v", res.Duration)
	}
}

func TestRunSimulationValidation(t *testing.T) {
	if _, err := RunSimulation(SimConfig{}); err == nil {
		t.Fatal("accepted empty SimConfig")
	}
	tr, err := CollectTrace("cifar10", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSimulation(SimConfig{Trace: tr, Policy: "nope", Machines: 1}); err == nil {
		t.Fatal("accepted unknown policy")
	}
}

func TestRunExperimentCustomPolicy(t *testing.T) {
	pop, err := NewPOP(POPOptions{Predictor: CurveConfig{Walkers: 8, Iters: 30, BurnFrac: 0.5, MaxSamples: 100, StretchA: 2, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunExperiment(context.Background(), ExperimentConfig{
		Workload:     "cifar10",
		CustomPolicy: pop,
		Machines:     2,
		MaxJobs:      5,
		Clock:        fastClk(),
		Seed:         2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminations+res.Completions == 0 {
		t.Fatal("nothing finished")
	}
}

func TestCustomWorkloadThroughFacade(t *testing.T) {
	space, err := func() (*ParamSpace, error) {
		return paramSpace()
	}()
	if err != nil {
		t.Fatal(err)
	}
	spec, err := NewCustomWorkload(WorkloadOptions{
		Name:         "ramp",
		Space:        space,
		MetricMax:    1,
		Target:       0.8,
		EvalBoundary: 5,
		MaxEpoch:     20,
		Curve: func(cfg ParamConfig, seed int64) (func(int) float64, func(int) time.Duration) {
			k := cfg.Get("k", 0.1)
			return func(e int) float64 { return 1 - 1/(1+k*float64(e)) },
				func(int) time.Duration { return 30 * time.Second }
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewWorkloadRegistry()
	reg.Register(spec)
	res, err := RunExperiment(context.Background(), ExperimentConfig{
		Workload: "ramp",
		Policy:   "default",
		Registry: reg,
		Machines: 2,
		MaxJobs:  3,
		Clock:    fastClk(),
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions != 3 {
		t.Fatalf("completions = %d", res.Completions)
	}
}

// paramSpace builds a one-knob space for the custom-workload test.
func paramSpace() (*ParamSpace, error) {
	return newSpace()
}

func TestRunSimulationSHA(t *testing.T) {
	tr, err := CollectTrace("cifar10", 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunSimulation(SimConfig{Trace: tr, Policy: "sha", Machines: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminations == 0 {
		t.Fatal("sha terminated nothing through the facade")
	}
}

func TestRunExperimentGPGenerator(t *testing.T) {
	res, err := RunExperiment(context.Background(), ExperimentConfig{
		Workload:  "cifar10",
		Policy:    "default",
		Generator: "gp",
		Machines:  2,
		MaxJobs:   4,
		Clock:     fastClk(),
		Seed:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions != 4 {
		t.Fatalf("completions = %d", res.Completions)
	}
}
