// Package stats provides the small set of descriptive statistics the
// experiment harness needs: summaries (mean/std/min/max), percentiles
// and five-number boxplot summaries (Figures 7 and 9), empirical CDFs
// (Figures 2a, 6, 10, 12c), and the min-max reward normalization from
// §6.3 of the paper.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that need at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	s.Median = Percentile(xs, 50)
	return s, nil
}

// Mean returns the arithmetic mean, or NaN for an empty sample.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the sample standard deviation (n-1 denominator), or 0 for
// samples of size < 2.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. It does not mutate xs. Returns
// NaN for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Box is a five-number summary plus the mean, matching the boxplots of
// Figures 7 and 9.
type Box struct {
	Min  float64
	Q1   float64
	Med  float64
	Q3   float64
	Max  float64
	Mean float64
}

// BoxSummary computes the five-number summary of xs.
func BoxSummary(xs []float64) (Box, error) {
	if len(xs) == 0 {
		return Box{}, ErrEmpty
	}
	return Box{
		Min:  Percentile(xs, 0),
		Q1:   Percentile(xs, 25),
		Med:  Percentile(xs, 50),
		Q3:   Percentile(xs, 75),
		Max:  Percentile(xs, 100),
		Mean: Mean(xs),
	}, nil
}

// String renders the box as "min/q1/med/q3/max (mean)".
func (b Box) String() string {
	return fmt.Sprintf("%.3g/%.3g/%.3g/%.3g/%.3g (mean %.3g)",
		b.Min, b.Q1, b.Med, b.Q3, b.Max, b.Mean)
}

// Spread is Max - Min, the stability measure the paper reports for
// time-to-target (e.g., POP's spread is ~2x smaller in §6.2.2).
func (b Box) Spread() float64 { return b.Max - b.Min }

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	X float64 // sample value
	P float64 // fraction of samples <= X
}

// ECDF returns the empirical CDF of xs as a step function evaluated at
// each distinct sample value.
func ECDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var out []CDFPoint
	n := float64(len(sorted))
	for i := 0; i < len(sorted); {
		j := i
		//hdlint:ignore floateq the ECDF steps at exactly-repeated sample values; near-equal samples are distinct steps by definition
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		out = append(out, CDFPoint{X: sorted[i], P: float64(j) / n})
		i = j
	}
	return out
}

// CDFAt evaluates the empirical CDF of xs at x: the fraction of samples
// <= x.
func CDFAt(xs []float64, x float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	count := 0
	for _, v := range xs {
		if v <= x {
			count++
		}
	}
	return float64(count) / float64(len(xs))
}

// Normalizer performs the min-max reward scaling of §6.3 Eq. (4):
// r_norm = (r - rmin) / (rmax - rmin). The paper uses rmin = -500
// (observed empirically) and rmax = 300 (set by the environment).
type Normalizer struct {
	Min float64
	Max float64
}

// NewNormalizer builds a Normalizer; max must exceed min.
func NewNormalizer(min, max float64) (Normalizer, error) {
	if max <= min {
		return Normalizer{}, fmt.Errorf("stats: normalizer max %v <= min %v", max, min)
	}
	return Normalizer{Min: min, Max: max}, nil
}

// Normalize maps r into [0, 1], clamping values outside [Min, Max].
func (n Normalizer) Normalize(r float64) float64 {
	v := (r - n.Min) / (n.Max - n.Min)
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Denormalize is the inverse of Normalize for values in [0, 1].
func (n Normalizer) Denormalize(v float64) float64 {
	return n.Min + v*(n.Max-n.Min)
}

// MovingAverage returns the trailing moving average of xs with the
// given window; entry i averages xs[max(0,i-window+1) .. i]. Used for
// the RL "solved" condition (mean reward over 100 consecutive trials).
func MovingAverage(xs []float64, window int) []float64 {
	if window < 1 {
		window = 1
	}
	out := make([]float64, len(xs))
	var sum float64
	for i, x := range xs {
		sum += x
		if i >= window {
			sum -= xs[i-window]
		}
		n := window
		if i+1 < window {
			n = i + 1
		}
		out[i] = sum / float64(n)
	}
	return out
}
