package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 || !almostEqual(s.Mean, 5, 1e-12) {
		t.Fatalf("mean = %v, want 5", s.Mean)
	}
	// Sample std of this classic dataset is sqrt(32/7).
	if want := math.Sqrt(32.0 / 7.0); !almostEqual(s.Std, want, 1e-12) {
		t.Fatalf("std = %v, want %v", s.Std, want)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v, want 2/9", s.Min, s.Max)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestMeanStdEdge(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
	if Std([]float64{5}) != 0 {
		t.Fatal("Std of single sample should be 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {10, 1.4}, {-5, 1}, {110, 5},
	}
	for _, tt := range tests {
		if got := Percentile(xs, tt.p); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Fatal("Percentile of empty should be NaN")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestBoxSummary(t *testing.T) {
	b, err := BoxSummary([]float64{1, 2, 3, 4, 100})
	if err != nil {
		t.Fatal(err)
	}
	if b.Min != 1 || b.Max != 100 || b.Med != 3 {
		t.Fatalf("box = %+v", b)
	}
	if b.Spread() != 99 {
		t.Fatalf("spread = %v, want 99", b.Spread())
	}
	if b.String() == "" {
		t.Fatal("empty String()")
	}
	if _, err := BoxSummary(nil); err != ErrEmpty {
		t.Fatal("BoxSummary(nil) should fail")
	}
}

func TestECDF(t *testing.T) {
	pts := ECDF([]float64{3, 1, 2, 2})
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1.0}}
	if len(pts) != len(want) {
		t.Fatalf("ECDF = %v, want %v", pts, want)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("ECDF[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
	if ECDF(nil) != nil {
		t.Fatal("ECDF(nil) should be nil")
	}
}

func TestECDFProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		pts := ECDF(xs)
		// Monotone in both coordinates, ends at 1.
		for i := 1; i < len(pts); i++ {
			if pts[i].X <= pts[i-1].X || pts[i].P < pts[i-1].P {
				return false
			}
		}
		return almostEqual(pts[len(pts)-1].P, 1, 1e-12)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFAt(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CDFAt(xs, 2.5); got != 0.5 {
		t.Fatalf("CDFAt(2.5) = %v, want 0.5", got)
	}
	if got := CDFAt(xs, 0); got != 0 {
		t.Fatalf("CDFAt(0) = %v, want 0", got)
	}
	if !math.IsNaN(CDFAt(nil, 1)) {
		t.Fatal("CDFAt(empty) should be NaN")
	}
}

func TestNormalizer(t *testing.T) {
	n, err := NewNormalizer(-500, 300)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		give, want float64
	}{
		{-500, 0}, {300, 1}, {-100, 0.5}, {-1000, 0}, {999, 1},
	}
	for _, tt := range tests {
		if got := n.Normalize(tt.give); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Normalize(%v) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestNormalizerRejectsBadRange(t *testing.T) {
	if _, err := NewNormalizer(1, 1); err == nil {
		t.Fatal("NewNormalizer accepted max <= min")
	}
}

func TestNormalizerRoundTrip(t *testing.T) {
	n, _ := NewNormalizer(-500, 300)
	prop := func(v float64) bool {
		u := math.Mod(math.Abs(v), 1)
		return almostEqual(n.Normalize(n.Denormalize(u)), u, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMovingAverage(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	got := MovingAverage(xs, 2)
	want := []float64{1, 1.5, 2.5, 3.5, 4.5}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("MovingAverage[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMovingAverageWindowClamp(t *testing.T) {
	got := MovingAverage([]float64{4, 6}, 0)
	if got[0] != 4 || got[1] != 6 {
		t.Fatalf("window 0 should act as window 1, got %v", got)
	}
}

func TestMovingAverageSolvedCondition(t *testing.T) {
	// 150 rewards of 200 => moving average over 100 reaches 200.
	xs := make([]float64, 150)
	for i := range xs {
		xs[i] = 200
	}
	ma := MovingAverage(xs, 100)
	if ma[len(ma)-1] != 200 {
		t.Fatalf("moving average = %v, want 200", ma[len(ma)-1])
	}
}

func TestPercentileMatchesSortedMedian(t *testing.T) {
	prop := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(99)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 100
		}
		med := Percentile(xs, 50)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		if n%2 == 1 {
			return almostEqual(med, sorted[n/2], 1e-9)
		}
		return almostEqual(med, (sorted[n/2-1]+sorted[n/2])/2, 1e-9)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
