package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealNowAdvances(t *testing.T) {
	c := NewReal()
	a := c.Now()
	c.Sleep(time.Millisecond)
	if !c.Now().After(a) {
		t.Fatal("real clock did not advance")
	}
}

func TestRealSince(t *testing.T) {
	c := NewReal()
	start := c.Now()
	c.Sleep(2 * time.Millisecond)
	if got := c.Since(start); got < time.Millisecond {
		t.Fatalf("Since = %v, want >= 1ms", got)
	}
}

func TestScaledSpeedsUpSleep(t *testing.T) {
	epoch := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	c := NewScaled(epoch, 1000)
	wallStart := time.Now()
	c.Sleep(time.Second) // should block ~1ms of wall time
	if wall := time.Since(wallStart); wall > 500*time.Millisecond {
		t.Fatalf("scaled sleep took %v wall time, want ~1ms", wall)
	}
	if sim := c.Since(epoch); sim < time.Second {
		t.Fatalf("simulated elapsed = %v, want >= 1s", sim)
	}
}

func TestScaledDefaultsBadFactor(t *testing.T) {
	c := NewScaled(time.Unix(0, 0), -5)
	if c.factor != 1 {
		t.Fatalf("factor = %v, want 1 for non-positive input", c.factor)
	}
}

func TestScaledAfter(t *testing.T) {
	c := NewScaled(time.Unix(0, 0), 1e6)
	select {
	case <-c.After(time.Minute):
	case <-time.After(2 * time.Second):
		t.Fatal("scaled After never fired")
	}
}

func TestVirtualNow(t *testing.T) {
	start := time.Unix(100, 0)
	v := NewVirtual(start)
	if !v.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", v.Now(), start)
	}
	v.Advance(time.Hour)
	if want := start.Add(time.Hour); !v.Now().Equal(want) {
		t.Fatalf("Now = %v, want %v", v.Now(), want)
	}
}

func TestVirtualSleepWakesOnAdvance(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		v.Sleep(10 * time.Second)
		close(done)
	}()
	// Wait until the sleeper registers.
	for v.PendingWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	v.Advance(9 * time.Second)
	select {
	case <-done:
		t.Fatal("sleeper woke before its deadline")
	case <-time.After(10 * time.Millisecond):
	}
	v.Advance(2 * time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("sleeper did not wake after deadline")
	}
}

func TestVirtualSleepNonPositive(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		v.Sleep(0)
		v.Sleep(-time.Second)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("non-positive sleeps should return immediately")
	}
}

func TestVirtualAfterOrdering(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	c1 := v.After(time.Second)
	c2 := v.After(3 * time.Second)
	v.Advance(2 * time.Second)
	select {
	case <-c1:
	case <-time.After(time.Second):
		t.Fatal("1s waiter not woken by 2s advance")
	}
	select {
	case <-c2:
		t.Fatal("3s waiter woken too early")
	default:
	}
	v.Advance(2 * time.Second)
	select {
	case <-c2:
	case <-time.After(time.Second):
		t.Fatal("3s waiter not woken by 4s total advance")
	}
}

func TestVirtualNextDeadline(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	if _, ok := v.NextDeadline(); ok {
		t.Fatal("NextDeadline should report none on fresh clock")
	}
	v.After(5 * time.Second)
	v.After(2 * time.Second)
	d, ok := v.NextDeadline()
	if !ok {
		t.Fatal("NextDeadline should report a deadline")
	}
	if want := time.Unix(2, 0); !d.Equal(want) {
		t.Fatalf("NextDeadline = %v, want %v", d, want)
	}
}

func TestVirtualManyConcurrentSleepers(t *testing.T) {
	v := NewVirtual(time.Unix(0, 0))
	const n = 100
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		d := time.Duration(i+1) * time.Millisecond
		go func() {
			defer wg.Done()
			v.Sleep(d)
		}()
	}
	for v.PendingWaiters() < n {
		time.Sleep(time.Millisecond)
	}
	v.Advance(time.Second)
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatalf("not all sleepers woke; %d still pending", v.PendingWaiters())
	}
}
