// Package clock abstracts time so that experiments can run against the
// wall clock, a scaled-down wall clock (for demos that compress hours of
// training into seconds), or a fully virtual clock (for deterministic
// tests and the discrete-event simulator).
package clock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock is the time source used by the scheduler, node agents, and
// workload trainers. Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks the calling goroutine for d of this clock's time.
	Sleep(d time.Duration)
	// After returns a channel that delivers the clock's time once d has
	// elapsed on this clock.
	After(d time.Duration) <-chan time.Time
	// Since returns the time elapsed on this clock since t.
	Since(t time.Time) time.Duration
}

// Real is the wall clock.
type Real struct{}

// NewReal returns a Clock backed by the system wall clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// Scaled is a wall clock that runs faster than real time by a constant
// factor: sleeping for one simulated minute on a Scaled clock with
// Factor 600 blocks for 100ms of wall time. Now() reports simulated
// time (epoch + elapsed-wall-time x factor), so durations measured with
// it are in simulated units.
type Scaled struct {
	epoch  time.Time
	start  time.Time
	factor float64
}

// NewScaled returns a clock whose time advances factor times faster than
// the wall clock, starting from epoch. Factor must be positive.
func NewScaled(epoch time.Time, factor float64) *Scaled {
	if factor <= 0 {
		factor = 1
	}
	return &Scaled{epoch: epoch, start: time.Now(), factor: factor}
}

// Now implements Clock.
func (s *Scaled) Now() time.Time {
	wall := time.Since(s.start)
	return s.epoch.Add(time.Duration(float64(wall) * s.factor))
}

// Sleep implements Clock.
func (s *Scaled) Sleep(d time.Duration) {
	time.Sleep(time.Duration(float64(d) / s.factor))
}

// After implements Clock.
func (s *Scaled) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	go func() {
		s.Sleep(d)
		ch <- s.Now()
	}()
	return ch
}

// Since implements Clock.
func (s *Scaled) Since(t time.Time) time.Duration { return s.Now().Sub(t) }

// Virtual is a manually advanced clock for deterministic tests and the
// discrete-event simulator. Goroutines blocked in Sleep/After wake when
// Advance moves time past their deadline.
type Virtual struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
}

// NewVirtual returns a virtual clock set to start.
func NewVirtual(start time.Time) *Virtual {
	return &Virtual{now: start}
}

// Now implements Clock.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep implements Clock. It blocks until Advance moves the clock past
// the deadline. Sleeping for a non-positive duration returns
// immediately.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	<-v.After(d)
}

// After implements Clock.
func (v *Virtual) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	v.mu.Lock()
	defer v.mu.Unlock()
	deadline := v.now.Add(d)
	if d <= 0 {
		ch <- v.now //hdlint:ignore locksafe ch is freshly made with buffer 1; the send cannot block
		return ch
	}
	heap.Push(&v.waiters, &waiter{deadline: deadline, ch: ch})
	return ch
}

// Since implements Clock.
func (v *Virtual) Since(t time.Time) time.Duration { return v.Now().Sub(t) }

// Advance moves the clock forward by d, waking every sleeper whose
// deadline has passed, in deadline order.
func (v *Virtual) Advance(d time.Duration) {
	v.mu.Lock()
	v.now = v.now.Add(d)
	now := v.now
	var due []*waiter
	for v.waiters.Len() > 0 && !v.waiters[0].deadline.After(now) {
		due = append(due, heap.Pop(&v.waiters).(*waiter))
	}
	v.mu.Unlock()
	for _, w := range due {
		w.ch <- now
	}
}

// PendingWaiters reports how many sleepers are currently blocked.
func (v *Virtual) PendingWaiters() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.waiters.Len()
}

// NextDeadline returns the earliest pending wake-up time, and false when
// no sleeper is blocked.
func (v *Virtual) NextDeadline() (time.Time, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.waiters.Len() == 0 {
		return time.Time{}, false
	}
	return v.waiters[0].deadline, true
}

type waiter struct {
	deadline time.Time
	ch       chan time.Time
	index    int
}

type waiterHeap []*waiter

func (h waiterHeap) Len() int            { return len(h) }
func (h waiterHeap) Less(i, j int) bool  { return h[i].deadline.Before(h[j].deadline) }
func (h waiterHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i]; h[i].index = i; h[j].index = j }
func (h *waiterHeap) Push(x interface{}) { w := x.(*waiter); w.index = len(*h); *h = append(*h, w) }
func (h *waiterHeap) Pop() interface{} {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

var (
	_ Clock = Real{}
	_ Clock = (*Scaled)(nil)
	_ Clock = (*Virtual)(nil)
)
