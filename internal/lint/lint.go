package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer checks one invariant and reports findings through the
// Reporter. Exactly one of Run (single-package analysis) or RunGraph
// (whole-program analysis over the module call graph, still invoked and
// reported per package so suppression directives resolve locally) is
// set.
type Analyzer struct {
	Name     string
	Doc      string
	Run      func(p *Package, report Reporter)
	RunGraph func(g *CallGraph, p *Package, report Reporter)
}

// Reporter records one diagnostic at pos.
type Reporter func(pos token.Pos, format string, args ...any)

// Finding is one diagnostic, post suppression filtering.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// DirectiveName is the analyzer name under which directive-hygiene
// diagnostics (missing reason, unknown analyzer, unused suppression)
// are reported. It is not suppressible.
const DirectiveName = "hdlint"

// directive is one parsed //hdlint:ignore comment.
type directive struct {
	pos       token.Position // of the comment
	analyzers []string
	reason    string
	used      bool
}

// coversLine reports whether the directive suppresses findings on the
// given line of its file: its own line (trailing comment) and the line
// immediately after (comment above the offending statement).
func (d *directive) coversLine(line int) bool {
	return line == d.pos.Line || line == d.pos.Line+1
}

const directivePrefix = "//hdlint:ignore"

// parseDirectives extracts //hdlint:ignore directives from a file.
// Malformed directives are reported immediately and excluded.
func parseDirectives(fset *token.FileSet, f *ast.File, known map[string]bool, report Reporter) []*directive {
	var ds []*directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, directivePrefix)
			if !ok {
				continue
			}
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //hdlint:ignorance — not ours
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				report(c.Pos(), "hdlint:ignore directive is missing an analyzer name and a reason")
				continue
			}
			names := strings.Split(fields[0], ",")
			bad := false
			for _, n := range names {
				if !known[n] {
					report(c.Pos(), "hdlint:ignore names unknown analyzer %q", n)
					bad = true
				}
			}
			if bad {
				continue
			}
			reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
			if reason == "" {
				report(c.Pos(), "hdlint:ignore %s needs a reason — state why the invariant does not apply here", fields[0])
				continue
			}
			ds = append(ds, &directive{
				pos:       fset.Position(c.Pos()),
				analyzers: names,
				reason:    reason,
			})
		}
	}
	return ds
}

// Run executes the analyzers over every package selected by match
// (nil = all), applies suppression directives, flags unused
// directives, and returns findings sorted by position.
func (m *Module) Run(analyzers []*Analyzer, match func(*Package) bool) []Finding {
	known := make(map[string]bool, len(analyzers))
	needGraph := false
	for _, a := range analyzers {
		known[a.Name] = true
		if a.RunGraph != nil {
			needGraph = true
		}
	}
	var graph *CallGraph
	if needGraph {
		graph = NewCallGraph(m)
	}

	var findings []Finding
	for _, p := range m.Pkgs {
		if match != nil && !match(p) {
			continue
		}

		// Parse this package's directives. Hygiene problems are
		// findings in their own right.
		var dirs []*directive
		for _, f := range p.Files {
			dirs = append(dirs, parseDirectives(m.Fset, f, known, func(pos token.Pos, format string, args ...any) {
				findings = append(findings, Finding{
					Analyzer: DirectiveName,
					Pos:      m.Fset.Position(pos),
					Message:  fmt.Sprintf(format, args...),
				})
			})...)
		}

		suppressed := func(name string, pos token.Position) bool {
			hit := false
			for _, d := range dirs {
				if d.pos.Filename != pos.Filename || !d.coversLine(pos.Line) {
					continue
				}
				for _, n := range d.analyzers {
					if n == name {
						d.used = true
						hit = true
					}
				}
			}
			return hit
		}

		for _, a := range analyzers {
			name := a.Name
			rep := func(pos token.Pos, format string, args ...any) {
				position := m.Fset.Position(pos)
				if suppressed(name, position) {
					return
				}
				findings = append(findings, Finding{
					Analyzer: name,
					Pos:      position,
					Message:  fmt.Sprintf(format, args...),
				})
			}
			if a.RunGraph != nil {
				a.RunGraph(graph, p, rep)
			} else {
				a.Run(p, rep)
			}
		}

		for _, d := range dirs {
			if !d.used {
				findings = append(findings, Finding{
					Analyzer: DirectiveName,
					Pos:      d.pos,
					Message: fmt.Sprintf("hdlint:ignore %s suppresses nothing — remove the stale directive",
						strings.Join(d.analyzers, ",")),
				})
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// All returns the full analyzer suite in reporting order: the five
// single-package analyzers from the original suite, then the
// whole-program and interprocedural additions.
func All() []*Analyzer {
	return []*Analyzer{
		DetClock,
		MetricNames,
		LockSafe,
		ErrAlways,
		FloatEq,
		DetTaint,
		Exhaustive,
		LockSafe2,
		SpanPair,
	}
}

// hasPathSuffix reports whether pkgPath ends in suffix on a path
// boundary ("a/b/internal/sim" matches "internal/sim"; "internal/simx"
// does not).
func hasPathSuffix(pkgPath, suffix string) bool {
	return pkgPath == suffix || strings.HasSuffix(pkgPath, "/"+suffix)
}
