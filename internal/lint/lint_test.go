package lint

import (
	"fmt"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches golden expectations in fixture comments:
//
//	code // want "substring of the finding"
//	// want+1 "substring"   (expectation for the next line)
//
// The quoted text must be a substring of "analyzer: message".
var wantRe = regexp.MustCompile(`want(\+1)? "([^"]+)"`)

func loadFixtures(t *testing.T) *Module {
	t.Helper()
	mod, err := LoadModule("testdata/src")
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	if mod.Path != "fixture.example/lint" {
		t.Fatalf("fixture module path = %q", mod.Path)
	}
	for _, p := range mod.Pkgs {
		for _, e := range p.TypeErrors {
			t.Errorf("fixture %s: type error: %v", p.PkgPath, e)
		}
	}
	return mod
}

// TestFixtures runs the whole suite over the fixture module and checks
// the findings exactly against the // want comments: every finding
// must be expected, and every expectation must fire. Honored
// suppressions are verified implicitly from both directions — a
// suppression that leaks produces an unexpected finding, and one that
// suppresses nothing produces a stale-directive finding.
func TestFixtures(t *testing.T) {
	mod := loadFixtures(t)

	type want struct {
		pat     string
		matched bool
	}
	wants := make(map[string][]*want) // "file:line" -> expectations
	for _, p := range mod.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := mod.Fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						line := pos.Line
						if m[1] == "+1" {
							line++
						}
						key := fmt.Sprintf("%s:%d", pos.Filename, line)
						wants[key] = append(wants[key], &want{pat: m[2]})
					}
				}
			}
		}
	}
	if len(wants) == 0 {
		t.Fatal("no // want expectations found in fixtures")
	}

	for _, f := range mod.Run(All(), nil) {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, w := range wants[key] {
			if strings.Contains(f.Analyzer+": "+f.Message, w.pat) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no finding matching %q", key, w.pat)
			}
		}
	}
}

// TestFixtureCoverage asserts every analyzer demonstrates at least one
// caught violation and ships at least one suppression directive in the
// fixtures (TestFixtures proves those directives are honored: a stale
// one would surface as an unexpected hdlint finding).
func TestFixtureCoverage(t *testing.T) {
	mod := loadFixtures(t)

	caught := make(map[string]int)
	for _, f := range mod.Run(All(), nil) {
		caught[f.Analyzer]++
	}
	directives := make(map[string]int)
	for _, p := range mod.Pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if rest, ok := strings.CutPrefix(c.Text, directivePrefix+" "); ok {
						if fields := strings.Fields(rest); len(fields) > 0 {
							for _, n := range strings.Split(fields[0], ",") {
								directives[n]++
							}
						}
					}
				}
			}
		}
	}
	for _, a := range All() {
		if caught[a.Name] == 0 {
			t.Errorf("analyzer %s: no fixture violation caught", a.Name)
		}
		if directives[a.Name] == 0 {
			t.Errorf("analyzer %s: no fixture suppression directive", a.Name)
		}
	}
	if caught[DirectiveName] == 0 {
		t.Error("no directive-hygiene findings caught")
	}
}

// TestDetTaintSeesWhatDetClockMisses pins the tentpole's reason to
// exist: the fixture's indirect wall-clock leak (a deterministic
// package calling a helper package whose chain reaches time.Now) is
// invisible to detclock alone and caught by dettaint.
func TestDetTaintSeesWhatDetClockMisses(t *testing.T) {
	mod := loadFixtures(t)
	simOnly := func(p *Package) bool {
		return p.PkgPath == "fixture.example/lint/internal/sim"
	}
	const leakFile = "dettaint.go"

	// Directives naming analyzers outside the one-analyzer run surface
	// as hdlint hygiene findings; keep only the analyzer's own findings
	// in the leak file.
	inLeakFile := func(fs []Finding, analyzer string) []Finding {
		var out []Finding
		for _, f := range fs {
			if f.Analyzer == analyzer && strings.HasSuffix(f.Pos.Filename, leakFile) {
				out = append(out, f)
			}
		}
		return out
	}

	if leaks := inLeakFile(mod.Run([]*Analyzer{DetClock}, simOnly), DetClock.Name); len(leaks) != 0 {
		t.Fatalf("detclock alone sees the indirect leak — dettaint is redundant: %v", leaks)
	}
	leaks := inLeakFile(mod.Run([]*Analyzer{DetTaint}, simOnly), DetTaint.Name)
	if len(leaks) == 0 {
		t.Fatal("dettaint missed the fixture's indirect wall-clock leak")
	}
	foundClock := false
	for _, f := range leaks {
		if strings.Contains(f.Message, "reaches time.Now") && strings.Contains(f.Message, "timeutil.Stamp") {
			foundClock = true
			if !strings.Contains(f.Message, " -> ") {
				t.Errorf("finding lacks a witness chain: %s", f)
			}
		}
	}
	if !foundClock {
		t.Fatalf("no dettaint finding names the time.Now chain; got: %v", leaks)
	}
}

// TestMatch exercises the package-pattern matcher against the fixture
// module.
func TestMatch(t *testing.T) {
	mod := loadFixtures(t)
	cases := []struct {
		patterns []string
		pkg      string
		want     bool
	}{
		{nil, "fixture.example/lint/internal/sim", true},
		{[]string{"./..."}, "fixture.example/lint/internal/sim", true},
		{[]string{"./internal/..."}, "fixture.example/lint/internal/sim", true},
		{[]string{"./internal/..."}, "fixture.example/lint/server", false},
		{[]string{"./internal/sim"}, "fixture.example/lint/internal/sim", true},
		{[]string{"./internal/sim"}, "fixture.example/lint/internal/obs", false},
		{[]string{"internal/obs"}, "fixture.example/lint/internal/obs", true},
		{[]string{"fixture.example/lint/server"}, "fixture.example/lint/server", true},
		{[]string{"./server", "./floats"}, "fixture.example/lint/floats", true},
	}
	for _, c := range cases {
		match, err := mod.Match(mod.Root, c.patterns)
		if err != nil {
			t.Fatalf("Match(%v): %v", c.patterns, err)
		}
		p := &Package{PkgPath: c.pkg}
		if got := match(p); got != c.want {
			t.Errorf("Match(%v) on %s = %v, want %v", c.patterns, c.pkg, got, c.want)
		}
	}
}
