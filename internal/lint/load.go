// Package lint is a stdlib-only static-analysis framework for the
// hyperdrive tree, plus the five domain analyzers behind cmd/hdlint.
//
// It deliberately avoids golang.org/x/tools: packages are discovered
// by walking the module, parsed with go/parser, and type-checked with
// go/types using a source importer for the standard library and the
// already-checked in-module packages for everything else. That is
// slower than a driver built on export data, but it keeps the repo's
// no-external-dependency rule intact and is fast enough for a gate
// that runs once per check.sh invocation.
package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one non-test package of the module under analysis.
type Package struct {
	// PkgPath is the full import path (module path + relative dir).
	PkgPath string
	// Dir is the absolute directory the package was loaded from.
	Dir   string
	Files []*ast.File
	// Pkg and Info are the type-checked package and its use/def/selection
	// tables. Type checking is lenient: errors are collected into
	// TypeErrors instead of aborting, so analyzers must tolerate
	// missing type info on broken code.
	Pkg        *types.Package
	Info       *types.Info
	TypeErrors []error

	imports []string
}

// Module is a fully loaded and type-checked Go module.
type Module struct {
	Root string // absolute module root (directory holding go.mod)
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package // dependency (topological) order

	byPath map[string]*Package
}

// LoadModule locates the module containing dir, parses every non-test
// file of every package outside testdata/vendor, and type-checks the
// packages in dependency order.
func LoadModule(dir string) (*Module, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:   root,
		Path:   modPath,
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package),
	}
	if err := m.parse(); err != nil {
		return nil, err
	}
	m.typecheck()
	return m, nil
}

// findModule walks up from dir to the nearest go.mod.
func findModule(dir string) (root, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			mp := parseModulePath(data)
			if mp == "" {
				return "", "", fmt.Errorf("lint: no module directive in %s", filepath.Join(d, "go.mod"))
			}
			return d, mp, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

func parseModulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			rest = strings.TrimSpace(rest)
			rest = strings.Trim(rest, `"`)
			if rest != "" {
				return rest
			}
		}
	}
	return ""
}

// parse walks the module tree and parses every buildable package.
func (m *Module) parse() error {
	err := filepath.WalkDir(m.Root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != m.Root {
			if name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			// A nested module is a separate unit; don't absorb it.
			if _, err := os.Stat(filepath.Join(p, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		return m.parseDir(p)
	})
	if err != nil {
		return err
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].PkgPath < m.Pkgs[j].PkgPath })
	return nil
}

func (m *Module) parseDir(dir string) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	var files []*ast.File
	var imports []string
	seenImp := make(map[string]bool)
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if !seenImp[ip] {
				seenImp[ip] = true
				imports = append(imports, ip)
			}
		}
	}
	if len(files) == 0 {
		return nil
	}
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil {
		return err
	}
	pkgPath := m.Path
	if rel != "." {
		pkgPath = path.Join(m.Path, filepath.ToSlash(rel))
	}
	p := &Package{PkgPath: pkgPath, Dir: dir, Files: files, imports: imports}
	m.Pkgs = append(m.Pkgs, p)
	m.byPath[pkgPath] = p
	return nil
}

// typecheck type-checks all packages in dependency order. In-module
// imports resolve to the already-checked *types.Package; everything
// else goes through the source importer (stdlib from GOROOT).
func (m *Module) typecheck() {
	imp := &moduleImporter{
		m:     m,
		src:   importer.ForCompiler(m.Fset, "source", nil).(types.ImporterFrom),
		cache: make(map[string]*types.Package),
	}
	for _, p := range m.topoOrder() {
		p.Info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				p.TypeErrors = append(p.TypeErrors, err)
			},
		}
		// Check never returns a usable error here: with an Error hook
		// installed it soldiers on and still produces a (possibly
		// incomplete) package, which is what lenient analyzers want.
		pkg, _ := conf.Check(p.PkgPath, m.Fset, p.Files, p.Info)
		p.Pkg = pkg
	}
}

// topoOrder returns packages so that every in-module import precedes
// its importer. Cycles (illegal in Go anyway) fall back to the input
// order for the offending packages.
func (m *Module) topoOrder() []*Package {
	order := make([]*Package, 0, len(m.Pkgs))
	state := make(map[*Package]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(p *Package)
	visit = func(p *Package) {
		if state[p] != 0 {
			return
		}
		state[p] = 1
		for _, ip := range p.imports {
			if dep := m.byPath[ip]; dep != nil && state[dep] == 0 {
				visit(dep)
			}
		}
		state[p] = 2
		order = append(order, p)
	}
	for _, p := range m.Pkgs {
		visit(p)
	}
	return order
}

// moduleImporter resolves imports during type checking: in-module
// packages come from the module itself, the rest from the source
// importer. Unresolvable imports yield an empty placeholder package so
// a single bad import degrades to per-identifier type errors instead
// of sinking the whole package.
type moduleImporter struct {
	m     *Module
	src   types.ImporterFrom
	cache map[string]*types.Package
}

func (imp *moduleImporter) Import(path string) (*types.Package, error) {
	return imp.ImportFrom(path, imp.m.Root, 0)
}

func (imp *moduleImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := imp.m.byPath[path]; p != nil && p.Pkg != nil {
		return p.Pkg, nil
	}
	if p, ok := imp.cache[path]; ok {
		return p, nil
	}
	p, err := imp.src.ImportFrom(path, imp.m.Root, 0)
	if err != nil || p == nil {
		p = types.NewPackage(path, packageBase(path))
		p.MarkComplete()
	}
	imp.cache[path] = p
	return p, nil
}

func packageBase(importPath string) string {
	base := path.Base(importPath)
	// Strip a major-version suffix (".../v2") if present.
	if strings.HasPrefix(base, "v") && len(base) > 1 && base[1] >= '0' && base[1] <= '9' {
		if parent := path.Base(path.Dir(importPath)); parent != "." && parent != "/" {
			return parent
		}
	}
	return base
}

// Match returns a predicate selecting packages named by the given
// go-style patterns, resolved against dir (typically the caller's
// working directory). Supported forms: "./...", "./x/...", "./x",
// "x/...", and full import paths. An empty pattern list selects the
// whole module.
func (m *Module) Match(dir string, patterns []string) (func(*Package) bool, error) {
	if len(patterns) == 0 {
		return func(*Package) bool { return true }, nil
	}
	type rule struct {
		prefix    string // import-path prefix ("" = module root)
		recursive bool
	}
	var rules []rule
	for _, pat := range patterns {
		rec := false
		if pat == "all" || pat == "..." {
			rules = append(rules, rule{recursive: true})
			continue
		}
		if strings.HasSuffix(pat, "/...") {
			rec = true
			pat = strings.TrimSuffix(pat, "/...")
		}
		var ip string
		if pat == "." || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "../") {
			abs, err := filepath.Abs(filepath.Join(dir, pat))
			if err != nil {
				return nil, err
			}
			rel, err := filepath.Rel(m.Root, abs)
			if err != nil || strings.HasPrefix(rel, "..") {
				return nil, fmt.Errorf("lint: pattern %q resolves outside module %s", pat, m.Path)
			}
			if rel != "." {
				ip = filepath.ToSlash(rel)
			}
		} else {
			// Treat as an import path, absolute or module-relative.
			ip = strings.TrimPrefix(pat, m.Path)
			ip = strings.TrimPrefix(ip, "/")
		}
		rules = append(rules, rule{prefix: ip, recursive: rec})
	}
	return func(p *Package) bool {
		rel := strings.TrimPrefix(strings.TrimPrefix(p.PkgPath, m.Path), "/")
		for _, r := range rules {
			if r.recursive {
				if r.prefix == "" || rel == r.prefix || strings.HasPrefix(rel, r.prefix+"/") {
					return true
				}
			} else if rel == r.prefix {
				return true
			}
		}
		return false
	}, nil
}
