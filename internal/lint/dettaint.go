package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetTaint is the transitive extension of detclock: starting from every
// function declared in a deterministic package, it follows the static
// call graph through the rest of the module and reports call sites
// whose callees eventually reach a wall-clock read, a global math/rand
// function, or an order-sensitive map iteration. detclock catches the
// direct call; dettaint catches the helper three packages away that
// detclock cannot see.
//
// Two package families terminate the traversal: internal/clock (the
// sanctioned time source — deterministic code is *supposed* to get
// there) and internal/obs (telemetry timestamps and span durations are
// observability payload, never replay-visible state).
var DetTaint = &Analyzer{
	Name: "dettaint",
	Doc: "forbid transitive reachability from deterministic packages to wall-clock reads, " +
		"global math/rand, and order-sensitive map iteration",
	RunGraph: runDetTaint,
}

// taintExemptPkgs terminate dettaint traversal (see DetTaint doc).
var taintExemptPkgs = []string{
	"internal/clock",
	"internal/obs",
}

func isTaintExemptPkg(pkgPath string) bool {
	for _, s := range taintExemptPkgs {
		if hasPathSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// taintInfo describes one witness path from a function to a
// nondeterminism sink: Sink is the human-readable sink, Chain the
// functions on the way there (nearest-first).
type taintInfo struct {
	Sink  string
	Chain []string
}

func runDetTaint(g *CallGraph, p *Package, report Reporter) {
	if !isDeterministicPkg(p.PkgPath) {
		return
	}
	for _, node := range g.SortedNodes(p) {
		// Order-sensitive map iteration directly in deterministic code.
		for _, rs := range node.MapRanges {
			if benignMapRange(p, node.Decl, rs) {
				continue
			}
			report(rs.Pos(), "map iteration order is nondeterministic across replays; "+
				"sort the keys first or rewrite the loop body into an order-insensitive form")
		}
		// Calls whose callee transitively reaches a sink.
		for _, site := range node.Calls {
			calleeNode := g.Nodes[site.Callee]
			if calleeNode == nil {
				continue // external (stdlib) callee; direct sinks are detclock's
			}
			if isDeterministicPkg(calleeNode.Pkg.PkgPath) {
				continue // analyzed in its own right when dettaint visits that package
			}
			if isTaintExemptPkg(calleeNode.Pkg.PkgPath) {
				continue
			}
			if ti := g.taintOf(site.Callee); ti != nil {
				report(site.Call.Pos(), "call to %s reaches %s (via %s); deterministic packages must "+
					"take time from internal/clock and randomness from an injected seeded *rand.Rand",
					FuncLabel(site.Callee), ti.Sink, strings.Join(ti.Chain, " -> "))
			}
		}
	}
}

// taintOf reports whether fn (a module function) can reach a
// nondeterminism sink, memoized on the graph. A nil result means clean.
func (g *CallGraph) taintOf(fn *types.Func) *taintInfo {
	if ti, done := g.taint[fn]; done {
		return ti
	}
	// Mark in-progress as clean so cycles terminate; the final result
	// overwrites this entry.
	g.taint[fn] = nil
	node := g.Nodes[fn]
	if node == nil {
		return nil
	}
	ti := g.computeTaint(node)
	g.taint[fn] = ti
	return ti
}

func (g *CallGraph) computeTaint(node *FuncNode) *taintInfo {
	label := FuncLabel(node.Fn)
	// Immediate sinks in this function's body.
	for _, site := range node.Calls {
		callee := site.Callee
		if callee.Pkg() == nil {
			continue
		}
		switch callee.Pkg().Path() {
		case "time":
			if why, bad := bannedTimeFuncs[callee.Name()]; bad && isPackageLevel(callee) {
				return &taintInfo{
					Sink:  "time." + callee.Name() + " (" + why + ")",
					Chain: []string{label, "time." + callee.Name()},
				}
			}
		case "math/rand", "math/rand/v2":
			if bannedRandFuncs[callee.Name()] && isPackageLevel(callee) {
				return &taintInfo{
					Sink:  "global rand." + callee.Name(),
					Chain: []string{label, "rand." + callee.Name()},
				}
			}
		}
	}
	for _, rs := range node.MapRanges {
		if !benignMapRange(node.Pkg, node.Decl, rs) {
			pos := g.Module.Fset.Position(rs.Pos())
			return &taintInfo{
				Sink:  "order-sensitive map iteration (" + trimRoot(g.Module, pos.Filename) + ")",
				Chain: []string{label},
			}
		}
	}
	// Transitive sinks through module callees.
	for _, site := range node.Calls {
		calleeNode := g.Nodes[site.Callee]
		if calleeNode == nil || isTaintExemptPkg(calleeNode.Pkg.PkgPath) {
			continue
		}
		if ti := g.taintOf(site.Callee); ti != nil {
			return &taintInfo{Sink: ti.Sink, Chain: append([]string{label}, ti.Chain...)}
		}
	}
	return nil
}

// isPackageLevel reports whether fn is a package-level function (not a
// method): time.Now is a sink, (time.Time).Sub is arithmetic.
func isPackageLevel(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil
}

// benignMapRange recognizes map iterations whose order cannot escape:
//
//   - the enclosing function sorts (any call into sort or slices),
//     which is the collect-keys-then-sort idiom; or
//   - every statement of the loop body is a plain assignment whose
//     targets are all map-index expressions (or blank), i.e. the loop
//     only builds another map, and map writes commute.
//
// Everything else — appends, accumulation, sends, calls — is treated as
// order-sensitive and reported.
func benignMapRange(p *Package, fd *ast.FuncDecl, rs *ast.RangeStmt) bool {
	if fd != nil && fd.Body != nil && containsSortCall(p, fd.Body) {
		return true
	}
	for _, s := range rs.Body.List {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if s.Tok != token.ASSIGN {
				return false
			}
			for _, lhs := range s.Lhs {
				if !isMapIndexOrBlank(p, lhs) {
					return false
				}
			}
		case *ast.ExprStmt:
			// delete(m, k) commutes with other deletes and writes.
			call, ok := s.X.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "delete" {
				return false
			}
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func isMapIndexOrBlank(p *Package, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name == "_"
	case *ast.IndexExpr:
		tv, ok := p.Info.Types[e.X]
		if !ok || tv.Type == nil {
			return false
		}
		_, isMap := tv.Type.Underlying().(*types.Map)
		return isMap
	}
	return false
}

func containsSortCall(p *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if fn := StaticCallee(p, call); fn != nil && fn.Pkg() != nil {
			switch fn.Pkg().Path() {
			case "sort", "slices":
				found = true
			}
		}
		return !found
	})
	return found
}

func trimRoot(m *Module, filename string) string {
	if rel, ok := strings.CutPrefix(filename, m.Root+"/"); ok {
		return rel
	}
	return filename
}
