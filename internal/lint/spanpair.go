package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanPair requires that a span obtained from an obs Tracer
// (Start/StartSpan) inside a function is finished on every path out of
// that function: either a Finish call that dominates each return, or a
// deferred Finish. A leaked span never reaches the flight recorder or
// the Chrome trace export, so the decision it was supposed to explain
// silently vanishes from every dashboard built on them.
//
// Spans that escape the function — stored into a struct or map, passed
// to another function, captured by a closure, returned, or sent on a
// channel — transfer ownership, and the analyzer assumes the new owner
// finishes them (the engine/agent long-lived-span idiom).
var SpanPair = &Analyzer{
	Name: "spanpair",
	Doc:  "every obs Tracer Start/StartSpan must be matched by Finish on all return paths (or ownership must escape)",
	Run:  runSpanPair,
}

func runSpanPair(p *Package, report Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				// Function literals own the spans they start; a span
				// started by an enclosing function and touched in here
				// is an escape from the encloser's point of view.
				body = n.Body
			default:
				return true
			}
			if body != nil {
				checkSpanPairs(p, body, report)
			}
			return true
		})
	}
}

// spanState tracks one function's span bookkeeping.
type spanState struct {
	p      *Package
	report Reporter
	// exempt spans escaped or have a deferred Finish.
	exempt map[types.Object]bool
	// reported dedupes findings per span variable.
	reported map[types.Object]bool
	starts   map[types.Object]token.Pos
}

func checkSpanPairs(p *Package, body *ast.BlockStmt, report Reporter) {
	st := &spanState{
		p:        p,
		report:   report,
		exempt:   make(map[types.Object]bool),
		reported: make(map[types.Object]bool),
		starts:   make(map[types.Object]token.Pos),
	}
	// Pass 1: find span starts in this body (not in nested literals —
	// those are analyzed as their own functions).
	walkShallow(body, func(n ast.Node) {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !isSpanStart(p, call) {
			return
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := p.Info.Defs[id]
		if obj == nil {
			obj = p.Info.Uses[id]
		}
		if obj != nil {
			st.starts[obj] = id.Pos()
		}
	})
	if len(st.starts) == 0 {
		return
	}
	// Pass 2: escapes and deferred finishes (this pass descends into
	// nested literals: a closure touching the span is an escape).
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if obj := finishArg(p, n.Call); obj != nil {
				st.exempt[obj] = true
			}
		case *ast.FuncLit:
			for obj := range st.starts {
				if usesObject(p, n, obj) {
					st.exempt[obj] = true
				}
			}
			return false
		case *ast.CallExpr:
			if finishArg(p, n) != nil {
				return true
			}
			for _, arg := range n.Args {
				if obj := identObject(p, arg); obj != nil && st.isSpan(obj) {
					st.exempt[obj] = true
				}
			}
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if _, ok := rhs.(*ast.CallExpr); ok {
					continue // the defining Start call itself
				}
				if obj := identObject(p, rhs); obj != nil && st.isSpan(obj) {
					st.exempt[obj] = true
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if obj := identObject(p, v); obj != nil && st.isSpan(obj) {
					st.exempt[obj] = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range n.Results {
				if obj := identObject(p, r); obj != nil && st.isSpan(obj) {
					st.exempt[obj] = true
				}
			}
		case *ast.SendStmt:
			if obj := identObject(p, n.Value); obj != nil && st.isSpan(obj) {
				st.exempt[obj] = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if obj := identObject(p, n.X); obj != nil && st.isSpan(obj) {
					st.exempt[obj] = true
				}
			}
		}
		return true
	})
	// Pass 3: path-sensitive finish check over the statement list.
	open, terminated := st.flow(body.List, make(map[types.Object]bool))
	if !terminated {
		for obj := range open {
			st.leak(obj)
		}
	}
}

func (st *spanState) isSpan(obj types.Object) bool {
	_, ok := st.starts[obj]
	return ok
}

func (st *spanState) leak(obj types.Object) {
	if st.exempt[obj] || st.reported[obj] {
		return
	}
	st.reported[obj] = true
	st.report(st.starts[obj], "span %s is not finished on every return path; call Finish before each return or defer it",
		obj.Name())
}

// flow walks stmts tracking the open-span set. It returns the spans
// still open at normal completion and whether every path through stmts
// terminates (returns or panics). Return statements report leaks
// directly.
func (st *spanState) flow(stmts []ast.Stmt, open map[types.Object]bool) (map[types.Object]bool, bool) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				if call, ok := s.Rhs[0].(*ast.CallExpr); ok && isSpanStart(st.p, call) {
					if id, ok := s.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						obj := st.p.Info.Defs[id]
						if obj == nil {
							obj = st.p.Info.Uses[id]
						}
						if obj != nil && st.isSpan(obj) && !st.exempt[obj] {
							open[obj] = true
						}
					}
				}
			}
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if obj := finishArg(st.p, call); obj != nil {
					delete(open, obj)
				}
				if isPanicCall(st.p, call) {
					return nil, true
				}
			}
		case *ast.ReturnStmt:
			for obj := range open {
				st.leak(obj)
			}
			return nil, true
		case *ast.IfStmt:
			thenOut, thenTerm := st.flow(s.Body.List, copyOpen(open))
			var elseOut map[types.Object]bool
			elseTerm := false
			if s.Else != nil {
				elseOut, elseTerm = st.flow([]ast.Stmt{s.Else}, copyOpen(open))
			} else {
				elseOut = open
			}
			if thenTerm && elseTerm {
				return nil, true
			}
			merged := make(map[types.Object]bool)
			if !thenTerm {
				for o := range thenOut {
					merged[o] = true
				}
			}
			if !elseTerm {
				for o := range elseOut {
					merged[o] = true
				}
			}
			open = merged
		case *ast.BlockStmt:
			var term bool
			open, term = st.flow(s.List, open)
			if term {
				return nil, true
			}
		case *ast.ForStmt:
			bodyOut, _ := st.flow(s.Body.List, copyOpen(open))
			// The loop may run zero times; merge both outcomes. An
			// unconditional for{} only exits via return/break — treat
			// conservatively as fall-through with the body's state.
			for o := range bodyOut {
				open[o] = true
			}
		case *ast.RangeStmt:
			bodyOut, _ := st.flow(s.Body.List, copyOpen(open))
			for o := range bodyOut {
				open[o] = true
			}
		case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
			open = st.flowSwitch(s, open)
		case *ast.LabeledStmt:
			var term bool
			open, term = st.flow([]ast.Stmt{s.Stmt}, open)
			if term {
				return nil, true
			}
		}
	}
	return open, false
}

// flowSwitch merges the branches of switch/type-switch/select bodies.
func (st *spanState) flowSwitch(s ast.Stmt, open map[types.Object]bool) map[types.Object]bool {
	var body *ast.BlockStmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		body = s.Body
	case *ast.TypeSwitchStmt:
		body = s.Body
	case *ast.SelectStmt:
		body = s.Body
	}
	merged := make(map[types.Object]bool)
	allTerm := true
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			stmts = c.Body
			if c.List == nil {
				hasDefault = true
			}
		case *ast.CommClause:
			stmts = c.Body
			if c.Comm == nil {
				hasDefault = true
			}
		}
		out, term := st.flow(stmts, copyOpen(open))
		if !term {
			allTerm = false
			for o := range out {
				merged[o] = true
			}
		}
	}
	if !hasDefault || !allTerm {
		// Some path skips the switch (or a branch falls through).
		for o := range open {
			merged[o] = true
		}
	}
	return merged
}

func copyOpen(open map[types.Object]bool) map[types.Object]bool {
	c := make(map[types.Object]bool, len(open))
	for k := range open {
		c[k] = true
	}
	return c
}

// walkShallow visits nodes without descending into function literals.
func walkShallow(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// isSpanStart reports whether call invokes Start/StartSpan on an obs
// Tracer.
func isSpanStart(p *Package, call *ast.CallExpr) bool {
	fn := StaticCallee(p, call)
	if fn == nil || (fn.Name() != "Start" && fn.Name() != "StartSpan") {
		return false
	}
	return isTracerMethod(fn)
}

// finishArg returns the span variable object when call is
// Tracer.Finish(span), nil otherwise.
func finishArg(p *Package, call *ast.CallExpr) types.Object {
	fn := StaticCallee(p, call)
	if fn == nil || fn.Name() != "Finish" || !isTracerMethod(fn) || len(call.Args) != 1 {
		return nil
	}
	return identObject(p, call.Args[0])
}

func isTracerMethod(fn *types.Func) bool {
	if fn.Pkg() == nil || !hasPathSuffix(fn.Pkg().Path(), "internal/obs") {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Tracer"
}

func identObject(p *Package, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

func isPanicCall(p *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func usesObject(p *Package, n ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && (p.Info.Uses[id] == obj || p.Info.Defs[id] == obj) {
			found = true
		}
		return !found
	})
	return found
}
