package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// CallGraph is the whole-program static call graph of a loaded Module:
// one node per function or method declared in the module, with edges
// for every call whose callee resolves statically (direct calls and
// method calls on concrete receivers). Calls through function values
// and interface methods have no static callee; the node records that
// it contains dynamic calls so analyses can choose how conservative to
// be about them.
//
// Function literals are attributed to their enclosing declaration: a
// closure's calls become the declaration's calls. That over-approximates
// (a literal may never run, or run on another goroutine) but keeps
// taint analyses from going blind inside the worker-pool and callback
// idioms the hot paths are built from.
type CallGraph struct {
	Module *Module
	// Nodes maps each module-declared function to its graph node.
	Nodes map[*types.Func]*FuncNode

	// taint memoizes per-function determinism-taint results for
	// dettaint (nil entry = analyzed and clean).
	taint map[*types.Func]*taintInfo
}

// FuncNode is one declared function or method plus everything that
// happens in its body (including nested function literals).
type FuncNode struct {
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl

	// Calls are the statically resolved call sites, in source order.
	// Callees may be declared in the module (they have a node) or
	// outside it (stdlib, placeholder packages).
	Calls []CallSite
	// MapRanges are `range` statements over map-typed operands.
	MapRanges []*ast.RangeStmt
	// DynamicCalls are call sites whose callee could not be resolved
	// statically (function values, interface methods).
	DynamicCalls []token.Pos
}

// CallSite is one resolved call expression.
type CallSite struct {
	Call   *ast.CallExpr
	Callee *types.Func
}

// NewCallGraph builds the call graph for every package of the module.
func NewCallGraph(m *Module) *CallGraph {
	g := &CallGraph{
		Module: m,
		Nodes:  make(map[*types.Func]*FuncNode),
		taint:  make(map[*types.Func]*taintInfo),
	}
	for _, p := range m.Pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok && fd.Body != nil {
					g.addFunc(p, fd)
				}
			}
		}
	}
	return g
}

func (g *CallGraph) addFunc(p *Package, fd *ast.FuncDecl) {
	fn, ok := p.Info.Defs[fd.Name].(*types.Func)
	if !ok {
		return // broken code; lenient loading keeps going
	}
	node := &FuncNode{Fn: fn, Pkg: p, Decl: fd}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if callee := StaticCallee(p, n); callee != nil {
				node.Calls = append(node.Calls, CallSite{Call: n, Callee: callee})
			} else if !isTypeConversion(p, n) {
				node.DynamicCalls = append(node.DynamicCalls, n.Pos())
			}
		case *ast.RangeStmt:
			if tv, ok := p.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					node.MapRanges = append(node.MapRanges, n)
				}
			}
		}
		return true
	})
	g.Nodes[fn] = node
}

// StaticCallee resolves a call expression to the *types.Func it
// invokes, when that is statically known: package-level functions,
// methods on concrete receivers, and qualified identifiers. Interface
// method calls and calls through function values return nil.
func StaticCallee(p *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		// For method expressions and field selections Selections is
		// authoritative; Uses covers qualified package identifiers.
		if s, ok := p.Info.Selections[fun]; ok {
			if fn, ok := s.Obj().(*types.Func); ok {
				if isInterfaceMethod(fn) {
					return nil
				}
				return fn
			}
			return nil
		}
		obj = p.Info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || isInterfaceMethod(fn) {
		return nil
	}
	return fn
}

func isInterfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// isTypeConversion reports whether the call expression is actually a
// conversion (T(x)) or a builtin, neither of which is a dynamic call.
func isTypeConversion(p *Package, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch p.Info.Uses[fun].(type) {
		case *types.TypeName, *types.Builtin, nil:
			return true
		}
	case *ast.SelectorExpr:
		if _, ok := p.Info.Uses[fun.Sel].(*types.TypeName); ok {
			return true
		}
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.FuncType,
		*ast.InterfaceType, *ast.StructType, *ast.StarExpr, *ast.IndexExpr,
		*ast.IndexListExpr:
		return true
	}
	return false
}

// FuncLabel renders a function as pkg.Func or pkg.(Type).Method for
// diagnostics.
func FuncLabel(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

// SortedNodes returns the package's nodes in source order, for
// deterministic reporting.
func (g *CallGraph) SortedNodes(p *Package) []*FuncNode {
	var nodes []*FuncNode
	for _, n := range g.Nodes {
		if n.Pkg == p {
			nodes = append(nodes, n)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Decl.Pos() < nodes[j].Decl.Pos() })
	return nodes
}
