package lint

import (
	"go/ast"
	"go/types"
)

// MetricNames requires that the metric name handed to an internal/obs
// registry accessor (Counter, Gauge, Histogram) comes from internal/obs
// itself — a constant from names.go or one of its name-builder helpers
// (e.g. obs.DecisionsTotal("suspend")). Call-site string literals drift
// from the dashboard queries and silently fork the metric namespace.
var MetricNames = &Analyzer{
	Name: "metricnames",
	Doc:  "metric names passed to obs registry calls must be constants or helpers from internal/obs, not call-site literals",
	Run:  runMetricNames,
}

var registryAccessors = map[string]bool{
	"Counter":   true,
	"Gauge":     true,
	"Histogram": true,
}

func runMetricNames(p *Package, report Reporter) {
	// The obs package itself defines the names; it is exempt.
	if hasPathSuffix(p.PkgPath, "internal/obs") {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !registryAccessors[sel.Sel.Name] {
				return true
			}
			if !isObsRegistryMethod(p, sel) {
				return true
			}
			arg := call.Args[0]
			if obsOriginatedName(p, arg) {
				return true
			}
			if _, lit := arg.(*ast.BasicLit); lit {
				report(arg.Pos(), "metric name is a string literal; use a constant from internal/obs/names.go")
			} else {
				report(arg.Pos(), "metric name must come from internal/obs (a names.go constant or an obs helper)")
			}
			return true
		})
	}
}

// isObsRegistryMethod reports whether sel is a method selection on the
// obs Registry type.
func isObsRegistryMethod(p *Package, sel *ast.SelectorExpr) bool {
	s, ok := p.Info.Selections[sel]
	if !ok {
		return false
	}
	fn, ok := s.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || !hasPathSuffix(fn.Pkg().Path(), "internal/obs") {
		return false
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

// obsOriginatedName reports whether the expression's value is rooted in
// internal/obs: a constant declared there, or a call to a function
// declared there.
func obsOriginatedName(p *Package, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return obsOriginatedName(p, e.X)
	case *ast.Ident:
		return declaredInObs(p.Info.Uses[e])
	case *ast.SelectorExpr:
		return declaredInObs(p.Info.Uses[e.Sel])
	case *ast.CallExpr:
		switch fun := e.Fun.(type) {
		case *ast.Ident:
			return declaredInObs(p.Info.Uses[fun])
		case *ast.SelectorExpr:
			return declaredInObs(p.Info.Uses[fun.Sel])
		}
	}
	return false
}

func declaredInObs(obj types.Object) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.(type) {
	case *types.Const, *types.Func:
		return hasPathSuffix(obj.Pkg().Path(), "internal/obs")
	}
	return false
}
