package lint

import (
	"go/ast"
	"go/types"
)

// deterministicPkgs are the package-path suffixes whose behavior must
// be bit-for-bit reproducible across replays: the simulator, the
// curve-fitting predictor, the core POP allocator, the policies, and
// the synthetic-workload generator. Time inside them flows through
// internal/clock; randomness through an injected seeded *rand.Rand.
var deterministicPkgs = []string{
	"internal/sim",
	"internal/curve",
	"internal/core",
	"internal/policy",
	"internal/workload",
}

// bannedTimeFuncs are the package-level functions of "time" that read
// or wait on the wall clock.
var bannedTimeFuncs = map[string]string{
	"Now":       "reads the wall clock",
	"Since":     "reads the wall clock",
	"Until":     "reads the wall clock",
	"Sleep":     "blocks on the wall clock",
	"After":     "blocks on the wall clock",
	"Tick":      "ticks on the wall clock",
	"NewTicker": "ticks on the wall clock",
	"NewTimer":  "fires on the wall clock",
	"AfterFunc": "fires on the wall clock",
}

// bannedRandFuncs are the top-level math/rand functions backed by the
// process-global generator. Constructors (New, NewSource, NewZipf) are
// fine: they are how the injected seeded generator is built.
var bannedRandFuncs = map[string]bool{
	"Seed": true, "Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "NormFloat64": true, "ExpFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true,
}

// DetClock forbids wall-clock reads and global-generator randomness in
// the deterministic packages.
var DetClock = &Analyzer{
	Name: "detclock",
	Doc: "forbid time.Now/Since/Sleep and global math/rand functions in deterministic packages; " +
		"use internal/clock and an injected seeded *rand.Rand instead",
	Run: runDetClock,
}

func runDetClock(p *Package, report Reporter) {
	if !isDeterministicPkg(p.PkgPath) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := packageQualifier(p, sel)
			if !ok {
				return true
			}
			switch pkgPath {
			case "time":
				if why, bad := bannedTimeFuncs[sel.Sel.Name]; bad {
					report(sel.Pos(), "time.%s %s; deterministic packages must take time from internal/clock",
						sel.Sel.Name, why)
				}
			case "math/rand", "math/rand/v2":
				if bannedRandFuncs[sel.Sel.Name] {
					report(sel.Pos(), "global rand.%s is nondeterministic across replays; use an injected seeded *rand.Rand",
						sel.Sel.Name)
				}
			}
			return true
		})
	}
}

func isDeterministicPkg(pkgPath string) bool {
	for _, s := range deterministicPkgs {
		if hasPathSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// packageQualifier resolves sel's X to an imported package name and
// returns that package's import path.
func packageQualifier(p *Package, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	obj := p.Info.Uses[id]
	pn, ok := obj.(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
