package lint

import "testing"

// TestRepoIsClean is the self-check: the suite over the real module
// must report nothing. Deliberate exceptions carry //hdlint:ignore
// directives with rationale; anything else is a regression against the
// determinism, telemetry, lock, or durability invariants.
func TestRepoIsClean(t *testing.T) {
	mod, err := LoadModule(".")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if mod.Path != "github.com/hyperdrive-ml/hyperdrive" {
		t.Fatalf("resolved module %q; expected to load the hyperdrive repo", mod.Path)
	}
	for _, p := range mod.Pkgs {
		for _, e := range p.TypeErrors {
			t.Errorf("%s: type error: %v", p.PkgPath, e)
		}
	}
	for _, f := range mod.Run(All(), nil) {
		t.Errorf("%s", f)
	}
}
