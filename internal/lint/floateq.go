package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between floating-point expressions. Metric
// and loss values accumulate rounding error, so exact comparison is
// almost always a latent bug; compare against an epsilon or restructure
// the tie-break. Comparisons against compile-time constants (e.g. the
// `x == 0` unset-sentinel idiom) are allowed.
var FloatEq = &Analyzer{
	Name: "floateq",
	Doc:  "flag ==/!= between non-constant floating-point values (metric/loss comparisons need a tolerance)",
	Run:  runFloatEq,
}

func runFloatEq(p *Package, report Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			x, xOK := p.Info.Types[be.X]
			y, yOK := p.Info.Types[be.Y]
			if !xOK || !yOK || !isFloat(x.Type) || !isFloat(y.Type) {
				return true
			}
			// A constant operand (0, math.Inf(1) is not constant but
			// literals and consts are) marks a sentinel check, not an
			// arithmetic comparison.
			if x.Value != nil || y.Value != nil {
				return true
			}
			report(be.OpPos, "%s on floating-point values is unreliable; compare with a tolerance or restructure the tie-break",
				be.Op)
			return true
		})
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
