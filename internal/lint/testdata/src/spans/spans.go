// Package spans is the spanpair fixture.
package spans

import "fixture.example/lint/internal/obs"

type engine struct {
	tr  *obs.Tracer
	cur *obs.Span
}

// Bad: the early-return path leaks the span.
func leaky(tr *obs.Tracer, fail bool) bool {
	sp := tr.Start("fit", "job-1", 0) // want "span sp is not finished on every return path"
	if fail {
		return false
	}
	tr.Finish(sp)
	return true
}

// Good: a deferred Finish covers every path.
func deferred(tr *obs.Tracer, fail bool) bool {
	sp := tr.Start("fit", "job-1", 0)
	defer tr.Finish(sp)
	return fail
}

// Good: finished on both branches.
func bothPaths(tr *obs.Tracer, fail bool) bool {
	sp := tr.Start("fit", "job-1", 0)
	if fail {
		tr.Finish(sp)
		return false
	}
	tr.Finish(sp)
	return true
}

// Good: ownership escapes into the struct; finishAdopted closes it
// later (the engine/agent long-lived-span idiom).
func (e *engine) adopt() {
	sp := e.tr.Start("job", "job-2", 1)
	e.cur = sp
}

func (e *engine) finishAdopted() {
	if e.cur != nil {
		e.tr.Finish(e.cur)
		e.cur = nil
	}
}

// Suppressed: documented exception.
func suppressedLeak(tr *obs.Tracer) {
	//hdlint:ignore spanpair fixture demonstrating an honored suppression
	sp := tr.Start("orphan", "job-3", 2)
	sp.SetStr("k", "v")
}
