// Package logpkg defines an EventLog type; erralways targets its
// methods by type name, wherever the type lives.
package logpkg

type EventLog struct{}

func (l *EventLog) Append(kind string) error { return nil }
