module fixture.example/lint

go 1.22
