// Package server is the detclock negative case: it is not one of the
// deterministic packages, so wall-clock use is fine.
package server

import "time"

func Uptime(start time.Time) time.Duration { return time.Since(start) }
