// Package telemetry is the metricnames fixture.
package telemetry

import "fixture.example/lint/internal/obs"

func instrument(r *obs.Registry) {
	// Good: a names.go constant and an obs name-builder helper.
	r.Counter(obs.EpochsTotal)
	r.Counter(obs.DecisionsTotal("suspend"))
	r.Gauge(obs.StartsTotal)

	// Good: the runtime-health and flight-recorder names.
	r.Gauge(obs.GoGoroutines)
	r.Gauge(obs.GoHeapBytes)
	r.Histogram(obs.GoGCPauseSeconds)
	r.Counter(obs.FlightSpansDroppedTotal)

	// Good: the search-quality audit names.
	r.Counter(obs.QualityPredictionsTotal)
	r.Gauge(obs.QualityBrierScore)
	r.Gauge(obs.QualityBandCoverageRatio)
	r.Histogram(obs.QualityERTAbsErrorSeconds)
	r.Gauge(obs.QualityEarlyTermPrecision)

	// Good: the fleet observability family (hyperdrived).
	r.Gauge(obs.ServeHTTPInFlight)
	r.Histogram(obs.ServeFairshareAttainment)
	r.Gauge(obs.ServeStarvedLeases)
	r.Histogram(obs.ServeHTTPRequestSeconds("submit"))
	r.Gauge(obs.ServeLeaseHeld("alice"))
	r.Histogram(obs.ServeRetryAfterSeconds("alice"), 1, 5)

	// Bad: call-site literals and locally built names.
	r.Counter("hyperdrive_epochs_total") // want "metric name is a string literal"
	name := "hyperdrive_rogue_total"
	r.Gauge(name)                                   // want "metric name must come from internal/obs"
	r.Histogram("hyperdrive_latency_seconds", 1, 4) // want "metric name is a string literal"
	r.Gauge("hyperdrive_quality_brier_score")       // want "metric name is a string literal"
	serveName := `hyperdrive_serve_lease_held{tenant="bob"}`
	r.Gauge(serveName) // want "metric name must come from internal/obs"

	// Suppressed: documented exception.
	//hdlint:ignore metricnames fixture demonstrating an honored suppression
	r.Counter("hyperdrive_suppressed_total")
}
