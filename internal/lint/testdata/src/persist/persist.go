// Package persist is the erralways fixture.
package persist

import (
	"io"

	"fixture.example/lint/internal/appstat"
	"fixture.example/lint/internal/checkpoint"
	"fixture.example/lint/logpkg"
)

// Bad: every durability-critical error below is dropped.
func drop(db *appstat.DB, w io.Writer, l *logpkg.EventLog) {
	db.Save(w)                           // want "error returned by DB.Save is dropped"
	_ = db.Save(w)                       // want "error returned by DB.Save is assigned to _"
	checkpoint.Write(checkpoint.Image{}) // want "error returned by checkpoint.Write is dropped"
	l.Append("start")                    // want "error returned by EventLog.Append is dropped"
	_, _ = appstat.Load(nil)             // want "error returned by appstat.Load is assigned to _"
	defer db.Save(w)                     // want "error returned by DB.Save is dropped"
}

// Good: errors checked or propagated.
func checked(db *appstat.DB, w io.Writer, l *logpkg.EventLog) error {
	if err := db.Save(w); err != nil {
		return err
	}
	db2, err := appstat.Load(nil)
	if err != nil {
		return err
	}
	_ = db2
	return l.Append("stop")
}

// Suppressed: documented exception.
func suppressed(l *logpkg.EventLog) {
	//hdlint:ignore erralways fixture demonstrating an honored suppression
	l.Append("best-effort")
}
