// Package timeutil is the dettaint fixture's taint carrier: an
// innocent-looking helper package whose call chain bottoms out in the
// wall clock and the global RNG. detclock never looks here (it is not a
// deterministic package), which is exactly the blind spot dettaint
// exists to close.
package timeutil

import (
	"math/rand"
	"time"
)

// Stamp reads the wall clock directly.
func Stamp() int64 { return time.Now().UnixNano() }

// StampVia adds a hop so fixtures witness a multi-step chain.
func StampVia() int64 { return Stamp() }

// Jitter reaches the process-global RNG.
func Jitter() int { return rand.Intn(10) }

// Safe is a clean helper deterministic code may call freely.
func Safe(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
