// Package floats is the floateq fixture.
package floats

const eps = 1e-9

// Bad: exact comparison of computed floats.
func cmp(a, b float64) bool {
	if a == b { // want "== on floating-point values"
		return true
	}
	return a != b // want "!= on floating-point values"
}

// Good: constant sentinels, tolerances, and integer equality.
func fine(a, b float64, n, m int) bool {
	if a == 0 || b == eps {
		return false
	}
	return abs(a-b) < eps && n == m
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Suppressed: documented exception.
func suppressed(a, b float64) bool {
	//hdlint:ignore floateq fixture demonstrating an honored suppression
	return a == b
}
