// Package directives exercises the suppression directive's own
// hygiene diagnostics. Nothing in it violates a real analyzer; the
// directives themselves are the subject.
package directives

// A directive must carry a reason.
// want+1 "needs a reason"
//hdlint:ignore detclock

// A directive must name real analyzers.
//hdlint:ignore nosuchanalyzer made-up analyzer name // want "unknown analyzer"

// A directive that suppresses nothing is stale and flagged.
//
//hdlint:ignore floateq nothing on this or the next line trips floateq // want "suppresses nothing"
func noop(x int) int { return x + 1 }
