// Package locks is the locksafe fixture.
package locks

import (
	"encoding/json"
	"io"
	"sync"
)

type hub struct {
	mu  sync.Mutex
	ch  chan int
	cb  func()
	enc *json.Encoder
	w   io.Writer
}

// Bad: a send inside the critical section; fine once released.
func (h *hub) sendUnderLock() {
	h.mu.Lock()
	h.ch <- 1 // want "channel send while h.mu is held"
	h.mu.Unlock()
	h.ch <- 2
}

// Bad: a callback under a deferred unlock holds to function end.
func (h *hub) callbackUnderLock() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.cb() // want "call through function value cb"
}

// Bad: blocking I/O under the lock, via a method and a package func.
func (h *hub) ioUnderLock(rw *sync.RWMutex) {
	h.mu.Lock()
	err := h.enc.Encode(1) // want "json.Encode (blocking I/O) while h.mu is held"
	h.mu.Unlock()
	_ = err

	rw.RLock()
	io.WriteString(h.w, "x") // want "io.WriteString (blocking I/O) while rw is held"
	rw.RUnlock()
}

// Good: a literal defined (not invoked) under the lock runs later,
// outside the critical section.
func (h *hub) deferredWork() func() {
	h.mu.Lock()
	defer h.mu.Unlock()
	f := func() { h.ch <- 3 }
	return f
}

// Good: no lock held.
func (h *hub) freeSend() { h.ch <- 5 }

// Suppressed: documented exception.
func (h *hub) suppressedSend() {
	h.mu.Lock()
	//hdlint:ignore locksafe fixture demonstrating an honored suppression
	h.ch <- 4
	h.mu.Unlock()
}
