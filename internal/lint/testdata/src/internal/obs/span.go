package obs

// Span/Tracer mirror the real tracing API's shape so the spanpair
// fixtures exercise the same selection logic as the production tree.

type SpanContext struct {
	TraceID string
	SpanID  string
}

type Span struct {
	Name string
}

func (s *Span) SetStr(key, v string) {}

type Tracer struct{}

func (t *Tracer) Start(name, job string, epoch int) *Span { return &Span{Name: name} }

func (t *Tracer) StartSpan(name, job string, epoch int, parent SpanContext) *Span {
	return &Span{Name: name}
}

func (t *Tracer) Finish(s *Span) {}
