// Package obs mirrors the real registry's shape so the metricnames
// fixtures exercise the same selection logic as the production tree.
package obs

const (
	EpochsTotal = "hyperdrive_epochs_total"
	StartsTotal = "hyperdrive_job_starts_total"

	// Runtime-health names sampled by the runtime sampler.
	GoGoroutines     = "hyperdrive_go_goroutines"
	GoHeapBytes      = "hyperdrive_go_heap_bytes"
	GoGCPauseSeconds = "hyperdrive_go_gc_pause_seconds"
	// FlightSpansDroppedTotal mirrors the flight recorder's drop count.
	FlightSpansDroppedTotal = "hyperdrive_flight_spans_dropped_total"

	// Search-quality audit names exported by the quality trail.
	QualityPredictionsTotal   = "hyperdrive_quality_predictions_total"
	QualityBrierScore         = "hyperdrive_quality_brier_score"
	QualityBandCoverageRatio  = "hyperdrive_quality_band_coverage_ratio"
	QualityERTAbsErrorSeconds = "hyperdrive_quality_ert_abs_error_seconds"
	QualityEarlyTermPrecision = "hyperdrive_quality_early_term_precision"

	// Fleet observability names exported by hyperdrived.
	ServeHTTPInFlight        = "hyperdrive_serve_http_in_flight"
	ServeFairshareAttainment = "hyperdrive_serve_fairshare_attainment"
	ServeStarvedLeases       = "hyperdrive_serve_starved_leases"
)

// DecisionsTotal builds a per-verdict counter name.
func DecisionsTotal(d string) string { return "hyperdrive_decisions_" + d + "_total" }

// ServeHTTPRequestSeconds builds a per-route API latency name.
func ServeHTTPRequestSeconds(route string) string {
	return `hyperdrive_serve_http_request_seconds{route="` + route + `"}`
}

// ServeLeaseHeld builds a per-tenant lease-occupancy gauge name.
func ServeLeaseHeld(tenant string) string {
	return `hyperdrive_serve_lease_held{tenant="` + tenant + `"}`
}

// ServeRetryAfterSeconds builds a per-tenant backpressure histogram name.
func ServeRetryAfterSeconds(tenant string) string {
	return `hyperdrive_serve_retry_after_seconds{tenant="` + tenant + `"}`
}

type Counter struct{}

func (c *Counter) Inc() {}

type Gauge struct{}

func (g *Gauge) Set(v float64) {}

type Histogram struct{}

func (h *Histogram) Observe(v float64) {}

type Registry struct{}

func (r *Registry) Counter(name string) *Counter { return &Counter{} }

func (r *Registry) Gauge(name string) *Gauge { return &Gauge{} }

func (r *Registry) Histogram(name string, uppers ...float64) *Histogram { return &Histogram{} }
