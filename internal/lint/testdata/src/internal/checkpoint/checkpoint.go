// Package checkpoint mirrors the real checkpoint surface for the
// erralways fixtures.
package checkpoint

type Image struct{}

func Write(img Image) error { return nil }
