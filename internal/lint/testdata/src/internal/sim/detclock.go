// Package sim is a detclock fixture: its import path ends in
// internal/sim, so it is a deterministic package.
package sim

import (
	"math/rand"
	"time"
)

// Clock is the injected abstraction deterministic code must use.
type Clock interface {
	Now() time.Time
}

// Bad: wall-clock reads and waits.
func wallClock() time.Duration {
	t0 := time.Now()             // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep blocks on the wall clock"
	return time.Since(t0)        // want "time.Since reads the wall clock"
}

// Bad: waiting on a real timer.
func realTimer() <-chan time.Time {
	return time.After(time.Second) // want "time.After blocks on the wall clock"
}

// Bad: the process-global generator.
func globalRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want "global rand.Shuffle is nondeterministic"
	return rand.Intn(10)               // want "global rand.Intn is nondeterministic"
}

// Good: time through the injected clock, randomness through an owned
// seeded generator; constructing the generator is allowed.
func deterministic(c Clock, seed int64) (time.Time, int) {
	rng := rand.New(rand.NewSource(seed))
	return c.Now(), rng.Intn(10)
}

// Good: a deliberate exception, documented in-code.
func suppressed() time.Time {
	//hdlint:ignore detclock fixture demonstrating an honored suppression
	return time.Now()
}
