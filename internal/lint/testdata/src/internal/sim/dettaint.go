package sim

import (
	"sort"

	"fixture.example/lint/timeutil"
)

// Bad: the helper's chain reaches time.Now two calls away — detclock
// cannot see this, dettaint can.
func indirectWallClock() int64 {
	return timeutil.StampVia() // want "call to timeutil.StampVia reaches time.Now"
}

// Bad: the global RNG through a helper.
func indirectRand() int {
	return timeutil.Jitter() // want "reaches global rand.Intn"
}

// Bad: iteration order leaks into the accumulated result.
func sumMap(m map[string]float64) float64 {
	var total float64
	for _, v := range m { // want "map iteration order is nondeterministic across replays"
		total += v
	}
	return total
}

// Good: the collect-keys-then-sort idiom.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Good: a map-to-map fill commutes across orderings.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Good: helpers without a sink in their chain are fine to call.
func useSafe() int64 { return timeutil.Safe(1, 2) }

// Suppressed: documented exception.
func suppressedStamp() int64 {
	//hdlint:ignore dettaint fixture demonstrating an honored suppression
	return timeutil.StampVia()
}
