// Package appstat mirrors the real persistence surface for the
// erralways fixtures.
package appstat

import "io"

type DB struct{}

func (d *DB) Save(w io.Writer) error { return nil }

func Load(r io.Reader) (*DB, error) { return &DB{}, nil }
