// Package protocol is the exhaustive fixture: MsgKind mirrors the wire
// protocol's enum-like defined types (two or more package-level
// constants of exactly the defined type).
package protocol

type MsgKind string

const (
	KindStart MsgKind = "start"
	KindStop  MsgKind = "stop"
	KindPing  MsgKind = "ping"
)

type severity int

const (
	sevInfo severity = iota
	sevWarn
)

// Bad: KindPing falls through silently.
func route(k MsgKind) int {
	switch k { // want "switch over protocol.MsgKind is not exhaustive: missing KindPing"
	case KindStart:
		return 1
	case KindStop:
		return 2
	}
	return 0
}

// Good: every declared constant is covered.
func routeAll(k MsgKind) int {
	switch k {
	case KindStart, KindStop:
		return 1
	case KindPing:
		return 2
	}
	return 0
}

// Good: an explicit default declares the fallthrough deliberate.
func routeDefault(k MsgKind) int {
	switch k {
	case KindStart:
		return 1
	default:
		return 0
	}
}

// Good: switches over non-enum types are out of scope.
func classify(n int) string {
	switch n {
	case 0:
		return "zero"
	}
	return "other"
}

// Suppressed: documented exception.
func routeSuppressed(k severity) int {
	//hdlint:ignore exhaustive fixture demonstrating an honored suppression
	switch k {
	case sevInfo:
		return 1
	}
	return 0
}
