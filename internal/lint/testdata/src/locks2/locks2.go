// Package locks2 is the locksafe2 fixture: every line of every function
// here looks clean to locksafe, but the helpers' summaries block or
// re-acquire the caller's mutex.
package locks2

import (
	"encoding/json"
	"sync"
)

type store struct {
	mu  sync.Mutex
	enc *json.Encoder
	ch  chan int
}

// flush blocks: it JSON-encodes to an arbitrary writer.
func (s *store) flush() error { return s.enc.Encode(1) }

// notify blocks: channel send.
func (s *store) notify() { s.ch <- 1 }

// indirect hides the send one more call away.
func (s *store) indirect() { s.notify() }

// touch acquires the store's mutex.
func (s *store) touch() {
	s.mu.Lock()
	defer s.mu.Unlock()
}

// Bad: a blocking helper inside the critical section.
func (s *store) saveUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.flush() // want "call to flush while s.mu is held can block"
}

// Bad: the block arrives through a two-call chain.
func (s *store) chainUnderLock() {
	s.mu.Lock()
	s.indirect() // want "call to indirect while s.mu is held can block"
	s.mu.Unlock()
}

// Bad: the helper re-acquires the mutex the caller already holds.
func (s *store) relock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touch() // want "call to touch re-acquires s.mu"
}

// Good: the helper runs after release.
func (s *store) saveAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	_ = s.flush()
}

// Good: a literal defined under the lock runs later, elsewhere.
func (s *store) deferredFlush() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() { _ = s.flush() }
}

// Suppressed: documented exception.
func (s *store) suppressedFlush() {
	s.mu.Lock()
	//hdlint:ignore locksafe2 fixture demonstrating an honored suppression
	_ = s.flush()
	s.mu.Unlock()
}

// pool models the sharded slot-pool idiom: many small critical
// sections, one mutex per shard, with the shard picked by index
// expression — the lock names locksafe2 must track are "p.shards[i].mu",
// not a plain receiver field.
type pool struct {
	shards []shard
}

type shard struct {
	mu   sync.Mutex
	free []int
	enc  *json.Encoder
}

// pop is a leaf: free-list surgery only, no locks, no blocking. Safe
// inside any shard critical section.
func (sh *shard) pop() int {
	n := len(sh.free) - 1
	v := sh.free[n]
	sh.free = sh.free[:n]
	return v
}

// drain re-acquires the shard's own lock.
func (sh *shard) drain() {
	sh.mu.Lock()
	sh.free = sh.free[:0]
	sh.mu.Unlock()
}

// spill blocks: it JSON-encodes to an arbitrary writer.
func (sh *shard) spill() error { return sh.enc.Encode(sh.free) }

// Good: the per-shard critical section stays leaf-only.
func (p *pool) reserve(i int) int {
	p.shards[i].mu.Lock()
	defer p.shards[i].mu.Unlock()
	return p.shards[i].pop()
}

// Bad: a blocking helper inside a shard critical section stalls every
// caller hashed to that shard.
func (p *pool) spillUnderShardLock(i int) {
	p.shards[i].mu.Lock()
	defer p.shards[i].mu.Unlock()
	_ = p.shards[i].spill() // want "call to spill while p.shards[i].mu is held can block"
}

// Bad: the helper re-acquires the very shard lock the caller holds.
func (p *pool) drainUnderShardLock(i int) {
	p.shards[i].mu.Lock()
	defer p.shards[i].mu.Unlock()
	p.shards[i].drain() // want "call to drain re-acquires p.shards[i].mu"
}

// Good (by scope): draining another shard while holding this one is
// lock ordering, not a re-acquire; cross-shard deadlock discipline is
// the pool's contract, outside locksafe2's same-lock analysis.
func (p *pool) drainOther(i, j int) {
	p.shards[i].mu.Lock()
	defer p.shards[i].mu.Unlock()
	p.shards[j].drain()
}

// Suppressed: a documented exception on the shard idiom.
func (p *pool) suppressedSpill(i int) {
	p.shards[i].mu.Lock()
	//hdlint:ignore locksafe2 fixture demonstrating an honored per-shard suppression
	_ = p.shards[i].spill()
	p.shards[i].mu.Unlock()
}
