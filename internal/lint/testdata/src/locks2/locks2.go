// Package locks2 is the locksafe2 fixture: every line of every function
// here looks clean to locksafe, but the helpers' summaries block or
// re-acquire the caller's mutex.
package locks2

import (
	"encoding/json"
	"sync"
)

type store struct {
	mu  sync.Mutex
	enc *json.Encoder
	ch  chan int
}

// flush blocks: it JSON-encodes to an arbitrary writer.
func (s *store) flush() error { return s.enc.Encode(1) }

// notify blocks: channel send.
func (s *store) notify() { s.ch <- 1 }

// indirect hides the send one more call away.
func (s *store) indirect() { s.notify() }

// touch acquires the store's mutex.
func (s *store) touch() {
	s.mu.Lock()
	defer s.mu.Unlock()
}

// Bad: a blocking helper inside the critical section.
func (s *store) saveUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_ = s.flush() // want "call to flush while s.mu is held can block"
}

// Bad: the block arrives through a two-call chain.
func (s *store) chainUnderLock() {
	s.mu.Lock()
	s.indirect() // want "call to indirect while s.mu is held can block"
	s.mu.Unlock()
}

// Bad: the helper re-acquires the mutex the caller already holds.
func (s *store) relock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.touch() // want "call to touch re-acquires s.mu"
}

// Good: the helper runs after release.
func (s *store) saveAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	_ = s.flush()
}

// Good: a literal defined under the lock runs later, elsewhere.
func (s *store) deferredFlush() func() {
	s.mu.Lock()
	defer s.mu.Unlock()
	return func() { _ = s.flush() }
}

// Suppressed: documented exception.
func (s *store) suppressedFlush() {
	s.mu.Lock()
	//hdlint:ignore locksafe2 fixture demonstrating an honored suppression
	_ = s.flush()
	s.mu.Unlock()
}
