package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockSafe flags operations with unbounded latency executed while a
// sync mutex is held: channel sends, calls through function values
// (callbacks whose behavior the lock holder cannot see), and blocking
// I/O. Any of these inside a critical section can stall every reader of
// the telemetry registry or the scheduler state it guards.
//
// The check is intraprocedural and syntactic about lock extent: it
// tracks mu.Lock()/mu.RLock() per receiver expression within one
// function body, releases on the matching Unlock, and treats a deferred
// unlock as holding the lock to the end of the function.
var LockSafe = &Analyzer{
	Name: "locksafe",
	Doc:  "flag channel sends, function-value calls, and blocking I/O while a sync lock is held",
	Run:  runLockSafe,
}

func runLockSafe(p *Package, report Reporter) {
	w := &lockWalker{
		p: p,
		onExpr: func(e ast.Expr, held map[string]bool) {
			checkUnderLock(p, e, held, report)
		},
		onSend: func(arrow token.Pos, held map[string]bool) {
			report(arrow, "channel send while %s is held can block the critical section indefinitely", heldName(held))
		},
	}
	forEachFuncBody(p, func(body *ast.BlockStmt) {
		w.walk(body.List, map[string]bool{})
	})
}

// forEachFuncBody visits every function and function-literal body in
// the package. Literals are visited as their own functions: a literal
// defined under a lock does not run under it, and one invoked under a
// lock is caught at the call site as a callback.
func forEachFuncBody(p *Package, visit func(*ast.BlockStmt)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					visit(n.Body)
				}
			case *ast.FuncLit:
				if n.Body != nil {
					visit(n.Body)
				}
			}
			return true
		})
	}
}

// lockWalker walks statement lists in order, maintaining the set of
// held locks (keyed by the receiver expression's source form) and
// handing expressions and channel sends to the configured callbacks.
// Nested control-flow bodies get a copy of the current set: a lock
// taken in a branch is not assumed held after it.
type lockWalker struct {
	p      *Package
	onExpr func(e ast.Expr, held map[string]bool)
	onSend func(arrow token.Pos, held map[string]bool)
}

func (w *lockWalker) walk(stmts []ast.Stmt, held map[string]bool) {
	p := w.p
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if recv, op, ok := lockCall(p, s.X); ok {
				switch op {
				case "Lock", "RLock":
					held[recv] = true
				case "Unlock", "RUnlock":
					delete(held, recv)
				}
				continue
			}
			w.onExpr(s.X, held)
		case *ast.DeferStmt:
			if _, op, ok := lockCall(p, s.Call); ok && (op == "Unlock" || op == "RUnlock") {
				// Deferred unlock: the lock stays held for the rest of
				// the walk, which is exactly how the runtime behaves.
				continue
			}
			w.onExpr(s.Call, held)
		case *ast.GoStmt:
			// The goroutine body runs outside this critical section;
			// its FuncLit is analyzed independently.
		case *ast.SendStmt:
			if anyHeld(held) {
				w.onSend(s.Arrow, held)
			} else {
				w.onExpr(s.Value, held)
			}
		case *ast.AssignStmt:
			for _, e := range s.Rhs {
				w.onExpr(e, held)
			}
			for _, e := range s.Lhs {
				w.onExpr(e, held)
			}
		case *ast.ReturnStmt:
			for _, e := range s.Results {
				w.onExpr(e, held)
			}
		case *ast.IfStmt:
			if s.Init != nil {
				w.walk([]ast.Stmt{s.Init}, held)
			}
			w.onExpr(s.Cond, held)
			w.walk(s.Body.List, copyHeld(held))
			if s.Else != nil {
				w.walk([]ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			if s.Init != nil {
				w.walk([]ast.Stmt{s.Init}, held)
			}
			if s.Cond != nil {
				w.onExpr(s.Cond, held)
			}
			w.walk(s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			w.onExpr(s.X, held)
			w.walk(s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			if s.Init != nil {
				w.walk([]ast.Stmt{s.Init}, held)
			}
			if s.Tag != nil {
				w.onExpr(s.Tag, held)
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					for _, e := range cc.List {
						w.onExpr(e, held)
					}
					w.walk(cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			if s.Init != nil {
				w.walk([]ast.Stmt{s.Init}, held)
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.walk(cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					if send, ok := cc.Comm.(*ast.SendStmt); ok && anyHeld(held) {
						w.onSend(send.Arrow, held)
					}
					w.walk(cc.Body, copyHeld(held))
				}
			}
		case *ast.BlockStmt:
			w.walk(s.List, copyHeld(held))
		case *ast.LabeledStmt:
			w.walk([]ast.Stmt{s.Stmt}, held)
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, e := range vs.Values {
							w.onExpr(e, held)
						}
					}
				}
			}
		case *ast.IncDecStmt:
			w.onExpr(s.X, held)
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	c := make(map[string]bool, len(held))
	for k, v := range held {
		c[k] = v
	}
	return c
}

func anyHeld(held map[string]bool) bool { return len(held) > 0 }

func heldName(held map[string]bool) string {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// lockCall recognizes recv.Lock/RLock/Unlock/RUnlock where the method
// is declared in package sync, returning the receiver's source form.
func lockCall(p *Package, e ast.Expr) (recv, op string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", "", false
	}
	obj, isFn := p.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false
	}
	return types.ExprString(sel.X), sel.Sel.Name, true
}

// checkUnderLock inspects one expression tree (never descending into
// function literals) for operations that must not run under a lock.
func checkUnderLock(p *Package, e ast.Expr, held map[string]bool, report Reporter) {
	if e == nil || !anyHeld(held) {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, _, isLock := lockCall(p, call); isLock {
			return true
		}
		if why, bad := blockingCall(p, call); bad {
			report(call.Pos(), "%s while %s is held can block the critical section", why, heldName(held))
		}
		return true
	})
}

// blockingPkgs are packages whose Read/Write-family methods and
// functions touch the outside world (or wrap something that does).
// In-memory buffers (bytes, strings) are deliberately absent.
var blockingPkgs = map[string]bool{
	"io": true, "os": true, "net": true, "bufio": true,
	"net/http": true, "encoding/json": true, "encoding/gob": true,
}

var blockingNames = map[string]bool{
	"Read": true, "Write": true, "WriteString": true, "WriteByte": true,
	"ReadString": true, "ReadBytes": true, "ReadByte": true, "ReadRune": true,
	"Flush": true, "Sync": true, "Encode": true, "Decode": true,
	"ReadFull": true, "ReadAll": true, "Copy": true, "CopyN": true,
	"WriteTo": true, "ReadFrom": true, "Do": true, "Get": true, "Post": true,
}

// blockingCall classifies a call as a callback through a function value
// or as blocking I/O.
func blockingCall(p *Package, call *ast.CallExpr) (why string, bad bool) {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	default:
		return "", false
	}
	switch obj := obj.(type) {
	case *types.Var:
		// A call through a function-typed variable, parameter, or
		// struct field: arbitrary code the lock holder cannot audit.
		if _, isSig := obj.Type().Underlying().(*types.Signature); isSig {
			return "call through function value " + obj.Name(), true
		}
	case *types.Func:
		if obj.Pkg() == nil {
			return "", false
		}
		if blockingPkgs[obj.Pkg().Path()] && blockingNames[obj.Name()] {
			return obj.Pkg().Name() + "." + obj.Name() + " (blocking I/O)", true
		}
		// fmt.Fprint* writes through an arbitrary io.Writer.
		if obj.Pkg().Path() == "fmt" && strings.HasPrefix(obj.Name(), "Fprint") {
			return "fmt." + obj.Name() + " (blocking I/O)", true
		}
	}
	return "", false
}
