package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockSafe2 is the interprocedural extension of locksafe: it
// summarizes, for every function declared in the package, whether its
// body (or anything it calls inside the same package) performs a
// blocking operation or acquires a lock, and then flags call sites that
// invoke such a helper while a sync lock is held. This is the class of
// bug locksafe cannot see — WriteLog looked clean at every line, but it
// held q.mu across a helper that JSON-encoded to an arbitrary writer.
//
// Two findings come out of a summary:
//
//   - blocking: the callee (transitively) sends on a channel, calls
//     through a function value, or does blocking I/O, so the caller's
//     critical section stalls on it;
//   - re-lock: the callee (transitively) acquires the very mutex the
//     caller is holding, which deadlocks outright for a sync.Mutex.
//
// Summaries are package-local: cross-package call facts are the call
// graph's job (dettaint), and the repo's lock-discipline hot spots are
// all package-internal helpers.
var LockSafe2 = &Analyzer{
	Name: "locksafe2",
	Doc:  "flag calls to same-package helpers that (transitively) block or re-acquire a held sync lock",
	Run:  runLockSafe2,
}

// lockSummary is the package-local behavior summary of one function.
type lockSummary struct {
	// blockChain is the witness path to a blocking operation, from the
	// summarized function to the fact ("WriteLog -> json.Encode
	// (blocking I/O)"). Empty when the function cannot block.
	blockChain []string
	// locks are the mutexes the function (transitively) acquires.
	// Receiver-relative fields are normalized as "@.field"; everything
	// else keeps its source form.
	locks map[string]bool
}

func (s *lockSummary) blocks() bool { return len(s.blockChain) > 0 }

func runLockSafe2(p *Package, report Reporter) {
	sums := newSummarizer(p)
	w := &lockWalker{
		p: p,
		onExpr: func(e ast.Expr, held map[string]bool) {
			checkInterprocUnderLock(p, sums, e, held, report)
		},
		onSend: func(token.Pos, map[string]bool) {}, // locksafe's finding
	}
	forEachFuncBody(p, func(body *ast.BlockStmt) {
		w.walk(body.List, map[string]bool{})
	})
}

// checkInterprocUnderLock inspects one expression tree (never
// descending into function literals) for calls to same-package
// functions whose summary blocks or re-locks a held mutex.
func checkInterprocUnderLock(p *Package, sums *summarizer, e ast.Expr, held map[string]bool, report Reporter) {
	if e == nil || !anyHeld(held) {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := StaticCallee(p, call)
		if fn == nil || fn.Pkg() != p.Pkg {
			return true
		}
		sum := sums.summaryOf(fn)
		if sum == nil {
			return true
		}
		if sum.blocks() {
			report(call.Pos(), "call to %s while %s is held can block the critical section (%s)",
				fn.Name(), heldName(held), strings.Join(sum.blockChain, " -> "))
		}
		for _, lock := range sortedLockKeys(sum.locks) {
			resolved := resolveLockExpr(p, call, lock)
			if resolved != "" && held[resolved] {
				report(call.Pos(), "call to %s re-acquires %s, which the caller already holds (deadlock for a sync.Mutex)",
					fn.Name(), resolved)
			}
		}
		return true
	})
}

// resolveLockExpr rewrites a callee-side lock key into the caller's
// frame: "@.mu" on a call through receiver expression "q" becomes
// "q.mu"; absolute keys (package-level mutexes, non-receiver paths)
// pass through unchanged.
func resolveLockExpr(p *Package, call *ast.CallExpr, lock string) string {
	rest, ok := strings.CutPrefix(lock, "@")
	if !ok {
		return lock
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "" // receiver-relative lock on a non-method call: method value, unknown receiver
	}
	// Only direct method calls on a value we can name are comparable.
	if _, isPkg := p.Info.Uses[firstIdent(sel.X)].(*types.PkgName); isPkg {
		return ""
	}
	return types.ExprString(sel.X) + rest
}

func firstIdent(e ast.Expr) *ast.Ident {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return id
	}
	return &ast.Ident{}
}

// summarizer computes and memoizes package-local lock summaries.
type summarizer struct {
	p     *Package
	decls map[*types.Func]*ast.FuncDecl
	memo  map[*types.Func]*lockSummary
	stack map[*types.Func]bool
}

func newSummarizer(p *Package) *summarizer {
	s := &summarizer{
		p:     p,
		decls: make(map[*types.Func]*ast.FuncDecl),
		memo:  make(map[*types.Func]*lockSummary),
		stack: make(map[*types.Func]bool),
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					s.decls[fn] = fd
				}
			}
		}
	}
	return s
}

// summaryOf returns fn's summary, or nil when fn is not declared in
// this package (or is recursive and currently being summarized).
func (s *summarizer) summaryOf(fn *types.Func) *lockSummary {
	if sum, ok := s.memo[fn]; ok {
		return sum
	}
	fd, ok := s.decls[fn]
	if !ok || s.stack[fn] {
		return nil
	}
	s.stack[fn] = true
	sum := s.compute(fn, fd)
	delete(s.stack, fn)
	s.memo[fn] = sum
	return sum
}

func (s *summarizer) compute(fn *types.Func, fd *ast.FuncDecl) *lockSummary {
	p := s.p
	sum := &lockSummary{locks: make(map[string]bool)}
	recvName := receiverName(fd)

	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal defined here runs later (or elsewhere); its
			// behavior is not this function's synchronous behavior.
			return false
		case *ast.GoStmt:
			// Spawned goroutines do not block the caller.
			return false
		case *ast.SendStmt:
			if !sum.blocks() {
				sum.blockChain = []string{fn.Name(), "channel send"}
			}
			return true
		case *ast.CallExpr:
			if recv, op, ok := lockCall(p, n); ok {
				if op == "Lock" || op == "RLock" {
					sum.locks[normalizeLockExpr(recv, recvName)] = true
				}
				return true
			}
			if why, bad := blockingCall(p, n); bad {
				if !sum.blocks() {
					sum.blockChain = []string{fn.Name(), why}
				}
				return true
			}
			callee := StaticCallee(p, n)
			if callee == nil || callee.Pkg() != p.Pkg || callee == fn {
				return true
			}
			if csum := s.summaryOf(callee); csum != nil {
				if csum.blocks() && !sum.blocks() {
					sum.blockChain = append([]string{fn.Name()}, csum.blockChain...)
				}
				for lock := range csum.locks {
					sum.locks[normalizeLockExpr(s.liftLock(n, lock), recvName)] = true
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
	return sum
}

// liftLock rewrites a callee lock key into this function's frame at the
// given call site, so "@.mu" stays receiver-relative only when the call
// goes through our own receiver chain.
func (s *summarizer) liftLock(call *ast.CallExpr, lock string) string {
	rest, ok := strings.CutPrefix(lock, "@")
	if !ok {
		return lock
	}
	if sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr); isSel {
		return types.ExprString(sel.X) + rest
	}
	// Plain function call carrying a receiver-relative lock cannot
	// happen (the callee had a receiver); keep it opaque.
	return lock
}

// normalizeLockExpr renders a locked expression receiver-relative:
// "q.mu" with receiver "q" becomes "@.mu"; anything else keeps its
// source form. The caller-side resolveLockExpr substitutes the real
// receiver back in, and the summarizer's liftLock re-normalizes when a
// method calls a sibling method on its own receiver.
func normalizeLockExpr(lockExpr, recvName string) string {
	if recvName == "" {
		return lockExpr
	}
	if rest, ok := strings.CutPrefix(lockExpr, recvName+"."); ok {
		return "@." + rest
	}
	return lockExpr
}

func receiverName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

func sortedLockKeys(locks map[string]bool) []string {
	out := make([]string, 0, len(locks))
	for k := range locks {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
