package lint

import (
	"go/ast"
	"go/types"
)

// ErrAlways flags discarded error returns from the durability-critical
// surfaces: EventLog methods, internal/appstat persistence, and
// internal/checkpoint writes. A dropped error there means silently
// losing the audit trail or a checkpoint — the exact records the paper's
// evaluation replays from.
var ErrAlways = &Analyzer{
	Name: "erralways",
	Doc:  "errors from EventLog, appstat persistence, and checkpoint operations must be checked",
	Run:  runErrAlways,
}

// errCriticalPkgSuffixes are packages whose exported error returns must
// always be consumed.
var errCriticalPkgSuffixes = []string{
	"internal/appstat",
	"internal/checkpoint",
}

func runErrAlways(p *Package, report Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkDroppedErrCall(p, n.X, report)
			case *ast.GoStmt:
				checkDroppedErrCall(p, n.Call, report)
			case *ast.DeferStmt:
				checkDroppedErrCall(p, n.Call, report)
			case *ast.AssignStmt:
				checkBlankErrAssign(p, n, report)
			}
			return true
		})
	}
}

// checkDroppedErrCall reports e if it is a call to an error-critical
// function whose results are dropped entirely.
func checkDroppedErrCall(p *Package, e ast.Expr, report Reporter) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	fn := errCriticalCallee(p, call)
	if fn == nil || !returnsError(fn) {
		return
	}
	report(call.Pos(), "error returned by %s is dropped; %s", calleeLabel(fn), errWhy(fn))
}

// checkBlankErrAssign reports assignments that send every error result
// of an error-critical call to the blank identifier.
func checkBlankErrAssign(p *Package, as *ast.AssignStmt, report Reporter) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn := errCriticalCallee(p, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	res := sig.Results()
	anyErr, allBlank := false, true
	for i := 0; i < res.Len(); i++ {
		if !isErrorType(res.At(i).Type()) {
			continue
		}
		anyErr = true
		if i >= len(as.Lhs) {
			continue
		}
		if id, ok := as.Lhs[i].(*ast.Ident); !ok || id.Name != "_" {
			allBlank = false
		}
	}
	if anyErr && allBlank {
		report(as.Pos(), "error returned by %s is assigned to _; %s", calleeLabel(fn), errWhy(fn))
	}
}

// errCriticalCallee resolves the call's callee and returns it if it is
// an EventLog method or declared in an error-critical package.
func errCriticalCallee(p *Package, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	default:
		return nil
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return nil
	}
	if isEventLogMethod(fn) {
		return fn
	}
	for _, suf := range errCriticalPkgSuffixes {
		if hasPathSuffix(fn.Pkg().Path(), suf) {
			return fn
		}
	}
	return nil
}

func isEventLogMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "EventLog"
}

func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if isErrorType(res.At(i).Type()) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func calleeLabel(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

func errWhy(fn *types.Func) string {
	if isEventLogMethod(fn) {
		return "a lost event-log record breaks replay auditing"
	}
	if hasPathSuffix(fn.Pkg().Path(), "internal/checkpoint") {
		return "a failed checkpoint write must surface, or resume silently corrupts state"
	}
	return "appstat persistence failures must surface, or profiles silently regress"
}
