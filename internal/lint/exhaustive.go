package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Exhaustive requires that every switch over an enum-like defined type
// either covers all of the type's declared constants or carries an
// explicit default clause. A type is enum-like when its declaring
// package declares at least two package-level constants of exactly that
// type — which covers wire.MsgType, the executor's EventKind and
// ExitReason, core.Class, sched.State/Decision, param.Kind, and any
// enum a later protocol revision adds, without a hand-kept list.
//
// A silent fallthrough on an uncovered variant is how new protocol
// messages get dropped on the floor: the switch compiles, the frame
// vanishes.
var Exhaustive = &Analyzer{
	Name: "exhaustive",
	Doc: "switches over enum-like defined types (wire.MsgType, event kinds, job classes, ...) " +
		"must cover every declared constant or carry an explicit default",
	Run: runExhaustive,
}

func runExhaustive(p *Package, report Reporter) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			tv, ok := p.Info.Types[sw.Tag]
			if !ok || tv.Type == nil {
				return true
			}
			tagType := types.Unalias(tv.Type)
			named, ok := tagType.(*types.Named)
			if !ok || named.Obj().Pkg() == nil {
				return true
			}
			basic, ok := named.Underlying().(*types.Basic)
			if !ok || basic.Info()&types.IsBoolean != 0 {
				return true
			}
			consts := enumConstants(named)
			if len(consts) < 2 {
				return true
			}

			covered := make(map[*types.Const]bool)
			hasDefault := false
			for _, c := range sw.Body.List {
				cc, ok := c.(*ast.CaseClause)
				if !ok {
					continue
				}
				if cc.List == nil {
					hasDefault = true
					continue
				}
				for _, e := range cc.List {
					etv, ok := p.Info.Types[e]
					if !ok || etv.Value == nil {
						continue
					}
					for _, ec := range consts {
						if constant.Compare(ec.Val(), token.EQL, etv.Value) {
							covered[ec] = true
						}
					}
				}
			}
			if hasDefault {
				return true
			}
			var missing []string
			for _, ec := range consts {
				if !covered[ec] {
					missing = append(missing, ec.Name())
				}
			}
			if len(missing) == 0 {
				return true
			}
			sort.Strings(missing)
			report(sw.Switch, "switch over %s.%s is not exhaustive: missing %s (cover them or add an explicit default)",
				named.Obj().Pkg().Name(), named.Obj().Name(), strings.Join(missing, ", "))
			return true
		})
	}
}

// enumConstants returns the package-level constants declared with
// exactly the named type, in declaration-name order.
func enumConstants(named *types.Named) []*types.Const {
	scope := named.Obj().Pkg().Scope()
	var out []*types.Const
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok {
			continue
		}
		if types.Identical(types.Unalias(c.Type()), named) {
			out = append(out, c)
		}
	}
	return out
}
