package appstat

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// dbDump is the serialized form of a DB.
type dbDump struct {
	Version   int                   `json:"version"`
	Stats     map[string][]statDump `json:"stats"`
	Snapshots []snapshotDump        `json:"snapshots,omitempty"`
}

type statDump struct {
	Epoch      int       `json:"epoch"`
	Metric     float64   `json:"metric"`
	DurationNs int64     `json:"durationNs"`
	At         time.Time `json:"at"`
}

type snapshotDump struct {
	Job   string    `json:"job"`
	Epoch int       `json:"epoch"`
	Data  []byte    `json:"data"`
	At    time.Time `json:"at"`
}

const dumpVersion = 1

// Save serializes the database (metric histories, durations, and
// snapshots) as JSON, so finished experiments can be archived and
// re-examined offline (e.g., feeding a job's history into hdcurve).
func (db *DB) Save(w io.Writer) error {
	db.mu.RLock()
	dump := dbDump{Version: dumpVersion, Stats: make(map[string][]statDump, len(db.stats))}
	for job, hist := range db.stats {
		ss := make([]statDump, len(hist))
		for i, s := range hist {
			ss[i] = statDump{Epoch: s.Epoch, Metric: s.Metric, DurationNs: int64(s.Duration), At: s.At}
		}
		dump.Stats[string(job)] = ss
	}
	for _, snap := range db.snapshots {
		dump.Snapshots = append(dump.Snapshots, snapshotDump{
			Job: string(snap.Job), Epoch: snap.Epoch, Data: snap.Data, At: snap.At,
		})
	}
	db.mu.RUnlock()
	enc := json.NewEncoder(w)
	if err := enc.Encode(dump); err != nil {
		return fmt.Errorf("appstat: save: %w", err)
	}
	return nil
}

// Load reads a database saved with Save.
func Load(r io.Reader) (*DB, error) {
	var dump dbDump
	if err := json.NewDecoder(r).Decode(&dump); err != nil {
		return nil, fmt.Errorf("appstat: load: %w", err)
	}
	if dump.Version != dumpVersion {
		return nil, fmt.Errorf("appstat: load: unsupported version %d", dump.Version)
	}
	db := NewDB()
	for job, hist := range dump.Stats {
		for _, s := range hist {
			db.Report(sched.JobID(job), Stat{
				Epoch: s.Epoch, Metric: s.Metric, Duration: time.Duration(s.DurationNs), At: s.At,
			})
		}
	}
	for _, snap := range dump.Snapshots {
		db.PutSnapshot(Snapshot{Job: sched.JobID(snap.Job), Epoch: snap.Epoch, Data: snap.Data, At: snap.At})
	}
	return db, nil
}
