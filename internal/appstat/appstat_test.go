package appstat

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

func TestReportAndHistory(t *testing.T) {
	db := NewDB()
	db.Report("a", Stat{Epoch: 1, Metric: 0.1, Duration: time.Minute})
	db.Report("a", Stat{Epoch: 2, Metric: 0.2, Duration: time.Minute})
	db.Report("a", Stat{Epoch: 3, Metric: 0.15, Duration: time.Minute})
	hist := db.History("a")
	want := []float64{0.1, 0.2, 0.15}
	if len(hist) != len(want) {
		t.Fatalf("history = %v", hist)
	}
	for i := range want {
		if hist[i] != want[i] {
			t.Fatalf("history[%d] = %v, want %v", i, hist[i], want[i])
		}
	}
	if db.LastEpoch("a") != 3 {
		t.Fatalf("LastEpoch = %d", db.LastEpoch("a"))
	}
}

func TestReportOutOfOrderAndDuplicate(t *testing.T) {
	db := NewDB()
	db.Report("a", Stat{Epoch: 2, Metric: 0.2})
	db.Report("a", Stat{Epoch: 1, Metric: 0.1})
	db.Report("a", Stat{Epoch: 2, Metric: 0.25}) // resumed job re-reports
	hist := db.History("a")
	if len(hist) != 2 || hist[0] != 0.1 || hist[1] != 0.25 {
		t.Fatalf("history = %v, want [0.1 0.25]", hist)
	}
}

func TestBestTracking(t *testing.T) {
	db := NewDB()
	db.Report("a", Stat{Epoch: 1, Metric: 0.3})
	db.Report("a", Stat{Epoch: 2, Metric: 0.2})
	db.Report("b", Stat{Epoch: 1, Metric: 0.5})
	if v, ok := db.Best("a"); !ok || v != 0.3 {
		t.Fatalf("Best(a) = %v, %v", v, ok)
	}
	g, job, ok := db.GlobalBest()
	if !ok || g != 0.5 || job != "b" {
		t.Fatalf("GlobalBest = %v, %v, %v", g, job, ok)
	}
}

func TestGlobalBestEmpty(t *testing.T) {
	db := NewDB()
	if _, _, ok := db.GlobalBest(); ok {
		t.Fatal("GlobalBest on empty DB should be false")
	}
	if _, ok := db.Best("nope"); ok {
		t.Fatal("Best of unknown job should be false")
	}
}

func TestNegativeMetrics(t *testing.T) {
	// RL rewards are negative; zero-value assumptions must not leak.
	db := NewDB()
	db.Report("a", Stat{Epoch: 1, Metric: -300})
	db.Report("a", Stat{Epoch: 2, Metric: -150})
	if v, ok := db.Best("a"); !ok || v != -150 {
		t.Fatalf("Best = %v, %v, want -150", v, ok)
	}
	g, _, _ := db.GlobalBest()
	if g != -150 {
		t.Fatalf("GlobalBest = %v, want -150", g)
	}
}

func TestAvgEpochDuration(t *testing.T) {
	db := NewDB()
	if _, ok := db.AvgEpochDuration("a"); ok {
		t.Fatal("avg duration of unknown job should be false")
	}
	db.Report("a", Stat{Epoch: 1, Metric: 0.1, Duration: time.Minute})
	db.Report("a", Stat{Epoch: 2, Metric: 0.2, Duration: 3 * time.Minute})
	d, ok := db.AvgEpochDuration("a")
	if !ok || d != 2*time.Minute {
		t.Fatalf("avg duration = %v, %v", d, ok)
	}
}

func TestSnapshots(t *testing.T) {
	db := NewDB()
	if _, err := db.GetSnapshot("a"); err == nil {
		t.Fatal("GetSnapshot of missing job should fail")
	}
	db.PutSnapshot(Snapshot{Job: "a", Epoch: 10, Data: []byte("state")})
	s, err := db.GetSnapshot("a")
	if err != nil || s.Epoch != 10 || string(s.Data) != "state" {
		t.Fatalf("snapshot = %+v, %v", s, err)
	}
	db.PutSnapshot(Snapshot{Job: "a", Epoch: 20, Data: []byte("later")})
	s, _ = db.GetSnapshot("a")
	if s.Epoch != 20 {
		t.Fatalf("snapshot not replaced: %+v", s)
	}
}

func TestDeleteJob(t *testing.T) {
	db := NewDB()
	db.Report("a", Stat{Epoch: 1, Metric: 0.1})
	db.PutSnapshot(Snapshot{Job: "a", Epoch: 1})
	db.DeleteJob("a")
	if len(db.History("a")) != 0 {
		t.Fatal("history survived delete")
	}
	if _, err := db.GetSnapshot("a"); err == nil {
		t.Fatal("snapshot survived delete")
	}
}

func TestJobsSorted(t *testing.T) {
	db := NewDB()
	db.Report("b", Stat{Epoch: 1})
	db.Report("a", Stat{Epoch: 1})
	jobs := db.Jobs()
	if len(jobs) != 2 || jobs[0] != "a" || jobs[1] != "b" {
		t.Fatalf("Jobs = %v", jobs)
	}
}

func TestStatsCopyIsolated(t *testing.T) {
	db := NewDB()
	db.Report("a", Stat{Epoch: 1, Metric: 0.1})
	s := db.Stats("a")
	s[0].Metric = 99
	if db.History("a")[0] != 0.1 {
		t.Fatal("Stats returned shared storage")
	}
}

func TestConcurrentReports(t *testing.T) {
	db := NewDB()
	var wg sync.WaitGroup
	jobs := []sched.JobID{"a", "b", "c", "d"}
	for _, job := range jobs {
		for e := 1; e <= 50; e++ {
			wg.Add(1)
			go func(j sched.JobID, epoch int) {
				defer wg.Done()
				db.Report(j, Stat{Epoch: epoch, Metric: float64(epoch) / 100, Duration: time.Second})
			}(job, e)
		}
	}
	wg.Wait()
	for _, job := range jobs {
		hist := db.History(job)
		if len(hist) != 50 {
			t.Fatalf("job %s history len = %d, want 50", job, len(hist))
		}
		for i := 1; i < len(hist); i++ {
			if hist[i] <= hist[i-1] {
				t.Fatalf("job %s history not ordered at %d", job, i)
			}
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := NewDB()
	db.Report("a", Stat{Epoch: 1, Metric: 0.1, Duration: time.Minute})
	db.Report("a", Stat{Epoch: 2, Metric: 0.2, Duration: time.Minute})
	db.Report("b", Stat{Epoch: 1, Metric: -150, Duration: 3 * time.Minute})
	db.PutSnapshot(Snapshot{Job: "a", Epoch: 2, Data: []byte("state")})

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs()) != 2 {
		t.Fatalf("jobs = %v", got.Jobs())
	}
	hist := got.History("a")
	if len(hist) != 2 || hist[1] != 0.2 {
		t.Fatalf("history = %v", hist)
	}
	d, ok := got.AvgEpochDuration("b")
	if !ok || d != 3*time.Minute {
		t.Fatalf("duration = %v, %v", d, ok)
	}
	gb, job, _ := got.GlobalBest()
	if gb != 0.2 || job != "a" {
		t.Fatalf("global best = %v, %v", gb, job)
	}
	snap, err := got.GetSnapshot("a")
	if err != nil || string(snap.Data) != "state" {
		t.Fatalf("snapshot = %+v, %v", snap, err)
	}
}

func TestLoadRejectsGarbageAndVersions(t *testing.T) {
	if _, err := Load(strings.NewReader("{")); err == nil {
		t.Fatal("Load accepted truncated JSON")
	}
	if _, err := Load(strings.NewReader(`{"version":99,"stats":{}}`)); err == nil {
		t.Fatal("Load accepted unknown version")
	}
}

func TestPredictions(t *testing.T) {
	db := NewDB()
	if _, ok := db.LatestPrediction("a"); ok {
		t.Fatal("prediction on empty DB")
	}
	db.ReportPrediction("a", Prediction{Epoch: 10, Value: 0.3})
	db.ReportPrediction("a", Prediction{Epoch: 20, Value: 0.6})
	p, ok := db.LatestPrediction("a")
	if !ok || p.Epoch != 20 || p.Value != 0.6 {
		t.Fatalf("latest = %+v, %v", p, ok)
	}
	if got := db.Predictions("a"); len(got) != 2 {
		t.Fatalf("predictions = %v", got)
	}
	db.DeleteJob("a")
	if _, ok := db.LatestPrediction("a"); ok {
		t.Fatal("prediction survived delete")
	}
}
