// Package appstat implements the AppStat database of the HyperDrive
// architecture (paper §4.2, component ③): the store for model-generated
// application statistics (metric history, epoch durations) and for the
// model snapshots that make suspend/resume work across machines. It is
// shared state between the Scheduling Algorithm Policy, the
// Hyperparameter Generator, and the training jobs.
package appstat

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// Stat is one recorded application statistic.
type Stat struct {
	Epoch    int
	Metric   float64
	Duration time.Duration
	At       time.Time
}

// DB is the application-statistics database. The zero value is not
// usable; construct with NewDB. Safe for concurrent use.
type DB struct {
	mu        sync.RWMutex
	stats     map[sched.JobID][]Stat
	snapshots map[sched.JobID]Snapshot
	preds     map[sched.JobID][]Prediction
	best      map[sched.JobID]float64
	gBest     float64
	gBestJob  sched.JobID
	hasBest   bool
}

// Snapshot is a stored model snapshot for suspend/resume.
type Snapshot struct {
	Job   sched.JobID
	Epoch int
	Data  []byte
	At    time.Time
}

// Prediction is an agent-side learning-curve prediction result
// reported alongside stats (§5.2 distributed curve prediction): the
// probability of reaching the target computed on the node agent, in
// parallel with training.
type Prediction struct {
	Epoch int
	Value float64
	At    time.Time
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{
		stats:     make(map[sched.JobID][]Stat),
		snapshots: make(map[sched.JobID]Snapshot),
		preds:     make(map[sched.JobID][]Prediction),
		best:      make(map[sched.JobID]float64),
	}
}

// Report records one statistic sample. Out-of-order epochs are
// accepted and kept sorted; duplicate epochs overwrite (a resumed job
// may re-report its resume-point epoch).
func (db *DB) Report(job sched.JobID, s Stat) {
	db.mu.Lock()
	defer db.mu.Unlock()
	hist := db.stats[job]
	idx := sort.Search(len(hist), func(i int) bool { return hist[i].Epoch >= s.Epoch })
	switch {
	case idx < len(hist) && hist[idx].Epoch == s.Epoch:
		hist[idx] = s
	case idx == len(hist):
		hist = append(hist, s)
	default:
		hist = append(hist, Stat{})
		copy(hist[idx+1:], hist[idx:])
		hist[idx] = s
	}
	db.stats[job] = hist

	if cur, ok := db.best[job]; !ok || s.Metric > cur {
		db.best[job] = s.Metric
	}
	if !db.hasBest || s.Metric > db.gBest {
		db.gBest = s.Metric
		db.gBestJob = job
		db.hasBest = true
	}
}

// History returns the job's metric history ordered by epoch.
func (db *DB) History(job sched.JobID) []float64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	hist := db.stats[job]
	out := make([]float64, len(hist))
	for i, s := range hist {
		out[i] = s.Metric
	}
	return out
}

// Stats returns a copy of the job's full stat records.
func (db *DB) Stats(job sched.JobID) []Stat {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]Stat(nil), db.stats[job]...)
}

// LastEpoch returns the job's highest reported epoch (0 when none).
func (db *DB) LastEpoch(job sched.JobID) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	hist := db.stats[job]
	if len(hist) == 0 {
		return 0
	}
	return hist[len(hist)-1].Epoch
}

// AvgEpochDuration returns the measured average epoch duration
// (Epoch_i in §3.1.1) and false when no duration has been recorded.
func (db *DB) AvgEpochDuration(job sched.JobID) (time.Duration, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var sum time.Duration
	n := 0
	for _, s := range db.stats[job] {
		if s.Duration > 0 {
			sum += s.Duration
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / time.Duration(n), true
}

// Best returns the job's best metric so far.
func (db *DB) Best(job sched.JobID) (float64, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v, ok := db.best[job]
	return v, ok
}

// GlobalBest returns the best metric across all jobs and which job
// produced it.
func (db *DB) GlobalBest() (float64, sched.JobID, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if !db.hasBest {
		return math.Inf(-1), "", false
	}
	return db.gBest, db.gBestJob, true
}

// PutSnapshot stores (replacing) the job's model snapshot.
func (db *DB) PutSnapshot(s Snapshot) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.snapshots[s.Job] = s
}

// GetSnapshot retrieves the job's latest snapshot.
func (db *DB) GetSnapshot(job sched.JobID) (Snapshot, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	s, ok := db.snapshots[job]
	if !ok {
		return Snapshot{}, fmt.Errorf("appstat: no snapshot for job %s", job)
	}
	return s, nil
}

// ReportPrediction records an agent-side prediction result.
func (db *DB) ReportPrediction(job sched.JobID, p Prediction) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.preds[job] = append(db.preds[job], p)
}

// LatestPrediction returns the most recent agent-side prediction.
func (db *DB) LatestPrediction(job sched.JobID) (Prediction, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	ps := db.preds[job]
	if len(ps) == 0 {
		return Prediction{}, false
	}
	return ps[len(ps)-1], true
}

// Predictions returns all recorded agent-side predictions for a job.
func (db *DB) Predictions(job sched.JobID) []Prediction {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return append([]Prediction(nil), db.preds[job]...)
}

// DeleteJob drops all state for a job (after termination, to bound
// memory in long sweeps).
func (db *DB) DeleteJob(job sched.JobID) {
	db.mu.Lock()
	defer db.mu.Unlock()
	delete(db.stats, job)
	delete(db.snapshots, job)
	delete(db.preds, job)
	delete(db.best, job)
}

// Jobs lists all jobs with recorded stats, sorted.
func (db *DB) Jobs() []sched.JobID {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]sched.JobID, 0, len(db.stats))
	for id := range db.stats {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
