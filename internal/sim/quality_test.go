package sim

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
)

// simQualityRun runs one fixed POP experiment with a quality audit and
// returns the serialized audit log plus the computed report.
func simQualityRun(t *testing.T) ([]byte, *obs.QualityReport) {
	t.Helper()
	pop, err := policy.NewPOP(policy.POPOptions{Predictor: tinyPredictor()})
	if err != nil {
		t.Fatal(err)
	}
	q := obs.NewQualityAudit(obs.QualityMeta{})
	_, err = Run(Options{
		Trace:          testTrace(t, 6, 3),
		Machines:       2,
		Policy:         pop,
		PredictionCost: 250 * time.Millisecond,
		Quality:        q,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := q.WriteLog(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), q.Report()
}

// TestSimQualityAudit checks that a simulated run fills the audit:
// oracle truth for every job, scored predictions, and a report whose
// joins are populated.
func TestSimQualityAudit(t *testing.T) {
	_, rep := simQualityRun(t)
	if rep.Meta.Source != "sim" || rep.Meta.Policy != "pop" {
		t.Fatalf("meta not stamped: %+v", rep.Meta)
	}
	if rep.Oracles != 6 {
		t.Fatalf("oracles = %d, want 6 (one per trace job)", rep.Oracles)
	}
	if rep.Outcomes != 6 {
		t.Fatalf("outcomes = %d, want 6", rep.Outcomes)
	}
	if rep.Predictions == 0 {
		t.Fatal("run recorded no predictions")
	}
	if rep.Scored != rep.Predictions {
		t.Fatalf("scored %d of %d predictions; oracles should label every job",
			rep.Scored, rep.Predictions)
	}
	var binned int
	for _, b := range rep.Reliability {
		binned += b.Count
	}
	if binned != rep.Scored {
		t.Fatalf("reliability bins hold %d predictions, scored %d", binned, rep.Scored)
	}
	if len(rep.Regret) == 0 {
		t.Fatal("run recorded no best samples / regret curve")
	}
	if rep.Regret[len(rep.Regret)-1].Best > rep.OracleBest {
		t.Fatalf("run best %v exceeds oracle ceiling %v",
			rep.Regret[len(rep.Regret)-1].Best, rep.OracleBest)
	}
}

// TestSimQualityDeterministic re-runs the same experiment and requires
// byte-identical audit logs and reports: quality timestamps must come
// from the virtual clock, never the host's, and report computation
// must not depend on map iteration order.
func TestSimQualityDeterministic(t *testing.T) {
	logA, repA := simQualityRun(t)
	logB, repB := simQualityRun(t)
	if !bytes.Equal(logA, logB) {
		t.Fatal("two identical simulated runs serialized different quality logs")
	}
	ja, err := json.Marshal(repA)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(repB)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatal("two identical simulated runs computed different quality reports")
	}
}

// TestSimQualityLogReplay round-trips the audit through its log and
// requires the replayed report to match the original: the log carries
// everything the joins need.
func TestSimQualityLogReplay(t *testing.T) {
	logA, repA := simQualityRun(t)
	q, err := obs.ReadQualityLog(bytes.NewReader(logA))
	if err != nil {
		t.Fatal(err)
	}
	ja, err := json.Marshal(repA)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(q.Report())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ja, jb) {
		t.Fatalf("replayed report differs from original:\n%s\nvs\n%s", jb, ja)
	}
}
