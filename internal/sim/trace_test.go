package sim

import (
	"bytes"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
)

// simTraceRun runs one fixed POP experiment with a trace sink and
// returns the exported Chrome trace plus the result.
func simTraceRun(t *testing.T) ([]byte, *Result) {
	t.Helper()
	pop, err := policy.NewPOP(policy.POPOptions{Predictor: tinyPredictor()})
	if err != nil {
		t.Fatal(err)
	}
	sink := obs.NewTraceWriter()
	res, err := Run(Options{
		Trace:          testTrace(t, 6, 3),
		Machines:       2,
		Policy:         pop,
		PredictionCost: 250 * time.Millisecond,
		TraceSink:      sink,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sink.Export(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), res
}

// TestSimTraceExport checks that a simulated run's trace export is
// valid Chrome trace-event JSON reflecting the run: a Gantt track per
// machine, decision slices, and lifecycle markers.
func TestSimTraceExport(t *testing.T) {
	data, res := simTraceRun(t)
	if err := obs.ValidateTraceEvents(data); err != nil {
		t.Fatalf("sim trace export invalid: %v", err)
	}
	for _, want := range []string{`"sim"`, `"m0"`, `"m1"`, `"decisions"`, `"decision `} {
		if !bytes.Contains(data, []byte(want)) {
			t.Fatalf("sim trace missing %s", want)
		}
	}
	// Every recorded occupancy segment appears as a slice on its
	// machine's track, so the lifecycle markers must match the result.
	if res.Suspends > 0 && !bytes.Contains(data, []byte(`"suspend `)) {
		t.Fatalf("result has %d suspends but trace has no suspend marker", res.Suspends)
	}
	if res.Completions > 0 && !bytes.Contains(data, []byte(`"complete `)) {
		t.Fatalf("result has %d completions but trace has no complete marker", res.Completions)
	}
	if res.Segments == nil {
		t.Fatal("run recorded no segments")
	}
}

// TestSimTraceDeterministic re-runs the same experiment and requires a
// byte-identical export: trace timestamps must come from the virtual
// clock, never the host's.
func TestSimTraceDeterministic(t *testing.T) {
	a, _ := simTraceRun(t)
	b, _ := simTraceRun(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two identical simulated runs exported different traces")
	}
}
