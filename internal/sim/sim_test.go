package sim

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/checkpoint"
	"github.com/hyperdrive-ml/hyperdrive/internal/curve"
	"github.com/hyperdrive-ml/hyperdrive/internal/param"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
	"github.com/hyperdrive-ml/hyperdrive/internal/trace"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// tinyPredictor keeps policy fits cheap in tests.
func tinyPredictor() curve.Config {
	return curve.Config{Walkers: 10, Iters: 40, BurnFrac: 0.5, MaxSamples: 150, StretchA: 2, Seed: 1}
}

// testTrace builds a deterministic CIFAR-10 trace with n configs.
func testTrace(t testing.TB, n int, seed int64) *trace.Trace {
	t.Helper()
	spec := workload.CIFAR10()
	rng := rand.New(rand.NewSource(seed))
	configs := make([]param.Config, n)
	seeds := make([]int64, n)
	for i := range configs {
		configs[i] = spec.Space().Sample(rng)
		seeds[i] = int64(i)
	}
	tr, err := trace.Collect(spec, configs, seeds)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestRunValidation(t *testing.T) {
	tr := testTrace(t, 2, 1)
	if _, err := Run(Options{Machines: 1, Policy: policy.NewDefault()}); err == nil {
		t.Fatal("Run accepted nil trace")
	}
	if _, err := Run(Options{Trace: tr, Policy: policy.NewDefault()}); err == nil {
		t.Fatal("Run accepted zero machines")
	}
	if _, err := Run(Options{Trace: tr, Machines: 1}); err == nil {
		t.Fatal("Run accepted nil policy")
	}
}

func TestDefaultRunsEverythingToCompletion(t *testing.T) {
	tr := testTrace(t, 8, 2)
	res, err := Run(Options{Trace: tr, Machines: 3, Policy: policy.NewDefault()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions != 8 || res.Terminations != 0 || res.Suspends != 0 {
		t.Fatalf("default outcome: %+v", res)
	}
	for _, j := range res.Jobs {
		if j.Epochs != tr.MaxEpoch {
			t.Fatalf("job %s ran %d epochs, want %d", j.ID, j.Epochs, tr.MaxEpoch)
		}
		if j.FinalState != sched.Completed {
			t.Fatalf("job %s final state %v", j.ID, j.FinalState)
		}
	}
	// Total busy time equals the sum of all trace durations.
	var want time.Duration
	for _, j := range tr.Jobs {
		for _, s := range j.Samples {
			want += s.Duration()
		}
	}
	var got time.Duration
	for _, j := range res.Jobs {
		got += j.BusyTime
	}
	if got != want {
		t.Fatalf("total busy %v, want %v", got, want)
	}
	// With 3 machines the experiment cannot be shorter than busy/3.
	if res.Duration < want/3 {
		t.Fatalf("duration %v impossibly short for %v of work on 3 machines", res.Duration, want)
	}
}

func TestRunDeterministic(t *testing.T) {
	tr := testTrace(t, 6, 3)
	run := func() *Result {
		res, err := Run(Options{Trace: tr, Machines: 2, Policy: policy.NewDefault()})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Duration != b.Duration || a.Best != b.Best || a.Completions != b.Completions {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestStopAtTarget(t *testing.T) {
	// Find a trace seed whose population contains a target-reaching
	// config among the first 30.
	tr := testTrace(t, 30, 7)
	hasWinner := false
	for _, j := range tr.Jobs {
		for _, s := range j.Samples {
			if s.Metric >= tr.Target {
				hasWinner = true
			}
		}
	}
	if !hasWinner {
		t.Skip("trace seed has no winner; population statistics make this rare")
	}
	res, err := Run(Options{Trace: tr, Machines: 4, Policy: policy.NewDefault(), StopAtTarget: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached {
		t.Fatal("default search with a winner in the set never reached the target")
	}
	if res.TimeToTarget <= 0 || res.TimeToTarget != res.Duration {
		t.Fatalf("time to target %v, duration %v", res.TimeToTarget, res.Duration)
	}
	if res.Best < tr.Target {
		t.Fatalf("best %v below target %v", res.Best, tr.Target)
	}
}

func TestMaxDurationCutoff(t *testing.T) {
	tr := testTrace(t, 10, 4)
	res, err := Run(Options{
		Trace: tr, Machines: 1, Policy: policy.NewDefault(),
		MaxDuration: 2 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration > 2*time.Hour {
		t.Fatalf("duration %v exceeded Tmax", res.Duration)
	}
	if res.Completions == 10 {
		t.Fatal("10 jobs x 2 hours of training cannot complete on 1 machine in 2 hours")
	}
}

func TestMaxJobsCap(t *testing.T) {
	tr := testTrace(t, 10, 5)
	res, err := Run(Options{Trace: tr, Machines: 2, Policy: policy.NewDefault(), MaxJobs: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 3 {
		t.Fatalf("explored %d jobs, want 3", len(res.Jobs))
	}
}

func TestBanditTerminatesLosers(t *testing.T) {
	tr := testTrace(t, 20, 6)
	b, err := policy.NewBandit(policy.BanditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Trace: tr, Machines: 4, Policy: b})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminations == 0 {
		t.Fatal("bandit terminated nothing on a 20-config population")
	}
	// Early termination must save work vs running everything.
	def, err := Run(Options{Trace: tr, Machines: 4, Policy: policy.NewDefault()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Duration >= def.Duration {
		t.Fatalf("bandit (%v) not faster than default (%v)", res.Duration, def.Duration)
	}
}

func TestPOPEndToEnd(t *testing.T) {
	tr := testTrace(t, 20, 7)
	pop, err := policy.NewPOP(policy.POPOptions{Predictor: tinyPredictor()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{
		Trace: tr, Machines: 4, Policy: pop,
		StopAtTarget:    true,
		TrackAllocation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminations == 0 {
		t.Fatal("POP terminated nothing; kill threshold should prune ~32% of configs")
	}
	if res.Fits == 0 {
		t.Fatal("POP never ran a prediction")
	}
	t.Logf("POP: reached=%v ttt=%v suspends=%d terms=%d fits=%d",
		res.Reached, res.TimeToTarget, res.Suspends, res.Terminations, res.Fits)
}

// TestPOPReplayInvariantToPredictorWorkers pins end-to-end schedule
// determinism over the parallel sampler: a whole simulated experiment
// — every fit, estimate, classification, and suspend — is identical
// whether the MCMC worker pool is serial or wide, because posterior
// draws are schedule-independent.
func TestPOPReplayInvariantToPredictorWorkers(t *testing.T) {
	tr := testTrace(t, 16, 7)
	run := func(workers int) *Result {
		cfg := tinyPredictor()
		cfg.Workers = workers
		pop, err := policy.NewPOP(policy.POPOptions{Predictor: cfg})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Options{Trace: tr, Machines: 4, Policy: pop, StopAtTarget: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	wide := run(4)
	if !reflect.DeepEqual(serial, wide) {
		t.Fatalf("simulation diverged across predictor worker counts:\nserial: %+v\nwide:   %+v", serial, wide)
	}
}

func TestPOPBeatsDefaultOnTimeToTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run comparison")
	}
	tr := testTrace(t, 30, 7)
	hasWinner := false
	for _, j := range tr.Jobs {
		for _, s := range j.Samples {
			if s.Metric >= tr.Target {
				hasWinner = true
			}
		}
	}
	if !hasWinner {
		t.Skip("no winner in this trace seed")
	}
	pop, err := policy.NewPOP(policy.POPOptions{Predictor: tinyPredictor()})
	if err != nil {
		t.Fatal(err)
	}
	popRes, err := Run(Options{Trace: tr, Machines: 4, Policy: pop, StopAtTarget: true})
	if err != nil {
		t.Fatal(err)
	}
	defRes, err := Run(Options{Trace: tr, Machines: 4, Policy: policy.NewDefault(), StopAtTarget: true})
	if err != nil {
		t.Fatal(err)
	}
	if !popRes.Reached {
		t.Fatal("POP did not reach the target")
	}
	if defRes.Reached && popRes.TimeToTarget > 2*defRes.TimeToTarget {
		t.Fatalf("POP (%v) dramatically slower than default (%v)", popRes.TimeToTarget, defRes.TimeToTarget)
	}
	t.Logf("time-to-target: pop=%v default=%v", popRes.TimeToTarget, defRes.TimeToTarget)
}

func TestCheckpointAccountingOnSuspend(t *testing.T) {
	tr := testTrace(t, 20, 9)
	pop, err := policy.NewPOP(policy.POPOptions{Predictor: tinyPredictor()})
	if err != nil {
		t.Fatal(err)
	}
	cap9, err := checkpoint.NewCapturer(checkpoint.Framework, 1)
	if err != nil {
		t.Fatal(err)
	}
	var acct checkpoint.Accounting
	res, err := Run(Options{
		Trace: tr, Machines: 2, Policy: pop,
		Checkpointer:         cap9,
		CheckpointAccounting: &acct,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Suspends != len(acct.Records()) {
		t.Fatalf("suspends %d but %d checkpoint records", res.Suspends, len(acct.Records()))
	}
}

func TestBlockingPredictionSlowerThanOverlap(t *testing.T) {
	tr := testTrace(t, 12, 11)
	mk := func() policy.Policy {
		p, err := policy.NewEarlyTerm(policy.EarlyTermOptions{Predictor: tinyPredictor()})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	blocking, err := Run(Options{
		Trace: tr, Machines: 2, Policy: mk(),
		PredictionCost: 5 * time.Minute, OverlapPrediction: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	overlap, err := Run(Options{
		Trace: tr, Machines: 2, Policy: mk(),
		PredictionCost: 5 * time.Minute, OverlapPrediction: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if blocking.Fits == 0 {
		t.Skip("no fits happened; cannot compare")
	}
	if blocking.Duration <= overlap.Duration {
		t.Fatalf("blocking prediction (%v) should be slower than overlapped (%v)",
			blocking.Duration, overlap.Duration)
	}
}

func TestPOPRatioTrackingPopulated(t *testing.T) {
	tr := testTrace(t, 15, 13)
	pop, err := policy.NewPOP(policy.POPOptions{Predictor: tinyPredictor()})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Trace: tr, Machines: 3, Policy: pop, TrackAllocation: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ratios) == 0 {
		t.Fatal("no allocation ratio samples recorded")
	}
	for _, r := range res.Ratios {
		if r.Ratio < 0 || r.Ratio > 1 {
			t.Fatalf("ratio %v out of [0,1]", r.Ratio)
		}
	}
}

func TestJobDurationsHelper(t *testing.T) {
	res := &Result{Jobs: []JobOutcome{
		{ID: "a", Epochs: 10, BusyTime: time.Hour},
		{ID: "b", Epochs: 0, BusyTime: 0}, // never started: excluded
	}}
	durs := res.JobDurations()
	if len(durs) != 1 || durs[0] != 1 {
		t.Fatalf("JobDurations = %v", durs)
	}
}

func TestConcurrencyNeverExceedsMachines(t *testing.T) {
	// Indirect check: with M machines and all jobs completing, the
	// experiment duration must be at least totalWork/M.
	tr := testTrace(t, 9, 15)
	for _, m := range []int{1, 2, 5, 9, 20} {
		res, err := Run(Options{Trace: tr, Machines: m, Policy: policy.NewDefault()})
		if err != nil {
			t.Fatal(err)
		}
		var work time.Duration
		for _, j := range res.Jobs {
			work += j.BusyTime
		}
		lower := work / time.Duration(m)
		if res.Duration < lower-time.Second {
			t.Fatalf("machines=%d: duration %v < work/machines %v", m, res.Duration, lower)
		}
	}
}

func TestMoreMachinesNotSlower(t *testing.T) {
	tr := testTrace(t, 12, 17)
	d1, err := Run(Options{Trace: tr, Machines: 1, Policy: policy.NewDefault()})
	if err != nil {
		t.Fatal(err)
	}
	d4, err := Run(Options{Trace: tr, Machines: 4, Policy: policy.NewDefault()})
	if err != nil {
		t.Fatal(err)
	}
	if d4.Duration > d1.Duration {
		t.Fatalf("4 machines (%v) slower than 1 (%v)", d4.Duration, d1.Duration)
	}
}

func TestSegmentsAndUtilization(t *testing.T) {
	tr := testTrace(t, 6, 31)
	res, err := Run(Options{Trace: tr, Machines: 2, Policy: policy.NewDefault()})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Segments) == 0 {
		t.Fatal("no occupancy segments recorded")
	}
	// Default policy never idles a machine while work remains: per-job
	// total segment time equals its busy time, and per-machine
	// segments never overlap.
	perJob := make(map[string]time.Duration)
	perMachine := make(map[int][]Segment)
	for _, s := range res.Segments {
		if s.End <= s.Start {
			t.Fatalf("degenerate segment %+v", s)
		}
		perJob[s.Job] += s.End - s.Start
		perMachine[s.Machine] = append(perMachine[s.Machine], s)
	}
	for _, j := range res.Jobs {
		if perJob[j.ID] != j.BusyTime {
			t.Fatalf("job %s segments %v != busy %v", j.ID, perJob[j.ID], j.BusyTime)
		}
	}
	for m, segs := range perMachine {
		sort.Slice(segs, func(a, b int) bool { return segs[a].Start < segs[b].Start })
		for i := 1; i < len(segs); i++ {
			if segs[i].Start < segs[i-1].End {
				t.Fatalf("machine %d segments overlap: %+v then %+v", m, segs[i-1], segs[i])
			}
		}
	}
	u := res.Utilization(2)
	if u < 0.8 || u > 1.0 {
		t.Fatalf("default-policy utilization = %.3f, want near 1", u)
	}
	if res.Utilization(0) != 0 {
		t.Fatal("Utilization(0) should be 0")
	}
}

func TestSuspendRotationKeepsUtilizationHigh(t *testing.T) {
	tr := testTrace(t, 8, 33)
	b, err := policy.NewBarrier(policy.NewDefault(), 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Trace: tr, Machines: 2, Policy: b})
	if err != nil {
		t.Fatal(err)
	}
	// Free suspends: rotation must not create idle gaps.
	if u := res.Utilization(2); u < 0.8 {
		t.Fatalf("barrier utilization = %.3f", u)
	}
}
