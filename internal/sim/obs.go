package sim

import (
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// simMetrics mirrors the live engine's telemetry onto the same metric
// names, so simulator and real-runtime dashboards are directly
// comparable.
//
// Unlike the live engine, the simulator's hot path is sub-microsecond
// per epoch, so per-event atomics and span allocations would dominate
// the run. The event loop is single-threaded, so counts are buffered
// in plain fields and flushed to the registry at job lifecycle points
// (start/suspend/terminate/complete) and at the end of the run;
// decision latency is sampled 1-in-256, and spans are created only at
// evaluation boundaries of policies that actually annotate them.
type simMetrics struct {
	reg    *obs.Registry
	tracer *obs.Tracer
	// traced means the policy annotates spans (it implements
	// obs.Instrumentable — POP and EarlyTerm do; the baselines don't),
	// so boundary-epoch spans are worth allocating.
	traced   bool
	boundary int
	// fits and predCost model decision latency in simulated time: a
	// sampled decision's latency is (fit delta) × PredictionCost, the
	// same cost model the engine charges machines with. Wall-clock
	// timing here would make replay output host-dependent.
	fits     *obs.Counter // nil when the policy has no FitCounter
	predCost time.Duration

	// Registry flush targets.
	epochsC, decContC, decSuspC, decTermC           *obs.Counter
	startsC, suspendsC, terminationsC, completionsC *obs.Counter
	decisionLatency, epochDur                       *obs.Histogram

	slotsTotal, slotsBusy, jobsActive, jobsSuspended, best            *obs.Gauge
	poolPromSlots, poolOppSlots, poolPromJobs, poolOppJobs, threshold *obs.Gauge

	// Buffered event-loop state. Owned by the single simulation
	// goroutine; only the flushed registry values are shared. Epochs
	// and decisions keep monotonic sequence counters (for sampling
	// cadence); flush pushes the delta since the previous flush.
	nDec                 int64 // decisions seen (drives latency sampling)
	nEpoch, flushedEpoch int64 // epochs seen / already flushed
	// dec counts verdicts by sched.Decision value (index 0 unused).
	dec, flushedDecs                            [4]int64
	starts, suspends, terminations, completions int64
	durBuf                                      []float64
}

// latencySampleEvery and durSampleEvery are powers of two so the
// sampling test is a mask. The first event is always sampled.
const (
	latencySampleEvery = 256
	durSampleEvery     = 32
)

func newSimMetrics(r *obs.Registry, pol policy.Policy, info policy.Info, predCost time.Duration) *simMetrics {
	_, traced := pol.(obs.Instrumentable)
	b := info.EvalBoundary
	if b <= 0 {
		if b = info.MaxEpoch / 15; b < 1 {
			b = 1
		}
	}
	var fits *obs.Counter
	if fc, ok := pol.(policy.FitCounter); ok {
		fits = fc.Fits()
	}
	return &simMetrics{
		reg:             r,
		tracer:          r.Tracer(),
		traced:          traced,
		boundary:        b,
		fits:            fits,
		predCost:        predCost,
		epochsC:         r.Counter(obs.EpochsTotal),
		decContC:        r.Counter(obs.DecisionsTotal("continue")),
		decSuspC:        r.Counter(obs.DecisionsTotal("suspend")),
		decTermC:        r.Counter(obs.DecisionsTotal("terminate")),
		startsC:         r.Counter(obs.StartsTotal),
		suspendsC:       r.Counter(obs.SuspendsTotal),
		terminationsC:   r.Counter(obs.TerminationsTotal),
		completionsC:    r.Counter(obs.CompletionsTotal),
		decisionLatency: r.Histogram(obs.DecisionLatencySeconds),
		epochDur:        r.Histogram(obs.EpochDurationSeconds, 1, 4, 16, 60, 240, 960, 3600),
		slotsTotal:      r.Gauge(obs.SlotsTotal),
		slotsBusy:       r.Gauge(obs.SlotsBusy),
		jobsActive:      r.Gauge(obs.JobsActive),
		jobsSuspended:   r.Gauge(obs.JobsSuspended),
		best:            r.Gauge(obs.BestMetric),
		poolPromSlots:   r.Gauge(obs.PoolPromisingSlots),
		poolOppSlots:    r.Gauge(obs.PoolOpportunisticSlots),
		poolPromJobs:    r.Gauge(obs.PoolPromisingJobs),
		poolOppJobs:     r.Gauge(obs.PoolOpportunisticJobs),
		threshold:       r.Gauge(obs.ClassificationThreshold),
	}
}

// recordEpoch buffers one completed epoch.
func (m *simMetrics) recordEpoch(seconds float64) {
	if m.reg == nil {
		return
	}
	m.nEpoch++
	if m.nEpoch&(durSampleEvery-1) == 1 {
		m.durBuf = append(m.durBuf, seconds)
	}
}

// flush pushes the buffered deltas onto the registry.
func (m *simMetrics) flush() {
	if m.reg == nil {
		return
	}
	m.epochsC.Add(m.nEpoch - m.flushedEpoch)
	m.flushedEpoch = m.nEpoch
	m.decContC.Add(m.dec[sched.Continue&3] - m.flushedDecs[sched.Continue&3])
	m.decSuspC.Add(m.dec[sched.Suspend&3] - m.flushedDecs[sched.Suspend&3])
	m.decTermC.Add(m.dec[sched.Terminate&3] - m.flushedDecs[sched.Terminate&3])
	m.flushedDecs = m.dec
	m.startsC.Add(m.starts)
	m.suspendsC.Add(m.suspends)
	m.terminationsC.Add(m.terminations)
	m.completionsC.Add(m.completions)
	m.starts, m.suspends, m.terminations, m.completions = 0, 0, 0, 0
	for _, s := range m.durBuf {
		m.epochDur.Observe(s)
	}
	m.durBuf = m.durBuf[:0]
}

// refreshGauges flushes buffered counts and updates occupancy gauges
// from the engine state.
func (e *engine) refreshGauges() {
	if e.met.reg == nil {
		return
	}
	e.met.flush()
	e.met.slotsTotal.Set(float64(e.opts.Machines))
	e.met.slotsBusy.Set(float64(len(e.running)))
	e.met.jobsSuspended.Set(float64(len(e.idleQ)))
	// Active = running + suspended; the idle queue holds exactly the
	// suspended jobs (never-started ones sit in e.pending).
	e.met.jobsActive.Set(float64(len(e.running) + len(e.idleQ)))
}

// observeDecision wraps one OnIterationFinish, mirroring the live
// engine at a cost the simulator can afford: every decision is
// counted, latency is sampled, and spans are allocated only when the
// policy might annotate them (evaluation boundaries) or the decision
// is a latency sample.
func (e *engine) observeDecision(sev *sched.Event, run func() sched.Decision) sched.Decision {
	m := e.met
	if m.reg == nil {
		return run()
	}
	m.nDec++
	sampled := m.nDec&(latencySampleEvery-1) == 1
	boundary := m.traced && sev.Epoch >= m.boundary && sev.Epoch%m.boundary == 0
	if !sampled && !boundary {
		d := run()
		m.dec[d&3]++
		return d
	}
	sp := m.tracer.Start("decision", string(sev.Job), sev.Epoch)
	sev.Span = sp
	// Latency is modeled, not measured: wall-clock timing would differ
	// across hosts and runs, breaking bit-identical replay output. A
	// decision's simulated cost is the curve fits it triggered times
	// the configured per-fit cost (zero when cost modeling is off).
	fits0 := m.fits.Value()
	d := run()
	lat := time.Duration(m.fits.Value()-fits0) * m.predCost
	if sampled {
		m.decisionLatency.Observe(lat.Seconds())
	}
	m.dec[d&3]++
	if sp.Annotated() {
		sp.SetStr("decision", d.String())
		m.tracer.Finish(sp)
		e.emitDecisionTrace(sev, sp, lat)
		e.qual.ObserveDecisionSpan(e.start.Add(e.now), sp, d.String())
		e.publishClassification()
	}
	return d
}

// emitDecisionTrace mirrors one retained decision span onto the Chrome
// trace: a slice on the "decisions" track whose duration is the
// decision's modeled latency (fits triggered × per-fit cost — the same
// simulated-time model the latency histogram records, so the export
// stays host-independent). The span's annotations (ERT, confidence,
// pool sizes, verdict) become the slice's args.
func (e *engine) emitDecisionTrace(sev *sched.Event, sp *obs.Span, lat time.Duration) {
	if e.opts.TraceSink == nil {
		return
	}
	v := sp.Snapshot()
	args := make(map[string]interface{}, len(v.Attrs)+1)
	for _, a := range v.Attrs {
		if a.Str != "" {
			args[a.Key] = a.Str
		} else {
			args[a.Key] = a.Val
		}
	}
	args["span"] = v.ID
	e.opts.TraceSink.Complete("sim", "decisions", "decision "+string(sev.Job),
		e.start.Add(e.now), lat, args)
}

// publishClassification mirrors POP's slot division and the job table
// onto the registry after each boundary decision.
func (e *engine) publishClassification() {
	if e.met.reg == nil {
		return
	}
	pop, hasPOP := e.opts.Policy.(*policy.POP)
	var promising map[string]bool
	var ests map[sched.JobID]float64
	var erts map[sched.JobID]float64
	if hasPOP {
		alloc := pop.Allocation(e)
		e.met.threshold.Set(alloc.Threshold)
		e.met.poolPromSlots.Set(float64(alloc.PromisingSlots))
		oppSlots := e.opts.Machines - alloc.PromisingSlots
		if oppSlots < 0 {
			oppSlots = 0
		}
		e.met.poolOppSlots.Set(float64(oppSlots))
		e.met.poolPromJobs.Set(float64(len(alloc.Promising)))
		e.met.poolOppJobs.Set(float64(len(alloc.Opportunistic)))
		promising = make(map[string]bool, len(alloc.Promising))
		for _, est := range alloc.Promising {
			promising[est.JobID] = true
		}
		ests = make(map[sched.JobID]float64)
		erts = make(map[sched.JobID]float64)
		for id, est := range pop.Estimates() {
			ests[id] = est.Confidence
			erts[id] = est.ERT.Seconds()
		}
	}
	rows := make([]obs.JobRow, 0, len(e.jobs))
	for _, j := range e.jobs {
		st := j.job.State()
		row := obs.JobRow{
			Job:      string(j.id),
			State:    st.String(),
			Epoch:    j.epoch,
			Best:     j.best,
			Priority: j.job.Priority(),
		}
		if hasPOP {
			row.Confidence = ests[j.id]
			row.ERTSeconds = erts[j.id]
			switch {
			case promising[string(j.id)]:
				row.Class = "promising"
			case st == sched.Terminated:
				row.Class = "poor"
			case st == sched.Running || st == sched.Suspended:
				row.Class = "opportunistic"
			}
			// One trace marker per classification change, not per refresh.
			if row.Class != "" && e.lastClass[j.id] != row.Class {
				e.lastClass[j.id] = row.Class
				e.opts.TraceSink.Instant("sim", "classes", string(j.id)+": "+row.Class,
					e.start.Add(e.now),
					map[string]interface{}{"confidence": row.Confidence, "ert_seconds": row.ERTSeconds})
			}
		}
		rows = append(rows, row)
	}
	e.met.reg.PublishJobTable(rows)
	if e.qual != nil && hasPOP {
		var prom, opp, poor int
		for _, row := range rows {
			switch row.Class {
			case "promising":
				prom++
			case "opportunistic":
				opp++
			case "poor":
				poor++
			}
		}
		e.qual.RecordPool(e.start.Add(e.now), prom, opp, poor)
	}
}
