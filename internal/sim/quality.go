package sim

import (
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
)

// Quality wiring: the simulator is the one engine that knows ground
// truth — every job's full learning curve is in the trace — so it
// seeds the audit with per-job oracle records (would the
// configuration reach the target if trained to its budget, at which
// epoch, and how many cumulative training seconds each epoch costs)
// before any prediction is recorded. The calibration joins in
// internal/obs then score every decision-time prediction against
// exact truth rather than the censored outcomes a live cluster sees.
// All timestamps come from the virtual clock, so the audit (and its
// serialized log) is byte-identical across hosts and runs.

// setupQuality stamps the run metadata and derives oracle ground
// truth from the trace curves. Metrics are normalized onto [0,1] with
// the trace's metric range (§6.3 Eq. 4) so audits from different
// workloads are comparable.
func (e *engine) setupQuality() {
	q := e.qual
	if q == nil {
		return
	}
	q.SetMeta(obs.QualityMeta{
		Workload: e.info.Workload,
		Policy:   e.opts.Policy.Name(),
		Target:   e.info.Normalize(e.info.Target),
		Machines: e.opts.Machines,
		MaxEpoch: e.info.MaxEpoch,
		Source:   "sim",
	})
	for _, j := range e.jobs {
		o := obs.OracleRecord{
			Job:        string(j.id),
			CumSeconds: make([]float64, len(j.samples)),
		}
		var cum float64
		best := 0.0
		for i, s := range j.samples {
			cum += s.Duration().Seconds()
			o.CumSeconds[i] = cum
			if n := e.info.Normalize(s.Metric); n > best || i == 0 {
				best = n
			}
			if !o.WouldReach && s.Metric >= e.info.Target {
				o.WouldReach = true
				o.ReachEpoch = i + 1
			}
			if i == len(j.samples)-1 {
				o.FinalMetric = e.info.Normalize(s.Metric)
			}
		}
		o.BestMetric = best
		q.RecordOracle(o)
	}
}

// recordQualityOutcomes files how every job actually ended. With
// oracles already recorded these outcomes are not the label source,
// but they complete the early-termination confusion (terminated ∧
// oracle-poor) and document censoring: how far each job got before
// the scheduler cut it off.
func (e *engine) recordQualityOutcomes() {
	q := e.qual
	if q == nil {
		return
	}
	for _, j := range e.jobs {
		out := obs.OutcomeRecord{
			Job:        string(j.id),
			FinalState: j.job.State().String(),
			Epochs:     j.epoch,
			Best:       e.info.Normalize(j.best),
		}
		for i := 0; i < j.epoch && i < len(j.samples); i++ {
			if j.samples[i].Metric >= e.info.Target {
				out.Reached = true
				out.ReachEpoch = i + 1
				break
			}
		}
		q.RecordOutcome(out)
	}
}
