// Package sim implements the trace-driven discrete-event simulator of
// the paper's sensitivity analysis (§7.1): a Simulator Engine that
// accurately emulates HyperDrive's execution — configuration ordering,
// resource management, suspend/resume, and early termination — driving
// the *same* pluggable scheduling policies as the live runtime
// (internal/policy), fed by replayable traces (internal/trace).
//
// The engine models time explicitly: each machine advances job epochs
// whose durations come from the trace; optional models add prediction
// cost (the §5.2 overlap-training-and-prediction trade-off) and
// suspend latency (internal/checkpoint).
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/appstat"
	"github.com/hyperdrive-ml/hyperdrive/internal/checkpoint"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
	"github.com/hyperdrive-ml/hyperdrive/internal/trace"
)

// Options configures one simulated experiment.
type Options struct {
	// Trace is the workload to replay (required).
	Trace *trace.Trace
	// Machines is S, the number of slots.
	Machines int
	// Policy is a fresh policy instance (required; policies are
	// stateful and must not be reused across runs).
	Policy policy.Policy
	// MaxDuration is Tmax; 0 defaults to 7 days.
	MaxDuration time.Duration
	// StopAtTarget ends the experiment the moment any job reports a
	// metric at or above the trace target (the paper's
	// time-to-target measurements).
	StopAtTarget bool
	// PredictionCost is the modeled wall time of one learning-curve
	// fit. When OverlapPrediction is false the cost delays the
	// machine that triggered the fit (blocking prediction); when
	// true prediction runs alongside training and costs nothing
	// (§5.2).
	PredictionCost    time.Duration
	OverlapPrediction bool
	// Checkpointer models suspend latency; nil makes suspends free.
	Checkpointer *checkpoint.Capturer
	// CheckpointAccounting, when non-nil, records every suspend.
	CheckpointAccounting *checkpoint.Accounting
	// TrackAllocation samples POP's promising/active ratio at every
	// boundary decision (Figure 4c).
	TrackAllocation bool
	// MaxJobs caps how many trace jobs are explored (0 = all).
	MaxJobs int
	// PlanTarget overrides the trace's target in the policy-visible
	// Info (what POP plans toward); 0 keeps the trace target.
	PlanTarget float64
	// StopMetric overrides the StopAtTarget threshold; 0 uses the
	// policy-visible target. Separating the two lets experiments ask
	// "how long until the true best is found" while the policy plans
	// toward a softer goal (the §9 dynamic-target study).
	StopMetric float64
	// Obs, when non-nil, receives the same telemetry the live engine
	// records (decision latency, lifecycle counters, pool gauges,
	// decision spans, job table), making sim and real-runtime
	// dashboards directly comparable. Nil keeps the event loop
	// uninstrumented.
	Obs *obs.Registry
	// TraceSink, when non-nil, receives Chrome trace events for the
	// run: one track per machine carrying the job-occupancy Gantt,
	// plus decision slices and classification-change markers. All
	// timestamps come from the virtual clock (simEpoch + simulated
	// time), never the host clock, so the export is bit-identical
	// across runs and hosts.
	TraceSink *obs.TraceWriter
	// Quality, when non-nil, receives the search-quality audit trail:
	// oracle ground truth derived from the trace curves, every
	// boundary decision's prediction (confidence, ERT, credible band,
	// pool verdict), best-metric samples, pool occupancy, and final
	// outcomes. Like TraceSink, all timestamps are virtual, so the
	// audit's serialized log is byte-identical across runs and hosts.
	// When nil but Obs has a quality audit enabled, that audit is
	// used.
	Quality *obs.QualityAudit
}

// RatioPoint samples the exploitation share over time (Figure 4c).
type RatioPoint struct {
	T        time.Duration
	Ratio    float64
	Active   int
	Promised int
}

// Segment is one contiguous stretch of a job occupying a machine,
// from resume/start to suspend/terminate/complete — the Gantt data
// behind utilization analysis.
type Segment struct {
	Job     string
	Machine int
	Start   time.Duration
	End     time.Duration
}

// JobOutcome describes how a job ended.
type JobOutcome struct {
	ID         string
	Epochs     int
	BusyTime   time.Duration // total training time consumed (Figure 6)
	FinalState sched.State
	Best       float64
}

// Result is the outcome of one simulated experiment.
type Result struct {
	Reached      bool
	TimeToTarget time.Duration
	Duration     time.Duration // total simulated experiment time
	Best         float64
	BestJob      string
	Jobs         []JobOutcome
	Suspends     int
	Terminations int
	Completions  int
	Starts       int
	Fits         int
	Ratios       []RatioPoint
	Segments     []Segment // machine occupancy timeline
}

// Utilization returns the fraction of machine-time spent training
// (sum of segment lengths over machines x experiment duration).
func (r *Result) Utilization(machines int) float64 {
	if machines <= 0 || r.Duration <= 0 {
		return 0
	}
	var busy time.Duration
	for _, s := range r.Segments {
		busy += s.End - s.Start
	}
	return float64(busy) / (float64(machines) * float64(r.Duration))
}

// JobDurations returns every job's busy time in hours (Figure 6).
func (r *Result) JobDurations() []float64 {
	out := make([]float64, 0, len(r.Jobs))
	for _, j := range r.Jobs {
		if j.Epochs > 0 {
			out = append(out, j.BusyTime.Hours())
		}
	}
	return out
}

// simJob is the engine's view of one trace job.
type simJob struct {
	idx      int // position in trace (original exploration order)
	seq      int // idle-queue insertion order (suspends re-enqueue at the back)
	id       sched.JobID
	job      *sched.Job
	samples  []trace.Sample
	epoch    int // completed epochs
	busy     time.Duration
	best     float64
	started  bool
	segStart time.Duration // current occupancy segment start
	machine  int
}

// event is a machine finishing an epoch (or becoming free after
// overhead) at time t.
type event struct {
	t       time.Duration
	machine int
	job     *simJob
	seq     int // tiebreaker for determinism
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// engine is the running simulation state; it implements
// policy.Context.
type engine struct {
	opts    Options
	info    policy.Info
	db      *appstat.DB
	now     time.Duration
	start   time.Time
	jobs    []*simJob
	byID    map[sched.JobID]*simJob
	pending []*simJob // never started, FIFO
	idleQ   []*simJob // suspended, priority-ordered on pop
	running map[int]*simJob
	freeM   []int                 // idle machines
	availAt map[int]time.Duration // per-machine earliest next start (suspend/prediction overhead)
	events  eventHeap
	seq     int
	fifoSeq int // next idle-queue insertion sequence
	res     *Result
	lastFit int
	stopAt  float64
	met     *simMetrics
	qual    *obs.QualityAudit
	// lastClass remembers each job's last published classification so
	// the trace gets one marker per change, not one per refresh.
	lastClass map[sched.JobID]string
}

var simEpoch = time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)

// Run simulates one experiment to completion.
func Run(opts Options) (*Result, error) {
	if opts.Trace == nil {
		return nil, fmt.Errorf("sim: nil trace")
	}
	if err := opts.Trace.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if opts.Machines < 1 {
		return nil, fmt.Errorf("sim: need at least one machine, got %d", opts.Machines)
	}
	if opts.Policy == nil {
		return nil, fmt.Errorf("sim: nil policy")
	}
	if opts.MaxDuration == 0 {
		opts.MaxDuration = 7 * 24 * time.Hour
	}
	if (opts.TraceSink != nil || opts.Quality != nil) && opts.Obs == nil {
		// Decision slices, classification markers, and quality
		// predictions all ride on the registry's tracer; give the run a
		// private one when the caller asked for either without
		// instrumenting.
		opts.Obs = obs.NewRegistry()
	}

	tr := opts.Trace
	e := &engine{
		opts:      opts,
		db:        appstat.NewDB(),
		start:     simEpoch,
		byID:      make(map[sched.JobID]*simJob),
		running:   make(map[int]*simJob),
		lastClass: make(map[sched.JobID]string),
		res:       &Result{},
		info: policy.Info{
			Workload:      tr.Workload,
			Target:        tr.Target,
			KillThreshold: tr.KillThreshold,
			RandomFloor:   tr.RandomFloor,
			EvalBoundary:  tr.EvalBoundary,
			MaxEpoch:      tr.MaxEpoch,
			MetricMin:     tr.MetricMin,
			MetricMax:     tr.MetricMax,
			Reward:        tr.MetricMin < 0, // reward scales extend below zero
			TotalSlots:    opts.Machines,
			MaxDuration:   opts.MaxDuration,
		},
	}

	if opts.PlanTarget != 0 {
		e.info.Target = opts.PlanTarget
	}
	e.met = newSimMetrics(opts.Obs, opts.Policy, e.info, opts.PredictionCost)
	e.stopAt = e.info.Target
	if opts.StopMetric != 0 {
		e.stopAt = opts.StopMetric
	}

	nJobs := len(tr.Jobs)
	if opts.MaxJobs > 0 && opts.MaxJobs < nJobs {
		nJobs = opts.MaxJobs
	}
	for i := 0; i < nJobs; i++ {
		tj := tr.Jobs[i]
		sj := &simJob{
			idx:     i,
			seq:     i, // fresh jobs enter the idle queue in trace order
			id:      sched.JobID(tj.ID),
			job:     sched.NewJob(sched.JobID(tj.ID), tj.Config, tj.Seed, len(tj.Samples)),
			samples: tj.Samples,
		}
		e.jobs = append(e.jobs, sj)
		e.byID[sj.id] = sj
		e.pending = append(e.pending, sj)
	}
	e.fifoSeq = nJobs
	e.availAt = make(map[int]time.Duration, opts.Machines)
	for m := 0; m < opts.Machines; m++ {
		e.freeM = append(e.freeM, m)
	}
	e.qual = opts.Quality
	if e.qual == nil && opts.Obs != nil {
		e.qual = opts.Obs.Quality()
	}
	e.setupQuality()

	e.run()
	return e.res, nil
}

// run executes the event loop.
func (e *engine) run() {
	if e.opts.Obs != nil {
		if in, ok := e.opts.Policy.(obs.Instrumentable); ok {
			in.Instrument(e.opts.Obs)
		}
	}
	e.opts.Policy.AllocateJobs(e)
	e.refreshGauges()
	for e.events.Len() > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.t > e.opts.MaxDuration {
			e.now = e.opts.MaxDuration
			break
		}
		e.now = ev.t
		if done := e.handleEpochFinish(ev); done {
			break
		}
	}
	e.finish()
}

// handleEpochFinish processes one epoch completion; returns true when
// the experiment should stop.
func (e *engine) handleEpochFinish(ev *event) bool {
	j := ev.job
	j.epoch++
	s := j.samples[j.epoch-1]
	j.busy += s.Duration()
	j.job.SetEpoch(j.epoch)
	if s.Metric > j.best || j.epoch == 1 {
		j.best = s.Metric
	}
	e.db.Report(j.id, appstat.Stat{
		Epoch:    s.Epoch,
		Metric:   s.Metric,
		Duration: s.Duration(),
		At:       e.start.Add(e.now),
	})
	e.met.recordEpoch(s.Duration().Seconds())

	sev := sched.Event{
		Job:      j.id,
		Epoch:    j.epoch,
		Metric:   s.Metric,
		Duration: s.Duration(),
		Time:     e.start.Add(e.now),
	}
	pol := e.opts.Policy
	pol.ApplicationStat(e, sev)
	if pop, ok := pol.(*policy.POP); ok {
		pop.ObserveBest(e.info, s.Metric)
	}

	if e.updateBest(j, s.Metric) && e.opts.StopAtTarget {
		e.res.Reached = true
		e.res.TimeToTarget = e.now
		e.traceMark(ev.machine, "target reached",
			map[string]interface{}{"job": string(j.id), "metric": s.Metric})
		return true
	}

	// Job finished its budget?
	if j.epoch >= len(j.samples) {
		if err := j.job.Complete(); err == nil {
			e.res.Completions++
			e.met.completions++
			e.traceMark(ev.machine, "complete "+string(j.id),
				map[string]interface{}{"best": j.best})
		}
		e.closeSegment(j)
		e.freeMachine(ev.machine, 0)
		pol.AllocateJobs(e)
		e.refreshGauges()
		return false
	}

	decision := e.observeDecision(&sev, func() sched.Decision {
		return pol.OnIterationFinish(e, sev)
	})
	// Blocking prediction cost: delay this machine by the fits that
	// the decision just performed.
	var predDelay time.Duration
	if fc, ok := pol.(policy.FitCounter); ok {
		fits := int(fc.Fits().Value())
		e.res.Fits = fits
		if !e.opts.OverlapPrediction && e.opts.PredictionCost > 0 {
			predDelay = time.Duration(fits-e.lastFit) * e.opts.PredictionCost
		}
		e.lastFit = fits
	}
	if e.opts.TrackAllocation {
		e.sampleRatio()
	}

	switch decision {
	case sched.Suspend:
		var overhead time.Duration
		if e.opts.Checkpointer != nil {
			snap, _ := marshalEpoch(j)
			img := e.opts.Checkpointer.Capture(snap)
			overhead = img.Latency
			if e.opts.CheckpointAccounting != nil {
				e.opts.CheckpointAccounting.Observe(checkpoint.Record{Size: img.Size, Latency: img.Latency})
			}
		}
		if err := j.job.Suspend(); err == nil {
			e.res.Suspends++
			e.met.suspends++
			e.enqueueIdle(j)
			e.traceMark(ev.machine, "suspend "+string(j.id),
				map[string]interface{}{"overhead_us": overhead.Microseconds()})
		}
		e.closeSegment(j)
		e.freeMachine(ev.machine, predDelay+overhead)
		pol.AllocateJobs(e)
		e.refreshGauges()
	case sched.Terminate:
		if err := j.job.Terminate(); err == nil {
			e.res.Terminations++
			e.met.terminations++
			e.traceMark(ev.machine, "terminate "+string(j.id),
				map[string]interface{}{"epoch": j.epoch, "best": j.best})
		}
		e.closeSegment(j)
		e.freeMachine(ev.machine, predDelay)
		pol.AllocateJobs(e)
		e.refreshGauges()
	default: // Continue
		e.scheduleEpoch(ev.machine, j, predDelay)
	}
	return false
}

// updateBest tracks the global best; returns true when the target is
// reached for the first time.
func (e *engine) updateBest(j *simJob, metric float64) bool {
	if metric > e.res.Best || e.res.BestJob == "" {
		e.res.Best = metric
		e.res.BestJob = string(j.id)
		e.met.best.Set(metric)
		e.qual.RecordBest(e.start.Add(e.now), string(j.id), e.info.Normalize(metric))
	}
	return metric >= e.stopAt
}

// scheduleEpoch queues the next epoch-finish event for job j on
// machine m, honoring the machine's availability time (suspend or
// blocking-prediction overhead from its previous occupant).
func (e *engine) scheduleEpoch(m int, j *simJob, extraDelay time.Duration) {
	startT := e.now
	if at, ok := e.availAt[m]; ok && at > startT {
		startT = at
	}
	if _, wasRunning := e.running[m]; !wasRunning || e.running[m] != j {
		j.segStart = startT + extraDelay
		j.machine = m
	}
	next := j.samples[j.epoch] // duration of the upcoming epoch
	e.seq++
	heap.Push(&e.events, &event{
		t:       startT + extraDelay + next.Duration(),
		machine: m,
		job:     j,
		seq:     e.seq,
	})
	e.running[m] = j
}

// closeSegment records the occupancy stretch ending now for job j,
// both in the result and (when tracing) as a complete slice on the
// machine's trace track.
func (e *engine) closeSegment(j *simJob) {
	if e.now > j.segStart {
		e.res.Segments = append(e.res.Segments, Segment{
			Job: string(j.id), Machine: j.machine, Start: j.segStart, End: e.now,
		})
		e.opts.TraceSink.Complete("sim", fmt.Sprintf("m%d", j.machine), string(j.id),
			e.start.Add(j.segStart), e.now-j.segStart,
			map[string]interface{}{"epoch": j.epoch, "best": j.best})
	}
	j.segStart = e.now
}

// traceMark drops an instant marker on machine m's trace track at the
// current virtual time.
func (e *engine) traceMark(m int, name string, args map[string]interface{}) {
	e.opts.TraceSink.Instant("sim", fmt.Sprintf("m%d", m), name, e.start.Add(e.now), args)
}

// freeMachine releases machine m; overhead models suspend latency or
// blocking prediction time that keeps the slot unusable for a while.
func (e *engine) freeMachine(m int, overhead time.Duration) {
	delete(e.running, m)
	e.availAt[m] = e.now + overhead
	e.freeM = append(e.freeM, m)
}

// enqueueIdle adds a suspended job to the back of the idle queue
// (§4.2: priority ordering matters most "when adding a suspended job
// to the list of idle jobs"; without a priority the queue is FIFO by
// insertion, so a just-suspended job waits behind everything already
// queued — that is what makes the opportunistic pool a round-robin).
func (e *engine) enqueueIdle(j *simJob) {
	j.seq = e.fifoSeq
	e.fifoSeq++
	e.idleQ = append(e.idleQ, j)
}

// nextIdle pops the best idle job: highest priority first, then FIFO
// by queue-insertion order across the union of never-started and
// suspended jobs.
func (e *engine) nextIdle() (*simJob, bool) {
	bestIdx := -1
	for i, j := range e.idleQ {
		if bestIdx == -1 {
			bestIdx = i
			continue
		}
		b := e.idleQ[bestIdx]
		ji, jb := j.job.Priority(), b.job.Priority()
		//hdlint:ignore floateq an exact priority tie deliberately falls back to FIFO order; a tolerance would make rotation order depend on its width
		if ji > jb || (ji == jb && j.seq < b.seq) {
			bestIdx = i
		}
	}
	var suspended *simJob
	if bestIdx >= 0 {
		suspended = e.idleQ[bestIdx]
	}
	var pending *simJob
	if len(e.pending) > 0 {
		pending = e.pending[0]
	}
	switch {
	case suspended == nil && pending == nil:
		return nil, false
	case suspended == nil:
		e.pending = e.pending[1:]
		return pending, true
	case pending == nil || suspended.job.Priority() > 0 || suspended.seq < pending.seq:
		e.idleQ = append(e.idleQ[:bestIdx], e.idleQ[bestIdx+1:]...)
		return suspended, true
	default:
		e.pending = e.pending[1:]
		return pending, true
	}
}

// sampleRatio records POP's promising/active ratio (Figure 4c).
func (e *engine) sampleRatio() {
	pop, ok := e.opts.Policy.(*policy.POP)
	if !ok {
		return
	}
	alloc := pop.Allocation(e)
	active := len(e.ActiveJobs())
	if active == 0 {
		return
	}
	e.res.Ratios = append(e.res.Ratios, RatioPoint{
		T:        e.now,
		Ratio:    float64(len(alloc.Promising)) / float64(active),
		Active:   active,
		Promised: len(alloc.Promising),
	})
}

// finish fills the result summary.
func (e *engine) finish() {
	e.res.Duration = e.now
	// Close segments of jobs still running at the cutoff, in machine
	// order: segment order is part of the replay-visible result, so map
	// iteration order must not leak into it.
	ms := make([]int, 0, len(e.running))
	for m := range e.running {
		ms = append(ms, m)
	}
	sort.Ints(ms)
	for _, m := range ms {
		e.closeSegment(e.running[m])
	}
	for _, j := range e.jobs {
		e.res.Jobs = append(e.res.Jobs, JobOutcome{
			ID:         string(j.id),
			Epochs:     j.epoch,
			BusyTime:   j.busy,
			FinalState: j.job.State(),
			Best:       j.best,
		})
	}
	if fc, ok := e.opts.Policy.(policy.FitCounter); ok {
		e.res.Fits = int(fc.Fits().Value())
	}
	e.recordQualityOutcomes()
	e.refreshGauges() // final flush of buffered telemetry
}

// --- policy.Context implementation -----------------------------------

func (e *engine) Info() policy.Info { return e.info }
func (e *engine) DB() *appstat.DB   { return e.db }
func (e *engine) Now() time.Time    { return e.start.Add(e.now) }
func (e *engine) Start() time.Time  { return e.start }
func (e *engine) IdleSlots() int    { return len(e.freeM) }
func (e *engine) IdleJobs() int     { return len(e.pending) + len(e.idleQ) }

func (e *engine) StartIdleJob() (sched.JobID, bool) {
	if len(e.freeM) == 0 {
		return "", false
	}
	j, ok := e.nextIdle()
	if !ok {
		return "", false
	}
	m := e.freeM[0]
	e.freeM = e.freeM[1:]
	if err := j.job.Start(sched.MachineID(fmt.Sprintf("m%d", m))); err != nil {
		// Should not happen; drop the job defensively.
		return "", false
	}
	if !j.started {
		j.started = true
		e.res.Starts++
		e.met.starts++
	}
	e.scheduleEpoch(m, j, 0)
	return j.id, true
}

func (e *engine) ActiveJobs() []sched.JobID {
	out := make([]sched.JobID, 0, len(e.jobs))
	for _, j := range e.jobs {
		st := j.job.State()
		if st == sched.Running || st == sched.Suspended {
			out = append(out, j.id)
		}
	}
	sort.Slice(out, func(i, k int) bool { return out[i] < out[k] })
	return out
}

func (e *engine) JobEpoch(id sched.JobID) int {
	if j, ok := e.byID[id]; ok {
		return j.epoch
	}
	return 0
}

func (e *engine) LabelJob(id sched.JobID, p float64) {
	if j, ok := e.byID[id]; ok {
		j.job.SetPriority(p)
	}
}

func (e *engine) TerminateIdleJob(id sched.JobID) bool {
	j, ok := e.byID[id]
	if !ok || j.job.State() != sched.Suspended {
		return false
	}
	if err := j.job.Terminate(); err != nil {
		return false
	}
	for i, q := range e.idleQ {
		if q == j {
			e.idleQ = append(e.idleQ[:i], e.idleQ[i+1:]...)
			break
		}
	}
	e.res.Terminations++
	return true
}

var _ policy.Context = (*engine)(nil)

// marshalEpoch serializes the job's logical training state (its epoch
// counter) as the checkpoint payload.
func marshalEpoch(j *simJob) ([]byte, error) {
	return []byte(fmt.Sprintf(`{"workload":%q,"epoch":%d}`, "sim", j.epoch)), nil
}
