package sim

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// TestWorkConservation checks the engine's core accounting invariant
// under every built-in policy: each job's busy time equals the sum of
// the trace durations of exactly the epochs it consumed, and epochs
// never exceed the trace length.
func TestWorkConservation(t *testing.T) {
	tr := testTrace(t, 15, 21)
	reg := policy.NewRegistry()
	for _, name := range reg.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			pol, err := reg.New(name)
			if err != nil {
				t.Fatal(err)
			}
			if pop, ok := pol.(*policy.POP); ok {
				_ = pop // default registry POP uses FastConfig; fine at 15 configs
			}
			res, err := Run(Options{Trace: tr, Machines: 3, Policy: pol})
			if err != nil {
				t.Fatal(err)
			}
			byID := make(map[string][]int64)
			for _, j := range tr.Jobs {
				var durs []int64
				for _, s := range j.Samples {
					durs = append(durs, s.DurationNs)
				}
				byID[j.ID] = durs
			}
			for _, j := range res.Jobs {
				durs := byID[j.ID]
				if j.Epochs > len(durs) {
					t.Fatalf("job %s consumed %d epochs of %d", j.ID, j.Epochs, len(durs))
				}
				var want time.Duration
				for _, d := range durs[:j.Epochs] {
					want += time.Duration(d)
				}
				if j.BusyTime != want {
					t.Fatalf("job %s busy %v, want %v", j.ID, j.BusyTime, want)
				}
			}
		})
	}
}

// TestLifecycleAccounting checks that starts/terminations/completions/
// suspends are mutually consistent with final job states.
func TestLifecycleAccounting(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := testTrace(t, 5+rng.Intn(10), seed)
		b, err := policy.NewBandit(policy.BanditOptions{})
		if err != nil {
			return false
		}
		res, err := Run(Options{Trace: tr, Machines: 1 + rng.Intn(4), Policy: b})
		if err != nil {
			return false
		}
		terminated, completed := 0, 0
		for _, j := range res.Jobs {
			switch j.FinalState {
			case sched.Terminated:
				terminated++
			case sched.Completed:
				completed++
			}
		}
		return terminated == res.Terminations && completed == res.Completions &&
			res.Starts <= len(res.Jobs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestPOPDeterministicAcrossRuns: identical trace + options => byte-
// identical scheduling outcomes, including the MCMC-driven policy.
func TestPOPDeterministicAcrossRuns(t *testing.T) {
	tr := testTrace(t, 12, 23)
	run := func() (*Result, string) {
		pop, err := policy.NewPOP(policy.POPOptions{Predictor: tinyPredictor()})
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		pop.Instrument(reg)
		res, err := Run(Options{
			Trace: tr, Machines: 3, Policy: pop, StopAtTarget: true,
			Obs: reg, PredictionCost: 40 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		var text strings.Builder
		if err := reg.WritePrometheus(&text); err != nil {
			t.Fatal(err)
		}
		// hyperdrive_mcmc_fit_duration_seconds is measured wall-clock
		// by design (the predictor's documented detclock exception), so
		// it is the one series allowed to differ between replays.
		var kept []string
		for _, line := range strings.Split(text.String(), "\n") {
			if !strings.Contains(line, "hyperdrive_mcmc_fit_duration_seconds") {
				kept = append(kept, line)
			}
		}
		return res, strings.Join(kept, "\n")
	}
	a, am := run()
	b, bm := run()
	if a.Duration != b.Duration || a.Suspends != b.Suspends ||
		a.Terminations != b.Terminations || a.Fits != b.Fits {
		t.Fatalf("POP runs diverged:\n%+v\n%+v", a, b)
	}
	for i := range a.Jobs {
		if a.Jobs[i] != b.Jobs[i] {
			t.Fatalf("job %d diverged: %+v vs %+v", i, a.Jobs[i], b.Jobs[i])
		}
	}
	// Telemetry must replay bit-for-bit too: every recorded quantity —
	// including sampled decision latency — is modeled in simulated
	// time, never measured from the host clock.
	if am != bm {
		t.Fatalf("telemetry diverged across identical replays:\n--- run A\n%s\n--- run B\n%s", am, bm)
	}
}

// TestSuspendedJobsResumeExactly: a suspended job's later epochs pick
// up exactly where it left off (no repeated or skipped epochs), even
// under heavy rotation from a barrier policy.
func TestSuspendedJobsResumeExactly(t *testing.T) {
	tr := testTrace(t, 6, 25)
	inner := policy.NewDefault()
	b, err := policy.NewBarrier(inner, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Options{Trace: tr, Machines: 2, Policy: b})
	if err != nil {
		t.Fatal(err)
	}
	if res.Suspends == 0 {
		t.Fatal("barrier produced no suspends")
	}
	for _, j := range res.Jobs {
		if j.Epochs != tr.MaxEpoch {
			t.Fatalf("job %s finished with %d epochs after rotation", j.ID, j.Epochs)
		}
		if j.FinalState != sched.Completed {
			t.Fatalf("job %s state %v", j.ID, j.FinalState)
		}
	}
}
