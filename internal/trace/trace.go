// Package trace implements the Trace Generator of the paper's
// sensitivity-analysis toolchain (§7.1): replayable workload traces
// holding per-epoch iteration timing and performance metrics for every
// configuration, collected from experiment runs, with support for
// permuting configuration order (the Figure 12c study). Traces are
// what the discrete-event simulator replays.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/param"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// Sample is one recorded epoch.
type Sample struct {
	Epoch      int     `json:"epoch"`
	Metric     float64 `json:"metric"`
	DurationNs int64   `json:"durationNs"`
}

// Job is one configuration's full training trace.
type Job struct {
	ID      string             `json:"id"`
	Config  map[string]float64 `json:"config"`
	Seed    int64              `json:"seed"`
	Samples []Sample           `json:"samples"`
}

// Duration returns the sample's duration as a time.Duration.
func (s Sample) Duration() time.Duration { return time.Duration(s.DurationNs) }

// Trace is a replayable workload: domain metadata plus the full curves
// of every configuration in exploration order.
type Trace struct {
	Workload      string  `json:"workload"`
	Target        float64 `json:"target"`
	KillThreshold float64 `json:"killThreshold"`
	RandomFloor   float64 `json:"randomFloor"`
	EvalBoundary  int     `json:"evalBoundary"`
	MaxEpoch      int     `json:"maxEpoch"`
	MetricMin     float64 `json:"metricMin"`
	MetricMax     float64 `json:"metricMax"`
	Jobs          []Job   `json:"jobs"`
}

// Collect runs every configuration to completion on the synthetic
// workload and records its curve — the stand-in for the paper's
// "traces collected from live system experiments" (their live system
// is a GPU cluster; ours is the generative trainer, which is the same
// source the live runner in internal/cluster uses).
func Collect(spec workload.Spec, configs []param.Config, seeds []int64) (*Trace, error) {
	if len(seeds) != 0 && len(seeds) != len(configs) {
		return nil, fmt.Errorf("trace: %d seeds for %d configs", len(seeds), len(configs))
	}
	lo, hi := spec.MetricRange()
	tr := &Trace{
		Workload:      spec.Name(),
		Target:        spec.Target(),
		KillThreshold: spec.KillThreshold(),
		RandomFloor:   spec.RandomFloor(),
		EvalBoundary:  spec.EvalBoundary(),
		MaxEpoch:      spec.MaxEpoch(),
		MetricMin:     lo,
		MetricMax:     hi,
	}
	for i, cfg := range configs {
		var seed int64
		if len(seeds) > 0 {
			seed = seeds[i]
		}
		tj := Job{
			ID:      fmt.Sprintf("job-%03d", i),
			Config:  cfg,
			Seed:    seed,
			Samples: make([]Sample, 0, spec.MaxEpoch()),
		}
		trainer := spec.New(cfg, seed)
		for {
			s, done := trainer.Step()
			tj.Samples = append(tj.Samples, Sample{Epoch: s.Epoch, Metric: s.Metric, DurationNs: int64(s.Duration)})
			if done {
				break
			}
		}
		tr.Jobs = append(tr.Jobs, tj)
	}
	return tr, nil
}

// Validate checks structural invariants: positive epochs in order,
// durations positive, non-empty jobs.
func (t *Trace) Validate() error {
	if t.Workload == "" {
		return fmt.Errorf("trace: missing workload name")
	}
	if len(t.Jobs) == 0 {
		return fmt.Errorf("trace: no jobs")
	}
	for _, j := range t.Jobs {
		if len(j.Samples) == 0 {
			return fmt.Errorf("trace: job %s has no samples", j.ID)
		}
		prev := 0
		for _, s := range j.Samples {
			if s.Epoch != prev+1 {
				return fmt.Errorf("trace: job %s epoch %d follows %d", j.ID, s.Epoch, prev)
			}
			if s.DurationNs <= 0 {
				return fmt.Errorf("trace: job %s epoch %d non-positive duration", j.ID, s.Epoch)
			}
			prev = s.Epoch
		}
	}
	return nil
}

// Permute returns a copy of the trace with job order shuffled by the
// seed; configuration-order sensitivity (Figure 12c) replays the same
// trace under many permutations.
func (t *Trace) Permute(seed int64) *Trace {
	out := *t
	out.Jobs = append([]Job(nil), t.Jobs...)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(out.Jobs), func(i, j int) {
		out.Jobs[i], out.Jobs[j] = out.Jobs[j], out.Jobs[i]
	})
	return &out
}

// Write serializes the trace as JSON.
func (t *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t)
}

// WriteFile writes the trace to a file.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	if err := t.Write(f); err != nil {
		return fmt.Errorf("trace: write %s: %w", path, err)
	}
	return f.Sync()
}

// Read parses a trace and validates it.
func Read(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// ReadFile reads a trace file.
func ReadFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	defer f.Close()
	return Read(f)
}

// Recorder accumulates a Trace from a live experiment's statistic
// stream — the paper's actual Trace Generator data path ("collects the
// traces from live system experiments", §7.1). Stats may arrive out of
// order per job (suspend/resume re-reports); the recorder keeps each
// job's samples sorted and deduplicated by epoch. Safe for concurrent
// use.
//
// A trace is only fully replayable under arbitrary policies when the
// recorded run executed every configuration to completion (e.g., the
// Default policy); traces recorded under early-terminating policies
// contain truncated curves, which Finish reports via the complete
// return value.
type Recorder struct {
	mu   sync.Mutex
	meta Trace
	jobs map[string]*Job
	seen map[string]map[int]bool
}

// NewRecorder builds a recorder for a workload's metadata.
func NewRecorder(spec workload.Spec) *Recorder {
	lo, hi := spec.MetricRange()
	return &Recorder{
		meta: Trace{
			Workload:      spec.Name(),
			Target:        spec.Target(),
			KillThreshold: spec.KillThreshold(),
			RandomFloor:   spec.RandomFloor(),
			EvalBoundary:  spec.EvalBoundary(),
			MaxEpoch:      spec.MaxEpoch(),
			MetricMin:     lo,
			MetricMax:     hi,
		},
		jobs: make(map[string]*Job),
		seen: make(map[string]map[int]bool),
	}
}

// StartJob registers a job's configuration and seed (idempotent).
func (r *Recorder) StartJob(id string, cfg param.Config, seed int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.jobs[id]; ok {
		return
	}
	r.jobs[id] = &Job{ID: id, Config: cfg.Clone(), Seed: seed}
	r.seen[id] = make(map[int]bool)
}

// Observe records one statistic for a started job; unknown jobs and
// duplicate epochs are ignored.
func (r *Recorder) Observe(id string, epoch int, metric float64, duration time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok || epoch < 1 || duration <= 0 {
		return
	}
	if r.seen[id][epoch] {
		return
	}
	r.seen[id][epoch] = true
	j.Samples = append(j.Samples, Sample{Epoch: epoch, Metric: metric, DurationNs: int64(duration)})
}

// Finish assembles the trace in job-start order. complete reports
// whether every job's curve covers the full epoch budget (replayable
// under any policy).
func (r *Recorder) Finish() (tr *Trace, complete bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := r.meta
	complete = true
	ids := make([]string, 0, len(r.jobs))
	for id := range r.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		j := r.jobs[id]
		if len(j.Samples) == 0 {
			complete = false
			continue
		}
		samples := append([]Sample(nil), j.Samples...)
		sort.Slice(samples, func(a, b int) bool { return samples[a].Epoch < samples[b].Epoch })
		// Keep only the contiguous prefix starting at epoch 1.
		var prefix []Sample
		for i, s := range samples {
			if s.Epoch != i+1 {
				break
			}
			prefix = append(prefix, s)
		}
		if len(prefix) == 0 {
			complete = false
			continue
		}
		if len(prefix) < out.MaxEpoch {
			complete = false
		}
		out.Jobs = append(out.Jobs, Job{ID: j.ID, Config: j.Config, Seed: j.Seed, Samples: prefix})
	}
	if err := out.Validate(); err != nil {
		return nil, false, err
	}
	return &out, complete, nil
}
