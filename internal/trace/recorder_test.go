package trace

import (
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/param"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

func TestRecorderBasics(t *testing.T) {
	spec := workload.CIFAR10()
	r := NewRecorder(spec)
	cfg := param.Config{"learning_rate": 0.01}
	r.StartJob("a", cfg, 7)
	r.StartJob("a", cfg, 9) // idempotent: first registration wins
	for e := 1; e <= 5; e++ {
		r.Observe("a", e, float64(e)/10, time.Minute)
	}
	r.Observe("a", 3, 0.99, time.Minute)    // duplicate epoch ignored
	r.Observe("ghost", 1, 0.5, time.Minute) // unknown job ignored
	r.Observe("a", 0, 0.5, time.Minute)     // invalid epoch ignored
	r.Observe("a", 6, 0.5, 0)               // invalid duration ignored

	tr, complete, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if complete {
		t.Fatal("5 of 120 epochs should not be complete")
	}
	if len(tr.Jobs) != 1 || tr.Jobs[0].Seed != 7 {
		t.Fatalf("jobs = %+v", tr.Jobs)
	}
	if len(tr.Jobs[0].Samples) != 5 {
		t.Fatalf("samples = %d, want 5", len(tr.Jobs[0].Samples))
	}
	if tr.Jobs[0].Samples[2].Metric != 0.3 {
		t.Fatalf("duplicate overwrote original: %v", tr.Jobs[0].Samples[2])
	}
	if tr.Workload != "cifar10" || tr.Target != spec.Target() {
		t.Fatalf("metadata = %+v", tr)
	}
}

func TestRecorderOutOfOrderAndGaps(t *testing.T) {
	r := NewRecorder(workload.CIFAR10())
	r.StartJob("a", param.Config{"x": 1}, 1)
	// Out of order arrival: 2, 1, 3 then a gap at 5.
	r.Observe("a", 2, 0.2, time.Minute)
	r.Observe("a", 1, 0.1, time.Minute)
	r.Observe("a", 3, 0.3, time.Minute)
	r.Observe("a", 5, 0.5, time.Minute)
	tr, complete, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if complete {
		t.Fatal("gapped curve should not be complete")
	}
	// Only the contiguous prefix 1..3 is kept.
	if len(tr.Jobs[0].Samples) != 3 {
		t.Fatalf("samples = %+v", tr.Jobs[0].Samples)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRecorderCompleteRun(t *testing.T) {
	spec := workload.CIFAR10()
	r := NewRecorder(spec)
	r.StartJob("a", param.Config{"x": 1}, 1)
	for e := 1; e <= spec.MaxEpoch(); e++ {
		r.Observe("a", e, 0.1+float64(e)/1000, time.Minute)
	}
	tr, complete, err := r.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !complete {
		t.Fatal("full curve should be complete")
	}
	if len(tr.Jobs[0].Samples) != spec.MaxEpoch() {
		t.Fatalf("samples = %d", len(tr.Jobs[0].Samples))
	}
}

func TestRecorderEmptyFails(t *testing.T) {
	r := NewRecorder(workload.CIFAR10())
	if _, _, err := r.Finish(); err == nil {
		t.Fatal("empty recorder should fail validation")
	}
	// A job with no samples at all is dropped, leaving nothing.
	r.StartJob("a", param.Config{}, 1)
	if _, _, err := r.Finish(); err == nil {
		t.Fatal("sampleless recorder should fail validation")
	}
}
