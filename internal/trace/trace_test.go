package trace

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"github.com/hyperdrive-ml/hyperdrive/internal/param"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

func collectSmall(t *testing.T, n int) *Trace {
	t.Helper()
	spec := workload.CIFAR10()
	rng := rand.New(rand.NewSource(7))
	configs := make([]param.Config, n)
	seeds := make([]int64, n)
	for i := range configs {
		configs[i] = spec.Space().Sample(rng)
		seeds[i] = int64(i)
	}
	tr, err := Collect(spec, configs, seeds)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestCollectShape(t *testing.T) {
	tr := collectSmall(t, 5)
	if tr.Workload != "cifar10" || tr.Target != 0.77 || tr.MaxEpoch != 120 {
		t.Fatalf("metadata = %+v", tr)
	}
	if len(tr.Jobs) != 5 {
		t.Fatalf("jobs = %d", len(tr.Jobs))
	}
	for _, j := range tr.Jobs {
		if len(j.Samples) != 120 {
			t.Fatalf("job %s has %d samples, want 120", j.ID, len(j.Samples))
		}
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCollectSeedMismatch(t *testing.T) {
	spec := workload.CIFAR10()
	rng := rand.New(rand.NewSource(1))
	if _, err := Collect(spec, []param.Config{spec.Space().Sample(rng)}, []int64{1, 2}); err == nil {
		t.Fatal("Collect accepted mismatched seeds")
	}
}

func TestCollectMatchesTrainer(t *testing.T) {
	spec := workload.CIFAR10()
	rng := rand.New(rand.NewSource(3))
	cfg := spec.Space().Sample(rng)
	tr, err := Collect(spec, []param.Config{cfg}, []int64{9})
	if err != nil {
		t.Fatal(err)
	}
	trainer := spec.New(cfg, 9)
	for i := 0; ; i++ {
		s, done := trainer.Step()
		got := tr.Jobs[0].Samples[i]
		if got.Epoch != s.Epoch || got.Metric != s.Metric || got.Duration() != s.Duration {
			t.Fatalf("sample %d: trace %+v vs trainer %+v", i, got, s)
		}
		if done {
			break
		}
	}
}

func TestRoundTrip(t *testing.T) {
	tr := collectSmall(t, 3)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Workload != tr.Workload || len(got.Jobs) != len(tr.Jobs) {
		t.Fatalf("round trip lost data: %+v", got)
	}
	for i := range tr.Jobs {
		if got.Jobs[i].ID != tr.Jobs[i].ID || len(got.Jobs[i].Samples) != len(tr.Jobs[i].Samples) {
			t.Fatalf("job %d mismatch", i)
		}
		for k := range tr.Jobs[i].Samples {
			if got.Jobs[i].Samples[k] != tr.Jobs[i].Samples[k] {
				t.Fatalf("job %d sample %d mismatch", i, k)
			}
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	tr := collectSmall(t, 2)
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(got.Jobs))
	}
}

func TestReadRejectsInvalid(t *testing.T) {
	if _, err := Read(strings.NewReader("{")); err == nil {
		t.Fatal("Read accepted truncated JSON")
	}
	if _, err := Read(strings.NewReader(`{"workload":"x","jobs":[]}`)); err == nil {
		t.Fatal("Read accepted empty-jobs trace")
	}
	bad := `{"workload":"x","jobs":[{"id":"a","samples":[{"epoch":2,"metric":0.1,"durationNs":5}]}]}`
	if _, err := Read(strings.NewReader(bad)); err == nil {
		t.Fatal("Read accepted gap in epochs")
	}
	bad = `{"workload":"x","jobs":[{"id":"a","samples":[{"epoch":1,"metric":0.1,"durationNs":0}]}]}`
	if _, err := Read(strings.NewReader(bad)); err == nil {
		t.Fatal("Read accepted zero duration")
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile("/nonexistent/trace.json"); err == nil {
		t.Fatal("ReadFile of missing file should fail")
	}
}

func TestPermutePreservesJobs(t *testing.T) {
	tr := collectSmall(t, 8)
	perm := tr.Permute(99)
	if len(perm.Jobs) != len(tr.Jobs) {
		t.Fatal("permute changed job count")
	}
	// Same job set.
	ids := make(map[string]bool)
	for _, j := range tr.Jobs {
		ids[j.ID] = true
	}
	for _, j := range perm.Jobs {
		if !ids[j.ID] {
			t.Fatalf("permute invented job %s", j.ID)
		}
	}
	// Original untouched.
	for i, j := range tr.Jobs {
		if j.ID != collectSmall(t, 8).Jobs[i].ID {
			t.Fatal("permute mutated the source trace")
		}
	}
}

func TestPermuteDeterministic(t *testing.T) {
	tr := collectSmall(t, 10)
	a, b := tr.Permute(5), tr.Permute(5)
	for i := range a.Jobs {
		if a.Jobs[i].ID != b.Jobs[i].ID {
			t.Fatal("same permutation seed gave different orders")
		}
	}
	c := tr.Permute(6)
	same := true
	for i := range a.Jobs {
		if a.Jobs[i].ID != c.Jobs[i].ID {
			same = false
		}
	}
	if same {
		t.Fatal("different permutation seeds gave identical orders")
	}
}

func TestPermutePropertySameMultiset(t *testing.T) {
	tr := collectSmall(t, 6)
	prop := func(seed int64) bool {
		perm := tr.Permute(seed)
		if len(perm.Jobs) != len(tr.Jobs) {
			return false
		}
		seen := make(map[string]int)
		for _, j := range tr.Jobs {
			seen[j.ID]++
		}
		for _, j := range perm.Jobs {
			seen[j.ID]--
		}
		for _, v := range seen {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
