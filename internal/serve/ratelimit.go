package serve

import (
	"math"
	"sync"
	"time"
)

// rateLimiter is a per-tenant token bucket over wall time: each tenant
// accrues `rate` tokens per second up to `burst`, one API request costs
// one token, and an empty bucket yields the wait until the next token —
// the Retry-After the HTTP layer sends with its 429.
type rateLimiter struct {
	rate  float64
	burst float64
	now   func() time.Time // injectable for tests

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int, now func() time.Time) *rateLimiter {
	if rate <= 0 {
		rate = 50
	}
	if burst < 1 {
		burst = int(math.Ceil(rate))
	}
	if now == nil {
		now = time.Now
	}
	return &rateLimiter{rate: rate, burst: float64(burst), now: now, buckets: make(map[string]*bucket)}
}

// allow spends one token from the tenant's bucket. When the bucket is
// empty it returns false and how long until a token is available.
func (rl *rateLimiter) allow(tenant string) (bool, time.Duration) {
	now := rl.now()
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b := rl.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: rl.burst, last: now}
		rl.buckets[tenant] = b
	}
	if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens = math.Min(rl.burst, b.tokens+dt*rl.rate)
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / rl.rate * float64(time.Second))
	return false, wait
}
