package serve

import (
	"bytes"
	"encoding/json"
	"sync"
	"time"
)

// feedCapacity bounds how many event records a hosted experiment
// retains for long-polling watchers; older records are evicted (the
// sequence numbers make the gap visible to clients).
const feedCapacity = 4096

// FeedRecord is one retained event-log line with its sequence number.
type FeedRecord struct {
	Seq   uint64          `json:"seq"`
	Event json.RawMessage `json:"event"`
}

// Feed is a hosted experiment's event stream: it is the io.Writer
// behind the experiment's EventLog (one JSON line per record) and a
// bounded, sequence-numbered ring that HTTP watchers long-poll.
type Feed struct {
	// onLine, when non-nil, observes every complete line as it lands
	// (the server hooks first-decision latency here). Called without
	// the feed lock.
	onLine func(line []byte)
	// onDrop, when non-nil, observes ring evictions (records pushed out
	// past feedCapacity before any watcher saw them). Set before the
	// feed's first Write; called without the feed lock.
	onDrop func(n int)

	mu      sync.Mutex
	recs    []FeedRecord
	next    uint64        // seq the next record gets (first retained is next-len)
	changed chan struct{} // closed and renewed on every append/close
	closed  bool
	partial []byte // bytes of an incomplete trailing line
}

// NewFeed builds an empty feed. onLine (optional) sees every complete
// event line in append order.
func NewFeed(onLine func(line []byte)) *Feed {
	return &Feed{onLine: onLine, changed: make(chan struct{})}
}

// Write implements io.Writer for the EventLog flusher: input is a
// stream of newline-terminated JSON records, possibly split across
// calls; each complete line becomes one feed record.
func (f *Feed) Write(p []byte) (int, error) {
	n := len(p)
	for {
		i := bytes.IndexByte(p, '\n')
		if i < 0 {
			break
		}
		line := p[:i]
		p = p[i+1:]
		f.mu.Lock()
		if len(f.partial) > 0 {
			line = append(f.partial, line...)
			f.partial = nil
		}
		f.mu.Unlock()
		f.append(line)
	}
	if len(p) > 0 {
		f.mu.Lock()
		f.partial = append(f.partial, p...)
		f.mu.Unlock()
	}
	return n, nil
}

func (f *Feed) append(line []byte) {
	if len(line) == 0 {
		return
	}
	cp := append([]byte(nil), line...)
	if f.onLine != nil {
		f.onLine(cp)
	}
	f.mu.Lock()
	f.recs = append(f.recs, FeedRecord{Seq: f.next, Event: cp})
	f.next++
	var evicted int
	if len(f.recs) > feedCapacity {
		evicted = len(f.recs) - feedCapacity
		f.recs = f.recs[evicted:]
	}
	ch := f.changed
	f.changed = make(chan struct{})
	f.mu.Unlock()
	close(ch)
	if evicted > 0 && f.onDrop != nil {
		f.onDrop(evicted)
	}
}

// Close wakes every pending long-poll; subsequent polls return
// immediately with whatever is retained.
func (f *Feed) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	ch := f.changed
	f.mu.Unlock()
	close(ch)
}

// afterLocked returns retained records with Seq > after.
func (f *Feed) afterLocked(after uint64) []FeedRecord {
	for i, r := range f.recs {
		if r.Seq > after {
			return append([]FeedRecord(nil), f.recs[i:]...)
		}
	}
	return nil
}

// Poll returns records with sequence numbers greater than after,
// blocking up to wait for new ones when the caller is already caught
// up. A closed feed never blocks. The second result is the cursor to
// pass as `after` next time.
func (f *Feed) Poll(after uint64, wait time.Duration) ([]FeedRecord, uint64) {
	deadline := time.NewTimer(wait)
	defer deadline.Stop()
	for {
		f.mu.Lock()
		recs := f.afterLocked(after)
		ch := f.changed
		closed := f.closed
		f.mu.Unlock()
		if n := len(recs); n > 0 {
			return recs, recs[n-1].Seq
		}
		if closed || wait <= 0 {
			return nil, after
		}
		select {
		case <-ch:
		case <-deadline.C:
			return nil, after
		}
	}
}
