package serve

import (
	"fmt"
	"net/http"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
)

// latencyBuckets spans the API's range: sub-millisecond mux hits up to
// multi-second long-polls on /events.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 30}

// retryAfterBuckets covers the Retry-After hints the server emits:
// 1s rate-limit waits up to sustained admission backpressure.
var retryAfterBuckets = []float64{1, 2, 5, 10, 30, 60}

// statusRecorder captures the response status code so the middleware
// can count it by class after the handler returns.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// instrument wraps one API route with the server's HTTP telemetry: a
// per-route latency histogram, the shared in-flight gauge, and
// status-class counters. Handles are resolved once at registration;
// with fleet observability disabled (nil Options.Obs) the handler is
// returned untouched, so the disabled path adds zero work per request.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	if s.reg == nil {
		return h
	}
	lat := s.reg.Histogram(obs.ServeHTTPRequestSeconds(route), latencyBuckets...)
	inflight := s.reg.Gauge(obs.ServeHTTPInFlight)
	var classes [6]*obs.Counter
	for c := 1; c <= 5; c++ {
		classes[c] = s.reg.Counter(obs.ServeHTTPResponsesTotal(fmt.Sprintf("%dxx", c)))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inflight.Add(1)
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(sr, r)
		inflight.Add(-1)
		lat.Observe(time.Since(start).Seconds())
		if c := sr.status / 100; c >= 1 && c <= 5 {
			classes[c].Inc()
		}
	})
}
