package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/checkpoint"
	"github.com/hyperdrive-ml/hyperdrive/internal/clock"
	"github.com/hyperdrive-ml/hyperdrive/internal/cluster"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// bootServer starts an in-process server over a worker-pool executor.
// reg may be nil (fleet observability disabled).
func bootServer(t *testing.T, slots, maxExps int, reg *obs.Registry) (*Server, *httptest.Server) {
	t.Helper()
	clk := clock.NewScaled(time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC), 200000)
	events := make(chan cluster.Event, 4096)
	wreg := workload.NewRegistry()
	capturer, err := checkpoint.NewCapturer(checkpoint.Framework, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := cluster.NewWorkerPool(slots, wreg, clk, capturer, events)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(Options{
		Executor:       pool,
		Events:         events,
		Clock:          clk,
		Registry:       wreg,
		MaxExperiments: maxExps,
		Rate:           100000,
		Obs:            reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		srv.Close()
		pool.Close()
	})
	return srv, hs
}

func submitExp(t *testing.T, hs *httptest.Server, body string, header map[string]string) string {
	t.Helper()
	req, err := http.NewRequest("POST", hs.URL+"/v1/experiments", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range header {
		req.Header.Set(k, v)
	}
	resp, err := hs.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, b)
	}
	var out struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.ID
}

func getBody(t *testing.T, hs *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := hs.Client().Get(hs.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// Satellite: the /metrics rollup must be safe (and race-clean) against
// experiments being created and canceled concurrently — live
// registries are snapshotted under the server lock, finished ones are
// never rolled up.
func TestMetricsRollupUnderChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("churn test skipped in -short mode")
	}
	reg := obs.NewRegistry()
	_, hs := bootServer(t, 8, 8, reg)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	// Churner: submit short experiments and cancel half of them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			id := submitExp(t, hs, fmt.Sprintf(`{"tenant":"t%d","maxJobs":2,"seed":%d,"maxDurationSec":7776000}`, i%3, i), nil)
			if i%2 == 0 {
				resp, err := hs.Client().Post(hs.URL+"/v1/experiments/"+id+"/cancel", "application/json", nil)
				if err == nil {
					resp.Body.Close()
				}
			}
			// Let some finish naturally so teardown overlaps the scrapes.
			time.Sleep(5 * time.Millisecond)
		}
	}()
	// Scrapers: hammer the rollup and health endpoints meanwhile.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if code, body := getBody(t, hs, "/metrics"); code != 200 || !strings.Contains(body, "hyperdrive_serve_experiments_total") {
					t.Errorf("/metrics under churn: HTTP %d", code)
					return
				}
				if code, _ := getBody(t, hs, "/healthz"); code != 200 && code != 503 {
					t.Errorf("/healthz under churn: HTTP %d", code)
					return
				}
			}
		}()
	}
	time.Sleep(2 * time.Second)
	close(stop)
	wg.Wait()
}

func TestHealthAndReadyEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	srv, hs := bootServer(t, 4, 2, reg)

	code, body := getBody(t, hs, "/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz: HTTP %d", code)
	}
	var rep HealthReport
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatalf("/healthz body: %v\n%s", err, body)
	}
	if rep.Status != healthOK {
		t.Fatalf("idle server health = %q, want ok (%+v)", rep.Status, rep)
	}
	names := map[string]bool{}
	for _, c := range rep.Checks {
		names[c.Name] = true
	}
	for _, want := range []string{"slots", "broker_starvation", "event_drops", "admission"} {
		if !names[want] {
			t.Errorf("healthz missing check %q", want)
		}
	}

	if code, _ := getBody(t, hs, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz: HTTP %d", code)
	}

	// A closed server is no longer ready.
	srv.Close()
	if code, _ := getBody(t, hs, "/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz after Close: HTTP %d, want 503", code)
	}
}

// An inbound X-Trace-Id must reach the experiment's tracer: the
// api_submit span joins the caller's trace and the job decision spans
// parent under it, end to end.
func TestSubmitTracePropagation(t *testing.T) {
	if testing.Short() {
		t.Skip("trace e2e skipped in -short mode")
	}
	reg := obs.NewRegistry()
	_, hs := bootServer(t, 4, 2, reg)

	const inbound = "0mytrace00000001"
	id := submitExp(t, hs, `{"tenant":"alice","maxJobs":3,"seed":5,"maxDurationSec":7776000}`,
		map[string]string{"X-Trace-Id": inbound})

	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("experiment did not finish")
		}
		_, body := getBody(t, hs, "/v1/experiments/"+id)
		var st ExperimentStatus
		if err := json.Unmarshal([]byte(body), &st); err != nil {
			t.Fatal(err)
		}
		if st.State == stateDone {
			break
		}
		if st.State == stateFailed || st.State == stateCanceled {
			t.Fatalf("experiment ended %q: %s", st.State, st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}

	_, body := getBody(t, hs, "/v1/experiments/"+id+"/obs/spans")
	var views []obs.View
	if err := json.Unmarshal([]byte(body), &views); err != nil {
		t.Fatalf("spans: %v", err)
	}
	var submitSeen, decisionSeen bool
	for _, v := range views {
		if v.TraceID != inbound {
			continue
		}
		if v.Name == "api_submit" {
			submitSeen = true
		} else {
			decisionSeen = true
		}
	}
	if !submitSeen {
		t.Error("api_submit span did not join the inbound trace")
	}
	if !decisionSeen {
		t.Error("no scheduler span joined the inbound trace: propagation broken")
	}
}

// The middleware must count every API hit; with Obs nil the routes are
// served unwrapped and nothing panics.
func TestHTTPMiddleware(t *testing.T) {
	reg := obs.NewRegistry()
	_, hs := bootServer(t, 2, 2, reg)

	if code, _ := getBody(t, hs, "/v1/experiments"); code != http.StatusOK {
		t.Fatalf("list: HTTP %d", code)
	}
	if code, _ := getBody(t, hs, "/v1/experiments/nope"); code != http.StatusNotFound {
		t.Fatalf("missing id: HTTP %d", code)
	}
	if got := reg.Counter(obs.ServeHTTPResponsesTotal("2xx")).Value(); got != 1 {
		t.Errorf("2xx counter = %d, want 1", got)
	}
	if got := reg.Counter(obs.ServeHTTPResponsesTotal("4xx")).Value(); got != 1 {
		t.Errorf("4xx counter = %d, want 1", got)
	}
	if got := reg.Histogram(obs.ServeHTTPRequestSeconds("list"), latencyBuckets...).Count(); got != 1 {
		t.Errorf("list latency observations = %d, want 1", got)
	}
	if got := reg.Gauge(obs.ServeHTTPInFlight).Value(); got != 0 {
		t.Errorf("in-flight gauge = %v after requests drained, want 0", got)
	}

	// Disabled path: no registry, same API behavior.
	_, hsOff := bootServer(t, 2, 2, nil)
	if code, _ := getBody(t, hsOff, "/v1/experiments"); code != http.StatusOK {
		t.Fatalf("disabled list: HTTP %d", code)
	}
	if code, body := getBody(t, hsOff, "/metrics"); code != http.StatusOK || strings.TrimSpace(body) != "" {
		t.Fatalf("disabled /metrics: HTTP %d, body %q (want empty)", code, body)
	}
	if code, _ := getBody(t, hsOff, "/healthz"); code != http.StatusOK {
		t.Fatalf("disabled /healthz: HTTP %d", code)
	}
}
