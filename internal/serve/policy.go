package serve

import (
	"fmt"
	"strings"
	"sync/atomic"

	"github.com/hyperdrive-ml/hyperdrive/internal/curve"
	"github.com/hyperdrive-ml/hyperdrive/internal/hypergen"
	"github.com/hyperdrive-ml/hyperdrive/internal/param"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// pausablePolicy wraps a SAP with a service-level pause switch: while
// paused it starts nothing and answers every iteration boundary with
// Suspend, so the experiment's running jobs checkpoint off their slots
// and the tenant's capacity flows back to the pool. Statistics still
// reach the inner policy — pausing must not blind its estimators.
// Unwrap exposes the inner policy so the cluster layer still finds the
// concrete POP for classification publishing.
type pausablePolicy struct {
	inner  policy.Policy
	paused atomic.Bool
}

func (p *pausablePolicy) Name() string { return p.inner.Name() }

func (p *pausablePolicy) AllocateJobs(ctx policy.Context) {
	if p.paused.Load() {
		return
	}
	p.inner.AllocateJobs(ctx)
}

func (p *pausablePolicy) ApplicationStat(ctx policy.Context, ev sched.Event) {
	p.inner.ApplicationStat(ctx, ev)
}

func (p *pausablePolicy) OnIterationFinish(ctx policy.Context, ev sched.Event) sched.Decision {
	if p.paused.Load() {
		return sched.Suspend
	}
	return p.inner.OnIterationFinish(ctx, ev)
}

// Unwrap lets cluster.Experiment resolve the policy underneath.
func (p *pausablePolicy) Unwrap() policy.Policy { return p.inner }

var _ policy.Policy = (*pausablePolicy)(nil)

// prefixGenerator namespaces job IDs with the hosting experiment's ID
// ("e3/job-001"): the server multiplexes every experiment's events
// through one shared executor channel and routes them back by this
// prefix, so IDs must be globally unique within the process. The inner
// generator never sees the prefix.
type prefixGenerator struct {
	prefix string
	inner  hypergen.Generator
}

func (g *prefixGenerator) CreateJob() (string, param.Config, error) {
	id, cfg, err := g.inner.CreateJob()
	if err != nil {
		return "", cfg, err
	}
	return g.prefix + id, cfg, nil
}

func (g *prefixGenerator) ReportFinalPerformance(id string, perf float64) {
	g.inner.ReportFinalPerformance(strings.TrimPrefix(id, g.prefix), perf)
}

var _ hypergen.Generator = (*prefixGenerator)(nil)

// jobExperiment extracts the experiment ID from a prefixed job ID
// ("e3/job-001" → "e3"); ok is false for unprefixed IDs.
func jobExperiment(job sched.JobID) (string, bool) {
	s := string(job)
	i := strings.IndexByte(s, '/')
	if i <= 0 {
		return "", false
	}
	return s[:i], true
}

// buildPolicy resolves a submitted experiment's policy selection.
// Mirrors the root package's name set (kept here so serve depends only
// on internal packages).
func buildPolicy(name, predictor string) (policy.Policy, error) {
	var pred curve.Config
	switch predictor {
	case "", "fast":
		pred = curve.FastConfig()
	case "paper":
		pred = curve.PaperConfig()
	case "original":
		pred = curve.OriginalConfig()
	default:
		return nil, fmt.Errorf("serve: unknown predictor budget %q", predictor)
	}
	switch name {
	case "", "pop":
		return policy.NewPOP(policy.POPOptions{Predictor: pred})
	case "bandit":
		return policy.NewBandit(policy.BanditOptions{})
	case "earlyterm":
		return policy.NewEarlyTerm(policy.EarlyTermOptions{Predictor: pred})
	case "default":
		return policy.NewDefault(), nil
	case "sha":
		return policy.NewSuccessiveHalving(policy.SHAOptions{})
	default:
		return nil, fmt.Errorf("serve: unknown policy %q", name)
	}
}

// buildGenerator resolves a submitted experiment's generator selection.
func buildGenerator(name string, space *param.Space, seed int64, maxJobs int) (hypergen.Generator, error) {
	switch name {
	case "", "random":
		return hypergen.NewRandom(space, seed, maxJobs), nil
	case "grid":
		return hypergen.NewGrid(space, 2), nil
	case "adaptive":
		return hypergen.NewAdaptive(space, seed, maxJobs), nil
	case "gp":
		return hypergen.NewGP(space, seed, maxJobs, hypergen.GPOptions{})
	default:
		return nil, fmt.Errorf("serve: unknown generator %q", name)
	}
}
