package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/clock"
	"github.com/hyperdrive-ml/hyperdrive/internal/cluster"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// expChanCap buffers each hosted experiment's routed event stream.
// The router must never block on one slow tenant, so overflow is
// shed (stats dropped, decisions answered Terminate) — at 4096 that
// is a pathology, not an operating mode.
const expChanCap = 4096

// Options configures a Server.
type Options struct {
	// Executor is the shared slot substrate every hosted experiment
	// schedules onto (an in-process WorkerPool or a MultiExecutor over
	// node agents). Required. The server does not close it.
	Executor cluster.Executor
	// Events is the channel Executor was built with. Required; the
	// server's router is its only consumer.
	Events chan cluster.Event
	// Clock drives experiment time for every tenant; nil uses a 600x
	// scaled clock.
	Clock clock.Clock
	// Registry resolves workload names; nil uses the built-ins.
	Registry *workload.Registry
	// MaxExperiments caps concurrently active experiments (admission
	// control); 0 defaults to 16.
	MaxExperiments int
	// Rate is the per-tenant API token-bucket refill in requests per
	// second; 0 defaults to 50. Burst is the bucket size (0: one
	// second's worth).
	Rate  float64
	Burst int
	// Obs (optional) is the server-level registry: admission, rate
	// limit, per-tenant fair-share telemetry, HTTP middleware, and the
	// /metrics fleet rollup. Nil disables all server-level telemetry
	// (the disabled path adds no per-request or per-slot work).
	// Per-experiment registries are always created internally.
	Obs *obs.Registry
	// Pprof mounts net/http/pprof on the server-level obs handler.
	Pprof bool
	// KickInterval bounds how long a starved experiment waits before
	// being re-offered capacity; 0 defaults to 200ms (wall clock).
	KickInterval time.Duration
	// Logf receives server diagnostics; nil discards them.
	Logf func(format string, args ...interface{})
}

// expState is a hosted experiment's lifecycle phase.
const (
	stateRunning  = "running"
	statePaused   = "paused"
	stateDone     = "done"
	stateCanceled = "canceled"
	stateFailed   = "failed"
)

// hosted is one experiment under management.
type hosted struct {
	id       string
	tenant   string
	workload string
	policy   string

	exp     *cluster.Experiment
	pp      *pausablePolicy
	lease   *Lease
	feed    *Feed
	events  chan cluster.Event
	cancel  context.CancelFunc
	reg     *obs.Registry
	dropped *obs.Counter // server-registry serve_feed_dropped_total{experiment}

	submitted time.Time // wall clock

	mu            sync.Mutex
	state         string
	result        *cluster.Result
	err           error
	firstDecision time.Duration // 0 until the first decision record lands
	done          chan struct{}
}

// Server hosts many concurrent experiments behind the hyperdrived
// HTTP/JSON API, brokering one shared executor between tenants.
type Server struct {
	opts    Options
	clk     clock.Clock
	wreg    *workload.Registry
	pool    *cluster.ResourceManager
	broker  *Broker
	limiter *rateLimiter
	mux     *http.ServeMux
	reg     *obs.Registry // nil when fleet observability is disabled
	started time.Time

	metActive        *obs.Gauge
	metTotal         *obs.Counter
	metAdmissionRej  *obs.Counter
	metRateLimited   *obs.Counter
	metRequests      *obs.Counter
	metFirstDecision *obs.Histogram

	mu     sync.Mutex
	exps   map[string]*hosted
	order  []string // submission order, for listing
	nextID int
	closed bool

	wg         sync.WaitGroup
	stop       chan struct{}
	routerDone chan struct{}
	kickerDone chan struct{}
}

// NewServer validates opts, builds the broker over the executor's
// slots, and starts the event router and the capacity kicker. Callers
// serve Handler() and must Close() when done.
func NewServer(opts Options) (*Server, error) {
	if opts.Executor == nil {
		return nil, fmt.Errorf("serve: Options.Executor is required")
	}
	if opts.Events == nil {
		return nil, fmt.Errorf("serve: Options.Events is required")
	}
	if opts.MaxExperiments <= 0 {
		opts.MaxExperiments = 16
	}
	if opts.KickInterval <= 0 {
		opts.KickInterval = 200 * time.Millisecond
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...interface{}) {}
	}
	clk := opts.Clock
	if clk == nil {
		clk = clock.NewScaled(time.Now(), 600)
	}
	wreg := opts.Registry
	if wreg == nil {
		wreg = workload.NewRegistry()
	}
	// A nil Obs stays nil: every handle below resolves to a nil-safe
	// no-op, the middleware unwraps, and the broker skips starvation
	// tracking — fleet observability truly off, not silently collected.
	reg := opts.Obs
	s := &Server{
		opts:       opts,
		clk:        clk,
		wreg:       wreg,
		pool:       cluster.NewResourceManager(opts.Executor.Slots()),
		limiter:    newRateLimiter(opts.Rate, opts.Burst, nil),
		mux:        http.NewServeMux(),
		reg:        reg,
		started:    time.Now(),
		exps:       make(map[string]*hosted),
		stop:       make(chan struct{}),
		routerDone: make(chan struct{}),
		kickerDone: make(chan struct{}),

		metActive:        reg.Gauge(obs.ServeExperimentsActive),
		metTotal:         reg.Counter(obs.ServeExperimentsTotal),
		metAdmissionRej:  reg.Counter(obs.ServeAdmissionRejectsTotal),
		metRateLimited:   reg.Counter(obs.ServeRateLimitedTotal),
		metRequests:      reg.Counter(obs.ServeRequestsTotal),
		metFirstDecision: reg.Histogram(obs.ServeSubmitToDecisionSeconds),
	}
	s.broker = NewBroker(s.pool, reg, s.kickAll)
	s.routes()
	go s.router()
	go s.kicker()
	return s, nil
}

// Pool exposes the shared slot pool (tests assert its invariant).
func (s *Server) Pool() *cluster.ResourceManager { return s.pool }

// Broker exposes the fair-share broker.
func (s *Server) Broker() *Broker { return s.broker }

// Handler returns the full API surface wrapped in per-tenant rate
// limiting (tenant = X-Tenant header, "default" otherwise).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tenant := r.Header.Get("X-Tenant")
		if tenant == "" {
			tenant = "default"
		}
		if ok, retry := s.limiter.allow(tenant); !ok {
			s.metRateLimited.Inc()
			secs := retrySeconds(retry)
			if s.reg != nil {
				s.reg.Counter(obs.ServeRateLimitRejectsTotal(tenant)).Inc()
				s.reg.Histogram(obs.ServeRetryAfterSeconds(tenant), retryAfterBuckets...).Observe(float64(secs))
			}
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			http.Error(w, "tenant rate limit exceeded", http.StatusTooManyRequests)
			return
		}
		s.metRequests.Inc()
		s.mux.ServeHTTP(w, r)
	})
}

// retrySeconds renders a wait as a whole-second Retry-After value,
// never less than 1 (a 0 would invite an immediate retry storm).
func retrySeconds(d time.Duration) int {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (s *Server) routes() {
	s.mux.Handle("POST /v1/experiments", s.instrument("submit", s.handleSubmit))
	s.mux.Handle("GET /v1/experiments", s.instrument("list", s.handleList))
	s.mux.Handle("GET /v1/experiments/{id}", s.instrument("status", s.handleStatus))
	s.mux.Handle("GET /v1/experiments/{id}/events", s.instrument("events", s.handleEvents))
	s.mux.Handle("POST /v1/experiments/{id}/suspend", s.instrument("suspend", s.handleSuspend))
	s.mux.Handle("POST /v1/experiments/{id}/resume", s.instrument("resume", s.handleResume))
	s.mux.Handle("POST /v1/experiments/{id}/cancel", s.instrument("cancel", s.handleCancel))
	s.mux.Handle("GET /v1/tenants/{tenant}", s.instrument("tenant", s.handleTenant))
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.Handle("/obs/", http.StripPrefix("/obs", obs.Handler(s.reg, obs.HandlerOptions{Pprof: s.opts.Pprof})))
}

// handleMetrics is the fleet rollup: the server registry's native
// series merged with every LIVE experiment's registry, each child
// series namespaced with an experiment label. Finished experiments are
// excluded here — their registries stay reachable under
// /v1/experiments/{id}/obs for post-mortems, but the fleet view never
// reads a registry after teardown.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	children := make([]obs.RollupChild, 0, len(s.order))
	for _, id := range s.order {
		he := s.exps[id]
		if he == nil || !he.active() || he.reg == nil {
			continue
		}
		children = append(children, obs.RollupChild{ID: he.id, Reg: he.reg})
	}
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePrometheusRollup(w, s.reg, "experiment", children...)
}

// SubmitRequest is the POST /v1/experiments body. Zero values take
// the library defaults (cifar10, POP, random search, 100 jobs).
type SubmitRequest struct {
	Tenant         string  `json:"tenant"`
	Weight         float64 `json:"weight,omitempty"`
	Workload       string  `json:"workload,omitempty"`
	Policy         string  `json:"policy,omitempty"`
	Generator      string  `json:"generator,omitempty"`
	Predictor      string  `json:"predictor,omitempty"`
	MaxJobs        int     `json:"maxJobs,omitempty"`
	MaxDurationSec float64 `json:"maxDurationSec,omitempty"`
	Seed           int64   `json:"seed,omitempty"`
	StopAtTarget   bool    `json:"stopAtTarget,omitempty"`
	Target         float64 `json:"target,omitempty"`
}

// ExperimentStatus is the GET /v1/experiments/{id} body.
type ExperimentStatus struct {
	ID              string  `json:"id"`
	Tenant          string  `json:"tenant"`
	State           string  `json:"state"`
	Workload        string  `json:"workload"`
	Policy          string  `json:"policy"`
	HeldSlots       int     `json:"heldSlots"`
	ShareSlots      int     `json:"shareSlots"`
	FirstDecisionMs float64 `json:"firstDecisionMs,omitempty"`
	Best            float64 `json:"best,omitempty"`
	BestJob         string  `json:"bestJob,omitempty"`
	Reached         bool    `json:"reached,omitempty"`
	StoppedBy       string  `json:"stoppedBy,omitempty"`
	DurationSec     float64 `json:"durationSec,omitempty"`
	Jobs            int     `json:"jobs,omitempty"`
	Error           string  `json:"error,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad submit body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if req.Workload == "" {
		req.Workload = "cifar10"
	}
	if req.MaxJobs <= 0 {
		req.MaxJobs = 100
	}

	// Admission control: reject (with a retry hint) rather than queue
	// when the experiment cap or the slot budget is saturated — every
	// active experiment is guaranteed a ≥1-slot fair share, so more
	// active experiments than slots would deadlock the guarantee.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		http.Error(w, "server shutting down", http.StatusServiceUnavailable)
		return
	}
	active := s.activeLocked()
	if active >= s.opts.MaxExperiments || active >= s.pool.Total() {
		s.mu.Unlock()
		s.metAdmissionRej.Inc()
		if s.reg != nil {
			s.reg.Histogram(obs.ServeRetryAfterSeconds(req.Tenant), retryAfterBuckets...).Observe(5)
		}
		w.Header().Set("Retry-After", "5")
		http.Error(w, fmt.Sprintf("saturated: %d active experiments (cap %d, slots %d)",
			active, s.opts.MaxExperiments, s.pool.Total()), http.StatusTooManyRequests)
		return
	}
	s.nextID++
	id := fmt.Sprintf("e%d", s.nextID)
	// events, reg, and dropped are set before the entry is published:
	// the kicker, router, rollup, and health scorer may read them the
	// moment s.mu is released.
	he := &hosted{
		id: id, tenant: req.Tenant, workload: req.Workload,
		state: stateRunning, submitted: time.Now(), done: make(chan struct{}),
		events:  make(chan cluster.Event, expChanCap),
		reg:     obs.NewRegistry(),
		dropped: s.reg.Counter(obs.ServeFeedDroppedTotal(id)),
	}
	// Disjoint trace-ID spaces per experiment: IDs embed an origin hash
	// of the experiment ID, so tenants' traces never collide.
	he.reg.Tracer().SetOrigin("exp:" + id)
	s.exps[id] = he
	s.order = append(s.order, id)
	s.mu.Unlock()

	if err := s.buildAndStart(he, req, r.Header.Get("X-Trace-Id")); err != nil {
		s.mu.Lock()
		delete(s.exps, id)
		if n := len(s.order); n > 0 && s.order[n-1] == id {
			s.order = s.order[:n-1]
		}
		s.mu.Unlock()
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.metTotal.Inc()
	s.metActive.Add(1)
	s.opts.Logf("serve: admitted %s (tenant=%s workload=%s policy=%s)", id, req.Tenant, req.Workload, he.policy)
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]string{"id": id})
}

// buildAndStart assembles the per-experiment machinery (registry,
// event feed, namespaced generator, pausable policy, fair-share lease)
// and launches Run. On error every acquired resource is returned.
// traceID, when non-empty, is the caller's inbound X-Trace-Id: the
// submit is recorded as a span on that trace and the experiment's jobs
// join it, so an operator trace spans API edge to scheduler decisions.
func (s *Server) buildAndStart(he *hosted, req SubmitRequest, traceID string) error {
	pol, err := buildPolicy(req.Policy, req.Predictor)
	if err != nil {
		return err
	}
	he.policy = pol.Name()
	spec, err := s.wreg.Lookup(req.Workload)
	if err != nil {
		return err
	}
	gen, err := buildGenerator(req.Generator, spec.Space(), req.Seed, req.MaxJobs)
	if err != nil {
		return err
	}

	expReg := he.reg
	he.feed = NewFeed(he.noteLine(s.metFirstDecision))
	he.feed.onDrop = func(n int) { he.dropped.Add(int64(n)) }
	he.pp = &pausablePolicy{inner: pol}
	he.lease = s.broker.Join(he.tenant, req.Weight)

	// An inbound X-Trace-Id pins the whole experiment to the caller's
	// trace: the submit becomes a span under it and every job's decision
	// spans parent back through it.
	var traceParent obs.SpanContext
	if traceID != "" {
		submitSpan := expReg.Tracer().StartSpan("api_submit", "", 0, obs.SpanContext{TraceID: traceID})
		defer expReg.Tracer().Finish(submitSpan)
		submitSpan.SetStr("tenant", he.tenant)
		submitSpan.SetStr("experiment", he.id)
		traceParent = submitSpan.Context()
	}

	var maxDur time.Duration
	if req.MaxDurationSec > 0 {
		maxDur = time.Duration(req.MaxDurationSec * float64(time.Second))
	}
	exp, err := cluster.New(cluster.Config{
		Workload:       req.Workload,
		Registry:       s.wreg,
		Generator:      &prefixGenerator{prefix: he.id + "/", inner: gen},
		Policy:         he.pp,
		Executor:       s.opts.Executor,
		Events:         he.events,
		Slots:          he.lease,
		MaxJobs:        req.MaxJobs,
		MaxDuration:    maxDur,
		Clock:          s.clk,
		StopAtTarget:   req.StopAtTarget,
		TargetOverride: req.Target,
		Seed:           req.Seed,
		EventLog:       cluster.NewEventLog(he.feed),
		Obs:            expReg,
		TraceParent:    traceParent,
	})
	if err != nil {
		he.lease.Close()
		return err
	}
	he.exp = exp

	// Instance-scoped introspection: each experiment's registry mounts
	// under its own prefix on the server mux (hdtop -addr
	// host:port/v1/experiments/e1/obs). Registrations are permanent —
	// finished experiments keep serving their final metrics.
	prefix := "/v1/experiments/" + he.id + "/obs"
	s.mux.Handle(prefix+"/", http.StripPrefix(prefix, obs.Handler(expReg, obs.HandlerOptions{})))

	ctx, cancel := context.WithCancel(context.Background())
	he.cancel = cancel
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		defer cancel()
		res, err := exp.Run(ctx)
		s.finish(he, res, err)
	}()
	return nil
}

// noteLine returns the feed hook that stamps first-decision latency:
// the first event record carrying a decision marks the moment the
// scheduler started working for this tenant.
func (he *hosted) noteLine(hist *obs.Histogram) func(line []byte) {
	marker := []byte(`"kind":"decision"`)
	return func(line []byte) {
		if !bytes.Contains(line, marker) {
			return
		}
		he.mu.Lock()
		first := he.firstDecision == 0
		if first {
			he.firstDecision = time.Since(he.submitted)
		}
		d := he.firstDecision
		he.mu.Unlock()
		if first {
			hist.Observe(d.Seconds())
		}
	}
}

// finish retires a completed experiment: route unregistered, lease and
// log released, watchers woken.
func (s *Server) finish(he *hosted, res *cluster.Result, err error) {
	_ = he.exp.Close()
	he.lease.Close()
	he.feed.Close()
	he.mu.Lock()
	he.result = res
	he.err = err
	switch {
	case err != nil:
		he.state = stateFailed
	case res != nil && res.StoppedBy == "canceled":
		he.state = stateCanceled
	default:
		he.state = stateDone
	}
	close(he.done)
	he.mu.Unlock()
	s.metActive.Add(-1)
	s.opts.Logf("serve: %s finished (%s)", he.id, he.State())
	s.kickAll()
}

// State returns the experiment's lifecycle phase.
func (he *hosted) State() string {
	he.mu.Lock()
	defer he.mu.Unlock()
	return he.state
}

func (he *hosted) active() bool {
	st := he.State()
	return st == stateRunning || st == statePaused
}

func (s *Server) activeLocked() int {
	var n int
	for _, he := range s.exps {
		if he.active() {
			n++
		}
	}
	return n
}

func (s *Server) lookup(id string) *hosted {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.exps[id]
}

func (s *Server) status(he *hosted) ExperimentStatus {
	he.mu.Lock()
	st := ExperimentStatus{
		ID: he.id, Tenant: he.tenant, State: he.state,
		Workload: he.workload, Policy: he.policy,
	}
	if he.firstDecision > 0 {
		st.FirstDecisionMs = float64(he.firstDecision) / float64(time.Millisecond)
	}
	res, err := he.result, he.err
	he.mu.Unlock()
	if he.lease != nil {
		st.HeldSlots = he.lease.Held()
		st.ShareSlots = he.lease.Total()
	}
	if res != nil {
		st.Best = res.Best
		st.BestJob = string(res.BestJob)
		st.Reached = res.Reached
		st.StoppedBy = res.StoppedBy
		st.DurationSec = res.Duration.Seconds()
		st.Jobs = len(res.Jobs)
	}
	if err != nil {
		st.Error = err.Error()
	}
	return st
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	hes := make([]*hosted, 0, len(s.order))
	for _, id := range s.order {
		if he := s.exps[id]; he != nil {
			hes = append(hes, he)
		}
	}
	s.mu.Unlock()
	out := make([]ExperimentStatus, 0, len(hes))
	for _, he := range hes {
		out = append(out, s.status(he))
	}
	writeJSON(w, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	he := s.lookup(r.PathValue("id"))
	if he == nil {
		http.Error(w, "no such experiment", http.StatusNotFound)
		return
	}
	writeJSON(w, s.status(he))
}

// handleEvents long-polls the experiment's event feed:
// ?after=<seq> resumes a cursor, ?waitMs=<n> (default 0, cap 30s)
// blocks until new records or the deadline.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	he := s.lookup(r.PathValue("id"))
	if he == nil {
		http.Error(w, "no such experiment", http.StatusNotFound)
		return
	}
	var after uint64
	if v := r.URL.Query().Get("after"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad after cursor", http.StatusBadRequest)
			return
		}
		after = n
	}
	var wait time.Duration
	if v := r.URL.Query().Get("waitMs"); v != "" {
		ms, err := strconv.Atoi(v)
		if err != nil || ms < 0 {
			http.Error(w, "bad waitMs", http.StatusBadRequest)
			return
		}
		if ms > 30000 {
			ms = 30000
		}
		wait = time.Duration(ms) * time.Millisecond
	}
	recs, cursor := he.feed.Poll(after, wait)
	if recs == nil {
		recs = []FeedRecord{}
	}
	writeJSON(w, map[string]interface{}{
		"state":  he.State(),
		"cursor": cursor,
		"events": recs,
	})
}

func (s *Server) handleSuspend(w http.ResponseWriter, r *http.Request) {
	he := s.lookup(r.PathValue("id"))
	if he == nil {
		http.Error(w, "no such experiment", http.StatusNotFound)
		return
	}
	he.mu.Lock()
	if he.state != stateRunning {
		st := he.state
		he.mu.Unlock()
		http.Error(w, "cannot suspend experiment in state "+st, http.StatusConflict)
		return
	}
	he.state = statePaused
	he.mu.Unlock()
	// Order matters: stop handing out slots first, then make the policy
	// answer Suspend so running jobs checkpoint off theirs.
	he.lease.SetPaused(true)
	he.pp.paused.Store(true)
	writeJSON(w, map[string]string{"id": he.id, "state": statePaused})
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	he := s.lookup(r.PathValue("id"))
	if he == nil {
		http.Error(w, "no such experiment", http.StatusNotFound)
		return
	}
	he.mu.Lock()
	if he.state != statePaused {
		st := he.state
		he.mu.Unlock()
		http.Error(w, "cannot resume experiment in state "+st, http.StatusConflict)
		return
	}
	he.state = stateRunning
	he.mu.Unlock()
	he.pp.paused.Store(false)
	he.lease.SetPaused(false)
	s.kick(he)
	writeJSON(w, map[string]string{"id": he.id, "state": stateRunning})
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	he := s.lookup(r.PathValue("id"))
	if he == nil {
		http.Error(w, "no such experiment", http.StatusNotFound)
		return
	}
	if !he.active() {
		http.Error(w, "experiment already "+he.State(), http.StatusConflict)
		return
	}
	// A paused experiment's policy must answer again (Terminate via the
	// drain path) for cancellation to converge.
	he.lease.SetPaused(false)
	he.cancel()
	writeJSON(w, map[string]string{"id": he.id, "state": "canceling"})
}

func (s *Server) handleTenant(w http.ResponseWriter, r *http.Request) {
	st, ok := s.broker.Tenant(r.PathValue("tenant"))
	if !ok {
		http.Error(w, "no such tenant", http.StatusNotFound)
		return
	}
	writeJSON(w, st)
}

// router is the single consumer of the shared executor channel: every
// event is routed to its experiment by job-ID prefix; agent lifecycle
// events update the shared pool first (idempotent) and fan out to all
// active experiments.
func (s *Server) router() {
	defer close(s.routerDone)
	for {
		select {
		case <-s.stop:
			return
		case ev := <-s.opts.Events:
			s.route(ev)
		}
	}
}

func (s *Server) route(ev cluster.Event) {
	switch ev.Kind {
	case cluster.EvAgentDown, cluster.EvAgentUp, cluster.EvAgentError:
		// Quarantine is pool-global: apply it here so a tenant with a
		// backed-up channel cannot delay (or lose) the state change.
		if ev.Kind == cluster.EvAgentDown {
			s.pool.MarkOffline(ev.AgentSlots)
		} else if ev.Kind == cluster.EvAgentUp {
			s.pool.MarkOnline(ev.AgentSlots)
		}
		for _, he := range s.activeExps() {
			select {
			case he.events <- ev:
			default:
				// Rare and load-bearing: deliver off the router loop.
				go s.deliver(he, ev)
			}
		}
		return
	default:
		// Job-scoped kinds (stats, decisions, snapshots, exits, wakes)
		// route by job-ID prefix below.
	}
	id, ok := jobExperiment(ev.Job)
	if !ok {
		s.orphan(ev)
		return
	}
	he := s.lookup(id)
	if he == nil || !he.active() {
		s.orphan(ev)
		return
	}
	select {
	case he.events <- ev:
	default:
		switch ev.Kind {
		case cluster.EvIterDone, cluster.EvExited:
			// Losing a decision request wedges its executor goroutine;
			// losing an exit leaks the slot until drain. Both must land,
			// but the router must not block on one slow tenant — hand the
			// send to a goroutine. Worker-side flow control bounds these:
			// a job emits no further events until its decision is
			// answered, and an exit is its last, so at most one critical
			// send per slot is ever in flight.
			go s.deliver(he, ev)
		default:
			// Stats, snapshots, and wake-ups are lossy by design under
			// overload; the schedulers' estimators tolerate gaps.
			he.dropped.Inc()
			s.opts.Logf("serve: %s event channel full; shed event kind %d", he.id, ev.Kind)
		}
	}
}

// deliver blocks until a backed-up experiment accepts the event — or
// until it finishes or the server stops, in which case the event is
// orphaned like any other post-completion straggler.
func (s *Server) deliver(he *hosted, ev cluster.Event) {
	select {
	case he.events <- ev:
	case <-he.done:
		s.orphan(ev)
	case <-s.stop:
		s.orphan(ev)
	}
}

// orphan handles events no experiment will consume. Decision requests
// must still be answered (the executor goroutine holds the job until
// the 1-buffered reply lands); everything else is dropped.
func (s *Server) orphan(ev cluster.Event) {
	if ev.Kind == cluster.EvIterDone && ev.Reply != nil {
		select {
		case ev.Reply <- cluster.DecisionReply{Decision: sched.Terminate}:
		default:
		}
	}
}

func (s *Server) activeExps() []*hosted {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*hosted, 0, len(s.exps))
	for _, he := range s.exps {
		if he.active() {
			out = append(out, he)
		}
	}
	return out
}

// kick offers one experiment a chance to claim newly freed capacity.
// Non-blocking: a busy experiment will drain its channel soon anyway.
func (s *Server) kick(he *hosted) {
	select {
	case he.events <- cluster.Event{Kind: cluster.EvWake}:
	default:
	}
}

func (s *Server) kickAll() {
	for _, he := range s.activeExps() {
		s.kick(he)
	}
}

// kicker periodically wakes every active experiment: an experiment
// whose fair share was zero at submit blocks on its event channel
// forever without an external nudge, and broker wake-ups alone cannot
// cover slow convergence (weights changing as tenants join and leave).
func (s *Server) kicker() {
	defer close(s.kickerDone)
	t := time.NewTicker(s.opts.KickInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.kickAll()
			s.broker.Sample()
		}
	}
}

// Close cancels every active experiment, waits for their goroutines to
// drain their jobs off the shared executor, and stops the router and
// kicker. The executor itself belongs to the caller.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	hes := make([]*hosted, 0, len(s.exps))
	for _, he := range s.exps {
		hes = append(hes, he)
	}
	s.mu.Unlock()
	for _, he := range hes {
		if he.active() && he.cancel != nil {
			he.cancel()
		}
	}
	s.wg.Wait()
	close(s.stop)
	<-s.routerDone
	<-s.kickerDone
	return nil
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
