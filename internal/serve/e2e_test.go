package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/chaos"
	"github.com/hyperdrive-ml/hyperdrive/internal/clock"
	"github.com/hyperdrive-ml/hyperdrive/internal/cluster"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
)

func e2eClock() clock.Clock {
	return clock.NewScaled(time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC), 200000)
}

// bootAgent runs a node agent on a loopback listener.
func bootAgent(t *testing.T, id string, slots int) string {
	t.Helper()
	a, err := cluster.NewAgent(cluster.AgentOptions{ID: id, Slots: slots, Clock: e2eClock()})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go a.Serve(l)
	t.Cleanup(func() {
		a.Close()
		l.Close()
	})
	return l.Addr().String()
}

// TestMultiTenantChaosE2E is the service-level fault-tolerance
// scenario the tentpole exists for: two tenants share a 64-slot pool
// spread over four node agents, one agent is killed mid-run (silent
// partition, never revived), and both experiments must still finish
// over the surviving 48 slots. Along the way the test pins the
// fair-share split (weight 2 vs 1), admission control (429 +
// Retry-After once the cap is hit), the pool partition invariant
// under quarantine, and that the two tenants' trace IDs never mix.
// Run under -race.
func TestMultiTenantChaosE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e skipped in -short mode")
	}
	const (
		agents       = 4
		slotsPer     = 16
		totalSlots   = agents * slotsPer
		victimAgent  = 0
		hbInterval   = 100 * time.Millisecond
		pollInterval = 20 * time.Millisecond
	)
	events := make(chan cluster.Event, 4096)
	serverReg := obs.NewRegistry()
	// Generous detection window: -race slows the wire enough that a
	// tight heartbeat declares healthy agents dead.
	hb := cluster.HeartbeatConfig{Interval: hbInterval, Misses: 5}
	backoff := cluster.BackoffConfig{Base: 5 * time.Millisecond, Max: 25 * time.Millisecond, Seed: 7}

	// The victim dials through a chaos wrapper the test partitions.
	// Until the scripted kill, redials succeed (a spuriously-declared
	// death just reconnects); after it, every redial fails, so the
	// kill is permanent and its 16 slots stay quarantined.
	var mu sync.Mutex
	var victimConn *chaos.Conn
	victimKilled := false
	execs := make([]cluster.Executor, agents)
	for i := 0; i < agents; i++ {
		addr := bootAgent(t, fmt.Sprintf("a%d", i), slotsPer)
		if i == victimAgent {
			dial := func() (net.Conn, error) {
				mu.Lock()
				defer mu.Unlock()
				if victimKilled {
					return nil, errors.New("victim is dead (test script)")
				}
				nc, err := net.Dial("tcp", addr)
				if err != nil {
					return nil, err
				}
				victimConn = chaos.Wrap(nc, chaos.Options{Seed: 13})
				return victimConn, nil
			}
			sup, err := cluster.SuperviseAgent(events, cluster.SupervisorOptions{
				Dial: dial, Heartbeat: hb, Backoff: backoff, Obs: serverReg, Logf: t.Logf,
			})
			if err != nil {
				t.Fatal(err)
			}
			execs[i] = sup
			continue
		}
		sup, err := cluster.DialAgentSupervised(addr, events, cluster.SupervisorOptions{
			Heartbeat: hb, Backoff: backoff, Obs: serverReg, Logf: t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		execs[i] = sup
	}
	multi, err := cluster.NewMultiExecutor(execs...)
	if err != nil {
		t.Fatal(err)
	}
	defer multi.Close()

	srv, err := NewServer(Options{
		Executor:       multi,
		Events:         events,
		Clock:          e2eClock(),
		MaxExperiments: 2,
		Rate:           10000, // rate limiting is benched elsewhere; stay out of the way here
		Obs:            serverReg,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	client := hs.Client()

	getJSON := func(path string, v interface{}) {
		t.Helper()
		resp, err := client.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
		}
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
	}
	submit := func(body string) (string, *http.Response) {
		t.Helper()
		resp, err := client.Post(hs.URL+"/v1/experiments", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return "", resp
		}
		var out struct {
			ID string `json:"id"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.ID, resp
	}

	// Big sim budget so neither run stops on the default deadline, and
	// more jobs than either tenant's fair share so the allowance caps
	// actually bite (alice: ceil(2/3·64)=43 of 50; bob: ceil(1/3·64)=22
	// of 30).
	idA, _ := submit(`{"tenant":"alice","weight":2,"workload":"cifar10","maxJobs":50,"seed":11,"maxDurationSec":7776000}`)
	if idA == "" {
		t.Fatal("alice's submit rejected")
	}
	idB, _ := submit(`{"tenant":"bob","weight":1,"workload":"cifar10","maxJobs":30,"seed":12,"maxDurationSec":7776000}`)
	if idB == "" {
		t.Fatal("bob's submit rejected")
	}

	// Admission control: the cap is 2, so a third tenant bounces with
	// 429 and a Retry-After hint.
	if id, resp := submit(`{"tenant":"carol","maxJobs":4}`); id != "" {
		t.Fatalf("carol admitted past MaxExperiments (got %s)", id)
	} else {
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("over-cap submit: HTTP %d, want 429", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without a Retry-After header")
		}
	}

	status := func(id string) ExperimentStatus {
		t.Helper()
		var st ExperimentStatus
		getJSON("/v1/experiments/"+id, &st)
		return st
	}
	tenantOf := func(name string) TenantStatus {
		t.Helper()
		var ts TenantStatus
		getJSON("/v1/tenants/"+name, &ts)
		return ts
	}

	// Wait until both tenants hold slots, then check the fair-share
	// split: with both leases live, alice's share must exceed bob's
	// (2:1 weights) and her holdings must converge above his. The same
	// convergence must be visible in the fleet telemetry: after a
	// broker Sample, the serve_lease_share gauges sit at exactly the
	// 2:1 weight split and serve_lease_held mirrors the holdings.
	deadline := time.Now().Add(120 * time.Second)
	var fairSeen bool
	for time.Now().Before(deadline) {
		a, b := tenantOf("alice"), tenantOf("bob")
		srv.Broker().Sample()
		aHeld := serverReg.Gauge(obs.ServeLeaseHeld("alice")).Value()
		bHeld := serverReg.Gauge(obs.ServeLeaseHeld("bob")).Value()
		if a.HeldSlots > b.HeldSlots && b.HeldSlots > 0 && aHeld > bHeld && bHeld > 0 {
			if a.ShareSlots <= b.ShareSlots {
				t.Fatalf("share split inverted: alice %v <= bob %v", a.ShareSlots, b.ShareSlots)
			}
			aShare := serverReg.Gauge(obs.ServeLeaseShare("alice")).Value()
			bShare := serverReg.Gauge(obs.ServeLeaseShare("bob")).Value()
			if bShare == 0 || aShare/bShare < 1.99 || aShare/bShare > 2.01 {
				t.Fatalf("serve_lease_share split: alice %v / bob %v, want exact 2:1", aShare, bShare)
			}
			fairSeen = true
			break
		}
		time.Sleep(pollInterval)
	}
	if !fairSeen {
		t.Fatal("fair-share never converged: alice (weight 2) never held more than busy bob (weight 1)")
	}

	// The fleet rollup endpoint carries both the broker gauges and the
	// per-experiment child series under an experiment label.
	{
		resp, err := client.Get(hs.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		text := string(body)
		for _, want := range []string{
			`hyperdrive_serve_lease_held{tenant="alice"}`,
			`hyperdrive_serve_lease_share{tenant="bob"}`,
			"hyperdrive_serve_experiments_active 2",
			fmt.Sprintf(`{experiment=%q}`, idA),
		} {
			if !strings.Contains(text, want) {
				t.Errorf("/metrics rollup missing %q", want)
			}
		}
	}

	// Health while everything is up: structured JSON, status ok or
	// degraded (admission is warn at the cap of 2), never critical.
	{
		var rep HealthReport
		getJSON("/healthz", &rep)
		if rep.Status == healthCritical {
			t.Fatalf("healthz critical on a healthy fleet: %+v", rep)
		}
		if rep.Experiments != 2 || len(rep.Checks) == 0 {
			t.Fatalf("healthz report malformed: %+v", rep)
		}
	}

	// Kill the victim agent mid-run with a silent partition; from here
	// on its redials fail.
	mu.Lock()
	victimKilled = true
	vc := victimConn
	mu.Unlock()
	if vc == nil {
		t.Fatal("victim agent was never dialed")
	}
	vc.Partition()

	// The quarantine must show up as offline slots while the partition
	// invariant keeps holding.
	for time.Now().Before(deadline) {
		if srv.Pool().OfflineCount() > 0 {
			break
		}
		time.Sleep(pollInterval)
	}
	rm := srv.Pool()
	idle, busy, off := rm.Counts()
	if off == 0 {
		t.Fatal("agent kill never quarantined its slots")
	}
	if idle+busy+off != rm.Total() || rm.Total() != totalSlots {
		t.Fatalf("pool partition broken after kill: %d+%d+%d != %d", idle, busy, off, rm.Total())
	}

	// The health scorer must see the quarantined slots: offline > 0 is
	// at least a warning, so the verdict cannot be plain ok.
	{
		var rep HealthReport
		getJSON("/healthz", &rep)
		if rep.Status == healthOK {
			t.Fatalf("healthz still %q with %d slots offline: %+v", rep.Status, off, rep)
		}
	}

	// Both tenants must finish on the surviving slots.
	for _, id := range []string{idA, idB} {
		for {
			if time.Now().After(deadline) {
				t.Fatalf("%s did not finish (state %q)", id, status(id).State)
			}
			st := status(id)
			if st.State == "done" {
				break
			}
			if st.State == "failed" || st.State == "canceled" {
				t.Fatalf("%s ended %q: %s", id, st.State, st.Error)
			}
			time.Sleep(pollInterval)
		}
	}

	// The dead agent's slots are still quarantined, and the pool still
	// partitions cleanly; nothing is left busy.
	idle, busy, off = rm.Counts()
	if busy != 0 || idle+busy+off != rm.Total() {
		t.Fatalf("post-run pool: idle=%d busy=%d offline=%d total=%d", idle, busy, off, rm.Total())
	}
	if off != slotsPer {
		t.Errorf("offline = %d, want the dead agent's %d slots", off, slotsPer)
	}

	// Tenant isolation in the telemetry: the two experiments' tracers
	// are origin-namespaced, so their trace IDs must be disjoint.
	traceIDs := func(id string) map[string]bool {
		t.Helper()
		var views []obs.View
		getJSON("/v1/experiments/"+id+"/obs/spans", &views)
		ids := map[string]bool{}
		for _, v := range views {
			if v.TraceID != "" {
				ids[v.TraceID] = true
			}
		}
		return ids
	}
	ta, tb := traceIDs(idA), traceIDs(idB)
	if len(ta) == 0 || len(tb) == 0 {
		t.Fatalf("trace surfaces empty: alice %d ids, bob %d ids", len(ta), len(tb))
	}
	for id := range ta {
		if tb[id] {
			t.Fatalf("trace ID %s appears in both tenants' experiments", id)
		}
	}
}
