// Package serve hosts many concurrent experiments in one process: a
// weighted fair-share broker over the shared slot pool, per-tenant
// rate limiting, and the hyperdrived HTTP/JSON API.
package serve

import (
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/cluster"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
)

// Broker carves per-tenant weighted fair shares out of one shared slot
// pool. Each hosted experiment holds a Lease — a cluster.SlotPool view
// that lets it reserve up to its share of the pool, borrow idle slots
// other tenants are not waiting for, and never take the last slot an
// under-share tenant needs. Convergence rides on slot churn: an
// over-share tenant cannot reserve, so every slot it releases flows to
// the tenants still below their share.
type Broker struct {
	pool cluster.SlotPool
	reg  *obs.Registry
	// wake, when non-nil, runs after a slot returns to the shared pool
	// (outside the broker lock): the server uses it to nudge starved
	// experiments with EvWake.
	wake func()
	// now is the clock behind starvation timing; swapped in tests. Only
	// read when reg is non-nil, so the uninstrumented path never touches
	// the clock.
	now func() time.Time

	attainment *obs.Histogram
	starved    *obs.Gauge
	mismatch   *obs.Counter

	mu      sync.Mutex
	tenants map[string]*tenant
}

type tenant struct {
	name   string
	weight float64
	leases map[*Lease]struct{}
	held   *obs.Gauge
	share  *obs.Gauge
	// Fleet telemetry refreshed by Sample rather than on every slot
	// transition: deficit and starvation need a full walk anyway.
	leaseHeld    *obs.Gauge
	leaseShare   *obs.Gauge
	leaseDeficit *obs.Gauge
	leaseStarved *obs.Gauge
}

// NewBroker wraps a shared pool. reg (optional) receives per-tenant
// held/share gauges and fairness telemetry; a nil reg disables all of
// it, including starvation clock reads. wake (optional) runs after
// every slot release.
func NewBroker(pool cluster.SlotPool, reg *obs.Registry, wake func()) *Broker {
	b := &Broker{pool: pool, reg: reg, wake: wake, now: time.Now, tenants: make(map[string]*tenant)}
	if reg != nil {
		b.attainment = reg.Histogram(obs.ServeFairshareAttainment, obs.AttainmentBuckets...)
		b.starved = reg.Gauge(obs.ServeStarvedLeases)
		b.mismatch = reg.Counter(obs.ServeLeaseReleaseMismatchTotal)
	}
	return b
}

// Join registers one experiment under a tenant and returns its lease.
// A non-positive weight defaults to 1; re-joining an existing tenant
// with a different positive weight updates it (latest wins).
func (b *Broker) Join(name string, weight float64) *Lease {
	if weight <= 0 {
		weight = 1
	}
	b.mu.Lock()
	t := b.tenants[name]
	if t == nil {
		t = &tenant{
			name:         name,
			leases:       make(map[*Lease]struct{}),
			held:         b.reg.Gauge(obs.TenantHeldSlots(name)),
			share:        b.reg.Gauge(obs.TenantShareSlots(name)),
			leaseHeld:    b.reg.Gauge(obs.ServeLeaseHeld(name)),
			leaseShare:   b.reg.Gauge(obs.ServeLeaseShare(name)),
			leaseDeficit: b.reg.Gauge(obs.ServeLeaseDeficit(name)),
			leaseStarved: b.reg.Gauge(obs.ServeLeaseStarvedSeconds(name)),
		}
		b.tenants[name] = t
	}
	t.weight = weight
	l := &Lease{b: b, t: t, held: make(map[cluster.SlotID]struct{})}
	t.leases[l] = struct{}{}
	// Latch the share hint now so Info.TotalSlots is stable for the
	// experiment's whole life (policies size their slot division off it).
	l.total = b.ceilShareLocked(t)
	if l.total < 1 {
		l.total = 1
	}
	b.refreshShareGaugesLocked()
	b.mu.Unlock()
	return l
}

// shareLocked is the tenant's fair slot share: weight over the total
// weight of tenants that currently hold at least one lease.
func (b *Broker) shareLocked(t *tenant) float64 {
	var sum float64
	for _, o := range b.tenants {
		if len(o.leases) > 0 {
			sum += o.weight
		}
	}
	if sum == 0 || len(t.leases) == 0 {
		return 0
	}
	return t.weight / sum * float64(b.pool.Total())
}

func (b *Broker) ceilShareLocked(t *tenant) int {
	return int(math.Ceil(b.shareLocked(t)))
}

// allowanceLocked is one lease's slice of its tenant's share: tenants
// with several experiments split their share evenly.
func (b *Broker) allowanceLocked(l *Lease) int {
	n := len(l.t.leases)
	if n == 0 {
		return 0
	}
	a := int(math.Ceil(b.shareLocked(l.t) / float64(n)))
	if a < 1 {
		a = 1
	}
	return a
}

// deficitLocked sums how many slots leases other than l are still owed
// (allowance minus held, floored at zero). Borrowing may not dip into
// this reserve: idle capacity owed to an under-share tenant stays
// reservable by that tenant only.
func (b *Broker) deficitLocked(l *Lease) int {
	var d int
	for _, t := range b.tenants {
		for o := range t.leases {
			if o == l || o.paused {
				continue
			}
			if owed := b.allowanceLocked(o) - len(o.held); owed > 0 {
				d += owed
			}
		}
	}
	return d
}

func (b *Broker) refreshShareGaugesLocked() {
	for _, t := range b.tenants {
		t.share.Set(b.shareLocked(t))
	}
}

func (b *Broker) heldLocked(t *tenant) int {
	var n int
	for l := range t.leases {
		n += len(l.held)
	}
	return n
}

// TenantStatus is the broker's public view of one tenant.
type TenantStatus struct {
	Tenant         string  `json:"tenant"`
	Weight         float64 `json:"weight"`
	ShareSlots     float64 `json:"shareSlots"`
	HeldSlots      int     `json:"heldSlots"`
	Experiments    int     `json:"experiments"`
	StarvedSeconds float64 `json:"starvedSeconds,omitempty"`
}

// Tenant reports a tenant's current weight, fair share, and holdings.
func (b *Broker) Tenant(name string) (TenantStatus, bool) {
	var now time.Time
	if b.reg != nil {
		now = b.now()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	t, ok := b.tenants[name]
	if !ok {
		return TenantStatus{}, false
	}
	return TenantStatus{
		Tenant:         name,
		Weight:         t.weight,
		ShareSlots:     b.shareLocked(t),
		HeldSlots:      b.heldLocked(t),
		Experiments:    len(t.leases),
		StarvedSeconds: b.worstStarvedLocked(t, now).Seconds(),
	}, true
}

// worstStarvedLocked is the longest any of the tenant's leases has
// been starved as of now; zero when none are (or now is the zero time,
// i.e. the broker is uninstrumented).
func (b *Broker) worstStarvedLocked(t *tenant, now time.Time) time.Duration {
	if now.IsZero() {
		return 0
	}
	var worst time.Duration
	for l := range t.leases {
		if l.starvedSince.IsZero() {
			continue
		}
		if d := now.Sub(l.starvedSince); d > worst {
			worst = d
		}
	}
	return worst
}

// Sample refreshes the broker's fleet telemetry: per-tenant
// serve_lease_held/share/deficit/starved_seconds gauges, the starved
// lease count, and one fair-share attainment observation (held over
// allowance) per active lease. The server's kicker calls it on every
// tick; it is a no-op on an uninstrumented broker.
func (b *Broker) Sample() {
	if b.reg == nil {
		return
	}
	now := b.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	var starvedCount int
	for _, t := range b.tenants {
		var held, deficit int
		for l := range t.leases {
			held += len(l.held)
			if l.paused || l.closed {
				continue
			}
			allowance := b.allowanceLocked(l)
			if owed := allowance - len(l.held); owed > 0 {
				deficit += owed
			}
			b.attainment.Observe(float64(len(l.held)) / float64(allowance))
			if !l.starvedSince.IsZero() {
				starvedCount++
			}
		}
		t.leaseHeld.Set(float64(held))
		t.leaseShare.Set(b.shareLocked(t))
		t.leaseDeficit.Set(float64(deficit))
		t.leaseStarved.Set(b.worstStarvedLocked(t, now).Seconds())
	}
	b.starved.Set(float64(starvedCount))
}

// Starvation reports the longest any lease has currently been starved
// and how many are, for the health scorer. Always zero on an
// uninstrumented broker (tracking is disabled there).
func (b *Broker) Starvation() (worst time.Duration, count int) {
	if b.reg == nil {
		return 0, 0
	}
	now := b.now()
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, t := range b.tenants {
		for l := range t.leases {
			if l.starvedSince.IsZero() {
				continue
			}
			count++
			if d := now.Sub(l.starvedSince); d > worst {
				worst = d
			}
		}
	}
	return worst, count
}

// Lease is one experiment's view of the shared pool. It implements
// cluster.SlotPool, so cluster.Config.Slots plugs it straight in.
type Lease struct {
	b      *Broker
	t      *tenant
	total  int // share hint latched at Join (Info.TotalSlots)
	paused bool
	closed bool
	held   map[cluster.SlotID]struct{}
	// starvedSince is non-zero while the lease is below its allowance
	// with demand the pool is not meeting (a reserve failed). Tracked
	// only when the broker is instrumented.
	starvedSince time.Time
}

// ReserveIdleMachine implements cluster.SlotPool under the fair-share
// rule: within allowance always (pool permitting); beyond it only when
// the idle surplus exceeds what under-share leases are owed.
func (l *Lease) ReserveIdleMachine() (cluster.SlotID, bool) {
	l.b.mu.Lock()
	defer l.b.mu.Unlock()
	if l.closed || l.paused {
		return "", false
	}
	underShare := len(l.held) < l.b.allowanceLocked(l)
	if !underShare {
		if l.b.pool.IdleCount()-l.b.deficitLocked(l) < 1 {
			return "", false
		}
	}
	slot, ok := l.b.pool.ReserveIdleMachine()
	if !ok {
		// Failing while under allowance is starvation: entitled demand
		// the pool did not meet. Failing a borrow attempt is not.
		if underShare && l.b.reg != nil && l.starvedSince.IsZero() {
			l.starvedSince = l.b.now() //hdlint:ignore locksafe now is a monotonic clock read (time.Now or a test stub); it cannot block
		}
		return "", false
	}
	l.held[slot] = struct{}{}
	l.starvedSince = time.Time{}
	l.t.held.Set(float64(l.b.heldLocked(l.t)))
	return slot, true
}

// ReleaseMachine implements cluster.SlotPool: the slot returns to the
// shared pool and starved experiments are nudged to claim it.
func (l *Lease) ReleaseMachine(slot cluster.SlotID) error {
	l.b.mu.Lock()
	if _, ok := l.held[slot]; !ok {
		l.b.mu.Unlock()
		l.b.mismatch.Add(1)
		return fmt.Errorf("serve: tenant %s releasing slot %s it does not hold", l.t.name, slot)
	}
	delete(l.held, slot)
	err := l.b.pool.ReleaseMachine(slot)
	l.t.held.Set(float64(l.b.heldLocked(l.t)))
	wake := l.b.wake
	l.b.mu.Unlock()
	if wake != nil {
		wake()
	}
	return err
}

// MarkOffline implements cluster.SlotPool. Quarantine state lives on
// the shared pool (its transitions are idempotent, so every tenant
// relaying the same agent-down broadcast is safe).
func (l *Lease) MarkOffline(slots []cluster.SlotID) { l.b.pool.MarkOffline(slots) }

// MarkOnline implements cluster.SlotPool.
func (l *Lease) MarkOnline(slots []cluster.SlotID) { l.b.pool.MarkOnline(slots) }

// IdleCount implements cluster.SlotPool: how many slots this lease
// could reserve right now — remaining allowance, or the borrowable
// surplus, whichever is larger, capped by the pool's real idle count.
func (l *Lease) IdleCount() int {
	l.b.mu.Lock()
	defer l.b.mu.Unlock()
	if l.closed || l.paused {
		return 0
	}
	idle := l.b.pool.IdleCount()
	n := l.b.allowanceLocked(l) - len(l.held)
	if borrow := idle - l.b.deficitLocked(l); borrow > n {
		n = borrow
	}
	if n > idle {
		n = idle
	}
	if n < 0 {
		n = 0
	}
	return n
}

// BusyCount implements cluster.SlotPool: slots this lease holds.
func (l *Lease) BusyCount() int {
	l.b.mu.Lock()
	defer l.b.mu.Unlock()
	return len(l.held)
}

// OfflineCount implements cluster.SlotPool. Quarantine is pool-global
// (an offline agent is offline for everyone), so per-lease attribution
// would multiply-count it; report the pool's view.
func (l *Lease) OfflineCount() int { return l.b.pool.OfflineCount() }

// Total implements cluster.SlotPool: the share hint latched at Join,
// never less than 1. Policies read it (via Info.TotalSlots) to size
// their exploitation/exploration split to the tenant's slice rather
// than the whole machine room.
func (l *Lease) Total() int { return l.total }

// Held reports the slots currently reserved through this lease.
func (l *Lease) Held() int {
	l.b.mu.Lock()
	defer l.b.mu.Unlock()
	return len(l.held)
}

// SetPaused gates reservations: a paused lease reserves nothing and
// reports zero idle capacity, and its owed allowance no longer blocks
// other tenants from borrowing. Held slots are unaffected (the policy
// wrapper suspends their jobs, which releases them).
func (l *Lease) SetPaused(p bool) {
	l.b.mu.Lock()
	l.paused = p
	if p {
		l.starvedSince = time.Time{} // a paused lease has no demand
	}
	l.b.mu.Unlock()
}

// Close retires the lease: any slot the experiment failed to release
// (crash, drain timeout) is force-released so shared capacity cannot
// leak, and the tenant's share is recomputed without it.
func (l *Lease) Close() {
	l.b.mu.Lock()
	if l.closed {
		l.b.mu.Unlock()
		return
	}
	l.closed = true
	l.starvedSince = time.Time{}
	for slot := range l.held {
		delete(l.held, slot)
		_ = l.b.pool.ReleaseMachine(slot)
	}
	delete(l.t.leases, l)
	l.t.held.Set(float64(l.b.heldLocked(l.t)))
	l.b.refreshShareGaugesLocked()
	wake := l.b.wake
	l.b.mu.Unlock()
	if wake != nil {
		wake()
	}
}

var _ cluster.SlotPool = (*Lease)(nil)
