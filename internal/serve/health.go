package serve

import (
	"fmt"
	"net/http"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
)

// starveWarnAfter is how long a lease may sit below its fair share
// with unmet demand before the health scorer degrades the server.
const starveWarnAfter = 30 * time.Second

// Health check statuses.
const (
	checkOK   = "ok"
	checkWarn = "warn"
	checkFail = "fail"
)

// Overall health statuses.
const (
	healthOK       = "ok"
	healthDegraded = "degraded"
	healthCritical = "critical"
)

// HealthCheck is one scored dimension of server health.
type HealthCheck struct {
	Name   string  `json:"name"`
	Status string  `json:"status"` // ok | warn | fail
	Detail string  `json:"detail,omitempty"`
	Value  float64 `json:"value"`
}

// HealthReport is the GET /healthz body: an overall verdict plus the
// per-dimension checks it was derived from.
type HealthReport struct {
	Status      string        `json:"status"` // ok | degraded | critical
	UptimeSec   float64       `json:"uptimeSec"`
	Experiments int           `json:"experiments"`
	Checks      []HealthCheck `json:"checks"`
}

// Health scores the server across its operational dimensions: slot
// capacity (offline agents), broker starvation, event drops, and
// admission headroom. Any failing check makes the verdict critical;
// any warning makes it degraded.
func (s *Server) Health() HealthReport {
	s.mu.Lock()
	active := s.activeLocked()
	hes := make([]*hosted, 0, len(s.exps))
	for _, he := range s.exps {
		hes = append(hes, he)
	}
	started := s.started
	s.mu.Unlock()

	rep := HealthReport{
		Status:      healthOK,
		UptimeSec:   time.Since(started).Seconds(),
		Experiments: active,
	}
	add := func(c HealthCheck) {
		rep.Checks = append(rep.Checks, c)
		switch c.Status {
		case checkFail:
			rep.Status = healthCritical
		case checkWarn:
			if rep.Status == healthOK {
				rep.Status = healthDegraded
			}
		}
	}

	// Slot capacity: offline slots mean agents are down; a pool that is
	// entirely offline (or empty) cannot schedule anything.
	idle, busy, offline := s.pool.Counts()
	total := idle + busy + offline
	slots := HealthCheck{Name: "slots", Status: checkOK, Value: float64(offline),
		Detail: fmt.Sprintf("%d/%d slots offline", offline, total)}
	switch {
	case total == 0 || offline == total:
		slots.Status = checkFail
	case offline > 0:
		slots.Status = checkWarn
	}
	add(slots)

	// Broker starvation: a tenant sitting below fair share with unmet
	// demand for too long means reallocation is not converging.
	worst, count := s.broker.Starvation()
	starv := HealthCheck{Name: "broker_starvation", Status: checkOK, Value: worst.Seconds(),
		Detail: fmt.Sprintf("%d starved lease(s), worst %.1fs", count, worst.Seconds())}
	if worst >= starveWarnAfter {
		starv.Status = checkWarn
	}
	add(starv)

	// Event drops: live experiments' event-log write failures (the
	// flusher fell behind and records were lost). Feed-ring evictions
	// and router sheds are bounded-buffer behavior by design; they stay
	// visible as serve_feed_dropped_total without degrading health.
	var drops int64
	for _, he := range hes {
		if he.active() {
			drops += he.reg.Counter(obs.EventLogDroppedTotal).Value()
		}
	}
	dr := HealthCheck{Name: "event_drops", Status: checkOK, Value: float64(drops),
		Detail: fmt.Sprintf("%d event-log record(s) dropped", drops)}
	if drops > 0 {
		dr.Status = checkWarn
	}
	add(dr)

	// Admission headroom: at the cap every further submit bounces.
	cap := s.opts.MaxExperiments
	if pt := s.pool.Total(); pt < cap {
		cap = pt
	}
	adm := HealthCheck{Name: "admission", Status: checkOK, Value: float64(active),
		Detail: fmt.Sprintf("%d/%d experiments active", active, cap)}
	if active >= cap {
		adm.Status = checkWarn
	}
	add(adm)

	return rep
}

// handleHealthz reports liveness with the full scored breakdown: 200
// while the server can do useful work, 503 once a check fails hard.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rep := s.Health()
	if rep.Status == healthCritical {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, rep)
}

// handleReadyz reports readiness to accept new experiments: 503 while
// shutting down or critical, 200 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	rep := s.Health()
	ready := !closed && rep.Status != healthCritical
	if !ready {
		w.WriteHeader(http.StatusServiceUnavailable)
	}
	writeJSON(w, map[string]interface{}{"ready": ready, "status": rep.Status})
}
