package serve

import (
	"strings"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/cluster"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
)

func testPool(n int) cluster.SlotPool {
	slots := make([]cluster.SlotID, n)
	for i := range slots {
		slots[i] = cluster.SlotID('a'+byte(i)) + ":0"
	}
	return cluster.NewResourceManager(slots)
}

// Satellite regression: releasing a slot the lease does not hold must
// keep returning an error AND count it.
func TestReleaseMismatchCounted(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBroker(testPool(2), reg, nil)
	l := b.Join("a", 1)
	if err := l.ReleaseMachine("nope:0"); err == nil {
		t.Fatal("want error releasing unheld slot")
	}
	if got := reg.Counter(obs.ServeLeaseReleaseMismatchTotal).Value(); got != 1 {
		t.Fatalf("mismatch counter = %d, want 1", got)
	}
	// A legitimate release does not count.
	slot, ok := l.ReserveIdleMachine()
	if !ok {
		t.Fatal("reserve failed")
	}
	if err := l.ReleaseMachine(slot); err != nil {
		t.Fatalf("release: %v", err)
	}
	if got := reg.Counter(obs.ServeLeaseReleaseMismatchTotal).Value(); got != 1 {
		t.Fatalf("mismatch counter = %d after valid release, want 1", got)
	}
}

func TestStarvationDetector(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBroker(testPool(2), reg, nil)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }

	hog := b.Join("hog", 1)
	s1, _ := hog.ReserveIdleMachine()
	s2, _ := hog.ReserveIdleMachine()
	if s1 == "" || s2 == "" {
		t.Fatal("hog could not take the pool")
	}

	// A second tenant joins; its entitled demand cannot be met.
	poor := b.Join("poor", 1)
	if _, ok := poor.ReserveIdleMachine(); ok {
		t.Fatal("reserve should fail on an exhausted pool")
	}
	now = now.Add(5 * time.Second)
	worst, count := b.Starvation()
	if count != 1 || worst != 5*time.Second {
		t.Fatalf("Starvation() = (%v, %d), want (5s, 1)", worst, count)
	}

	b.Sample()
	if got := reg.Gauge(obs.ServeStarvedLeases).Value(); got != 1 {
		t.Fatalf("starved leases gauge = %v, want 1", got)
	}
	if got := reg.Gauge(obs.ServeLeaseStarvedSeconds("poor")).Value(); got != 5 {
		t.Fatalf("poor starved seconds = %v, want 5", got)
	}
	if got := reg.Gauge(obs.ServeLeaseDeficit("poor")).Value(); got != 1 {
		t.Fatalf("poor deficit = %v, want 1", got)
	}

	// A released slot lets the starved lease recover; starvation clears.
	if err := hog.ReleaseMachine(s1); err != nil {
		t.Fatalf("release: %v", err)
	}
	if _, ok := poor.ReserveIdleMachine(); !ok {
		t.Fatal("poor should reserve the freed slot")
	}
	worst, count = b.Starvation()
	if count != 0 || worst != 0 {
		t.Fatalf("Starvation() after recovery = (%v, %d), want (0, 0)", worst, count)
	}
	b.Sample()
	if got := reg.Gauge(obs.ServeLeaseStarvedSeconds("poor")).Value(); got != 0 {
		t.Fatalf("poor starved seconds after recovery = %v, want 0", got)
	}

	// A failed borrow attempt (at/above allowance) is not starvation.
	if _, ok := poor.ReserveIdleMachine(); ok {
		t.Fatal("borrow should fail: hog is owed the remaining capacity")
	}
	if _, count = b.Starvation(); count != 0 {
		t.Fatalf("borrow failure counted as starvation (count=%d)", count)
	}
}

func TestSampleGaugesAndAttainment(t *testing.T) {
	reg := obs.NewRegistry()
	b := NewBroker(testPool(6), reg, nil)
	a := b.Join("alice", 2)
	bb := b.Join("bob", 1)
	for i := 0; i < 4; i++ {
		a.ReserveIdleMachine()
	}
	for i := 0; i < 2; i++ {
		bb.ReserveIdleMachine()
	}
	b.Sample()
	if got := reg.Gauge(obs.ServeLeaseHeld("alice")).Value(); got != 4 {
		t.Fatalf("alice held = %v, want 4", got)
	}
	if got := reg.Gauge(obs.ServeLeaseShare("alice")).Value(); got != 4 {
		t.Fatalf("alice share = %v, want 4", got)
	}
	if got := reg.Gauge(obs.ServeLeaseHeld("bob")).Value(); got != 2 {
		t.Fatalf("bob held = %v, want 2", got)
	}
	if got := reg.Gauge(obs.ServeLeaseShare("bob")).Value(); got != 2 {
		t.Fatalf("bob share = %v, want 2", got)
	}
	h := reg.Histogram(obs.ServeFairshareAttainment, obs.AttainmentBuckets...)
	if h.Count() != 2 {
		t.Fatalf("attainment observations = %d, want 2", h.Count())
	}
	// Both leases hold exactly their allowance: attainment 1.0.
	if p50 := h.Quantile(0.5); p50 < 0.9 || p50 > 1.01 {
		t.Fatalf("attainment p50 = %v, want ~1", p50)
	}

	// The rollup exposition carries the per-tenant lease gauges.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`hyperdrive_serve_lease_held{tenant="alice"} 4`,
		`hyperdrive_serve_lease_share{tenant="bob"} 2`,
		`hyperdrive_serve_lease_deficit{tenant="alice"} 0`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

func TestUninstrumentedBrokerSkipsTracking(t *testing.T) {
	b := NewBroker(testPool(1), nil, nil)
	b.now = func() time.Time { panic("clock read on uninstrumented broker") }
	l := b.Join("a", 1)
	s, _ := l.ReserveIdleMachine()
	l2 := b.Join("b", 1)
	if _, ok := l2.ReserveIdleMachine(); ok {
		t.Fatal("pool exhausted, reserve should fail")
	}
	b.Sample() // no-op
	if worst, count := b.Starvation(); worst != 0 || count != 0 {
		t.Fatalf("uninstrumented Starvation() = (%v, %d), want zeros", worst, count)
	}
	if err := l.ReleaseMachine(s); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := l.ReleaseMachine(s); err == nil {
		t.Fatal("double release should error")
	}
}
