package cluster

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/chaos"
	"github.com/hyperdrive-ml/hyperdrive/internal/clock"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/param"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
	"github.com/hyperdrive-ml/hyperdrive/internal/wire"
)

// --- ResourceManager quarantine ---------------------------------------

func TestResourceManagerQuarantine(t *testing.T) {
	rm := NewResourceManager([]SlotID{"a#0", "a#1", "b#0"})
	got, ok := rm.ReserveIdleMachine()
	if !ok || got != "a#0" {
		t.Fatalf("reserve = %q, %v", got, ok)
	}

	rm.MarkOffline([]SlotID{"a#0", "a#1"})
	// a#0 is quarantined-but-busy: it still counts as busy (its binding
	// is live) so the idle/busy/offline partition always sums to
	// Total(). Only the idle a#1 shows up as offline.
	if rm.OfflineCount() != 1 {
		t.Fatalf("offline = %d, want 1 (busy a#0 counts as busy until released)", rm.OfflineCount())
	}
	if rm.BusyCount() != 1 {
		t.Fatalf("busy = %d, want 1", rm.BusyCount())
	}
	if rm.IdleCount() != 1 {
		t.Fatalf("idle = %d, want 1 (only b#0 survives)", rm.IdleCount())
	}
	if rm.Total() != 3 {
		t.Fatalf("total = %d, want 3 (quarantine must not shrink the pool)", rm.Total())
	}

	// The only reservable slot is the survivor.
	s, ok := rm.ReserveIdleMachine()
	if !ok || s != "b#0" {
		t.Fatalf("reserve under quarantine = %q, %v; want b#0", s, ok)
	}
	if _, ok := rm.ReserveIdleMachine(); ok {
		t.Fatal("reserved a quarantined slot")
	}

	// Releasing a quarantined-but-busy slot frees the binding yet keeps
	// the slot out of the idle pool.
	if err := rm.ReleaseMachine("a#0"); err != nil {
		t.Fatalf("release of quarantined slot: %v", err)
	}
	if rm.BusyCount() != 1 || rm.IdleCount() != 0 {
		t.Fatalf("after quarantined release: busy=%d idle=%d, want 1/0", rm.BusyCount(), rm.IdleCount())
	}

	// Restore: both slots return to the idle pool.
	rm.MarkOnline([]SlotID{"a#0", "a#1"})
	if rm.OfflineCount() != 0 || rm.IdleCount() != 2 {
		t.Fatalf("after restore: offline=%d idle=%d, want 0/2", rm.OfflineCount(), rm.IdleCount())
	}
	if _, ok := rm.ReserveIdleMachine(); !ok {
		t.Fatal("restored slot not reservable")
	}

	// Idempotence: re-marking a slot in either direction changes nothing,
	// and quarantining the busy b#0 keeps it counted as busy.
	rm.MarkOnline([]SlotID{"a#1"})
	rm.MarkOffline([]SlotID{"b#0"})
	rm.MarkOffline([]SlotID{"b#0"})
	idle, busy, off := rm.Counts()
	if off != 0 || busy != 2 {
		t.Fatalf("double MarkOffline of busy slot: idle=%d busy=%d offline=%d, want 1/2/0", idle, busy, off)
	}
	if idle+busy+off != rm.Total() {
		t.Fatalf("partition %d+%d+%d != Total %d", idle, busy, off, rm.Total())
	}
	// Releasing the quarantined b#0 moves it busy -> offline.
	if err := rm.ReleaseMachine("b#0"); err != nil {
		t.Fatalf("release of quarantined b#0: %v", err)
	}
	idle, busy, off = rm.Counts()
	if off != 1 || busy != 1 || idle+busy+off != rm.Total() {
		t.Fatalf("after release: idle=%d busy=%d offline=%d (total %d)", idle, busy, off, rm.Total())
	}
}

// --- AgentClient shutdown & failure paths ------------------------------

// doomedSpec builds a runnable StartSpec for one slot.
func doomedSpec(job sched.JobID, slot SlotID) StartSpec {
	return StartSpec{
		Job: job, Slot: slot, Workload: "cifar10",
		Config: param.CIFAR10Space().Sample(rand.New(rand.NewSource(1))),
		Seed:   1, MaxEpoch: 120,
	}
}

// Close must not deadlock when the read loop is blocked sending an
// event nobody consumes.
func TestAgentClientCloseWithBlockedEvents(t *testing.T) {
	addr := startAgent(t, AgentOptions{ID: "hang", Slots: 1})
	events := make(chan Event) // unbuffered: the reader blocks on emit
	client, err := DialAgent(addr, events)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Start(doomedSpec("blocked", client.Slots()[0])); err != nil {
		t.Fatal(err)
	}
	// Take exactly one event so we know the agent is streaming, then
	// stop consuming: the next emit parks the read loop.
	select {
	case <-events:
	case <-time.After(10 * time.Second):
		t.Fatal("no event from agent")
	}
	time.Sleep(50 * time.Millisecond)

	closed := make(chan struct{})
	go func() {
		client.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close deadlocked on a blocked event channel")
	}
}

// After a connection failure the client must be marked closed: a Start
// must fail fast instead of binding a slot on a dead agent.
func TestStartFailsFastAfterConnectionLoss(t *testing.T) {
	addr := startAgent(t, AgentOptions{ID: "gone", Slots: 1})
	events := make(chan Event, 16)
	client, err := DialAgent(addr, events)
	if err != nil {
		t.Fatal(err)
	}
	client.conn.Close()
	select {
	case <-client.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("read loop never noticed the dead connection")
	}
	if err := client.Start(doomedSpec("late", client.Slots()[0])); err == nil {
		t.Fatal("Start succeeded on a client whose connection already failed")
	}
	client.Close()
}

// fakeAgent speaks just enough of the wire protocol to drive client
// edge cases that a healthy agent never produces.
func fakeAgent(t *testing.T, send func(*wire.Conn) error) (net.Conn, <-chan error) {
	t.Helper()
	cs, as := net.Pipe()
	errc := make(chan error, 1)
	go func() {
		conn := wire.NewConn(as)
		if err := conn.SendTyped(wire.MsgHello, wire.HelloPayload{AgentID: "fake", Slots: 1}); err != nil {
			errc <- err
			return
		}
		errc <- send(conn)
	}()
	return cs, errc
}

// Agent-level MsgError frames (no JobID) must surface as EvAgentError
// instead of being dropped.
func TestAgentLevelErrorSurfaced(t *testing.T) {
	cs, errc := fakeAgent(t, func(conn *wire.Conn) error {
		return conn.SendTyped(wire.MsgError, wire.ErrorPayload{Message: "disk full"})
	})
	events := make(chan Event, 4)
	client, err := NewAgentClient(cs, events)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	select {
	case ev := <-events:
		if ev.Kind != EvAgentError {
			t.Fatalf("event kind = %v, want EvAgentError", ev.Kind)
		}
		if ev.Agent != "fake" {
			t.Fatalf("event agent = %q, want fake", ev.Agent)
		}
		if ev.Err == nil || !strings.Contains(ev.Err.Error(), "disk full") {
			t.Fatalf("event err = %v, want the agent's message", ev.Err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("agent-level error never surfaced")
	}
	if err := <-errc; err != nil {
		t.Fatalf("fake agent: %v", err)
	}
}

// A frame with an unknown type (a newer protocol revision) must be
// skipped by the read loop, not fail the agent: the stream is intact
// and the frames after it must still arrive.
func TestReadLoopSkipsUnknownFrameType(t *testing.T) {
	cs, errc := fakeAgent(t, func(conn *wire.Conn) error {
		if err := conn.Send(wire.Message{Type: "from_the_future"}); err != nil {
			return err
		}
		return conn.SendTyped(wire.MsgError, wire.ErrorPayload{Message: "still here"})
	})
	events := make(chan Event, 4)
	client, err := NewAgentClient(cs, events)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	select {
	case ev := <-events:
		if ev.Kind != EvAgentError || ev.Err == nil || !strings.Contains(ev.Err.Error(), "still here") {
			t.Fatalf("event after unknown frame = %+v, want the agent's error", ev)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("frame after the unknown one never surfaced — read loop died")
	}
	select {
	case <-client.Done():
		t.Fatal("client declared the agent dead over a skippable frame")
	default:
	}
	if err := <-errc; err != nil {
		t.Fatalf("fake agent: %v", err)
	}
}

// forwardDecision must survive the connection dying while the decision
// is pending, and replying to a vanished agent must never block the
// scheduler (run under -race).
func TestForwardDecisionRacesDyingConn(t *testing.T) {
	var agentConn *wire.Conn
	ready := make(chan struct{})
	cs, errc := fakeAgent(t, func(conn *wire.Conn) error {
		agentConn = conn
		close(ready)
		return conn.SendTyped(wire.MsgIterDone, wire.IterDonePayload{JobID: "j1", Epoch: 3})
	})
	events := make(chan Event, 4)
	client, err := NewAgentClient(cs, events)
	if err != nil {
		t.Fatal(err)
	}
	var ev Event
	select {
	case ev = <-events:
	case <-time.After(5 * time.Second):
		t.Fatal("no EvIterDone")
	}
	if ev.Kind != EvIterDone || ev.Reply == nil {
		t.Fatalf("event = %+v, want EvIterDone with Reply", ev)
	}
	if err := <-errc; err != nil {
		t.Fatalf("fake agent: %v", err)
	}
	// Kill the agent while its decision is still pending...
	<-ready
	agentConn.Close()
	select {
	case <-client.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("client never noticed the dead agent")
	}
	// ...then deliver the verdict the way the experiment loop does. The
	// reply channel is buffered, so this must return immediately even
	// though the agent is gone.
	ev.Reply <- DecisionReply{Decision: sched.Continue}
	client.Close()
}

// Close while a decision is still pending must release the
// forwardDecision goroutine through the stop channel (run under -race;
// the leak would show up as a blocked goroutine send on a dead conn).
func TestCloseWithPendingDecision(t *testing.T) {
	cs, errc := fakeAgent(t, func(conn *wire.Conn) error {
		return conn.SendTyped(wire.MsgIterDone, wire.IterDonePayload{JobID: "j1", Epoch: 3})
	})
	events := make(chan Event, 4)
	client, err := NewAgentClient(cs, events)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-events:
	case <-time.After(5 * time.Second):
		t.Fatal("no EvIterDone")
	}
	if err := <-errc; err != nil {
		t.Fatalf("fake agent: %v", err)
	}
	closed := make(chan struct{})
	go func() {
		client.Close() // never replying must not wedge Close
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on an unanswered decision")
	}
}

// --- heartbeat & supervisor --------------------------------------------

// A silent partition (TCP open, nothing flowing) must be detected by
// the heartbeat, not waited out forever.
func TestHeartbeatDetectsPartition(t *testing.T) {
	addr := startAgent(t, AgentOptions{ID: "parted", Slots: 1})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	cc := chaos.Wrap(nc, chaos.Options{Seed: 9})
	events := make(chan Event, 16)
	var mu sync.Mutex
	var cause error
	client, err := NewAgentClientOpts(cc, events, AgentClientOptions{
		Heartbeat: HeartbeatConfig{Interval: 10 * time.Millisecond, Misses: 2},
		OnDown: func(err error) {
			mu.Lock()
			cause = err
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	cc.Partition()
	select {
	case <-client.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("heartbeat never declared the partitioned agent dead")
	}
	mu.Lock()
	got := cause
	mu.Unlock()
	if got == nil || !strings.Contains(got.Error(), "heartbeat") {
		t.Fatalf("OnDown cause = %v, want the heartbeat verdict", got)
	}
	client.Close()
}

// The supervisor must detect a dead agent, emit EvAgentDown, redial
// with backoff, re-handshake, and emit EvAgentUp with usable slots.
func TestSupervisorReconnects(t *testing.T) {
	addr := startAgent(t, AgentOptions{ID: "phoenix", Slots: 1})
	events := make(chan Event, 64)
	var mu sync.Mutex
	var first *chaos.Conn
	dial := func() (net.Conn, error) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		defer mu.Unlock()
		if first == nil {
			first = chaos.Wrap(nc, chaos.Options{Seed: 3})
			return first, nil
		}
		return nc, nil
	}
	reg := obs.NewRegistry()
	sup, err := SuperviseAgent(events, SupervisorOptions{
		Dial:      dial,
		Heartbeat: HeartbeatConfig{Interval: 10 * time.Millisecond, Misses: 2},
		Backoff:   BackoffConfig{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond, Seed: 2},
		Obs:       reg,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	if !sup.Up() || sup.AgentID() != "phoenix" {
		t.Fatalf("fresh supervisor: up=%v id=%s", sup.Up(), sup.AgentID())
	}
	if v := reg.Gauge(obs.AgentUp("phoenix")).Value(); v != 1 {
		t.Fatalf("agent_up = %v, want 1", v)
	}

	mu.Lock()
	fc := first
	mu.Unlock()
	fc.Partition()

	waitKind := func(want EventKind) Event {
		deadline := time.After(10 * time.Second)
		for {
			select {
			case ev := <-events:
				if ev.Kind == want {
					return ev
				}
			case <-deadline:
				t.Fatalf("event %v never arrived", want)
			}
		}
	}
	down := waitKind(EvAgentDown)
	if down.Agent != "phoenix" || len(down.AgentSlots) != 1 {
		t.Fatalf("EvAgentDown = %+v", down)
	}
	up := waitKind(EvAgentUp)
	if up.Agent != "phoenix" || len(up.AgentSlots) != 1 {
		t.Fatalf("EvAgentUp = %+v", up)
	}
	if !sup.Up() {
		t.Fatal("supervisor not up after EvAgentUp")
	}
	if v := reg.Counter(obs.AgentReconnectsTotal("phoenix")).Value(); v < 1 {
		t.Fatalf("reconnects counter = %d, want >= 1", v)
	}
	if v := reg.Gauge(obs.AgentUp("phoenix")).Value(); v != 1 {
		t.Fatalf("agent_up after reconnect = %v, want 1", v)
	}
	// The restored connection must accept work.
	if err := sup.Start(doomedSpec("reborn", sup.Slots()[0])); err != nil {
		t.Fatalf("Start after reconnect: %v", err)
	}
}

// A down supervisor must fail Start fast instead of black-holing it.
func TestSupervisorStartFailsWhileDown(t *testing.T) {
	addr := startAgent(t, AgentOptions{ID: "limbo", Slots: 1})
	events := make(chan Event, 64)
	var mu sync.Mutex
	var first *chaos.Conn
	dial := func() (net.Conn, error) {
		mu.Lock()
		redialed := first != nil
		mu.Unlock()
		if redialed {
			return nil, errors.New("agent still dead")
		}
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		defer mu.Unlock()
		first = chaos.Wrap(nc, chaos.Options{Seed: 4})
		return first, nil
	}
	sup, err := SuperviseAgent(events, SupervisorOptions{
		Dial:      dial,
		Heartbeat: HeartbeatConfig{Interval: 10 * time.Millisecond, Misses: 2},
		Backoff:   BackoffConfig{Base: 5 * time.Millisecond, Max: 20 * time.Millisecond, Seed: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	mu.Lock()
	fc := first
	mu.Unlock()
	fc.Partition()
	deadline := time.After(10 * time.Second)
	for sup.Up() {
		select {
		case <-deadline:
			t.Fatal("supervisor never went down")
		case <-time.After(2 * time.Millisecond):
		}
	}
	if err := sup.Start(doomedSpec("nohome", sup.Slots()[0])); err == nil {
		t.Fatal("Start succeeded while the agent was down")
	}
}

// --- chaos end-to-end ---------------------------------------------------

// suspendOncePolicy is the Default policy plus one scripted suspend:
// the target job is suspended at the given epoch, forcing a snapshot
// so the chaos test has a checkpoint to re-place from.
type suspendOncePolicy struct {
	*policy.Default
	target sched.JobID
	epoch  int
	fired  bool
}

func (p *suspendOncePolicy) OnIterationFinish(ctx policy.Context, ev sched.Event) sched.Decision {
	if !p.fired && ev.Job == p.target && ev.Epoch >= p.epoch {
		p.fired = true
		return sched.Suspend
	}
	return p.Default.OnIterationFinish(ctx, ev)
}

// guardExec wraps an executor and records Starts issued while the
// underlying agent is down — exactly the black-holed starts the
// quarantine exists to prevent.
type guardExec struct {
	Executor
	up func() bool

	mu  sync.Mutex
	bad []SlotID
}

func (g *guardExec) Start(spec StartSpec) error {
	if !g.up() {
		g.mu.Lock()
		g.bad = append(g.bad, spec.Slot)
		g.mu.Unlock()
	}
	return g.Executor.Start(spec)
}

func (g *guardExec) violations() []SlotID {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]SlotID(nil), g.bad...)
}

// TestChaosAgentKillAndRevive is the e2e fault-tolerance scenario: two
// agents, one slot each; job-000 is forced to snapshot early, then its
// agent is partitioned away mid-training. The experiment must
// quarantine the dead agent's slot, re-place job-000 from its
// checkpoint onto the survivor, reconnect the revived agent, and still
// finish every job.
func TestChaosAgentKillAndRevive(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e skipped in -short mode")
	}
	// Slow enough that heartbeat detection (~30ms) beats job completion
	// (~seconds), fast enough to keep the test bounded.
	agentClock := func() clock.Clock {
		return clock.NewScaled(time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC), 20000)
	}
	addrA := startAgent(t, AgentOptions{ID: "chaosA", Slots: 1, Clock: agentClock()})
	addrB := startAgent(t, AgentOptions{ID: "chaosB", Slots: 1, Clock: agentClock()})

	events := make(chan Event, 256)
	reg := obs.NewRegistry()
	// Detection ≈ Interval × (Misses + 1) ≈ 250ms: far faster than the
	// jobs (seconds) yet with enough slack that a ~480KB snapshot
	// upload stalling the wire under -race cannot fake a death.
	hb := HeartbeatConfig{Interval: 50 * time.Millisecond, Misses: 4}
	backoff := BackoffConfig{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond, Seed: 5}

	// Agent A's dial is scripted: first connection goes through a chaos
	// wrapper we can partition; redials fail until the test "revives"
	// the agent.
	var mu sync.Mutex
	var connA *chaos.Conn
	revived := false
	dialA := func() (net.Conn, error) {
		mu.Lock()
		dead := connA != nil && !revived
		mu.Unlock()
		if dead {
			return nil, errors.New("chaosA is dead (test script)")
		}
		nc, err := net.Dial("tcp", addrA)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		defer mu.Unlock()
		if connA == nil {
			connA = chaos.Wrap(nc, chaos.Options{Seed: 11})
			return connA, nil
		}
		return nc, nil
	}
	supA, err := SuperviseAgent(events, SupervisorOptions{
		Dial: dialA, Heartbeat: hb, Backoff: backoff, Obs: reg, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer supA.Close()
	supB, err := DialAgentSupervised(addrB, events, SupervisorOptions{
		Heartbeat: hb, Backoff: backoff, Obs: reg, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer supB.Close()

	guardA := &guardExec{Executor: supA, up: supA.Up}
	multi, err := NewMultiExecutor(guardA, supB)
	if err != nil {
		t.Fatal(err)
	}

	// job-000 lands on chaosA#0, job-001 on chaosB#0 (slot order is the
	// executor order). The scripted policy snapshots job-000 at epoch 4;
	// with MaxJobs=2 it resumes straight back onto chaosA#0.
	pol := &suspendOncePolicy{Default: policy.NewDefault(), target: "job-000", epoch: 4}
	cfg := expConfig(t, pol, 0, 2)
	cfg.Executor = multi
	cfg.Events = events
	cfg.Obs = reg
	cfg.Clock = clock.NewScaled(time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC), 20000)

	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type runResult struct {
		res *Result
		err error
	}
	resCh := make(chan runResult, 1)
	go func() {
		res, err := e.Run(context.Background())
		resCh <- runResult{res, err}
	}()

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", desc)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Phase 1: wait until job-000 has snapshotted and resumed (back on
	// chaosA#0), so a checkpoint exists to re-place from.
	waitFor("job-000 snapshot + resume", func() bool {
		return reg.Counter(obs.ResumesTotal).Value() >= 1
	})

	// Phase 2: kill agent A mid-training via a silent partition.
	mu.Lock()
	ca := connA
	mu.Unlock()
	ca.Partition()
	waitFor("agent failure detection", func() bool {
		return reg.Counter(obs.AgentFailuresTotal).Value() >= 1
	})
	waitFor("checkpoint re-placement of the lost job", func() bool {
		return reg.Counter(obs.JobReplacementsTotal).Value() >= 1
	})

	// Phase 3: revive the agent; the supervisor's backoff loop is
	// already redialing.
	mu.Lock()
	revived = true
	mu.Unlock()
	waitFor("agent reconnect", func() bool {
		return reg.Counter(obs.AgentReconnectsTotal("chaosA")).Value() >= 1
	})

	r := <-resCh
	if r.err != nil {
		t.Fatal(r.err)
	}
	res := r.res

	// The run survived: both configurations finished, the lost job was
	// re-placed from its checkpoint rather than terminated.
	if res.Completions != 2 {
		t.Fatalf("completions = %d, want 2 (%+v)", res.Completions, res)
	}
	if res.Replacements < 1 {
		t.Fatalf("replacements = %d, want >= 1", res.Replacements)
	}
	if res.AgentFailures < 1 || res.Reconnects < 1 {
		t.Fatalf("agent failures = %d, reconnects = %d; want >= 1 each", res.AgentFailures, res.Reconnects)
	}
	for _, js := range res.Jobs {
		if js.FinalState != sched.Completed {
			t.Fatalf("job %s final state = %v, want Completed", js.ID, js.FinalState)
		}
		if js.Epochs != 120 {
			t.Fatalf("job %s epochs = %d, want 120 (progress lost?)", js.ID, js.Epochs)
		}
	}
	if res.Best <= 0.12 {
		t.Fatalf("best = %v, want a trained metric (> 0.12)", res.Best)
	}

	// Quarantined slots never received a Start while the agent was down.
	if bad := guardA.violations(); len(bad) != 0 {
		t.Fatalf("Starts reached the dead agent's slots: %v", bad)
	}

	// After the restart the slot pool is whole again: nothing offline,
	// both slots idle and schedulable.
	if e.rm.OfflineCount() != 0 || e.rm.IdleCount() != 2 {
		t.Fatalf("post-run pool: offline=%d idle=%d, want 0/2", e.rm.OfflineCount(), e.rm.IdleCount())
	}
	if !supA.Up() {
		t.Fatal("supervisor A not up after revival")
	}

	// The telemetry tells the same story.
	if v := reg.Gauge(obs.AgentUp("chaosA")).Value(); v != 1 {
		t.Fatalf("agent_up{chaosA} = %v, want 1", v)
	}
	if v := reg.Gauge(obs.SlotsOffline).Value(); v != 0 {
		t.Fatalf("slots_offline = %v, want 0", v)
	}
	t.Logf("chaos run: %+v", res)
}
