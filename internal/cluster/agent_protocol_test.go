package cluster

import (
	mrand "math/rand"
	"net"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/param"
	"github.com/hyperdrive-ml/hyperdrive/internal/wire"
)

// dialRaw opens a raw wire connection to an agent and consumes the
// Hello.
func dialRaw(t *testing.T, addr string) (*wire.Conn, wire.HelloPayload) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn := wire.NewConn(nc)
	msg, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	var hello wire.HelloPayload
	if err := msg.Decode(&hello); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, hello
}

// recvUntil reads frames until one of type want arrives (or fails the
// test after a timeout's worth of frames).
func recvUntil(t *testing.T, conn *wire.Conn, want wire.MsgType) wire.Message {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		msg, err := conn.Recv()
		if err != nil {
			t.Fatalf("recv while waiting for %s: %v", want, err)
		}
		if msg.Type == want {
			return msg
		}
	}
	t.Fatalf("no %s within deadline", want)
	return wire.Message{}
}

func TestAgentPingPong(t *testing.T) {
	addr := startAgent(t, AgentOptions{ID: "p", Slots: 1})
	conn, hello := dialRaw(t, addr)
	if hello.AgentID != "p" || hello.Slots != 1 {
		t.Fatalf("hello = %+v", hello)
	}
	if err := conn.SendTyped(wire.MsgPing, nil); err != nil {
		t.Fatal(err)
	}
	recvUntil(t, conn, wire.MsgPong)
}

func TestAgentRejectsUnknownWorkload(t *testing.T) {
	addr := startAgent(t, AgentOptions{ID: "p", Slots: 1})
	conn, _ := dialRaw(t, addr)
	err := conn.SendTyped(wire.MsgStartJob, wire.StartJobPayload{
		JobID: "j1", Workload: "not-a-workload", Config: map[string]float64{},
	})
	if err != nil {
		t.Fatal(err)
	}
	msg := recvUntil(t, conn, wire.MsgError)
	var p wire.ErrorPayload
	if err := msg.Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.JobID != "j1" {
		t.Fatalf("error payload = %+v", p)
	}
	// Agent must survive: ping still answered.
	if err := conn.SendTyped(wire.MsgPing, nil); err != nil {
		t.Fatal(err)
	}
	recvUntil(t, conn, wire.MsgPong)
}

func TestAgentRejectsOverCapacity(t *testing.T) {
	addr := startAgent(t, AgentOptions{ID: "p", Slots: 1})
	conn, _ := dialRaw(t, addr)
	cfg := param.CIFAR10Space().Sample(newTestRand())
	start := func(id string) {
		if err := conn.SendTyped(wire.MsgStartJob, wire.StartJobPayload{
			JobID: id, Workload: "cifar10", Config: cfg, Seed: 1, MaxEpoch: 120,
		}); err != nil {
			t.Fatal(err)
		}
	}
	start("a")
	start("b") // over the single slot
	msg := recvUntil(t, conn, wire.MsgError)
	var p wire.ErrorPayload
	if err := msg.Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.JobID != "b" {
		t.Fatalf("capacity error for %q, want b", p.JobID)
	}
}

func TestAgentMalformedPayloads(t *testing.T) {
	addr := startAgent(t, AgentOptions{ID: "p", Slots: 1})
	conn, _ := dialRaw(t, addr)
	// Payload-less control messages must not kill the agent.
	for _, mt := range []wire.MsgType{wire.MsgStartJob, wire.MsgDecision, wire.MsgTerminateJob} {
		if err := conn.Send(wire.Message{Type: mt}); err != nil {
			t.Fatal(err)
		}
	}
	// Unknown message type is ignored.
	if err := conn.Send(wire.Message{Type: "mystery"}); err != nil {
		t.Fatal(err)
	}
	if err := conn.SendTyped(wire.MsgPing, nil); err != nil {
		t.Fatal(err)
	}
	recvUntil(t, conn, wire.MsgPong)
}

func TestAgentResumeRejectsCorruptSnapshot(t *testing.T) {
	addr := startAgent(t, AgentOptions{ID: "p", Slots: 1})
	conn, _ := dialRaw(t, addr)
	cfg := param.CIFAR10Space().Sample(newTestRand())
	if err := conn.SendTyped(wire.MsgResumeJob, wire.StartJobPayload{
		JobID: "j", Workload: "cifar10", Config: cfg, Seed: 1, MaxEpoch: 120,
		Snapshot: []byte("garbage-not-an-image"),
	}); err != nil {
		t.Fatal(err)
	}
	recvUntil(t, conn, wire.MsgError)
}

func TestAgentTerminateMidTraining(t *testing.T) {
	addr := startAgent(t, AgentOptions{ID: "p", Slots: 1})
	conn, _ := dialRaw(t, addr)
	cfg := param.CIFAR10Space().Sample(newTestRand())
	if err := conn.SendTyped(wire.MsgStartJob, wire.StartJobPayload{
		JobID: "victim", Workload: "cifar10", Config: cfg, Seed: 1, MaxEpoch: 120,
	}); err != nil {
		t.Fatal(err)
	}
	// Let the first stat arrive, then terminate asynchronously.
	recvUntil(t, conn, wire.MsgAppStat)
	if err := conn.SendTyped(wire.MsgTerminateJob, wire.JobControlPayload{JobID: "victim"}); err != nil {
		t.Fatal(err)
	}
	msg := recvUntil(t, conn, wire.MsgJobExited)
	var p wire.JobExitedPayload
	if err := msg.Decode(&p); err != nil {
		t.Fatal(err)
	}
	if p.JobID != "victim" || p.Reason != "terminated" {
		t.Fatalf("exit = %+v", p)
	}
}

// newTestRand returns a seeded RNG for protocol tests.
func newTestRand() *mrand.Rand { return mrand.New(mrand.NewSource(99)) }
