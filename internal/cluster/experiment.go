package cluster

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/appstat"
	"github.com/hyperdrive-ml/hyperdrive/internal/checkpoint"
	"github.com/hyperdrive-ml/hyperdrive/internal/clock"
	"github.com/hyperdrive-ml/hyperdrive/internal/hypergen"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
	"github.com/hyperdrive-ml/hyperdrive/internal/trace"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// Config describes one live experiment — what the paper's Experiment
// Runner client specifies (§4.2): the SAP, the hyperparameter
// generation technique, the model (workload) to train, and the total
// number of machines.
type Config struct {
	// Workload names the registered workload to train.
	Workload string
	// Registry resolves workloads; nil uses the built-ins.
	Registry *workload.Registry
	// Generator produces candidate configurations.
	Generator hypergen.Generator
	// Policy is a fresh SAP instance.
	Policy policy.Policy
	// Machines is the number of in-process slots; ignored when
	// Executor is set.
	Machines int
	// Executor overrides the in-process worker pool (used for remote
	// agents). It must have been built with the same Events channel.
	Executor Executor
	// Events must be provided together with Executor.
	Events chan Event
	// Slots, when non-nil, replaces the experiment's own
	// ResourceManager with an externally managed pool — typically a
	// fair-share lease carved out of a pool shared by many experiments
	// (hyperdrived). Requires Executor: a private worker pool has no
	// one to share with.
	Slots SlotPool
	// MaxJobs bounds how many configurations are explored.
	MaxJobs int
	// MaxDuration is Tmax on the experiment clock; 0 = 7 days.
	MaxDuration time.Duration
	// Clock drives training time; nil uses a 600x scaled clock (one
	// simulated minute per 100ms wall).
	Clock clock.Clock
	// StopAtTarget ends the run when the target metric is reached.
	StopAtTarget bool
	// TargetOverride replaces the workload's target when non-zero.
	TargetOverride float64
	// CheckpointMode picks the suspend capture model; 0 = Framework.
	CheckpointMode checkpoint.Mode
	// CheckpointSeed seeds the capture model.
	CheckpointSeed int64
	// Seed seeds per-job training non-determinism.
	Seed int64
	// StopCondition, when non-nil, is evaluated on every statistic;
	// returning true ends the experiment (the §9 "user-defined global
	// termination criteria" extension).
	StopCondition func(db *appstat.DB, info policy.Info) bool
	// Recorder, when non-nil, captures every job start and statistic
	// so the run can be exported as a replayable trace (the Trace
	// Generator's "collect from live system experiments" path, §7.1).
	Recorder *trace.Recorder
	// EventLog, when non-nil, receives one JSON record per scheduler
	// event and decision.
	EventLog *EventLog
	// Obs, when non-nil, receives runtime telemetry: decision-latency
	// and epoch-duration histograms, lifecycle counters, slot-pool
	// gauges, decision spans, and the live job classification table.
	// Policies and event logs implementing obs.Instrumentable are
	// bound to it at setup. Nil leaves every hook a no-op.
	Obs *obs.Registry
	// TraceSink, when non-nil, accumulates Chrome trace events for the
	// whole run — one track per job, one per agent, decision slices
	// with the policy's estimate inputs, and instant markers for
	// classification changes, agent failures, and job re-placements —
	// exported with obs.(*TraceWriter).WriteFile after Run returns.
	TraceSink *obs.TraceWriter
	// TraceParent, when valid, is an upstream span (e.g. hyperdrived's
	// api_submit) every job joins: jobs share its trace ID and their
	// first start parents under its span, so an inbound API trace spans
	// submission through every scheduler decision. Invalid (the zero
	// value) keeps the default of one fresh trace per job.
	TraceParent obs.SpanContext
}

// JobSummary is one job's final record.
type JobSummary struct {
	ID         sched.JobID
	Epochs     int
	BusyTime   time.Duration
	FinalState sched.State
	Best       float64
}

// Result summarizes a live experiment.
type Result struct {
	Reached      bool
	TimeToTarget time.Duration
	Duration     time.Duration
	Best         float64
	BestJob      sched.JobID
	Jobs         []JobSummary
	Suspends     int
	Terminations int
	Completions  int
	Starts       int
	Resumes      int
	Fits         int
	// Fault-tolerance counters: agent-down declarations, successful
	// reconnects, and snapshot-bearing jobs re-queued after losing
	// their agent (checkpoint-based re-placement).
	AgentFailures int
	Reconnects    int
	Replacements  int
	Overheads     checkpoint.Accounting // suspend latency/size observations
	StoppedBy     string                // "target" | "budget" | "exhausted" | "condition" | "canceled"
}

// Experiment is a live HyperDrive run.
type Experiment struct {
	cfg      Config
	spec     workload.Spec
	info     policy.Info
	clk      clock.Clock
	db       *appstat.DB
	rm       SlotPool
	jm       *JobManager
	exec     Executor
	events   chan Event
	ownExec  bool
	start    time.Time
	created  int
	genDone  bool
	res      *Result
	slotJobs map[SlotID]sched.JobID
	met      *expMetrics
	// lastClass remembers each job's last published classification so
	// the trace gets one instant marker per change, not per refresh.
	lastClass map[sched.JobID]string
	// qual is the registry's quality audit (nil unless the caller
	// enabled it), cached so the hot paths pay one nil check, and
	// reachEpoch the first epoch each job crossed the target — the
	// outcome-side ground truth for calibration joins.
	qual       *obs.QualityAudit
	reachEpoch map[sched.JobID]int
	// pop and fits are the POP/fit-counting views of cfg.Policy,
	// resolved once at New through any Unwrap chain (embedding layers
	// wrap policies for pause control); nil when the policy has
	// neither.
	pop       *policy.POP
	fits      policy.FitCounter
	closeOnce sync.Once
}

// Close releases the experiment's private resources: a privately
// built worker pool is shut down and the event log drained. It is
// idempotent and safe whether or not Run was called — the path an
// embedding service takes when a submitted experiment is torn down
// before (or after) running. Shared executors, event channels, and
// slot leases belong to the caller and are left untouched.
func (e *Experiment) Close() error {
	var err error
	e.closeOnce.Do(func() {
		if e.ownExec {
			err = e.exec.Close()
		}
		e.cfg.EventLog.Flush()
	})
	return err
}

// resolvePolicy walks cfg.Policy through Unwrap() chains, binding
// instrumentation and caching the interfaces the hot paths
// type-assert: without this, a service-side wrapper (pause control)
// would hide the concrete POP from classification publishing.
func (e *Experiment) resolvePolicy() {
	p := e.cfg.Policy
	for p != nil {
		if e.cfg.Obs != nil {
			if in, ok := p.(obs.Instrumentable); ok {
				in.Instrument(e.cfg.Obs)
			}
		}
		if pop, ok := p.(*policy.POP); ok && e.pop == nil {
			e.pop = pop
		}
		if fc, ok := p.(policy.FitCounter); ok && e.fits == nil {
			e.fits = fc
		}
		u, ok := p.(interface{ Unwrap() policy.Policy })
		if !ok {
			break
		}
		p = u.Unwrap()
	}
}

// New validates the config and prepares an experiment.
func New(cfg Config) (*Experiment, error) {
	if cfg.Generator == nil {
		return nil, errors.New("cluster: nil generator")
	}
	if cfg.Policy == nil {
		return nil, errors.New("cluster: nil policy")
	}
	if cfg.MaxJobs < 1 {
		return nil, fmt.Errorf("cluster: MaxJobs %d must be positive", cfg.MaxJobs)
	}
	reg := cfg.Registry
	if reg == nil {
		reg = workload.NewRegistry()
	}
	spec, err := reg.Lookup(cfg.Workload)
	if err != nil {
		return nil, err
	}
	clk := cfg.Clock
	if clk == nil {
		clk = clock.NewScaled(time.Now(), 600)
	}
	if cfg.MaxDuration == 0 {
		cfg.MaxDuration = 7 * 24 * time.Hour
	}

	e := &Experiment{
		cfg:       cfg,
		spec:      spec,
		clk:       clk,
		db:        appstat.NewDB(),
		jm:        NewJobManager(),
		res:       &Result{},
		slotJobs:  make(map[SlotID]sched.JobID),
		met:       newExpMetrics(cfg.Obs),
		lastClass: make(map[sched.JobID]string),
	}
	e.resolvePolicy()
	if cfg.Obs != nil {
		cfg.EventLog.Instrument(cfg.Obs)
		e.qual = cfg.Obs.Quality()
		e.reachEpoch = make(map[sched.JobID]int)
	}

	if cfg.Slots != nil && cfg.Executor == nil {
		return nil, errors.New("cluster: Slots requires a shared Executor")
	}
	if cfg.Executor != nil {
		if cfg.Events == nil {
			return nil, errors.New("cluster: Executor requires the shared Events channel")
		}
		e.exec = cfg.Executor
		e.events = cfg.Events
	} else {
		if cfg.Machines < 1 {
			return nil, fmt.Errorf("cluster: Machines %d must be positive", cfg.Machines)
		}
		mode := cfg.CheckpointMode
		if mode == 0 {
			mode = checkpoint.Framework
		}
		capturer, err := checkpoint.NewCapturer(mode, cfg.CheckpointSeed+1)
		if err != nil {
			return nil, err
		}
		e.events = make(chan Event, 256)
		pool, err := NewWorkerPool(cfg.Machines, reg, clk, capturer, e.events)
		if err != nil {
			return nil, err
		}
		e.exec = pool
		e.ownExec = true
	}

	if cfg.Slots != nil {
		e.rm = cfg.Slots
	} else {
		e.rm = NewResourceManager(e.exec.Slots())
	}
	e.met.primeSlotGauges(e.exec.Slots())

	lo, hi := spec.MetricRange()
	target := spec.Target()
	if cfg.TargetOverride != 0 {
		target = cfg.TargetOverride
	}
	e.info = policy.Info{
		Workload:      spec.Name(),
		Target:        target,
		KillThreshold: spec.KillThreshold(),
		RandomFloor:   spec.RandomFloor(),
		EvalBoundary:  spec.EvalBoundary(),
		MaxEpoch:      spec.MaxEpoch(),
		MetricMin:     lo,
		MetricMax:     hi,
		Reward:        spec.Metric() == workload.Reward,
		TotalSlots:    e.rm.Total(),
		MaxDuration:   cfg.MaxDuration,
	}
	e.qual.SetMeta(obs.QualityMeta{
		Workload: e.info.Workload,
		Policy:   cfg.Policy.Name(),
		Target:   e.info.Normalize(e.info.Target),
		Machines: e.rm.Total(),
		MaxEpoch: e.info.MaxEpoch,
		Source:   "cluster",
	})
	return e, nil
}

// Run executes the experiment to completion (or ctx cancellation) and
// returns its result.
func (e *Experiment) Run(ctx context.Context) (*Result, error) {
	e.start = e.clk.Now()
	defer func() {
		if e.ownExec {
			e.exec.Close()
		}
	}()

	deadline := e.clk.After(e.cfg.MaxDuration)
	e.cfg.Policy.AllocateJobs(e)
	e.refreshGauges()
	if e.rm.BusyCount() == 0 && e.jm.SuspendedCount() == 0 && e.created == 0 {
		// On a leased pool an empty first allocation just means the
		// fair share is currently zero; capacity arrives later via
		// EvWake. A private pool has no such future, so it is an error.
		if e.cfg.Slots == nil {
			return nil, errors.New("cluster: policy started no jobs (empty generator?)")
		}
	}

	for {
		if e.done() {
			e.res.StoppedBy = "exhausted"
			break
		}
		var stop bool
		select {
		case <-ctx.Done():
			e.res.StoppedBy = "canceled"
			stop = true
		case <-deadline:
			e.res.StoppedBy = "budget"
			stop = true
		case ev := <-e.events:
			stop = e.handle(ev)
		}
		if stop {
			break
		}
	}
	e.drain()
	e.finish()
	return e.res, nil
}

// drainTimeout bounds how long a stopping experiment waits (wall
// clock) for its in-flight jobs to acknowledge termination before
// force-releasing their slots back to a shared pool.
const drainTimeout = 5 * time.Second

// drain runs after the event loop breaks, when the executor is shared
// (service mode): the experiment no longer consumes events, but its
// jobs are still training on slots other tenants are waiting for, and
// any EvIterDone already queued holds a reply channel whose
// executor-side goroutine blocks until answered. Ask the executor to
// stop every bound job, then consume events — answering Terminate to
// decision requests, releasing slots as exits land — until the
// experiment holds nothing or the wall-clock budget expires (then
// force-release, so a wedged agent cannot leak shared capacity).
//
// Private executors (ownExec) skip this: Run's deferred Close tears
// the whole pool down and nobody else shares the slot accounting.
func (e *Experiment) drain() {
	if e.ownExec {
		return
	}
	stopper, _ := e.exec.(JobStopper)
	if stopper != nil {
		for slot, job := range e.slotJobs {
			_ = stopper.StopJob(job, slot)
		}
	}
	timeout := time.After(drainTimeout)
	for len(e.slotJobs) > 0 {
		select {
		case ev := <-e.events:
			e.drainEvent(ev)
		case <-timeout:
			for slot, job := range e.slotJobs {
				if mj, ok := e.jm.Get(job); ok {
					_ = mj.Job.Terminate()
				}
				delete(e.slotJobs, slot)
				_ = e.rm.ReleaseMachine(slot)
			}
		}
	}
	e.refreshGauges()
}

// drainEvent is the shutdown-mode event handler: no policy calls, no
// new placements — just unblock reply channels and give slots back.
func (e *Experiment) drainEvent(ev Event) {
	switch ev.Kind {
	case EvIterDone:
		if ev.Reply != nil {
			ev.Reply <- DecisionReply{Decision: sched.Terminate}
		}
	case EvExited:
		if mj, ok := e.jm.Get(ev.Job); ok {
			switch ev.Reason {
			case ExitCompleted:
				_ = mj.Job.Complete()
			case ExitSuspended:
				_ = mj.Job.Suspend()
			case ExitTerminated, ExitError, ExitLost:
				_ = mj.Job.Terminate()
			}
		}
		e.logEvent(string(ev.Reason), ev)
		if slot := ev.Slot; slot != "" && e.slotJobs[slot] == ev.Job {
			delete(e.slotJobs, slot)
			_ = e.rm.ReleaseMachine(slot)
		}
	case EvAgentDown:
		e.rm.MarkOffline(ev.AgentSlots)
	case EvAgentUp:
		e.rm.MarkOnline(ev.AgentSlots)
	case EvStat, EvSnapshot, EvAgentError, EvWake:
		// No decisions are made while draining; late statistics and
		// wake-ups have nothing left to schedule.
	}
}

// done reports whether no work remains: nothing running, nothing
// suspended, and the generator cannot supply more. Quarantined slots
// are not "work": an experiment with every survivor idle must not
// hang waiting for a dead agent's slots to come back.
func (e *Experiment) done() bool {
	if e.rm.BusyCount() > 0 {
		return false
	}
	if e.jm.SuspendedCount() > 0 {
		return false
	}
	return e.genDone || e.created >= e.cfg.MaxJobs
}

// handle processes one executor event; returns true to stop.
func (e *Experiment) handle(ev Event) bool {
	switch ev.Kind {
	case EvStat:
		return e.handleStat(ev)
	case EvIterDone:
		e.handleIterDone(ev)
	case EvSnapshot:
		if mj, ok := e.jm.Get(ev.Job); ok {
			mj.Snapshot = ev.Snapshot
			mj.SnapEpoch = ev.Epoch
		}
		e.db.PutSnapshot(appstat.Snapshot{Job: ev.Job, Epoch: ev.Epoch, Data: ev.Snapshot, At: e.clk.Now()})
		e.res.Overheads.Observe(checkpoint.Record{Size: ev.SnapSize, Latency: ev.SnapLat})
	case EvExited:
		e.handleExited(ev)
	case EvAgentDown:
		e.handleAgentDown(ev)
	case EvAgentUp:
		e.handleAgentUp(ev)
	case EvAgentError:
		e.logEvent("agent_error", ev)
	case EvWake:
		// Capacity may have appeared in a shared pool (another tenant
		// released slots); give the SAP a chance to claim it.
		e.cfg.Policy.AllocateJobs(e)
		e.refreshGauges()
	}
	return false
}

// handleAgentDown quarantines a dead agent's slots. It arrives before
// that failure's per-job ExitLost events (the AgentClient guarantees
// the ordering), so by the time job-loss handling releases each slot,
// ReleaseMachine parks it in quarantine instead of the idle pool.
func (e *Experiment) handleAgentDown(ev Event) {
	e.rm.MarkOffline(ev.AgentSlots)
	e.res.AgentFailures++
	e.met.agentFailures.Inc()
	e.logEvent("agent_down", ev)
	e.cfg.TraceSink.Instant("scheduler", "agent "+ev.Agent, "agent down", e.clk.Now(),
		map[string]interface{}{"slots": len(ev.AgentSlots)})
	e.refreshGauges()
}

// handleAgentUp restores a reconnected agent's slots and immediately
// lets the SAP re-fill the recovered capacity.
func (e *Experiment) handleAgentUp(ev Event) {
	e.rm.MarkOnline(ev.AgentSlots)
	e.res.Reconnects++
	e.logEvent("agent_up", ev)
	e.cfg.TraceSink.Instant("scheduler", "agent "+ev.Agent, "agent reconnected", e.clk.Now(),
		map[string]interface{}{"slots": len(ev.AgentSlots)})
	e.cfg.Policy.AllocateJobs(e)
	e.refreshGauges()
}

func (e *Experiment) handleStat(ev Event) bool {
	e.db.Report(ev.Job, appstat.Stat{Epoch: ev.Epoch, Metric: ev.Metric, Duration: ev.Duration, At: e.clk.Now()})
	if e.cfg.Recorder != nil {
		e.cfg.Recorder.Observe(string(ev.Job), ev.Epoch, ev.Metric, ev.Duration)
	}
	if ev.HasPred {
		e.db.ReportPrediction(ev.Job, appstat.Prediction{Epoch: ev.Epoch, Value: ev.Pred, At: e.clk.Now()})
	}
	e.met.observeEpoch(ev.Slot, ev.Duration)
	e.logEvent("stat", ev)
	if mj, ok := e.jm.Get(ev.Job); ok {
		mj.Job.SetEpoch(ev.Epoch)
		mj.Busy += int64(ev.Duration)
		if !mj.HasBest || ev.Metric > mj.Best {
			mj.Best = ev.Metric
			mj.HasBest = true
		}
	}
	sev := sched.Event{Job: ev.Job, Epoch: ev.Epoch, Metric: ev.Metric, Duration: ev.Duration, Time: e.clk.Now()}
	e.cfg.Policy.ApplicationStat(e, sev)
	if e.pop != nil {
		e.pop.ObserveBest(e.info, ev.Metric)
	}

	if ev.Metric > e.res.Best || e.res.BestJob == "" {
		e.res.Best = ev.Metric
		e.res.BestJob = ev.Job
		e.met.best.Set(ev.Metric)
		e.qual.RecordBest(e.clk.Now(), string(ev.Job), e.info.Normalize(ev.Metric))
	}
	if e.qual != nil && ev.Metric >= e.info.Target {
		if _, seen := e.reachEpoch[ev.Job]; !seen {
			e.reachEpoch[ev.Job] = ev.Epoch
		}
	}
	if e.cfg.StopAtTarget && ev.Metric >= e.info.Target && !e.res.Reached {
		e.res.Reached = true
		e.res.TimeToTarget = e.clk.Since(e.start)
		e.res.StoppedBy = "target"
		return true
	}
	if e.cfg.StopCondition != nil && e.cfg.StopCondition(e.db, e.info) {
		e.res.StoppedBy = "condition"
		return true
	}
	return false
}

// handleIterDone runs one OnIterationFinish round trip under a
// decision span: the policy annotates the span with the inputs it saw
// (estimate, classification, allocation), the span ID is stamped into
// the decision LogRecord, and the wall-clock latency of the whole
// sequence lands in the decision-latency histogram. Spans the policy
// never annotated (off-boundary continues) are measured but not
// retained.
func (e *Experiment) handleIterDone(ev Event) {
	// Parent the decision span under the executor-side span that raised
	// the boundary; when the executor runs untraced, the span still
	// joins the job's trace as a root so the verdict stays attributable.
	parent := ev.Trace
	mj, haveJob := e.jm.Get(ev.Job)
	if !parent.Valid() && haveJob {
		parent = obs.SpanContext{TraceID: mj.TraceID}
	}
	sp := e.met.tracer.StartSpan("decision", string(ev.Job), ev.Epoch, parent)
	sev := sched.Event{Job: ev.Job, Epoch: ev.Epoch, Time: e.clk.Now(), Span: sp}
	t0 := time.Now()
	decision := e.cfg.Policy.OnIterationFinish(e, sev)
	lat := time.Since(t0)
	e.met.decisionLatency.Observe(lat.Seconds())
	e.met.decisionCounter(decision).Inc()
	boundary := sp.Annotated()
	// Boundary decisions carry the policy's estimate inputs; verdicts
	// that change a job's fate (suspend/terminate) are retained even
	// off-boundary so the trace always explains why a job left its slot.
	retained := boundary || decision != sched.Continue
	if retained {
		sp.SetStr("decision", decision.String())
		e.met.tracer.Finish(sp)
		if haveJob {
			mj.LastSpan = sp.ID()
		}
		e.emitDecisionTrace(ev, decision, sp, lat)
		e.qual.ObserveDecisionSpan(e.clk.Now(), sp, decision.String())
	}
	e.logDecision(ev.Job, ev.Epoch, decision, sp)
	if boundary {
		e.publishClassification()
	}
	if ev.Reply != nil {
		reply := DecisionReply{Decision: decision, Trace: sp.Context()}
		// The prediction behind the verdict rides back to the agent so
		// agent-side logs can correlate their fate with the scheduler's
		// confidence in them.
		if a, ok := sp.Attr("confidence"); ok {
			reply.Confidence = a.Val
		}
		if a, ok := sp.Attr("ert_seconds"); ok {
			reply.ERTSeconds = a.Val
		}
		if a, ok := sp.Attr("class"); ok {
			reply.Class = a.Str
		}
		ev.Reply <- reply
	}
	// Off-boundary continues (the overwhelming majority of decisions)
	// were measured and logged but never retained anywhere — recycle
	// the span so the hot path stays allocation-free. Everything that
	// read sp (log record, reply) copied what it needed above.
	if !retained {
		e.met.tracer.Release(sp)
	}
}

// emitDecisionTrace records one retained decision as a complete slice
// on the scheduler's "decisions" track, carrying the estimate inputs
// the policy annotated (ERT, confidence, classification, pool sizes).
func (e *Experiment) emitDecisionTrace(ev Event, d sched.Decision, sp *obs.Span, lat time.Duration) {
	if e.cfg.TraceSink == nil {
		return
	}
	args := map[string]interface{}{
		"job": string(ev.Job), "epoch": ev.Epoch, "decision": d.String(),
		// The span ID matches the event log's "span" field and
		// /debug/obs/spans; the trace ID groups the slice with the
		// job's track.
		"span": sp.ID(), "trace": sp.TraceID(),
	}
	for _, key := range []string{"confidence", "ert_seconds", "threshold", "promising_jobs", "opportunistic_jobs", "prob_beats_best"} {
		if a, ok := sp.Attr(key); ok {
			args[key] = a.Val
		}
	}
	for _, key := range []string{"class", "cause"} {
		if a, ok := sp.Attr(key); ok {
			args[key] = a.Str
		}
	}
	end := e.clk.Now()
	e.cfg.TraceSink.Complete("scheduler", "decisions", "decision "+string(ev.Job), end.Add(-lat), lat, args)
}

func (e *Experiment) handleExited(ev Event) {
	mj, ok := e.jm.Get(ev.Job)
	if !ok {
		return
	}
	e.logEvent(string(ev.Reason), ev)
	switch ev.Reason {
	case ExitCompleted:
		if err := mj.Job.Complete(); err == nil {
			e.res.Completions++
			e.met.completions.Inc()
			best := mj.Best
			e.cfg.Generator.ReportFinalPerformance(string(ev.Job), best)
		}
	case ExitTerminated:
		if err := mj.Job.Terminate(); err == nil {
			e.res.Terminations++
			e.met.terminations.Inc()
		}
	case ExitSuspended:
		if err := mj.Job.Suspend(); err == nil {
			e.res.Suspends++
			e.met.suspends.Inc()
			e.jm.Requeue(ev.Job)
		}
	case ExitError:
		// Treat like termination but keep the error visible via state.
		if err := mj.Job.Terminate(); err == nil {
			e.res.Terminations++
			e.met.terminations.Inc()
		}
	case ExitLost:
		// Checkpoint-based re-placement: a job that vanished with its
		// agent but left a snapshot is suspended and re-queued, so the
		// SAP resumes it on a healthy slot. Without a snapshot there is
		// nothing to resume from — terminate.
		if len(mj.Snapshot) > 0 {
			if err := mj.Job.Suspend(); err == nil {
				e.res.Replacements++
				e.met.replacements.Inc()
				e.jm.Requeue(ev.Job)
				e.logLifecycle("replace", ev.Job, ev.Slot, "")
				e.cfg.TraceSink.Instant("scheduler", "job "+string(ev.Job), "re-placed", e.clk.Now(),
					map[string]interface{}{"lost_slot": string(ev.Slot), "snapshot_epoch": mj.SnapEpoch})
			}
		} else if err := mj.Job.Terminate(); err == nil {
			e.res.Terminations++
			e.met.terminations.Inc()
		}
	}
	// Close the job's run slice on the trace; terminal jobs also release
	// their pinned flight-recorder spans into the global ring.
	e.cfg.TraceSink.End("scheduler", "job "+string(ev.Job), e.clk.Now())
	switch mj.Job.State() {
	case sched.Completed, sched.Terminated:
		e.cfg.Obs.Flight().JobDone(string(ev.Job))
	default:
		// Suspended (or still-running) jobs keep their flight-recorder
		// span pinned; it is released when they reach a terminal state.
	}
	// Free the slot and let the SAP refill it.
	if slot := ev.Slot; slot != "" {
		if e.slotJobs[slot] == ev.Job {
			delete(e.slotJobs, slot)
			if err := e.rm.ReleaseMachine(slot); err == nil {
				e.cfg.Policy.AllocateJobs(e)
			}
		}
	}
	e.refreshGauges()
}

// finish fills the result.
func (e *Experiment) finish() {
	e.res.Duration = e.clk.Since(e.start)
	// The terminal record must not be a casualty of the drop-not-block
	// buffer: a cancel storm can leave the flusher a full buffer
	// behind, and the "stop" line is what replay tools key off. LogSync
	// waits for space instead of dropping.
	e.cfg.EventLog.LogSync(LogRecord{T: e.clk.Now(), Kind: "stop", Detail: e.res.StoppedBy})
	// The event log batches appends; drain it so callers reading the
	// sink after Run returns see every record.
	e.cfg.EventLog.Flush()
	jobs := e.jm.All()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Idx < jobs[j].Idx })
	for _, mj := range jobs {
		e.res.Jobs = append(e.res.Jobs, JobSummary{
			ID:         mj.Job.ID,
			Epochs:     mj.Job.Epoch(),
			BusyTime:   time.Duration(mj.Busy),
			FinalState: mj.Job.State(),
			Best:       mj.Best,
		})
		if e.qual != nil {
			re, reached := e.reachEpoch[mj.Job.ID]
			e.qual.RecordOutcome(obs.OutcomeRecord{
				Job:        string(mj.Job.ID),
				FinalState: mj.Job.State().String(),
				Epochs:     mj.Job.Epoch(),
				Best:       e.info.Normalize(mj.Best),
				Reached:    reached,
				ReachEpoch: re,
			})
		}
	}
	if e.fits != nil {
		e.res.Fits = int(e.fits.Fits().Value())
	}
}

// --- policy.Context implementation -----------------------------------

// Info implements policy.Context.
func (e *Experiment) Info() policy.Info { return e.info }

// DB implements policy.Context.
func (e *Experiment) DB() *appstat.DB { return e.db }

// Now implements policy.Context.
func (e *Experiment) Now() time.Time { return e.clk.Now() }

// Start implements policy.Context.
func (e *Experiment) Start() time.Time { return e.start }

// IdleSlots implements policy.Context.
func (e *Experiment) IdleSlots() int { return e.rm.IdleCount() }

// IdleJobs implements policy.Context: suspended jobs plus the
// configurations the generator can still produce.
func (e *Experiment) IdleJobs() int {
	n := e.jm.SuspendedCount()
	if !e.genDone && e.created < e.cfg.MaxJobs {
		n += e.cfg.MaxJobs - e.created
	}
	return n
}

// StartIdleJob implements policy.Context: picks between the best
// suspended job and a fresh configuration (suspended priorities win;
// FIFO otherwise) and starts it on a reserved slot.
func (e *Experiment) StartIdleJob() (sched.JobID, bool) {
	slot, ok := e.rm.ReserveIdleMachine()
	if !ok {
		return "", false
	}
	release := func() {
		if err := e.rm.ReleaseMachine(slot); err != nil {
			// Unreachable: we just reserved it.
			panic(err)
		}
	}

	suspended, haveSuspended := e.jm.GetIdleJob()
	// Suspended jobs with explicit priority preempt fresh configs;
	// unlabelled suspended jobs wait behind the fresh configurations
	// still in the generator (FIFO by queue-insertion order: fresh
	// configs were "queued" at experiment start, a suspended job
	// re-enters at the back).
	canCreate := !e.genDone && e.created < e.cfg.MaxJobs
	if haveSuspended && (suspended.Job.Priority() > 0 || !canCreate) {
		if err := e.startExisting(suspended, slot); err == nil {
			return suspended.Job.ID, true
		}
		release()
		return "", false
	}
	if !canCreate {
		release()
		return "", false
	}
	id, cfg9, err := e.cfg.Generator.CreateJob()
	if err != nil {
		e.genDone = true
		release()
		return "", false
	}
	e.created++
	mj, err := e.jm.Add(sched.JobID(id), cfg9, e.cfg.Seed+int64(e.created), e.info.MaxEpoch)
	if err != nil {
		release()
		return "", false
	}
	// One trace per job, for its whole life across suspends, resumes,
	// and re-placements ("" when tracing is off) — unless an upstream
	// trace was handed in, in which case every job joins it and the
	// first start parents under the upstream span.
	if e.cfg.TraceParent.Valid() {
		mj.TraceID = e.cfg.TraceParent.TraceID
		mj.LastSpan = e.cfg.TraceParent.SpanID
	} else {
		mj.TraceID = e.met.tracer.NewTraceID()
	}
	if e.cfg.Recorder != nil {
		e.cfg.Recorder.StartJob(id, cfg9, mj.Seed)
	}
	if err := e.startExisting(mj, slot); err != nil {
		release()
		return "", false
	}
	e.res.Starts++
	return mj.Job.ID, true
}

// startExisting launches a managed job (fresh or suspended) on a slot.
func (e *Experiment) startExisting(mj *ManagedJob, slot SlotID) error {
	resume := mj.Job.State() == sched.Suspended
	if err := mj.Job.Start(sched.MachineID(slot)); err != nil {
		return err
	}
	spec := StartSpec{
		Job:      mj.Job.ID,
		Slot:     slot,
		Workload: e.info.Workload,
		Config:   mj.Config,
		Seed:     mj.Seed,
		MaxEpoch: e.info.MaxEpoch,
		// The executor's work is a child of the scheduler span that
		// caused this placement (the suspend/re-place decision, or a
		// trace root on first start).
		Trace: obs.SpanContext{TraceID: mj.TraceID, SpanID: mj.LastSpan},
	}
	if resume {
		spec.Snapshot = mj.Snapshot
		spec.History = e.db.History(mj.Job.ID)
		// A job re-placed after agent loss may have trained past its
		// last snapshot; replay only the history the checkpoint covers
		// and rewind the epoch counter to match.
		if mj.SnapEpoch > 0 && len(spec.History) > mj.SnapEpoch {
			spec.History = spec.History[:mj.SnapEpoch]
			mj.Job.SetEpoch(mj.SnapEpoch)
		}
	}
	if err := e.exec.Start(spec); err != nil {
		// Roll the job back to a restartable state.
		if resume {
			_ = mj.Job.Suspend()
		} else {
			_ = mj.Job.Terminate()
		}
		return err
	}
	kind := "start"
	if resume {
		e.res.Resumes++
		e.met.resumes.Inc()
		kind = "resume"
	} else {
		e.met.starts.Inc()
	}
	e.logLifecycle(kind, mj.Job.ID, slot, "")
	e.cfg.Obs.Flight().JobLive(string(mj.Job.ID))
	e.cfg.TraceSink.Begin("scheduler", "job "+string(mj.Job.ID), kind+" on "+string(slot), e.clk.Now(),
		map[string]interface{}{"slot": string(slot), "trace": mj.TraceID, "epoch": mj.Job.Epoch()})
	e.slotJobs[slot] = mj.Job.ID
	return nil
}

// ActiveJobs implements policy.Context.
func (e *Experiment) ActiveJobs() []sched.JobID {
	ids := e.jm.Active()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// JobEpoch implements policy.Context.
func (e *Experiment) JobEpoch(id sched.JobID) int {
	if mj, ok := e.jm.Get(id); ok {
		return mj.Job.Epoch()
	}
	return 0
}

// LabelJob implements policy.Context.
func (e *Experiment) LabelJob(id sched.JobID, priority float64) {
	e.jm.LabelJob(id, priority)
}

// TerminateIdleJob implements policy.Context: terminates a suspended
// job without involving an executor (it holds no slot).
func (e *Experiment) TerminateIdleJob(id sched.JobID) bool {
	mj, ok := e.jm.Get(id)
	if !ok || mj.Job.State() != sched.Suspended {
		return false
	}
	if err := mj.Job.Terminate(); err != nil {
		return false
	}
	e.res.Terminations++
	return true
}

var _ policy.Context = (*Experiment)(nil)
