package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
	"github.com/hyperdrive-ml/hyperdrive/internal/wire"
)

// HeartbeatConfig tunes the scheduler-side liveness probe: MsgPing is
// sent every Interval, and the agent is declared dead once Misses
// consecutive pings go unanswered — which covers both clean connection
// resets (caught immediately by the read loop) and silent partitions
// where the TCP stream stays open but nothing flows.
type HeartbeatConfig struct {
	// Interval between pings; 0 disables the heartbeat loop.
	Interval time.Duration
	// Misses is how many consecutive unanswered pings declare the
	// agent dead; values < 1 default to DefaultHeartbeatMisses.
	Misses int
}

// Default heartbeat parameters: a dead agent is detected within
// roughly Interval * (Misses + 1).
const (
	DefaultHeartbeatInterval = 2 * time.Second
	DefaultHeartbeatMisses   = 3
)

// withDefaults fills zero fields. A zero Interval stays zero: the
// heartbeat is opt-in at the AgentClient layer (the supervisor always
// enables it).
func (h HeartbeatConfig) withDefaults() HeartbeatConfig {
	if h.Misses < 1 {
		h.Misses = DefaultHeartbeatMisses
	}
	return h
}

// AgentClientOptions configures the scheduler side of one agent
// connection.
type AgentClientOptions struct {
	// Heartbeat enables the liveness probe when Interval > 0.
	Heartbeat HeartbeatConfig
	// Obs, when non-nil, receives the heartbeat-RTT histogram.
	Obs *obs.Registry
	// OnDown, when non-nil, is invoked exactly once when the
	// connection is declared dead — before the per-job loss events are
	// emitted, so a supervisor can quarantine the agent's slots first.
	// It is not invoked on a clean Close.
	OnDown func(cause error)
}

// AgentClient is the scheduler-side Executor backed by one remote node
// agent over the wire protocol. Each of the agent's slots appears as
// "<agentID>#<n>".
type AgentClient struct {
	conn    *wire.Conn
	agentID string
	slots   []SlotID
	events  chan<- Event
	hb      HeartbeatConfig
	onDown  func(error)
	rtt     *obs.Histogram

	mu        sync.Mutex
	jobSlots  map[sched.JobID]SlotID
	free      []SlotID
	closed    bool
	pings     map[uint64]time.Time // outstanding heartbeat sends by seq
	seq       uint64
	deadCause error // heartbeat verdict, reported instead of the raw read error

	stopOnce sync.Once
	stop     chan struct{} // closed by Close: aborts event sends and the heartbeat
	done     chan struct{} // closed when readLoop exits
}

// DialAgent connects to an agent, performs the Hello handshake, and
// starts the event-forwarding reader. The heartbeat is off; use
// DialAgentSupervised for the fault-tolerant client.
func DialAgent(addr string, events chan<- Event) (*AgentClient, error) {
	nc, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial agent %s: %w", addr, err)
	}
	return NewAgentClient(nc, events)
}

// NewAgentClient wraps an established connection with default options
// (exposed for tests over net.Pipe).
func NewAgentClient(nc net.Conn, events chan<- Event) (*AgentClient, error) {
	return NewAgentClientOpts(nc, events, AgentClientOptions{})
}

// NewAgentClientOpts wraps an established connection, performs the
// Hello handshake, and starts the reader (plus the heartbeat loop when
// enabled).
func NewAgentClientOpts(nc net.Conn, events chan<- Event, opts AgentClientOptions) (*AgentClient, error) {
	conn := wire.NewConn(nc)
	msg, err := conn.Recv()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: agent handshake: %w", err)
	}
	if msg.Type != wire.MsgHello {
		conn.Close()
		return nil, fmt.Errorf("cluster: agent handshake: unexpected %s", msg.Type)
	}
	var hello wire.HelloPayload
	if err := msg.Decode(&hello); err != nil {
		conn.Close()
		return nil, err
	}
	if hello.Slots < 1 {
		conn.Close()
		return nil, fmt.Errorf("cluster: agent %s advertises %d slots", hello.AgentID, hello.Slots)
	}
	c := &AgentClient{
		conn:     conn,
		agentID:  hello.AgentID,
		events:   events,
		hb:       opts.Heartbeat.withDefaults(),
		onDown:   opts.OnDown,
		rtt:      opts.Obs.Histogram(obs.HeartbeatRTTSeconds),
		jobSlots: make(map[sched.JobID]SlotID),
		pings:    make(map[uint64]time.Time),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	for i := 0; i < hello.Slots; i++ {
		s := SlotID(fmt.Sprintf("%s#%d", hello.AgentID, i))
		c.slots = append(c.slots, s)
		c.free = append(c.free, s)
	}
	go c.readLoop()
	if c.hb.Interval > 0 {
		go c.heartbeatLoop()
	}
	return c, nil
}

// AgentID returns the remote agent's name.
func (c *AgentClient) AgentID() string { return c.agentID }

// Slots implements Executor.
func (c *AgentClient) Slots() []SlotID { return append([]SlotID(nil), c.slots...) }

// Done is closed when the connection's read loop has exited — the
// client is dead (or cleanly closed) and will never emit again.
func (c *AgentClient) Done() <-chan struct{} { return c.done }

// Start implements Executor.
func (c *AgentClient) Start(spec StartSpec) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("cluster: agent %s closed", c.agentID)
	}
	// Bind the requested slot.
	idx := -1
	for i, s := range c.free {
		if s == spec.Slot {
			idx = i
			break
		}
	}
	if idx < 0 {
		c.mu.Unlock()
		return fmt.Errorf("cluster: slot %s not free on agent %s", spec.Slot, c.agentID)
	}
	c.free = append(c.free[:idx], c.free[idx+1:]...)
	c.jobSlots[spec.Job] = spec.Slot
	c.mu.Unlock()

	msgType := wire.MsgStartJob
	if spec.Snapshot != nil {
		msgType = wire.MsgResumeJob
	}
	err := c.conn.SendTyped(msgType, wire.StartJobPayload{
		JobID:    string(spec.Job),
		Workload: spec.Workload,
		Config:   spec.Config,
		MaxEpoch: spec.MaxEpoch,
		Seed:     spec.Seed,
		Snapshot: spec.Snapshot,
		History:  spec.History,
		TraceContext: wire.TraceContext{
			TraceID: spec.Trace.TraceID,
			SpanID:  spec.Trace.SpanID,
		},
	})
	if err != nil {
		c.releaseSlot(spec.Job)
		return err
	}
	return nil
}

// StopJob implements JobStopper: send MsgTerminateJob so the agent
// closes the job's stop channel. The exit acknowledgement arrives as
// the usual MsgJobExited("terminated") → EvExited flow, which is when
// the slot is actually released.
func (c *AgentClient) StopJob(job sched.JobID, slot SlotID) error {
	c.mu.Lock()
	bound, ok := c.jobSlots[job]
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return fmt.Errorf("cluster: agent %s closed", c.agentID)
	}
	if !ok || bound != slot {
		return fmt.Errorf("cluster: job %s not running on slot %s of agent %s", job, slot, c.agentID)
	}
	return c.conn.SendTyped(wire.MsgTerminateJob, wire.JobControlPayload{JobID: string(job)})
}

// Close implements Executor. Safe to call more than once and after a
// connection failure; it never blocks on a wedged event channel.
func (c *AgentClient) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.stopOnce.Do(func() { close(c.stop) })
	err := c.conn.Close()
	<-c.done
	return err
}

// emit delivers one event unless the client is shutting down, so a
// blocked consumer can never deadlock Close.
func (c *AgentClient) emit(ev Event) bool {
	select {
	case c.events <- ev:
		return true
	case <-c.stop:
		return false
	}
}

// releaseSlot frees the slot bound to a job.
func (c *AgentClient) releaseSlot(job sched.JobID) SlotID {
	c.mu.Lock()
	defer c.mu.Unlock()
	slot, ok := c.jobSlots[job]
	if !ok {
		return ""
	}
	delete(c.jobSlots, job)
	c.free = append(c.free, slot)
	return slot
}

// slotOf looks up a running job's slot.
func (c *AgentClient) slotOf(job sched.JobID) SlotID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobSlots[job]
}

// heartbeatLoop pings the agent every hb.Interval, declaring it dead
// once hb.Misses consecutive pings are outstanding. Death is enacted by
// closing the connection: the read loop surfaces the failure through
// the usual failAll path with the heartbeat verdict as cause.
func (c *AgentClient) heartbeatLoop() {
	t := time.NewTicker(c.hb.Interval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-c.done:
			return
		case <-t.C:
		}
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			return
		}
		if len(c.pings) >= c.hb.Misses {
			c.deadCause = fmt.Errorf("heartbeat: %d pings unanswered over %v",
				len(c.pings), time.Duration(len(c.pings))*c.hb.Interval)
			c.mu.Unlock()
			c.conn.Close()
			return
		}
		c.seq++
		seq := c.seq
		c.pings[seq] = time.Now()
		c.mu.Unlock()
		t0 := time.Now()
		if c.conn.Send(wire.Message{Type: wire.MsgPing, Seq: seq}) != nil {
			// Write failure: the read loop will (or already did) see the
			// same dead connection; closing just accelerates it.
			c.conn.Close()
			return
		}
		if time.Since(t0) > c.hb.Interval {
			// The ping queued behind a large frame (e.g. a snapshot
			// upload) on our own write path. The silence was local
			// congestion, not the agent — don't hold it against it.
			c.forgivePings()
		}
	}
}

// forgivePings clears all outstanding heartbeat probes: any frame from
// the agent is proof of life, so a busy connection streaming stats can
// never be declared dead just because pongs queue behind the data.
func (c *AgentClient) forgivePings() {
	if c.hb.Interval <= 0 {
		return
	}
	c.mu.Lock()
	for s := range c.pings {
		delete(c.pings, s)
	}
	c.mu.Unlock()
}

// handlePong credits one heartbeat reply: the matching ping's RTT is
// recorded and every older outstanding ping is forgiven (any pong is
// proof of life).
func (c *AgentClient) handlePong(seq uint64) {
	var rtt time.Duration
	seen := false
	c.mu.Lock()
	if t0, ok := c.pings[seq]; ok {
		rtt = time.Since(t0)
		seen = true
	}
	for s := range c.pings {
		if s <= seq || seq == 0 {
			delete(c.pings, s)
		}
	}
	c.mu.Unlock()
	if seen {
		c.rtt.Observe(rtt.Seconds())
	}
}

// emitStat forwards one decoded stat report as an EvStat event;
// false means the client is shutting down.
func (c *AgentClient) emitStat(p wire.AppStatPayload) bool {
	return c.emit(Event{
		Kind: EvStat, Job: sched.JobID(p.JobID), Slot: c.slotOf(sched.JobID(p.JobID)),
		Epoch: p.Epoch, Metric: p.Metric, Duration: time.Duration(p.Dur0nsec),
		Pred: p.Predict, HasPred: p.HasPred,
	})
}

// readLoop converts wire messages into executor Events.
func (c *AgentClient) readLoop() {
	defer close(c.done)
	for {
		msg, err := c.conn.Recv()
		if err != nil {
			// Well-framed but from a newer protocol revision: the
			// stream is intact, so skip the frame instead of declaring
			// the agent dead.
			var ute *wire.UnknownTypeError
			if errors.As(err, &ute) {
				continue
			}
			c.failAll(err)
			return
		}
		if msg.Type != wire.MsgPong {
			c.forgivePings()
		}
		switch msg.Type {
		case wire.MsgAppStat:
			var p wire.AppStatPayload
			if msg.Decode(&p) != nil {
				continue
			}
			if !c.emitStat(p) {
				return
			}
		case wire.MsgAppStatBatch:
			// Batched stat decoding: one frame, one JSON parse, N events
			// in emission order — exactly as if each entry had arrived in
			// its own MsgAppStat frame.
			var p wire.AppStatBatchPayload
			if msg.Decode(&p) != nil {
				continue
			}
			stopped := false
			for _, st := range p.Stats {
				if !c.emitStat(st) {
					stopped = true
					break
				}
			}
			if stopped {
				return
			}
		case wire.MsgIterDone:
			var p wire.IterDonePayload
			if msg.Decode(&p) != nil {
				continue
			}
			reply := make(chan DecisionReply, 1)
			ok := c.emit(Event{
				Kind: EvIterDone, Job: sched.JobID(p.JobID), Slot: c.slotOf(sched.JobID(p.JobID)),
				Epoch: p.Epoch, Reply: reply,
				Trace: obs.SpanContext{TraceID: p.TraceID, SpanID: p.SpanID},
			})
			if !ok {
				return
			}
			go c.forwardDecision(p.JobID, reply)
		case wire.MsgSnapshot:
			var p wire.SnapshotPayload
			if msg.Decode(&p) != nil {
				continue
			}
			ok := c.emit(Event{
				Kind: EvSnapshot, Job: sched.JobID(p.JobID), Slot: c.slotOf(sched.JobID(p.JobID)),
				Epoch: p.Epoch, Snapshot: p.State, SnapSize: len(p.State),
				Trace: obs.SpanContext{TraceID: p.TraceID, SpanID: p.SpanID},
			})
			if !ok {
				return
			}
		case wire.MsgJobExited:
			var p wire.JobExitedPayload
			if msg.Decode(&p) != nil {
				continue
			}
			job := sched.JobID(p.JobID)
			slot := c.releaseSlot(job)
			var reason ExitReason
			switch p.Reason {
			case "completed":
				reason = ExitCompleted
			case "suspended":
				reason = ExitSuspended
			case "error":
				reason = ExitError
			default:
				reason = ExitTerminated
			}
			ev := Event{
				Kind: EvExited, Job: job, Slot: slot, Epoch: p.Epoch, Reason: reason,
				Trace: obs.SpanContext{TraceID: p.TraceID, SpanID: p.SpanID},
			}
			if p.Error != "" {
				ev.Err = fmt.Errorf("agent %s: %s", c.agentID, p.Error)
			}
			if !c.emit(ev) {
				return
			}
		case wire.MsgError:
			var p wire.ErrorPayload
			if msg.Decode(&p) != nil {
				continue
			}
			if p.JobID == "" {
				// Agent-level fault: the agent is alive but something
				// outside any job went wrong. Surface it instead of
				// swallowing it.
				ok := c.emit(Event{
					Kind: EvAgentError, Agent: c.agentID,
					Err: fmt.Errorf("agent %s: %s", c.agentID, p.Message),
				})
				if !ok {
					return
				}
				continue
			}
			job := sched.JobID(p.JobID)
			slot := c.releaseSlot(job)
			ok := c.emit(Event{
				Kind: EvExited, Job: job, Slot: slot, Reason: ExitError,
				Err: fmt.Errorf("agent %s: %s", c.agentID, p.Message),
			})
			if !ok {
				return
			}
		case wire.MsgPong:
			c.handlePong(msg.Seq)
		default:
			// Scheduler-bound frames this client does not consume
			// (e.g. a stray MsgHello after handshake) are dropped;
			// any-frame liveness credit was already granted above.
		}
	}
}

// forwardDecision relays one OnIterationFinish verdict to the agent,
// carrying the decision span's context so agent-side reaction spans
// parent under the scheduler's decision.
func (c *AgentClient) forwardDecision(jobID string, reply <-chan DecisionReply) {
	var dr DecisionReply
	select {
	case got, ok := <-reply:
		if !ok {
			return
		}
		dr = got
	case <-c.stop:
		return
	}
	var s string
	switch dr.Decision {
	case sched.Suspend:
		s = "suspend"
	case sched.Terminate:
		s = "terminate"
	default:
		s = "continue"
	}
	p := wire.DecisionPayload{
		JobID:      jobID,
		Decision:   s,
		Confidence: dr.Confidence,
		ERTSeconds: dr.ERTSeconds,
		Class:      dr.Class,
		TraceContext: wire.TraceContext{
			TraceID: dr.Trace.TraceID,
			SpanID:  dr.Trace.SpanID,
		},
	}
	if err := c.conn.SendTyped(wire.MsgDecision, p); err != nil {
		// Connection failure surfaces through readLoop.
		return
	}
}

// failAll declares the connection dead: the client is marked closed so
// no further Start can bind a slot on it, the supervisor hook (if any)
// runs first so slots can be quarantined, and every outstanding job is
// reported lost — the re-placement path, not a training failure.
func (c *AgentClient) failAll(cause error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	if c.deadCause != nil {
		cause = c.deadCause
	}
	jobs := make(map[sched.JobID]SlotID, len(c.jobSlots))
	for j, s := range c.jobSlots {
		jobs[j] = s
	}
	c.jobSlots = make(map[sched.JobID]SlotID)
	c.mu.Unlock()
	if c.onDown != nil {
		c.onDown(cause)
	}
	for job, slot := range jobs {
		ok := c.emit(Event{
			Kind: EvExited, Job: job, Slot: slot, Reason: ExitLost,
			Err: fmt.Errorf("agent %s connection lost: %v", c.agentID, cause),
		})
		if !ok {
			return
		}
	}
}

var (
	_ Executor   = (*AgentClient)(nil)
	_ JobStopper = (*AgentClient)(nil)
)

// MultiExecutor fans an experiment out across several agents, exposing
// the union of their slots — the multi-machine deployments of §6
// (4-machine GPU cluster; 15 AWS instances).
type MultiExecutor struct {
	execs  []Executor
	bySlot map[SlotID]Executor
}

// NewMultiExecutor combines executors; slot IDs must be disjoint.
func NewMultiExecutor(execs ...Executor) (*MultiExecutor, error) {
	if len(execs) == 0 {
		return nil, fmt.Errorf("cluster: no executors")
	}
	m := &MultiExecutor{execs: execs, bySlot: make(map[SlotID]Executor)}
	for _, ex := range execs {
		for _, s := range ex.Slots() {
			if _, dup := m.bySlot[s]; dup {
				return nil, fmt.Errorf("cluster: duplicate slot %s across executors", s)
			}
			m.bySlot[s] = ex
		}
	}
	return m, nil
}

// Slots implements Executor.
func (m *MultiExecutor) Slots() []SlotID {
	var out []SlotID
	for _, ex := range m.execs {
		out = append(out, ex.Slots()...)
	}
	return out
}

// Start implements Executor.
func (m *MultiExecutor) Start(spec StartSpec) error {
	ex, ok := m.bySlot[spec.Slot]
	if !ok {
		return fmt.Errorf("cluster: unknown slot %s", spec.Slot)
	}
	return ex.Start(spec)
}

// StopJob implements JobStopper by routing to the executor that owns
// the slot, when it supports stopping.
func (m *MultiExecutor) StopJob(job sched.JobID, slot SlotID) error {
	ex, ok := m.bySlot[slot]
	if !ok {
		return fmt.Errorf("cluster: unknown slot %s", slot)
	}
	stopper, ok := ex.(JobStopper)
	if !ok {
		return fmt.Errorf("cluster: executor for slot %s cannot stop jobs", slot)
	}
	return stopper.StopJob(job, slot)
}

// Close implements Executor.
func (m *MultiExecutor) Close() error {
	var first error
	for _, ex := range m.execs {
		if err := ex.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

var (
	_ Executor   = (*MultiExecutor)(nil)
	_ JobStopper = (*MultiExecutor)(nil)
)
