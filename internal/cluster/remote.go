package cluster

import (
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
	"github.com/hyperdrive-ml/hyperdrive/internal/wire"
)

// AgentClient is the scheduler-side Executor backed by one remote node
// agent over the wire protocol. Each of the agent's slots appears as
// "<agentID>#<n>".
type AgentClient struct {
	conn    *wire.Conn
	agentID string
	slots   []SlotID
	events  chan<- Event

	mu       sync.Mutex
	jobSlots map[sched.JobID]SlotID
	free     []SlotID
	closed   bool
	done     chan struct{}
}

// DialAgent connects to an agent, performs the Hello handshake, and
// starts the event-forwarding reader.
func DialAgent(addr string, events chan<- Event) (*AgentClient, error) {
	nc, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("cluster: dial agent %s: %w", addr, err)
	}
	return NewAgentClient(nc, events)
}

// NewAgentClient wraps an established connection (exposed for tests
// over net.Pipe).
func NewAgentClient(nc net.Conn, events chan<- Event) (*AgentClient, error) {
	conn := wire.NewConn(nc)
	msg, err := conn.Recv()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("cluster: agent handshake: %w", err)
	}
	if msg.Type != wire.MsgHello {
		conn.Close()
		return nil, fmt.Errorf("cluster: agent handshake: unexpected %s", msg.Type)
	}
	var hello wire.HelloPayload
	if err := msg.Decode(&hello); err != nil {
		conn.Close()
		return nil, err
	}
	if hello.Slots < 1 {
		conn.Close()
		return nil, fmt.Errorf("cluster: agent %s advertises %d slots", hello.AgentID, hello.Slots)
	}
	c := &AgentClient{
		conn:     conn,
		agentID:  hello.AgentID,
		events:   events,
		jobSlots: make(map[sched.JobID]SlotID),
		done:     make(chan struct{}),
	}
	for i := 0; i < hello.Slots; i++ {
		s := SlotID(fmt.Sprintf("%s#%d", hello.AgentID, i))
		c.slots = append(c.slots, s)
		c.free = append(c.free, s)
	}
	go c.readLoop()
	return c, nil
}

// AgentID returns the remote agent's name.
func (c *AgentClient) AgentID() string { return c.agentID }

// Slots implements Executor.
func (c *AgentClient) Slots() []SlotID { return append([]SlotID(nil), c.slots...) }

// Start implements Executor.
func (c *AgentClient) Start(spec StartSpec) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return fmt.Errorf("cluster: agent %s closed", c.agentID)
	}
	// Bind the requested slot.
	idx := -1
	for i, s := range c.free {
		if s == spec.Slot {
			idx = i
			break
		}
	}
	if idx < 0 {
		c.mu.Unlock()
		return fmt.Errorf("cluster: slot %s not free on agent %s", spec.Slot, c.agentID)
	}
	c.free = append(c.free[:idx], c.free[idx+1:]...)
	c.jobSlots[spec.Job] = spec.Slot
	c.mu.Unlock()

	msgType := wire.MsgStartJob
	if spec.Snapshot != nil {
		msgType = wire.MsgResumeJob
	}
	err := c.conn.SendTyped(msgType, wire.StartJobPayload{
		JobID:    string(spec.Job),
		Workload: spec.Workload,
		Config:   spec.Config,
		MaxEpoch: spec.MaxEpoch,
		Seed:     spec.Seed,
		Snapshot: spec.Snapshot,
		History:  spec.History,
	})
	if err != nil {
		c.releaseSlot(spec.Job)
		return err
	}
	return nil
}

// Close implements Executor.
func (c *AgentClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.done
	return err
}

// releaseSlot frees the slot bound to a job.
func (c *AgentClient) releaseSlot(job sched.JobID) SlotID {
	c.mu.Lock()
	defer c.mu.Unlock()
	slot, ok := c.jobSlots[job]
	if !ok {
		return ""
	}
	delete(c.jobSlots, job)
	c.free = append(c.free, slot)
	return slot
}

// slotOf looks up a running job's slot.
func (c *AgentClient) slotOf(job sched.JobID) SlotID {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jobSlots[job]
}

// readLoop converts wire messages into executor Events.
func (c *AgentClient) readLoop() {
	defer close(c.done)
	for {
		msg, err := c.conn.Recv()
		if err != nil {
			c.failAll(err)
			return
		}
		switch msg.Type {
		case wire.MsgAppStat:
			var p wire.AppStatPayload
			if msg.Decode(&p) != nil {
				continue
			}
			c.events <- Event{
				Kind: EvStat, Job: sched.JobID(p.JobID), Slot: c.slotOf(sched.JobID(p.JobID)),
				Epoch: p.Epoch, Metric: p.Metric, Duration: time.Duration(p.Dur0nsec),
				Pred: p.Predict, HasPred: p.HasPred,
			}
		case wire.MsgIterDone:
			var p wire.IterDonePayload
			if msg.Decode(&p) != nil {
				continue
			}
			reply := make(chan sched.Decision, 1)
			c.events <- Event{
				Kind: EvIterDone, Job: sched.JobID(p.JobID), Slot: c.slotOf(sched.JobID(p.JobID)),
				Epoch: p.Epoch, Reply: reply,
			}
			go c.forwardDecision(p.JobID, reply)
		case wire.MsgSnapshot:
			var p wire.SnapshotPayload
			if msg.Decode(&p) != nil {
				continue
			}
			c.events <- Event{
				Kind: EvSnapshot, Job: sched.JobID(p.JobID), Slot: c.slotOf(sched.JobID(p.JobID)),
				Epoch: p.Epoch, Snapshot: p.State, SnapSize: len(p.State),
			}
		case wire.MsgJobExited:
			var p wire.JobExitedPayload
			if msg.Decode(&p) != nil {
				continue
			}
			job := sched.JobID(p.JobID)
			slot := c.releaseSlot(job)
			var reason ExitReason
			switch p.Reason {
			case "completed":
				reason = ExitCompleted
			case "suspended":
				reason = ExitSuspended
			case "error":
				reason = ExitError
			default:
				reason = ExitTerminated
			}
			ev := Event{Kind: EvExited, Job: job, Slot: slot, Epoch: p.Epoch, Reason: reason}
			if p.Error != "" {
				ev.Err = fmt.Errorf("agent %s: %s", c.agentID, p.Error)
			}
			c.events <- ev
		case wire.MsgError:
			var p wire.ErrorPayload
			if msg.Decode(&p) != nil {
				continue
			}
			if p.JobID != "" {
				job := sched.JobID(p.JobID)
				slot := c.releaseSlot(job)
				c.events <- Event{
					Kind: EvExited, Job: job, Slot: slot, Reason: ExitError,
					Err: fmt.Errorf("agent %s: %s", c.agentID, p.Message),
				}
			}
		case wire.MsgPong:
			// Health response; nothing to do.
		}
	}
}

// forwardDecision relays one OnIterationFinish verdict to the agent.
func (c *AgentClient) forwardDecision(jobID string, reply <-chan sched.Decision) {
	d, ok := <-reply
	if !ok {
		return
	}
	var s string
	switch d {
	case sched.Suspend:
		s = "suspend"
	case sched.Terminate:
		s = "terminate"
	default:
		s = "continue"
	}
	if err := c.conn.SendTyped(wire.MsgDecision, wire.DecisionPayload{JobID: jobID, Decision: s}); err != nil {
		// Connection failure surfaces through readLoop.
		return
	}
}

// failAll reports every outstanding job as errored when the agent
// connection drops — the failure-injection path the scheduler handles
// by terminating the affected jobs and reallocating their slots.
func (c *AgentClient) failAll(cause error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	jobs := make(map[sched.JobID]SlotID, len(c.jobSlots))
	for j, s := range c.jobSlots {
		jobs[j] = s
	}
	c.jobSlots = make(map[sched.JobID]SlotID)
	c.mu.Unlock()
	for job, slot := range jobs {
		c.events <- Event{
			Kind: EvExited, Job: job, Slot: slot, Reason: ExitError,
			Err: fmt.Errorf("agent %s connection lost: %v", c.agentID, cause),
		}
	}
}

var _ Executor = (*AgentClient)(nil)

// MultiExecutor fans an experiment out across several agents, exposing
// the union of their slots — the multi-machine deployments of §6
// (4-machine GPU cluster; 15 AWS instances).
type MultiExecutor struct {
	execs  []Executor
	bySlot map[SlotID]Executor
}

// NewMultiExecutor combines executors; slot IDs must be disjoint.
func NewMultiExecutor(execs ...Executor) (*MultiExecutor, error) {
	if len(execs) == 0 {
		return nil, fmt.Errorf("cluster: no executors")
	}
	m := &MultiExecutor{execs: execs, bySlot: make(map[SlotID]Executor)}
	for _, ex := range execs {
		for _, s := range ex.Slots() {
			if _, dup := m.bySlot[s]; dup {
				return nil, fmt.Errorf("cluster: duplicate slot %s across executors", s)
			}
			m.bySlot[s] = ex
		}
	}
	return m, nil
}

// Slots implements Executor.
func (m *MultiExecutor) Slots() []SlotID {
	var out []SlotID
	for _, ex := range m.execs {
		out = append(out, ex.Slots()...)
	}
	return out
}

// Start implements Executor.
func (m *MultiExecutor) Start(spec StartSpec) error {
	ex, ok := m.bySlot[spec.Slot]
	if !ok {
		return fmt.Errorf("cluster: unknown slot %s", spec.Slot)
	}
	return ex.Start(spec)
}

// Close implements Executor.
func (m *MultiExecutor) Close() error {
	var first error
	for _, ex := range m.execs {
		if err := ex.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

var _ Executor = (*MultiExecutor)(nil)
