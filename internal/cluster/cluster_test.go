package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/appstat"
	"github.com/hyperdrive-ml/hyperdrive/internal/clock"
	"github.com/hyperdrive-ml/hyperdrive/internal/curve"
	"github.com/hyperdrive-ml/hyperdrive/internal/hypergen"
	"github.com/hyperdrive-ml/hyperdrive/internal/param"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
	"github.com/hyperdrive-ml/hyperdrive/internal/sim"
	"github.com/hyperdrive-ml/hyperdrive/internal/trace"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// fastClock compresses simulated minutes into sub-millisecond sleeps.
func fastClock() clock.Clock {
	return clock.NewScaled(time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC), 200000)
}

func tinyPredictor() curve.Config {
	return curve.Config{Walkers: 8, Iters: 30, BurnFrac: 0.5, MaxSamples: 100, StretchA: 2, Seed: 1}
}

func TestResourceManager(t *testing.T) {
	rm := NewResourceManager([]SlotID{"a", "b"})
	if rm.Total() != 2 || rm.IdleCount() != 2 {
		t.Fatalf("fresh RM: total=%d idle=%d", rm.Total(), rm.IdleCount())
	}
	s1, ok := rm.ReserveIdleMachine()
	if !ok {
		t.Fatal("reserve failed")
	}
	s2, _ := rm.ReserveIdleMachine()
	if _, ok := rm.ReserveIdleMachine(); ok {
		t.Fatal("reserved more slots than exist")
	}
	if err := rm.ReleaseMachine(s1); err != nil {
		t.Fatal(err)
	}
	if err := rm.ReleaseMachine(s1); err == nil {
		t.Fatal("double release accepted")
	}
	if rm.IdleCount() != 1 {
		t.Fatalf("idle = %d, want 1", rm.IdleCount())
	}
	_ = s2
}

func TestJobManager(t *testing.T) {
	jm := NewJobManager()
	a, err := jm.Add("a", param.Config{"x": 1}, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jm.Add("a", nil, 1, 100); err == nil {
		t.Fatal("duplicate job accepted")
	}
	b, _ := jm.Add("b", param.Config{"x": 2}, 2, 100)

	// No suspended jobs yet.
	if _, ok := jm.GetIdleJob(); ok {
		t.Fatal("GetIdleJob found something before any suspend")
	}
	for _, mj := range []*ManagedJob{a, b} {
		if err := mj.Job.Start("m"); err != nil {
			t.Fatal(err)
		}
		if err := mj.Job.Suspend(); err != nil {
			t.Fatal(err)
		}
	}
	// FIFO: a was created first.
	mj, ok := jm.GetIdleJob()
	if !ok || mj.Job.ID != "a" {
		t.Fatalf("GetIdleJob = %v, want a (FIFO)", mj.Job.ID)
	}
	// Priority beats FIFO.
	jm.LabelJob("b", 0.9)
	mj, _ = jm.GetIdleJob()
	if mj.Job.ID != "b" {
		t.Fatalf("GetIdleJob = %v, want b (priority)", mj.Job.ID)
	}
	if jm.SuspendedCount() != 2 || len(jm.Active()) != 2 {
		t.Fatalf("suspended=%d active=%d", jm.SuspendedCount(), len(jm.Active()))
	}
}

func TestWorkerPoolValidation(t *testing.T) {
	events := make(chan Event, 1)
	reg := workload.NewRegistry()
	if _, err := NewWorkerPool(0, reg, fastClock(), nil, events); err == nil {
		t.Fatal("accepted zero slots")
	}
	if _, err := NewWorkerPool(1, nil, fastClock(), nil, events); err == nil {
		t.Fatal("accepted nil registry")
	}
	p, err := NewWorkerPool(1, reg, fastClock(), nil, events)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Start(StartSpec{Job: "j", Slot: "nope", Workload: "cifar10", Config: param.Config{}}); err == nil {
		t.Fatal("accepted unknown slot")
	}
	if err := p.Start(StartSpec{Job: "j", Slot: "worker-0", Workload: "unknown", Config: param.Config{}}); err == nil {
		t.Fatal("accepted unknown workload")
	}
}

func expConfig(t *testing.T, pol policy.Policy, machines, jobs int) Config {
	t.Helper()
	space := param.CIFAR10Space()
	rng := rand.New(rand.NewSource(7))
	var cfgs []param.Config
	for i := 0; i < jobs; i++ {
		cfgs = append(cfgs, space.Sample(rng))
	}
	return Config{
		Workload:  "cifar10",
		Generator: hypergen.NewFixed(cfgs),
		Policy:    pol,
		Machines:  machines,
		MaxJobs:   jobs,
		Clock:     fastClock(),
		Seed:      3,
	}
}

func TestExperimentValidation(t *testing.T) {
	cfg := expConfig(t, policy.NewDefault(), 2, 2)
	cfg.Generator = nil
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted nil generator")
	}
	cfg = expConfig(t, nil, 2, 2)
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted nil policy")
	}
	cfg = expConfig(t, policy.NewDefault(), 0, 2)
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted zero machines")
	}
	cfg = expConfig(t, policy.NewDefault(), 2, 0)
	cfg.MaxJobs = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted zero MaxJobs")
	}
	cfg = expConfig(t, policy.NewDefault(), 2, 2)
	cfg.Workload = "nope"
	if _, err := New(cfg); err == nil {
		t.Fatal("accepted unknown workload")
	}
}

func TestExperimentDefaultCompletesAll(t *testing.T) {
	e, err := New(expConfig(t, policy.NewDefault(), 2, 5))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions != 5 {
		t.Fatalf("completions = %d, want 5 (%+v)", res.Completions, res)
	}
	if res.StoppedBy != "exhausted" {
		t.Fatalf("StoppedBy = %q", res.StoppedBy)
	}
	for _, j := range res.Jobs {
		if j.Epochs != 120 || j.FinalState != sched.Completed {
			t.Fatalf("job %s: epochs=%d state=%v", j.ID, j.Epochs, j.FinalState)
		}
		if j.BusyTime <= 0 {
			t.Fatalf("job %s has no busy time", j.ID)
		}
	}
	if res.Best <= 0.05 {
		t.Fatalf("best = %v", res.Best)
	}
}

func TestExperimentStopAtTarget(t *testing.T) {
	cfg := expConfig(t, policy.NewDefault(), 2, 4)
	cfg.StopAtTarget = true
	cfg.TargetOverride = 0.12 // trivially reachable: even non-learners wobble past it
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Reached || res.StoppedBy != "target" {
		t.Fatalf("res = %+v", res)
	}
	if res.TimeToTarget <= 0 {
		t.Fatalf("TimeToTarget = %v", res.TimeToTarget)
	}
}

func TestExperimentBudgetStop(t *testing.T) {
	cfg := expConfig(t, policy.NewDefault(), 1, 4)
	cfg.MaxDuration = 30 * time.Minute // one job needs ~2h simulated
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.StoppedBy != "budget" {
		t.Fatalf("StoppedBy = %q, want budget", res.StoppedBy)
	}
	if res.Completions != 0 {
		t.Fatalf("completions = %d in a 30-minute budget", res.Completions)
	}
}

func TestExperimentCancel(t *testing.T) {
	cfg := expConfig(t, policy.NewDefault(), 1, 4)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := e.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.StoppedBy != "canceled" {
		t.Fatalf("StoppedBy = %q", res.StoppedBy)
	}
}

func TestExperimentStopCondition(t *testing.T) {
	cfg := expConfig(t, policy.NewDefault(), 2, 4)
	calls := 0
	cfg.StopCondition = func(db *appstat.DB, info policy.Info) bool {
		calls++
		return calls > 50
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.StoppedBy != "condition" {
		t.Fatalf("StoppedBy = %q, want condition", res.StoppedBy)
	}
}

func TestExperimentPOPSuspendResume(t *testing.T) {
	pop, err := policy.NewPOP(policy.POPOptions{Predictor: tinyPredictor()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := expConfig(t, pop, 2, 10)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("POP live: suspends=%d resumes=%d terms=%d completions=%d fits=%d",
		res.Suspends, res.Resumes, res.Terminations, res.Completions, res.Fits)
	if res.Terminations == 0 {
		t.Fatal("POP terminated nothing on 10 random configs")
	}
	if res.Suspends > 0 {
		if res.Resumes == 0 && res.Suspends > e.jm.SuspendedCount() {
			t.Fatal("suspended jobs never resumed")
		}
		if len(res.Overheads.Records()) != res.Suspends {
			t.Fatalf("overhead records %d != suspends %d", len(res.Overheads.Records()), res.Suspends)
		}
	}
	if res.Fits == 0 {
		t.Fatal("POP never fit a curve")
	}
}

// --- remote agent tests ----------------------------------------------

// startAgent runs an Agent on a loopback listener and returns its
// address and a cleanup func.
func startAgent(t *testing.T, opts AgentOptions) string {
	t.Helper()
	if opts.Clock == nil {
		opts.Clock = fastClock()
	}
	if opts.Slots == 0 {
		opts.Slots = 2
	}
	a, err := NewAgent(opts)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go a.Serve(l)
	t.Cleanup(func() {
		a.Close()
		l.Close()
	})
	return l.Addr().String()
}

func TestAgentEndToEnd(t *testing.T) {
	addr := startAgent(t, AgentOptions{ID: "agent1", Slots: 2})
	events := make(chan Event, 256)
	client, err := DialAgent(addr, events)
	if err != nil {
		t.Fatal(err)
	}
	if client.AgentID() != "agent1" || len(client.Slots()) != 2 {
		t.Fatalf("handshake: id=%s slots=%v", client.AgentID(), client.Slots())
	}

	cfg := expConfig(t, policy.NewDefault(), 0, 4)
	cfg.Executor = client
	cfg.Events = events
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions != 4 {
		t.Fatalf("completions = %d, want 4 (%+v)", res.Completions, res)
	}
	client.Close()
}

func TestAgentSuspendResumeAcrossConnection(t *testing.T) {
	addr := startAgent(t, AgentOptions{ID: "agent1", Slots: 1})
	events := make(chan Event, 256)
	client, err := DialAgent(addr, events)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	pop, err := policy.NewPOP(policy.POPOptions{Predictor: tinyPredictor()})
	if err != nil {
		t.Fatal(err)
	}
	cfg := expConfig(t, pop, 0, 6)
	cfg.Executor = client
	cfg.Events = events
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("agent POP: suspends=%d resumes=%d terms=%d completions=%d",
		res.Suspends, res.Resumes, res.Terminations, res.Completions)
	if res.Terminations+res.Completions == 0 {
		t.Fatal("nothing finished over the agent")
	}
}

func TestMultiExecutorTwoAgents(t *testing.T) {
	addr1 := startAgent(t, AgentOptions{ID: "agentA", Slots: 1})
	addr2 := startAgent(t, AgentOptions{ID: "agentB", Slots: 1})
	events := make(chan Event, 256)
	c1, err := DialAgent(addr1, events)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := DialAgent(addr2, events)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	multi, err := NewMultiExecutor(c1, c2)
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Slots()) != 2 {
		t.Fatalf("slots = %v", multi.Slots())
	}

	cfg := expConfig(t, policy.NewDefault(), 0, 4)
	cfg.Executor = multi
	cfg.Events = events
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Completions != 4 {
		t.Fatalf("completions = %d, want 4", res.Completions)
	}
}

func TestMultiExecutorRejectsDuplicateSlots(t *testing.T) {
	events := make(chan Event, 16)
	reg := workload.NewRegistry()
	p1, _ := NewWorkerPool(1, reg, fastClock(), nil, events)
	p2, _ := NewWorkerPool(1, reg, fastClock(), nil, events)
	defer p1.Close()
	defer p2.Close()
	if _, err := NewMultiExecutor(p1, p2); err == nil {
		t.Fatal("accepted duplicate worker-0 slots")
	}
}

func TestAgentConnectionLossFailsJobs(t *testing.T) {
	addr := startAgent(t, AgentOptions{ID: "flaky", Slots: 1, Clock: clock.NewScaled(time.Now(), 2000)})
	events := make(chan Event, 256)
	client, err := DialAgent(addr, events)
	if err != nil {
		t.Fatal(err)
	}
	spec := StartSpec{
		Job: "doomed", Slot: client.Slots()[0], Workload: "cifar10",
		Config: param.CIFAR10Space().Sample(rand.New(rand.NewSource(1))),
		Seed:   1, MaxEpoch: 120,
	}
	if err := client.Start(spec); err != nil {
		t.Fatal(err)
	}
	// Wait for the first stat, then cut the connection.
	select {
	case ev := <-events:
		if ev.Kind != EvStat {
			t.Fatalf("first event = %v", ev.Kind)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("no stat from agent")
	}
	client.conn.Close()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev := <-events:
			if ev.Kind == EvExited && ev.Reason == ExitLost && ev.Job == "doomed" {
				return // failure surfaced correctly
			}
		case <-deadline:
			t.Fatal("connection loss never surfaced as job failure")
		}
	}
}

func TestAgentDistributedPrediction(t *testing.T) {
	pred, err := curve.NewPredictor(tinyPredictor())
	if err != nil {
		t.Fatal(err)
	}
	addr := startAgent(t, AgentOptions{ID: "predictive", Slots: 1, Predictor: pred})
	events := make(chan Event, 4096)
	client, err := DialAgent(addr, events)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	cfg := expConfig(t, policy.NewDefault(), 0, 1)
	cfg.Executor = client
	cfg.Events = events
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The agent computes predictions asynchronously and piggybacks
	// them on stat reports; a full 120-epoch job must have produced at
	// least one, stored in the AppStat DB (§5.2 distributed curve
	// prediction).
	found := false
	for _, job := range e.db.Jobs() {
		if _, ok := e.db.LatestPrediction(job); ok {
			found = true
			if ps := e.db.Predictions(job); len(ps) == 0 {
				t.Fatal("LatestPrediction disagrees with Predictions")
			}
		}
	}
	if !found {
		t.Fatal("no agent-side predictions reached the AppStat DB")
	}
}

func TestExperimentRecordsReplayableTrace(t *testing.T) {
	rec := trace.NewRecorder(workload.CIFAR10())
	cfg := expConfig(t, policy.NewDefault(), 2, 4)
	cfg.Recorder = rec
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	tr, complete, err := rec.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !complete {
		t.Fatal("a Default-policy run should record complete curves")
	}
	if len(tr.Jobs) != 4 {
		t.Fatalf("recorded %d jobs, want 4", len(tr.Jobs))
	}
	// Replaying the recorded trace reproduces the live run's total
	// training volume exactly.
	simRes, err := sim.Run(sim.Options{Trace: tr, Machines: 2, Policy: policy.NewDefault()})
	if err != nil {
		t.Fatal(err)
	}
	var liveBusy, simBusy time.Duration
	for _, j := range res.Jobs {
		liveBusy += j.BusyTime
	}
	for _, j := range simRes.Jobs {
		simBusy += j.BusyTime
	}
	if liveBusy != simBusy {
		t.Fatalf("live busy %v != replay busy %v", liveBusy, simBusy)
	}
}

func TestExperimentEventLog(t *testing.T) {
	var buf bytes.Buffer
	cfg := expConfig(t, policy.NewDefault(), 2, 3)
	cfg.EventLog = NewEventLog(&buf)
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	dec := json.NewDecoder(&buf)
	for {
		var rec LogRecord
		if err := dec.Decode(&rec); err != nil {
			break
		}
		kinds[rec.Kind]++
	}
	if kinds["start"] != 3 {
		t.Fatalf("start records = %d, want 3 (kinds %v)", kinds["start"], kinds)
	}
	if kinds["stat"] < 3*120 {
		t.Fatalf("stat records = %d, want >= 360", kinds["stat"])
	}
	if kinds["decision"] == 0 || kinds["completed"] != 3 || kinds["stop"] != 1 {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestEventLogNilSafeAndDeadWriter(t *testing.T) {
	var l *EventLog
	l.Log(LogRecord{Kind: "x"}) // nil receiver: no panic
	failing := NewEventLog(failWriter{})
	failing.Log(LogRecord{Kind: "a"}) // first write fails -> disabled
	failing.Log(LogRecord{Kind: "b"}) // still no panic
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }
