package cluster

import (
	"testing"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/param"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// continueStub models the off-boundary steady state: the policy lets
// every iteration run and never annotates the decision span.
type continueStub struct{}

func (continueStub) Name() string                                { return "continue-stub" }
func (continueStub) AllocateJobs(policy.Context)                 {}
func (continueStub) ApplicationStat(policy.Context, sched.Event) {}
func (continueStub) OnIterationFinish(policy.Context, sched.Event) sched.Decision {
	return sched.Continue
}

// TestDecisionPathAllocationFree pins the hot-path guarantee: an
// off-boundary continue decision — span, policy verdict, latency
// histogram, decision counter, event-log append, span recycle — runs
// without a single heap allocation. A regression here multiplies into
// GC pressure at tens of thousands of decisions per second.
func TestDecisionPathAllocationFree(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := expConfig(t, continueStub{}, 1, 1)
	cfg.Obs = reg
	w := newGateWriter()
	l := NewEventLogBuffer(w, 1<<15)
	cfg.EventLog = l
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.jm.Add("j1", param.Config{"x": 1}, 1, 100); err != nil {
		t.Fatal(err)
	}

	ev := Event{Kind: EvIterDone, Job: "j1", Epoch: 3}
	// Warm the span pool and wedge the flusher in its first Write, so
	// the background JSON encoding cannot pollute the measurement;
	// every logged record lands in the (preallocated) append buffer.
	e.handleIterDone(ev)
	<-w.started

	allocs := testing.AllocsPerRun(2000, func() { e.handleIterDone(ev) })
	if allocs != 0 {
		t.Fatalf("continue decision allocates %.1f objects per run, want 0", allocs)
	}

	close(w.release)
	l.Close()
}
