package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/checkpoint"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// drainStragglers empties a shared event channel between experiment
// runs: late statistics from stopped jobs are discarded, and any
// decision request is answered so no executor goroutine stays blocked.
func drainStragglers(events chan Event) {
	for {
		select {
		case ev := <-events:
			if ev.Kind == EvIterDone && ev.Reply != nil {
				select {
				case ev.Reply <- DecisionReply{Decision: sched.Terminate}:
				default:
				}
			}
		default:
			return
		}
	}
}

// TestCancelStormSharedPool pins the embeddability contract a
// multi-tenant server depends on: experiments sharing one executor and
// one slot pool, cancelled at varying points mid-run, must each give
// every reserved slot back (no busy leak), keep the pool invariant
// Idle+Busy+Offline == Total, and leave no goroutine behind. Before
// the drain path existed, a cancelled Run returned with its jobs still
// training and their reply channels unanswered — the slots were lost
// to every later tenant.
func TestCancelStormSharedPool(t *testing.T) {
	reg := workload.NewRegistry()
	clk := fastClock()
	events := make(chan Event, 1024)
	capturer, err := checkpoint.NewCapturer(checkpoint.Framework, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewWorkerPool(16, reg, clk, capturer, events)
	if err != nil {
		t.Fatal(err)
	}
	rm := NewResourceManager(pool.Slots())
	base := runtime.NumGoroutine()

	const storms = 6
	for i := 0; i < storms; i++ {
		cfg := expConfig(t, policy.NewDefault(), 0, 12)
		cfg.Executor = pool
		cfg.Events = events
		cfg.Slots = rm
		cfg.Clock = clk
		cfg.Seed = int64(i)
		// The budget timer goroutine sleeps out MaxDuration in wall
		// time even after the run ends; keep it inside the settle
		// window (24h sim = ~430ms wall at this clock's speedup).
		cfg.MaxDuration = 24 * time.Hour
		exp, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := exp.Run(ctx)
			done <- err
		}()
		// Vary the cancel point so some storms land while jobs are
		// starting, some mid-epoch, some during decision waits.
		time.Sleep(time.Duration(1+i*3) * time.Millisecond)
		cancel()
		if err := <-done; err != nil {
			t.Fatalf("storm %d: Run: %v", i, err)
		}
		if err := exp.Close(); err != nil {
			t.Fatalf("storm %d: Close: %v", i, err)
		}

		idle, busy, off := rm.Counts()
		if busy != 0 {
			t.Fatalf("storm %d leaked %d busy slots", i, busy)
		}
		if idle+busy+off != rm.Total() {
			t.Fatalf("storm %d broke the pool invariant: %d+%d+%d != %d",
				i, idle, busy, off, rm.Total())
		}
		drainStragglers(events)
	}

	pool.Close()
	// Worker goroutines unwind asynchronously after Close; give them a
	// bounded settle window before declaring a leak.
	var goroutines int
	for i := 0; i < 200; i++ {
		goroutines = runtime.NumGoroutine()
		if goroutines <= base {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if goroutines > base {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked after %d cancelled runs: %d > baseline %d\n%s",
			storms, goroutines, base, buf[:runtime.Stack(buf, true)])
	}
}

// TestCancelFlushesEventLog pins the finish/Close ordering bug: a
// cancelled experiment must flush (not drop) the records it already
// accepted, terminate the log with its "stop" line, and keep Dropped()
// in exact lockstep with the registry counter. Replaying the log
// afterwards must parse cleanly line by line.
func TestCancelFlushesEventLog(t *testing.T) {
	obsReg := obs.NewRegistry()
	var sink bytes.Buffer
	l := NewEventLog(&sink)
	cfg := expConfig(t, policy.NewDefault(), 4, 8)
	cfg.EventLog = l
	cfg.Obs = obsReg
	exp, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	resCh := make(chan *Result, 1)
	go func() {
		res, err := exp.Run(ctx)
		if err != nil {
			t.Errorf("Run: %v", err)
		}
		resCh <- res
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	res := <-resCh
	if res == nil {
		t.Fatal("no result")
	}
	l.Close() // flusher exited: the sink buffer is safe to read

	var kinds []string
	sc := bufio.NewScanner(&sink)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec LogRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("unparseable log line %q: %v", sc.Text(), err)
		}
		kinds = append(kinds, rec.Kind)
		if rec.Kind == "stop" && rec.Detail != res.StoppedBy {
			t.Fatalf("stop record detail = %q, want %q", rec.Detail, res.StoppedBy)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(kinds) == 0 {
		t.Fatal("cancelled run flushed no events")
	}
	if kinds[len(kinds)-1] != "stop" {
		t.Fatalf("last record kind = %q, want terminal \"stop\"", kinds[len(kinds)-1])
	}
	if got, want := obsReg.Snapshot().Counters[obs.EventLogDroppedTotal], l.Dropped(); got != want {
		t.Fatalf("dropped metric = %d, Dropped() = %d; must agree exactly", got, want)
	}
}
