// Package cluster implements the live HyperDrive runtime (paper §4-§5):
// the Job & Resource Manager, the Experiment Runner, the in-process
// worker pool, and the TCP node-agent pair (agent server + scheduler-
// side client) that together execute hyperparameter exploration
// experiments for real — with suspend/resume of training jobs across
// machines, application-statistic streaming, and pluggable Scheduling
// Algorithm Policies.
//
// Training runs against the synthetic workloads of internal/workload;
// a scaled clock (internal/clock) compresses hours of simulated
// training into seconds of wall time while every scheduling code path
// (sockets, snapshots, priorities, policy up-calls) remains real.
package cluster

import (
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/param"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// SlotID identifies one execution slot (a machine in the paper's
// terms): a local worker or one slot of a remote agent.
type SlotID string

// StartSpec tells an executor to begin (or resume) training.
type StartSpec struct {
	Job      sched.JobID
	Slot     SlotID
	Workload string
	Config   param.Config
	Seed     int64
	MaxEpoch int
	Snapshot []byte    // nil for a fresh start
	History  []float64 // metric curve so far (resumes; feeds agent-side prediction)
	// Trace carries the job's trace ID plus the scheduler-side span
	// that caused this placement, so executor-side work is recorded as
	// its child (zero when tracing is off).
	Trace obs.SpanContext
}

// EventKind discriminates executor events.
type EventKind int

// Executor event kinds.
const (
	EvStat EventKind = iota + 1
	EvIterDone
	EvSnapshot
	EvExited
	// EvAgentDown announces that a remote agent was declared dead
	// (missed heartbeats or connection loss). It always precedes the
	// per-job EvExited/ExitLost events of the same failure, so the
	// scheduler can quarantine the agent's slots before any job-loss
	// handling runs.
	EvAgentDown
	// EvAgentUp announces a successful reconnect + re-handshake: the
	// agent's slots are schedulable again.
	EvAgentUp
	// EvAgentError surfaces an agent-level MsgError (one that names no
	// job): the agent is alive but reported a fault the scheduler
	// should log rather than swallow.
	EvAgentError
	// EvWake is a contentless nudge: re-run AllocateJobs. An embedding
	// service injects it when shared-pool capacity may have appeared
	// (another tenant released slots, a suspend was lifted) — events
	// this experiment would otherwise never observe, since it only
	// hears about its own jobs.
	EvWake
)

// ExitReason says why a job left its slot.
type ExitReason string

// Exit reasons.
const (
	ExitCompleted  ExitReason = "completed"
	ExitTerminated ExitReason = "terminated"
	ExitSuspended  ExitReason = "suspended"
	ExitError      ExitReason = "error"
	// ExitLost marks a job that vanished with its agent rather than
	// failing on its own. Jobs lost with a known snapshot are re-queued
	// and resumed on a healthy slot (checkpoint-based re-placement);
	// jobs without one are terminated.
	ExitLost ExitReason = "lost"
)

// DecisionReply answers an IterDone event: the SAP verdict plus the
// scheduler-side decision span that produced it, so the executor can
// record its reaction (suspend, snapshot upload, teardown) as child
// spans of the decision that caused it.
type DecisionReply struct {
	Decision sched.Decision
	Trace    obs.SpanContext
	// Confidence, ERTSeconds, and Class carry the scheduler-side
	// prediction behind the verdict (zero off evaluation boundaries),
	// forwarded over the wire so agents can log why a job was
	// suspended or terminated.
	Confidence float64
	ERTSeconds float64
	Class      string
}

// Event is an executor-to-scheduler notification. IterDone events
// carry a Reply channel: the scheduler must send exactly one decision
// on it, which is how the paper's OnIterationFinish verdict reaches
// the training loop (§4.2).
type Event struct {
	Kind     EventKind
	Job      sched.JobID
	Slot     SlotID
	Epoch    int
	Metric   float64
	Duration time.Duration // epoch duration (simulated time)
	Pred     float64       // agent-side curve prediction (§5.2)
	HasPred  bool
	Snapshot []byte
	SnapSize int           // modeled snapshot size (bytes)
	SnapLat  time.Duration // modeled capture latency
	Reason   ExitReason
	Err      error
	Reply    chan DecisionReply
	// Trace is the sender-side span context of the work that raised
	// this event (zero when the executor runs untraced), letting the
	// scheduler parent its decision span under the executor's span.
	Trace obs.SpanContext
	// Agent and AgentSlots carry the fault-tolerance events
	// (EvAgentDown/EvAgentUp/EvAgentError): which agent changed state
	// and the full slot set to quarantine or restore.
	Agent      string
	AgentSlots []SlotID
}

// Executor runs training jobs on a set of slots and reports Events on
// the channel supplied at construction. Implementations: the
// in-process worker pool (WorkerPool) and the remote agent client
// (AgentClient).
type Executor interface {
	// Slots lists the execution slots this executor provides.
	Slots() []SlotID
	// Start launches (or resumes, when spec.Snapshot is set) a job on
	// a slot. It returns immediately; progress arrives as Events.
	Start(spec StartSpec) error
	// Close releases all resources and stops all jobs.
	Close() error
}
