package cluster

import (
	"sort"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/core"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// expMetrics holds the experiment's resolved metric handles so the hot
// path pays one atomic op per record instead of a registry lookup.
// Every handle is a nil-safe no-op when the experiment runs without a
// registry.
type expMetrics struct {
	reg    *obs.Registry
	tracer *obs.Tracer

	decisionLatency *obs.Histogram
	decContinue     *obs.Counter
	decSuspend      *obs.Counter
	decTerminate    *obs.Counter

	epochs   *obs.Counter
	epochDur *obs.Histogram

	starts       *obs.Counter
	resumes      *obs.Counter
	suspends     *obs.Counter
	terminations *obs.Counter
	completions  *obs.Counter

	slotsTotal    *obs.Gauge
	slotsBusy     *obs.Gauge
	slotsOffline  *obs.Gauge
	jobsActive    *obs.Gauge
	jobsSuspended *obs.Gauge
	best          *obs.Gauge

	agentFailures *obs.Counter
	replacements  *obs.Counter

	poolPromSlots *obs.Gauge
	poolOppSlots  *obs.Gauge
	poolPromJobs  *obs.Gauge
	poolOppJobs   *obs.Gauge
	threshold     *obs.Gauge

	slotRate map[SlotID]*obs.Gauge
}

// newExpMetrics resolves all handles against r (all nil when r is
// nil).
func newExpMetrics(r *obs.Registry) *expMetrics {
	return &expMetrics{
		reg:             r,
		tracer:          r.Tracer(),
		decisionLatency: r.Histogram(obs.DecisionLatencySeconds),
		decContinue:     r.Counter(obs.DecisionsTotal("continue")),
		decSuspend:      r.Counter(obs.DecisionsTotal("suspend")),
		decTerminate:    r.Counter(obs.DecisionsTotal("terminate")),
		epochs:          r.Counter(obs.EpochsTotal),
		epochDur:        r.Histogram(obs.EpochDurationSeconds, 1, 4, 16, 60, 240, 960, 3600),
		starts:          r.Counter(obs.StartsTotal),
		resumes:         r.Counter(obs.ResumesTotal),
		suspends:        r.Counter(obs.SuspendsTotal),
		terminations:    r.Counter(obs.TerminationsTotal),
		completions:     r.Counter(obs.CompletionsTotal),
		slotsTotal:      r.Gauge(obs.SlotsTotal),
		slotsBusy:       r.Gauge(obs.SlotsBusy),
		slotsOffline:    r.Gauge(obs.SlotsOffline),
		agentFailures:   r.Counter(obs.AgentFailuresTotal),
		replacements:    r.Counter(obs.JobReplacementsTotal),
		jobsActive:      r.Gauge(obs.JobsActive),
		jobsSuspended:   r.Gauge(obs.JobsSuspended),
		best:            r.Gauge(obs.BestMetric),
		poolPromSlots:   r.Gauge(obs.PoolPromisingSlots),
		poolOppSlots:    r.Gauge(obs.PoolOpportunisticSlots),
		poolPromJobs:    r.Gauge(obs.PoolPromisingJobs),
		poolOppJobs:     r.Gauge(obs.PoolOpportunisticJobs),
		threshold:       r.Gauge(obs.ClassificationThreshold),
	}
}

// primeSlotGauges pre-resolves the per-slot training-rate gauges for
// every slot in the pool, so the stat hot path never grows the map (a
// lazy insert there would allocate on the first epoch of every slot,
// mid-experiment). No-op without a registry.
func (m *expMetrics) primeSlotGauges(slots []SlotID) {
	if m.reg == nil {
		return
	}
	if m.slotRate == nil {
		m.slotRate = make(map[SlotID]*obs.Gauge, len(slots))
	}
	for _, s := range slots {
		if _, ok := m.slotRate[s]; !ok {
			m.slotRate[s] = m.reg.Gauge(obs.SlotEpochsPerSecond(string(s)))
		}
	}
}

// decisionCounter maps a verdict to its labeled counter.
func (m *expMetrics) decisionCounter(d sched.Decision) *obs.Counter {
	switch d {
	case sched.Suspend:
		return m.decSuspend
	case sched.Terminate:
		return m.decTerminate
	default:
		return m.decContinue
	}
}

// observeEpoch records one completed epoch: the aggregate duration
// histogram plus the per-slot training-rate gauge (epochs/second on
// the experiment clock).
func (m *expMetrics) observeEpoch(slot SlotID, d time.Duration) {
	m.epochs.Inc()
	m.epochDur.Observe(d.Seconds())
	if m.reg == nil || slot == "" {
		return
	}
	if m.slotRate == nil {
		m.slotRate = make(map[SlotID]*obs.Gauge)
	}
	g, ok := m.slotRate[slot]
	if !ok {
		g = m.reg.Gauge(obs.SlotEpochsPerSecond(string(slot)))
		m.slotRate[slot] = g
	}
	if s := d.Seconds(); s > 0 {
		g.Set(1 / s)
	}
}

// refreshGauges updates the slot/job occupancy gauges from the RM and
// JM.
func (e *Experiment) refreshGauges() {
	if e.met.reg == nil {
		return
	}
	e.met.slotsTotal.Set(float64(e.rm.Total()))
	e.met.slotsBusy.Set(float64(e.rm.BusyCount()))
	e.met.slotsOffline.Set(float64(e.rm.OfflineCount()))
	suspended := e.jm.SuspendedCount()
	e.met.jobsSuspended.Set(float64(suspended))
	e.met.jobsActive.Set(float64(len(e.jm.Active())))
}

// publishClassification snapshots POP's current slot division and the
// per-job classification table onto the registry, so the introspection
// endpoint can answer "what does the scheduler believe right now".
// Called after boundary decisions; no-op without a registry.
func (e *Experiment) publishClassification() {
	if e.met.reg == nil {
		return
	}
	var (
		ests      map[sched.JobID]core.Estimate
		promising map[string]bool
		hasPOP    bool
	)
	if pop := e.pop; pop != nil {
		hasPOP = true
		alloc := pop.Allocation(e)
		e.met.threshold.Set(alloc.Threshold)
		e.met.poolPromSlots.Set(float64(alloc.PromisingSlots))
		oppSlots := e.rm.Total() - alloc.PromisingSlots
		if oppSlots < 0 {
			oppSlots = 0
		}
		e.met.poolOppSlots.Set(float64(oppSlots))
		e.met.poolPromJobs.Set(float64(len(alloc.Promising)))
		e.met.poolOppJobs.Set(float64(len(alloc.Opportunistic)))
		ests = pop.Estimates()
		promising = make(map[string]bool, len(alloc.Promising))
		for _, est := range alloc.Promising {
			promising[est.JobID] = true
		}
	}

	jobs := e.jm.All()
	sort.Slice(jobs, func(i, j int) bool { return jobs[i].Idx < jobs[j].Idx })
	rows := make([]obs.JobRow, 0, len(jobs))
	for _, mj := range jobs {
		st := mj.Job.State()
		row := obs.JobRow{
			Job:      string(mj.Job.ID),
			State:    st.String(),
			Epoch:    mj.Job.Epoch(),
			Best:     mj.Best,
			Priority: mj.Job.Priority(),
		}
		if hasPOP {
			if est, ok := ests[mj.Job.ID]; ok {
				row.Confidence = est.Confidence
				row.ERTSeconds = est.ERT.Seconds()
			}
			switch {
			case promising[string(mj.Job.ID)]:
				row.Class = "promising"
			case st == sched.Terminated:
				row.Class = "poor"
			case st == sched.Running || st == sched.Suspended:
				row.Class = "opportunistic"
			}
			// One instant marker per classification change on the job's
			// trace track (not per refresh).
			if row.Class != "" && e.lastClass[mj.Job.ID] != row.Class {
				e.lastClass[mj.Job.ID] = row.Class
				e.cfg.TraceSink.Instant("scheduler", "job "+row.Job, "class: "+row.Class, e.clk.Now(),
					map[string]interface{}{"confidence": row.Confidence, "ert_seconds": row.ERTSeconds})
			}
		}
		rows = append(rows, row)
	}
	e.met.reg.PublishJobTable(rows)
	if e.qual != nil && hasPOP {
		var prom, opp, poor int
		for _, row := range rows {
			switch row.Class {
			case "promising":
				prom++
			case "opportunistic":
				opp++
			case "poor":
				poor++
			}
		}
		e.qual.RecordPool(e.clk.Now(), prom, opp, poor)
	}
}
