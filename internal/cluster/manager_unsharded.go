package cluster

import (
	"fmt"
	"sync"
)

// UnshardedResourceManager is the original single-lock slot pool: one
// mutex, a free slice popped from the front, and map-backed busy /
// offline sets, with ReserveIdleMachine O(1) but MarkOffline paying a
// linear scan of the free list per slot. It is kept as the reference
// implementation for the sharded pool's differential property tests
// and as the baseline arm of `hdbench -sched-bench`; the scheduler
// itself uses the sharded ResourceManager.
//
// Semantics match ResourceManager exactly, including the occupancy
// partition: a busy slot under quarantine counts as busy (not offline)
// until its binding is released, so IdleCount+BusyCount+OfflineCount
// equals Total().
type UnshardedResourceManager struct {
	mu      sync.Mutex
	free    []SlotID
	busy    map[SlotID]bool
	offline map[SlotID]bool
	total   int
}

// NewUnshardedResourceManager builds the single-lock pool, all idle.
func NewUnshardedResourceManager(slots []SlotID) *UnshardedResourceManager {
	rm := &UnshardedResourceManager{
		busy:    make(map[SlotID]bool, len(slots)),
		offline: make(map[SlotID]bool),
		total:   len(slots),
	}
	rm.free = append(rm.free, slots...)
	return rm
}

// ReserveIdleMachine claims an idle slot (FIFO).
func (rm *UnshardedResourceManager) ReserveIdleMachine() (SlotID, bool) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if len(rm.free) == 0 {
		return "", false
	}
	s := rm.free[0]
	rm.free = rm.free[1:]
	rm.busy[s] = true
	return s, true
}

// ReleaseMachine returns a slot to the idle pool. Releasing a
// quarantined slot is a no-op success: the job-loss path frees its
// binding, but the slot stays offline until MarkOnline.
func (rm *UnshardedResourceManager) ReleaseMachine(s SlotID) error {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if rm.offline[s] {
		delete(rm.busy, s)
		return nil
	}
	if !rm.busy[s] {
		return fmt.Errorf("cluster: release of non-busy slot %s", s)
	}
	delete(rm.busy, s)
	rm.free = append(rm.free, s)
	return nil
}

// MarkOffline quarantines slots; unknown slots are ignored.
func (rm *UnshardedResourceManager) MarkOffline(slots []SlotID) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	for _, s := range slots {
		if rm.offline[s] || !rm.known(s) {
			continue
		}
		rm.offline[s] = true
		for i, f := range rm.free {
			if f == s {
				rm.free = append(rm.free[:i], rm.free[i+1:]...)
				break
			}
		}
	}
}

// MarkOnline restores quarantined slots to the idle pool. Slots still
// carrying a busy binding (release hasn't happened yet) stay busy.
func (rm *UnshardedResourceManager) MarkOnline(slots []SlotID) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	for _, s := range slots {
		if !rm.offline[s] {
			continue
		}
		delete(rm.offline, s)
		if !rm.busy[s] {
			rm.free = append(rm.free, s)
		}
	}
}

// known reports whether a slot was part of the pool at construction.
// Callers hold rm.mu. Linear on purpose — this is the seed-shape
// baseline the sharded pool is benchmarked against.
func (rm *UnshardedResourceManager) known(s SlotID) bool {
	if rm.busy[s] || rm.offline[s] {
		return true
	}
	for _, f := range rm.free {
		if f == s {
			return true
		}
	}
	return false
}

// IdleCount reports idle slots.
func (rm *UnshardedResourceManager) IdleCount() int {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return len(rm.free)
}

// BusyCount reports slots with a live job binding, including
// quarantined-but-busy ones.
func (rm *UnshardedResourceManager) BusyCount() int {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return len(rm.busy)
}

// OfflineCount reports quarantined slots with no job binding, matching
// ResourceManager's partition semantics.
func (rm *UnshardedResourceManager) OfflineCount() int {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	n := 0
	for s := range rm.offline {
		if !rm.busy[s] {
			n++
		}
	}
	return n
}

// Total reports the pool size.
func (rm *UnshardedResourceManager) Total() int {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return rm.total
}

// Counts returns the occupancy partition in one lock acquisition.
func (rm *UnshardedResourceManager) Counts() (idle, busy, offline int) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	off := 0
	for s := range rm.offline {
		if !rm.busy[s] {
			off++
		}
	}
	return len(rm.free), len(rm.busy), off
}
