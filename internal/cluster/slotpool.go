package cluster

import "github.com/hyperdrive-ml/hyperdrive/internal/sched"

// SlotPool is the slot-accounting surface an Experiment schedules
// against. The single-experiment runners use a ResourceManager built
// over the executor's own slots; an embedding service (hyperdrived)
// instead injects a lease carved out of one shared pool, so many
// experiments can divide the same agent fleet without seeing each
// other's bookkeeping.
//
// Implementations must preserve the occupancy invariant the sharded
// manager pins: Idle+Busy+Offline == Total at every observable moment,
// with quarantined-while-busy slots counted busy until released.
type SlotPool interface {
	// ReserveIdleMachine takes one idle slot, marking it busy.
	ReserveIdleMachine() (SlotID, bool)
	// ReleaseMachine returns a busy slot to the pool (or to quarantine,
	// if it went offline while running).
	ReleaseMachine(SlotID) error
	// MarkOffline quarantines slots whose agent was declared dead.
	MarkOffline([]SlotID)
	// MarkOnline restores quarantined slots after a reconnect.
	MarkOnline([]SlotID)
	IdleCount() int
	BusyCount() int
	OfflineCount() int
	Total() int
}

var (
	_ SlotPool = (*ResourceManager)(nil)
	_ SlotPool = (*UnshardedResourceManager)(nil)
)

// JobStopper is an optional Executor capability: asynchronously stop
// one running job, identified by its slot binding. The experiment's
// shutdown drain uses it so a cancelled tenant's jobs stop burning
// shared slots instead of running to their next boundary unattended.
// The stop is a request, not a barrier — completion arrives as the
// job's ordinary EvExited event.
type JobStopper interface {
	StopJob(job sched.JobID, slot SlotID) error
}
