package cluster

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/chaos"
)

func TestReconnectBackoffSchedule(t *testing.T) {
	// Jitter 0 makes the schedule exact.
	bo := newReconnectBackoff(BackoffConfig{
		Base: 50 * time.Millisecond, Max: 400 * time.Millisecond, Factor: 2, Seed: 1,
	})
	want := []time.Duration{
		50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond,
		400 * time.Millisecond, 400 * time.Millisecond, // capped at Max
	}
	for i, w := range want {
		if got := bo.Next(); got != w {
			t.Fatalf("Next() #%d = %v, want %v", i+1, got, w)
		}
	}

	bo.Reset()
	if got := bo.Current(); got != 50*time.Millisecond {
		t.Fatalf("Current() after Reset = %v, want Base", got)
	}
	if got := bo.Next(); got != 50*time.Millisecond {
		t.Fatalf("Next() after Reset = %v, want Base", got)
	}

	// Jitter spreads each delay by at most ±frac without touching the
	// underlying escalation.
	jbo := newReconnectBackoff(BackoffConfig{
		Base: 100 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: 0.5, Seed: 7,
	})
	for i := 0; i < 4; i++ {
		cur := jbo.Current()
		d := jbo.Next()
		lo := time.Duration(float64(cur) * 0.5)
		hi := time.Duration(float64(cur) * 1.5)
		if d < lo || d > hi {
			t.Fatalf("jittered Next() #%d = %v, want within [%v, %v]", i+1, d, lo, hi)
		}
	}
}

// TestSupervisorBackoffResetsAfterRecovery is the regression test for
// escalated-backoff leakage: after a successful re-handshake the
// schedule must restart from Base, so the first retry of the *next*
// failure episode is prompt. The fail→recover→fail sequence uses a
// steep schedule (factor 8 up to a 2s cap): if episode 1's escalation
// leaked into episode 2, the gap between episode 2's two dial attempts
// would be the 2s cap instead of ~Base.
func TestSupervisorBackoffResetsAfterRecovery(t *testing.T) {
	addr := startAgent(t, AgentOptions{ID: "lazarus", Slots: 1})
	events := make(chan Event, 256)

	var mu sync.Mutex
	var live *chaos.Conn
	failNext := 0
	var dials []time.Time
	dial := func() (net.Conn, error) {
		mu.Lock()
		dials = append(dials, time.Now())
		fail := failNext > 0
		if fail {
			failNext--
		}
		mu.Unlock()
		if fail {
			return nil, errors.New("injected dial failure")
		}
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		defer mu.Unlock()
		live = chaos.Wrap(nc, chaos.Options{Seed: int64(len(dials))})
		return live, nil
	}

	sup, err := SuperviseAgent(events, SupervisorOptions{
		Dial:      dial,
		Heartbeat: HeartbeatConfig{Interval: 10 * time.Millisecond, Misses: 2},
		// Jitter defaults to 0 here, keeping the schedule exact.
		Backoff: BackoffConfig{Base: 5 * time.Millisecond, Max: 2 * time.Second, Factor: 8, Seed: 2},
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	waitKind := func(want EventKind) {
		deadline := time.After(10 * time.Second)
		for {
			select {
			case ev := <-events:
				if ev.Kind == want {
					return
				}
			case <-deadline:
				t.Fatalf("event %v never arrived", want)
			}
		}
	}
	kill := func(failures int) {
		mu.Lock()
		failNext = failures
		c := live
		mu.Unlock()
		c.Partition()
	}

	// Episode 1: three failed redials escalate the schedule
	// (5ms → 40ms → 320ms, next would be the 2s cap), then recovery.
	kill(3)
	waitKind(EvAgentDown)
	waitKind(EvAgentUp)

	mu.Lock()
	mark := len(dials)
	mu.Unlock()

	// Episode 2: one failed redial, then recovery.
	kill(1)
	waitKind(EvAgentDown)
	waitKind(EvAgentUp)

	mu.Lock()
	defer mu.Unlock()
	if len(dials) < mark+2 {
		t.Fatalf("episode 2 made %d dial attempt(s), want >= 2", len(dials)-mark)
	}
	gap := dials[mark+1].Sub(dials[mark])
	if gap > time.Second {
		t.Fatalf("episode-2 retry gap = %v: escalated backoff leaked across the successful re-handshake (want ~Base, 5ms)", gap)
	}
}
