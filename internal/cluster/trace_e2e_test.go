package cluster

import (
	"bytes"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/chaos"
	"github.com/hyperdrive-ml/hyperdrive/internal/clock"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// TestTraceEndToEndAcrossFailure is the distributed-tracing e2e: a
// scheduler drives two remote agents over chaos-wrapped connections;
// job-000 is suspended, resumed, then loses its agent to a partition
// and is re-placed from its checkpoint onto the survivor. Afterwards a
// single trace ID must link the scheduler's decision spans to the
// agent-side start/suspend/resume spans for that job — across both
// processes and the failure — and the merged Chrome trace export must
// validate. Run under -race like the other chaos tests.
func TestTraceEndToEndAcrossFailure(t *testing.T) {
	if testing.Short() {
		t.Skip("trace e2e skipped in -short mode")
	}
	epoch := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	agentClock := func() clock.Clock { return clock.NewScaled(epoch, 20000) }

	// One TraceWriter shared by scheduler and agents: the merged file
	// gets one process per participant.
	sink := obs.NewTraceWriter()
	regA := obs.NewRegistry()
	regB := obs.NewRegistry()
	addrA := startAgent(t, AgentOptions{ID: "traceA", Slots: 1, Clock: agentClock(), Obs: regA, TraceSink: sink})
	addrB := startAgent(t, AgentOptions{ID: "traceB", Slots: 1, Clock: agentClock(), Obs: regB, TraceSink: sink})

	events := make(chan Event, 256)
	reg := obs.NewRegistry()
	hb := HeartbeatConfig{Interval: 50 * time.Millisecond, Misses: 4}
	backoff := BackoffConfig{Base: 10 * time.Millisecond, Max: 50 * time.Millisecond, Seed: 5}

	// Agent A's dial is scripted exactly like the chaos e2e: the first
	// connection is a partitionable chaos wrapper; redials fail until
	// the test revives the agent.
	var mu sync.Mutex
	var connA *chaos.Conn
	revived := false
	dialA := func() (net.Conn, error) {
		mu.Lock()
		dead := connA != nil && !revived
		mu.Unlock()
		if dead {
			return nil, errors.New("traceA is dead (test script)")
		}
		nc, err := net.Dial("tcp", addrA)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		defer mu.Unlock()
		if connA == nil {
			connA = chaos.Wrap(nc, chaos.Options{Seed: 11})
			return connA, nil
		}
		return nc, nil
	}
	supA, err := SuperviseAgent(events, SupervisorOptions{
		Dial: dialA, Heartbeat: hb, Backoff: backoff, Obs: reg, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer supA.Close()
	supB, err := DialAgentSupervised(addrB, events, SupervisorOptions{
		Heartbeat: hb, Backoff: backoff, Obs: reg, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer supB.Close()
	multi, err := NewMultiExecutor(supA, supB)
	if err != nil {
		t.Fatal(err)
	}

	pol := &suspendOncePolicy{Default: policy.NewDefault(), target: "job-000", epoch: 4}
	cfg := expConfig(t, pol, 0, 2)
	cfg.Executor = multi
	cfg.Events = events
	cfg.Obs = reg
	cfg.TraceSink = sink
	cfg.Clock = clock.NewScaled(epoch, 20000)

	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type runResult struct {
		res *Result
		err error
	}
	resCh := make(chan runResult, 1)
	go func() {
		res, err := e.Run(context.Background())
		resCh <- runResult{res, err}
	}()

	waitFor := func(desc string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(60 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timeout waiting for %s", desc)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Suspend + resume first so the trace has an agent_suspend and an
	// agent_resume before the failure.
	waitFor("job-000 snapshot + resume", func() bool {
		return reg.Counter(obs.ResumesTotal).Value() >= 1
	})
	// Kill agent A mid-training, wait for checkpoint re-placement onto
	// the survivor, then revive A.
	mu.Lock()
	ca := connA
	mu.Unlock()
	ca.Partition()
	waitFor("checkpoint re-placement of the lost job", func() bool {
		return reg.Counter(obs.JobReplacementsTotal).Value() >= 1
	})
	mu.Lock()
	revived = true
	mu.Unlock()
	waitFor("agent reconnect", func() bool {
		return reg.Counter(obs.AgentReconnectsTotal("traceA")).Value() >= 1
	})
	r := <-resCh
	if r.err != nil {
		t.Fatal(r.err)
	}
	// The run itself survived the failure; the tracing must not have
	// perturbed scheduling.
	if r.res.Completions != 2 || r.res.Replacements < 1 {
		t.Fatalf("completions=%d replacements=%d, want 2 / >=1", r.res.Completions, r.res.Replacements)
	}
	for _, js := range r.res.Jobs {
		if js.FinalState != sched.Completed {
			t.Fatalf("job %s final state = %v, want Completed", js.ID, js.FinalState)
		}
	}

	mj, ok := e.jm.Get("job-000")
	if !ok {
		t.Fatal("job-000 not in the job table")
	}
	traceID := mj.TraceID
	if traceID == "" {
		t.Fatal("job-000 has no trace ID")
	}

	// The scheduler's retained spans: decision spans in job-000's trace.
	schedSpans := make(map[string]*obs.Span)
	decisions := 0
	for _, s := range reg.Tracer().Spans() {
		schedSpans[s.ID()] = s
		if s.TraceID() == traceID && s.Snapshot().Name == "decision" {
			decisions++
		}
	}
	if decisions == 0 {
		t.Fatalf("no scheduler decision span carries trace %s", traceID)
	}

	// The agent-side spans of the same trace, from both agents'
	// independent recorders.
	byName := make(map[string][]obs.View)
	for _, r := range []*obs.Registry{regA, regB} {
		for _, s := range r.Tracer().Spans() {
			v := s.Snapshot()
			if v.TraceID == traceID {
				byName[v.Name] = append(byName[v.Name], v)
			}
		}
	}
	for _, name := range []string{"agent_start", "agent_resume", "agent_suspend"} {
		if len(byName[name]) == 0 {
			t.Fatalf("no %s span in trace %s (got %v)", name, traceID, byName)
		}
	}
	// The partition forces a second placement: at least two resumes
	// (post-suspend + re-place) must be in the trace.
	if len(byName["agent_resume"]) < 2 {
		t.Fatalf("agent_resume spans = %d, want >= 2 (suspend/resume + re-placement)", len(byName["agent_resume"]))
	}

	// Cross-process causality: the agent's suspend work is a child of a
	// retained scheduler decision span, and every agent-side placement
	// span (start/resume) is too.
	for _, name := range []string{"agent_suspend", "agent_resume"} {
		for _, v := range byName[name] {
			parent, ok := schedSpans[v.ParentID]
			if !ok {
				t.Fatalf("%s span %s: parent %q is not a retained scheduler span", name, v.ID, v.ParentID)
			}
			if pv := parent.Snapshot(); pv.Name != "decision" || pv.Job != "job-000" {
				t.Fatalf("%s span %s: parent %s is %s/%s, want decision/job-000", name, v.ID, v.ParentID, pv.Name, pv.Job)
			}
		}
	}
	// agent_start is the trace root's first executor-side span: its
	// parent is empty (the first placement precedes any decision).
	if p := byName["agent_start"][0].ParentID; p != "" {
		if _, ok := schedSpans[p]; !ok {
			t.Fatalf("agent_start parent %q is neither empty nor a scheduler span", p)
		}
	}

	// Origin prefixes keep cross-process IDs disjoint.
	for name, views := range byName {
		for _, v := range views {
			if _, clash := schedSpans[v.ID]; clash {
				t.Fatalf("%s span ID %s collides with a scheduler span", name, v.ID)
			}
		}
	}

	// The scheduler's flight recorder kept job-000's story: after the
	// job completed, its pinned spans moved to the global ring.
	flight := reg.Flight().Snapshot()
	found := false
	for _, v := range flight.Recent {
		if v.TraceID == traceID {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("flight recorder retained no span of trace %s (dropped=%d)", traceID, flight.Dropped)
	}

	// The merged Chrome trace export validates and names all three
	// processes plus the re-placement marker.
	var buf bytes.Buffer
	if err := sink.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateTraceEvents(buf.Bytes()); err != nil {
		t.Fatalf("exported trace invalid: %v\n%s", err, buf.Bytes())
	}
	for _, want := range []string{`"scheduler"`, `"agent traceA"`, `"agent traceB"`, `"re-placed"`, "decision job-000"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Fatalf("exported trace missing %s", want)
		}
	}
}
