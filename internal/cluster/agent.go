package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/checkpoint"
	"github.com/hyperdrive-ml/hyperdrive/internal/clock"
	"github.com/hyperdrive-ml/hyperdrive/internal/curve"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
	"github.com/hyperdrive-ml/hyperdrive/internal/wire"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// AgentOptions configures a node agent.
type AgentOptions struct {
	// ID names the agent (defaults to the listener address).
	ID string
	// Slots is how many jobs the agent trains concurrently.
	Slots int
	// Registry resolves workloads; nil uses the built-ins.
	Registry *workload.Registry
	// Clock drives training time; nil uses a 600x scaled clock.
	Clock clock.Clock
	// CheckpointMode models snapshot capture; 0 = Framework.
	CheckpointMode checkpoint.Mode
	// Seed seeds the capture model.
	Seed int64
	// Predictor, when non-nil, enables distributed curve prediction
	// (paper §5.2): the agent fits the learning curve locally, in
	// parallel with training, and piggybacks the latest p-value on its
	// stat reports.
	Predictor *curve.Predictor
	// Obs, when non-nil, receives agent telemetry (jobs running, stats
	// forwarded, snapshots taken, local fit metrics) plus the agent-side
	// spans of distributed traces.
	Obs *obs.Registry
	// TraceSink, when non-nil, accumulates Chrome trace events for the
	// agent's job lifecycle (one track per job).
	TraceSink *obs.TraceWriter
	// Logf receives agent diagnostics; nil discards them.
	Logf func(format string, args ...interface{})
}

// Agent is the Node Agent daemon (paper §4.2, component ⑥): it
// executes training jobs on behalf of the scheduler, forwards
// application statistics, performs local curve prediction, and
// implements suspend/resume via checkpoint images.
type Agent struct {
	opts     AgentOptions
	registry *workload.Registry
	clk      clock.Clock
	capturer *checkpoint.Capturer

	// Telemetry handles; nil-safe no-ops without a registry.
	jobsRunning *obs.Gauge
	statsTotal  *obs.Counter
	snapsTotal  *obs.Counter

	mu      sync.Mutex
	jobs    map[sched.JobID]*agentJob
	ident   string // resolved agent ID (set per connection)
	closed  bool
	closeCh chan struct{}
	wg      sync.WaitGroup

	originOnce sync.Once // namespaces the tracer's IDs once
}

// agentJob is one running job on the agent.
type agentJob struct {
	spec     wire.StartJobPayload
	decision chan DecisionReply
	stop     chan struct{}
	history  []float64
	span     *obs.Span // run span: opened at start, finished at exit

	predMu  sync.Mutex
	pval    float64
	hasPval bool
	fitting bool
}

// NewAgent builds an agent.
func NewAgent(opts AgentOptions) (*Agent, error) {
	if opts.Slots < 1 {
		return nil, fmt.Errorf("cluster: agent needs >= 1 slot, got %d", opts.Slots)
	}
	if opts.Registry == nil {
		opts.Registry = workload.NewRegistry()
	}
	if opts.Clock == nil {
		opts.Clock = clock.NewScaled(clockEpoch, 600)
	}
	mode := opts.CheckpointMode
	if mode == 0 {
		mode = checkpoint.Framework
	}
	capturer, err := checkpoint.NewCapturer(mode, opts.Seed+7)
	if err != nil {
		return nil, err
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...interface{}) {}
	}
	if opts.Predictor != nil {
		opts.Predictor.Instrument(opts.Obs)
	}
	return &Agent{
		opts:        opts,
		registry:    opts.Registry,
		clk:         opts.Clock,
		capturer:    capturer,
		jobsRunning: opts.Obs.Gauge(obs.AgentJobsRunning),
		statsTotal:  opts.Obs.Counter(obs.AgentStatsTotal),
		snapsTotal:  opts.Obs.Counter(obs.AgentSnapshotsTotal),
		jobs:        make(map[sched.JobID]*agentJob),
		closeCh:     make(chan struct{}),
	}, nil
}

// Serve accepts scheduler connections on l, one at a time, until Close
// (or a permanent accept error).
func (a *Agent) Serve(l net.Listener) error {
	for {
		nc, err := l.Accept()
		if err != nil {
			select {
			case <-a.closeCh:
				return nil
			default:
			}
			return fmt.Errorf("cluster: agent accept: %w", err)
		}
		a.serveConn(nc)
	}
}

// Close shuts the agent down, stopping all jobs.
func (a *Agent) Close() error {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	close(a.closeCh)
	for _, j := range a.jobs {
		close(j.stop)
	}
	a.mu.Unlock()
	a.wg.Wait()
	return nil
}

// statBatchMax bounds how many stat reports accumulate before a flush
// is forced, independent of decision boundaries — a cap on both frame
// size and staleness when many jobs share one connection.
const statBatchMax = 64

// statBatcher coalesces the AppStat reports of one scheduler
// connection into MsgAppStatBatch frames. Jobs add stats as they
// finish epochs; any job about to send an ordered control frame
// (IterDone, Snapshot, JobExited) flushes first, so the scheduler
// always sees a job's statistic before the boundary it raised — the
// same per-job ordering as unbatched MsgAppStat, with one frame where
// concurrent jobs used to cost one each.
type statBatcher struct {
	conn *wire.Conn
	mu   sync.Mutex
	buf  []wire.AppStatPayload
}

func newStatBatcher(conn *wire.Conn) *statBatcher { return &statBatcher{conn: conn} }

// add buffers one stat report, flushing when the batch cap is hit.
func (b *statBatcher) add(p wire.AppStatPayload) error {
	b.mu.Lock()
	b.buf = append(b.buf, p)
	n := len(b.buf)
	b.mu.Unlock()
	if n >= statBatchMax {
		return b.flush()
	}
	return nil
}

// flush sends everything buffered: one plain MsgAppStat when a single
// report is pending (wire-compatible with pre-batch schedulers), one
// MsgAppStatBatch otherwise. The send deliberately happens under
// b.mu: a flush that returns with an empty buffer must mean every
// prior stat is already on the wire, or a concurrent job could emit
// its IterDone ahead of a batch still carrying its statistic.
func (b *statBatcher) flush() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch len(b.buf) {
	case 0:
		return nil
	case 1:
		p := b.buf[0]
		b.buf = b.buf[:0]
		return b.conn.SendTyped(wire.MsgAppStat, p)
	default:
		err := b.conn.SendTyped(wire.MsgAppStatBatch, wire.AppStatBatchPayload{Stats: b.buf})
		b.buf = b.buf[:0]
		return err
	}
}

// serveConn handles one scheduler session.
func (a *Agent) serveConn(nc net.Conn) {
	conn := wire.NewConn(nc)
	defer conn.Close()

	id := a.opts.ID
	if id == "" {
		id = nc.LocalAddr().String()
	}
	a.mu.Lock()
	a.ident = id
	a.mu.Unlock()
	// Namespace span/trace IDs by agent identity so IDs minted here can
	// never collide with the scheduler's (or another agent's) when the
	// spans meet in one trace.
	a.originOnce.Do(func() { a.opts.Obs.Tracer().SetOrigin("agent:" + id) })
	if err := conn.SendTyped(wire.MsgHello, wire.HelloPayload{AgentID: id, Slots: a.opts.Slots}); err != nil {
		a.opts.Logf("agent: hello: %v", err)
		return
	}
	sb := newStatBatcher(conn)

	for {
		msg, err := conn.Recv()
		if err != nil {
			// A frame from a newer protocol revision is well-framed —
			// the stream is intact, so skip it rather than kill every
			// job on this connection.
			var ute *wire.UnknownTypeError
			if errors.As(err, &ute) {
				a.opts.Logf("agent: recv: %v (frame skipped)", err)
				continue
			}
			a.opts.Logf("agent: recv: %v", err)
			a.stopAllJobs()
			return
		}
		switch msg.Type {
		case wire.MsgPing:
			// Echo the ping's sequence number so the scheduler can match
			// the pong to its pending probe and measure the RTT.
			if err := conn.Send(wire.Message{Type: wire.MsgPong, Seq: msg.Seq}); err != nil {
				return
			}
		case wire.MsgStartJob, wire.MsgResumeJob:
			var p wire.StartJobPayload
			if err := msg.Decode(&p); err != nil {
				a.sendError(conn, "", err)
				continue
			}
			if err := a.startJob(conn, sb, p); err != nil {
				a.sendError(conn, p.JobID, err)
			}
		case wire.MsgDecision:
			var p wire.DecisionPayload
			if err := msg.Decode(&p); err != nil {
				a.sendError(conn, "", err)
				continue
			}
			a.deliverDecision(p)
		case wire.MsgTerminateJob:
			var p wire.JobControlPayload
			if err := msg.Decode(&p); err != nil {
				a.sendError(conn, "", err)
				continue
			}
			a.terminateJob(sched.JobID(p.JobID))
		default:
			a.opts.Logf("agent: unexpected message %s", msg.Type)
		}
	}
}

func (a *Agent) sendError(conn *wire.Conn, jobID string, err error) {
	a.opts.Logf("agent: job %s: %v", jobID, err)
	_ = conn.SendTyped(wire.MsgError, wire.ErrorPayload{JobID: jobID, Message: err.Error()})
}

// startJob validates and launches a training loop.
func (a *Agent) startJob(conn *wire.Conn, sb *statBatcher, p wire.StartJobPayload) error {
	spec, err := a.registry.Lookup(p.Workload)
	if err != nil {
		return err
	}
	trainer := spec.New(p.Config, p.Seed)
	if len(p.Snapshot) > 0 {
		payload, err := checkpoint.Decode(p.Snapshot)
		if err != nil {
			return fmt.Errorf("resume %s: %w", p.JobID, err)
		}
		if err := trainer.Restore(payload); err != nil {
			return fmt.Errorf("resume %s: %w", p.JobID, err)
		}
	}

	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return errors.New("agent closed")
	}
	if len(a.jobs) >= a.opts.Slots {
		return fmt.Errorf("no free slot (have %d)", a.opts.Slots)
	}
	if _, dup := a.jobs[sched.JobID(p.JobID)]; dup {
		return fmt.Errorf("job %s already running", p.JobID)
	}
	j := &agentJob{
		spec:     p,
		decision: make(chan DecisionReply, 1),
		stop:     make(chan struct{}),
		history:  append([]float64(nil), p.History...),
	}
	// Open the run span as a child of the scheduler-side span that
	// caused this placement; it stays open until the job leaves the
	// slot and its context is echoed on every frame the job emits.
	name := "agent_start"
	if len(p.Snapshot) > 0 {
		name = "agent_resume"
	}
	j.span = a.opts.Obs.Tracer().StartSpan(name, p.JobID, trainer.Epoch(),
		obs.SpanContext{TraceID: p.TraceID, SpanID: p.SpanID})
	j.span.SetStr("agent", a.ident)
	a.opts.Obs.Flight().JobLive(p.JobID)
	// The propagated context goes into the slice args too, so an
	// agent-side trace file can be stitched to the scheduler's by
	// trace ID / parent span.
	a.opts.TraceSink.Begin("agent "+a.ident, "job "+p.JobID, name, a.clk.Now(),
		map[string]interface{}{"epoch": trainer.Epoch(), "resume": len(p.Snapshot) > 0,
			"trace": p.TraceID, "parent_span": p.SpanID})
	a.jobs[sched.JobID(p.JobID)] = j
	a.jobsRunning.Set(float64(len(a.jobs)))
	a.wg.Add(1)
	go a.runJob(conn, sb, j, trainer, spec)
	return nil
}

func (a *Agent) deliverDecision(p wire.DecisionPayload) {
	a.mu.Lock()
	j, ok := a.jobs[sched.JobID(p.JobID)]
	a.mu.Unlock()
	if !ok {
		return
	}
	var d sched.Decision
	switch p.Decision {
	case "suspend":
		d = sched.Suspend
	case "terminate":
		d = sched.Terminate
	default:
		d = sched.Continue
	}
	dr := DecisionReply{
		Decision:   d,
		Trace:      obs.SpanContext{TraceID: p.TraceID, SpanID: p.SpanID},
		Confidence: p.Confidence,
		ERTSeconds: p.ERTSeconds,
		Class:      p.Class,
	}
	select {
	case j.decision <- dr:
	default: // stale decision; drop
	}
}

func (a *Agent) terminateJob(id sched.JobID) {
	a.mu.Lock()
	j, ok := a.jobs[id]
	a.mu.Unlock()
	if ok {
		close(j.stop)
	}
}

func (a *Agent) stopAllJobs() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, j := range a.jobs {
		select {
		case <-j.stop:
		default:
			close(j.stop)
		}
	}
}

// identity returns the agent ID resolved at handshake time.
func (a *Agent) identity() string {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ident
}

func (a *Agent) release(id sched.JobID) {
	a.mu.Lock()
	delete(a.jobs, id)
	a.jobsRunning.Set(float64(len(a.jobs)))
	a.mu.Unlock()
}

// runJob is the agent-side training loop: train an epoch, report the
// stat (with the freshest local prediction piggybacked), raise the
// iteration boundary, and act on the scheduler's decision.
func (a *Agent) runJob(conn *wire.Conn, sb *statBatcher, j *agentJob, trainer workload.Trainer, spec workload.Spec) {
	defer a.wg.Done()
	defer a.release(sched.JobID(j.spec.JobID))
	// send carries the ordered control frames (IterDone, Snapshot,
	// JobExited); flushing the stat batcher first preserves the per-job
	// stat-before-boundary ordering the scheduler's DB relies on.
	send := func(t wire.MsgType, payload interface{}) bool {
		if err := sb.flush(); err != nil {
			a.opts.Logf("agent: flush stats before %s: %v", t, err)
			return false
		}
		if err := conn.SendTyped(t, payload); err != nil {
			a.opts.Logf("agent: send %s: %v", t, err)
			return false
		}
		return true
	}
	// runCtx is echoed on every frame this job emits, so the scheduler
	// can parent its decision spans under the agent's run span.
	runCtx := j.span.Context()
	wctx := wire.TraceContext{TraceID: runCtx.TraceID, SpanID: runCtx.SpanID}
	tracer := a.opts.Obs.Tracer()
	ident := a.identity()
	// exit closes out the job's tracing state exactly once: the run
	// span finishes, its spans unpin from the flight recorder, and the
	// job's trace-event slice closes.
	exit := func(reason string) {
		j.span.SetStr("exit", reason)
		tracer.Finish(j.span)
		a.opts.Obs.Flight().JobDone(j.spec.JobID)
		a.opts.TraceSink.Instant("agent "+ident, "job "+j.spec.JobID, reason, a.clk.Now(), nil)
		a.opts.TraceSink.End("agent "+ident, "job "+j.spec.JobID, a.clk.Now())
	}

	for {
		select {
		case <-j.stop:
			exit("terminated")
			send(wire.MsgJobExited, wire.JobExitedPayload{JobID: j.spec.JobID, Epoch: trainer.Epoch(), Reason: "terminated", TraceContext: wctx})
			return
		default:
		}

		s, done := trainer.Step()
		a.clk.Sleep(s.Duration)
		j.history = append(j.history, s.Metric)

		stat := wire.AppStatPayload{
			JobID:    j.spec.JobID,
			Epoch:    s.Epoch,
			Metric:   s.Metric,
			Dur0nsec: int64(s.Duration),
		}
		j.predMu.Lock()
		if j.hasPval {
			stat.Predict, stat.HasPred = j.pval, true
		}
		j.predMu.Unlock()
		if err := sb.add(stat); err != nil {
			a.opts.Logf("agent: send %s: %v", wire.MsgAppStat, err)
			return
		}
		a.statsTotal.Inc()
		if done {
			exit("completed")
			send(wire.MsgJobExited, wire.JobExitedPayload{JobID: j.spec.JobID, Epoch: s.Epoch, Reason: "completed", TraceContext: wctx})
			return
		}

		// Distributed curve prediction (§5.2): kick off a fit in
		// parallel with training at every evaluation boundary.
		if a.opts.Predictor != nil && s.Epoch%spec.EvalBoundary() == 0 {
			a.maybePredict(j, spec)
		}

		if !send(wire.MsgIterDone, wire.IterDonePayload{JobID: j.spec.JobID, Epoch: s.Epoch, TraceContext: wctx}) {
			return
		}
		var dr DecisionReply
		select {
		case dr = <-j.decision:
		case <-j.stop:
			exit("terminated")
			send(wire.MsgJobExited, wire.JobExitedPayload{JobID: j.spec.JobID, Epoch: s.Epoch, Reason: "terminated", TraceContext: wctx})
			return
		}
		// React as a child of the scheduler's decision span when it sent
		// one; fall back to the run span for untraced schedulers.
		parent := dr.Trace
		if !parent.Valid() {
			parent = runCtx
		}

		switch dr.Decision {
		case sched.Terminate:
			exit("terminated")
			send(wire.MsgJobExited, wire.JobExitedPayload{JobID: j.spec.JobID, Epoch: s.Epoch, Reason: "terminated", TraceContext: wctx})
			return
		case sched.Suspend:
			ssp := tracer.StartSpan("agent_suspend", j.spec.JobID, s.Epoch, parent)
			ssp.SetStr("agent", ident)
			payload, err := trainer.Snapshot()
			if err != nil {
				ssp.SetStr("error", err.Error())
				tracer.Finish(ssp)
				exit("error")
				send(wire.MsgJobExited, wire.JobExitedPayload{JobID: j.spec.JobID, Epoch: s.Epoch, Reason: "error", Error: err.Error(), TraceContext: wctx})
				return
			}
			img := a.capturer.Capture(payload)
			a.clk.Sleep(img.Latency)
			ssp.SetAttr("snapshot_bytes", float64(img.Size))
			sctx := ssp.Context()
			tracer.Finish(ssp)
			if !send(wire.MsgSnapshot, wire.SnapshotPayload{
				JobID: j.spec.JobID, Epoch: trainer.Epoch(), State: img.Encode(),
				TraceContext: wire.TraceContext{TraceID: sctx.TraceID, SpanID: sctx.SpanID},
			}) {
				return
			}
			a.snapsTotal.Inc()
			exit("suspended")
			send(wire.MsgJobExited, wire.JobExitedPayload{JobID: j.spec.JobID, Epoch: trainer.Epoch(), Reason: "suspended", TraceContext: wctx})
			return
		default: // Continue
		}
	}
}

// maybePredict starts an asynchronous curve fit unless one is already
// running, storing the resulting confidence for the next stat report
// (overlapping training and prediction, §5.2).
func (a *Agent) maybePredict(j *agentJob, spec workload.Spec) {
	j.predMu.Lock()
	if j.fitting || len(j.history) < curve.MinObservations {
		j.predMu.Unlock()
		return
	}
	j.fitting = true
	hist := append([]float64(nil), j.history...)
	j.predMu.Unlock()

	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		lo, hi := spec.MetricRange()
		norm := make([]float64, len(hist))
		for i, v := range hist {
			norm[i] = (v - lo) / (hi - lo)
		}
		target := (spec.Target() - lo) / (hi - lo)
		post, err := a.opts.Predictor.Fit(norm, spec.MaxEpoch(), int64(len(hist)))
		j.predMu.Lock()
		defer j.predMu.Unlock()
		j.fitting = false
		if err != nil {
			return
		}
		j.pval = post.ProbAtLeast(spec.MaxEpoch(), target)
		j.hasPval = true
	}()
}

// clockEpoch is the base time for default scaled clocks.
var clockEpoch = time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
