package cluster

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// BackoffConfig shapes the supervisor's reconnect schedule:
// exponential growth from Base to Max with multiplicative Jitter, so a
// fleet of supervisors losing the same agent does not redial in
// lockstep. The jitter RNG is seeded (Seed) so a replayed failure
// schedule is reproducible.
type BackoffConfig struct {
	// Base is the first retry delay (default 500ms).
	Base time.Duration
	// Max caps the delay (default 15s).
	Max time.Duration
	// Factor multiplies the delay each failure (default 2).
	Factor float64
	// Jitter is the ± fraction applied to each delay (default 0.2).
	Jitter float64
	// Seed seeds the jitter RNG (default 1).
	Seed int64
}

func (b BackoffConfig) withDefaults() BackoffConfig {
	if b.Base <= 0 {
		b.Base = 500 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 15 * time.Second
	}
	if b.Factor < 1 {
		b.Factor = 2
	}
	if b.Jitter < 0 || b.Jitter > 1 {
		b.Jitter = 0.2
	}
	if b.Seed == 0 {
		b.Seed = 1
	}
	return b
}

// SupervisorOptions configures an AgentSupervisor.
type SupervisorOptions struct {
	// Dial opens a fresh transport to the agent; required. It is
	// invoked for the initial connection and for every reconnect
	// attempt, so tests can interpose fault-injecting wrappers.
	Dial func() (net.Conn, error)
	// Heartbeat tunes the liveness probe; zero fields take the
	// defaults (a zero Interval becomes DefaultHeartbeatInterval — the
	// supervisor always runs the heartbeat).
	Heartbeat HeartbeatConfig
	// Backoff shapes the reconnect schedule.
	Backoff BackoffConfig
	// Obs, when non-nil, receives agent_up, reconnect, and
	// heartbeat-RTT telemetry.
	Obs *obs.Registry
	// Logf receives supervisor diagnostics; nil discards them.
	Logf func(format string, args ...interface{})
}

// AgentSupervisor is the fault-tolerant Executor over one remote
// agent: it owns the connection lifecycle — heartbeat monitoring,
// dead-agent declaration, exponential-backoff reconnect with
// re-handshake — while exposing a stable slot set to the scheduler.
//
// On failure it emits EvAgentDown (before the per-job ExitLost events,
// so the experiment quarantines the slots first), then keeps redialing
// until Close; each successful re-handshake emits EvAgentUp and the
// slots become schedulable again.
type AgentSupervisor struct {
	opts    SupervisorOptions
	events  chan<- Event
	agentID string
	slots   []SlotID

	up         *obs.Gauge
	reconnects *obs.Counter

	mu     sync.Mutex
	client *AgentClient // nil while down/reconnecting
	closed bool

	stop  chan struct{}
	done  chan struct{} // monitor loop exited
	ready chan struct{} // closed once identity fields are initialized
}

// DialAgentSupervised dials addr and wraps the connection in a
// supervisor. The initial dial must succeed (it establishes the
// agent's identity and slot count); later failures reconnect
// automatically.
func DialAgentSupervised(addr string, events chan<- Event, opts SupervisorOptions) (*AgentSupervisor, error) {
	if opts.Dial == nil {
		opts.Dial = func() (net.Conn, error) {
			return net.DialTimeout("tcp", addr, 10*time.Second)
		}
	}
	return SuperviseAgent(events, opts)
}

// SuperviseAgent performs the initial dial + handshake and starts the
// reconnect monitor.
func SuperviseAgent(events chan<- Event, opts SupervisorOptions) (*AgentSupervisor, error) {
	if opts.Dial == nil {
		return nil, fmt.Errorf("cluster: supervisor needs a Dial function")
	}
	if opts.Heartbeat.Interval <= 0 {
		opts.Heartbeat.Interval = DefaultHeartbeatInterval
	}
	opts.Heartbeat = opts.Heartbeat.withDefaults()
	opts.Backoff = opts.Backoff.withDefaults()
	if opts.Logf == nil {
		opts.Logf = func(string, ...interface{}) {}
	}
	s := &AgentSupervisor{
		opts:   opts,
		events: events,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		ready:  make(chan struct{}),
	}
	client, err := s.connect("")
	if err != nil {
		return nil, err
	}
	s.agentID = client.AgentID()
	s.slots = client.Slots()
	s.client = client
	s.up = opts.Obs.Gauge(obs.AgentUp(s.agentID))
	s.reconnects = opts.Obs.Counter(obs.AgentReconnectsTotal(s.agentID))
	s.up.Set(1)
	close(s.ready)
	go s.monitor()
	return s, nil
}

// connect dials and handshakes once. A non-empty wantID enforces that
// the agent at the other end is still the same one (same identity,
// same slot count) — a different agent answering the address must not
// silently inherit the old one's slots.
func (s *AgentSupervisor) connect(wantID string) (*AgentClient, error) {
	nc, err := s.opts.Dial()
	if err != nil {
		return nil, err
	}
	client, err := NewAgentClientOpts(nc, s.events, AgentClientOptions{
		Heartbeat: s.opts.Heartbeat,
		Obs:       s.opts.Obs,
		OnDown:    s.agentDown,
	})
	if err != nil {
		return nil, err
	}
	if wantID != "" && (client.AgentID() != wantID || len(client.Slots()) != len(s.slots)) {
		id, n := client.AgentID(), len(client.Slots())
		client.Close()
		return nil, fmt.Errorf("cluster: agent identity changed across reconnect: got %s/%d slots, want %s/%d",
			id, n, wantID, len(s.slots))
	}
	return client, nil
}

// agentDown runs inside the dying client's read loop, before the
// per-job ExitLost events: mark the agent down and tell the scheduler
// to quarantine its slots.
func (s *AgentSupervisor) agentDown(cause error) {
	// The very first connection can die while SuperviseAgent is still
	// filling in identity fields; wait until they are set.
	<-s.ready
	s.up.Set(0)
	s.opts.Logf("cluster: agent %s down: %v", s.agentID, cause)
	s.emit(Event{
		Kind: EvAgentDown, Agent: s.agentID,
		AgentSlots: append([]SlotID(nil), s.slots...),
		Err:        cause,
	})
}

// emit delivers one supervisor event unless the supervisor is closing.
func (s *AgentSupervisor) emit(ev Event) {
	select {
	case s.events <- ev:
	case <-s.stop:
	}
}

// reconnectBackoff is the supervisor's retry schedule as an explicit
// state machine: Next() yields the jittered delay before the upcoming
// attempt and escalates, Reset() returns the schedule to Base. Its
// state deliberately outlives a single failure episode — the monitor
// loop owns one instance for its whole life — so "the escalated
// interval must not leak into the next episode" is an invariant the
// success path has to enforce by calling Reset() after every
// re-handshake, not an accident of variable scoping.
type reconnectBackoff struct {
	cfg BackoffConfig
	rng *rand.Rand
	cur time.Duration
}

func newReconnectBackoff(cfg BackoffConfig) *reconnectBackoff {
	return &reconnectBackoff{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		cur: cfg.Base,
	}
}

// Next returns the delay to sleep before the next attempt and
// escalates the schedule (Factor-multiplied, capped at Max).
func (b *reconnectBackoff) Next() time.Duration {
	d := jittered(b.rng, b.cur, b.cfg.Jitter)
	b.cur = time.Duration(float64(b.cur) * b.cfg.Factor)
	if b.cur > b.cfg.Max {
		b.cur = b.cfg.Max
	}
	return d
}

// Reset returns the schedule to the base interval. Call after a
// successful re-handshake: the next failure episode starts fresh.
func (b *reconnectBackoff) Reset() { b.cur = b.cfg.Base }

// Current exposes the unjittered next delay (tests).
func (b *reconnectBackoff) Current() time.Duration { return b.cur }

// monitor waits for the current client to die, then redials with
// exponential backoff + jitter until a re-handshake succeeds or the
// supervisor is closed.
func (s *AgentSupervisor) monitor() {
	defer close(s.done)
	bo := newReconnectBackoff(s.opts.Backoff)
	for {
		s.mu.Lock()
		client := s.client
		s.mu.Unlock()
		select {
		case <-client.Done():
		case <-s.stop:
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			return
		}
		s.client = nil
		s.mu.Unlock()

		for attempt := 1; ; attempt++ {
			next, err := s.connect(s.agentID)
			if err == nil {
				s.mu.Lock()
				if s.closed {
					s.mu.Unlock()
					next.Close()
					return
				}
				s.client = next
				s.mu.Unlock()
				s.reconnects.Inc()
				s.up.Set(1)
				// Successful re-handshake: the escalated schedule must
				// not carry into the next failure episode.
				bo.Reset()
				s.opts.Logf("cluster: agent %s reconnected after %d attempt(s)", s.agentID, attempt)
				s.emit(Event{
					Kind: EvAgentUp, Agent: s.agentID,
					AgentSlots: append([]SlotID(nil), s.slots...),
				})
				break
			}
			s.opts.Logf("cluster: agent %s reconnect attempt %d: %v (retrying in ~%v)",
				s.agentID, attempt, err, bo.Current())
			select {
			case <-s.stop:
				return
			case <-time.After(bo.Next()):
			}
		}
	}
}

// jittered spreads d by ±frac using the seeded rng.
func jittered(rng *rand.Rand, d time.Duration, frac float64) time.Duration {
	if frac <= 0 {
		return d
	}
	spread := 1 + frac*(2*rng.Float64()-1)
	return time.Duration(float64(d) * spread)
}

// AgentID returns the supervised agent's name.
func (s *AgentSupervisor) AgentID() string { return s.agentID }

// Up reports whether the agent currently holds a healthy connection.
func (s *AgentSupervisor) Up() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.client != nil
}

// Slots implements Executor: the slot set is stable across reconnects.
func (s *AgentSupervisor) Slots() []SlotID { return append([]SlotID(nil), s.slots...) }

// Start implements Executor. While the agent is down it fails fast —
// the scheduler should never see a quarantined slot, so reaching this
// is a scheduling bug surfaced loudly rather than a hung job.
func (s *AgentSupervisor) Start(spec StartSpec) error {
	s.mu.Lock()
	client := s.client
	s.mu.Unlock()
	if client == nil {
		return fmt.Errorf("cluster: agent %s is down (reconnecting); slot %s is quarantined", s.agentID, spec.Slot)
	}
	return client.Start(spec)
}

// StopJob implements JobStopper. While the agent is down the job is
// already gone (its loss was, or will be, surfaced as ExitLost), so
// there is nothing to stop.
func (s *AgentSupervisor) StopJob(job sched.JobID, slot SlotID) error {
	s.mu.Lock()
	client := s.client
	s.mu.Unlock()
	if client == nil {
		return fmt.Errorf("cluster: agent %s is down; job %s already lost", s.agentID, job)
	}
	return client.StopJob(job, slot)
}

// Close implements Executor: stops reconnecting and closes the live
// connection (if any).
func (s *AgentSupervisor) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	client := s.client
	s.mu.Unlock()
	close(s.stop)
	var err error
	if client != nil {
		err = client.Close()
	}
	<-s.done
	return err
}

var (
	_ Executor   = (*AgentSupervisor)(nil)
	_ JobStopper = (*AgentSupervisor)(nil)
)
