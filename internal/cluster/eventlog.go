package cluster

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// LogRecord is one line of the experiment event log: everything the
// scheduler observes or decides, timestamped on the experiment clock.
// The log is the runtime's observability surface — what you grep when
// a policy behaves unexpectedly — and is also the raw material for
// offline analysis of scheduling behaviour.
type LogRecord struct {
	T        time.Time `json:"t"`
	Kind     string    `json:"kind"` // start|resume|stat|decision|suspend|terminate|complete|error|snapshot|stop
	Job      string    `json:"job,omitempty"`
	Slot     string    `json:"slot,omitempty"`
	Epoch    int       `json:"epoch,omitempty"`
	Metric   float64   `json:"metric,omitempty"`
	Decision string    `json:"decision,omitempty"`
	Detail   string    `json:"detail,omitempty"`
	// Agent names the node agent behind agent_down/agent_up/agent_error
	// records.
	Agent string `json:"agent,omitempty"`
	// Span links a decision record to its trace: resolve it at the
	// introspection endpoint (/spans?id=...) to see the estimate
	// inputs (ERT, confidence, pool sizes) behind the verdict.
	Span string `json:"span,omitempty"`
	// Confidence, ERTSeconds, and Class carry the prediction behind a
	// decision record directly on the log line (zero/empty off
	// evaluation boundaries), so offline analysis of prediction quality
	// does not depend on the span ring still holding the decision.
	Confidence float64 `json:"confidence,omitempty"`
	ERTSeconds float64 `json:"ertSeconds,omitempty"`
	Class      string  `json:"class,omitempty"`
}

// EventLog serializes LogRecords as JSON lines. Safe for concurrent
// use. Write errors disable further logging rather than failing the
// experiment, but the failure is not silent: every record lost after
// (and including) the failing write is counted, visible via Dropped()
// and, when instrumented, the hyperdrive_eventlog_dropped_total
// counter.
type EventLog struct {
	mu      sync.Mutex
	enc     *json.Encoder
	dead    bool
	dropped atomic.Int64
	drops   *obs.Counter // nil-safe registry mirror of dropped
}

// NewEventLog wraps a writer.
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{enc: json.NewEncoder(w)}
}

// Instrument mirrors the drop count onto the registry's
// hyperdrive_eventlog_dropped_total counter. Drops accrued before the
// call stay only in Dropped().
func (l *EventLog) Instrument(r *obs.Registry) {
	if l == nil || r == nil {
		return
	}
	l.mu.Lock()
	l.drops = r.Counter(obs.EventLogDroppedTotal)
	l.mu.Unlock()
}

// Dropped reports how many records have been lost to write errors
// (including every record suppressed after the log went dead).
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped.Load()
}

// Log writes one record.
func (l *EventLog) Log(r LogRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		l.drop()
		return
	}
	//hdlint:ignore locksafe serializing the JSON stream is what l.mu is for; writers are files or buffers, and a wedged sink flips the log dead rather than wedging callers forever
	if err := l.enc.Encode(r); err != nil {
		l.dead = true
		l.drop()
	}
}

// drop counts one lost record; callers hold l.mu.
func (l *EventLog) drop() {
	l.dropped.Add(1)
	l.drops.Inc()
}

// logEvent emits a record for an executor event.
func (e *Experiment) logEvent(kind string, ev Event) {
	if e.cfg.EventLog == nil {
		return
	}
	rec := LogRecord{
		T:      e.clk.Now(),
		Kind:   kind,
		Job:    string(ev.Job),
		Slot:   string(ev.Slot),
		Epoch:  ev.Epoch,
		Metric: ev.Metric,
		Agent:  ev.Agent,
	}
	if ev.Err != nil {
		rec.Detail = ev.Err.Error()
	}
	e.cfg.EventLog.Log(rec)
}

// logDecision emits a record for an OnIterationFinish verdict, stamped
// with the decision span's ID (empty when tracing is off) and the
// prediction the policy annotated onto the span, if any.
func (e *Experiment) logDecision(job sched.JobID, epoch int, d sched.Decision, sp *obs.Span) {
	if e.cfg.EventLog == nil {
		return
	}
	rec := LogRecord{
		T:        e.clk.Now(),
		Kind:     "decision",
		Job:      string(job),
		Epoch:    epoch,
		Decision: d.String(),
		Span:     sp.ID(),
	}
	if a, ok := sp.Attr("confidence"); ok {
		rec.Confidence = a.Val
	}
	if a, ok := sp.Attr("ert_seconds"); ok {
		rec.ERTSeconds = a.Val
	}
	if a, ok := sp.Attr("class"); ok {
		rec.Class = a.Str
	}
	if a, ok := sp.Attr("cause"); ok {
		rec.Detail = a.Str
		rec.Class = "poor"
	}
	e.cfg.EventLog.Log(rec)
}

// logLifecycle emits a start/resume/stop style record.
func (e *Experiment) logLifecycle(kind string, job sched.JobID, slot SlotID, detail string) {
	if e.cfg.EventLog == nil {
		return
	}
	e.cfg.EventLog.Log(LogRecord{
		T:      e.clk.Now(),
		Kind:   kind,
		Job:    string(job),
		Slot:   string(slot),
		Detail: detail,
	})
}
