package cluster

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// LogRecord is one line of the experiment event log: everything the
// scheduler observes or decides, timestamped on the experiment clock.
// The log is the runtime's observability surface — what you grep when
// a policy behaves unexpectedly — and is also the raw material for
// offline analysis of scheduling behaviour.
type LogRecord struct {
	T        time.Time `json:"t"`
	Kind     string    `json:"kind"` // start|resume|stat|decision|suspend|terminate|complete|error|snapshot|stop
	Job      string    `json:"job,omitempty"`
	Slot     string    `json:"slot,omitempty"`
	Epoch    int       `json:"epoch,omitempty"`
	Metric   float64   `json:"metric,omitempty"`
	Decision string    `json:"decision,omitempty"`
	Detail   string    `json:"detail,omitempty"`
	// Agent names the node agent behind agent_down/agent_up/agent_error
	// records.
	Agent string `json:"agent,omitempty"`
	// Span links a decision record to its trace: resolve it at the
	// introspection endpoint (/spans?id=...) to see the estimate
	// inputs (ERT, confidence, pool sizes) behind the verdict.
	Span string `json:"span,omitempty"`
	// Confidence, ERTSeconds, and Class carry the prediction behind a
	// decision record directly on the log line (zero/empty off
	// evaluation boundaries), so offline analysis of prediction quality
	// does not depend on the span ring still holding the decision.
	Confidence float64 `json:"confidence,omitempty"`
	ERTSeconds float64 `json:"ertSeconds,omitempty"`
	Class      string  `json:"class,omitempty"`

	// spanRaw defers span-ID formatting off the decision hot path: the
	// flusher renders it into Span just before encoding, so the
	// scheduler loop never allocates the hex string for spans nobody
	// retains.
	spanRaw uint64
}

// DefaultEventLogBuffer is the record capacity of the append buffer; a
// burst larger than this while the flusher is behind is dropped (and
// counted) rather than blocking the scheduler loop.
const DefaultEventLogBuffer = 4096

// EventLog serializes LogRecords as JSON lines through a batching
// flusher: Log appends to an in-memory buffer and a single background
// goroutine swaps the buffer out and encodes it, so the scheduler's
// decision path never performs I/O. Safe for concurrent use.
//
// Back-pressure is drop-not-block: when the buffer is full (the sink
// is slower than the event rate) or the log is dead after a write
// error, records are discarded and counted. The count is exact and
// single-sourced — Dropped() and, once Instrument is called, the
// hyperdrive_eventlog_dropped_total counter are updated together under
// the same lock and always agree.
type EventLog struct {
	mu       sync.Mutex
	flushed  sync.Cond // signalled after every batch and on close
	fill     sync.Cond // signalled when records or close arrive
	enc      *json.Encoder
	buf      []LogRecord // append side; swapped wholesale by the flusher
	spare    []LogRecord // recycled batch storage (double buffering)
	flushing bool        // flusher is encoding a swapped-out batch
	dead     bool        // write error: all subsequent records drop
	closed   bool
	done     chan struct{} // flusher exited
	dropped  atomic.Int64
	drops    *obs.Counter // nil-safe registry mirror of dropped
}

// NewEventLog wraps a writer with the default buffer capacity.
func NewEventLog(w io.Writer) *EventLog {
	return NewEventLogBuffer(w, DefaultEventLogBuffer)
}

// NewEventLogBuffer wraps a writer with an explicit append-buffer
// capacity (minimum 1). Small capacities are for tests that exercise
// the drop path deterministically.
func NewEventLogBuffer(w io.Writer, capacity int) *EventLog {
	if capacity < 1 {
		capacity = 1
	}
	l := &EventLog{
		enc:   json.NewEncoder(w),
		buf:   make([]LogRecord, 0, capacity),
		spare: make([]LogRecord, 0, capacity),
		done:  make(chan struct{}),
	}
	l.flushed.L = &l.mu
	l.fill.L = &l.mu
	go l.flusher()
	return l
}

// Instrument mirrors the drop count onto the registry's
// hyperdrive_eventlog_dropped_total counter, backfilling drops accrued
// before the call so the counter and Dropped() agree exactly from the
// moment of instrumentation.
func (l *EventLog) Instrument(r *obs.Registry) {
	if l == nil || r == nil {
		return
	}
	l.mu.Lock()
	l.drops = r.Counter(obs.EventLogDroppedTotal)
	l.drops.Add(l.dropped.Load())
	l.mu.Unlock()
}

// Dropped reports how many records have been lost — to write errors,
// to buffer overflow while the sink lagged, or to logging after Close.
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped.Load()
}

// Log buffers one record for the flusher. It never blocks on the sink:
// a full buffer drops the record and counts it.
func (l *EventLog) Log(r LogRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.dead || l.closed || len(l.buf) == cap(l.buf) {
		l.dropLocked(1)
		l.mu.Unlock()
		return
	}
	l.buf = append(l.buf, r)
	l.mu.Unlock()
	l.fill.Signal()
}

// LogSync appends one record, waiting for buffer space instead of
// dropping when the flusher is behind. It is for terminal records —
// the "stop" lifecycle line an experiment writes as it shuts down —
// that must survive even when a cancel lands mid-burst with the
// buffer full; everything on the decision hot path stays on the
// non-blocking Log. Returns false (and counts a drop) only when the
// log is closed or dead, where waiting could never succeed.
func (l *EventLog) LogSync(r LogRecord) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	for !l.dead && !l.closed && len(l.buf) == cap(l.buf) {
		l.flushed.Wait()
	}
	if l.dead || l.closed {
		l.dropLocked(1)
		l.mu.Unlock()
		return false
	}
	l.buf = append(l.buf, r)
	l.mu.Unlock()
	l.fill.Signal()
	return true
}

// Flush blocks until every record accepted so far has been encoded to
// the sink (or counted as dropped, if the log died en route).
func (l *EventLog) Flush() {
	if l == nil {
		return
	}
	l.mu.Lock()
	for len(l.buf) > 0 || l.flushing {
		l.flushed.Wait()
	}
	l.mu.Unlock()
}

// Close drains the buffer, stops the flusher, and marks the log
// closed; records logged afterwards are dropped and counted. Close is
// idempotent and does not close the underlying writer.
func (l *EventLog) Close() {
	if l == nil {
		return
	}
	l.mu.Lock()
	if !l.closed {
		l.closed = true
		l.fill.Signal()
	}
	l.mu.Unlock()
	<-l.done
}

// dropLocked counts n lost records on the single accounting path;
// callers hold l.mu, which is what keeps the atomic and the registry
// counter in exact agreement.
func (l *EventLog) dropLocked(n int64) {
	l.dropped.Add(n)
	l.drops.Add(n)
}

// flusher is the single background encoder: swap the append buffer for
// the spare, render and write the batch outside the lock, recycle the
// batch storage, repeat until closed and drained.
func (l *EventLog) flusher() {
	defer close(l.done)
	for {
		l.mu.Lock()
		for len(l.buf) == 0 && !l.closed {
			l.fill.Wait()
		}
		if len(l.buf) == 0 { // closed and drained
			l.mu.Unlock()
			l.flushed.Broadcast()
			return
		}
		batch := l.buf
		l.buf = l.spare[:0]
		l.spare = nil
		l.flushing = true
		dead := l.dead
		l.mu.Unlock()

		var failedAt = -1
		if !dead {
			for i := range batch {
				r := &batch[i]
				if r.Span == "" && r.spanRaw != 0 {
					r.Span = obs.FormatSpanID(r.spanRaw)
				}
				if err := l.enc.Encode(r); err != nil {
					failedAt = i
					break
				}
			}
		}

		l.mu.Lock()
		switch {
		case dead:
			l.dropLocked(int64(len(batch)))
		case failedAt >= 0:
			l.dead = true
			l.dropLocked(int64(len(batch) - failedAt))
		}
		l.spare = batch[:0]
		l.flushing = false
		l.mu.Unlock()
		l.flushed.Broadcast()
	}
}

// logEvent emits a record for an executor event.
func (e *Experiment) logEvent(kind string, ev Event) {
	if e.cfg.EventLog == nil {
		return
	}
	rec := LogRecord{
		T:      e.clk.Now(),
		Kind:   kind,
		Job:    string(ev.Job),
		Slot:   string(ev.Slot),
		Epoch:  ev.Epoch,
		Metric: ev.Metric,
		Agent:  ev.Agent,
	}
	if ev.Err != nil {
		rec.Detail = ev.Err.Error()
	}
	e.cfg.EventLog.Log(rec)
}

// logDecision emits a record for an OnIterationFinish verdict, carrying
// the decision span's raw ID (rendered by the flusher; zero when
// tracing is off) and the prediction the policy annotated onto the
// span, if any.
func (e *Experiment) logDecision(job sched.JobID, epoch int, d sched.Decision, sp *obs.Span) {
	if e.cfg.EventLog == nil {
		return
	}
	rec := LogRecord{
		T:        e.clk.Now(),
		Kind:     "decision",
		Job:      string(job),
		Epoch:    epoch,
		Decision: d.String(),
		spanRaw:  sp.RawID(),
	}
	if a, ok := sp.Attr("confidence"); ok {
		rec.Confidence = a.Val
	}
	if a, ok := sp.Attr("ert_seconds"); ok {
		rec.ERTSeconds = a.Val
	}
	if a, ok := sp.Attr("class"); ok {
		rec.Class = a.Str
	}
	if a, ok := sp.Attr("cause"); ok {
		rec.Detail = a.Str
		rec.Class = "poor"
	}
	e.cfg.EventLog.Log(rec)
}

// logLifecycle emits a start/resume/stop style record.
func (e *Experiment) logLifecycle(kind string, job sched.JobID, slot SlotID, detail string) {
	if e.cfg.EventLog == nil {
		return
	}
	e.cfg.EventLog.Log(LogRecord{
		T:      e.clk.Now(),
		Kind:   kind,
		Job:    string(job),
		Slot:   string(slot),
		Detail: detail,
	})
}
