package cluster

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// LogRecord is one line of the experiment event log: everything the
// scheduler observes or decides, timestamped on the experiment clock.
// The log is the runtime's observability surface — what you grep when
// a policy behaves unexpectedly — and is also the raw material for
// offline analysis of scheduling behaviour.
type LogRecord struct {
	T        time.Time `json:"t"`
	Kind     string    `json:"kind"` // start|resume|stat|decision|suspend|terminate|complete|error|snapshot|stop
	Job      string    `json:"job,omitempty"`
	Slot     string    `json:"slot,omitempty"`
	Epoch    int       `json:"epoch,omitempty"`
	Metric   float64   `json:"metric,omitempty"`
	Decision string    `json:"decision,omitempty"`
	Detail   string    `json:"detail,omitempty"`
}

// EventLog serializes LogRecords as JSON lines. Safe for concurrent
// use; write errors disable further logging rather than failing the
// experiment.
type EventLog struct {
	mu   sync.Mutex
	enc  *json.Encoder
	dead bool
}

// NewEventLog wraps a writer.
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{enc: json.NewEncoder(w)}
}

// Log writes one record.
func (l *EventLog) Log(r LogRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.dead {
		return
	}
	if err := l.enc.Encode(r); err != nil {
		l.dead = true
	}
}

// logEvent emits a record for an executor event.
func (e *Experiment) logEvent(kind string, ev Event) {
	if e.cfg.EventLog == nil {
		return
	}
	e.cfg.EventLog.Log(LogRecord{
		T:      e.clk.Now(),
		Kind:   kind,
		Job:    string(ev.Job),
		Slot:   string(ev.Slot),
		Epoch:  ev.Epoch,
		Metric: ev.Metric,
	})
}

// logDecision emits a record for an OnIterationFinish verdict.
func (e *Experiment) logDecision(job sched.JobID, epoch int, d sched.Decision) {
	if e.cfg.EventLog == nil {
		return
	}
	e.cfg.EventLog.Log(LogRecord{
		T:        e.clk.Now(),
		Kind:     "decision",
		Job:      string(job),
		Epoch:    epoch,
		Decision: d.String(),
	})
}

// logLifecycle emits a start/resume/stop style record.
func (e *Experiment) logLifecycle(kind string, job sched.JobID, slot SlotID, detail string) {
	if e.cfg.EventLog == nil {
		return
	}
	e.cfg.EventLog.Log(LogRecord{
		T:      e.clk.Now(),
		Kind:   kind,
		Job:    string(job),
		Slot:   string(slot),
		Detail: detail,
	})
}
