package cluster

import (
	"fmt"
	"sync"

	"github.com/hyperdrive-ml/hyperdrive/internal/checkpoint"
	"github.com/hyperdrive-ml/hyperdrive/internal/clock"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// WorkerPool is the in-process Executor: one goroutine per slot
// running synthetic trainers against the experiment clock. It is the
// single-machine deployment of HyperDrive (the paper co-locates the
// scheduler with training machines in the private-cluster setup).
type WorkerPool struct {
	registry *workload.Registry
	clk      clock.Clock
	events   chan<- Event
	capturer *checkpoint.Capturer

	mu      sync.Mutex
	slots   []SlotID
	running map[SlotID]*workerJob
	closed  bool
	wg      sync.WaitGroup
}

// workerJob is one running training loop.
type workerJob struct {
	spec StartSpec
	stop chan struct{} // closed to request asynchronous termination
	// reply is reused for every iteration-boundary round trip of this
	// job: the scheduler sends exactly one DecisionReply per EvIterDone
	// and the loop consumes it before emitting the next, so a single
	// buffered channel suffices — no per-decision allocation.
	reply chan DecisionReply
}

// NewWorkerPool builds a pool with n slots. Events are delivered on
// events; the capturer models snapshot size/latency (may be nil for
// free suspends).
func NewWorkerPool(n int, registry *workload.Registry, clk clock.Clock, capturer *checkpoint.Capturer, events chan<- Event) (*WorkerPool, error) {
	if n < 1 {
		return nil, fmt.Errorf("cluster: worker pool needs >= 1 slot, got %d", n)
	}
	if registry == nil || clk == nil || events == nil {
		return nil, fmt.Errorf("cluster: worker pool needs registry, clock, and event channel")
	}
	p := &WorkerPool{
		registry: registry,
		clk:      clk,
		events:   events,
		capturer: capturer,
		running:  make(map[SlotID]*workerJob),
	}
	for i := 0; i < n; i++ {
		p.slots = append(p.slots, SlotID(fmt.Sprintf("worker-%d", i)))
	}
	return p, nil
}

// Slots implements Executor.
func (p *WorkerPool) Slots() []SlotID {
	return append([]SlotID(nil), p.slots...)
}

// Start implements Executor.
func (p *WorkerPool) Start(spec StartSpec) error {
	spec2 := spec
	wspec, err := p.registry.Lookup(spec.Workload)
	if err != nil {
		return err
	}
	trainer := wspec.New(spec.Config, spec.Seed)
	if spec.Snapshot != nil {
		payload, err := checkpoint.Decode(spec.Snapshot)
		if err != nil {
			return fmt.Errorf("cluster: resume %s: %w", spec.Job, err)
		}
		if err := trainer.Restore(payload); err != nil {
			return fmt.Errorf("cluster: resume %s: %w", spec.Job, err)
		}
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return fmt.Errorf("cluster: worker pool closed")
	}
	if _, busy := p.running[spec.Slot]; busy {
		return fmt.Errorf("cluster: slot %s already busy", spec.Slot)
	}
	known := false
	for _, s := range p.slots {
		if s == spec.Slot {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("cluster: unknown slot %s", spec.Slot)
	}
	wj := &workerJob{spec: spec2, stop: make(chan struct{}), reply: make(chan DecisionReply, 1)}
	p.running[spec.Slot] = wj
	p.wg.Add(1)
	go p.runJob(wj, trainer)
	return nil
}

// Close implements Executor: stops all jobs and waits for their
// goroutines.
func (p *WorkerPool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	for _, wj := range p.running {
		close(wj.stop)
	}
	p.mu.Unlock()
	p.wg.Wait()
	return nil
}

// StopJob implements JobStopper: asynchronously stop the job bound to
// slot. The loop acknowledges with an EvExited/ExitTerminated event
// (best effort — dropped if nobody is draining the channel anymore).
func (p *WorkerPool) StopJob(job sched.JobID, slot SlotID) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	wj, ok := p.running[slot]
	if !ok || wj.spec.Job != job {
		return fmt.Errorf("cluster: job %s not running on slot %s", job, slot)
	}
	select {
	case <-wj.stop:
		// Already stopping (pool Close or a duplicate request).
	default:
		close(wj.stop)
	}
	return nil
}

// release frees the slot when a job ends.
func (p *WorkerPool) release(slot SlotID) {
	p.mu.Lock()
	delete(p.running, slot)
	p.mu.Unlock()
}

// emit delivers an event unless the pool is shutting down.
func (p *WorkerPool) emit(wj *workerJob, ev Event) bool {
	select {
	case p.events <- ev:
		return true
	case <-wj.stop:
		return false
	}
}

// emitExit delivers a job's terminal event even when its stop channel
// is already closed: first the ordinary stop-aware send, then a
// non-blocking fallback. Exit events are what lets the scheduler's
// shutdown drain release the slot, so they must not be silently
// swallowed by a racing StopJob — but they also must not block, since
// during pool Close nobody drains the event channel at all.
func (p *WorkerPool) emitExit(wj *workerJob, ev Event) {
	if p.emit(wj, ev) {
		return
	}
	select {
	case p.events <- ev:
	default:
	}
}

// emitStopped acknowledges an asynchronous StopJob with a terminated
// exit.
func (p *WorkerPool) emitStopped(wj *workerJob, epoch int) {
	select {
	case p.events <- Event{Kind: EvExited, Job: wj.spec.Job, Slot: wj.spec.Slot, Epoch: epoch, Reason: ExitTerminated, Trace: wj.spec.Trace}:
	default:
	}
}

// runJob is the per-slot training loop: step an epoch (sleeping its
// simulated duration on the experiment clock), report the statistic,
// then block on the scheduler's OnIterationFinish decision — the
// paper's schedule-as-it-goes execution with per-job decision points.
func (p *WorkerPool) runJob(wj *workerJob, trainer workload.Trainer) {
	defer p.wg.Done()
	defer p.release(wj.spec.Slot)
	spec := wj.spec
	for {
		select {
		case <-wj.stop:
			p.emitStopped(wj, trainer.Epoch())
			return
		default:
		}

		s, done := trainer.Step()
		p.clk.Sleep(s.Duration)

		if !p.emit(wj, Event{
			Kind: EvStat, Job: spec.Job, Slot: spec.Slot,
			Epoch: s.Epoch, Metric: s.Metric, Duration: s.Duration,
		}) {
			p.emitStopped(wj, s.Epoch)
			return
		}
		if done {
			p.emitExit(wj, Event{Kind: EvExited, Job: spec.Job, Slot: spec.Slot, Epoch: s.Epoch, Reason: ExitCompleted, Trace: spec.Trace})
			return
		}

		if !p.emit(wj, Event{Kind: EvIterDone, Job: spec.Job, Slot: spec.Slot, Epoch: s.Epoch, Reply: wj.reply, Trace: spec.Trace}) {
			p.emitStopped(wj, s.Epoch)
			return
		}
		var dr DecisionReply
		select {
		case dr = <-wj.reply:
		case <-wj.stop:
			p.emitStopped(wj, s.Epoch)
			return
		}

		switch dr.Decision {
		case sched.Terminate:
			p.emitExit(wj, Event{Kind: EvExited, Job: spec.Job, Slot: spec.Slot, Epoch: s.Epoch, Reason: ExitTerminated, Trace: dr.Trace})
			return
		case sched.Suspend:
			payload, err := trainer.Snapshot()
			if err != nil {
				p.emitExit(wj, Event{Kind: EvExited, Job: spec.Job, Slot: spec.Slot, Epoch: s.Epoch, Reason: ExitError, Err: err, Trace: dr.Trace})
				return
			}
			var (
				img  checkpoint.Image
				data []byte
			)
			if p.capturer != nil {
				img = p.capturer.Capture(payload)
				p.clk.Sleep(img.Latency) // suspend latency costs experiment time
				data = img.Encode()
			} else {
				img = checkpoint.Image{Payload: payload, Size: len(payload)}
				data = img.Encode()
			}
			if !p.emit(wj, Event{
				Kind: EvSnapshot, Job: spec.Job, Slot: spec.Slot, Epoch: trainer.Epoch(),
				Snapshot: data, SnapSize: img.Size, SnapLat: img.Latency, Trace: dr.Trace,
			}) {
				p.emitStopped(wj, trainer.Epoch())
				return
			}
			p.emitExit(wj, Event{Kind: EvExited, Job: spec.Job, Slot: spec.Slot, Epoch: trainer.Epoch(), Reason: ExitSuspended, Trace: dr.Trace})
			return
		default: // Continue
		}
	}
}

var (
	_ Executor   = (*WorkerPool)(nil)
	_ JobStopper = (*WorkerPool)(nil)
)
