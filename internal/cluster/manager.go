package cluster

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/hyperdrive-ml/hyperdrive/internal/param"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// slotState is one slot's position in the pool state machine. A slot is
// always in exactly one state; the packed occupancy counters mirror the
// partition {idle, busy, offline} with busy-while-quarantined slots
// counted as busy until their binding is released, so
// IdleCount+BusyCount+OfflineCount == Total() at every instant.
type slotState uint8

const (
	slotIdle slotState = iota
	slotBusy
	// slotOffline is a quarantined slot with no job binding: invisible
	// to ReserveIdleMachine until MarkOnline.
	slotOffline
	// slotBusyOffline is a quarantined slot still carrying its job
	// binding — the job-loss events have not released it yet. It counts
	// as busy (the binding is real capacity in use) and moves to
	// slotOffline at release.
	slotBusyOffline
)

// Packed occupancy counters: idle | busy<<countBits | offline<<2*countBits,
// updated with a single atomic add per transition so the partition
// invariant holds at every load (21 bits per field: up to 2M slots).
const (
	countBits = 21
	countMask = 1<<countBits - 1
)

// shardTargetSlots is the slot count one shard aims to own. Derived
// from the pool size only — never from GOMAXPROCS or CPU count — so a
// replayed op schedule reserves identical slots on any host.
const (
	shardTargetSlots = 64
	maxShards        = 64
)

// rmShard owns a contiguous block of the slot pool: its own mutex, the
// per-slot states, and an intrusive doubly-linked free-list over local
// indices so reserve, release, and quarantine are all O(1). Contiguous
// blocks mean one agent's slots land in few shards, so quarantining a
// failed agent touches a handful of locks instead of all of them.
type rmShard struct {
	mu    sync.Mutex
	base  int32 // global index of local slot 0
	state []slotState
	// Free-list links over local indices; -1 terminates. Insertion at
	// the tail and removal at the head preserve the single-lock seed's
	// FIFO rotation (a released slot waits behind everything idle).
	next, prev []int32
	head, tail int32
	// nfree lets ReserveIdleMachine skip exhausted shards without
	// taking their locks.
	nfree atomic.Int32
}

// ResourceManager tracks allocated and idle slots — the paper's RM
// component with its two-call API (§4.2):
//
//	reserveIdleMachine() -> machineId
//	releaseMachine(machineId)
//
// The pool is sharded: each contiguous block of slots has its own
// mutex and free-list, so thousands of concurrent reserve/release/
// quarantine calls do not serialize on one lock, and every operation
// is O(1) in the pool size. Slots belonging to an unreachable agent
// are quarantined (offline): neither idle nor busy, invisible to
// ReserveIdleMachine until MarkOnline restores them.
type ResourceManager struct {
	slots  []SlotID         // immutable after construction
	index  map[SlotID]int32 // immutable: slot -> global index
	shards []rmShard
	stride int32         // slots per shard block (last shard may be short)
	counts atomic.Uint64 // packed idle|busy|offline occupancy
	rotor  atomic.Uint32 // reserve probe start, round-robins shards
}

// NewResourceManager builds an RM over the given slots, all idle.
func NewResourceManager(slots []SlotID) *ResourceManager {
	total := len(slots)
	n := (total + shardTargetSlots - 1) / shardTargetSlots
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		n = maxShards
	}
	rm := &ResourceManager{
		slots:  append([]SlotID(nil), slots...),
		index:  make(map[SlotID]int32, total),
		shards: make([]rmShard, n),
	}
	for i, s := range rm.slots {
		rm.index[s] = int32(i)
	}
	// Contiguous block partition: shard k owns [k*per, min((k+1)*per, total)).
	per := (total + n - 1) / n
	if per < 1 {
		per = 1
	}
	rm.stride = int32(per)
	for k := range rm.shards {
		lo := k * per
		hi := lo + per
		if lo > total {
			lo = total
		}
		if hi > total {
			hi = total
		}
		sh := &rm.shards[k]
		sh.base = int32(lo)
		sh.state = make([]slotState, hi-lo)
		sh.next = make([]int32, hi-lo)
		sh.prev = make([]int32, hi-lo)
		sh.head, sh.tail = -1, -1
		for i := 0; i < hi-lo; i++ {
			sh.pushBack(int32(i))
		}
		sh.nfree.Store(int32(hi - lo))
	}
	rm.counts.Store(uint64(total)) // all idle
	return rm
}

// shardOf maps a global slot index to its shard and local index.
func (rm *ResourceManager) shardOf(gi int32) (*rmShard, int32) {
	sh := &rm.shards[gi/rm.stride]
	return sh, gi - sh.base
}

// addCounts applies one occupancy transition as a single atomic add
// (modular arithmetic makes negative field deltas borrow correctly as
// long as no field ever goes below zero, which the state machine
// guarantees), so idle+busy+offline == Total() holds at every load.
func (rm *ResourceManager) addCounts(idle, busy, offline int64) {
	rm.counts.Add(uint64(idle) + uint64(busy)<<countBits + uint64(offline)<<(2*countBits))
}

// Counts returns one consistent occupancy snapshot: slots idle, slots
// carrying a live job binding (including quarantined-but-busy ones),
// and quarantined slots with no binding. The three always sum to
// Total(), even mid-flight under concurrent mutation.
func (rm *ResourceManager) Counts() (idle, busy, offline int) {
	v := rm.counts.Load()
	return int(v & countMask), int(v >> countBits & countMask), int(v >> (2 * countBits) & countMask)
}

// ReserveIdleMachine claims an idle slot in O(1): probe shards from a
// rotating start position, pop the first free-list head found.
func (rm *ResourceManager) ReserveIdleMachine() (SlotID, bool) {
	n := uint32(len(rm.shards))
	start := rm.rotor.Add(1) - 1
	for i := uint32(0); i < n; i++ {
		sh := &rm.shards[(start+i)%n]
		if sh.nfree.Load() == 0 {
			continue
		}
		sh.mu.Lock()
		li := sh.popFront()
		if li < 0 {
			sh.mu.Unlock()
			continue
		}
		sh.state[li] = slotBusy
		sh.nfree.Add(-1)
		sh.mu.Unlock()
		rm.addCounts(-1, +1, 0)
		return rm.slots[sh.base+li], true
	}
	return "", false
}

// ReleaseMachine returns a slot to the idle pool. Releasing a
// quarantined slot is a no-op success: the job-loss path frees its
// binding, but the slot stays offline until MarkOnline.
func (rm *ResourceManager) ReleaseMachine(s SlotID) error {
	gi, ok := rm.index[s]
	if !ok {
		return fmt.Errorf("cluster: release of unknown slot %s", s)
	}
	sh, li := rm.shardOf(gi)
	sh.mu.Lock()
	switch sh.state[li] {
	case slotBusy:
		sh.state[li] = slotIdle
		sh.pushBack(li)
		sh.nfree.Add(1)
		sh.mu.Unlock()
		rm.addCounts(+1, -1, 0)
		return nil
	case slotBusyOffline:
		sh.state[li] = slotOffline
		sh.mu.Unlock()
		rm.addCounts(0, -1, +1)
		return nil
	case slotOffline:
		// Binding already gone; stay quarantined.
		sh.mu.Unlock()
		return nil
	default: // slotIdle
		sh.mu.Unlock()
		return fmt.Errorf("cluster: release of non-busy slot %s", s)
	}
}

// MarkOffline quarantines slots: idle ones leave the free list, busy
// ones keep their binding (the job-loss events will release them into
// quarantine rather than back to idle). Unknown slots are ignored —
// quarantining must never grow the pool.
func (rm *ResourceManager) MarkOffline(slots []SlotID) {
	for _, s := range slots {
		gi, ok := rm.index[s]
		if !ok {
			continue
		}
		sh, li := rm.shardOf(gi)
		sh.mu.Lock()
		switch sh.state[li] {
		case slotIdle:
			sh.remove(li)
			sh.state[li] = slotOffline
			sh.nfree.Add(-1)
			sh.mu.Unlock()
			rm.addCounts(-1, 0, +1)
		case slotBusy:
			// Still counts as busy: the binding is live until released.
			sh.state[li] = slotBusyOffline
			sh.mu.Unlock()
		default: // already quarantined
			sh.mu.Unlock()
		}
	}
}

// MarkOnline restores quarantined slots to the idle pool. Slots still
// carrying a busy binding (release hasn't happened yet) stay busy.
func (rm *ResourceManager) MarkOnline(slots []SlotID) {
	for _, s := range slots {
		gi, ok := rm.index[s]
		if !ok {
			continue
		}
		sh, li := rm.shardOf(gi)
		sh.mu.Lock()
		switch sh.state[li] {
		case slotOffline:
			sh.state[li] = slotIdle
			sh.pushBack(li)
			sh.nfree.Add(1)
			sh.mu.Unlock()
			rm.addCounts(+1, 0, -1)
		case slotBusyOffline:
			sh.state[li] = slotBusy
			sh.mu.Unlock()
		default: // not quarantined
			sh.mu.Unlock()
		}
	}
}

// IdleCount reports idle slots.
func (rm *ResourceManager) IdleCount() int {
	idle, _, _ := rm.Counts()
	return idle
}

// BusyCount reports slots with a live job binding, including
// quarantined slots whose loss events have not released them yet.
func (rm *ResourceManager) BusyCount() int {
	_, busy, _ := rm.Counts()
	return busy
}

// OfflineCount reports quarantined slots with no job binding. A busy
// slot under quarantine counts as busy until its release, so
// IdleCount+BusyCount+OfflineCount always equals Total().
func (rm *ResourceManager) OfflineCount() int {
	_, _, off := rm.Counts()
	return off
}

// Total reports the pool size: every slot, whatever its state.
func (rm *ResourceManager) Total() int { return len(rm.slots) }

// Shards reports how many lock shards partition the pool (size-derived,
// host-independent).
func (rm *ResourceManager) Shards() int { return len(rm.shards) }

// --- intrusive free-list (callers hold sh.mu) -------------------------

// pushBack appends a local index at the free-list tail.
func (sh *rmShard) pushBack(li int32) {
	sh.next[li] = -1
	sh.prev[li] = sh.tail
	if sh.tail >= 0 {
		sh.next[sh.tail] = li
	} else {
		sh.head = li
	}
	sh.tail = li
}

// popFront removes and returns the free-list head (-1 when empty).
func (sh *rmShard) popFront() int32 {
	li := sh.head
	if li < 0 {
		return -1
	}
	sh.remove(li)
	return li
}

// remove unlinks a local index from anywhere in the free-list.
func (sh *rmShard) remove(li int32) {
	if sh.prev[li] >= 0 {
		sh.next[sh.prev[li]] = sh.next[li]
	} else {
		sh.head = sh.next[li]
	}
	if sh.next[li] >= 0 {
		sh.prev[sh.next[li]] = sh.prev[li]
	} else {
		sh.tail = sh.prev[li]
	}
	sh.next[li], sh.prev[li] = -1, -1
}

// ManagedJob is the Job Manager's record for one configuration.
type ManagedJob struct {
	Job       *sched.Job
	Config    param.Config
	Seed      int64
	Idx       int    // creation order
	QueueSeq  int    // idle-queue insertion order (suspends re-enqueue at the back)
	Snapshot  []byte // latest suspend image (nil if never suspended)
	SnapEpoch int    // epoch the snapshot was captured at (re-placement trims history here)
	Busy      int64  // accumulated training nanoseconds
	Best      float64
	HasBest   bool
	// TraceID names the distributed trace every span about this job
	// joins, minted once at creation ("" when tracing is off).
	TraceID string
	// LastSpan is the ID of the most recent retained scheduler span
	// concerning this job — the parent for the job's next placement.
	LastSpan string
}

// JobManager keeps the job table and the priority-ordered idle queue —
// the paper's JM (§4.2) with start/resume/suspend/terminate tracked on
// each job's state machine and labelJob priorities ordering idle jobs.
type JobManager struct {
	mu   sync.Mutex
	jobs map[sched.JobID]*ManagedJob
	next int
}

// NewJobManager returns an empty JM.
func NewJobManager() *JobManager {
	return &JobManager{jobs: make(map[sched.JobID]*ManagedJob)}
}

// Add registers a new pending job.
func (jm *JobManager) Add(id sched.JobID, cfg param.Config, seed int64, maxEpoch int) (*ManagedJob, error) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if _, dup := jm.jobs[id]; dup {
		return nil, fmt.Errorf("cluster: duplicate job %s", id)
	}
	mj := &ManagedJob{
		Job:      sched.NewJob(id, cfg, seed, maxEpoch),
		Config:   cfg,
		Seed:     seed,
		Idx:      jm.next,
		QueueSeq: jm.next,
	}
	jm.next++
	jm.jobs[id] = mj
	return mj, nil
}

// Get looks up a job.
func (jm *JobManager) Get(id sched.JobID) (*ManagedJob, bool) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	mj, ok := jm.jobs[id]
	return mj, ok
}

// GetIdleJob implements the JM's getIdleJob(): the suspended job with
// the highest priority, FIFO by idle-queue insertion order on ties
// (§4.2 — a just-suspended unlabelled job waits behind everything
// already queued, which is what rotates the opportunistic pool).
func (jm *JobManager) GetIdleJob() (*ManagedJob, bool) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	var best *ManagedJob
	for _, mj := range jm.jobs {
		if mj.Job.State() != sched.Suspended {
			continue
		}
		if best == nil {
			best = mj
			continue
		}
		pi, pb := mj.Job.Priority(), best.Job.Priority()
		//hdlint:ignore floateq an exact priority tie deliberately falls back to FIFO order; a tolerance would make rotation order depend on its width
		if pi > pb || (pi == pb && mj.QueueSeq < best.QueueSeq) {
			best = mj
		}
	}
	return best, best != nil
}

// Requeue marks a job's return to the idle queue, sending it behind
// every job queued so far.
func (jm *JobManager) Requeue(id sched.JobID) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if mj, ok := jm.jobs[id]; ok {
		mj.QueueSeq = jm.next
		jm.next++
	}
}

// LabelJob implements labelJob(jobID, priority).
func (jm *JobManager) LabelJob(id sched.JobID, priority float64) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if mj, ok := jm.jobs[id]; ok {
		mj.Job.SetPriority(priority)
	}
}

// SuspendedCount reports idle (suspended) jobs.
func (jm *JobManager) SuspendedCount() int {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	n := 0
	for _, mj := range jm.jobs {
		if mj.Job.State() == sched.Suspended {
			n++
		}
	}
	return n
}

// Active lists running and suspended jobs.
func (jm *JobManager) Active() []sched.JobID {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	var out []sched.JobID
	for id, mj := range jm.jobs {
		st := mj.Job.State()
		if st == sched.Running || st == sched.Suspended {
			out = append(out, id)
		}
	}
	return out
}

// All returns every managed job.
func (jm *JobManager) All() []*ManagedJob {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	out := make([]*ManagedJob, 0, len(jm.jobs))
	for _, mj := range jm.jobs {
		out = append(out, mj)
	}
	return out
}
