package cluster

import (
	"fmt"
	"sync"

	"github.com/hyperdrive-ml/hyperdrive/internal/param"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// ResourceManager tracks allocated and idle slots — the paper's RM
// component with its two-call API (§4.2):
//
//	reserveIdleMachine() -> machineId
//	releaseMachine(machineId)
//
// Slots belonging to an unreachable agent are quarantined (offline):
// neither idle nor busy, invisible to ReserveIdleMachine until
// MarkOnline restores them.
type ResourceManager struct {
	mu      sync.Mutex
	free    []SlotID
	busy    map[SlotID]bool
	offline map[SlotID]bool
}

// NewResourceManager builds an RM over the given slots, all idle.
func NewResourceManager(slots []SlotID) *ResourceManager {
	rm := &ResourceManager{
		busy:    make(map[SlotID]bool, len(slots)),
		offline: make(map[SlotID]bool),
	}
	rm.free = append(rm.free, slots...)
	return rm
}

// ReserveIdleMachine claims an idle slot.
func (rm *ResourceManager) ReserveIdleMachine() (SlotID, bool) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if len(rm.free) == 0 {
		return "", false
	}
	s := rm.free[0]
	rm.free = rm.free[1:]
	rm.busy[s] = true
	return s, true
}

// ReleaseMachine returns a slot to the idle pool. Releasing a
// quarantined slot is a no-op success: the job-loss path frees its
// binding, but the slot stays offline until MarkOnline.
func (rm *ResourceManager) ReleaseMachine(s SlotID) error {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	if rm.offline[s] {
		delete(rm.busy, s)
		return nil
	}
	if !rm.busy[s] {
		return fmt.Errorf("cluster: release of non-busy slot %s", s)
	}
	delete(rm.busy, s)
	rm.free = append(rm.free, s)
	return nil
}

// MarkOffline quarantines slots: idle ones leave the free list, busy
// ones keep their binding (the job-loss events will release them into
// quarantine rather than back to idle).
func (rm *ResourceManager) MarkOffline(slots []SlotID) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	for _, s := range slots {
		if rm.offline[s] {
			continue
		}
		rm.offline[s] = true
		for i, f := range rm.free {
			if f == s {
				rm.free = append(rm.free[:i], rm.free[i+1:]...)
				break
			}
		}
	}
}

// MarkOnline restores quarantined slots to the idle pool. Slots still
// carrying a busy binding (release hasn't happened yet) stay busy.
func (rm *ResourceManager) MarkOnline(slots []SlotID) {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	for _, s := range slots {
		if !rm.offline[s] {
			continue
		}
		delete(rm.offline, s)
		if !rm.busy[s] {
			rm.free = append(rm.free, s)
		}
	}
}

// IdleCount reports idle slots.
func (rm *ResourceManager) IdleCount() int {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return len(rm.free)
}

// BusyCount reports slots with a live job binding.
func (rm *ResourceManager) BusyCount() int {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return len(rm.busy)
}

// OfflineCount reports quarantined slots.
func (rm *ResourceManager) OfflineCount() int {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return len(rm.offline)
}

// Total reports all slots: idle + busy + quarantined-idle.
func (rm *ResourceManager) Total() int {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	n := len(rm.free) + len(rm.busy)
	for s := range rm.offline {
		if !rm.busy[s] {
			n++
		}
	}
	return n
}

// ManagedJob is the Job Manager's record for one configuration.
type ManagedJob struct {
	Job       *sched.Job
	Config    param.Config
	Seed      int64
	Idx       int    // creation order
	QueueSeq  int    // idle-queue insertion order (suspends re-enqueue at the back)
	Snapshot  []byte // latest suspend image (nil if never suspended)
	SnapEpoch int    // epoch the snapshot was captured at (re-placement trims history here)
	Busy      int64  // accumulated training nanoseconds
	Best      float64
	HasBest   bool
	// TraceID names the distributed trace every span about this job
	// joins, minted once at creation ("" when tracing is off).
	TraceID string
	// LastSpan is the ID of the most recent retained scheduler span
	// concerning this job — the parent for the job's next placement.
	LastSpan string
}

// JobManager keeps the job table and the priority-ordered idle queue —
// the paper's JM (§4.2) with start/resume/suspend/terminate tracked on
// each job's state machine and labelJob priorities ordering idle jobs.
type JobManager struct {
	mu   sync.Mutex
	jobs map[sched.JobID]*ManagedJob
	next int
}

// NewJobManager returns an empty JM.
func NewJobManager() *JobManager {
	return &JobManager{jobs: make(map[sched.JobID]*ManagedJob)}
}

// Add registers a new pending job.
func (jm *JobManager) Add(id sched.JobID, cfg param.Config, seed int64, maxEpoch int) (*ManagedJob, error) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if _, dup := jm.jobs[id]; dup {
		return nil, fmt.Errorf("cluster: duplicate job %s", id)
	}
	mj := &ManagedJob{
		Job:      sched.NewJob(id, cfg, seed, maxEpoch),
		Config:   cfg,
		Seed:     seed,
		Idx:      jm.next,
		QueueSeq: jm.next,
	}
	jm.next++
	jm.jobs[id] = mj
	return mj, nil
}

// Get looks up a job.
func (jm *JobManager) Get(id sched.JobID) (*ManagedJob, bool) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	mj, ok := jm.jobs[id]
	return mj, ok
}

// GetIdleJob implements the JM's getIdleJob(): the suspended job with
// the highest priority, FIFO by idle-queue insertion order on ties
// (§4.2 — a just-suspended unlabelled job waits behind everything
// already queued, which is what rotates the opportunistic pool).
func (jm *JobManager) GetIdleJob() (*ManagedJob, bool) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	var best *ManagedJob
	for _, mj := range jm.jobs {
		if mj.Job.State() != sched.Suspended {
			continue
		}
		if best == nil {
			best = mj
			continue
		}
		pi, pb := mj.Job.Priority(), best.Job.Priority()
		//hdlint:ignore floateq an exact priority tie deliberately falls back to FIFO order; a tolerance would make rotation order depend on its width
		if pi > pb || (pi == pb && mj.QueueSeq < best.QueueSeq) {
			best = mj
		}
	}
	return best, best != nil
}

// Requeue marks a job's return to the idle queue, sending it behind
// every job queued so far.
func (jm *JobManager) Requeue(id sched.JobID) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if mj, ok := jm.jobs[id]; ok {
		mj.QueueSeq = jm.next
		jm.next++
	}
}

// LabelJob implements labelJob(jobID, priority).
func (jm *JobManager) LabelJob(id sched.JobID, priority float64) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	if mj, ok := jm.jobs[id]; ok {
		mj.Job.SetPriority(priority)
	}
}

// SuspendedCount reports idle (suspended) jobs.
func (jm *JobManager) SuspendedCount() int {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	n := 0
	for _, mj := range jm.jobs {
		if mj.Job.State() == sched.Suspended {
			n++
		}
	}
	return n
}

// Active lists running and suspended jobs.
func (jm *JobManager) Active() []sched.JobID {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	var out []sched.JobID
	for id, mj := range jm.jobs {
		st := mj.Job.State()
		if st == sched.Running || st == sched.Suspended {
			out = append(out, id)
		}
	}
	return out
}

// All returns every managed job.
func (jm *JobManager) All() []*ManagedJob {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	out := make([]*ManagedJob, 0, len(jm.jobs))
	for _, mj := range jm.jobs {
		out = append(out, mj)
	}
	return out
}
