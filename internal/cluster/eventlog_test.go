package cluster

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
)

// failAfter errors on every write after the first n.
type failAfter struct {
	n int
}

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

// gateWriter blocks every Write until released, so tests can hold the
// flusher mid-batch and fill the append buffer deterministically.
type gateWriter struct {
	started chan struct{} // closed when the first Write begins
	release chan struct{} // Writes block until this is closed
	once    sync.Once

	mu    sync.Mutex
	lines int
}

func newGateWriter() *gateWriter {
	return &gateWriter{started: make(chan struct{}), release: make(chan struct{})}
}

func (w *gateWriter) Write(p []byte) (int, error) {
	w.once.Do(func() { close(w.started) })
	<-w.release
	w.mu.Lock()
	w.lines += bytes.Count(p, []byte("\n"))
	w.mu.Unlock()
	return len(p), nil
}

func (w *gateWriter) Lines() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lines
}

func TestEventLogCountsDrops(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewEventLog(&failAfter{n: 2})
	l.Instrument(reg)

	for i := 0; i < 5; i++ {
		l.Log(LogRecord{Kind: "stat", Epoch: i})
	}
	l.Flush()
	// Writes 3..5 fail: the failing write plus every suppressed record.
	if got := l.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[obs.EventLogDroppedTotal]; got != 3 {
		t.Fatalf("%s = %d, want 3", obs.EventLogDroppedTotal, got)
	}
}

// TestEventLogInstrumentBackfill pins the accounting bug where drops
// accrued before Instrument stayed only in Dropped(), leaving the
// registry counter permanently behind the atomic: instrumentation must
// backfill so the two agree exactly from that point on.
func TestEventLogInstrumentBackfill(t *testing.T) {
	l := NewEventLog(&failAfter{n: 0})
	l.Log(LogRecord{Kind: "stat"})
	l.Flush()
	if got := l.Dropped(); got != 1 {
		t.Fatalf("pre-instrument Dropped() = %d, want 1", got)
	}

	reg := obs.NewRegistry()
	l.Instrument(reg)
	if got := reg.Snapshot().Counters[obs.EventLogDroppedTotal]; got != 1 {
		t.Fatalf("counter after Instrument = %d, want 1 (pre-instrument drop not backfilled)", got)
	}

	// And the two stay in lockstep afterwards.
	l.Log(LogRecord{Kind: "stat"})
	l.Flush()
	if got, want := reg.Snapshot().Counters[obs.EventLogDroppedTotal], l.Dropped(); got != want {
		t.Fatalf("counter = %d, Dropped() = %d; must agree exactly", got, want)
	}
	if l.Dropped() != 2 {
		t.Fatalf("Dropped() = %d, want 2", l.Dropped())
	}
}

// TestEventLogBackpressureDeterministicCount wedges the sink mid-batch,
// overfills the append buffer, and checks the drop count to the record:
// with the flusher holding one record and a capacity-4 buffer, exactly
// 4 of the next 100 records fit and 96 drop — and the atomic and the
// registry counter report the identical figure.
func TestEventLogBackpressureDeterministicCount(t *testing.T) {
	reg := obs.NewRegistry()
	w := newGateWriter()
	l := NewEventLogBuffer(w, 4)
	l.Instrument(reg)

	l.Log(LogRecord{Kind: "stat"})
	<-w.started // flusher swapped the buffer and is wedged in Write

	for i := 0; i < 100; i++ {
		l.Log(LogRecord{Kind: "stat", Epoch: i})
	}
	close(w.release)
	l.Flush()

	if got := l.Dropped(); got != 96 {
		t.Fatalf("Dropped() = %d, want 96", got)
	}
	if got := reg.Snapshot().Counters[obs.EventLogDroppedTotal]; got != 96 {
		t.Fatalf("%s = %d, want 96", obs.EventLogDroppedTotal, got)
	}
	if got := w.Lines(); got != 5 {
		t.Fatalf("sink received %d records, want 5 (1 in flight + 4 buffered)", got)
	}
}

// TestEventLogContendedBurstAgreement hammers the log from concurrent
// writers against a small buffer and requires only the invariant the
// drop path promises: whatever was lost, Dropped() and the obs counter
// agree exactly, and accepted+dropped covers every record offered.
func TestEventLogContendedBurstAgreement(t *testing.T) {
	const writers, perWriter = 8, 200
	reg := obs.NewRegistry()
	w := newGateWriter()
	l := NewEventLogBuffer(w, 16)
	l.Instrument(reg)

	l.Log(LogRecord{Kind: "stat"})
	<-w.started
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l.Log(LogRecord{Kind: "stat", Epoch: g*perWriter + i})
			}
		}(g)
	}
	wg.Wait()
	close(w.release)
	l.Flush()

	dropped := l.Dropped()
	if got := reg.Snapshot().Counters[obs.EventLogDroppedTotal]; got != dropped {
		t.Fatalf("counter = %d, Dropped() = %d; must agree exactly after a contended burst", got, dropped)
	}
	if got := int64(w.Lines()) + dropped; got != writers*perWriter+1 {
		t.Fatalf("accepted %d + dropped %d = %d records, want %d", w.Lines(), dropped, got, writers*perWriter+1)
	}
}

func TestEventLogCloseDrains(t *testing.T) {
	var sb strings.Builder
	l := NewEventLog(&sb)
	for i := 0; i < 50; i++ {
		l.Log(LogRecord{Kind: "stat", Epoch: i})
	}
	l.Close()
	if got := strings.Count(sb.String(), "\n"); got != 50 {
		t.Fatalf("after Close sink holds %d records, want 50", got)
	}
	if l.Dropped() != 0 {
		t.Fatalf("healthy log dropped %d", l.Dropped())
	}
	// Logging after Close drops (and counts) rather than panicking.
	l.Log(LogRecord{Kind: "stat"})
	if l.Dropped() != 1 {
		t.Fatalf("post-Close Dropped() = %d, want 1", l.Dropped())
	}
	l.Close() // idempotent
}

func TestEventLogDroppedNilSafe(t *testing.T) {
	var l *EventLog
	if l.Dropped() != 0 {
		t.Fatal("nil EventLog reported drops")
	}
	l.Instrument(obs.NewRegistry()) // must not panic
	l.Log(LogRecord{Kind: "stat"})  // must not panic
	l.Flush()                       // must not panic
	l.Close()                       // must not panic

	healthy := NewEventLog(&strings.Builder{})
	healthy.Instrument(nil) // nil registry must not panic
	healthy.Log(LogRecord{Kind: "stat"})
	healthy.Flush()
	if healthy.Dropped() != 0 {
		t.Fatalf("healthy log dropped %d", healthy.Dropped())
	}
}

// TestEventLogSyncSurvivesFullBuffer pins the terminal-record
// guarantee behind Experiment.finish: with the flusher wedged in the
// sink and the append buffer full, Log drops — but LogSync waits for
// space, so the "stop" line a cancelled experiment writes on the way
// out reaches the sink instead of vanishing. Dropped() and the
// registry counter must agree throughout.
func TestEventLogSyncSurvivesFullBuffer(t *testing.T) {
	reg := obs.NewRegistry()
	w := newGateWriter()
	l := NewEventLogBuffer(w, 1)
	l.Instrument(reg)

	l.Log(LogRecord{Kind: "stat"}) // flusher grabs it and wedges in Write
	<-w.started
	l.Log(LogRecord{Kind: "stat"}) // fills the capacity-1 buffer
	l.Log(LogRecord{Kind: "stat"}) // no space left: the lossy path drops it
	if got := l.Dropped(); got != 1 {
		t.Fatalf("Dropped() = %d after overfilling, want 1", got)
	}

	accepted := make(chan bool)
	go func() { accepted <- l.LogSync(LogRecord{Kind: "stop", Detail: "canceled"}) }()
	select {
	case <-accepted:
		t.Fatal("LogSync returned with the buffer still full")
	case <-time.After(50 * time.Millisecond):
	}

	close(w.release)
	if !<-accepted {
		t.Fatal("LogSync dropped the terminal record")
	}
	l.Close()
	if got := w.Lines(); got != 3 {
		t.Fatalf("sink received %d records, want 3 (two stats + stop)", got)
	}
	if got, want := reg.Snapshot().Counters[obs.EventLogDroppedTotal], l.Dropped(); got != want {
		t.Fatalf("dropped metric %d != Dropped() %d", got, want)
	}
	if got := l.Dropped(); got != 1 {
		t.Fatalf("Dropped() = %d after drain, want 1", got)
	}
}

// TestEventLogSyncClosed: waiting can never succeed on a closed (or
// nil) log, so LogSync must refuse immediately and count the drop
// rather than deadlock a shutting-down experiment.
func TestEventLogSyncClosed(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	l.Close()
	if l.LogSync(LogRecord{Kind: "stop"}) {
		t.Fatal("LogSync accepted a record on a closed log")
	}
	if got := l.Dropped(); got != 1 {
		t.Fatalf("Dropped() = %d, want 1", got)
	}
	var nilLog *EventLog
	if nilLog.LogSync(LogRecord{}) {
		t.Fatal("nil LogSync must return false")
	}
}
