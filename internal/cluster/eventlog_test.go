package cluster

import (
	"errors"
	"strings"
	"testing"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
)

// failAfter errors on every write after the first n.
type failAfter struct {
	n int
}

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("disk full")
	}
	w.n--
	return len(p), nil
}

func TestEventLogCountsDrops(t *testing.T) {
	reg := obs.NewRegistry()
	l := NewEventLog(&failAfter{n: 2})
	l.Instrument(reg)

	for i := 0; i < 5; i++ {
		l.Log(LogRecord{Kind: "stat", Epoch: i})
	}
	// Writes 3..5 fail: the failing write plus every suppressed record.
	if got := l.Dropped(); got != 3 {
		t.Fatalf("Dropped() = %d, want 3", got)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[obs.EventLogDroppedTotal]; got != 3 {
		t.Fatalf("%s = %d, want 3", obs.EventLogDroppedTotal, got)
	}
}

func TestEventLogDroppedNilSafe(t *testing.T) {
	var l *EventLog
	if l.Dropped() != 0 {
		t.Fatal("nil EventLog reported drops")
	}
	l.Instrument(obs.NewRegistry()) // must not panic
	l.Log(LogRecord{Kind: "stat"})  // must not panic

	healthy := NewEventLog(&strings.Builder{})
	healthy.Instrument(nil) // nil registry must not panic
	healthy.Log(LogRecord{Kind: "stat"})
	if healthy.Dropped() != 0 {
		t.Fatalf("healthy log dropped %d", healthy.Dropped())
	}
}
