package cluster

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

// benchSlots builds agents*per slot names in MultiExecutor order
// ("agentN#K"), the same shape the scheduler sees.
func benchSlots(agents, per int) []SlotID {
	out := make([]SlotID, 0, agents*per)
	for a := 0; a < agents; a++ {
		for k := 0; k < per; k++ {
			out = append(out, SlotID(fmt.Sprintf("agent%d#%d", a, k)))
		}
	}
	return out
}

// slotPool is the mutator surface shared by the sharded pool and the
// single-lock reference, so tests and benches drive both identically.
type slotPool interface {
	ReserveIdleMachine() (SlotID, bool)
	ReleaseMachine(SlotID) error
	MarkOffline([]SlotID)
	MarkOnline([]SlotID)
	IdleCount() int
	BusyCount() int
	OfflineCount() int
	Total() int
	Counts() (idle, busy, offline int)
}

var (
	_ slotPool = (*ResourceManager)(nil)
	_ slotPool = (*UnshardedResourceManager)(nil)
)

// TestResourceManagerPartitionInvariant is the regression test for the
// offline/busy double-count bug: quarantining a busy slot used to leave
// it counted under both BusyCount and OfflineCount, so the occupancy
// partition summed past Total(). A busy slot under quarantine must
// count as busy until its binding is released.
func TestResourceManagerPartitionInvariant(t *testing.T) {
	rm := NewResourceManager([]SlotID{"a#0", "a#1", "b#0"})
	s, ok := rm.ReserveIdleMachine()
	if !ok {
		t.Fatal("reserve failed on a fresh pool")
	}
	rm.MarkOffline([]SlotID{s})
	idle, busy, off := rm.IdleCount(), rm.BusyCount(), rm.OfflineCount()
	if idle+busy+off != rm.Total() {
		t.Fatalf("busy slot quarantined: idle %d + busy %d + offline %d = %d, want Total %d",
			idle, busy, off, idle+busy+off, rm.Total())
	}
	if busy != 1 {
		t.Fatalf("quarantined-but-busy slot left BusyCount: busy = %d, want 1", busy)
	}

	// MarkOnline before the release must hand the binding back as plain
	// busy, not mint a second idle copy of the slot.
	rm.MarkOnline([]SlotID{s})
	idle, busy, off = rm.Counts()
	if idle != 2 || busy != 1 || off != 0 {
		t.Fatalf("after online: idle=%d busy=%d offline=%d, want 2/1/0", idle, busy, off)
	}
	if err := rm.ReleaseMachine(s); err != nil {
		t.Fatalf("release after round trip: %v", err)
	}
	if idle, busy, off = rm.Counts(); idle != 3 || busy != 0 || off != 0 {
		t.Fatalf("after release: idle=%d busy=%d offline=%d, want 3/0/0 (no double-counted idle)", idle, busy, off)
	}
}

// TestResourceManagerInvariantRace hammers all four mutators from
// concurrent goroutines while a checker continuously asserts the
// occupancy partition: IdleCount+BusyCount+OfflineCount == Total() at
// every observed instant (the counts are packed into one atomic word,
// so this holds even mid-transition). Run with -race.
func TestResourceManagerInvariantRace(t *testing.T) {
	const agents, per = 32, 8
	slots := benchSlots(agents, per)
	rm := NewResourceManager(slots)

	iters := 3000
	if testing.Short() {
		iters = 600
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g + 1)))
			var held []SlotID
			for i := 0; i < iters; i++ {
				switch rng.Intn(5) {
				case 0, 1:
					if s, ok := rm.ReserveIdleMachine(); ok {
						held = append(held, s)
					}
				case 2:
					if len(held) > 0 {
						k := rng.Intn(len(held))
						if err := rm.ReleaseMachine(held[k]); err != nil {
							t.Errorf("release of held slot %s: %v", held[k], err)
							return
						}
						held[k] = held[len(held)-1]
						held = held[:len(held)-1]
					}
				case 3:
					a := rng.Intn(agents)
					rm.MarkOffline(slots[a*per : (a+1)*per])
				case 4:
					a := rng.Intn(agents)
					rm.MarkOnline(slots[a*per : (a+1)*per])
				}
			}
			for _, s := range held {
				if err := rm.ReleaseMachine(s); err != nil {
					t.Errorf("final release %s: %v", s, err)
				}
			}
		}(g)
	}

	stop := make(chan struct{})
	var checker sync.WaitGroup
	checker.Add(1)
	go func() {
		defer checker.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			idle, busy, off := rm.Counts()
			if idle+busy+off != rm.Total() {
				t.Errorf("partition drift under concurrency: %d+%d+%d != %d", idle, busy, off, rm.Total())
				return
			}
		}
	}()

	wg.Wait()
	close(stop)
	checker.Wait()

	rm.MarkOnline(slots)
	idle, busy, off := rm.Counts()
	if idle != rm.Total() || busy != 0 || off != 0 {
		t.Fatalf("after quiesce+restore: idle=%d busy=%d offline=%d, want %d/0/0", idle, busy, off, rm.Total())
	}
}

// diffDriver applies one logical operation to both pool
// implementations, choosing targets by role (k-th held slot, fresh
// idle slot, full pool) so the two pools — whose reservation orders
// legitimately differ — stay observationally comparable: same
// ok/error results, same occupancy counts after every step.
type diffDriver struct {
	t        *testing.T
	slots    []SlotID
	a, b     slotPool
	heldA    []SlotID
	heldB    []SlotID
	exactIDs bool // single-shard mode: reserve order must match the seed exactly
}

func (d *diffDriver) step(rng *rand.Rand) bool {
	switch rng.Intn(8) {
	case 0, 1, 2: // reserve
		sa, oka := d.a.ReserveIdleMachine()
		sb, okb := d.b.ReserveIdleMachine()
		if oka != okb {
			d.t.Errorf("reserve ok mismatch: sharded %v, seed %v", oka, okb)
			return false
		}
		if oka {
			if d.exactIDs && sa != sb {
				d.t.Errorf("single-shard reserve order diverged: sharded %s, seed %s", sa, sb)
				return false
			}
			d.heldA = append(d.heldA, sa)
			d.heldB = append(d.heldB, sb)
		}
	case 3: // release the k-th held slot
		if len(d.heldA) == 0 {
			return true
		}
		k := rng.Intn(len(d.heldA))
		ea := d.a.ReleaseMachine(d.heldA[k])
		eb := d.b.ReleaseMachine(d.heldB[k])
		if (ea == nil) != (eb == nil) {
			d.t.Errorf("release err mismatch: sharded %v, seed %v", ea, eb)
			return false
		}
		d.heldA = append(d.heldA[:k], d.heldA[k+1:]...)
		d.heldB = append(d.heldB[:k], d.heldB[k+1:]...)
	case 4: // release of a slot outside the pool must error in both
		ea := d.a.ReleaseMachine("no-such-slot")
		eb := d.b.ReleaseMachine("no-such-slot")
		if ea == nil || eb == nil {
			d.t.Errorf("bogus release: sharded err=%v, seed err=%v; want both non-nil", ea, eb)
			return false
		}
	case 5: // quarantine the k-th held (busy) slot
		if len(d.heldA) == 0 {
			return true
		}
		k := rng.Intn(len(d.heldA))
		d.a.MarkOffline([]SlotID{d.heldA[k]})
		d.b.MarkOffline([]SlotID{d.heldB[k]})
	case 6: // quarantine one fresh idle slot (reserve→release→offline)
		sa, oka := d.a.ReserveIdleMachine()
		sb, okb := d.b.ReserveIdleMachine()
		if oka != okb {
			d.t.Errorf("reserve-for-quarantine ok mismatch: %v vs %v", oka, okb)
			return false
		}
		if oka {
			if d.a.ReleaseMachine(sa) != nil || d.b.ReleaseMachine(sb) != nil {
				d.t.Error("release of just-reserved slot failed")
				return false
			}
			d.a.MarkOffline([]SlotID{sa})
			d.b.MarkOffline([]SlotID{sb})
		}
	case 7: // restore the whole pool
		d.a.MarkOnline(d.slots)
		d.b.MarkOnline(d.slots)
	}
	ia, ba, oa := d.a.Counts()
	ib, bb, ob := d.b.Counts()
	if ia != ib || ba != bb || oa != ob {
		d.t.Errorf("counts diverged: sharded %d/%d/%d, seed %d/%d/%d", ia, ba, oa, ib, bb, ob)
		return false
	}
	if ia+ba+oa != d.a.Total() {
		d.t.Errorf("sharded partition %d+%d+%d != Total %d", ia, ba, oa, d.a.Total())
		return false
	}
	return true
}

// TestShardedPoolEquivalence property-checks the sharded pool against
// the single-lock seed implementation: under random role-based op
// sequences on a multi-shard pool, every observable (reserve success,
// release errors, occupancy counts) evolves identically.
func TestShardedPoolEquivalence(t *testing.T) {
	slots := benchSlots(24, 8) // 192 slots -> 3 shards
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := &diffDriver{
			t:     t,
			slots: slots,
			a:     NewResourceManager(slots),
			b:     NewUnshardedResourceManager(slots),
		}
		if d.a.(*ResourceManager).Shards() < 2 {
			t.Fatalf("want a multi-shard pool, got %d shard(s)", d.a.(*ResourceManager).Shards())
		}
		for i := 0; i < 300; i++ {
			if !d.step(rng) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestShardedPoolSingleShardFIFO property-checks the stronger
// single-shard guarantee: pools small enough for one shard preserve
// the seed's exact FIFO reservation order, slot identity for slot
// identity.
func TestShardedPoolSingleShardFIFO(t *testing.T) {
	slots := benchSlots(6, 4) // 24 slots -> 1 shard
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := &diffDriver{
			t:        t,
			slots:    slots,
			a:        NewResourceManager(slots),
			b:        NewUnshardedResourceManager(slots),
			exactIDs: true,
		}
		if d.a.(*ResourceManager).Shards() != 1 {
			t.Fatalf("want a single-shard pool, got %d shards", d.a.(*ResourceManager).Shards())
		}
		for i := 0; i < 200; i++ {
			if !d.step(rng) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestShardedPoolGOMAXPROCSIndependentReplay replays one deterministic
// op schedule under different GOMAXPROCS values and requires identical
// transcripts: shard layout and probe order must derive from the pool
// size only, never from the host's CPU count, or replays would not be
// reproducible across machines.
func TestShardedPoolGOMAXPROCSIndependentReplay(t *testing.T) {
	transcript := func(procs int) []string {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		slots := benchSlots(20, 8) // 160 slots -> multiple shards
		rm := NewResourceManager(slots)
		rng := rand.New(rand.NewSource(11))
		var out []string
		var held []SlotID
		for i := 0; i < 1500; i++ {
			switch rng.Intn(5) {
			case 0, 1:
				s, ok := rm.ReserveIdleMachine()
				out = append(out, fmt.Sprintf("reserve %s %v", s, ok))
				if ok {
					held = append(held, s)
				}
			case 2:
				if len(held) > 0 {
					k := rng.Intn(len(held))
					err := rm.ReleaseMachine(held[k])
					out = append(out, fmt.Sprintf("release %s %v", held[k], err == nil))
					held = append(held[:k], held[k+1:]...)
				}
			case 3:
				a := rng.Intn(20)
				rm.MarkOffline(slots[a*8 : (a+1)*8])
				out = append(out, fmt.Sprintf("offline %d", a))
			case 4:
				a := rng.Intn(20)
				rm.MarkOnline(slots[a*8 : (a+1)*8])
				out = append(out, fmt.Sprintf("online %d", a))
			}
			idle, busy, off := rm.Counts()
			out = append(out, fmt.Sprintf("counts %d %d %d", idle, busy, off))
		}
		return out
	}

	one := transcript(1)
	many := transcript(4)
	if len(one) != len(many) {
		t.Fatalf("transcript lengths differ: %d vs %d", len(one), len(many))
	}
	for i := range one {
		if one[i] != many[i] {
			t.Fatalf("transcripts diverge at step %d: GOMAXPROCS=1 %q, GOMAXPROCS=4 %q", i, one[i], many[i])
		}
	}
}
