package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanContextPropagation(t *testing.T) {
	tr := NewTracer(8)
	trace := tr.NewTraceID()
	if trace == "" {
		t.Fatal("empty trace ID")
	}
	root := tr.StartSpan("decision", "j1", 3, SpanContext{TraceID: trace})
	if got := root.TraceID(); got != trace {
		t.Fatalf("root trace = %q, want %q", got, trace)
	}
	if root.Parent() != "" {
		t.Fatalf("root parent = %q, want empty", root.Parent())
	}
	child := tr.StartSpan("agent_start", "j1", 3, root.Context())
	if child.TraceID() != trace {
		t.Fatalf("child trace = %q, want %q", child.TraceID(), trace)
	}
	if child.Parent() != root.ID() {
		t.Fatalf("child parent = %q, want %q", child.Parent(), root.ID())
	}
	v := child.Snapshot()
	if v.TraceID != trace || v.ParentID != root.ID() {
		t.Fatalf("snapshot trace/parent = %q/%q", v.TraceID, v.ParentID)
	}
	// Zero-parent StartSpan matches Start.
	if s := tr.Start("d", "j", 0); s.TraceID() != "" || s.Parent() != "" {
		t.Fatal("Start produced a traced span")
	}
}

func TestTracerOriginDisambiguatesIDs(t *testing.T) {
	sched := NewTracer(4)
	agent := NewTracer(4)
	agent.SetOrigin("agent:a1")
	a := sched.Start("d", "j", 0)
	b := agent.Start("d", "j", 0)
	if a.ID() == b.ID() {
		t.Fatalf("span IDs collide across origins: %q", a.ID())
	}
	if sched.NewTraceID() == agent.NewTraceID() {
		t.Fatal("trace IDs collide across origins")
	}
	agent2 := NewTracer(4)
	agent2.SetOrigin("agent:a1")
	if agent2.Start("d", "j", 0).ID() != b.ID() {
		t.Fatal("same origin+seq should reproduce the same ID")
	}
}

func TestFlightRecorderBounds(t *testing.T) {
	f := NewFlightRecorder(4, 2)
	tr := NewTracer(64)
	tr.flight = f

	f.JobLive("live-job")
	for i := 0; i < 3; i++ {
		s := tr.Start("decision", "live-job", i)
		s.SetAttr("i", float64(i))
		tr.Finish(s)
	}
	// Per-job cap is 2: one pinned span was shifted out and counted.
	snap := f.Snapshot()
	if got := len(snap.Live["live-job"]); got != 2 {
		t.Fatalf("live spans = %d, want 2", got)
	}
	if snap.Live["live-job"][0].Epoch != 1 || snap.Live["live-job"][1].Epoch != 2 {
		t.Fatalf("expected oldest pinned span dropped, got %+v", snap.Live["live-job"])
	}
	if f.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", f.Dropped())
	}

	// Unpinned spans go to the global ring; overflow evicts + counts.
	for i := 0; i < 6; i++ {
		tr.Finish(tr.Start("decision", "other", i))
	}
	snap = f.Snapshot()
	if len(snap.Recent) != 4 {
		t.Fatalf("recent = %d, want 4 (ring cap)", len(snap.Recent))
	}
	if snap.Recent[0].Epoch != 2 {
		t.Fatalf("oldest retained epoch = %d, want 2", snap.Recent[0].Epoch)
	}
	if f.Dropped() != 3 { // 1 live shift + 2 ring evictions
		t.Fatalf("dropped = %d, want 3", f.Dropped())
	}

	// JobDone releases pinned spans into the ring.
	f.JobDone("live-job")
	snap = f.Snapshot()
	if len(snap.Live) != 0 {
		t.Fatalf("live jobs after done = %v", snap.Live)
	}
	if len(snap.Recent) != 4 {
		t.Fatalf("recent after release = %d, want 4", len(snap.Recent))
	}
	last := snap.Recent[len(snap.Recent)-1]
	if last.Job != "live-job" {
		t.Fatalf("released span not newest in ring: %+v", last)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.JobLive("j")
	f.JobDone("j")
	f.Record(&Span{})
	f.MirrorDrops(NewCounter())
	if f.Dropped() != 0 {
		t.Fatal("nil recorder dropped != 0")
	}
	snap := f.Snapshot()
	if snap.Live == nil || snap.Recent == nil {
		t.Fatal("nil recorder snapshot has nil slices")
	}
}

func TestRegistryFlightWiring(t *testing.T) {
	r := NewRegistry()
	if r.Flight() == nil {
		t.Fatal("registry has no flight recorder")
	}
	r.Flight().JobLive("j")
	s := r.Tracer().Start("decision", "j", 1)
	r.Tracer().Finish(s)
	snap := r.Flight().Snapshot()
	if len(snap.Live["j"]) != 1 {
		t.Fatalf("finished span not forwarded to flight recorder: %+v", snap)
	}
	// Drop mirroring reaches the registry counter.
	for i := 0; i < DefaultFlightPerJob+5; i++ {
		r.Tracer().Finish(r.Tracer().Start("decision", "j", i))
	}
	if got := r.Counter(FlightSpansDroppedTotal).Value(); got != r.Flight().Dropped() || got == 0 {
		t.Fatalf("mirror counter = %d, recorder dropped = %d", got, r.Flight().Dropped())
	}
}

func TestFlightRecorderConcurrency(t *testing.T) {
	f := NewFlightRecorder(16, 4)
	tr := NewTracer(16)
	tr.flight = f
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			job := []string{"a", "b", "c", "d"}[w]
			for i := 0; i < 200; i++ {
				f.JobLive(job)
				tr.Finish(tr.Start("d", job, i))
				if i%10 == 0 {
					f.JobDone(job)
				}
				_ = f.Snapshot()
			}
		}()
	}
	wg.Wait()
}

func TestTraceWriterExportAndValidate(t *testing.T) {
	w := NewTraceWriter()
	base := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	w.Begin("scheduler", "job j0", "run", base, map[string]interface{}{"slot": "s0"})
	w.Complete("scheduler", "decisions", "decision", base.Add(10*time.Millisecond), 2*time.Millisecond,
		map[string]interface{}{"ert_seconds": 12.5, "confidence": 0.9})
	w.Instant("scheduler", "job j0", "classified promising", base.Add(15*time.Millisecond), nil)
	w.End("scheduler", "job j0", base.Add(20*time.Millisecond))
	w.Begin("agent a1", "slot-0", "agent_run j0", base.Add(time.Millisecond), nil)
	// Left open deliberately: Export must force-close it.

	var buf bytes.Buffer
	if err := w.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceEvents(buf.Bytes()); err != nil {
		t.Fatalf("exported trace invalid: %v\n%s", err, buf.String())
	}

	var tf struct {
		TraceEvents []map[string]interface{} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	var procNames, threadNames []string
	minTS := 1e18
	for _, e := range tf.TraceEvents {
		switch e["name"] {
		case "process_name":
			procNames = append(procNames, e["args"].(map[string]interface{})["name"].(string))
		case "thread_name":
			threadNames = append(threadNames, e["args"].(map[string]interface{})["name"].(string))
		}
		if ph := e["ph"].(string); ph != "M" {
			if ts := e["ts"].(float64); ts < minTS {
				minTS = ts
			}
		}
	}
	if minTS != 0 {
		t.Fatalf("timestamps not re-based: min ts = %v", minTS)
	}
	if strings.Join(procNames, ",") != "scheduler,agent a1" {
		t.Fatalf("process names = %v", procNames)
	}
	want := map[string]bool{"job j0": true, "decisions": true, "slot-0": true}
	for _, n := range threadNames {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("missing thread names: %v (got %v)", want, threadNames)
	}
}

func TestTraceWriterNilSafe(t *testing.T) {
	var w *TraceWriter
	now := time.Unix(0, 0)
	w.Begin("p", "t", "n", now, nil)
	w.End("p", "t", now)
	w.Complete("p", "t", "n", now, time.Second, nil)
	w.Instant("p", "t", "n", now, nil)
	var buf bytes.Buffer
	if err := w.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateTraceEvents(buf.Bytes()); err != nil {
		t.Fatalf("nil export invalid: %v", err)
	}
}

func TestValidateTraceEventsRejects(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{"traceEvents":`,
		"unknown phase": `{"traceEvents":[{"name":"x","ph":"Q","ts":0,"pid":1,"tid":1}]}`,
		"unbalanced B":  `{"traceEvents":[{"name":"x","ph":"B","ts":0,"pid":1,"tid":1}]}`,
		"E without B":   `{"traceEvents":[{"name":"x","ph":"E","ts":0,"pid":1,"tid":1}]}`,
		"ts regression": `{"traceEvents":[{"name":"x","ph":"i","ts":5,"pid":1,"tid":1},{"name":"y","ph":"i","ts":3,"pid":1,"tid":1}]}`,
		"negative dur":  `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":-1,"pid":1,"tid":1}]}`,
		"missing name":  `{"traceEvents":[{"ph":"i","ts":0,"pid":1,"tid":1}]}`,
		"negative ts":   `{"traceEvents":[{"name":"x","ph":"i","ts":-2,"pid":1,"tid":1}]}`,
	}
	for label, data := range cases {
		if err := ValidateTraceEvents([]byte(data)); err == nil {
			t.Errorf("%s: validator accepted invalid trace", label)
		}
	}
	ok := `{"traceEvents":[{"name":"x","ph":"B","ts":0,"pid":1,"tid":1},{"name":"x","ph":"E","ts":4,"pid":1,"tid":1}]}`
	if err := ValidateTraceEvents([]byte(ok)); err != nil {
		t.Errorf("validator rejected valid trace: %v", err)
	}
	// Distinct tracks have independent timestamp order.
	multi := `{"traceEvents":[{"name":"x","ph":"i","ts":9,"pid":1,"tid":1},{"name":"y","ph":"i","ts":1,"pid":1,"tid":2}]}`
	if err := ValidateTraceEvents([]byte(multi)); err != nil {
		t.Errorf("validator rejected per-track-ordered trace: %v", err)
	}
}

func TestRuntimeSampler(t *testing.T) {
	r := NewRegistry()
	stop := StartRuntimeSampler(r, 10*time.Millisecond)
	defer stop()
	if r.Gauge(GoGoroutines).Value() < 1 {
		t.Fatalf("goroutines gauge = %v after initial sample", r.Gauge(GoGoroutines).Value())
	}
	if r.Gauge(GoHeapBytes).Value() <= 0 {
		t.Fatalf("heap gauge = %v after initial sample", r.Gauge(GoHeapBytes).Value())
	}
	stop()
	stop() // idempotent
	// Nil registry: no-op stop.
	StartRuntimeSampler(nil, time.Millisecond)()
}
