package obs

import "sync"

// FlightRecorder is the bounded span store behind GET /debug/obs/spans:
// it retains the last N finished spans globally, plus every finished
// span belonging to a job that is still live (up to a per-job cap), so
// a crash or a stall can always be reconstructed from the spans that
// explain the jobs currently on the cluster. Everything beyond the
// bounds is dropped and counted — the recorder never grows without
// limit and never blocks the tracing hot path on more than one mutex.
//
// A nil *FlightRecorder is a valid no-op sink.
type FlightRecorder struct {
	mu      sync.Mutex
	ring    []*Span
	pos, n  int
	live    map[string][]*Span
	perJob  int
	dropped int64
	mirror  *Counter        // optional registry counter mirroring drops
	lazy    func() *Counter // resolves mirror on first drop (Registry)
}

// DefaultFlightCapacity and DefaultFlightPerJob bound the recorder a
// Registry creates implicitly.
const (
	DefaultFlightCapacity = 256
	DefaultFlightPerJob   = 128
)

// NewFlightRecorder returns a recorder retaining up to capacity
// finished spans globally and perJob spans for each live job (minimums
// 1).
func NewFlightRecorder(capacity, perJob int) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	if perJob < 1 {
		perJob = 1
	}
	return &FlightRecorder{
		ring:   make([]*Span, capacity),
		live:   make(map[string][]*Span),
		perJob: perJob,
	}
}

// MirrorDrops publishes future drop counts to c as well as the
// internal counter.
func (f *FlightRecorder) MirrorDrops(c *Counter) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.mirror = c
	f.mu.Unlock()
}

// mirrorLazily defers mirror-counter creation until the first drop, so
// attaching a recorder to a registry does not register a metric series
// that may never be needed.
func (f *FlightRecorder) mirrorLazily(resolve func() *Counter) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.lazy = resolve
	f.mu.Unlock()
}

// syncDrops raises the mirror counter to dropped, resolving the lazy
// mirror on the first real drop. Called outside f.mu (resolve may take
// the registry lock).
func (f *FlightRecorder) syncDrops(dropped int64) {
	if dropped == 0 {
		return
	}
	f.mu.Lock()
	c, resolve := f.mirror, f.lazy
	f.mu.Unlock()
	if c == nil {
		if resolve == nil {
			return
		}
		c = resolve()
		f.mu.Lock()
		f.mirror = c
		f.mu.Unlock()
	}
	if delta := dropped - c.Value(); delta > 0 {
		c.Add(delta)
	}
}

// JobLive marks job as live: its spans are pinned outside the global
// ring until JobDone.
func (f *FlightRecorder) JobLive(job string) {
	if f == nil || job == "" {
		return
	}
	f.mu.Lock()
	if _, ok := f.live[job]; !ok {
		f.live[job] = nil
	}
	f.mu.Unlock()
}

// JobDone releases job's pinned spans into the global ring (oldest
// first, so they age out like any other finished span).
func (f *FlightRecorder) JobDone(job string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	spans := f.live[job]
	delete(f.live, job)
	for _, s := range spans {
		f.insertLocked(s)
	}
	dropped := f.dropped
	f.mu.Unlock()
	f.syncDrops(dropped)
}

// Record stores one finished span: pinned under its job while the job
// is live, otherwise in the global ring. Called by Tracer.Finish.
func (f *FlightRecorder) Record(s *Span) {
	if f == nil || s == nil {
		return
	}
	f.mu.Lock()
	if spans, ok := f.live[s.job]; ok && s.job != "" {
		if len(spans) >= f.perJob {
			// Shift out the oldest pinned span; the cap holds.
			copy(spans, spans[1:])
			spans[len(spans)-1] = s
			f.dropped++
		} else {
			spans = append(spans, s)
		}
		f.live[s.job] = spans
	} else {
		f.insertLocked(s)
	}
	dropped := f.dropped
	f.mu.Unlock()
	f.syncDrops(dropped)
}

// insertLocked ring-inserts s, counting the eviction once the ring has
// wrapped. Callers hold f.mu.
func (f *FlightRecorder) insertLocked(s *Span) {
	if f.ring[f.pos] != nil {
		f.dropped++
	}
	f.ring[f.pos] = s
	f.pos = (f.pos + 1) % len(f.ring)
	if f.n < len(f.ring) {
		f.n++
	}
}

// Dropped returns how many spans fell off the bounds so far.
func (f *FlightRecorder) Dropped() int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// FlightView is the recorder's JSON-serializable snapshot.
type FlightView struct {
	// Live maps each live job to its pinned spans, oldest first.
	Live map[string][]View `json:"live"`
	// Recent is the global ring of finished spans, oldest first.
	Recent []View `json:"recent"`
	// Dropped counts spans lost to the bounds since startup.
	Dropped int64 `json:"dropped"`
}

// Snapshot copies the recorder's current contents.
func (f *FlightRecorder) Snapshot() FlightView {
	v := FlightView{Live: map[string][]View{}, Recent: []View{}}
	if f == nil {
		return v
	}
	f.mu.Lock()
	start := f.pos - f.n
	if start < 0 {
		start += len(f.ring)
	}
	ring := make([]*Span, 0, f.n)
	for i := 0; i < f.n; i++ {
		ring = append(ring, f.ring[(start+i)%len(f.ring)])
	}
	live := make(map[string][]*Span, len(f.live))
	for job, spans := range f.live {
		live[job] = append([]*Span(nil), spans...)
	}
	v.Dropped = f.dropped
	f.mu.Unlock()

	// Snapshot the spans outside f.mu: each takes its own span mutex.
	for _, s := range ring {
		v.Recent = append(v.Recent, s.Snapshot())
	}
	for job, spans := range live {
		views := make([]View, 0, len(spans))
		for _, s := range spans {
			views = append(views, s.Snapshot())
		}
		v.Live[job] = views
	}
	return v
}
