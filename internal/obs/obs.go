// Package obs is HyperDrive's observability layer: a stdlib-only
// metrics registry (counters, gauges, bucketed histograms), a decision
// tracer that attributes every scheduling verdict to the inputs the
// policy saw, and a live introspection HTTP endpoint serving
// Prometheus-text and JSON snapshots.
//
// The package is dependency-free by design so every layer of the
// runtime — the cluster engine, the policies, the curve predictor, the
// simulator, and the node agent — can instrument itself without import
// cycles. All handle types (*Counter, *Gauge, *Histogram, *Span,
// *Tracer, *Registry) are nil-safe no-ops, so unconfigured callers pay
// a single nil check on the hot path and existing benchmarks are
// untouched.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a standalone counter not attached to a registry.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// NewGauge returns a standalone gauge not attached to a registry.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a bucketed distribution with atomic observation. Bucket
// boundaries are upper bounds (inclusive), strictly increasing; an
// implicit +Inf bucket catches the tail.
type Histogram struct {
	uppers  []float64
	counts  []atomic.Int64 // len(uppers)+1, last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// DefBuckets is the default latency bucket layout in seconds: 1µs to
// ~16s in powers of four — wide enough for both sub-millisecond
// decision handling and multi-second MCMC fits.
var DefBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 256e-3, 1, 4, 16,
}

// NewHistogram returns a standalone histogram over the given upper
// bounds (DefBuckets when none are given). Bounds are sorted and
// deduplicated.
func NewHistogram(uppers ...float64) *Histogram {
	if len(uppers) == 0 {
		uppers = DefBuckets
	}
	us := append([]float64(nil), uppers...)
	sort.Float64s(us)
	dedup := us[:0]
	for i, u := range us {
		//hdlint:ignore floateq deduplicating identical configured bounds wants exact equality; near-equal bounds are distinct buckets by design
		if i == 0 || u != us[i-1] {
			dedup = append(dedup, u)
		}
	}
	return &Histogram{uppers: dedup, counts: make([]atomic.Int64, len(dedup)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.uppers, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns total observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// snapshotCounts returns cumulative bucket counts aligned to uppers,
// plus the +Inf total.
func (h *Histogram) snapshotCounts() (cum []int64, total int64) {
	cum = make([]int64, len(h.uppers))
	var acc int64
	for i := range h.uppers {
		acc += h.counts[i].Load()
		cum[i] = acc
	}
	return cum, acc + h.counts[len(h.uppers)].Load()
}

// Quantile estimates the q-quantile (0..1) by linear interpolation
// within the containing bucket — the standard Prometheus
// histogram_quantile estimate. NaN with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return math.NaN()
	}
	cum, total := h.snapshotCounts()
	if total == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var prevCum int64
	lower := 0.0
	for i, c := range cum {
		if float64(c) >= rank {
			width := h.uppers[i] - lower
			inBucket := float64(c - prevCum)
			if inBucket == 0 {
				return h.uppers[i]
			}
			return lower + width*(rank-float64(prevCum))/inBucket
		}
		prevCum = c
		lower = h.uppers[i]
	}
	// Tail bucket: the best estimate is the largest finite bound.
	return h.uppers[len(h.uppers)-1]
}

// Registry is a named collection of metrics plus the decision tracer
// and the published job classification table. A nil *Registry is a
// valid no-op sink.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	tracer   *Tracer
	flight   *FlightRecorder
	table    atomic.Value // []JobRow
	quality  atomic.Pointer[QualityAudit]
	history  atomic.Pointer[History]
}

// NewRegistry returns an empty registry with a 512-span tracer and a
// default-bounded flight recorder fed by the tracer's finished spans.
func NewRegistry() *Registry {
	r := &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		tracer:   NewTracer(512),
		flight:   NewFlightRecorder(DefaultFlightCapacity, DefaultFlightPerJob),
	}
	r.tracer.flight = r.flight
	r.flight.mirrorLazily(func() *Counter { return r.Counter(FlightSpansDroppedTotal) })
	return r
}

// Counter returns the counter registered under name, creating it on
// first use. Name may carry a Prometheus label suffix, e.g.
// `hyperdrive_decisions_total{decision="suspend"}`; series sharing a
// family name are grouped in the text encoding. Nil registries return
// nil (no-op) handles.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = NewCounter()
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = NewGauge()
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds (DefBuckets when omitted) on first use.
// Bounds are fixed at creation; later calls ignore them.
func (r *Registry) Histogram(name string, uppers ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = NewHistogram(uppers...)
	r.hists[name] = h
	return h
}

// Tracer returns the registry's decision tracer (nil on a nil
// registry).
func (r *Registry) Tracer() *Tracer {
	if r == nil {
		return nil
	}
	return r.tracer
}

// Flight returns the registry's flight recorder (nil on a nil
// registry).
func (r *Registry) Flight() *FlightRecorder {
	if r == nil {
		return nil
	}
	return r.flight
}

// EnableQuality attaches a search-quality audit trail to the registry
// and binds its aggregate metrics (the hyperdrive_quality_* family).
// Idempotent: repeated calls return the existing audit (meta is
// applied only on first enable). Nil registries return nil (the audit
// handle itself is nil-safe).
func (r *Registry) EnableQuality(meta QualityMeta) *QualityAudit {
	if r == nil {
		return nil
	}
	if q := r.quality.Load(); q != nil {
		return q
	}
	q := NewQualityAudit(meta)
	q.bind(r)
	if !r.quality.CompareAndSwap(nil, q) {
		return r.quality.Load()
	}
	return q
}

// Quality returns the registry's audit trail (nil until EnableQuality;
// nil is a valid no-op handle).
func (r *Registry) Quality() *QualityAudit {
	if r == nil {
		return nil
	}
	return r.quality.Load()
}

// EnableHistory attaches a bounded metrics history store (capacity
// points per series; DefaultHistoryCapacity when non-positive).
// Idempotent: repeated calls return the existing store.
func (r *Registry) EnableHistory(capacity int) *History {
	if r == nil {
		return nil
	}
	if h := r.history.Load(); h != nil {
		return h
	}
	h := NewHistory(capacity)
	if !r.history.CompareAndSwap(nil, h) {
		return r.history.Load()
	}
	return h
}

// History returns the registry's history store (nil until
// EnableHistory; nil is a valid no-op handle).
func (r *Registry) History() *History {
	if r == nil {
		return nil
	}
	return r.history.Load()
}

// JobRow is one line of the live job classification table: what the
// scheduler currently believes about one configuration.
type JobRow struct {
	Job        string  `json:"job"`
	State      string  `json:"state"` // pending|running|suspended|terminated|completed
	Class      string  `json:"class"` // promising|opportunistic|poor|"" (unclassified)
	Epoch      int     `json:"epoch"`
	Best       float64 `json:"best"`
	Confidence float64 `json:"confidence"`
	ERTSeconds float64 `json:"ert_seconds"`
	Priority   float64 `json:"priority"`
}

// PublishJobTable atomically replaces the job classification table
// served by the introspection endpoint. Callers publish a fresh slice
// and must not mutate it afterwards.
func (r *Registry) PublishJobTable(rows []JobRow) {
	if r == nil {
		return
	}
	if rows == nil {
		rows = []JobRow{}
	}
	r.table.Store(rows)
}

// JobTable returns the last published classification table (nil when
// none has been published).
func (r *Registry) JobTable() []JobRow {
	if r == nil {
		return nil
	}
	rows, _ := r.table.Load().([]JobRow)
	return rows
}

// Instrumentable is implemented by components that can bind their
// metrics to a registry (policies, predictors, event logs). Engines
// call Instrument once at setup, before the run starts.
type Instrumentable interface {
	Instrument(r *Registry)
}

// names returns the sorted names of one metric map.
func sortedNames[M any](m map[string]M) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
