package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzReadQualityLog feeds arbitrary bytes to the quality-log reader.
// Invariants: no panic; any log it accepts must re-serialize cleanly,
// and the re-serialized bytes must parse again (write∘read fixpoint —
// the property hdreport relies on when it rewrites audit logs).
func FuzzReadQualityLog(f *testing.F) {
	f.Add([]byte(`{"kind":"meta","meta":{}}` + "\n"))
	f.Add([]byte(`{"kind":"oracle","oracle":{"jobId":"j1"}}` + "\n"))
	f.Add([]byte(`{"kind":"pred","pred":{"jobId":"j1"}}` + "\n" +
		`{"kind":"outcome","outcome":{"jobId":"j1"}}` + "\n"))
	f.Add([]byte(`{"kind":"mystery"}` + "\n")) // unknown kind: skipped
	f.Add([]byte(`{not json}` + "\n"))
	f.Add([]byte("\n\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		q, err := ReadQualityLog(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := q.WriteLog(&buf); err != nil {
			t.Fatalf("WriteLog of accepted log failed: %v", err)
		}
		if _, err := ReadQualityLog(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-read of re-written log failed: %v", err)
		}
	})
}

// FuzzValidateTraceEvents feeds arbitrary bytes to the trace validator.
// Invariants: no panic; a trace that validates still validates after a
// decode/encode round trip (the validator must not depend on JSON
// formatting details).
func FuzzValidateTraceEvents(f *testing.F) {
	f.Add([]byte(`{"traceEvents":[]}`))
	f.Add([]byte(`{"traceEvents":[{"name":"proc","ph":"M","pid":1,"tid":0},` +
		`{"name":"fit","ph":"B","ts":0,"pid":1,"tid":0},` +
		`{"name":"fit","ph":"E","ts":5,"pid":1,"tid":0}]}`))
	f.Add([]byte(`{"traceEvents":[{"name":"step","ph":"X","ts":1,"dur":2,"pid":1,"tid":1}]}`))
	f.Add([]byte(`{"traceEvents":[{"name":"bad","ph":"E","ts":0,"pid":1,"tid":0}]}`))
	f.Add([]byte(`{"traceEvents":[{"name":"","ph":"i","ts":0,"pid":1,"tid":0}]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{`))

	f.Fuzz(func(t *testing.T, data []byte) {
		if err := ValidateTraceEvents(data); err != nil {
			return
		}
		var tf traceFile
		if err := json.Unmarshal(data, &tf); err != nil {
			t.Fatalf("validated trace does not unmarshal: %v", err)
		}
		re, err := json.Marshal(tf)
		if err != nil {
			t.Fatalf("validated trace does not re-marshal: %v", err)
		}
		if err := ValidateTraceEvents(re); err != nil {
			t.Fatalf("re-marshaled trace no longer validates: %v", err)
		}
	})
}
