package obs

import "fmt"

// Canonical metric names. The live cluster engine and the simulator
// record the same names so their telemetry is directly comparable;
// DESIGN.md §10 is the authoritative catalogue.
const (
	// DecisionLatencySeconds is the wall-clock histogram of one full
	// OnIterationFinish round trip (estimate → classify → allocate).
	DecisionLatencySeconds = "hyperdrive_decision_latency_seconds"
	// MCMCFitsTotal counts learning-curve posterior fits.
	MCMCFitsTotal = "hyperdrive_mcmc_fits_total"
	// MCMCFitDurationSeconds is the wall-clock histogram of one MCMC
	// ensemble fit.
	MCMCFitDurationSeconds = "hyperdrive_mcmc_fit_duration_seconds"
	// MCMCFitErrorsTotal counts fits that returned an error.
	MCMCFitErrorsTotal = "hyperdrive_mcmc_fit_errors_total"
	// MCMCAcceptRate is the last fit's MCMC acceptance rate.
	MCMCAcceptRate = "hyperdrive_mcmc_accept_rate"
	// MCMCParallelWorkers gauges the worker-pool size the sampler fans
	// logPosterior evaluations across (1 = fully serial). Results are
	// bit-identical for every value; the gauge exists so measured fit
	// latency can be read against the parallelism that produced it.
	MCMCParallelWorkers = "hyperdrive_mcmc_parallel_workers"
	// MCMCFitSpeedup is the serial/parallel fit-latency ratio last
	// measured by hdbench -fit-bench on this host.
	MCMCFitSpeedup = "hyperdrive_mcmc_fit_speedup"

	// EpochsTotal counts completed training epochs across all jobs.
	EpochsTotal = "hyperdrive_epochs_total"
	// EpochDurationSeconds is the experiment-clock histogram of epoch
	// durations (the inverse of per-slot epochs-per-second).
	EpochDurationSeconds = "hyperdrive_epoch_duration_seconds"

	// StartsTotal / ResumesTotal / SuspendsTotal / TerminationsTotal /
	// CompletionsTotal count job lifecycle transitions.
	StartsTotal       = "hyperdrive_starts_total"
	ResumesTotal      = "hyperdrive_resumes_total"
	SuspendsTotal     = "hyperdrive_suspends_total"
	TerminationsTotal = "hyperdrive_terminations_total"
	CompletionsTotal  = "hyperdrive_completions_total"

	// SlotsTotal / SlotsBusy track the machine pool.
	SlotsTotal = "hyperdrive_slots_total"
	SlotsBusy  = "hyperdrive_slots_busy"
	// PoolPromisingSlots / PoolOpportunisticSlots split the pool into
	// POP's exploitation and exploration shares (§3.2).
	PoolPromisingSlots     = "hyperdrive_pool_promising_slots"
	PoolOpportunisticSlots = "hyperdrive_pool_opportunistic_slots"
	// PoolPromisingJobs / PoolOpportunisticJobs count classified jobs.
	PoolPromisingJobs     = "hyperdrive_pool_promising_jobs"
	PoolOpportunisticJobs = "hyperdrive_pool_opportunistic_jobs"
	// ClassificationThreshold is POP's dynamically chosen p_thred.
	ClassificationThreshold = "hyperdrive_classification_threshold"

	// JobsActive / JobsSuspended gauge the job table.
	JobsActive    = "hyperdrive_jobs_active"
	JobsSuspended = "hyperdrive_jobs_suspended"
	// BestMetric is the best raw metric observed so far.
	BestMetric = "hyperdrive_best_metric"

	// EventLogDroppedTotal counts event-log records lost to write
	// errors (a dead log is visible instead of silent).
	EventLogDroppedTotal = "hyperdrive_eventlog_dropped_total"

	// AgentJobsRunning / AgentStatsTotal / AgentSnapshotsTotal are the
	// node agent's view of its own slots.
	AgentJobsRunning    = "hyperdrive_agent_jobs_running"
	AgentStatsTotal     = "hyperdrive_agent_stats_total"
	AgentSnapshotsTotal = "hyperdrive_agent_snapshots_total"

	// SlotsOffline gauges slots quarantined because their agent is
	// unreachable: capacity the scheduler knows it must not use.
	SlotsOffline = "hyperdrive_slots_offline"
	// AgentFailuresTotal counts agent-down declarations (missed
	// heartbeats or connection loss).
	AgentFailuresTotal = "hyperdrive_agent_failures_total"
	// JobReplacementsTotal counts jobs lost with a usable snapshot that
	// were re-queued for resumption on a healthy slot instead of being
	// terminated.
	JobReplacementsTotal = "hyperdrive_job_replacements_total"
	// HeartbeatRTTSeconds is the scheduler-side histogram of
	// ping→pong round-trip times to node agents.
	HeartbeatRTTSeconds = "hyperdrive_heartbeat_rtt_seconds"

	// GoGoroutines / GoHeapBytes / GoGCPauseSeconds are the runtime
	// health samples taken by StartRuntimeSampler: goroutine count,
	// live heap bytes, and the GC stop-the-world pause distribution.
	GoGoroutines     = "hyperdrive_go_goroutines"
	GoHeapBytes      = "hyperdrive_go_heap_bytes"
	GoGCPauseSeconds = "hyperdrive_go_gc_pause_seconds"

	// FlightSpansDroppedTotal counts spans the flight recorder evicted
	// past its bounds (global ring wrap + per-live-job cap overflow).
	FlightSpansDroppedTotal = "hyperdrive_flight_spans_dropped_total"

	// QualityPredictionsTotal counts decision-time predictions captured
	// by the search-quality audit trail.
	QualityPredictionsTotal = "hyperdrive_quality_predictions_total"
	// QualityPredictionsDroppedTotal counts predictions discarded past
	// the audit's bound (the trail is bounded, never silent).
	QualityPredictionsDroppedTotal = "hyperdrive_quality_predictions_dropped_total"
	// QualityOutcomesTotal counts realized job outcomes joined against
	// the prediction trail.
	QualityOutcomesTotal = "hyperdrive_quality_outcomes_total"
	// QualityClassChurnTotal counts pool-classification changes
	// (promising <-> opportunistic <-> poor flips across decisions).
	QualityClassChurnTotal = "hyperdrive_quality_class_churn_total"
	// QualityBrierScore gauges the running Brier score of reach-target
	// confidence against realized (or oracle) outcomes; lower is better.
	QualityBrierScore = "hyperdrive_quality_brier_score"
	// QualityBandCoverageRatio gauges the fraction of realized final
	// metrics that landed inside the predicted credible band.
	QualityBandCoverageRatio = "hyperdrive_quality_band_coverage_ratio"
	// QualityERTAbsErrorSeconds is the histogram of |predicted ERT -
	// actual remaining training time| for jobs whose ground truth is
	// known.
	QualityERTAbsErrorSeconds = "hyperdrive_quality_ert_abs_error_seconds"
	// QualityEarlyTermPrecision / QualityEarlyTermRecall gauge the
	// early-termination confusion against oracle ground truth:
	// precision = terminated jobs that truly would not have reached the
	// target; recall = truly-poor jobs the scheduler terminated.
	QualityEarlyTermPrecision = "hyperdrive_quality_early_term_precision"
	QualityEarlyTermRecall    = "hyperdrive_quality_early_term_recall"
)

// DecisionsTotal returns the labeled series name counting
// OnIterationFinish verdicts, e.g.
// hyperdrive_decisions_total{decision="suspend"}.
func DecisionsTotal(decision string) string {
	return fmt.Sprintf(`hyperdrive_decisions_total{decision=%q}`, decision)
}

// SlotEpochsPerSecond returns the labeled per-slot training-rate gauge
// name, e.g. hyperdrive_slot_epochs_per_second{slot="s0"}.
func SlotEpochsPerSecond(slot string) string {
	return fmt.Sprintf(`hyperdrive_slot_epochs_per_second{slot=%q}`, slot)
}

// AgentUp returns the labeled liveness gauge name for one agent, e.g.
// hyperdrive_agent_up{agent="a1"}: 1 while the supervisor holds a
// healthy connection, 0 while the agent is down/reconnecting.
func AgentUp(agent string) string {
	return fmt.Sprintf(`hyperdrive_agent_up{agent=%q}`, agent)
}

// AgentReconnectsTotal returns the labeled counter name of successful
// re-handshakes to one agent, e.g.
// hyperdrive_agent_reconnects_total{agent="a1"}.
func AgentReconnectsTotal(agent string) string {
	return fmt.Sprintf(`hyperdrive_agent_reconnects_total{agent=%q}`, agent)
}

// Multi-tenant service (hyperdrived) metric names.
const (
	// ServeExperimentsActive gauges how many hosted experiments are
	// currently running or paused in the server.
	ServeExperimentsActive = "hyperdrive_serve_experiments_active"
	// ServeExperimentsTotal counts experiments admitted since boot.
	ServeExperimentsTotal = "hyperdrive_serve_experiments_total"
	// ServeAdmissionRejectsTotal counts submissions refused by
	// admission control (max-experiments cap or slot budget), i.e. the
	// 429s that carry a Retry-After.
	ServeAdmissionRejectsTotal = "hyperdrive_serve_admission_rejects_total"
	// ServeRateLimitedTotal counts API requests refused by the
	// per-tenant token bucket.
	ServeRateLimitedTotal = "hyperdrive_serve_rate_limited_total"
	// ServeRequestsTotal counts API requests that passed rate limiting.
	ServeRequestsTotal = "hyperdrive_serve_requests_total"
	// ServeSubmitToDecisionSeconds is the histogram of wall-clock time
	// from an experiment's admission to its first scheduling decision —
	// the service-level "how long until the scheduler is actually
	// working on my experiment" latency.
	ServeSubmitToDecisionSeconds = "hyperdrive_serve_submit_to_decision_seconds"
)

// TenantHeldSlots returns the labeled gauge name of slots a tenant's
// experiments currently hold, e.g. hyperdrive_tenant_held_slots{tenant="a"}.
func TenantHeldSlots(tenant string) string {
	return fmt.Sprintf(`hyperdrive_tenant_held_slots{tenant=%q}`, tenant)
}

// TenantShareSlots returns the labeled gauge name of a tenant's
// current weighted fair share of the slot pool, e.g.
// hyperdrive_tenant_share_slots{tenant="a"}.
func TenantShareSlots(tenant string) string {
	return fmt.Sprintf(`hyperdrive_tenant_share_slots{tenant=%q}`, tenant)
}

// Fleet observability (hyperdrived server-wide telemetry) names.
const (
	// ServeHTTPInFlight gauges API requests currently being handled.
	ServeHTTPInFlight = "hyperdrive_serve_http_in_flight"
	// ServeFairshareAttainment is the histogram of held/share ratios
	// sampled across active leases: 1.0 means a lease holds exactly its
	// fair share, mass below 1 means tenants run under their entitlement
	// (contention), mass above 1 means borrowing of idle capacity.
	ServeFairshareAttainment = "hyperdrive_serve_fairshare_attainment"
	// ServeStarvedLeases gauges how many active leases are currently
	// starved: below fair share with demand the pool is not meeting.
	ServeStarvedLeases = "hyperdrive_serve_starved_leases"
	// ServeLeaseReleaseMismatchTotal counts ReleaseMachine calls on
	// slots the lease did not hold — always a caller bug, previously an
	// uncounted error return.
	ServeLeaseReleaseMismatchTotal = "hyperdrive_serve_lease_release_mismatch_total"
)

// AttainmentBuckets is the bucket layout for the fair-share attainment
// histogram: fine resolution below 1 (under-share severity), coarse
// above (borrowing multiples).
var AttainmentBuckets = []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1, 1.25, 1.5, 2, 4}

// ServeHTTPRequestSeconds returns the labeled per-route API latency
// histogram name, e.g. hyperdrive_serve_http_request_seconds{route="submit"}.
func ServeHTTPRequestSeconds(route string) string {
	return fmt.Sprintf(`hyperdrive_serve_http_request_seconds{route=%q}`, route)
}

// ServeHTTPResponsesTotal returns the labeled status-class counter
// name, e.g. hyperdrive_serve_http_responses_total{class="2xx"}.
func ServeHTTPResponsesTotal(class string) string {
	return fmt.Sprintf(`hyperdrive_serve_http_responses_total{class=%q}`, class)
}

// ServeRateLimitRejectsTotal returns the labeled per-tenant counter of
// API requests refused by the token bucket, e.g.
// hyperdrive_serve_ratelimit_rejects_total{tenant="a"}.
func ServeRateLimitRejectsTotal(tenant string) string {
	return fmt.Sprintf(`hyperdrive_serve_ratelimit_rejects_total{tenant=%q}`, tenant)
}

// ServeRetryAfterSeconds returns the labeled per-tenant histogram of
// Retry-After hints sent with 429s — the backpressure a tenant is
// being asked to absorb, not just how often it is bounced.
func ServeRetryAfterSeconds(tenant string) string {
	return fmt.Sprintf(`hyperdrive_serve_retry_after_seconds{tenant=%q}`, tenant)
}

// ServeFeedDroppedTotal returns the labeled per-experiment counter of
// event records the server shed for that experiment: router overflow
// on lossy kinds plus feed-ring evictions past the retention bound.
func ServeFeedDroppedTotal(experiment string) string {
	return fmt.Sprintf(`hyperdrive_serve_feed_dropped_total{experiment=%q}`, experiment)
}

// ServeLeaseHeld returns the labeled gauge of slots a tenant's leases
// hold right now, e.g. hyperdrive_serve_lease_held{tenant="a"}.
func ServeLeaseHeld(tenant string) string {
	return fmt.Sprintf(`hyperdrive_serve_lease_held{tenant=%q}`, tenant)
}

// ServeLeaseShare returns the labeled gauge of a tenant's summed lease
// allowances — the slots the broker currently owes it.
func ServeLeaseShare(tenant string) string {
	return fmt.Sprintf(`hyperdrive_serve_lease_share{tenant=%q}`, tenant)
}

// ServeLeaseDeficit returns the labeled gauge of how many slots a
// tenant's leases are owed but do not hold (allowance minus held,
// floored at zero, summed over its leases).
func ServeLeaseDeficit(tenant string) string {
	return fmt.Sprintf(`hyperdrive_serve_lease_deficit{tenant=%q}`, tenant)
}

// ServeLeaseStarvedSeconds returns the labeled gauge of the longest
// time any of a tenant's leases has been starved (below fair share
// with unmet demand); 0 when none are.
func ServeLeaseStarvedSeconds(tenant string) string {
	return fmt.Sprintf(`hyperdrive_serve_lease_starved_seconds{tenant=%q}`, tenant)
}
