package obs

import (
	"fmt"
	"io"
	"sort"
)

// RollupChild is one per-experiment registry contributing to a fleet
// rollup, identified by the label value its series are namespaced
// under (e.g. the experiment ID).
type RollupChild struct {
	ID  string
	Reg *Registry
}

// injectLabel returns the series name with label=value appended to its
// label set, creating one if the name is unlabeled:
//
//	injectLabel(`x_total`, "experiment", "e1")                -> `x_total{experiment="e1"}`
//	injectLabel(`x_total{decision="suspend"}`, "experiment", "e1")
//	   -> `x_total{decision="suspend",experiment="e1"}`
func injectLabel(name, label, value string) string {
	fam, labels := splitSeries(name)
	if labels == "" {
		return fmt.Sprintf("%s{%s=%q}", fam, label, value)
	}
	return fmt.Sprintf("%s{%s,%s=%q}", fam, labels, label, value)
}

// WritePrometheusRollup encodes the root registry's metrics merged
// with every child registry's metrics, each child series namespaced by
// injecting label=childID into its label set. The merged set is
// emitted as one valid exposition document: series sharing a family
// (e.g. the same counter across experiments) are grouped under a
// single # TYPE line.
//
// Children whose ID collides, or whose namespaced series collides with
// a root series, keep the first occurrence (root wins, then children
// in argument order); in practice server and experiment metric names
// are disjoint so collisions do not occur.
func WritePrometheusRollup(w io.Writer, root *Registry, label string, children ...RollupChild) error {
	merged := root.maps()
	// Deterministic merge order regardless of caller map iteration.
	ordered := make([]RollupChild, len(children))
	copy(ordered, children)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].ID < ordered[j].ID })
	for _, c := range ordered {
		cm := c.Reg.maps()
		for name, h := range cm.counters {
			key := injectLabel(name, label, c.ID)
			if _, ok := merged.counters[key]; !ok {
				merged.counters[key] = h
			}
		}
		for name, h := range cm.gauges {
			key := injectLabel(name, label, c.ID)
			if _, ok := merged.gauges[key]; !ok {
				merged.gauges[key] = h
			}
		}
		for name, h := range cm.hists {
			key := injectLabel(name, label, c.ID)
			if _, ok := merged.hists[key]; !ok {
				merged.hists[key] = h
			}
		}
	}
	return writePrometheusMaps(w, merged)
}
