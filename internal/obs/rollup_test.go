package obs

import (
	"strings"
	"testing"
)

func TestSplitSeries(t *testing.T) {
	cases := []struct {
		in, fam, labels string
	}{
		{"x_total", "x_total", ""},
		{`x_total{a="b"}`, "x_total", `a="b"`},
		{`x_total{a="b",c="d"}`, "x_total", `a="b",c="d"`},
		{"x_total{broken", "x_total{broken", ""},
	}
	for _, c := range cases {
		fam, labels := splitSeries(c.in)
		if fam != c.fam || labels != c.labels {
			t.Errorf("splitSeries(%q) = (%q, %q), want (%q, %q)", c.in, fam, labels, c.fam, c.labels)
		}
	}
}

func TestInjectLabel(t *testing.T) {
	if got := injectLabel("x_total", "experiment", "e1"); got != `x_total{experiment="e1"}` {
		t.Errorf("unlabeled: got %q", got)
	}
	if got := injectLabel(`x_total{decision="suspend"}`, "experiment", "e1"); got != `x_total{decision="suspend",experiment="e1"}` {
		t.Errorf("labeled: got %q", got)
	}
}

func TestWritePrometheusRollup(t *testing.T) {
	root := NewRegistry()
	root.Gauge("hyperdrive_serve_experiments_active").Set(2)
	root.Counter("hyperdrive_serve_requests_total").Add(7)

	e1 := NewRegistry()
	e1.Counter(DecisionsTotal("suspend")).Add(3)
	e1.Gauge(SlotsBusy).Set(4)
	e1.Histogram("hyperdrive_iter_seconds", 1, 10).Observe(0.5)

	e2 := NewRegistry()
	e2.Counter(DecisionsTotal("suspend")).Add(5)
	e2.Gauge(SlotsBusy).Set(1)

	var b strings.Builder
	err := WritePrometheusRollup(&b, root, "experiment",
		RollupChild{ID: "e2", Reg: e2},
		RollupChild{ID: "e1", Reg: e1},
	)
	if err != nil {
		t.Fatalf("rollup: %v", err)
	}
	out := b.String()

	wants := []string{
		"hyperdrive_serve_experiments_active 2\n",
		"hyperdrive_serve_requests_total 7\n",
		`hyperdrive_decisions_total{decision="suspend",experiment="e1"} 3`,
		`hyperdrive_decisions_total{decision="suspend",experiment="e2"} 5`,
		`hyperdrive_slots_busy{experiment="e1"} 4`,
		`hyperdrive_slots_busy{experiment="e2"} 1`,
		`hyperdrive_iter_seconds_bucket{experiment="e1",le="1"} 1`,
		`hyperdrive_iter_seconds_sum{experiment="e1"} 0.5`,
		`hyperdrive_iter_seconds_count{experiment="e1"} 1`,
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("rollup output missing %q\n---\n%s", want, out)
		}
	}

	// One TYPE line per family even when a family spans experiments.
	if n := strings.Count(out, "# TYPE hyperdrive_decisions_total "); n != 1 {
		t.Errorf("want 1 TYPE line for hyperdrive_decisions_total, got %d\n---\n%s", n, out)
	}
	if n := strings.Count(out, "# TYPE hyperdrive_slots_busy "); n != 1 {
		t.Errorf("want 1 TYPE line for hyperdrive_slots_busy, got %d", n)
	}
}

func TestWritePrometheusRollupNilChildren(t *testing.T) {
	var b strings.Builder
	if err := WritePrometheusRollup(&b, nil, "experiment", RollupChild{ID: "e1", Reg: nil}); err != nil {
		t.Fatalf("nil rollup: %v", err)
	}
	if b.Len() != 0 {
		t.Errorf("nil rollup produced output: %q", b.String())
	}
}

func TestLabeledHistogramExposition(t *testing.T) {
	r := NewRegistry()
	r.Histogram(ServeHTTPRequestSeconds("submit"), 0.01, 0.1).Observe(0.05)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("write: %v", err)
	}
	out := b.String()
	wants := []string{
		"# TYPE hyperdrive_serve_http_request_seconds histogram\n",
		`hyperdrive_serve_http_request_seconds_bucket{route="submit",le="0.01"} 0`,
		`hyperdrive_serve_http_request_seconds_bucket{route="submit",le="0.1"} 1`,
		`hyperdrive_serve_http_request_seconds_bucket{route="submit",le="+Inf"} 1`,
		`hyperdrive_serve_http_request_seconds_sum{route="submit"} 0.05`,
		`hyperdrive_serve_http_request_seconds_count{route="submit"} 1`,
	}
	for _, want := range wants {
		if !strings.Contains(out, want) {
			t.Errorf("labeled histogram output missing %q\n---\n%s", want, out)
		}
	}
}
