package obs

import (
	"sync"
	"time"
)

// HistoryPoint is one retained sample of a metric series.
type HistoryPoint struct {
	TMS int64   `json:"t_ms"` // run-clock unix milliseconds
	V   float64 `json:"v"`
}

// DefaultHistoryCapacity is the per-series point bound.
const DefaultHistoryCapacity = 512

// historySeries is one metric's bounded time series. Downsampling is
// deterministic in the offer sequence alone: offers are accepted every
// stride-th call, and when the buffer reaches capacity the
// even-indexed points are kept and the stride doubles — so the
// accepted offer indices are always the multiples of the current
// stride, regardless of timing, GOMAXPROCS, or host.
type historySeries struct {
	mu     sync.Mutex
	cap    int
	stride int64
	seen   int64
	pts    []HistoryPoint
}

func (s *historySeries) offer(t int64, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	idx := s.seen
	s.seen++
	if idx%s.stride != 0 {
		return
	}
	s.pts = append(s.pts, HistoryPoint{TMS: t, V: v})
	if len(s.pts) >= s.cap {
		kept := s.pts[:0]
		for i := 0; i < len(s.pts); i += 2 {
			kept = append(kept, s.pts[i])
		}
		s.pts = kept
		s.stride *= 2
	}
}

func (s *historySeries) snapshot() []HistoryPoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]HistoryPoint(nil), s.pts...)
}

// History is a bounded in-process store of metric time series: every
// series keeps at most its capacity of points, thinning itself by
// stride doubling as samples keep arriving, so a week-long run and a
// ten-second test both fit the same memory. A nil *History is a valid
// no-op sink. Safe for concurrent use; distinct series never contend.
type History struct {
	capacity int
	mu       sync.RWMutex
	series   map[string]*historySeries
}

// NewHistory builds a store with the given per-series capacity
// (DefaultHistoryCapacity when non-positive; minimum 2).
func NewHistory(capacity int) *History {
	if capacity <= 0 {
		capacity = DefaultHistoryCapacity
	}
	if capacity < 2 {
		capacity = 2
	}
	return &History{capacity: capacity, series: make(map[string]*historySeries)}
}

// Offer appends one sample to the named series, subject to the
// series' current downsampling stride.
func (h *History) Offer(name string, t time.Time, v float64) {
	if h == nil {
		return
	}
	h.mu.RLock()
	s, ok := h.series[name]
	h.mu.RUnlock()
	if !ok {
		h.mu.Lock()
		if s, ok = h.series[name]; !ok {
			s = &historySeries{cap: h.capacity, stride: 1}
			h.series[name] = s
		}
		h.mu.Unlock()
	}
	s.offer(t.UnixMilli(), v)
}

// Series returns the retained points of one series (nil when unknown).
func (h *History) Series(name string) []HistoryPoint {
	if h == nil {
		return nil
	}
	h.mu.RLock()
	s, ok := h.series[name]
	h.mu.RUnlock()
	if !ok {
		return nil
	}
	return s.snapshot()
}

// Names returns the sorted series names.
func (h *History) Names() []string {
	if h == nil {
		return nil
	}
	h.mu.RLock()
	defer h.mu.RUnlock()
	return sortedNames(h.series)
}

// Snapshot returns every series' retained points.
func (h *History) Snapshot() map[string][]HistoryPoint {
	if h == nil {
		return map[string][]HistoryPoint{}
	}
	h.mu.RLock()
	names := sortedNames(h.series)
	series := make([]*historySeries, len(names))
	for i, n := range names {
		series[i] = h.series[n]
	}
	h.mu.RUnlock()
	out := make(map[string][]HistoryPoint, len(names))
	for i, n := range names {
		out[n] = series[i].snapshot()
	}
	return out
}

// SampleHistory offers every counter and gauge value — plus each
// histogram's count and p50/p99 quantile estimates — to the history
// store at time t. A no-op until EnableHistory. Engines call it on
// whatever clock they trust: the live runner on a wall ticker
// (StartHistorySampler), the simulator on its virtual clock at
// boundary decisions, so sim histories replay bit-identically.
func (r *Registry) SampleHistory(t time.Time) {
	h := r.History()
	if h == nil {
		return
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for n, g := range r.gauges {
		gauges[n] = g
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, hg := range r.hists {
		hists[n] = hg
	}
	r.mu.RUnlock()
	for _, n := range sortedNames(counters) {
		h.Offer(n, t, float64(counters[n].Value()))
	}
	for _, n := range sortedNames(gauges) {
		h.Offer(n, t, gauges[n].Value())
	}
	for _, n := range sortedNames(hists) {
		hg := hists[n]
		if hg.Count() == 0 {
			continue
		}
		h.Offer(n+":count", t, float64(hg.Count()))
		h.Offer(n+":p50", t, hg.Quantile(0.50))
		h.Offer(n+":p99", t, hg.Quantile(0.99))
	}
}

// StartHistorySampler snapshots the registry's metrics into the
// history store on a ticker, mirroring StartRuntimeSampler's shape.
// One sample is taken immediately. The returned stop function halts
// the sampler and is idempotent; a nil registry (or one without
// history enabled) yields a no-op.
func StartHistorySampler(r *Registry, interval time.Duration) (stop func()) {
	if r == nil || r.History() == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	r.SampleHistory(time.Now())
	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				r.SampleHistory(time.Now())
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-stopped
		})
	}
}
