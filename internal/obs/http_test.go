package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerRoutes(t *testing.T) {
	r := NewRegistry()
	r.Counter(MCMCFitsTotal).Add(3)
	r.Histogram(DecisionLatencySeconds).Observe(0.002)
	r.PublishJobTable([]JobRow{{Job: "cfg-1", State: "running", Class: "promising"}})
	sp := r.Tracer().Start("decision", "cfg-1", 10)
	sp.SetAttr("confidence", 0.9)
	r.Tracer().Finish(sp)

	srv := httptest.NewServer(Handler(r, HandlerOptions{}))
	defer srv.Close()

	get := func(path string) (*httptest.ResponseRecorder, string) {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		Handler(r, HandlerOptions{Pprof: true}).ServeHTTP(rec, req)
		return rec, rec.Body.String()
	}

	rec, body := get("/metrics")
	if rec.Code != 200 || !strings.Contains(body, "hyperdrive_mcmc_fits_total 3") {
		t.Fatalf("/metrics = %d\n%s", rec.Code, body)
	}
	if !strings.Contains(body, "hyperdrive_decision_latency_seconds_count 1") {
		t.Fatalf("/metrics missing histogram:\n%s", body)
	}

	rec, body = get("/metrics.json")
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json: %v", err)
	}
	if snap.Counters[MCMCFitsTotal] != 3 {
		t.Fatalf("/metrics.json counters = %v", snap.Counters)
	}

	rec, body = get("/jobs")
	var rows []JobRow
	if err := json.Unmarshal([]byte(body), &rows); err != nil {
		t.Fatalf("/jobs: %v", err)
	}
	if len(rows) != 1 || rows[0].Class != "promising" {
		t.Fatalf("/jobs = %+v", rows)
	}

	rec, body = get("/spans")
	var views []View
	if err := json.Unmarshal([]byte(body), &views); err != nil {
		t.Fatalf("/spans: %v", err)
	}
	if len(views) != 1 || views[0].Job != "cfg-1" {
		t.Fatalf("/spans = %+v", views)
	}

	rec, body = get("/spans?id=" + sp.ID())
	var one View
	if err := json.Unmarshal([]byte(body), &one); err != nil {
		t.Fatalf("/spans?id: %v", err)
	}
	if len(one.Attrs) != 1 || one.Attrs[0].Key != "confidence" {
		t.Fatalf("/spans?id attrs = %+v", one.Attrs)
	}

	rec, _ = get("/spans?id=ffffffffffff")
	if rec.Code != 404 {
		t.Fatalf("missing span = %d, want 404", rec.Code)
	}

	rec, _ = get("/spans?job=other")
	if body := rec.Body.String(); !strings.Contains(body, "[]") {
		t.Fatalf("job filter should return empty list, got %s", body)
	}

	rec, _ = get("/debug/pprof/cmdline")
	if rec.Code != 200 {
		t.Fatalf("pprof cmdline = %d", rec.Code)
	}
}
