package obs

import (
	"testing"
)

func TestFormatSpanID(t *testing.T) {
	if got := FormatSpanID(0); got != "" {
		t.Fatalf("FormatSpanID(0) = %q, want empty (no span)", got)
	}
	if got := FormatSpanID(0x2a); got != "00000000002a" {
		t.Fatalf("FormatSpanID(0x2a) = %q", got)
	}
	tr := NewTracer(4)
	s := tr.Start("decision", "j", 1)
	if s.ID() != FormatSpanID(s.RawID()) {
		t.Fatalf("ID() %q != FormatSpanID(RawID()) %q", s.ID(), FormatSpanID(s.RawID()))
	}
	var nilSpan *Span
	if nilSpan.RawID() != 0 {
		t.Fatal("nil span RawID != 0")
	}
}

// TestTracerReleaseRecycles checks the span free-list contract: a
// released span comes back from StartSpan fully reset — no identity,
// attributes, stages, or trace linkage leaking from its previous life.
func TestTracerReleaseRecycles(t *testing.T) {
	tr := NewTracer(4)
	s := tr.StartSpan("decision", "job-1", 7, SpanContext{TraceID: "t1", SpanID: "p1"})
	s.SetAttr("confidence", 0.9)
	s.SetStr("class", "promising")
	s.Stage("estimate")
	firstID := s.RawID()
	tr.Release(s)

	s2 := tr.StartSpan("decision", "job-2", 1, SpanContext{})
	if s2 != s {
		// The pool may legitimately hand back a different span, but in
		// a single-goroutine test the just-released one should return.
		t.Log("pool did not recycle the released span; checking freshness anyway")
	}
	if s2.RawID() == firstID {
		t.Fatal("recycled span kept its old ID; IDs must be unique per start")
	}
	if s2.Annotated() {
		t.Fatal("recycled span still annotated from its previous life")
	}
	if _, ok := s2.Attr("confidence"); ok {
		t.Fatal("recycled span leaked an attribute")
	}
	if s2.TraceID() != "" {
		t.Fatalf("recycled span leaked trace linkage %q", s2.TraceID())
	}
	if s2.job != "job-2" || s2.epoch != 1 {
		t.Fatalf("recycled span identity = %s/%d, want job-2/1", s2.job, s2.epoch)
	}
}

// TestStartSpanReleaseAllocationFree pins the pool's purpose: the
// start→release cycle of an unretained span performs no allocations
// once warm.
func TestStartSpanReleaseAllocationFree(t *testing.T) {
	tr := NewTracer(8)
	// Warm: first cycle may allocate the span and its slices.
	s := tr.Start("decision", "j", 0)
	s.SetAttr("confidence", 0.5)
	tr.Release(s)

	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("decision", "j", 1)
		sp.SetAttr("confidence", 0.5)
		tr.Release(sp)
	})
	if allocs != 0 {
		t.Fatalf("start/release cycle allocates %.1f objects, want 0", allocs)
	}
}

// Finished spans are retained in the ring and must never return to the
// pool; Release is only for spans that bypassed Finish.
func TestFinishedSpansStayRetained(t *testing.T) {
	tr := NewTracer(4)
	s := tr.Start("decision", "j", 0)
	s.SetAttr("confidence", 1)
	tr.Finish(s)
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].RawID() != s.RawID() {
		t.Fatalf("finished span not retained in ring: %+v", spans)
	}
	// Starting more spans must not disturb the retained one.
	for i := 0; i < 8; i++ {
		tr.Release(tr.Start("decision", "j", i))
	}
	if got, ok := s.Attr("confidence"); !ok || got.Val != 1 {
		t.Fatal("retained span mutated after later start/release cycles")
	}
}
