package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Span is one traced scheduling decision: the estimate → classify →
// allocate pipeline of a single OnIterationFinish, carrying the inputs
// the policy saw (ERT, confidence, pool sizes) so the verdict is
// attributable after the fact. Spans are created by a Tracer, filled
// in by the policy, and finished by the engine; the span ID is stamped
// into the decision's LogRecord.
//
// A nil *Span is a valid no-op, so policies instrument unconditionally.
type Span struct {
	id     uint64
	name   string
	job    string
	epoch  int
	start  time.Time
	trace  string // trace this span belongs to ("" = untraced)
	parent string // span ID of the causing span, possibly remote

	mu     sync.Mutex
	attrs  []Attr
	stages []StageMark
	end    time.Time
}

// SpanContext is the cross-process identity of a span: enough to stamp
// onto a wire frame so the receiving process can record its own work as
// a child of the sender's. The zero value means "untraced".
type SpanContext struct {
	TraceID string `json:"trace_id,omitempty"`
	SpanID  string `json:"span_id,omitempty"`
}

// Valid reports whether the context carries a trace.
func (c SpanContext) Valid() bool { return c.TraceID != "" }

// Attr is one key/value annotation on a span. Exactly one of Val
// (numeric) or Str is meaningful; Str=="" means numeric.
type Attr struct {
	Key string  `json:"key"`
	Val float64 `json:"val,omitempty"`
	Str string  `json:"str,omitempty"`
}

// StageMark records the completion of one pipeline stage, as elapsed
// time since span start.
type StageMark struct {
	Name    string        `json:"name"`
	Elapsed time.Duration `json:"elapsed_ns"`
}

// FormatSpanID renders a raw span identifier in the canonical
// hexadecimal form used everywhere a span ID appears as a string
// ("" for the zero ID, which means "no span").
func FormatSpanID(id uint64) string {
	if id == 0 {
		return ""
	}
	return fmt.Sprintf("%012x", id)
}

// ID returns the span's hexadecimal identifier ("" on nil).
func (s *Span) ID() string {
	if s == nil {
		return ""
	}
	return FormatSpanID(s.id)
}

// RawID returns the span's numeric identifier (0 on nil). Hot paths
// carry this instead of ID() so the hex string is only materialized
// for spans somebody actually keeps.
func (s *Span) RawID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// Context returns the span's cross-process identity. The zero value on
// a nil or untraced span.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.trace, SpanID: s.ID()}
}

// Parent returns the ID of the causing span ("" when the span is a
// trace root or untraced).
func (s *Span) Parent() string {
	if s == nil {
		return ""
	}
	return s.parent
}

// TraceID returns the trace this span belongs to ("" when untraced).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.trace
}

// SetAttr records a numeric annotation.
func (s *Span) SetAttr(key string, v float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: v})
	s.mu.Unlock()
}

// SetStr records a string annotation.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Str: v})
	s.mu.Unlock()
}

// Stage marks the end of one pipeline stage.
func (s *Span) Stage(name string) {
	if s == nil {
		return
	}
	el := time.Since(s.start)
	s.mu.Lock()
	s.stages = append(s.stages, StageMark{Name: name, Elapsed: el})
	s.mu.Unlock()
}

// Annotated reports whether the span carries any stage marks or
// annotations. Engines retain only annotated spans in the tracer ring,
// so off-boundary no-op decisions measure latency without flooding the
// introspection window.
func (s *Span) Annotated() bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.attrs) > 0 || len(s.stages) > 0
}

// Attr returns the first annotation with the given key.
func (s *Span) Attr(key string) (Attr, bool) {
	if s == nil {
		return Attr{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, a := range s.attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// View is a span's JSON-serializable snapshot.
type View struct {
	ID         string      `json:"id"`
	TraceID    string      `json:"trace_id,omitempty"`
	ParentID   string      `json:"parent_id,omitempty"`
	Name       string      `json:"name"`
	Job        string      `json:"job,omitempty"`
	Epoch      int         `json:"epoch,omitempty"`
	Start      time.Time   `json:"start"`
	DurationNS int64       `json:"duration_ns"`
	Stages     []StageMark `json:"stages,omitempty"`
	Attrs      []Attr      `json:"attrs,omitempty"`
}

// Snapshot copies the span into a serializable view.
func (s *Span) Snapshot() View {
	if s == nil {
		return View{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v := View{
		ID:       s.ID(),
		TraceID:  s.trace,
		ParentID: s.parent,
		Name:     s.name,
		Job:      s.job,
		Epoch:    s.epoch,
		Start:    s.start,
	}
	if !s.end.IsZero() {
		v.DurationNS = s.end.Sub(s.start).Nanoseconds()
	}
	v.Stages = append(v.Stages, s.stages...)
	v.Attrs = append(v.Attrs, s.attrs...)
	return v
}

// Tracer hands out spans and retains the most recent completed ones in
// a fixed-size ring for live introspection.
type Tracer struct {
	next      atomic.Uint64
	nextTrace atomic.Uint64
	origin    uint64          // folded into IDs; set once before use
	flight    *FlightRecorder // finished spans are forwarded here
	// pool recycles spans that were started but never retained (see
	// Release), so per-decision spans on the scheduler hot path stop
	// costing an allocation each.
	pool sync.Pool

	mu   sync.Mutex
	ring []*Span
	pos  int
	n    int
}

// NewTracer returns a tracer retaining up to capacity completed spans
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{ring: make([]*Span, capacity)}
}

// SetOrigin namespaces this tracer's span and trace IDs by folding a
// hash of name into their high bits, so IDs minted by different
// processes (scheduler vs each agent) cannot collide when their spans
// meet in one trace. Call once at setup, before any span is started;
// an empty name keeps the default (unprefixed) IDs.
func (t *Tracer) SetOrigin(name string) {
	if t == nil || name == "" {
		return
	}
	// FNV-1a over the name; keep the high 32 bits (top bit forced so
	// the prefix is never zero) and leave the low 32 for the counters.
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	t.origin = (h | 1<<63) &^ 0xffffffff
}

// Start opens a root span with no trace context. Nil tracers return
// nil spans, so the call chain is a no-op when tracing is
// unconfigured.
func (t *Tracer) Start(name, job string, epoch int) *Span {
	return t.StartSpan(name, job, epoch, SpanContext{})
}

// StartSpan opens a span as a child of parent: it joins parent's trace
// and records parent's span ID as its causing span. A zero parent
// yields a root span (same as Start).
func (t *Tracer) StartSpan(name, job string, epoch int, parent SpanContext) *Span {
	if t == nil {
		return nil
	}
	s, _ := t.pool.Get().(*Span)
	if s == nil {
		s = &Span{}
	}
	s.id = t.origin | t.next.Add(1)
	s.name = name
	s.job = job
	s.epoch = epoch
	s.start = time.Now()
	s.trace = parent.TraceID
	s.parent = parent.SpanID
	return s
}

// Release returns a span to the tracer's pool for reuse. Only call it
// for spans that were never passed to Finish and that no one else
// holds a reference to — i.e. the unretained fast-path spans of
// off-boundary decisions. Finished spans live in the ring and the
// flight recorder and must never be released.
func (t *Tracer) Release(s *Span) {
	if t == nil || s == nil {
		return
	}
	s.mu.Lock()
	s.id, s.name, s.job, s.epoch = 0, "", "", 0
	s.start, s.end = time.Time{}, time.Time{}
	s.trace, s.parent = "", ""
	s.attrs = s.attrs[:0]
	s.stages = s.stages[:0]
	s.mu.Unlock()
	t.pool.Put(s)
}

// NewTraceID mints a fresh trace identifier, namespaced by the
// tracer's origin. "" on a nil tracer (untraced).
func (t *Tracer) NewTraceID() string {
	if t == nil {
		return ""
	}
	return fmt.Sprintf("%016x", t.origin|t.nextTrace.Add(1))
}

// Finish closes the span, retains it in the ring, and forwards it to
// the flight recorder (when the tracer belongs to a registry).
func (t *Tracer) Finish(s *Span) {
	if t == nil || s == nil {
		return
	}
	s.mu.Lock()
	s.end = time.Now()
	s.mu.Unlock()
	t.mu.Lock()
	t.ring[t.pos] = s
	t.pos = (t.pos + 1) % len(t.ring)
	if t.n < len(t.ring) {
		t.n++
	}
	t.mu.Unlock()
	t.flight.Record(s)
}

// Spans returns the retained completed spans, oldest first.
func (t *Tracer) Spans() []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, 0, t.n)
	start := t.pos - t.n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < t.n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Find returns the retained span with the given ID, if still in the
// ring.
func (t *Tracer) Find(id string) (*Span, bool) {
	for _, s := range t.Spans() {
		if s.ID() == id {
			return s, true
		}
	}
	return nil, false
}
