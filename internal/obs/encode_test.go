package obs

import (
	"strings"
	"testing"
)

// TestPrometheusGolden pins the text exposition format: family TYPE
// lines, label grouping, histogram bucket/sum/count triplets.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(DecisionsTotal("continue")).Add(7)
	r.Counter(DecisionsTotal("suspend")).Add(2)
	r.Counter(MCMCFitsTotal).Add(4)
	r.Gauge(SlotsBusy).Set(3)
	r.Gauge(ClassificationThreshold).Set(0.25)
	h := r.Histogram(DecisionLatencySeconds, 0.001, 0.01, 0.1)
	h.Observe(0.0005)
	h.Observe(0.02)
	h.Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# TYPE hyperdrive_decision_latency_seconds histogram
hyperdrive_decision_latency_seconds_bucket{le="0.001"} 1
hyperdrive_decision_latency_seconds_bucket{le="0.01"} 1
hyperdrive_decision_latency_seconds_bucket{le="0.1"} 2
hyperdrive_decision_latency_seconds_bucket{le="+Inf"} 3
hyperdrive_decision_latency_seconds_sum 5.0205
hyperdrive_decision_latency_seconds_count 3
`
	if !strings.HasSuffix(got, want) {
		t.Fatalf("histogram block mismatch:\ngot:\n%s\nwant suffix:\n%s", got, want)
	}
	wantHead := `# TYPE hyperdrive_decisions_total counter
hyperdrive_decisions_total{decision="continue"} 7
hyperdrive_decisions_total{decision="suspend"} 2
# TYPE hyperdrive_mcmc_fits_total counter
hyperdrive_mcmc_fits_total 4
# TYPE hyperdrive_classification_threshold gauge
hyperdrive_classification_threshold 0.25
# TYPE hyperdrive_slots_busy gauge
hyperdrive_slots_busy 3
`
	if !strings.HasPrefix(got, wantHead) {
		t.Fatalf("counter/gauge block mismatch:\ngot:\n%s\nwant prefix:\n%s", got, wantHead)
	}
}

func TestSnapshotJSONView(t *testing.T) {
	r := NewRegistry()
	r.Counter(EpochsTotal).Add(10)
	r.Gauge(BestMetric).Set(0.74)
	h := r.Histogram(DecisionLatencySeconds, 0.001, 0.01)
	h.Observe(0.002)
	snap := r.Snapshot()
	if snap.Counters[EpochsTotal] != 10 {
		t.Fatalf("counters = %v", snap.Counters)
	}
	if snap.Gauges[BestMetric] != 0.74 {
		t.Fatalf("gauges = %v", snap.Gauges)
	}
	hs := snap.Histograms[DecisionLatencySeconds]
	if hs.Count != 1 || hs.Sum != 0.002 || hs.P50 <= 0.001 || hs.P50 > 0.01 {
		t.Fatalf("histogram snapshot = %+v", hs)
	}
	names := snap.SortedCounterNames()
	if len(names) != 1 || names[0] != EpochsTotal {
		t.Fatalf("sorted names = %v", names)
	}
}

func TestFamilyOf(t *testing.T) {
	if f := familyOf(`hyperdrive_decisions_total{decision="x"}`); f != "hyperdrive_decisions_total" {
		t.Fatalf("familyOf = %q", f)
	}
	if f := familyOf("plain"); f != "plain" {
		t.Fatalf("familyOf = %q", f)
	}
}
