package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// HandlerOptions configures the introspection endpoint.
type HandlerOptions struct {
	// Pprof mounts net/http/pprof under /debug/pprof/ when true.
	Pprof bool
}

// Handler returns the live introspection endpoint for one registry:
//
//	GET /metrics       Prometheus text exposition
//	GET /metrics.json  JSON snapshot (counters, gauges, quantiles)
//	GET /jobs          current job classification table (JSON)
//	GET /spans         recent decision spans (JSON; ?job= filters,
//	                   ?id= resolves one span)
//	GET /debug/pprof/  runtime profiles (only with opts.Pprof)
//
// The handler is safe to serve while the experiment runs: metric reads
// are atomic, the job table is an atomically swapped snapshot, and the
// span ring is mutex-guarded.
func Handler(r *Registry, opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Snapshot())
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, req *http.Request) {
		rows := r.JobTable()
		if rows == nil {
			rows = []JobRow{}
		}
		writeJSON(w, rows)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, req *http.Request) {
		t := r.Tracer()
		if id := req.URL.Query().Get("id"); id != "" {
			s, ok := t.Find(id)
			if !ok {
				http.Error(w, "span not found (evicted or unknown)", http.StatusNotFound)
				return
			}
			writeJSON(w, s.Snapshot())
			return
		}
		jobFilter := req.URL.Query().Get("job")
		spans := t.Spans()
		views := make([]View, 0, len(spans))
		for _, s := range spans {
			v := s.Snapshot()
			if jobFilter != "" && v.Job != jobFilter {
				continue
			}
			views = append(views, v)
		}
		writeJSON(w, views)
	})
	mux.HandleFunc("/debug/obs/spans", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Flight().Snapshot())
	})
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
