package obs

import (
	"encoding/json"
	"net/http"
	"net/http/pprof"
)

// HandlerOptions configures the introspection endpoint.
type HandlerOptions struct {
	// Pprof mounts net/http/pprof under /debug/pprof/ when true.
	Pprof bool
}

// Handler returns the live introspection endpoint for one registry:
//
//	GET /metrics       Prometheus text exposition
//	GET /metrics.json  JSON snapshot (counters, gauges, quantiles)
//	GET /jobs          current job classification table (JSON)
//	GET /spans         recent decision spans (JSON; ?job= filters,
//	                   ?id= resolves one span)
//	GET /debug/obs/spans    flight-recorder snapshot (JSON)
//	GET /debug/obs/quality  search-quality calibration report (JSON;
//	                        ?format=log streams the raw audit JSONL;
//	                        404 until EnableQuality)
//	GET /debug/obs/history  retained metric time series (JSON; ?name=
//	                        selects one series; 404 until EnableHistory)
//	GET /debug/pprof/  runtime profiles (only with opts.Pprof)
//
// The handler is safe to serve while the experiment runs: metric reads
// are atomic, the job table is an atomically swapped snapshot, and the
// span ring is mutex-guarded.
func Handler(r *Registry, opts HandlerOptions) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Snapshot())
	})
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, req *http.Request) {
		rows := r.JobTable()
		if rows == nil {
			rows = []JobRow{}
		}
		writeJSON(w, rows)
	})
	mux.HandleFunc("/spans", func(w http.ResponseWriter, req *http.Request) {
		t := r.Tracer()
		if id := req.URL.Query().Get("id"); id != "" {
			s, ok := t.Find(id)
			if !ok {
				http.Error(w, "span not found (evicted or unknown)", http.StatusNotFound)
				return
			}
			writeJSON(w, s.Snapshot())
			return
		}
		jobFilter := req.URL.Query().Get("job")
		spans := t.Spans()
		views := make([]View, 0, len(spans))
		for _, s := range spans {
			v := s.Snapshot()
			if jobFilter != "" && v.Job != jobFilter {
				continue
			}
			views = append(views, v)
		}
		writeJSON(w, views)
	})
	mux.HandleFunc("/debug/obs/spans", func(w http.ResponseWriter, req *http.Request) {
		writeJSON(w, r.Flight().Snapshot())
	})
	mux.HandleFunc("/debug/obs/quality", func(w http.ResponseWriter, req *http.Request) {
		q := r.Quality()
		if q == nil {
			http.Error(w, "quality audit disabled (enable with -quality-out or a served endpoint)", http.StatusNotFound)
			return
		}
		if req.URL.Query().Get("format") == "log" {
			w.Header().Set("Content-Type", "application/x-ndjson")
			_ = q.WriteLog(w)
			return
		}
		writeJSON(w, q.Report())
	})
	mux.HandleFunc("/debug/obs/history", func(w http.ResponseWriter, req *http.Request) {
		h := r.History()
		if h == nil {
			http.Error(w, "metrics history disabled", http.StatusNotFound)
			return
		}
		if name := req.URL.Query().Get("name"); name != "" {
			pts := h.Series(name)
			if pts == nil {
				pts = []HistoryPoint{}
			}
			writeJSON(w, pts)
			return
		}
		writeJSON(w, h.Snapshot())
	})
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
