package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// TraceWriter accumulates Chrome trace-event JSON — the format
// Perfetto and chrome://tracing load directly — and writes it out once
// at the end of a run. Tracks are named, not numbered: callers emit
// events onto (process, track) string pairs ("scheduler"/"job j3",
// "agent a1"/"slot-0") and the writer assigns stable pids/tids and the
// process_name/thread_name metadata events on export.
//
// Timestamps are absolute time.Time values (wall clock in the live
// engine, the virtual clock in the simulator); Export re-bases them
// so the trace starts at zero. A nil *TraceWriter is a valid no-op
// sink, so every emission site instruments unconditionally.
type TraceWriter struct {
	mu     sync.Mutex
	events []traceEvent
	seq    int64
	procs  map[string]int
	tracks map[string]int     // "proc\x00track" → tid
	open   map[trackKey][]int // indices of unmatched B events per track
}

type trackKey struct {
	pid, tid int
}

// traceEvent is one entry of the traceEvents array. Phases used: "B"
// (begin), "E" (end), "X" (complete, with dur), "i" (instant), "M"
// (metadata).
type traceEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	TS   int64                  `json:"ts"` // microseconds
	Dur  int64                  `json:"dur,omitempty"`
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	S    string                 `json:"s,omitempty"` // instant scope
	Args map[string]interface{} `json:"args,omitempty"`

	seq int64 `json:"-"` // emission order, for stable sorting
}

// NewTraceWriter returns an empty writer.
func NewTraceWriter() *TraceWriter {
	return &TraceWriter{
		procs:  make(map[string]int),
		tracks: make(map[string]int),
		open:   make(map[trackKey][]int),
	}
}

// ids resolves (proc, track) to stable pid/tid, registering them on
// first use. Callers hold w.mu.
func (w *TraceWriter) ids(proc, track string) (int, int) {
	pid, ok := w.procs[proc]
	if !ok {
		pid = len(w.procs) + 1
		w.procs[proc] = pid
		w.events = append(w.events, traceEvent{
			Name: "process_name", Ph: "M", PID: pid, TID: 0,
			Args: map[string]interface{}{"name": proc},
			seq:  w.nextSeq(),
		})
	}
	tkey := proc + "\x00" + track
	tid, ok := w.tracks[tkey]
	if !ok {
		tid = len(w.tracks) + 1
		w.tracks[tkey] = tid
		w.events = append(w.events, traceEvent{
			Name: "thread_name", Ph: "M", PID: pid, TID: tid,
			Args: map[string]interface{}{"name": track},
			seq:  w.nextSeq(),
		})
	}
	return pid, tid
}

func (w *TraceWriter) nextSeq() int64 {
	w.seq++
	return w.seq
}

// Begin opens a duration slice on (proc, track). Every Begin should be
// matched by an End; Export force-closes any still open at the final
// timestamp so the exported file is always balanced.
func (w *TraceWriter) Begin(proc, track, name string, at time.Time, args map[string]interface{}) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	pid, tid := w.ids(proc, track)
	idx := len(w.events)
	w.events = append(w.events, traceEvent{
		Name: name, Ph: "B", TS: at.UnixMicro(), PID: pid, TID: tid,
		Args: args, seq: w.nextSeq(),
	})
	k := trackKey{pid, tid}
	w.open[k] = append(w.open[k], idx)
}

// End closes the most recent open slice on (proc, track).
func (w *TraceWriter) End(proc, track string, at time.Time) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	pid, tid := w.ids(proc, track)
	k := trackKey{pid, tid}
	stack := w.open[k]
	if len(stack) == 0 {
		return // nothing open: drop rather than emit an unbalanced E
	}
	w.open[k] = stack[:len(stack)-1]
	w.events = append(w.events, traceEvent{
		Name: w.events[stack[len(stack)-1]].Name, Ph: "E",
		TS: at.UnixMicro(), PID: pid, TID: tid, seq: w.nextSeq(),
	})
}

// Complete emits a finished slice (phase X) of the given duration.
func (w *TraceWriter) Complete(proc, track, name string, start time.Time, dur time.Duration, args map[string]interface{}) {
	if w == nil {
		return
	}
	if dur < 0 {
		dur = 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	pid, tid := w.ids(proc, track)
	w.events = append(w.events, traceEvent{
		Name: name, Ph: "X", TS: start.UnixMicro(), Dur: dur.Microseconds(),
		PID: pid, TID: tid, Args: args, seq: w.nextSeq(),
	})
}

// Instant emits a zero-duration marker (phase i, thread scope).
func (w *TraceWriter) Instant(proc, track, name string, at time.Time, args map[string]interface{}) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	pid, tid := w.ids(proc, track)
	w.events = append(w.events, traceEvent{
		Name: name, Ph: "i", TS: at.UnixMicro(), PID: pid, TID: tid,
		S: "t", Args: args, seq: w.nextSeq(),
	})
}

// traceFile is the on-disk envelope.
type traceFile struct {
	TraceEvents []traceEvent `json:"traceEvents"`
}

// Export writes the accumulated events as Chrome trace-event JSON:
// unmatched Begins are force-closed at the final timestamp, events are
// sorted per track by timestamp (emission order breaks ties), and all
// timestamps are re-based so the earliest event sits at ts=0.
func (w *TraceWriter) Export(out io.Writer) error {
	if w == nil {
		_, err := out.Write([]byte(`{"traceEvents":[]}` + "\n"))
		return err
	}
	w.mu.Lock()
	events := make([]traceEvent, len(w.events))
	copy(events, w.events)
	// Force-close open slices at the maximum timestamp seen.
	var maxTS int64
	for _, e := range events {
		if e.Ph != "M" && e.TS > maxTS {
			maxTS = e.TS
		}
	}
	for k, stack := range w.open {
		for i := len(stack) - 1; i >= 0; i-- {
			w.seq++
			events = append(events, traceEvent{
				Name: events[stack[i]].Name, Ph: "E", TS: maxTS,
				PID: k.pid, TID: k.tid, seq: w.seq,
			})
		}
	}
	w.mu.Unlock()

	// Re-base timestamps to zero.
	var minTS int64
	first := true
	for _, e := range events {
		if e.Ph == "M" {
			continue
		}
		if first || e.TS < minTS {
			minTS, first = e.TS, false
		}
	}
	for i := range events {
		if events[i].Ph != "M" {
			events[i].TS -= minTS
		}
	}
	// Sort: metadata first, then per-track chronological order with
	// emission order as the tiebreak (keeps B before its same-ts E).
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		am, bm := a.Ph == "M", b.Ph == "M"
		if am != bm {
			return am
		}
		if a.PID != b.PID {
			return a.PID < b.PID
		}
		if a.TID != b.TID {
			return a.TID < b.TID
		}
		if a.TS != b.TS {
			return a.TS < b.TS
		}
		return a.seq < b.seq
	})
	enc := json.NewEncoder(out)
	return enc.Encode(traceFile{TraceEvents: events})
}

// WriteFile exports to path (0644).
func (w *TraceWriter) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := w.Export(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ValidateTraceEvents checks data for the invariants the repo's
// tooling relies on: the envelope parses, every event carries a known
// phase and a name, per-track timestamps are monotonically
// non-decreasing in file order, X durations are non-negative, and
// B/E pairs are balanced on every track. The same checks back the
// golden-file tests and `hdlog -check-trace`.
func ValidateTraceEvents(data []byte) error {
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("trace: invalid JSON envelope: %w", err)
	}
	lastTS := make(map[trackKey]int64)
	depth := make(map[trackKey]int)
	for i, e := range tf.TraceEvents {
		if e.Name == "" {
			return fmt.Errorf("trace: event %d has no name", i)
		}
		k := trackKey{e.PID, e.TID}
		switch e.Ph {
		case "M":
			continue
		case "B":
			depth[k]++
		case "E":
			depth[k]--
			if depth[k] < 0 {
				return fmt.Errorf("trace: event %d: E without matching B on pid=%d tid=%d", i, e.PID, e.TID)
			}
		case "X":
			if e.Dur < 0 {
				return fmt.Errorf("trace: event %d (%s): negative duration %d", i, e.Name, e.Dur)
			}
		case "i", "I":
			// instant: nothing extra to check
		default:
			return fmt.Errorf("trace: event %d (%s): unknown phase %q", i, e.Name, e.Ph)
		}
		if e.TS < 0 {
			return fmt.Errorf("trace: event %d (%s): negative timestamp %d", i, e.Name, e.TS)
		}
		if last, ok := lastTS[k]; ok && e.TS < last {
			return fmt.Errorf("trace: event %d (%s): timestamp %d before %d on pid=%d tid=%d",
				i, e.Name, e.TS, last, e.PID, e.TID)
		}
		lastTS[k] = e.TS
	}
	for k, d := range depth {
		if d != 0 {
			return fmt.Errorf("trace: pid=%d tid=%d has %d unclosed B event(s)", k.pid, k.tid, d)
		}
	}
	return nil
}
