package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// familyOf strips a label suffix from a series name:
// `x_total{decision="suspend"}` -> `x_total`.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// splitSeries separates a series name into its family and label body:
// `fam{a="b"}` -> ("fam", `a="b"`); unlabeled names return ("fam", "").
// Malformed names (no closing brace) are treated as unlabeled.
func splitSeries(name string) (family, labels string) {
	i := strings.IndexByte(name, '{')
	if i < 0 {
		return name, ""
	}
	if name[len(name)-1] != '}' {
		return name, ""
	}
	return name[:i], name[i+1 : len(name)-1]
}

// metricMaps is one registry's (or one merged rollup's) handle set,
// keyed by full series name, ready for text encoding.
type metricMaps struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// maps copies the registry's handle maps out from under its lock. The
// handles themselves are safe to read lock-free afterwards (all reads
// are atomic).
func (r *Registry) maps() metricMaps {
	m := metricMaps{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
	if r == nil {
		return m
	}
	r.mu.RLock()
	for k, v := range r.counters {
		m.counters[k] = v
	}
	for k, v := range r.gauges {
		m.gauges[k] = v
	}
	for k, v := range r.hists {
		m.hists[k] = v
	}
	r.mu.RUnlock()
	return m
}

// WritePrometheus encodes the registry's metrics in the Prometheus
// text exposition format (version 0.0.4): counters, gauges, then
// histograms, each family alphabetical with one # TYPE line. Series
// created with a label suffix are grouped under their family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	return writePrometheusMaps(w, r.maps())
}

// writePrometheusMaps is the text encoder behind WritePrometheus and
// the fleet rollup: series sharing a family are adjacent (names sort
// that way) and each family gets exactly one # TYPE line.
func writePrometheusMaps(w io.Writer, m metricMaps) error {
	counterNames := sortedNames(m.counters)
	gaugeNames := sortedNames(m.gauges)
	histNames := sortedNames(m.hists)
	counters := m.counters
	gauges := m.gauges
	hists := m.hists

	var b strings.Builder
	lastFamily := ""
	typeLine := func(name, kind string) {
		if fam := familyOf(name); fam != lastFamily {
			fmt.Fprintf(&b, "# TYPE %s %s\n", fam, kind)
			lastFamily = fam
		}
	}
	for _, name := range counterNames {
		typeLine(name, "counter")
		fmt.Fprintf(&b, "%s %d\n", name, counters[name].Value())
	}
	lastFamily = ""
	for _, name := range gaugeNames {
		typeLine(name, "gauge")
		fmt.Fprintf(&b, "%s %s\n", name, formatFloat(gauges[name].Value()))
	}
	lastFamily = ""
	for _, name := range histNames {
		h := hists[name]
		cum, total := h.snapshotCounts()
		typeLine(name, "histogram")
		// A labeled series (fam{route="x"}) splits into its family and
		// label set so the synthesized _bucket/_sum/_count suffixes land
		// on the family name, with `le` joining the existing labels.
		fam, labels := splitSeries(name)
		bucket := func(le string, n int64) {
			if labels == "" {
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", fam, le, n)
			} else {
				fmt.Fprintf(&b, "%s_bucket{%s,le=%q} %d\n", fam, labels, le, n)
			}
		}
		for i, u := range h.uppers {
			bucket(formatFloat(u), cum[i])
		}
		bucket("+Inf", total)
		suffix := ""
		if labels != "" {
			suffix = "{" + labels + "}"
		}
		fmt.Fprintf(&b, "%s_sum%s %s\n", fam, suffix, formatFloat(h.Sum()))
		fmt.Fprintf(&b, "%s_count%s %d\n", fam, suffix, total)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// HistogramSnapshot is one histogram's JSON view.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot is the registry's point-in-time JSON view.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric. Quantiles are bucket-interpolated
// estimates; NaN (JSON-unrepresentable) is reported as 0.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		v := g.Value()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		snap.Gauges[name] = v
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		if hs.Count > 0 {
			hs.P50 = h.Quantile(0.50)
			hs.P90 = h.Quantile(0.90)
			hs.P99 = h.Quantile(0.99)
		}
		snap.Histograms[name] = hs
	}
	return snap
}

// SortedCounterNames lists counter series names alphabetically (for
// deterministic rendering in hdtop).
func (s Snapshot) SortedCounterNames() []string {
	out := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
