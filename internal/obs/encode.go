package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// familyOf strips a label suffix from a series name:
// `x_total{decision="suspend"}` -> `x_total`.
func familyOf(name string) string {
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i]
	}
	return name
}

// WritePrometheus encodes the registry's metrics in the Prometheus
// text exposition format (version 0.0.4): counters, gauges, then
// histograms, each family alphabetical with one # TYPE line. Series
// created with a label suffix are grouped under their family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	counterNames := sortedNames(r.counters)
	gaugeNames := sortedNames(r.gauges)
	histNames := sortedNames(r.hists)
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()

	var b strings.Builder
	lastFamily := ""
	typeLine := func(name, kind string) {
		if fam := familyOf(name); fam != lastFamily {
			fmt.Fprintf(&b, "# TYPE %s %s\n", fam, kind)
			lastFamily = fam
		}
	}
	for _, name := range counterNames {
		typeLine(name, "counter")
		fmt.Fprintf(&b, "%s %d\n", name, counters[name].Value())
	}
	lastFamily = ""
	for _, name := range gaugeNames {
		typeLine(name, "gauge")
		fmt.Fprintf(&b, "%s %s\n", name, formatFloat(gauges[name].Value()))
	}
	for _, name := range histNames {
		h := hists[name]
		cum, total := h.snapshotCounts()
		fmt.Fprintf(&b, "# TYPE %s histogram\n", familyOf(name))
		for i, u := range h.uppers {
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", name, formatFloat(u), cum[i])
		}
		fmt.Fprintf(&b, "%s_bucket{le=\"+Inf\"} %d\n", name, total)
		fmt.Fprintf(&b, "%s_sum %s\n", name, formatFloat(h.Sum()))
		fmt.Fprintf(&b, "%s_count %d\n", name, total)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	if math.IsInf(v, -1) {
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// HistogramSnapshot is one histogram's JSON view.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Snapshot is the registry's point-in-time JSON view.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every metric. Quantiles are bucket-interpolated
// estimates; NaN (JSON-unrepresentable) is reported as 0.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		v := g.Value()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0
		}
		snap.Gauges[name] = v
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
		if hs.Count > 0 {
			hs.P50 = h.Quantile(0.50)
			hs.P90 = h.Quantile(0.90)
			hs.P99 = h.Quantile(0.99)
		}
		snap.Histograms[name] = hs
	}
	return snap
}

// SortedCounterNames lists counter series names alphabetically (for
// deterministic rendering in hdtop).
func (s Snapshot) SortedCounterNames() []string {
	out := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
