package obs

import (
	"runtime"
	"sync"
	"time"
)

// StartRuntimeSampler samples Go runtime health into the registry on a
// ticker: goroutine count (GoGoroutines), live heap bytes
// (GoHeapBytes), and every GC pause since the previous tick into the
// GoGCPauseSeconds histogram. One sample is taken immediately so the
// gauges are populated before the first tick. The returned stop
// function halts the sampler and is safe to call more than once; on a
// nil registry it is a no-op.
func StartRuntimeSampler(r *Registry, interval time.Duration) (stop func()) {
	if r == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = 5 * time.Second
	}
	goroutines := r.Gauge(GoGoroutines)
	heap := r.Gauge(GoHeapBytes)
	pauses := r.Histogram(GoGCPauseSeconds)

	var lastNumGC uint32
	sample := func() {
		goroutines.Set(float64(runtime.NumGoroutine()))
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		heap.Set(float64(ms.HeapAlloc))
		// PauseNs is a circular buffer of the last 256 pause times,
		// indexed by NumGC; replay only the pauses since our last look.
		n := ms.NumGC - lastNumGC
		if n > uint32(len(ms.PauseNs)) {
			n = uint32(len(ms.PauseNs))
		}
		for i := uint32(0); i < n; i++ {
			idx := (ms.NumGC - i + uint32(len(ms.PauseNs)) - 1) % uint32(len(ms.PauseNs))
			pauses.Observe(float64(ms.PauseNs[idx]) / 1e9)
		}
		lastNumGC = ms.NumGC
	}
	sample()

	done := make(chan struct{})
	stopped := make(chan struct{})
	go func() {
		defer close(stopped)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				sample()
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-stopped
	}
}
