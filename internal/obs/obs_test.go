package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(3)
	r.Histogram("z").Observe(1)
	r.Tracer().Finish(r.Tracer().Start("d", "j", 1))
	r.PublishJobTable([]JobRow{{Job: "j"}})
	if rows := r.JobTable(); rows != nil {
		t.Fatalf("nil registry returned table %v", rows)
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	var sp *Span
	sp.SetAttr("a", 1)
	sp.SetStr("b", "c")
	sp.Stage("s")
	if sp.ID() != "" {
		t.Fatalf("nil span ID = %q", sp.ID())
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines
// while snapshots are taken; run under -race this is the registry's
// safety proof.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("hyperdrive_epochs_total")
			g := r.Gauge("hyperdrive_slots_busy")
			h := r.Histogram("hyperdrive_decision_latency_seconds")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Set(float64(i % 5))
				h.Observe(float64(i%100) * 1e-4)
				// Exercise create-on-first-use races too.
				r.Counter(DecisionsTotal("suspend")).Inc()
				if i%100 == 0 {
					_ = r.Snapshot()
					_ = r.WritePrometheus(&strings.Builder{})
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("hyperdrive_epochs_total").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Counter(DecisionsTotal("suspend")).Value(); got != workers*perWorker {
		t.Fatalf("labeled counter = %d, want %d", got, workers*perWorker)
	}
	h := r.Histogram("hyperdrive_decision_latency_seconds")
	if h.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d", h.Count())
	}
}

func TestCounterIgnoresNegative(t *testing.T) {
	c := NewCounter()
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestGaugeAdd(t *testing.T) {
	g := NewGauge()
	g.Set(1.5)
	g.Add(2.5)
	g.Add(-1)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile should be NaN")
	}
	// 100 samples uniform in (0, 4]: quantiles should roughly track.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	if q := h.Quantile(0.5); q < 1 || q > 3 {
		t.Fatalf("p50 = %v, want within [1, 3]", q)
	}
	if q := h.Quantile(1); q != 4 {
		t.Fatalf("p100 = %v, want 4", q)
	}
	h.Observe(100) // +Inf bucket
	if q := h.Quantile(0.999); q != 8 {
		t.Fatalf("tail quantile = %v, want capped at 8", q)
	}
	if h.Count() != 101 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestTracerRingAndResolve(t *testing.T) {
	tr := NewTracer(3)
	var ids []string
	for i := 0; i < 5; i++ {
		s := tr.Start("decision", "job-1", i)
		s.SetAttr("confidence", float64(i)/10)
		s.Stage("estimate")
		tr.Finish(s)
		ids = append(ids, s.ID())
	}
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("ring kept %d spans, want 3", len(spans))
	}
	// Oldest two evicted.
	if _, ok := tr.Find(ids[0]); ok {
		t.Fatal("evicted span still resolvable")
	}
	s, ok := tr.Find(ids[4])
	if !ok {
		t.Fatal("latest span not resolvable")
	}
	a, ok := s.Attr("confidence")
	if !ok || a.Val != 0.4 {
		t.Fatalf("attr = %+v ok=%v", a, ok)
	}
	v := s.Snapshot()
	if v.DurationNS < 0 || len(v.Stages) != 1 || v.Stages[0].Name != "estimate" {
		t.Fatalf("snapshot = %+v", v)
	}
}

func TestJobTablePublish(t *testing.T) {
	r := NewRegistry()
	if r.JobTable() != nil {
		t.Fatal("unpublished table should be nil")
	}
	r.PublishJobTable([]JobRow{{Job: "cfg-1", Class: "promising", Confidence: 0.8}})
	rows := r.JobTable()
	if len(rows) != 1 || rows[0].Class != "promising" {
		t.Fatalf("table = %+v", rows)
	}
	r.PublishJobTable(nil)
	if rows := r.JobTable(); rows == nil || len(rows) != 0 {
		t.Fatalf("nil publish should yield empty table, got %v", rows)
	}
}
