package obs

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

// histEpoch is a fixed timestamp base so test series carry
// deterministic t_ms values.
var histEpoch = time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)

// offerSeq feeds n sequential samples (value = index) into one series.
func offerSeq(h *History, name string, n int) {
	for i := 0; i < n; i++ {
		h.Offer(name, histEpoch.Add(time.Duration(i)*time.Second), float64(i))
	}
}

func TestHistoryBounded(t *testing.T) {
	h := NewHistory(64)
	offerSeq(h, "m", 100000)
	pts := h.Series("m")
	if len(pts) == 0 || len(pts) > 64 {
		t.Fatalf("series has %d points, want 1..64", len(pts))
	}
	// Retained points must be a subsequence of the offers, in order,
	// always starting at the first offer.
	if pts[0].V != 0 {
		t.Fatalf("first retained point is %v, want offer 0", pts[0].V)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].V <= pts[i-1].V {
			t.Fatalf("retained points out of order: %v after %v", pts[i].V, pts[i-1].V)
		}
	}
}

// TestHistoryDownsamplingDeterministic re-offers the same sequence
// under different GOMAXPROCS values and requires identical retained
// series: thinning depends only on the offer sequence.
func TestHistoryDownsamplingDeterministic(t *testing.T) {
	run := func(procs int) []HistoryPoint {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		h := NewHistory(32)
		offerSeq(h, "m", 7777)
		return h.Series("m")
	}
	a := run(1)
	b := run(runtime.NumCPU())
	if len(a) != len(b) {
		t.Fatalf("series lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestHistoryConcurrentWriters hammers the store from many goroutines
// (shared series and private series) under -race, then checks every
// private series retained a consistent bounded subsequence.
func TestHistoryConcurrentWriters(t *testing.T) {
	h := NewHistory(16)
	const writers = 8
	const perWriter = 5000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := string(rune('a' + w))
			for i := 0; i < perWriter; i++ {
				h.Offer("shared", histEpoch, float64(i))
				h.Offer(name, histEpoch.Add(time.Duration(i)), float64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := len(h.Names()); got != writers+1 {
		t.Fatalf("store has %d series, want %d", got, writers+1)
	}
	for w := 0; w < writers; w++ {
		name := string(rune('a' + w))
		pts := h.Series(name)
		if len(pts) == 0 || len(pts) >= 16 {
			t.Fatalf("series %s has %d points, want 1..15", name, len(pts))
		}
		for i := 1; i < len(pts); i++ {
			if pts[i].V <= pts[i-1].V {
				t.Fatalf("series %s out of order at %d", name, i)
			}
		}
	}
	if pts := h.Series("shared"); len(pts) == 0 || len(pts) >= 16 {
		t.Fatalf("shared series has %d points, want 1..15", len(pts))
	}
}

func TestHistoryStrideAlignment(t *testing.T) {
	// After the first thinning (cap 4), accepted offers must be exactly
	// the multiples of the doubled stride.
	h := NewHistory(4)
	offerSeq(h, "m", 32)
	pts := h.Series("m")
	for _, p := range pts {
		if int(p.V)%2 != 0 {
			t.Fatalf("retained offer %v not aligned to doubled stride", p.V)
		}
	}
}

func TestRegistrySampleHistory(t *testing.T) {
	r := NewRegistry()
	if r.History() != nil {
		t.Fatal("history enabled before EnableHistory")
	}
	r.SampleHistory(histEpoch) // no-op until enabled
	r.EnableHistory(0)
	r.Counter(EpochsTotal).Add(3)
	r.Gauge(BestMetric).Set(0.5)
	r.Histogram(DecisionLatencySeconds).Observe(0.01)
	r.SampleHistory(histEpoch)
	r.Counter(EpochsTotal).Add(2)
	r.SampleHistory(histEpoch.Add(time.Second))

	h := r.History()
	c := h.Series(EpochsTotal)
	if len(c) != 2 || c[0].V != 3 || c[1].V != 5 {
		t.Fatalf("counter series = %+v, want [3 5]", c)
	}
	if g := h.Series(BestMetric); len(g) != 2 || g[0].V != 0.5 {
		t.Fatalf("gauge series = %+v", g)
	}
	if p := h.Series(DecisionLatencySeconds + ":p50"); len(p) != 2 {
		t.Fatalf("histogram p50 series = %+v", p)
	}
	// Nil-safety.
	var nilH *History
	nilH.Offer("x", histEpoch, 1)
	if nilH.Series("x") != nil || nilH.Names() != nil {
		t.Fatal("nil history must be inert")
	}
	var nilR *Registry
	if nilR.EnableHistory(8) != nil || nilR.History() != nil {
		t.Fatal("nil registry must return nil history")
	}
}
