package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// This file is the search-quality audit trail: every decision-time
// prediction the scheduler makes (confidence, ERT, credible band, pool
// verdict) is recorded and later joined against realized outcomes — or
// against simulator oracle ground truth, where the full learning curve
// of every configuration is known up front. The joins yield the
// calibration signals POP's value proposition rests on: reliability
// bins, Brier score, credible-band coverage, ERT error percentiles,
// early-termination precision/recall, classification churn, and
// time-to-best regret.

// QualityMeta describes the run an audit trail belongs to.
type QualityMeta struct {
	Workload string  `json:"workload,omitempty"`
	Policy   string  `json:"policy,omitempty"`
	Target   float64 `json:"target,omitempty"` // normalized [0,1]
	Machines int     `json:"machines,omitempty"`
	MaxEpoch int     `json:"max_epoch,omitempty"`
	Source   string  `json:"source,omitempty"` // "sim" | "cluster"
}

// PredictionRecord is one audited decision-time prediction.
type PredictionRecord struct {
	TMS        int64   `json:"t_ms"` // run-clock unix milliseconds
	Job        string  `json:"job"`
	Epoch      int     `json:"epoch"`
	Confidence float64 `json:"confidence"` // P(reach target within budget)
	ERTSeconds float64 `json:"ert_seconds"`
	Truncated  bool    `json:"truncated,omitempty"`
	Class      string  `json:"class,omitempty"`    // promising|opportunistic|poor
	Decision   string  `json:"decision,omitempty"` // continue|suspend|terminate
	Cause      string  `json:"cause,omitempty"`    // kill_threshold|confidence_floor
	Threshold  float64 `json:"threshold,omitempty"`
	BandLow    float64 `json:"band_lo,omitempty"` // credible band at MaxEpoch
	BandHigh   float64 `json:"band_hi,omitempty"`
}

// OutcomeRecord is how one job actually ended.
type OutcomeRecord struct {
	Job        string  `json:"job"`
	FinalState string  `json:"final_state"` // pending|running|suspended|terminated|completed
	Epochs     int     `json:"epochs"`
	Best       float64 `json:"best"` // normalized best metric observed
	Reached    bool    `json:"reached"`
	ReachEpoch int     `json:"reach_epoch,omitempty"`
}

// OracleRecord is ground truth for one job, derivable only when the
// full learning curve is known (trace-driven simulation): whether the
// configuration would reach the target if trained to its full budget,
// at which epoch, and the cumulative training seconds through each
// epoch (CumSeconds[i] covers epochs 1..i+1) so predicted ERT can be
// compared against actual remaining training time.
type OracleRecord struct {
	Job         string    `json:"job"`
	WouldReach  bool      `json:"would_reach"`
	ReachEpoch  int       `json:"reach_epoch,omitempty"`
	CumSeconds  []float64 `json:"cum_seconds,omitempty"`
	FinalMetric float64   `json:"final_metric"` // normalized, at the budget
	BestMetric  float64   `json:"best_metric"`  // normalized, over the curve
}

// BestSample is one improvement of the global best metric.
type BestSample struct {
	TMS    int64   `json:"t_ms"`
	Job    string  `json:"job"`
	Metric float64 `json:"metric"` // normalized
}

// PoolSample is one snapshot of the pool occupancy split.
type PoolSample struct {
	TMS           int64 `json:"t_ms"`
	Promising     int   `json:"promising"`
	Opportunistic int   `json:"opportunistic"`
	Poor          int   `json:"poor"`
}

// DefaultQualityMaxPredictions bounds the prediction trail; records
// past the bound are counted as dropped, never silently lost.
const DefaultQualityMaxPredictions = 1 << 16

// qualityERTBuckets are the ERT-absolute-error histogram bounds in
// seconds: one minute to four days, covering the paper's
// multi-day-experiment scale.
var qualityERTBuckets = []float64{
	60, 300, 900, 3600, 4 * 3600, 12 * 3600, 24 * 3600, 48 * 3600, 96 * 3600,
}

// QualityAudit accumulates the prediction trail and its joins. All
// methods are nil-safe no-ops and safe for concurrent use; the
// accumulated state is deterministic given the same record sequence
// (no wall-clock reads, no map-order dependence).
type QualityAudit struct {
	mu       sync.Mutex
	meta     QualityMeta
	preds    []PredictionRecord
	predIdx  map[string][]int // job -> indices into preds
	outcomes map[string]OutcomeRecord
	oracles  map[string]OracleRecord
	best     []BestSample
	pools    *sampleRing
	maxPreds int
	dropped  int64

	// Join state: a prediction is scored exactly once, when its job's
	// label source (oracle preferred, else outcome) becomes known.
	scored   map[string]bool // job's existing preds already scored
	lastCls  map[string]string
	churn    map[string]int
	churnSum int

	brierSum           float64
	brierN             int
	bandCovered, bandN int
	ertAbs, ertRel     []float64
	termN, truePoorN   int // jobs with oracle: terminated / terminated∧poor
	poorN              int // jobs with oracle that would not reach

	// Registry mirrors (nil-safe when the audit is standalone).
	predsC, droppedC, outcomesC, churnC *Counter
	brierG, coverageG, precG, recG      *Gauge
	ertAbsH                             *Histogram
}

// NewQualityAudit builds a standalone audit (no registry mirrors).
func NewQualityAudit(meta QualityMeta) *QualityAudit {
	return &QualityAudit{
		meta:     meta,
		predIdx:  make(map[string][]int),
		outcomes: make(map[string]OutcomeRecord),
		oracles:  make(map[string]OracleRecord),
		pools:    newSampleRing(4096),
		maxPreds: DefaultQualityMaxPredictions,
		scored:   make(map[string]bool),
		lastCls:  make(map[string]string),
		churn:    make(map[string]int),
	}
}

// bind mirrors the audit's aggregates onto registry metrics.
func (q *QualityAudit) bind(r *Registry) {
	q.predsC = r.Counter(QualityPredictionsTotal)
	q.droppedC = r.Counter(QualityPredictionsDroppedTotal)
	q.outcomesC = r.Counter(QualityOutcomesTotal)
	q.churnC = r.Counter(QualityClassChurnTotal)
	q.brierG = r.Gauge(QualityBrierScore)
	q.coverageG = r.Gauge(QualityBandCoverageRatio)
	q.precG = r.Gauge(QualityEarlyTermPrecision)
	q.recG = r.Gauge(QualityEarlyTermRecall)
	q.ertAbsH = r.Histogram(QualityERTAbsErrorSeconds, qualityERTBuckets...)
}

// SetMeta replaces the audit's run description.
func (q *QualityAudit) SetMeta(m QualityMeta) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.meta = m
	q.mu.Unlock()
}

// RecordPrediction appends one decision-time prediction. If the job's
// ground truth is already known the prediction is scored immediately.
func (q *QualityAudit) RecordPrediction(p PredictionRecord) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.preds) >= q.maxPreds {
		q.dropped++
		q.droppedC.Inc()
		return
	}
	q.preds = append(q.preds, p)
	q.predIdx[p.Job] = append(q.predIdx[p.Job], len(q.preds)-1)
	q.predsC.Inc()
	if p.Class != "" {
		if last := q.lastCls[p.Job]; last != "" && last != p.Class {
			q.churn[p.Job]++
			q.churnSum++
			q.churnC.Inc()
		}
		q.lastCls[p.Job] = p.Class
	}
	if q.scored[p.Job] {
		q.scorePred(p)
		q.refreshGaugesLocked()
	}
}

// ObserveDecisionSpan builds a PredictionRecord from a finished
// decision span's annotations — the same attributes POP writes for the
// tracer (confidence, ert_seconds, class, cause, threshold, band) —
// and records it. Spans without an estimate (kill-threshold prunes)
// still record with class "poor" so termination verdicts are audited.
func (q *QualityAudit) ObserveDecisionSpan(t time.Time, sp *Span, decision string) {
	if q == nil || sp == nil {
		return
	}
	p := PredictionRecord{
		TMS:      t.UnixMilli(),
		Job:      spanJob(sp),
		Epoch:    spanEpoch(sp),
		Decision: decision,
	}
	if a, ok := sp.Attr("confidence"); ok {
		p.Confidence = a.Val
	}
	if a, ok := sp.Attr("ert_seconds"); ok {
		p.ERTSeconds = a.Val
	}
	if _, ok := sp.Attr("truncated"); ok {
		p.Truncated = true
	}
	if a, ok := sp.Attr("class"); ok {
		p.Class = a.Str
	}
	if a, ok := sp.Attr("cause"); ok {
		p.Cause = a.Str
		p.Class = "poor" // pruned: the scheduler judged the job poor
	}
	if a, ok := sp.Attr("threshold"); ok {
		p.Threshold = a.Val
	}
	if a, ok := sp.Attr("band_lo"); ok {
		p.BandLow = a.Val
	}
	if a, ok := sp.Attr("band_hi"); ok {
		p.BandHigh = a.Val
	}
	q.RecordPrediction(p)
}

// RecordOracle stores ground truth for one job and scores any
// predictions already recorded for it. Oracles take precedence over
// observed outcomes as the label source, so engines that know ground
// truth (the simulator) should record oracles before predictions.
func (q *QualityAudit) RecordOracle(o OracleRecord) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, dup := q.oracles[o.Job]; dup {
		return
	}
	q.oracles[o.Job] = o
	if !o.WouldReach {
		q.poorN++
	}
	if out, ok := q.outcomes[o.Job]; ok && out.FinalState == "terminated" {
		q.termN++
		if !o.WouldReach {
			q.truePoorN++
		}
	}
	if !q.scored[o.Job] {
		q.scored[o.Job] = true
		for _, i := range q.predIdx[o.Job] {
			q.scorePred(q.preds[i])
		}
	}
	q.refreshGaugesLocked()
}

// RecordOutcome stores how a job ended. For jobs without an oracle the
// outcome becomes the label source and pending predictions are scored
// against it.
func (q *QualityAudit) RecordOutcome(o OutcomeRecord) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if _, dup := q.outcomes[o.Job]; dup {
		return
	}
	q.outcomes[o.Job] = o
	q.outcomesC.Inc()
	if or, ok := q.oracles[o.Job]; ok {
		if o.FinalState == "terminated" {
			q.termN++
			if !or.WouldReach {
				q.truePoorN++
			}
		}
	} else if !q.scored[o.Job] {
		q.scored[o.Job] = true
		for _, i := range q.predIdx[o.Job] {
			q.scorePred(q.preds[i])
		}
	}
	q.refreshGaugesLocked()
}

// RecordBest notes a new global best metric (normalized).
func (q *QualityAudit) RecordBest(t time.Time, job string, metric float64) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if n := len(q.best); n > 0 && metric <= q.best[n-1].Metric {
		return
	}
	q.best = append(q.best, BestSample{TMS: t.UnixMilli(), Job: job, Metric: metric})
}

// RecordPool samples the pool occupancy split.
func (q *QualityAudit) RecordPool(t time.Time, promising, opportunistic, poor int) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.pools.offer(PoolSample{TMS: t.UnixMilli(), Promising: promising, Opportunistic: opportunistic, Poor: poor})
	q.mu.Unlock()
}

// scorePred folds one prediction into the running joins; callers hold
// q.mu and guarantee the job's label source exists.
func (q *QualityAudit) scorePred(p PredictionRecord) {
	label, realized, ok := q.labelLocked(p.Job)
	if !ok {
		return
	}
	diff := p.Confidence - label
	q.brierSum += diff * diff
	q.brierN++
	if p.BandHigh > p.BandLow {
		q.bandN++
		if realized >= p.BandLow && realized <= p.BandHigh {
			q.bandCovered++
		}
	}
	// ERT error needs per-epoch training-time ground truth: only jobs
	// whose oracle says they reach, from predictions made before the
	// reach epoch, excluding budget-truncated estimates.
	or, ok := q.oracles[p.Job]
	if !ok || !or.WouldReach || p.Truncated {
		return
	}
	r := or.ReachEpoch
	if r < 1 || r > len(or.CumSeconds) || p.Epoch < 1 || p.Epoch >= r || p.Epoch > len(or.CumSeconds) {
		return
	}
	actual := or.CumSeconds[r-1] - or.CumSeconds[p.Epoch-1]
	if actual <= 0 {
		return
	}
	abs := p.ERTSeconds - actual
	if abs < 0 {
		abs = -abs
	}
	q.ertAbs = append(q.ertAbs, abs)
	q.ertRel = append(q.ertRel, abs/actual)
	q.ertAbsH.Observe(abs)
}

// labelLocked returns the calibration label (1 = reaches target) and
// the realized final normalized metric for one job.
func (q *QualityAudit) labelLocked(job string) (label, realized float64, ok bool) {
	if or, has := q.oracles[job]; has {
		if or.WouldReach {
			label = 1
		}
		return label, or.FinalMetric, true
	}
	if out, has := q.outcomes[job]; has {
		if out.Reached {
			label = 1
		}
		return label, out.Best, true
	}
	return 0, 0, false
}

// refreshGaugesLocked republishes the derived gauges.
func (q *QualityAudit) refreshGaugesLocked() {
	if q.brierN > 0 {
		q.brierG.Set(q.brierSum / float64(q.brierN))
	}
	if q.bandN > 0 {
		q.coverageG.Set(float64(q.bandCovered) / float64(q.bandN))
	}
	if q.termN > 0 {
		q.precG.Set(float64(q.truePoorN) / float64(q.termN))
	}
	if q.poorN > 0 {
		q.recG.Set(float64(q.truePoorN) / float64(q.poorN))
	}
}

// --- Report -----------------------------------------------------------

// ReliabilityBin is one confidence bucket of the reliability diagram.
type ReliabilityBin struct {
	Low            float64 `json:"low"`
	High           float64 `json:"high"`
	Count          int     `json:"count"`
	MeanConfidence float64 `json:"mean_confidence"`
	Observed       float64 `json:"observed_frequency"`
}

// BandCoverage summarizes credible-band calibration.
type BandCoverage struct {
	Count   int     `json:"count"`
	Covered int     `json:"covered"`
	Ratio   float64 `json:"ratio"`
}

// ERTErrorStats holds ERT error percentiles against oracle truth.
type ERTErrorStats struct {
	Count  int     `json:"count"`
	AbsP50 float64 `json:"abs_p50_seconds"`
	AbsP90 float64 `json:"abs_p90_seconds"`
	AbsP99 float64 `json:"abs_p99_seconds"`
	RelP50 float64 `json:"rel_p50"`
	RelP90 float64 `json:"rel_p90"`
	RelP99 float64 `json:"rel_p99"`
}

// EarlyTermStats is the early-termination confusion versus oracle
// ground truth.
type EarlyTermStats struct {
	Terminated int     `json:"terminated"`
	TruePoor   int     `json:"true_poor"`
	FalsePoor  int     `json:"false_poor"`
	PoorTotal  int     `json:"poor_total"`
	Precision  float64 `json:"precision"`
	Recall     float64 `json:"recall"`
}

// RegretPoint is one step of the time-to-best regret curve.
type RegretPoint struct {
	TMS    int64   `json:"t_ms"`
	Best   float64 `json:"best"`
	Regret float64 `json:"regret"`
}

// QualityReport is the computed calibration summary, served at
// /debug/obs/quality and rendered by hdreport.
type QualityReport struct {
	Meta               QualityMeta      `json:"meta"`
	Predictions        int              `json:"predictions"`
	DroppedPredictions int64            `json:"dropped_predictions,omitempty"`
	Outcomes           int              `json:"outcomes"`
	Oracles            int              `json:"oracles"`
	Scored             int              `json:"scored"`
	Reliability        []ReliabilityBin `json:"reliability"`
	BrierScore         float64          `json:"brier_score"`
	Band               BandCoverage     `json:"band_coverage"`
	ERTError           ERTErrorStats    `json:"ert_error"`
	EarlyTerm          EarlyTermStats   `json:"early_termination"`
	ChurnTotal         int              `json:"class_churn_total"`
	ChurnedJobs        int              `json:"churned_jobs"`
	OracleBest         float64          `json:"oracle_best,omitempty"`
	TimeToBestMS       int64            `json:"time_to_best_ms,omitempty"`
	Regret             []RegretPoint    `json:"regret,omitempty"`
	PoolTimeline       []PoolSample     `json:"pool_timeline,omitempty"`
}

// reliabilityBins is the fixed bin count of the reliability diagram.
const reliabilityBins = 10

// Report computes the full calibration summary. The output is
// deterministic for a given record sequence: bins are fixed, map
// iterations are sorted, and no wall-clock values appear.
func (q *QualityAudit) Report() *QualityReport {
	if q == nil {
		return &QualityReport{Reliability: make([]ReliabilityBin, reliabilityBins)}
	}
	q.mu.Lock()
	defer q.mu.Unlock()

	rep := &QualityReport{
		Meta:               q.meta,
		Predictions:        len(q.preds),
		DroppedPredictions: q.dropped,
		Outcomes:           len(q.outcomes),
		Oracles:            len(q.oracles),
		ChurnTotal:         q.churnSum,
		ChurnedJobs:        len(q.churn),
	}

	// Reliability diagram + Brier over every scored prediction.
	type binAcc struct {
		n        int
		confSum  float64
		labelSum float64
	}
	bins := make([]binAcc, reliabilityBins)
	for _, p := range q.preds {
		label, _, ok := q.labelLocked(p.Job)
		if !ok || !q.scored[p.Job] {
			continue
		}
		rep.Scored++
		b := int(p.Confidence * reliabilityBins)
		if b >= reliabilityBins {
			b = reliabilityBins - 1
		}
		if b < 0 {
			b = 0
		}
		bins[b].n++
		bins[b].confSum += p.Confidence
		bins[b].labelSum += label
	}
	rep.Reliability = make([]ReliabilityBin, reliabilityBins)
	for i := range bins {
		rb := ReliabilityBin{
			Low:   float64(i) / reliabilityBins,
			High:  float64(i+1) / reliabilityBins,
			Count: bins[i].n,
		}
		if bins[i].n > 0 {
			rb.MeanConfidence = bins[i].confSum / float64(bins[i].n)
			rb.Observed = bins[i].labelSum / float64(bins[i].n)
		}
		rep.Reliability[i] = rb
	}
	if q.brierN > 0 {
		rep.BrierScore = q.brierSum / float64(q.brierN)
	}

	rep.Band = BandCoverage{Count: q.bandN, Covered: q.bandCovered}
	if q.bandN > 0 {
		rep.Band.Ratio = float64(q.bandCovered) / float64(q.bandN)
	}

	rep.ERTError = ERTErrorStats{Count: len(q.ertAbs)}
	if len(q.ertAbs) > 0 {
		abs := append([]float64(nil), q.ertAbs...)
		rel := append([]float64(nil), q.ertRel...)
		sort.Float64s(abs)
		sort.Float64s(rel)
		rep.ERTError.AbsP50 = percentile(abs, 0.50)
		rep.ERTError.AbsP90 = percentile(abs, 0.90)
		rep.ERTError.AbsP99 = percentile(abs, 0.99)
		rep.ERTError.RelP50 = percentile(rel, 0.50)
		rep.ERTError.RelP90 = percentile(rel, 0.90)
		rep.ERTError.RelP99 = percentile(rel, 0.99)
	}

	rep.EarlyTerm = EarlyTermStats{
		Terminated: q.termN,
		TruePoor:   q.truePoorN,
		FalsePoor:  q.termN - q.truePoorN,
		PoorTotal:  q.poorN,
	}
	if q.termN > 0 {
		rep.EarlyTerm.Precision = float64(q.truePoorN) / float64(q.termN)
	}
	if q.poorN > 0 {
		rep.EarlyTerm.Recall = float64(q.truePoorN) / float64(q.poorN)
	}

	// Regret curve: distance of the running best from the best any
	// configuration could have achieved (oracle best when available,
	// else the run's own final best — then the curve measures time to
	// the run's own optimum).
	ceiling := 0.0
	for _, job := range sortedKeysOracle(q.oracles) {
		if b := q.oracles[job].BestMetric; b > ceiling {
			ceiling = b
		}
	}
	if ceiling == 0 {
		for _, s := range q.best {
			if s.Metric > ceiling {
				ceiling = s.Metric
			}
		}
	}
	rep.OracleBest = ceiling
	for _, s := range q.best {
		reg := ceiling - s.Metric
		if reg < 0 {
			reg = 0
		}
		rep.Regret = append(rep.Regret, RegretPoint{TMS: s.TMS, Best: s.Metric, Regret: reg})
	}
	if n := len(q.best); n > 0 {
		rep.TimeToBestMS = q.best[n-1].TMS
	}
	rep.PoolTimeline = q.pools.snapshot()
	return rep
}

// percentile returns the nearest-rank percentile of a sorted slice.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted)-1) + 0.5)
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func sortedKeysOracle(m map[string]OracleRecord) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// --- JSONL serialization ----------------------------------------------

// qualityLine is one line of the quality audit log; exactly one of the
// payload pointers is set, selected by Kind.
type qualityLine struct {
	Kind    string            `json:"kind"` // meta|oracle|pred|outcome|best|pool
	Meta    *QualityMeta      `json:"meta,omitempty"`
	Oracle  *OracleRecord     `json:"oracle,omitempty"`
	Pred    *PredictionRecord `json:"pred,omitempty"`
	Outcome *OutcomeRecord    `json:"outcome,omitempty"`
	Best    *BestSample       `json:"best,omitempty"`
	Pool    *PoolSample       `json:"pool,omitempty"`
}

// WriteLog serializes the audit as JSON lines: meta first, then
// oracles (so replay scores predictions against ground truth exactly
// as the original run did), then predictions, outcomes, best samples,
// and pool samples. The byte output is deterministic for a given
// record sequence.
func (q *QualityAudit) WriteLog(w io.Writer) error {
	if q == nil {
		return nil
	}
	// Snapshot the record set under the lock, serialize outside it:
	// writing to a slow sink must not stall recording.
	q.mu.Lock()
	lines := make([]qualityLine, 0, 1+len(q.oracles)+len(q.preds)+len(q.outcomes)+len(q.best))
	meta := q.meta
	lines = append(lines, qualityLine{Kind: "meta", Meta: &meta})
	for _, job := range sortedKeysOracle(q.oracles) {
		o := q.oracles[job]
		lines = append(lines, qualityLine{Kind: "oracle", Oracle: &o})
	}
	for i := range q.preds {
		p := q.preds[i]
		lines = append(lines, qualityLine{Kind: "pred", Pred: &p})
	}
	outJobs := make([]string, 0, len(q.outcomes))
	for job := range q.outcomes {
		outJobs = append(outJobs, job)
	}
	sort.Strings(outJobs)
	for _, job := range outJobs {
		o := q.outcomes[job]
		lines = append(lines, qualityLine{Kind: "outcome", Outcome: &o})
	}
	for i := range q.best {
		b := q.best[i]
		lines = append(lines, qualityLine{Kind: "best", Best: &b})
	}
	for _, p := range q.pools.snapshot() {
		p := p
		lines = append(lines, qualityLine{Kind: "pool", Pool: &p})
	}
	q.mu.Unlock()

	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range lines {
		if err := enc.Encode(lines[i]); err != nil {
			return fmt.Errorf("obs: quality log: %w", err)
		}
	}
	return bw.Flush()
}

// ReadQualityLog reconstructs an audit by replaying a quality log.
// Unknown line kinds are skipped so newer logs stay readable.
func ReadQualityLog(r io.Reader) (*QualityAudit, error) {
	q := NewQualityAudit(QualityMeta{})
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var l qualityLine
		if err := json.Unmarshal(line, &l); err != nil {
			return nil, fmt.Errorf("obs: quality log line %d: %w", n, err)
		}
		switch {
		case l.Kind == "meta" && l.Meta != nil:
			q.SetMeta(*l.Meta)
		case l.Kind == "oracle" && l.Oracle != nil:
			q.RecordOracle(*l.Oracle)
		case l.Kind == "pred" && l.Pred != nil:
			q.RecordPrediction(*l.Pred)
		case l.Kind == "outcome" && l.Outcome != nil:
			q.RecordOutcome(*l.Outcome)
		case l.Kind == "best" && l.Best != nil:
			q.mu.Lock()
			q.best = append(q.best, *l.Best)
			q.mu.Unlock()
		case l.Kind == "pool" && l.Pool != nil:
			q.mu.Lock()
			q.pools.offer(*l.Pool)
			q.mu.Unlock()
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: quality log: %w", err)
	}
	if n == 0 {
		return nil, fmt.Errorf("obs: quality log is empty")
	}
	return q, nil
}

// sampleRing bounds the pool timeline with the same stride-doubling
// thinning the history store uses: accept every stride-th offer; at
// capacity keep even-indexed points and double the stride. The kept
// set depends only on the offer sequence.
type sampleRing struct {
	cap    int
	stride int64
	seen   int64
	pts    []PoolSample
}

func newSampleRing(capacity int) *sampleRing {
	if capacity < 2 {
		capacity = 2
	}
	return &sampleRing{cap: capacity, stride: 1}
}

func (s *sampleRing) offer(p PoolSample) {
	idx := s.seen
	s.seen++
	if idx%s.stride != 0 {
		return
	}
	s.pts = append(s.pts, p)
	if len(s.pts) >= s.cap {
		kept := s.pts[:0]
		for i := 0; i < len(s.pts); i += 2 {
			kept = append(kept, s.pts[i])
		}
		s.pts = kept
		s.stride *= 2
	}
}

func (s *sampleRing) snapshot() []PoolSample {
	return append([]PoolSample(nil), s.pts...)
}

// spanJob / spanEpoch read a span's identity fields via its snapshot
// accessors without exporting the underlying struct fields.
func spanJob(sp *Span) string {
	if sp == nil {
		return ""
	}
	return sp.job
}

func spanEpoch(sp *Span) int {
	if sp == nil {
		return 0
	}
	return sp.epoch
}
