package obs

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

var qEpoch = time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)

// seedAudit builds an audit with two oracle-known jobs: j0 reaches at
// epoch 4 (1s epochs), j1 never reaches and is terminated.
func seedAudit(q *QualityAudit) {
	q.RecordOracle(OracleRecord{
		Job: "j0", WouldReach: true, ReachEpoch: 4,
		CumSeconds: []float64{1, 2, 3, 4, 5, 6}, FinalMetric: 0.9, BestMetric: 0.92,
	})
	q.RecordOracle(OracleRecord{
		Job: "j1", WouldReach: false,
		CumSeconds: []float64{1, 2, 3, 4, 5, 6}, FinalMetric: 0.3, BestMetric: 0.35,
	})
	q.RecordPrediction(PredictionRecord{
		TMS: 1000, Job: "j0", Epoch: 2, Confidence: 0.8, ERTSeconds: 2.5,
		Class: "promising", Decision: "continue", BandLow: 0.85, BandHigh: 0.95,
	})
	q.RecordPrediction(PredictionRecord{
		TMS: 2000, Job: "j1", Epoch: 2, Confidence: 0.1, ERTSeconds: 100,
		Class: "opportunistic", Decision: "suspend", BandLow: 0.5, BandHigh: 0.7,
	})
	q.RecordPrediction(PredictionRecord{
		TMS: 3000, Job: "j1", Epoch: 4, Confidence: 0.02, ERTSeconds: 100,
		Class: "poor", Decision: "terminate", Cause: "confidence_floor",
	})
	q.RecordOutcome(OutcomeRecord{Job: "j0", FinalState: "completed", Epochs: 6, Best: 0.92, Reached: true, ReachEpoch: 4})
	q.RecordOutcome(OutcomeRecord{Job: "j1", FinalState: "terminated", Epochs: 4, Best: 0.35})
	q.RecordBest(qEpoch.Add(1*time.Second), "j1", 0.35)
	q.RecordBest(qEpoch.Add(4*time.Second), "j0", 0.92)
	q.RecordPool(qEpoch.Add(1*time.Second), 1, 1, 0)
	q.RecordPool(qEpoch.Add(4*time.Second), 1, 0, 1)
}

func TestQualityReportJoins(t *testing.T) {
	q := NewQualityAudit(QualityMeta{Workload: "w", Policy: "pop", Target: 0.8, Source: "sim"})
	seedAudit(q)
	rep := q.Report()

	if rep.Predictions != 3 || rep.Scored != 3 {
		t.Fatalf("predictions=%d scored=%d, want 3/3", rep.Predictions, rep.Scored)
	}
	if len(rep.Reliability) != reliabilityBins {
		t.Fatalf("reliability has %d bins, want %d", len(rep.Reliability), reliabilityBins)
	}
	// j0's 0.8-confidence prediction lands in bin [0.8, 0.9) with
	// observed frequency 1; j1's 0.1 pred in bin [0.1, 0.2) and 0.02
	// pred in bin [0, 0.1), both with observed frequency 0.
	if b := rep.Reliability[8]; b.Count != 1 || b.Observed != 1 {
		t.Fatalf("bin 8 = %+v, want count 1 observed 1", b)
	}
	if b := rep.Reliability[1]; b.Count != 1 || b.Observed != 0 {
		t.Fatalf("bin 1 = %+v, want count 1 observed 0", b)
	}
	if b := rep.Reliability[0]; b.Count != 1 || b.Observed != 0 {
		t.Fatalf("bin 0 = %+v, want count 1 observed 0", b)
	}
	// Brier: ((0.8-1)^2 + (0.1-0)^2 + (0.02-0)^2) / 3
	wantBrier := (0.04 + 0.01 + 0.0004) / 3
	if d := rep.BrierScore - wantBrier; d > 1e-12 || d < -1e-12 {
		t.Fatalf("brier = %v, want %v", rep.BrierScore, wantBrier)
	}
	// Bands: j0's band covers 0.9 (hit), j1's band [0.5,0.7] misses 0.3.
	if rep.Band.Count != 2 || rep.Band.Covered != 1 {
		t.Fatalf("band coverage = %+v, want 1/2", rep.Band)
	}
	// ERT error: only j0's pred qualifies; actual = cum[3]-cum[1] = 2s,
	// predicted 2.5s -> abs 0.5, rel 0.25.
	if rep.ERTError.Count != 1 || rep.ERTError.AbsP50 != 0.5 || rep.ERTError.RelP50 != 0.25 {
		t.Fatalf("ert error = %+v, want count 1 abs 0.5 rel 0.25", rep.ERTError)
	}
	// Early termination: j1 terminated and truly poor.
	et := rep.EarlyTerm
	if et.Terminated != 1 || et.TruePoor != 1 || et.PoorTotal != 1 || et.Precision != 1 || et.Recall != 1 {
		t.Fatalf("early-term = %+v", et)
	}
	// Churn: j1 flipped opportunistic -> poor.
	if rep.ChurnTotal != 1 || rep.ChurnedJobs != 1 {
		t.Fatalf("churn = %d/%d, want 1/1", rep.ChurnTotal, rep.ChurnedJobs)
	}
	// Regret against the oracle ceiling 0.92.
	if len(rep.Regret) != 2 || rep.Regret[0].Regret <= rep.Regret[1].Regret {
		t.Fatalf("regret curve = %+v", rep.Regret)
	}
	if rep.Regret[1].Regret != 0 {
		t.Fatalf("final regret = %v, want 0", rep.Regret[1].Regret)
	}
	if len(rep.PoolTimeline) != 2 {
		t.Fatalf("pool timeline has %d samples, want 2", len(rep.PoolTimeline))
	}
}

// TestQualityOutcomeLabelFallback joins against observed outcomes when
// no oracle exists (the live-cluster path), including predictions
// recorded before the outcome.
func TestQualityOutcomeLabelFallback(t *testing.T) {
	q := NewQualityAudit(QualityMeta{Source: "cluster"})
	q.RecordPrediction(PredictionRecord{Job: "j", Epoch: 10, Confidence: 0.9, Class: "promising"})
	if rep := q.Report(); rep.Scored != 0 {
		t.Fatalf("scored %d before any label", rep.Scored)
	}
	q.RecordOutcome(OutcomeRecord{Job: "j", FinalState: "completed", Best: 0.9, Reached: true})
	q.RecordPrediction(PredictionRecord{Job: "j", Epoch: 20, Confidence: 0.95, Class: "promising"})
	rep := q.Report()
	if rep.Scored != 2 {
		t.Fatalf("scored = %d, want 2 (pre- and post-outcome preds)", rep.Scored)
	}
	if rep.ERTError.Count != 0 {
		t.Fatalf("ERT error computed without oracle: %+v", rep.ERTError)
	}
}

func TestQualityLogRoundTrip(t *testing.T) {
	q := NewQualityAudit(QualityMeta{Workload: "w", Policy: "pop", Target: 0.8, Source: "sim"})
	seedAudit(q)
	var buf bytes.Buffer
	if err := q.WriteLog(&buf); err != nil {
		t.Fatal(err)
	}
	q2, err := ReadQualityLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf2 bytes.Buffer
	if err := q2.WriteLog(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("quality log round trip is not byte-identical")
	}
	a, b := q.Report(), q2.Report()
	if a.BrierScore != b.BrierScore || a.Scored != b.Scored || a.ERTError != b.ERTError || a.EarlyTerm != b.EarlyTerm {
		t.Fatalf("round-tripped report differs:\n%+v\n%+v", a, b)
	}
	if _, err := ReadQualityLog(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty quality log must error")
	}
}

func TestQualityRegistryMetrics(t *testing.T) {
	r := NewRegistry()
	q := r.EnableQuality(QualityMeta{Source: "sim"})
	if q == nil || r.Quality() != q || r.EnableQuality(QualityMeta{}) != q {
		t.Fatal("EnableQuality must be idempotent and exposed via Quality()")
	}
	seedAudit(q)
	if got := r.Counter(QualityPredictionsTotal).Value(); got != 3 {
		t.Fatalf("predictions counter = %d, want 3", got)
	}
	if got := r.Counter(QualityOutcomesTotal).Value(); got != 2 {
		t.Fatalf("outcomes counter = %d, want 2", got)
	}
	if got := r.Counter(QualityClassChurnTotal).Value(); got != 1 {
		t.Fatalf("churn counter = %d, want 1", got)
	}
	if got := r.Gauge(QualityEarlyTermPrecision).Value(); got != 1 {
		t.Fatalf("precision gauge = %v, want 1", got)
	}
	if got := r.Histogram(QualityERTAbsErrorSeconds).Count(); got != 1 {
		t.Fatalf("ert error histogram count = %d, want 1", got)
	}
	brier := r.Gauge(QualityBrierScore).Value()
	if brier <= 0 || brier > 0.1 {
		t.Fatalf("brier gauge = %v", brier)
	}
}

func TestQualityBounded(t *testing.T) {
	q := NewQualityAudit(QualityMeta{})
	q.maxPreds = 4
	for i := 0; i < 10; i++ {
		q.RecordPrediction(PredictionRecord{Job: "j", Epoch: i, Confidence: 0.5})
	}
	rep := q.Report()
	if rep.Predictions != 4 || rep.DroppedPredictions != 6 {
		t.Fatalf("kept %d dropped %d, want 4/6", rep.Predictions, rep.DroppedPredictions)
	}
}

func TestQualityObserveDecisionSpan(t *testing.T) {
	tr := NewTracer(8)
	sp := tr.Start("decision", "j7", 10)
	sp.SetAttr("confidence", 0.42)
	sp.SetAttr("ert_seconds", 1234)
	sp.SetAttr("threshold", 0.3)
	sp.SetAttr("band_lo", 0.6)
	sp.SetAttr("band_hi", 0.9)
	sp.SetStr("class", "opportunistic")
	q := NewQualityAudit(QualityMeta{})
	q.ObserveDecisionSpan(qEpoch, sp, "suspend")

	kill := tr.Start("decision", "j8", 20)
	kill.SetStr("cause", "kill_threshold")
	q.ObserveDecisionSpan(qEpoch, kill, "terminate")

	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.preds) != 2 {
		t.Fatalf("recorded %d preds, want 2", len(q.preds))
	}
	p := q.preds[0]
	if p.Job != "j7" || p.Epoch != 10 || p.Confidence != 0.42 || p.ERTSeconds != 1234 ||
		p.BandLow != 0.6 || p.BandHigh != 0.9 || p.Class != "opportunistic" || p.Decision != "suspend" {
		t.Fatalf("span-derived prediction = %+v", p)
	}
	if k := q.preds[1]; k.Class != "poor" || k.Cause != "kill_threshold" || k.Decision != "terminate" {
		t.Fatalf("kill-threshold prediction = %+v", k)
	}
}

// TestQualityConcurrent exercises the audit from concurrent recorders
// under -race.
func TestQualityConcurrent(t *testing.T) {
	r := NewRegistry()
	q := r.EnableQuality(QualityMeta{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			job := string(rune('a' + w))
			q.RecordOracle(OracleRecord{Job: job, WouldReach: w%2 == 0, ReachEpoch: 2, CumSeconds: []float64{1, 2, 3}, FinalMetric: 0.9, BestMetric: 0.9})
			for i := 0; i < 500; i++ {
				q.RecordPrediction(PredictionRecord{Job: job, Epoch: i, Confidence: 0.5, Class: "opportunistic"})
				q.RecordPool(qEpoch, 1, 2, 3)
				q.RecordBest(qEpoch, job, float64(i))
			}
			q.RecordOutcome(OutcomeRecord{Job: job, FinalState: "completed", Reached: w%2 == 0})
		}(w)
	}
	wg.Wait()
	rep := q.Report()
	if rep.Predictions != 2000 || rep.Scored != 2000 {
		t.Fatalf("predictions=%d scored=%d, want 2000/2000", rep.Predictions, rep.Scored)
	}
	var nilQ *QualityAudit
	nilQ.RecordPrediction(PredictionRecord{})
	nilQ.RecordOracle(OracleRecord{})
	nilQ.RecordOutcome(OutcomeRecord{})
	nilQ.RecordBest(qEpoch, "x", 1)
	nilQ.RecordPool(qEpoch, 0, 0, 0)
	nilQ.ObserveDecisionSpan(qEpoch, nil, "continue")
	if nilQ.Report() == nil {
		t.Fatal("nil audit must still report")
	}
}
