// Package policy implements the Scheduling Algorithm Policy (SAP) layer
// of HyperDrive (paper §4.2 and §5.3): the three up-call interface
// through which the framework drives a policy, and the four policies
// evaluated in the paper — Default (greedy FIFO), Bandit (TuPAQ's
// action-elimination), EarlyTerm (Domhan et al.'s predictive
// termination), and POP (this paper's contribution).
//
// Policies are engine-agnostic: the same implementations run inside the
// live cluster runtime (internal/cluster) and the discrete-event
// simulator (internal/sim), which is exactly the property §7.1's
// "Pluggable Scheduling Policy" component requires.
package policy

import (
	"fmt"
	"sort"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/appstat"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// Info carries the workload- and experiment-level constants a policy
// may consult: the model owner's domain knowledge (§2.1) plus the
// experiment budget.
type Info struct {
	Workload      string
	Target        float64 // y_target, raw metric scale
	KillThreshold float64 // non-learning cutoff, raw metric scale
	RandomFloor   float64
	EvalBoundary  int // default boundary b
	MaxEpoch      int
	MetricMin     float64 // min-max normalization range (Eq. 4)
	MetricMax     float64
	Reward        bool // reinforcement-learning domain (reward metric)
	TotalSlots    int
	MaxDuration   time.Duration // Tmax
}

// Normalize maps a raw metric onto [0, 1] per §6.3 Eq. 4. For
// supervised accuracy with range (0, 1) this is the identity.
func (in Info) Normalize(v float64) float64 {
	span := in.MetricMax - in.MetricMin
	if span <= 0 {
		return v
	}
	n := (v - in.MetricMin) / span
	if n < 0 {
		return 0
	}
	if n > 1 {
		return 1
	}
	return n
}

// Context is the view of the experiment the framework exposes to a
// SAP. Both engines (live cluster and simulator) implement it.
type Context interface {
	// Info returns the experiment constants.
	Info() Info
	// DB is the AppStat database (§4.2 component ③).
	DB() *appstat.DB
	// Now is the experiment clock.
	Now() time.Time
	// Start is when the experiment began; Tpass = Now - Start.
	Start() time.Time
	// IdleSlots reports currently unoccupied machines.
	IdleSlots() int
	// IdleJobs reports jobs waiting to run (pending or suspended).
	IdleJobs() int
	// StartIdleJob starts the highest-priority idle job on an idle
	// machine, returning false when no job or no machine is
	// available.
	StartIdleJob() (sched.JobID, bool)
	// ActiveJobs lists jobs that are running or suspended.
	ActiveJobs() []sched.JobID
	// JobEpoch reports a job's completed epochs.
	JobEpoch(id sched.JobID) int
	// LabelJob implements the Job Manager's labelJob(jobID, priority)
	// (§4.2): priorities order the idle queue.
	LabelJob(id sched.JobID, priority float64)
	// TerminateIdleJob terminates a suspended (not currently running)
	// job — the Job Manager's terminateJob for jobs off-machine. It
	// returns false when the job is unknown or not suspended. Policies
	// that make round-based eliminations (e.g., successive halving)
	// use it to cut losers at round barriers.
	TerminateIdleJob(id sched.JobID) bool
}

// Policy is a Scheduling Algorithm Policy: the three up-calls of §4.2.
type Policy interface {
	// Name identifies the policy ("pop", "bandit", ...).
	Name() string
	// AllocateJobs is triggered on detection of idle resources.
	AllocateJobs(ctx Context)
	// ApplicationStat is triggered for every reported statistic.
	ApplicationStat(ctx Context, ev sched.Event)
	// OnIterationFinish is triggered when a training iteration
	// finishes; the verdict directs the framework to continue,
	// suspend, or terminate the job.
	OnIterationFinish(ctx Context, ev sched.Event) sched.Decision
}

// FitCounter is implemented by policies that run learning-curve
// predictions. Engines read the counter to model prediction cost (the
// §5.2 "overlap training and prediction" trade-off); it is the same
// counter Instrument rebinds to hyperdrive_mcmc_fits_total, so the
// metric and the cost model share one source of truth.
type FitCounter interface {
	// Fits returns the live counter of curve fits performed so far.
	// Read it with Value(); a nil counter reads as zero.
	Fits() *obs.Counter
}

// Factory builds a fresh policy instance for one experiment run;
// policies are stateful and must not be shared across runs.
type Factory func() (Policy, error)

// Registry maps policy names to factories.
type Registry struct {
	factories map[string]Factory
}

// NewRegistry returns a registry with the four built-in policies at
// their paper-default settings for the given workload info.
func NewRegistry() *Registry {
	r := &Registry{factories: make(map[string]Factory)}
	r.Register("default", func() (Policy, error) { return NewDefault(), nil })
	r.Register("bandit", func() (Policy, error) { return NewBandit(BanditOptions{}) })
	r.Register("earlyterm", func() (Policy, error) { return NewEarlyTerm(EarlyTermOptions{}) })
	r.Register("pop", func() (Policy, error) { return NewPOP(POPOptions{}) })
	r.Register("sha", func() (Policy, error) { return NewSuccessiveHalving(SHAOptions{}) })
	return r
}

// Register adds (or replaces) a factory.
func (r *Registry) Register(name string, f Factory) { r.factories[name] = f }

// New builds a fresh policy by name.
func (r *Registry) New(name string) (Policy, error) {
	f, ok := r.factories[name]
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q (have %v)", name, r.Names())
	}
	return f()
}

// Names lists registered policies, sorted.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.factories))
	for name := range r.factories {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// boundary resolves a policy's evaluation boundary: its configured
// value, else the workload default, else the §9 heuristic of roughly
// 5-10% of the max epoch ("we have found success with a heuristic of
// setting b to be between 5-10% of the max epoch for a job").
func boundary(configured int, info Info) int {
	if configured > 0 {
		return configured
	}
	if info.EvalBoundary > 0 {
		return info.EvalBoundary
	}
	b := info.MaxEpoch / 15
	if b < 1 {
		b = 1
	}
	return b
}

// greedyAllocate starts idle jobs while slots remain: the Default
// SAP's allocation, reused by every policy (§4.2 "provides a simple
// base for more advanced SAPs").
func greedyAllocate(ctx Context) {
	for ctx.IdleSlots() > 0 {
		if _, ok := ctx.StartIdleJob(); !ok {
			return
		}
	}
}
