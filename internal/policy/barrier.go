package policy

import (
	"fmt"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// Barrier wraps another policy to get the paper's "barrier-like epoch
// scheduling" (§4.2): whenever the inner policy would continue a job
// past a barrier boundary, the wrapper suspends it instead, so
// exploration proceeds breadth-first — many configurations each
// running a short stretch per round. HyperDrive's default
// schedule-as-it-goes execution is recovered by not wrapping.
type Barrier struct {
	inner Policy
	every int
}

// NewBarrier wraps inner with a barrier every n epochs (0 = every
// workload evaluation boundary).
func NewBarrier(inner Policy, every int) (*Barrier, error) {
	if inner == nil {
		return nil, fmt.Errorf("policy: barrier needs an inner policy")
	}
	if every < 0 {
		return nil, fmt.Errorf("policy: barrier interval %d must be non-negative", every)
	}
	return &Barrier{inner: inner, every: every}, nil
}

// Name implements Policy.
func (b *Barrier) Name() string { return "barrier(" + b.inner.Name() + ")" }

// AllocateJobs implements Policy.
func (b *Barrier) AllocateJobs(ctx Context) { b.inner.AllocateJobs(ctx) }

// ApplicationStat implements Policy.
func (b *Barrier) ApplicationStat(ctx Context, ev sched.Event) {
	b.inner.ApplicationStat(ctx, ev)
}

// OnIterationFinish implements Policy: the inner verdict stands except
// that Continue becomes Suspend at barrier boundaries while other work
// is waiting (suspending with an empty queue would only idle the
// slot).
func (b *Barrier) OnIterationFinish(ctx Context, ev sched.Event) sched.Decision {
	d := b.inner.OnIterationFinish(ctx, ev)
	if d != sched.Continue {
		return d
	}
	every := boundary(b.every, ctx.Info())
	if ev.Epoch%every == 0 && ev.Epoch < ctx.Info().MaxEpoch && ctx.IdleJobs() > 0 {
		return sched.Suspend
	}
	return d
}

// Fits implements FitCounter when the inner policy does; otherwise it
// returns a nil counter, which reads as zero.
func (b *Barrier) Fits() *obs.Counter {
	if fc, ok := b.inner.(FitCounter); ok {
		return fc.Fits()
	}
	return nil
}

var _ Policy = (*Barrier)(nil)
