package policy

import (
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/appstat"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// fakeCtx is a scriptable Context for policy unit tests.
type fakeCtx struct {
	info       Info
	db         *appstat.DB
	now        time.Time
	start      time.Time
	idleSlots  int
	startQueue []sched.JobID
	active     []sched.JobID
	labels     map[sched.JobID]float64
	started    []sched.JobID
}

func newFakeCtx(info Info) *fakeCtx {
	start := time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC)
	return &fakeCtx{
		info:   info,
		db:     appstat.NewDB(),
		start:  start,
		now:    start,
		labels: make(map[sched.JobID]float64),
	}
}

func (f *fakeCtx) Info() Info       { return f.info }
func (f *fakeCtx) DB() *appstat.DB  { return f.db }
func (f *fakeCtx) Now() time.Time   { return f.now }
func (f *fakeCtx) Start() time.Time { return f.start }
func (f *fakeCtx) IdleSlots() int   { return f.idleSlots }
func (f *fakeCtx) IdleJobs() int    { return len(f.startQueue) }
func (f *fakeCtx) ActiveJobs() []sched.JobID {
	return append([]sched.JobID(nil), f.active...)
}
func (f *fakeCtx) JobEpoch(id sched.JobID) int { return f.db.LastEpoch(id) }
func (f *fakeCtx) LabelJob(id sched.JobID, p float64) {
	f.labels[id] = p
}
func (f *fakeCtx) TerminateIdleJob(id sched.JobID) bool {
	for i, a := range f.active {
		if a == id {
			f.active = append(f.active[:i], f.active[i+1:]...)
			return true
		}
	}
	return false
}
func (f *fakeCtx) StartIdleJob() (sched.JobID, bool) {
	if f.idleSlots == 0 || len(f.startQueue) == 0 {
		return "", false
	}
	id := f.startQueue[0]
	f.startQueue = f.startQueue[1:]
	f.idleSlots--
	f.started = append(f.started, id)
	return id, true
}

var _ Context = (*fakeCtx)(nil)

func slInfo() Info {
	return Info{
		Workload:      "cifar10",
		Target:        0.77,
		KillThreshold: 0.15,
		RandomFloor:   0.10,
		EvalBoundary:  10,
		MaxEpoch:      120,
		MetricMin:     0,
		MetricMax:     1,
		TotalSlots:    4,
		MaxDuration:   12 * time.Hour,
	}
}

func rlInfo() Info {
	return Info{
		Workload:      "lunarlander",
		Target:        200,
		KillThreshold: -100,
		RandomFloor:   -100,
		EvalBoundary:  20,
		MaxEpoch:      200,
		MetricMin:     -500,
		MetricMax:     300,
		Reward:        true,
		TotalSlots:    15,
		MaxDuration:   24 * time.Hour,
	}
}

// feed records a history into the DB with 1-minute epochs.
func feed(ctx *fakeCtx, job sched.JobID, metrics []float64) {
	for i, m := range metrics {
		ctx.db.Report(job, appstat.Stat{Epoch: i + 1, Metric: m, Duration: time.Minute})
	}
}

// risingTo generates n metrics rising from 0.1 toward final.
func risingTo(n int, final float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		x := float64(i+1) / float64(n)
		out[i] = 0.1 + (final-0.1)*(1-1/(1+4*x))*1.25
	}
	return out
}

// flatAt generates n metrics hovering at v.
func flatAt(n int, v float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v + 0.003*float64(i%3)
	}
	return out
}

func TestInfoNormalize(t *testing.T) {
	rl := rlInfo()
	if got := rl.Normalize(-500); got != 0 {
		t.Fatalf("Normalize(-500) = %v", got)
	}
	if got := rl.Normalize(300); got != 1 {
		t.Fatalf("Normalize(300) = %v", got)
	}
	if got := rl.Normalize(-100); got != 0.5 {
		t.Fatalf("Normalize(-100) = %v", got)
	}
	if got := rl.Normalize(-9999); got != 0 {
		t.Fatalf("Normalize clamp low = %v", got)
	}
	sl := slInfo()
	if got := sl.Normalize(0.42); got != 0.42 {
		t.Fatalf("accuracy normalization should be identity, got %v", got)
	}
	degenerate := Info{MetricMin: 1, MetricMax: 1}
	if got := degenerate.Normalize(0.7); got != 0.7 {
		t.Fatalf("degenerate range should pass through, got %v", got)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	want := []string{"bandit", "default", "earlyterm", "pop", "sha"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("Names = %v, want %v", names, want)
		}
	}
	for _, name := range want {
		p, err := r.New(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Fatalf("policy %q reports name %q", name, p.Name())
		}
	}
	if _, err := r.New("hyperband"); err == nil {
		t.Fatal("unknown policy should error")
	}
}

func TestDefaultPolicy(t *testing.T) {
	p := NewDefault()
	ctx := newFakeCtx(slInfo())
	ctx.idleSlots = 2
	ctx.startQueue = []sched.JobID{"a", "b", "c"}
	p.AllocateJobs(ctx)
	if len(ctx.started) != 2 {
		t.Fatalf("started %v, want 2 jobs", ctx.started)
	}
	ev := sched.Event{Job: "a", Epoch: 10, Metric: 0.1}
	p.ApplicationStat(ctx, ev)
	if d := p.OnIterationFinish(ctx, ev); d != sched.Continue {
		t.Fatalf("default decision = %v, want continue", d)
	}
}

func TestBanditTerminatesLaggard(t *testing.T) {
	b, err := NewBandit(BanditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := newFakeCtx(slInfo())
	feed(ctx, "leader", risingTo(10, 0.7))
	feed(ctx, "laggard", flatAt(10, 0.11))
	// 0.11*(1.5) = 0.165 < ~0.7: eliminate.
	if d := b.OnIterationFinish(ctx, sched.Event{Job: "laggard", Epoch: 10}); d != sched.Terminate {
		t.Fatalf("laggard decision = %v, want terminate", d)
	}
	// Leader survives trivially.
	if d := b.OnIterationFinish(ctx, sched.Event{Job: "leader", Epoch: 10}); d != sched.Continue {
		t.Fatal("leader terminated")
	}
}

func TestBanditRespectsBoundary(t *testing.T) {
	b, _ := NewBandit(BanditOptions{})
	ctx := newFakeCtx(slInfo())
	feed(ctx, "leader", risingTo(9, 0.7))
	feed(ctx, "laggard", flatAt(9, 0.11))
	if d := b.OnIterationFinish(ctx, sched.Event{Job: "laggard", Epoch: 9}); d != sched.Continue {
		t.Fatal("bandit acted off-boundary")
	}
}

func TestBanditKeepsCompetitive(t *testing.T) {
	b, _ := NewBandit(BanditOptions{})
	ctx := newFakeCtx(slInfo())
	feed(ctx, "leader", risingTo(10, 0.6))
	feed(ctx, "close", risingTo(10, 0.5))
	if d := b.OnIterationFinish(ctx, sched.Event{Job: "close", Epoch: 10}); d != sched.Continue {
		t.Fatal("competitive job terminated")
	}
}

func TestBanditRLNormalization(t *testing.T) {
	b, _ := NewBandit(BanditOptions{})
	ctx := newFakeCtx(rlInfo())
	feed(ctx, "leader", []float64{-200, -100, 0, 100, 150, 180, 200, 210, 220, 230,
		235, 240, 245, 250, 250, 250, 250, 250, 250, 250})
	feed(ctx, "hopeless", flatAt(20, -400))
	// Normalized: hopeless best ~0.125*1.5 = 0.19 < leader ~0.94.
	if d := b.OnIterationFinish(ctx, sched.Event{Job: "hopeless", Epoch: 20}); d != sched.Terminate {
		t.Fatal("hopeless RL job not terminated")
	}
}

func TestBanditRejectsNegativeEpsilon(t *testing.T) {
	if _, err := NewBandit(BanditOptions{Epsilon: -1}); err == nil {
		t.Fatal("NewBandit accepted negative epsilon")
	}
}

func TestEarlyTermTerminatesHopeless(t *testing.T) {
	e, err := NewEarlyTerm(EarlyTermOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := newFakeCtx(slInfo())
	feed(ctx, "leader", risingTo(30, 0.75))
	feed(ctx, "flat", flatAt(30, 0.12))
	if d := e.OnIterationFinish(ctx, sched.Event{Job: "flat", Epoch: 30}); d != sched.Terminate {
		t.Fatal("hopeless flat job survived predictive termination")
	}
	if e.Fits().Value() == 0 {
		t.Fatal("no fits recorded")
	}
}

func TestEarlyTermKeepsLeaderAndRisers(t *testing.T) {
	e, _ := NewEarlyTerm(EarlyTermOptions{})
	ctx := newFakeCtx(slInfo())
	feed(ctx, "leader", risingTo(30, 0.75))
	feed(ctx, "riser", risingTo(30, 0.7))
	if d := e.OnIterationFinish(ctx, sched.Event{Job: "leader", Epoch: 30}); d != sched.Continue {
		t.Fatal("leader terminated")
	}
	if d := e.OnIterationFinish(ctx, sched.Event{Job: "riser", Epoch: 30}); d != sched.Continue {
		t.Fatal("strong riser terminated")
	}
}

func TestEarlyTermBoundary(t *testing.T) {
	e, _ := NewEarlyTerm(EarlyTermOptions{})
	ctx := newFakeCtx(slInfo())
	feed(ctx, "leader", risingTo(20, 0.75))
	feed(ctx, "flat", flatAt(20, 0.12))
	// Epoch 20 is not a multiple of the b=30 supervised boundary.
	if d := e.OnIterationFinish(ctx, sched.Event{Job: "flat", Epoch: 20}); d != sched.Continue {
		t.Fatal("earlyterm acted off its 30-epoch boundary")
	}
}

func TestEarlyTermRejectsBadDelta(t *testing.T) {
	if _, err := NewEarlyTerm(EarlyTermOptions{Delta: 1.5}); err == nil {
		t.Fatal("NewEarlyTerm accepted delta >= 1")
	}
}

func TestPOPKillsNonLearner(t *testing.T) {
	p, err := NewPOP(POPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := newFakeCtx(slInfo())
	feed(ctx, "dead", flatAt(10, 0.10))
	ctx.active = []sched.JobID{"dead"}
	if d := p.OnIterationFinish(ctx, sched.Event{Job: "dead", Epoch: 10}); d != sched.Terminate {
		t.Fatal("non-learner survived the kill threshold")
	}
	if p.Fits().Value() != 0 {
		t.Fatal("kill-threshold pruning should happen before prediction")
	}
}

func TestPOPKillThresholdAblation(t *testing.T) {
	p, _ := NewPOP(POPOptions{DisableKillThreshold: true})
	ctx := newFakeCtx(slInfo())
	feed(ctx, "dead", flatAt(20, 0.10))
	ctx.active = []sched.JobID{"dead"}
	// Without the kill threshold the flat job still dies once the
	// confidence floor applies (after MinPruneEpochs = 2 boundaries),
	// but only after paying for predictions.
	if d := p.OnIterationFinish(ctx, sched.Event{Job: "dead", Epoch: 20}); d != sched.Terminate {
		t.Fatal("hopeless job survived confidence floor")
	}
	if p.Fits().Value() == 0 {
		t.Fatal("ablation should have paid for a prediction")
	}
}

func TestPOPPromisingContinues(t *testing.T) {
	p, _ := NewPOP(POPOptions{})
	ctx := newFakeCtx(slInfo())
	ctx.now = ctx.start.Add(40 * time.Minute)
	feed(ctx, "star", risingTo(40, 0.80))
	ctx.active = []sched.JobID{"star"}
	ctx.startQueue = []sched.JobID{"waiting"}
	if d := p.OnIterationFinish(ctx, sched.Event{Job: "star", Epoch: 40}); d != sched.Continue {
		t.Fatalf("strong riser got %v, want continue", d)
	}
	if len(ctx.labels) == 0 {
		t.Fatal("promising job not labelled")
	}
	ests := p.Estimates()
	if e, ok := ests["star"]; !ok || e.Confidence < 0.3 {
		t.Fatalf("estimate for star = %+v", ests)
	}
}

func TestPOPSuspendsOpportunisticWhenOthersWait(t *testing.T) {
	p, _ := NewPOP(POPOptions{})
	ctx := newFakeCtx(slInfo())
	ctx.now = ctx.start.Add(40 * time.Minute)
	// A star occupies the promising pool; "meh" is learning but far
	// from the target, so it lands in the opportunistic pool.
	feed(ctx, "star", risingTo(40, 0.80))
	feed(ctx, "meh", risingTo(40, 0.45))
	ctx.active = []sched.JobID{"star", "meh"}
	ctx.startQueue = []sched.JobID{"waiting1", "waiting2"}
	// Prime star's estimate first.
	if d := p.OnIterationFinish(ctx, sched.Event{Job: "star", Epoch: 40}); d != sched.Continue {
		t.Fatal("star should continue")
	}
	d := p.OnIterationFinish(ctx, sched.Event{Job: "meh", Epoch: 40})
	if d != sched.Suspend && d != sched.Terminate {
		t.Fatalf("opportunistic decision = %v, want suspend (or terminate if confidence floor)", d)
	}
}

func TestPOPNoSuspendWithEmptyQueue(t *testing.T) {
	p, _ := NewPOP(POPOptions{})
	ctx := newFakeCtx(slInfo())
	ctx.now = ctx.start.Add(40 * time.Minute)
	feed(ctx, "meh", risingTo(40, 0.60))
	ctx.active = []sched.JobID{"meh"}
	// No waiting jobs: suspending would idle the slot.
	if d := p.OnIterationFinish(ctx, sched.Event{Job: "meh", Epoch: 40}); d == sched.Suspend {
		t.Fatal("suspended with nothing to run instead")
	}
}

func TestPOPConfidenceFloorTerminates(t *testing.T) {
	p, _ := NewPOP(POPOptions{})
	ctx := newFakeCtx(slInfo())
	ctx.now = ctx.start.Add(40 * time.Minute)
	// Learning but plateaued far below target: P(reach 0.77) ~ 0.
	feed(ctx, "plateau", flatAt(40, 0.35))
	ctx.active = []sched.JobID{"plateau"}
	if d := p.OnIterationFinish(ctx, sched.Event{Job: "plateau", Epoch: 40}); d != sched.Terminate {
		t.Fatalf("plateaued job got %v, want terminate (confidence floor)", d)
	}
}

func TestPOPOffBoundaryContinues(t *testing.T) {
	p, _ := NewPOP(POPOptions{})
	ctx := newFakeCtx(slInfo())
	feed(ctx, "a", flatAt(7, 0.10))
	if d := p.OnIterationFinish(ctx, sched.Event{Job: "a", Epoch: 7}); d != sched.Continue {
		t.Fatal("POP acted off-boundary")
	}
}

func TestPOPInstantAccuracyAblation(t *testing.T) {
	p, err := NewPOP(POPOptions{InstantAccuracy: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := newFakeCtx(slInfo())
	ctx.now = ctx.start.Add(40 * time.Minute)
	feed(ctx, "fast", risingTo(40, 0.74))
	ctx.active = []sched.JobID{"fast"}
	if d := p.OnIterationFinish(ctx, sched.Event{Job: "fast", Epoch: 40}); d != sched.Continue {
		t.Fatalf("instant-accuracy decision = %v", d)
	}
	if p.Fits().Value() != 0 {
		t.Fatal("instant-accuracy ablation must not run curve fits")
	}
}

func TestPOPStaticThresholdAblation(t *testing.T) {
	p, err := NewPOP(POPOptions{StaticThreshold: 0.5, InstantAccuracy: true})
	if err != nil {
		t.Fatal(err)
	}
	ctx := newFakeCtx(slInfo())
	ctx.now = ctx.start.Add(40 * time.Minute)
	feed(ctx, "fast", risingTo(40, 0.74))
	ctx.active = []sched.JobID{"fast"}
	p.OnIterationFinish(ctx, sched.Event{Job: "fast", Epoch: 40})
	alloc := p.Allocation(ctx)
	if alloc.Threshold != 0.5 {
		t.Fatalf("static threshold = %v, want 0.5", alloc.Threshold)
	}
}

func TestPOPDynamicTarget(t *testing.T) {
	p, _ := NewPOP(POPOptions{DynamicTarget: true})
	info := slInfo()
	before := p.target(info)
	p.ObserveBest(info, 0.80) // beat the 0.77 target
	after := p.target(info)
	if after <= before {
		t.Fatalf("dynamic target did not rise: %v -> %v", before, after)
	}
	if after > 1 {
		t.Fatalf("dynamic target exceeded 1: %v", after)
	}
	// Without the extension, ObserveBest is inert.
	q, _ := NewPOP(POPOptions{})
	tBefore := q.target(info)
	q.ObserveBest(info, 0.99)
	if q.target(info) != tBefore {
		t.Fatal("ObserveBest moved target without DynamicTarget")
	}
}

func TestPOPOptionValidation(t *testing.T) {
	if _, err := NewPOP(POPOptions{ConfidenceFloor: -0.1}); err == nil {
		t.Fatal("accepted negative confidence floor")
	}
	if _, err := NewPOP(POPOptions{SlotsPerJob: -1}); err == nil {
		t.Fatal("accepted negative slots per job")
	}
}

func TestBoundaryHelper(t *testing.T) {
	if got := boundary(0, Info{EvalBoundary: 10}); got != 10 {
		t.Fatalf("boundary = %d, want workload default", got)
	}
	if got := boundary(5, Info{EvalBoundary: 10}); got != 5 {
		t.Fatalf("boundary = %d, want configured value", got)
	}
	if got := boundary(0, Info{}); got != 1 {
		t.Fatalf("boundary = %d, want 1 fallback", got)
	}
	// §9 heuristic: no workload boundary -> ~7%% of the max epoch.
	if got := boundary(0, Info{MaxEpoch: 150}); got != 10 {
		t.Fatalf("boundary = %d, want 10 (150/15)", got)
	}
}

func TestEarlyTermRLBoundary(t *testing.T) {
	e, _ := NewEarlyTerm(EarlyTermOptions{})
	ctx := newFakeCtx(rlInfo()) // Reward workload, EvalBoundary 20
	ctx.info.Reward = true
	feed(ctx, "leader", risingTo(20, 250))
	feed(ctx, "flat", flatAt(20, -400))
	// Epoch 20 IS the RL boundary (2,000 trials): EarlyTerm must act.
	if d := e.OnIterationFinish(ctx, sched.Event{Job: "flat", Epoch: 20}); d != sched.Terminate {
		t.Fatalf("earlyterm did not act at the RL boundary: %v", d)
	}
}
