package policy_test

import (
	"math/rand"
	"testing"

	"github.com/hyperdrive-ml/hyperdrive/internal/param"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
	"github.com/hyperdrive-ml/hyperdrive/internal/sim"
	"github.com/hyperdrive-ml/hyperdrive/internal/trace"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

func shaTrace(t *testing.T, n int, seed int64) *trace.Trace {
	t.Helper()
	spec := workload.CIFAR10()
	rng := rand.New(rand.NewSource(seed))
	cfgs := make([]param.Config, n)
	seeds := make([]int64, n)
	for i := range cfgs {
		cfgs[i] = spec.Space().Sample(rng)
		seeds[i] = int64(i)
	}
	tr, err := trace.Collect(spec, cfgs, seeds)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSHAOptionValidation(t *testing.T) {
	if _, err := policy.NewSuccessiveHalving(policy.SHAOptions{Eta: 1}); err == nil {
		t.Fatal("accepted eta < 2")
	}
	if _, err := policy.NewSuccessiveHalving(policy.SHAOptions{MinEpochs: -1}); err == nil {
		t.Fatal("accepted negative min epochs")
	}
	s, err := policy.NewSuccessiveHalving(policy.SHAOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "sha" {
		t.Fatalf("name = %q", s.Name())
	}
}

func TestSHAEliminatesInRounds(t *testing.T) {
	tr := shaTrace(t, 27, 5)
	sha, err := policy.NewSuccessiveHalving(policy.SHAOptions{Eta: 3, MinEpochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Options{Trace: tr, Machines: 3, Policy: sha})
	if err != nil {
		t.Fatal(err)
	}
	if sha.Rounds() < 10 {
		t.Fatalf("only %d rung decisions happened", sha.Rounds())
	}
	if res.Terminations < len(tr.Jobs)/2 {
		t.Fatalf("SHA terminated only %d of %d", res.Terminations, len(tr.Jobs))
	}
	// Asynchronous halving with eta=3 over 27 configs promotes roughly
	// a third per rung; only a handful survive to the full budget.
	fullRuns := 0
	var survivorBest float64
	for _, j := range res.Jobs {
		if j.Epochs == tr.MaxEpoch {
			fullRuns++
			if j.Best > survivorBest {
				survivorBest = j.Best
			}
		}
	}
	if fullRuns == 0 {
		t.Fatal("no survivor ran to the full budget")
	}
	if fullRuns > 6 {
		t.Fatalf("%d full runs; halving should leave few", fullRuns)
	}
	// The survivor must be among the strongest configurations overall.
	better := 0
	for _, j := range tr.Jobs {
		best := 0.0
		for _, s := range j.Samples {
			if s.Metric > best {
				best = s.Metric
			}
		}
		if best > survivorBest+0.05 {
			better++
		}
	}
	if better > len(tr.Jobs)/3 {
		t.Fatalf("survivor (best %.3f) is mediocre: %d configs clearly better", survivorBest, better)
	}
}

func TestSHABudgetSavings(t *testing.T) {
	tr := shaTrace(t, 18, 7)
	sha, err := policy.NewSuccessiveHalving(policy.SHAOptions{Eta: 3, MinEpochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	shaRes, err := sim.Run(sim.Options{Trace: tr, Machines: 3, Policy: sha})
	if err != nil {
		t.Fatal(err)
	}
	defRes, err := sim.Run(sim.Options{Trace: tr, Machines: 3, Policy: policy.NewDefault()})
	if err != nil {
		t.Fatal(err)
	}
	var shaBusy, defBusy float64
	for _, j := range shaRes.Jobs {
		shaBusy += j.BusyTime.Hours()
	}
	for _, j := range defRes.Jobs {
		defBusy += j.BusyTime.Hours()
	}
	if shaBusy >= defBusy/2 {
		t.Fatalf("SHA used %.1fh of %.1fh; halving should save more than half", shaBusy, defBusy)
	}
}

func TestSHAThroughFacadeRegistry(t *testing.T) {
	r := policy.NewRegistry()
	p, err := r.New("sha")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "sha" {
		t.Fatalf("registry built %q", p.Name())
	}
}

func TestHyperbandBrackets(t *testing.T) {
	tr := shaTrace(t, 24, 9)
	hb, err := policy.NewSuccessiveHalving(policy.SHAOptions{Eta: 3, MinEpochs: 10, Brackets: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Options{Trace: tr, Machines: 3, Policy: hb})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminations == 0 {
		t.Fatal("hyperband terminated nothing")
	}
	// Brackets hedge the first-rung budget: bracket 0 cuts at epoch
	// 10, bracket 1 at 30, bracket 2 at 90. Terminated jobs must show
	// all three cut points.
	cuts := map[int]bool{}
	for _, j := range res.Jobs {
		if j.FinalState.Terminal() && j.Epochs < tr.MaxEpoch {
			cuts[j.Epochs] = true
		}
	}
	found := 0
	for _, c := range []int{10, 30, 90} {
		if cuts[c] {
			found++
		}
	}
	if found < 2 {
		t.Fatalf("expected multiple bracket cut points, saw %v", cuts)
	}
}

func TestSHARejectsBadBrackets(t *testing.T) {
	if _, err := policy.NewSuccessiveHalving(policy.SHAOptions{Brackets: -1}); err == nil {
		t.Fatal("accepted negative brackets")
	}
}
