package policy

import (
	"fmt"

	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// BanditOptions configures the Bandit policy.
type BanditOptions struct {
	// Epsilon is the action-elimination slack; the paper follows
	// TuPAQ and uses 0.50.
	Epsilon float64
	// Boundary is the evaluation boundary b in epochs; 0 uses the
	// workload default (10 supervised, 2,000 RL iterations).
	Boundary int
}

// Bandit is the TuPAQ-style baseline (§5.3): an action-elimination
// bandit that terminates a job whose best instantaneous performance is
// no longer within (1+epsilon) of the global best. It extends the
// Default SAP and looks only at instantaneous accuracy — the
// shortcoming POP's trajectory-based prediction addresses (§2.2a).
type Bandit struct {
	epsilon  float64
	boundary int
}

// NewBandit builds a Bandit policy.
func NewBandit(opts BanditOptions) (*Bandit, error) {
	if opts.Epsilon == 0 {
		opts.Epsilon = 0.50
	}
	if opts.Epsilon < 0 {
		return nil, fmt.Errorf("policy: bandit epsilon %v must be non-negative", opts.Epsilon)
	}
	return &Bandit{epsilon: opts.Epsilon, boundary: opts.Boundary}, nil
}

// Name implements Policy.
func (*Bandit) Name() string { return "bandit" }

// AllocateJobs implements Policy.
func (*Bandit) AllocateJobs(ctx Context) { greedyAllocate(ctx) }

// ApplicationStat implements Policy. Stats reach the policy through
// the AppStat DB; nothing extra to track.
func (*Bandit) ApplicationStat(Context, sched.Event) {}

// OnIterationFinish implements Policy: at each evaluation boundary,
// keep the job only if jobBest*(1+eps) > globalBest on the normalized
// metric scale.
func (b *Bandit) OnIterationFinish(ctx Context, ev sched.Event) sched.Decision {
	info := ctx.Info()
	bnd := boundary(b.boundary, info)
	if ev.Epoch%bnd != 0 || ev.Epoch >= info.MaxEpoch {
		return sched.Continue
	}
	jobBest, ok := ctx.DB().Best(ev.Job)
	if !ok {
		return sched.Continue
	}
	globalBest, _, ok := ctx.DB().GlobalBest()
	if !ok {
		return sched.Continue
	}
	if info.Normalize(jobBest)*(1+b.epsilon) > info.Normalize(globalBest) {
		return sched.Continue
	}
	return sched.Terminate
}

var _ Policy = (*Bandit)(nil)
