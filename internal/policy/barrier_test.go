package policy_test

import (
	"testing"

	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
	"github.com/hyperdrive-ml/hyperdrive/internal/sim"
)

func TestBarrierValidation(t *testing.T) {
	if _, err := policy.NewBarrier(nil, 10); err == nil {
		t.Fatal("accepted nil inner policy")
	}
	if _, err := policy.NewBarrier(policy.NewDefault(), -1); err == nil {
		t.Fatal("accepted negative interval")
	}
	b, err := policy.NewBarrier(policy.NewDefault(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "barrier(default)" {
		t.Fatalf("name = %q", b.Name())
	}
	if b.Fits().Value() != 0 {
		t.Fatal("default policy has no fits")
	}
}

func TestBarrierBreadthFirst(t *testing.T) {
	tr := shaTrace(t, 8, 11)
	b, err := policy.NewBarrier(policy.NewDefault(), 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Options{Trace: tr, Machines: 2, Policy: b})
	if err != nil {
		t.Fatal(err)
	}
	// Breadth-first: every job suspends at each 10-epoch boundary
	// while others wait, so suspends are plentiful and everything
	// still completes.
	if res.Suspends < 8 {
		t.Fatalf("suspends = %d, want breadth-first rotation", res.Suspends)
	}
	if res.Completions != 8 {
		t.Fatalf("completions = %d, want all 8", res.Completions)
	}

	// Breadth-first fairness: with a barrier every job's FIRST
	// boundary happens before any job's SECOND boundary. Verified
	// indirectly: total duration matches the default policy (same
	// work, no waste).
	def, err := sim.Run(sim.Options{Trace: tr, Machines: 2, Policy: policy.NewDefault()})
	if err != nil {
		t.Fatal(err)
	}
	if def.Suspends != 0 {
		t.Fatalf("default suspends = %d", def.Suspends)
	}
	// Packing differs (job interleavings change tail idle), but the
	// total should stay in the same ballpark: suspends are free, so a
	// barrier reorders work rather than adding any.
	ratio := res.Duration.Hours() / def.Duration.Hours()
	if ratio < 0.85 || ratio > 1.15 {
		t.Fatalf("barrier changed total duration by %.2fx", ratio)
	}
}

func TestBarrierPassesThroughTerminate(t *testing.T) {
	tr := shaTrace(t, 10, 13)
	inner, err := policy.NewBandit(policy.BanditOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := policy.NewBarrier(inner, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.Options{Trace: tr, Machines: 2, Policy: b})
	if err != nil {
		t.Fatal(err)
	}
	if res.Terminations == 0 {
		t.Fatal("inner bandit's terminations should pass through the barrier")
	}
}
