package policy

import (
	"fmt"

	"github.com/hyperdrive-ml/hyperdrive/internal/curve"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// EarlyTermOptions configures the EarlyTerm policy.
type EarlyTermOptions struct {
	// Delta is the termination threshold on P(y(mmax) >= yhat); the
	// paper follows Domhan et al. and uses 0.05.
	Delta float64
	// Boundary is the evaluation boundary b; 0 uses 30 epochs for
	// supervised learning per the paper, or the workload default when
	// that is larger (RL uses 2,000 iterations = the workload value).
	Boundary int
	// Predictor is the MCMC budget; zero value uses curve.FastConfig.
	Predictor curve.Config
}

// EarlyTerm is the parallel version of Domhan et al.'s "predictive
// termination criterion" (§5.3): at each boundary it fits the
// learning-curve posterior and terminates the job if the probability
// of ever beating the global best is below delta. Unlike POP it never
// suspends or prioritizes — every surviving job runs to completion.
type EarlyTerm struct {
	delta     float64
	boundary  int
	predictor *curve.Predictor
	fits      *obs.Counter
}

// DefaultEarlyTermBoundarySL is the supervised-learning evaluation
// boundary used by the paper for EarlyTerm (b = 30).
const DefaultEarlyTermBoundarySL = 30

// NewEarlyTerm builds an EarlyTerm policy.
func NewEarlyTerm(opts EarlyTermOptions) (*EarlyTerm, error) {
	if opts.Delta == 0 {
		opts.Delta = 0.05
	}
	if opts.Delta < 0 || opts.Delta >= 1 {
		return nil, fmt.Errorf("policy: earlyterm delta %v out of (0, 1)", opts.Delta)
	}
	if opts.Predictor.Walkers == 0 {
		opts.Predictor = curve.FastConfig()
	}
	p, err := curve.NewPredictor(opts.Predictor)
	if err != nil {
		return nil, err
	}
	return &EarlyTerm{delta: opts.Delta, boundary: opts.Boundary, predictor: p, fits: obs.NewCounter()}, nil
}

// Instrument binds EarlyTerm's fit telemetry to a registry (see
// POP.Instrument for the contract).
func (e *EarlyTerm) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	e.fits = r.Counter(obs.MCMCFitsTotal)
	e.predictor.Instrument(r)
}

// Name implements Policy.
func (*EarlyTerm) Name() string { return "earlyterm" }

// AllocateJobs implements Policy.
func (*EarlyTerm) AllocateJobs(ctx Context) { greedyAllocate(ctx) }

// ApplicationStat implements Policy.
func (*EarlyTerm) ApplicationStat(Context, sched.Event) {}

// OnIterationFinish implements Policy.
func (e *EarlyTerm) OnIterationFinish(ctx Context, ev sched.Event) sched.Decision {
	info := ctx.Info()
	bnd := e.boundary
	if bnd == 0 {
		if info.Reward {
			// RL: prior work gives no guidance, so the paper uses the
			// same 2,000-iteration boundary as POP (§5.3).
			bnd = boundary(0, info)
		} else {
			bnd = DefaultEarlyTermBoundarySL
		}
	}
	if ev.Epoch%bnd != 0 || ev.Epoch >= info.MaxEpoch {
		return sched.Continue
	}
	globalBest, bestJob, ok := ctx.DB().GlobalBest()
	if !ok || bestJob == ev.Job {
		// The current leader is never predictively terminated.
		return sched.Continue
	}
	raw := ctx.DB().History(ev.Job)
	if len(raw) < curve.MinObservations {
		return sched.Continue
	}
	norm := make([]float64, len(raw))
	for i, v := range raw {
		norm[i] = info.Normalize(v)
	}
	post, err := e.predictor.Fit(norm, info.MaxEpoch, seedFor(ev.Job))
	e.fits.Inc()
	if err != nil {
		return sched.Continue
	}
	p := post.ProbAtLeast(info.MaxEpoch, info.Normalize(globalBest))
	ev.Span.SetAttr("prob_beats_best", p)
	if p < e.delta {
		ev.Span.SetStr("cause", "predictive_termination")
		return sched.Terminate
	}
	return sched.Continue
}

// Fits implements FitCounter.
func (e *EarlyTerm) Fits() *obs.Counter { return e.fits }

// seedFor derives a deterministic MCMC seed from a job ID.
func seedFor(id sched.JobID) int64 {
	var h int64 = 1469598103934665603
	for i := 0; i < len(id); i++ {
		h ^= int64(id[i])
		h *= 1099511628211
	}
	return h
}

var (
	_ Policy     = (*EarlyTerm)(nil)
	_ FitCounter = (*EarlyTerm)(nil)
)
