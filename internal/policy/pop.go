package policy

import (
	"fmt"
	"sync"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/core"
	"github.com/hyperdrive-ml/hyperdrive/internal/curve"
	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// POPOptions configures the POP policy. The zero value gives the
// paper's production settings.
type POPOptions struct {
	// Boundary is the evaluation boundary b; 0 uses the workload
	// default (10 epochs supervised, 2,000 RL iterations).
	Boundary int
	// KillGrace is the number of epochs a job may stay below the kill
	// threshold before being pruned; 0 uses the boundary.
	KillGrace int
	// ConfidenceFloor prunes jobs whose confidence of reaching the
	// target falls below it; 0 uses the paper's 0.05.
	ConfidenceFloor float64
	// MinPruneEpochs delays confidence-floor pruning until a job has
	// this many epochs of history; 0 uses twice the evaluation
	// boundary. Learning-curve posteriors from a single boundary of
	// observations are too uncertain to justify termination (the same
	// reasoning behind EarlyTerm's larger b = 30).
	MinPruneEpochs int
	// SlotsPerJob is k, the dedicated slots per promising job
	// (1 = sequential training).
	SlotsPerJob int
	// Predictor is the MCMC budget; zero value uses curve.FastConfig.
	Predictor curve.Config
	// StaticThreshold, when positive, disables the dynamic
	// desired/deserved threshold and classifies jobs promising at a
	// fixed confidence — the §2.2c ablation.
	StaticThreshold float64
	// InstantAccuracy, when true, replaces learning-curve prediction
	// with the instantaneous metric as the confidence signal — the
	// §2.2a ablation (what TuPAQ-style classification would do).
	InstantAccuracy bool
	// DynamicTarget enables the §9 extension: once the target is
	// reached, keep raising it so exploration continues to
	// differentiate configurations.
	DynamicTarget bool
	// DynamicTargetStep is the normalized increment for
	// DynamicTarget; 0 uses 0.02.
	DynamicTargetStep float64
	// DisableKillThreshold turns off domain-knowledge pruning — the
	// §2.1 ablation.
	DisableKillThreshold bool
}

// credibleBandLow / credibleBandHigh are the posterior quantiles of
// the 90% credible band stamped on estimates and decision spans.
const (
	credibleBandLow  = 0.05
	credibleBandHigh = 0.95
)

// POP is the paper's scheduling algorithm (§3, §5.3): Promising /
// Opportunistic / Poor classification driven by probabilistic
// learning-curve prediction, with dynamic division of slots between an
// exploitation pool (dedicated to promising jobs, priority-labelled)
// and an exploration pool (round-robin over opportunistic jobs via
// suspend/resume), plus early termination of poor configurations from
// domain knowledge.
type POP struct {
	opts      POPOptions
	predictor *curve.Predictor
	// fits counts learning-curve fits. It starts as a standalone
	// counter and is rebound to the registry's
	// hyperdrive_mcmc_fits_total by Instrument, so Fits and the metric
	// share one source of truth.
	fits *obs.Counter

	mu        sync.Mutex
	estimates map[sched.JobID]core.Estimate
	curTarget float64 // normalized; moves when DynamicTarget is on
	targetSet bool
}

// NewPOP builds a POP policy.
func NewPOP(opts POPOptions) (*POP, error) {
	if opts.ConfidenceFloor == 0 {
		opts.ConfidenceFloor = core.ConfidenceFloor
	}
	if opts.ConfidenceFloor < 0 || opts.ConfidenceFloor >= 1 {
		return nil, fmt.Errorf("policy: pop confidence floor %v out of [0, 1)", opts.ConfidenceFloor)
	}
	if opts.SlotsPerJob == 0 {
		opts.SlotsPerJob = 1
	}
	if opts.SlotsPerJob < 0 {
		return nil, fmt.Errorf("policy: pop slots per job %d must be positive", opts.SlotsPerJob)
	}
	if opts.DynamicTargetStep == 0 {
		opts.DynamicTargetStep = 0.02
	}
	if opts.Predictor.Walkers == 0 {
		opts.Predictor = curve.FastConfig()
	}
	p, err := curve.NewPredictor(opts.Predictor)
	if err != nil {
		return nil, err
	}
	return &POP{
		opts:      opts,
		predictor: p,
		fits:      obs.NewCounter(),
		estimates: make(map[sched.JobID]core.Estimate),
	}, nil
}

// Instrument binds POP's telemetry to a registry: the fit counter
// migrates onto hyperdrive_mcmc_fits_total and the predictor records
// fit durations. Engines call this once at setup, before the run
// starts (counts accrued earlier stay on the old counter).
func (p *POP) Instrument(r *obs.Registry) {
	if r == nil {
		return
	}
	p.fits = r.Counter(obs.MCMCFitsTotal)
	p.predictor.Instrument(r)
}

// Name implements Policy.
func (*POP) Name() string { return "pop" }

// AllocateJobs implements Policy: the idle queue is priority-ordered
// by the labels POP assigns, so greedy allocation starts the most
// promising work first.
func (*POP) AllocateJobs(ctx Context) { greedyAllocate(ctx) }

// ApplicationStat implements Policy.
func (*POP) ApplicationStat(Context, sched.Event) {}

// OnIterationFinish implements Policy. At each evaluation boundary the
// §5.3 sequence runs: kill-threshold check, learning-curve fit and ERT
// estimation, confidence-floor pruning, desired/deserved slot
// division, promising-job labelling, and suspension of opportunistic
// jobs so exploration rotates.
func (p *POP) OnIterationFinish(ctx Context, ev sched.Event) sched.Decision {
	info := ctx.Info()
	sp := ev.Span
	bnd := boundary(p.opts.Boundary, info)
	if ev.Epoch%bnd != 0 || ev.Epoch >= info.MaxEpoch {
		return sched.Continue
	}

	// 1. Domain-knowledge pruning before any prediction work.
	history := ctx.DB().History(ev.Job)
	if !p.opts.DisableKillThreshold {
		grace := p.opts.KillGrace
		if grace == 0 {
			grace = bnd
		}
		if kd := core.ShouldKill(history, info.KillThreshold, grace); kd.Kill {
			p.dropEstimate(ev.Job)
			sp.SetStr("cause", "kill_threshold")
			sp.SetAttr("kill_threshold", info.KillThreshold)
			return sched.Terminate
		}
	}

	// 2. Estimate expected remaining time and confidence.
	est := p.estimate(ctx, ev.Job, history)
	p.mu.Lock()
	p.estimates[ev.Job] = est
	p.mu.Unlock()
	sp.Stage("estimate")
	sp.SetAttr("confidence", est.Confidence)
	sp.SetAttr("ert_seconds", est.ERT.Seconds())
	sp.SetAttr("epoch_duration_seconds", est.EpochDuration.Seconds())
	if est.BandHigh > est.BandLow {
		sp.SetAttr("band_lo", est.BandLow)
		sp.SetAttr("band_hi", est.BandHigh)
	}
	if est.Truncated {
		sp.SetAttr("truncated", 1)
	}

	// 3. Confidence-floor pruning: unlikely to reach the target. Not
	// applied before MinPruneEpochs of history: one boundary of
	// observations cannot support a confident termination.
	minPrune := p.opts.MinPruneEpochs
	if minPrune == 0 {
		minPrune = 2 * bnd
	}
	if ev.Epoch >= minPrune && est.Confidence < p.opts.ConfidenceFloor {
		p.dropEstimate(ev.Job)
		sp.SetStr("cause", "confidence_floor")
		sp.SetAttr("confidence_floor", p.opts.ConfidenceFloor)
		return sched.Terminate
	}

	// 4-5. Slot division and classification across all active jobs.
	alloc := p.allocate(ctx)
	sp.Stage("classify")
	sp.SetAttr("threshold", alloc.Threshold)
	sp.SetAttr("promising_jobs", float64(len(alloc.Promising)))
	sp.SetAttr("opportunistic_jobs", float64(len(alloc.Opportunistic)))
	sp.SetAttr("promising_slots", float64(alloc.PromisingSlots))
	for _, e := range alloc.Promising {
		ctx.LabelJob(sched.JobID(e.JobID), e.Confidence)
	}

	promising := false
	for _, e := range alloc.Promising {
		if e.JobID == string(ev.Job) {
			promising = true
			break
		}
	}
	sp.Stage("allocate")
	if promising {
		sp.SetStr("class", "promising")
		return sched.Continue
	}
	sp.SetStr("class", "opportunistic")
	// 6. Opportunistic: rotate the exploration pool. Suspending only
	// makes sense when another job is waiting for the slot.
	if ctx.IdleJobs() > 0 {
		return sched.Suspend
	}
	return sched.Continue
}

// Allocation exposes POP's current slot division for observability
// (Figure 4) without mutating policy state.
func (p *POP) Allocation(ctx Context) core.Allocation { return p.allocate(ctx) }

// Estimates returns a snapshot of the per-job estimates.
func (p *POP) Estimates() map[sched.JobID]core.Estimate {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[sched.JobID]core.Estimate, len(p.estimates))
	for k, v := range p.estimates {
		out[k] = v
	}
	return out
}

// Fits implements FitCounter.
func (p *POP) Fits() *obs.Counter { return p.fits }

// estimate computes the §3.1 estimate for one job.
func (p *POP) estimate(ctx Context, job sched.JobID, rawHistory []float64) core.Estimate {
	info := ctx.Info()
	target := p.target(info)
	remaining := info.MaxDuration - ctx.Now().Sub(ctx.Start())
	epochDur, okDur := ctx.DB().AvgEpochDuration(job)
	curEpoch := len(rawHistory)

	if p.opts.InstantAccuracy {
		// Ablation: the instantaneous normalized metric stands in for
		// prediction confidence; no trajectory information.
		conf := 0.0
		if len(rawHistory) > 0 && target > 0 {
			conf = info.Normalize(rawHistory[len(rawHistory)-1]) / target
			if conf > 1 {
				conf = 1
			}
		}
		ert := time.Duration(float64(remaining) * (1 - conf))
		return core.Estimate{JobID: string(job), Confidence: conf, ERT: ert, EpochDuration: epochDur}
	}

	if !okDur || len(rawHistory) < curve.MinObservations || remaining <= 0 {
		return core.Estimate{JobID: string(job), ERT: remaining, Truncated: true, EpochDuration: epochDur}
	}
	norm := make([]float64, len(rawHistory))
	best := 0.0
	for i, v := range rawHistory {
		norm[i] = info.Normalize(v)
		if norm[i] > best {
			best = norm[i]
		}
	}
	if best >= target {
		// Already at the target: maximal confidence, nothing left to
		// wait for. (Normally the experiment's stop condition fires
		// first; this guards reruns with raised targets.)
		return core.Estimate{JobID: string(job), Confidence: 1, EpochDuration: epochDur}
	}
	post, err := p.predictor.Fit(norm, info.MaxEpoch, seedFor(job))
	p.fits.Inc()
	if err != nil {
		return core.Estimate{JobID: string(job), ERT: remaining, Truncated: true, EpochDuration: epochDur}
	}
	// Batch path: one sample-major posterior sweep per boundary instead
	// of one full posterior pass per queried epoch (bit-identical to the
	// per-epoch ProbAtLeast path).
	prob := func(from, to int) []float64 { return post.ProbSweep(from, to, target) }
	est := core.EstimateERTBatch(string(job), prob, curEpoch, info.MaxEpoch, epochDur, remaining)
	// The 90% credible band for the final metric rides along so the
	// quality audit can score band coverage against realized outcomes.
	est.BandLow, est.BandHigh = post.CredibleBand(info.MaxEpoch, credibleBandLow, credibleBandHigh)
	return est
}

// allocate runs the §3.2 slot division over the active jobs' cached
// estimates.
func (p *POP) allocate(ctx Context) core.Allocation {
	info := ctx.Info()
	active := ctx.ActiveJobs()
	ests := make([]core.Estimate, 0, len(active))
	p.mu.Lock()
	for _, id := range active {
		if e, ok := p.estimates[id]; ok {
			ests = append(ests, e)
		}
	}
	p.mu.Unlock()

	if p.opts.StaticThreshold > 0 {
		// Ablation: fixed threshold instead of the dynamic argmax.
		alloc := core.Allocation{Threshold: p.opts.StaticThreshold}
		for _, e := range ests {
			if e.Confidence >= p.opts.StaticThreshold && e.Satisfying() {
				alloc.Promising = append(alloc.Promising, e)
			} else {
				alloc.Opportunistic = append(alloc.Opportunistic, e)
			}
		}
		alloc.PromisingSlots = len(alloc.Promising) * p.opts.SlotsPerJob
		if alloc.PromisingSlots > info.TotalSlots {
			alloc.PromisingSlots = info.TotalSlots
		}
		return alloc
	}
	return core.AllocateSlots(ests, info.TotalSlots, p.opts.SlotsPerJob)
}

// target returns the normalized target, applying the dynamic-target
// extension when enabled.
func (p *POP) target(info Info) float64 {
	base := info.Normalize(info.Target)
	if !p.opts.DynamicTarget {
		return base
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.targetSet {
		p.curTarget = base
		p.targetSet = true
	}
	return p.curTarget
}

// ObserveBest feeds the dynamic-target extension: when the observed
// best clears the current target, the target moves up. Engines call
// this on every stat report when the extension is enabled.
func (p *POP) ObserveBest(info Info, rawBest float64) {
	if !p.opts.DynamicTarget {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.targetSet {
		p.curTarget = info.Normalize(info.Target)
		p.targetSet = true
	}
	if n := info.Normalize(rawBest); n >= p.curTarget {
		p.curTarget = n + p.opts.DynamicTargetStep
		if p.curTarget > 1 {
			p.curTarget = 1
		}
	}
}

func (p *POP) dropEstimate(job sched.JobID) {
	p.mu.Lock()
	delete(p.estimates, job)
	p.mu.Unlock()
}

var (
	_ Policy     = (*POP)(nil)
	_ FitCounter = (*POP)(nil)
)
