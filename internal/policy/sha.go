package policy

import (
	"fmt"
	"sort"
	"sync"

	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// SHAOptions configures the SuccessiveHalving policy.
type SHAOptions struct {
	// Eta is the elimination factor: a configuration reaching a rung
	// survives only if its best metric is within the top 1/Eta of
	// everything that has reached that rung so far. Default 3
	// (HyperBand's customary value).
	Eta int
	// MinEpochs is r0, the first rung's epoch budget; 0 uses the
	// workload's evaluation boundary.
	MinEpochs int
	// Brackets > 1 runs full (asynchronous) HyperBand: incoming
	// configurations are spread round-robin over brackets whose first
	// rung sits at r0, r0*Eta, r0*Eta^2, ... — hedging the choice of
	// initial budget the way HyperBand's outer loop does. 0 or 1 is
	// plain successive halving.
	Brackets int
}

// SuccessiveHalving implements asynchronous successive halving (the
// rung-based core of HyperBand, Li et al., ICLR 2017, in the
// asynchronous formulation of ASHA) as a HyperDrive SAP — an example
// of the "existing and future search and scheduling algorithms" the
// framework is designed to host (§4.1). Rungs sit at epoch budgets
// r0, r0*eta, r0*eta^2, ...; a configuration reaching a rung continues
// only if its best metric ranks within the top 1/eta of all arrivals
// at that rung so far, and is terminated otherwise. The asynchronous
// rule avoids round barriers, which matches HyperDrive's
// schedule-as-it-goes execution (§4.2).
type SuccessiveHalving struct {
	eta       int
	minEpochs int
	brackets  int

	mu        sync.Mutex
	allowance map[sched.JobID]int
	bracket   map[sched.JobID]int
	nextBr    int
	rungs     map[rungKey][]float64 // (bracket, rung epoch) -> recorded bests
	decisions int
}

// rungKey identifies a rung within a bracket.
type rungKey struct {
	bracket int
	epoch   int
}

// NewSuccessiveHalving builds the policy.
func NewSuccessiveHalving(opts SHAOptions) (*SuccessiveHalving, error) {
	if opts.Eta == 0 {
		opts.Eta = 3
	}
	if opts.Eta < 2 {
		return nil, fmt.Errorf("policy: sha eta %d must be >= 2", opts.Eta)
	}
	if opts.MinEpochs < 0 {
		return nil, fmt.Errorf("policy: sha min epochs %d must be non-negative", opts.MinEpochs)
	}
	if opts.Brackets == 0 {
		opts.Brackets = 1
	}
	if opts.Brackets < 1 {
		return nil, fmt.Errorf("policy: sha brackets %d must be positive", opts.Brackets)
	}
	return &SuccessiveHalving{
		eta:       opts.Eta,
		minEpochs: opts.MinEpochs,
		brackets:  opts.Brackets,
		allowance: make(map[sched.JobID]int),
		bracket:   make(map[sched.JobID]int),
		rungs:     make(map[rungKey][]float64),
	}, nil
}

// Name implements Policy.
func (*SuccessiveHalving) Name() string { return "sha" }

// Rounds reports how many rung decisions have been made (diagnostic).
func (s *SuccessiveHalving) Rounds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.decisions
}

// r0 resolves the first rung.
func (s *SuccessiveHalving) r0(info Info) int {
	if s.minEpochs > 0 {
		return s.minEpochs
	}
	return boundary(0, info)
}

// AllocateJobs implements Policy.
func (*SuccessiveHalving) AllocateJobs(ctx Context) { greedyAllocate(ctx) }

// ApplicationStat implements Policy.
func (*SuccessiveHalving) ApplicationStat(Context, sched.Event) {}

// OnIterationFinish implements Policy: rung check on arrival.
func (s *SuccessiveHalving) OnIterationFinish(ctx Context, ev sched.Event) sched.Decision {
	info := ctx.Info()
	s.mu.Lock()
	br, brOK := s.bracket[ev.Job]
	if !brOK {
		// HyperBand's outer loop: spread configurations round-robin
		// over brackets with geometrically increasing first rungs.
		br = s.nextBr
		s.nextBr = (s.nextBr + 1) % s.brackets
		s.bracket[ev.Job] = br
	}
	allow, ok := s.allowance[ev.Job]
	if !ok {
		allow = s.r0(info)
		for i := 0; i < br; i++ {
			allow *= s.eta
		}
		if allow > info.MaxEpoch {
			allow = info.MaxEpoch
		}
		s.allowance[ev.Job] = allow
	}
	s.mu.Unlock()
	if allow >= info.MaxEpoch || ev.Epoch < allow {
		return sched.Continue
	}

	best, ok := ctx.DB().Best(ev.Job)
	if !ok {
		best = info.Normalize(ev.Metric)
	}
	best = info.Normalize(best)

	s.mu.Lock()
	defer s.mu.Unlock()
	s.decisions++
	key := rungKey{bracket: br, epoch: allow}
	arrivals := append(s.rungs[key], best)
	s.rungs[key] = arrivals
	if !s.topFraction(arrivals, best) {
		delete(s.allowance, ev.Job)
		delete(s.bracket, ev.Job)
		return sched.Terminate
	}
	next := allow * s.eta
	if next > info.MaxEpoch {
		next = info.MaxEpoch
	}
	s.allowance[ev.Job] = next
	// Surface the promotion to the scheduler's idle ordering too.
	ctx.LabelJob(ev.Job, best)
	return sched.Continue
}

// topFraction reports whether v ranks within the top 1/eta of the
// rung's arrivals so far (ties resolved in the candidate's favor, so
// the first arrival is always promoted — the standard asynchronous
// rule).
func (s *SuccessiveHalving) topFraction(arrivals []float64, v float64) bool {
	sorted := append([]float64(nil), arrivals...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	keep := (len(sorted) + s.eta - 1) / s.eta
	if keep < 1 {
		keep = 1
	}
	return v >= sorted[keep-1]
}

var _ Policy = (*SuccessiveHalving)(nil)
