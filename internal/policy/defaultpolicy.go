package policy

import (
	"github.com/hyperdrive-ml/hyperdrive/internal/sched"
)

// Default is the paper's Default SAP (§4.2): greedily allocate idle
// jobs to idle machines and run every job to its max epoch, ignoring
// application statistics. It is both the weakest baseline (random
// search without early termination, §6.1) and the base behaviour the
// other policies extend.
type Default struct{}

// NewDefault returns the Default SAP.
func NewDefault() *Default { return &Default{} }

// Name implements Policy.
func (*Default) Name() string { return "default" }

// AllocateJobs implements Policy: start as many idle jobs as there are
// idle machines.
func (*Default) AllocateJobs(ctx Context) { greedyAllocate(ctx) }

// ApplicationStat implements Policy (ignored).
func (*Default) ApplicationStat(Context, sched.Event) {}

// OnIterationFinish implements Policy: always continue.
func (*Default) OnIterationFinish(Context, sched.Event) sched.Decision {
	return sched.Continue
}

var _ Policy = (*Default)(nil)
