package param

// CIFAR10Space returns the 14-hyperparameter search space used for the
// supervised-learning workload, mirroring the cuda-convnet layers-18pct
// CIFAR-10 configuration explored in the paper (which reuses Table 3 of
// Domhan et al., IJCAI 2015): solver parameters (learning rate schedule,
// momentum, weight decay) plus per-layer architecture knobs.
func CIFAR10Space() *Space {
	return MustSpace(
		Param{Name: "learning_rate", Kind: LogUniform, Min: 1e-5, Max: 1e-1},
		Param{Name: "lr_gamma", Kind: Uniform, Min: 0.8, Max: 1.0},
		Param{Name: "lr_step", Kind: Int, Min: 1, Max: 30},
		Param{Name: "momentum", Kind: Uniform, Min: 0, Max: 0.99},
		Param{Name: "weight_decay", Kind: LogUniform, Min: 5e-6, Max: 5e-2},
		Param{Name: "batch_size", Kind: Choice, Choices: []float64{32, 64, 128, 256}},
		Param{Name: "conv1_filters", Kind: Int, Min: 16, Max: 96},
		Param{Name: "conv2_filters", Kind: Int, Min: 16, Max: 96},
		Param{Name: "conv3_filters", Kind: Int, Min: 16, Max: 96},
		Param{Name: "fc_size", Kind: Int, Min: 32, Max: 512},
		Param{Name: "init_std", Kind: LogUniform, Min: 1e-4, Max: 1e-1},
		Param{Name: "dropout", Kind: Uniform, Min: 0, Max: 0.7},
		Param{Name: "pool_type", Kind: Choice, Choices: []float64{0, 1}},
		Param{Name: "lr_policy", Kind: Choice, Choices: []float64{0, 1, 2}},
	)
}

// LunarLanderSpace returns the 11-hyperparameter space for the
// reinforcement-learning workload, mirroring the DQN-style agent of
// Asadi & Williams (2016) used by the paper: optimizer, exploration
// schedule, replay and target-network parameters, and network size.
func LunarLanderSpace() *Space {
	return MustSpace(
		Param{Name: "learning_rate", Kind: LogUniform, Min: 1e-5, Max: 1e-2},
		Param{Name: "discount", Kind: Uniform, Min: 0.95, Max: 0.999},
		Param{Name: "epsilon_start", Kind: Uniform, Min: 0.5, Max: 1.0},
		Param{Name: "epsilon_decay", Kind: Uniform, Min: 0.98, Max: 0.99999},
		Param{Name: "epsilon_min", Kind: Uniform, Min: 0.0, Max: 0.15},
		Param{Name: "hidden1", Kind: Int, Min: 16, Max: 256},
		Param{Name: "hidden2", Kind: Int, Min: 16, Max: 256},
		Param{Name: "batch_size", Kind: Choice, Choices: []float64{16, 32, 64, 128}},
		Param{Name: "replay_size", Kind: Int, Min: 1000, Max: 200000},
		Param{Name: "target_update", Kind: Int, Min: 10, Max: 5000},
		Param{Name: "reward_scale", Kind: LogUniform, Min: 0.01, Max: 10},
	)
}
