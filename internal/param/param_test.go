package param

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParamValidate(t *testing.T) {
	tests := []struct {
		name    string
		give    Param
		wantErr bool
	}{
		{"valid uniform", Param{Name: "a", Kind: Uniform, Min: 0, Max: 1}, false},
		{"valid loguniform", Param{Name: "a", Kind: LogUniform, Min: 1e-5, Max: 1}, false},
		{"valid int", Param{Name: "a", Kind: Int, Min: 1, Max: 10}, false},
		{"valid choice", Param{Name: "a", Kind: Choice, Choices: []float64{1, 2}}, false},
		{"empty name", Param{Kind: Uniform, Min: 0, Max: 1}, true},
		{"inverted bounds", Param{Name: "a", Kind: Uniform, Min: 2, Max: 1}, true},
		{"nonpositive log bound", Param{Name: "a", Kind: LogUniform, Min: 0, Max: 1}, true},
		{"inverted log bounds", Param{Name: "a", Kind: LogUniform, Min: 2, Max: 1}, true},
		{"empty choice", Param{Name: "a", Kind: Choice}, true},
		{"unknown kind", Param{Name: "a"}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.give.Validate()
			if (err != nil) != tt.wantErr {
				t.Fatalf("Validate() error = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestSampleWithinBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	params := []Param{
		{Name: "u", Kind: Uniform, Min: -2, Max: 3},
		{Name: "l", Kind: LogUniform, Min: 1e-4, Max: 10},
		{Name: "i", Kind: Int, Min: 3, Max: 9},
		{Name: "c", Kind: Choice, Choices: []float64{0.5, 7, 42}},
	}
	for _, p := range params {
		for i := 0; i < 1000; i++ {
			v := p.Sample(rng)
			switch p.Kind {
			case Uniform, LogUniform, Int:
				if v < p.Min || v > p.Max {
					t.Fatalf("%s: sample %v out of [%v, %v]", p.Name, v, p.Min, p.Max)
				}
				if p.Kind == Int && v != math.Trunc(v) {
					t.Fatalf("%s: int sample %v not integral", p.Name, v)
				}
			case Choice:
				found := false
				for _, c := range p.Choices {
					if c == v {
						found = true
					}
				}
				if !found {
					t.Fatalf("%s: sample %v not in choices", p.Name, v)
				}
			}
		}
	}
}

func TestSampleIntDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := Param{Name: "i", Kind: Int, Min: 5, Max: 5}
	if v := p.Sample(rng); v != 5 {
		t.Fatalf("degenerate int sample = %v, want 5", v)
	}
}

func TestLogUniformCoversDecades(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p := Param{Name: "lr", Kind: LogUniform, Min: 1e-5, Max: 1e-1}
	low, high := 0, 0
	for i := 0; i < 4000; i++ {
		v := p.Sample(rng)
		if v < 1e-4 {
			low++
		}
		if v > 1e-2 {
			high++
		}
	}
	// Each end decade should hold roughly 1/4 of the mass.
	if low < 500 || high < 500 {
		t.Fatalf("log-uniform not covering decades: low=%d high=%d", low, high)
	}
}

func TestGridValues(t *testing.T) {
	p := Param{Name: "u", Kind: Uniform, Min: 0, Max: 10}
	got := p.GridValues(3)
	want := []float64{0, 5, 10}
	if len(got) != len(want) {
		t.Fatalf("GridValues = %v, want %v", got, want)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("GridValues[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestGridValuesLogSpaced(t *testing.T) {
	p := Param{Name: "l", Kind: LogUniform, Min: 1e-4, Max: 1}
	got := p.GridValues(5)
	for i := 1; i < len(got); i++ {
		ratio := got[i] / got[i-1]
		if math.Abs(ratio-10) > 1e-6 {
			t.Fatalf("log grid ratio = %v, want 10", ratio)
		}
	}
}

func TestGridValuesIntDedup(t *testing.T) {
	p := Param{Name: "i", Kind: Int, Min: 1, Max: 3}
	got := p.GridValues(10)
	if len(got) != 3 {
		t.Fatalf("int grid = %v, want 3 distinct values", got)
	}
}

func TestGridValuesSinglePoint(t *testing.T) {
	p := Param{Name: "u", Kind: Uniform, Min: 2, Max: 4}
	got := p.GridValues(1)
	if len(got) != 1 || got[0] != 3 {
		t.Fatalf("GridValues(1) = %v, want midpoint [3]", got)
	}
}

func TestNormalizeProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}
	p := Param{Name: "u", Kind: Uniform, Min: -1, Max: 1}
	inRange := func(v float64) bool {
		n := p.Normalize(v)
		return n >= 0 && n <= 1 && !math.IsNaN(n)
	}
	if err := quick.Check(inRange, cfg); err != nil {
		t.Fatal(err)
	}
	lp := Param{Name: "l", Kind: LogUniform, Min: 1e-5, Max: 1e-1}
	logInRange := func(v float64) bool {
		n := lp.Normalize(math.Abs(v) + 1e-9)
		return n >= 0 && n <= 1 && !math.IsNaN(n)
	}
	if err := quick.Check(logInRange, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNormalizeEndpoints(t *testing.T) {
	p := Param{Name: "u", Kind: Uniform, Min: 10, Max: 20}
	if got := p.Normalize(10); got != 0 {
		t.Fatalf("Normalize(min) = %v, want 0", got)
	}
	if got := p.Normalize(20); got != 1 {
		t.Fatalf("Normalize(max) = %v, want 1", got)
	}
	if got := p.Normalize(15); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Normalize(mid) = %v, want 0.5", got)
	}
}

func TestNormalizeChoice(t *testing.T) {
	p := Param{Name: "c", Kind: Choice, Choices: []float64{8, 16, 32}}
	if got := p.Normalize(16); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Normalize(middle choice) = %v, want 0.5", got)
	}
	if got := p.Normalize(99); got != 0.5 {
		t.Fatalf("Normalize(unknown choice) = %v, want 0.5 fallback", got)
	}
}

func TestNewSpaceRejectsDuplicates(t *testing.T) {
	_, err := NewSpace(
		Param{Name: "a", Kind: Uniform, Min: 0, Max: 1},
		Param{Name: "a", Kind: Uniform, Min: 0, Max: 1},
	)
	if err == nil {
		t.Fatal("NewSpace accepted duplicate names")
	}
}

func TestNewSpaceRejectsInvalidParam(t *testing.T) {
	if _, err := NewSpace(Param{Name: "", Kind: Uniform}); err == nil {
		t.Fatal("NewSpace accepted invalid param")
	}
}

func TestSpaceSampleComplete(t *testing.T) {
	s := CIFAR10Space()
	rng := rand.New(rand.NewSource(11))
	cfg := s.Sample(rng)
	if err := s.Validate(cfg); err != nil {
		t.Fatalf("sampled config invalid: %v", err)
	}
	if len(cfg) != s.Len() {
		t.Fatalf("config has %d values, want %d", len(cfg), s.Len())
	}
}

func TestSpaceLookup(t *testing.T) {
	s := CIFAR10Space()
	p, ok := s.Lookup("learning_rate")
	if !ok || p.Kind != LogUniform {
		t.Fatalf("Lookup(learning_rate) = %+v, %v", p, ok)
	}
	if _, ok := s.Lookup("nope"); ok {
		t.Fatal("Lookup found nonexistent param")
	}
}

func TestSpaceGridCrossProduct(t *testing.T) {
	s := MustSpace(
		Param{Name: "a", Kind: Uniform, Min: 0, Max: 1},
		Param{Name: "b", Kind: Choice, Choices: []float64{1, 2, 3}},
	)
	grid := s.Grid(2)
	if len(grid) != 6 {
		t.Fatalf("grid size = %d, want 6", len(grid))
	}
	seen := make(map[string]bool)
	for _, cfg := range grid {
		if seen[cfg.Key()] {
			t.Fatalf("duplicate grid point %v", cfg)
		}
		seen[cfg.Key()] = true
	}
}

func TestSpaceValidateMissing(t *testing.T) {
	s := MustSpace(Param{Name: "a", Kind: Uniform, Min: 0, Max: 1})
	if err := s.Validate(Config{}); err == nil {
		t.Fatal("Validate accepted incomplete config")
	}
}

func TestConfigKeyDeterministic(t *testing.T) {
	a := Config{"x": 1, "y": 2.5}
	b := Config{"y": 2.5, "x": 1}
	if a.Key() != b.Key() {
		t.Fatalf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	c := Config{"x": 1, "y": 2.5000001}
	if a.Key() == c.Key() {
		t.Fatal("distinct configs share a key")
	}
}

func TestConfigCloneIndependent(t *testing.T) {
	a := Config{"x": 1}
	b := a.Clone()
	b["x"] = 2
	if a["x"] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestConfigGetDefault(t *testing.T) {
	c := Config{"x": 3}
	if got := c.Get("x", 9); got != 3 {
		t.Fatalf("Get(x) = %v, want 3", got)
	}
	if got := c.Get("missing", 9); got != 9 {
		t.Fatalf("Get(missing) = %v, want default 9", got)
	}
}

func TestWellKnownSpaces(t *testing.T) {
	if got := CIFAR10Space().Len(); got != 14 {
		t.Fatalf("CIFAR10Space has %d params, want 14 (paper §6.1)", got)
	}
	if got := LunarLanderSpace().Len(); got != 11 {
		t.Fatalf("LunarLanderSpace has %d params, want 11 (paper §6.1)", got)
	}
}

func TestKindString(t *testing.T) {
	tests := []struct {
		give Kind
		want string
	}{
		{Uniform, "uniform"},
		{LogUniform, "loguniform"},
		{Int, "int"},
		{Choice, "choice"},
		{Kind(99), "kind(99)"},
	}
	for _, tt := range tests {
		if got := tt.give.String(); got != tt.want {
			t.Errorf("Kind(%d).String() = %q, want %q", tt.give, got, tt.want)
		}
	}
}
