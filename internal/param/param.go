// Package param defines hyperparameter search spaces: named parameters
// with continuous (uniform or log-uniform), integer, or categorical
// domains, plus sampling and grid enumeration over them. It is the
// vocabulary shared by the hyperparameter generators (internal/hypergen)
// and the synthetic workloads (internal/workload).
package param

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// Kind identifies the domain type of a parameter.
type Kind int

// Parameter domain kinds.
const (
	Uniform Kind = iota + 1 // continuous, uniform in [Min, Max]
	LogUniform
	Int    // integer, uniform in [Min, Max]
	Choice // categorical over Choices
)

// String returns the lowercase kind name.
func (k Kind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case LogUniform:
		return "loguniform"
	case Int:
		return "int"
	case Choice:
		return "choice"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Param describes one hyperparameter.
type Param struct {
	Name    string
	Kind    Kind
	Min     float64   // Uniform, LogUniform, Int
	Max     float64   // Uniform, LogUniform, Int
	Choices []float64 // Choice
}

// Validate reports whether the parameter definition is internally
// consistent.
func (p Param) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("param: empty name")
	}
	switch p.Kind {
	case Uniform, Int:
		if p.Min > p.Max {
			return fmt.Errorf("param %q: min %v > max %v", p.Name, p.Min, p.Max)
		}
	case LogUniform:
		if p.Min <= 0 || p.Max <= 0 {
			return fmt.Errorf("param %q: log-uniform bounds must be positive", p.Name)
		}
		if p.Min > p.Max {
			return fmt.Errorf("param %q: min %v > max %v", p.Name, p.Min, p.Max)
		}
	case Choice:
		if len(p.Choices) == 0 {
			return fmt.Errorf("param %q: choice with no choices", p.Name)
		}
	default:
		return fmt.Errorf("param %q: unknown kind %v", p.Name, p.Kind)
	}
	return nil
}

// Sample draws one value from the parameter's domain using rng.
func (p Param) Sample(rng *rand.Rand) float64 {
	switch p.Kind {
	case Uniform:
		return p.Min + rng.Float64()*(p.Max-p.Min)
	case LogUniform:
		lo, hi := math.Log(p.Min), math.Log(p.Max)
		return math.Exp(lo + rng.Float64()*(hi-lo))
	case Int:
		span := int64(p.Max) - int64(p.Min) + 1
		if span <= 1 {
			return p.Min
		}
		return float64(int64(p.Min) + rng.Int63n(span))
	case Choice:
		return p.Choices[rng.Intn(len(p.Choices))]
	default:
		return p.Min
	}
}

// GridValues returns n values spanning the parameter's domain: evenly
// spaced for Uniform/Int, log-spaced for LogUniform, and all choices for
// Choice (ignoring n).
func (p Param) GridValues(n int) []float64 {
	if n < 1 {
		n = 1
	}
	switch p.Kind {
	case Choice:
		out := make([]float64, len(p.Choices))
		copy(out, p.Choices)
		return out
	case Uniform:
		return linspace(p.Min, p.Max, n)
	case LogUniform:
		logs := linspace(math.Log(p.Min), math.Log(p.Max), n)
		for i, v := range logs {
			logs[i] = math.Exp(v)
		}
		return logs
	case Int:
		vals := linspace(p.Min, p.Max, n)
		seen := make(map[float64]bool, len(vals))
		var out []float64
		for _, v := range vals {
			r := math.Round(v)
			if !seen[r] {
				seen[r] = true
				out = append(out, r)
			}
		}
		return out
	default:
		return []float64{p.Min}
	}
}

// Normalize maps a value in the parameter's domain to [0, 1], which the
// synthetic workloads use to derive learnability scores. Values outside
// the domain are clamped.
func (p Param) Normalize(v float64) float64 {
	switch p.Kind {
	case Uniform, Int:
		//hdlint:ignore floateq a degenerate domain is exactly Max == Min as configured; nearly-equal bounds still define a real (tiny) range
		if p.Max == p.Min {
			return 0.5
		}
		return clamp01((v - p.Min) / (p.Max - p.Min))
	case LogUniform:
		lo, hi := math.Log(p.Min), math.Log(p.Max)
		//hdlint:ignore floateq degenerate log-domain check, same reasoning as the Uniform case above
		if hi == lo {
			return 0.5
		}
		return clamp01((math.Log(math.Max(v, 1e-300)) - lo) / (hi - lo))
	case Choice:
		for i, c := range p.Choices {
			//hdlint:ignore floateq Choice values are enumerated constants; membership is exact by construction, not the result of arithmetic
			if c == v {
				if len(p.Choices) == 1 {
					return 0.5
				}
				return float64(i) / float64(len(p.Choices)-1)
			}
		}
		return 0.5
	default:
		return 0.5
	}
}

// Space is an ordered collection of parameters.
type Space struct {
	params []Param
	index  map[string]int
}

// NewSpace builds a Space, validating every parameter and rejecting
// duplicates.
func NewSpace(params ...Param) (*Space, error) {
	s := &Space{index: make(map[string]int, len(params))}
	for _, p := range params {
		if err := p.Validate(); err != nil {
			return nil, err
		}
		if _, dup := s.index[p.Name]; dup {
			return nil, fmt.Errorf("param %q: duplicate name", p.Name)
		}
		s.index[p.Name] = len(s.params)
		s.params = append(s.params, p)
	}
	return s, nil
}

// MustSpace is NewSpace that panics on error; for package-level
// definitions of well-known spaces.
func MustSpace(params ...Param) *Space {
	s, err := NewSpace(params...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of parameters.
func (s *Space) Len() int { return len(s.params) }

// Params returns a copy of the parameter list.
func (s *Space) Params() []Param {
	out := make([]Param, len(s.params))
	copy(out, s.params)
	return out
}

// Lookup returns the parameter with the given name.
func (s *Space) Lookup(name string) (Param, bool) {
	i, ok := s.index[name]
	if !ok {
		return Param{}, false
	}
	return s.params[i], true
}

// Sample draws a full configuration from the space.
func (s *Space) Sample(rng *rand.Rand) Config {
	c := make(Config, len(s.params))
	for _, p := range s.params {
		c[p.Name] = p.Sample(rng)
	}
	return c
}

// Grid enumerates the cross-product grid with perAxis values per
// continuous axis. The result is deterministic. Callers should keep
// perAxis small: the grid has perAxis^dims points.
func (s *Space) Grid(perAxis int) []Config {
	grids := make([][]float64, len(s.params))
	total := 1
	for i, p := range s.params {
		grids[i] = p.GridValues(perAxis)
		total *= len(grids[i])
	}
	out := make([]Config, 0, total)
	idx := make([]int, len(s.params))
	for {
		c := make(Config, len(s.params))
		for i, p := range s.params {
			c[p.Name] = grids[i][idx[i]]
		}
		out = append(out, c)
		// Odometer increment.
		i := len(idx) - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(grids[i]) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			break
		}
	}
	return out
}

// Validate checks that cfg assigns a value to every parameter in the
// space (extra keys are allowed and ignored).
func (s *Space) Validate(cfg Config) error {
	for _, p := range s.params {
		if _, ok := cfg[p.Name]; !ok {
			return fmt.Errorf("config missing param %q", p.Name)
		}
	}
	return nil
}

// Config is one assignment of values to hyperparameter names.
type Config map[string]float64

// Get returns the value for name, or def when absent.
func (c Config) Get(name string, def float64) float64 {
	if v, ok := c[name]; ok {
		return v
	}
	return def
}

// Clone returns a deep copy.
func (c Config) Clone() Config {
	out := make(Config, len(c))
	for k, v := range c {
		out[k] = v
	}
	return out
}

// Key returns a deterministic string identity for the configuration,
// suitable for map keys and trace files.
func (c Config) Key() string {
	names := make([]string, 0, len(c))
	for k := range c {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, k := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(strconv.FormatFloat(c[k], 'g', 12, 64))
	}
	return b.String()
}

func linspace(lo, hi float64, n int) []float64 {
	if n == 1 {
		return []float64{(lo + hi) / 2}
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
