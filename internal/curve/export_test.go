package curve

// RawSamples exposes the posterior draws to the determinism tests,
// which assert byte-identical samples across worker counts and
// GOMAXPROCS values.
func (p *Posterior) RawSamples() [][]float64 { return p.samples }

// PosteriorEnsembleForTest exposes the fitted ensemble so tests can
// run independent oracle computations over the raw draws.
func PosteriorEnsembleForTest(p *Posterior) *ensemble { return p.ens }
