package curve

import (
	"math"
	"testing"
)

// TestModelClosedForms pins each family's formula against hand-computed
// values so future refactors cannot silently change the model
// definitions (which must match Domhan et al.'s families).
func TestModelClosedForms(t *testing.T) {
	tests := []struct {
		model Model
		theta []float64
		x     float64
		want  float64
	}{
		// vap: exp(a + b/x + c ln x) with a=0, b=-1, c=0 at x=2:
		// exp(-0.5).
		{vapModel{}, []float64{0, -1, 0}, 2, math.Exp(-0.5)},
		// pow3: c - a x^-alpha with c=0.8, a=0.7, alpha=1 at x=7:
		// 0.8 - 0.1.
		{pow3Model{}, []float64{0.8, 0.7, 1}, 7, 0.7},
		// pow4: c - (a x + b)^-alpha with c=1, a=3, b=1, alpha=2 at
		// x=1: 1 - 1/16.
		{pow4Model{}, []float64{1, 3, 1, 2}, 1, 1 - 1.0/16},
		// loglog linear: ln(a ln x + b) with a=1, b=1 at x=e:
		// ln(2).
		{logLogLinearModel{}, []float64{1, 1}, math.E, math.Ln2},
		// log power: a / (1 + (x/e^b)^c) with a=1, b=0, c=-1 at x=3:
		// 1 / (1 + 1/3).
		{logPowerModel{}, []float64{1, 0, -1}, 3, 0.75},
		// mmf: alpha - (alpha-beta)/(1+(kx)^delta) with alpha=1,
		// beta=0, k=1, delta=1 at x=1: 1 - 1/2.
		{mmfModel{}, []float64{1, 0, 1, 1}, 1, 0.5},
		// exp4: c - exp(-a x^alpha + b) with c=1, a=1, b=0, alpha=1 at
		// x=1: 1 - e^-1.
		{exp4Model{}, []float64{1, 1, 0, 1}, 1, 1 - math.Exp(-1)},
		// janoschek: alpha - (alpha-beta) e^{-k x^delta} with alpha=1,
		// beta=0, k=1, delta=1 at x=1: 1 - e^-1.
		{janoschekModel{}, []float64{1, 0, 1, 1}, 1, 1 - math.Exp(-1)},
		// weibull: alpha - (alpha-beta) e^{-(k x)^delta} with alpha=1,
		// beta=0, k=2, delta=1 at x=1: 1 - e^-2.
		{weibullModel{}, []float64{1, 0, 2, 1}, 1, 1 - math.Exp(-2)},
		// ilog2: c - a/ln(x+1) with c=1, a=ln 2 at x=1: 0.
		{ilog2Model{}, []float64{1, math.Ln2}, 1, 0},
		// hill3: theta x^eta / (kappa^eta + x^eta) with theta=1,
		// eta=2, kappa=3 at x=3: 1/2.
		{hill3Model{}, []float64{1, 2, 3}, 3, 0.5},
	}
	for _, tt := range tests {
		got := tt.model.Eval(tt.x, tt.theta)
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("%s(%v; %v) = %v, want %v", tt.model.Name(), tt.x, tt.theta, got, tt.want)
		}
	}
}

// TestModelInitPassesThroughEndpoint checks the asymptote-consistent
// initialization: each family's init curve should approximate the
// observed endpoint for any asymptote hypothesis, which is what keeps
// high-asymptote walkers alive under the likelihood.
func TestModelInitPassesThroughEndpoint(t *testing.T) {
	// A clean saturating prefix.
	y := make([]float64, 30)
	for i := range y {
		x := float64(i + 1)
		y[i] = 0.1 + 0.5*(1-math.Exp(-0.08*x))
	}
	yn := y[len(y)-1]
	for _, asym := range []float64{yn + 0.05, 0.7, 0.9, 1.0} {
		for _, m := range Models() {
			th := m.Init(y, asym)
			got := m.Eval(float64(len(y)), th)
			if math.IsNaN(got) {
				t.Errorf("%s(asym=%.2f): NaN at the endpoint", m.Name(), asym)
				continue
			}
			// vap and loglog-linear lack an explicit asymptote
			// parameter, and pow4's init is a rough two-point fit;
			// their misfit is handled by the NNLS weighting, so allow
			// slack here.
			tol := 0.12
			switch m.Name() {
			case "vap", "logloglinear", "pow4":
				tol = 0.55
			}
			if math.Abs(got-yn) > tol {
				t.Errorf("%s(asym=%.2f): endpoint %v vs observed %v", m.Name(), asym, got, yn)
			}
		}
	}
}

// TestHalfLife checks the rate-estimation helper.
func TestHalfLife(t *testing.T) {
	// Linear rise from 0 to 4 over 9 points: half-way (2) is crossed
	// at index 4 (epoch 5). Exact binary values avoid float drift.
	y := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3, 3.5, 4}
	if got := halfLife(y); got != 5 {
		t.Fatalf("halfLife = %v, want 5", got)
	}
	// Flat curve: no meaningful half-life -> prefix length.
	flat := []float64{0.2, 0.2, 0.2}
	if got := halfLife(flat); got != 3 {
		t.Fatalf("halfLife(flat) = %v, want 3", got)
	}
	if got := halfLife([]float64{0.5}); got != 10 {
		t.Fatalf("halfLife(single) = %v, want default 10", got)
	}
}

// TestRiseStatsSolvesRate checks that the implied rate reproduces the
// endpoint: A - (A-y0) e^{-k n} = yn.
func TestRiseStatsSolvesRate(t *testing.T) {
	y := []float64{0.1, 0.2, 0.3, 0.4, 0.45}
	for _, asym := range []float64{0.5, 0.8, 1.0} {
		y0, yn, n, k := riseStats(y, asym)
		got := asym - (asym-y0)*math.Exp(-k*n)
		if math.Abs(got-yn) > 1e-9 {
			t.Errorf("asym=%v: endpoint %v, want %v", asym, got, yn)
		}
	}
}

// TestRiseStatsDegenerate: asymptote at/below the last observation
// must still produce finite positive rates.
func TestRiseStatsDegenerate(t *testing.T) {
	y := []float64{0.4, 0.45, 0.5}
	_, _, _, k := riseStats(y, 0.5) // asym == yn
	if math.IsNaN(k) || math.IsInf(k, 0) || k <= 0 {
		t.Fatalf("k = %v", k)
	}
	_, _, _, k = riseStats(y, 0.1) // asym below the curve
	if math.IsNaN(k) || k <= 0 {
		t.Fatalf("k = %v", k)
	}
}

// TestBestShapePicksBetterFit verifies the shape grid-search helper.
func TestBestShapePicksBetterFit(t *testing.T) {
	// Observations from janoschek with delta = 0.6.
	y := make([]float64, 25)
	for i := range y {
		x := float64(i + 1)
		y[i] = 0.8 - 0.7*math.Exp(-0.3*math.Pow(x, 0.6))
	}
	good := []float64{0.8, 0.1, 0.3, 0.6}
	bad := []float64{0.8, 0.1, 0.3, 1.6}
	picked := bestShape(y, janoschekModel{}, [][]float64{bad, good})
	if picked[3] != 0.6 {
		t.Fatalf("bestShape picked delta %v, want 0.6", picked[3])
	}
}
