package curve

import (
	"math"
)

// ensemble is the combined model y(x) = sum_k w_k f_k(x; theta_k) + eps,
// eps ~ N(0, sigma^2), over a fixed set of parametric families. The
// flat parameter vector is laid out as
//
//	[w_1 .. w_K, theta_1..., theta_2..., ..., logSigma]
//
// matching Domhan et al.'s joint model over weights, curve parameters,
// and noise.
type ensemble struct {
	models  []Model
	offsets []int // start of each model's theta within the flat vector
	dim     int   // total parameter count
	xlim    float64
}

func newEnsemble(models []Model, xlim int) *ensemble {
	e := &ensemble{models: models, xlim: float64(xlim)}
	e.offsets = make([]int, len(models))
	off := len(models) // weights first
	for i, m := range models {
		e.offsets[i] = off
		off += m.NumParams()
	}
	e.dim = off + 1 // + logSigma
	return e
}

// sigma extracts the noise standard deviation.
func (e *ensemble) sigma(th []float64) float64 { return math.Exp(th[e.dim-1]) }

// eval computes the combined mean curve at x.
func (e *ensemble) eval(x float64, th []float64) float64 {
	var y float64
	for i, m := range e.models {
		w := th[i]
		if w == 0 {
			continue
		}
		v := m.Eval(x, th[e.offsets[i]:e.offsets[i]+m.NumParams()])
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return math.NaN()
		}
		y += w * v
	}
	return y
}

// logPrior encodes the weak prior of Domhan et al.: non-negative
// weights, bounded noise, and a combined curve that stays on the metric
// scale and does not predict catastrophic collapse: y(1) within
// [-0.05, 1.05], y(xlim) within [0, 1.05], and y(xlim) >= y(1) - 0.05
// (learning curves trend upward on aggregate).
func (e *ensemble) logPrior(th []float64) float64 {
	var wsum float64
	for i := range e.models {
		w := th[i]
		if w < 0 {
			return math.Inf(-1)
		}
		wsum += w
	}
	if wsum < 0.5 || wsum > 2 {
		return math.Inf(-1)
	}
	ls := th[e.dim-1]
	if ls < math.Log(1e-4) || ls > math.Log(0.15) {
		return math.Inf(-1)
	}
	y1 := e.eval(1, th)
	yl := e.eval(e.xlim, th)
	if math.IsNaN(y1) || math.IsNaN(yl) {
		return math.Inf(-1)
	}
	if y1 < -0.05 || y1 > 1.05 || yl < 0 || yl > 1.05 {
		return math.Inf(-1)
	}
	if yl < y1-0.05 {
		return math.Inf(-1)
	}
	return 0
}

// logLikelihood is the Gaussian observation model over the observed
// prefix (y[i] observed at x = i+1).
func (e *ensemble) logLikelihood(y []float64, th []float64) float64 {
	sigma := e.sigma(th)
	inv2 := 1 / (2 * sigma * sigma)
	logNorm := -0.5*math.Log(2*math.Pi) - math.Log(sigma)
	var ll float64
	for i, obs := range y {
		pred := e.eval(float64(i+1), th)
		if math.IsNaN(pred) {
			return math.Inf(-1)
		}
		d := obs - pred
		ll += logNorm - d*d*inv2
	}
	return ll
}

// logPosterior is prior + likelihood.
func (e *ensemble) logPosterior(y []float64, th []float64) float64 {
	lp := e.logPrior(th)
	if math.IsInf(lp, -1) {
		return lp
	}
	return lp + e.logLikelihood(y, th)
}

// initVector builds a starting parameter vector from the per-model
// heuristics targeting the given asymptote hypothesis: heuristic
// thetas per family, family weights fitted to the observations by
// non-negative least squares (the cheap stand-in for Domhan et al.'s
// per-model maximum-likelihood initialization), and the residual scale
// as noise. Samplers call it with a spread of asymptotes so the
// initial walker ensemble covers the genuinely unconstrained "where
// does this curve top out" direction.
func (e *ensemble) initVector(y []float64, asym float64) []float64 {
	th := make([]float64, e.dim)
	k := len(e.models)
	for i, m := range e.models {
		copy(th[e.offsets[i]:], m.Init(y, asym))
	}

	// Basis matrix: each family's init curve at the observed epochs.
	basis := make([][]float64, k)
	for i, m := range e.models {
		col := make([]float64, len(y))
		ok := true
		for j := range y {
			v := m.Eval(float64(j+1), th[e.offsets[i]:e.offsets[i]+m.NumParams()])
			if math.IsNaN(v) || math.IsInf(v, 0) {
				ok = false
				break
			}
			col[j] = v
		}
		if !ok {
			col = nil
		}
		basis[i] = col
	}
	w := nnls(basis, y, 1/float64(k))
	copy(th, w)

	// Keep the weight sum inside the prior's support.
	var wsum float64
	for _, v := range w {
		wsum += v
	}
	if wsum < 0.5 || wsum > 2 {
		scale := 1.0
		if wsum > 0 {
			scale = 1 / wsum
		}
		for i := 0; i < k; i++ {
			th[i] = math.Max(w[i]*scale, 0)
		}
	}

	// Residual noise scale from the fitted combination.
	var ss float64
	for j, obs := range y {
		d := obs - e.eval(float64(j+1), th)
		ss += d * d
	}
	sigma := math.Sqrt(ss / float64(len(y)))
	if sigma < 0.005 {
		sigma = 0.005
	}
	if sigma > 0.14 {
		sigma = 0.14
	}
	th[e.dim-1] = math.Log(sigma)
	return th
}

// nnls solves min ||sum_k w_k basis_k - y||^2 subject to w >= 0 by
// cyclic coordinate descent. Families whose basis is nil (invalid init)
// get weight zero. def is the fallback weight when everything is
// degenerate.
func nnls(basis [][]float64, y []float64, def float64) []float64 {
	k := len(basis)
	w := make([]float64, k)
	norms := make([]float64, k)
	usable := false
	for i, col := range basis {
		if col == nil {
			continue
		}
		var n float64
		for _, v := range col {
			n += v * v
		}
		norms[i] = n
		if n > 1e-12 {
			usable = true
			w[i] = def
		}
	}
	if !usable {
		for i := range w {
			w[i] = def
		}
		return w
	}
	resid := make([]float64, len(y))
	for j := range y {
		var pred float64
		for i, col := range basis {
			if col != nil {
				pred += w[i] * col[j]
			}
		}
		resid[j] = y[j] - pred
	}
	for pass := 0; pass < 60; pass++ {
		for i, col := range basis {
			if col == nil || norms[i] <= 1e-12 {
				continue
			}
			var dot float64
			for j, v := range col {
				dot += v * resid[j]
			}
			next := w[i] + dot/norms[i]
			if next < 0 {
				next = 0
			}
			delta := next - w[i]
			if delta == 0 {
				continue
			}
			w[i] = next
			for j, v := range col {
				resid[j] -= delta * v
			}
		}
	}
	return w
}

// scales returns per-dimension jitter scales aligned with the flat
// vector.
func (e *ensemble) scales() []float64 {
	s := make([]float64, e.dim)
	k := len(e.models)
	for i := 0; i < k; i++ {
		s[i] = 0.5 / float64(k)
	}
	for i, m := range e.models {
		copy(s[e.offsets[i]:], m.Scales())
	}
	s[e.dim-1] = 0.5
	return s
}
