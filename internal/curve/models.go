// Package curve implements the probabilistic learning-curve prediction
// model that POP and the EarlyTerm baseline rely on (paper §3.1.1 and
// §5.2): a weighted combination of eleven parametric curve families
// (Domhan, Springenberg & Hutter, IJCAI 2015), with posterior inference
// by an affine-invariant ensemble MCMC sampler. Given the observed
// prefix of a training curve it answers
//
//	P(m, y) = P(y(m) >= y | y(1 : n))
//
// — the probability that the metric reaches y at future epoch m — plus
// posterior mean curves and credible bands.
//
// Metrics are expected on a [0, 1] scale (accuracy directly; rewards
// min-max normalized per §6.3 Eq. 4 before fitting).
package curve

import (
	"math"
)

// Model is one parametric learning-curve family f(x; theta), x >= 1.
type Model interface {
	// Name identifies the family.
	Name() string
	// NumParams returns the dimensionality of theta.
	NumParams() int
	// Eval evaluates f(x; theta). Implementations must return NaN
	// rather than panic for invalid parameters.
	Eval(x float64, theta []float64) float64
	// Init returns a heuristic starting theta for an observed curve
	// (y[i] is the metric after epoch i+1) targeting the given
	// asymptote. Samplers seed walkers with a spread of asymptote
	// hypotheses so the ensemble honestly represents extrapolation
	// uncertainty from short prefixes.
	Init(y []float64, asym float64) []float64
	// Scales returns per-parameter jitter scales used to spread the
	// initial walker ensemble.
	Scales() []float64
}

// Models returns the eleven families of Domhan et al. used by the
// paper's predictor, in a fixed order.
func Models() []Model {
	return []Model{
		vapModel{},
		pow3Model{},
		pow4Model{},
		logLogLinearModel{},
		logPowerModel{},
		mmfModel{},
		exp4Model{},
		janoschekModel{},
		weibullModel{},
		ilog2Model{},
		hill3Model{},
	}
}

// curveEnds summarizes an observed prefix for parameter initialization.
func curveEnds(y []float64) (y0, yn float64) {
	if len(y) == 0 {
		return 0.1, 0.5
	}
	return y[0], y[len(y)-1]
}

// DefaultAsym is a mildly optimistic asymptote hypothesis for an
// observed prefix: slightly above the last observation.
func DefaultAsym(y []float64) float64 {
	y0, yn := curveEnds(y)
	asym := yn + 0.1*(1-yn)
	if asym <= y0 {
		asym = y0 + 0.05
	}
	return asym
}

// halfLife estimates the epoch at which the curve crosses halfway
// between its first and last observed values; rate parameters are
// initialized from it so the starting ensemble already matches the
// observed time scale.
func halfLife(y []float64) float64 {
	if len(y) < 2 {
		return 10
	}
	y0, yn := y[0], y[len(y)-1]
	if yn <= y0+1e-9 {
		return float64(len(y)) // flat curve: no meaningful half-life
	}
	target := y0 + 0.5*(yn-y0)
	for i, v := range y {
		if v >= target {
			if i == 0 {
				return 1
			}
			return float64(i + 1)
		}
	}
	return float64(len(y))
}

// riseStats summarizes an observed prefix for an asymptote hypothesis
// A: the endpoints, the prefix length, and the implied exponential
// rate k solving A - (A-y0)e^{-kn} = yn — i.e., the rate at which a
// saturating curve through the data would approach A. Initializing
// each walker's rate consistently with its asymptote keeps the whole
// asymptote range alive under the likelihood, so the posterior
// honestly represents extrapolation uncertainty.
func riseStats(y []float64, asym float64) (y0, yn, n, k float64) {
	y0, yn = curveEnds(y)
	n = float64(len(y))
	if n < 1 {
		n = 1
	}
	if asym <= yn+0.01 {
		asym = yn + 0.01
	}
	num := asym - y0
	den := asym - yn
	if num <= 0 {
		num = 0.01
	}
	if den <= 0 {
		den = 0.005
	}
	ratio := num / den
	if ratio < 1.000001 {
		ratio = 1.000001
	}
	k = math.Log(ratio) / n
	return y0, yn, n, k
}

// bestShape evaluates candidate parameter vectors (one per shape
// hypothesis) against the observed prefix and returns the one with the
// lowest squared error. Models use it to pick their shape parameter
// consistently with an externally imposed asymptote.
func bestShape(y []float64, m Model, cands [][]float64) []float64 {
	best := cands[0]
	bestSSE := math.Inf(1)
	for _, th := range cands {
		var sse float64
		ok := true
		for i, obs := range y {
			v := m.Eval(float64(i+1), th)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				ok = false
				break
			}
			d := obs - v
			sse += d * d
		}
		if ok && sse < bestSSE {
			bestSSE = sse
			best = th
		}
	}
	return best
}

// --- vapor pressure: exp(a + b/x + c*ln x) ---------------------------

type vapModel struct{}

func (vapModel) Name() string   { return "vap" }
func (vapModel) NumParams() int { return 3 }

func (vapModel) Eval(x float64, th []float64) float64 {
	return math.Exp(th[0] + th[1]/x + th[2]*math.Log(x))
}

func (vapModel) Init(y []float64, asym float64) []float64 {
	return []float64{math.Log(math.Max(asym, 1e-3)), -0.5, 0.01}
}

func (vapModel) Scales() []float64 { return []float64{0.2, 0.3, 0.05} }

// --- pow3: c - a*x^(-alpha) ------------------------------------------

type pow3Model struct{}

func (pow3Model) Name() string   { return "pow3" }
func (pow3Model) NumParams() int { return 3 }

func (pow3Model) Eval(x float64, th []float64) float64 {
	return th[0] - th[1]*math.Pow(x, -th[2])
}

func (pow3Model) Init(y []float64, asym float64) []float64 {
	y0, yn, n, _ := riseStats(y, asym)
	// a = asym - y0 (fit at x=1); alpha from the endpoint at x=n.
	a := math.Max(asym-y0, 0.02)
	alpha := 0.5
	if n > 1.5 {
		alpha = math.Log(a/math.Max(asym-yn, 0.005)) / math.Log(n)
		if alpha < 0.05 {
			alpha = 0.05
		}
	}
	return []float64{asym, a, alpha}
}

func (pow3Model) Scales() []float64 { return []float64{0.1, 0.1, 0.2} }

// --- pow4: c - (a*x + b)^(-alpha) ------------------------------------

type pow4Model struct{}

func (pow4Model) Name() string   { return "pow4" }
func (pow4Model) NumParams() int { return 4 }

func (pow4Model) Eval(x float64, th []float64) float64 {
	base := th[1]*x + th[2]
	if base <= 0 {
		return math.NaN()
	}
	return th[0] - math.Pow(base, -th[3])
}

func (pow4Model) Init(y []float64, asym float64) []float64 {
	y0, _ := curveEnds(y)
	// At x=1: asym - (a+b)^-alpha = y0  =>  (a+b)^-alpha = asym-y0.
	diff := math.Max(asym-y0, 0.02)
	return []float64{asym, 0.3, math.Pow(diff, -2) - 0.3, 0.5}
}

func (pow4Model) Scales() []float64 { return []float64{0.1, 0.2, 0.5, 0.2} }

// --- log log linear: ln(a*ln(x) + b) ---------------------------------

type logLogLinearModel struct{}

func (logLogLinearModel) Name() string   { return "logloglinear" }
func (logLogLinearModel) NumParams() int { return 2 }

func (logLogLinearModel) Eval(x float64, th []float64) float64 {
	v := th[0]*math.Log(x) + th[1]
	if v <= 0 {
		return math.NaN()
	}
	return math.Log(v)
}

func (logLogLinearModel) Init(y []float64, asym float64) []float64 {
	y0, _ := curveEnds(y)
	return []float64{0.2 * asym, math.Exp(math.Max(y0, 0.01))}
}

func (logLogLinearModel) Scales() []float64 { return []float64{0.1, 0.2} }

// --- log power: a / (1 + (x/e^b)^c) ----------------------------------

type logPowerModel struct{}

func (logPowerModel) Name() string   { return "logpower" }
func (logPowerModel) NumParams() int { return 3 }

func (logPowerModel) Eval(x float64, th []float64) float64 {
	return th[0] / (1 + math.Pow(x/math.Exp(th[1]), th[2]))
}

func (logPowerModel) Init(y []float64, asym float64) []float64 {
	_, yn, n, _ := riseStats(y, asym)
	ratio := asym/math.Max(yn, 0.02) - 1
	if ratio <= 0 {
		ratio = 0.01
	}
	var cands [][]float64
	for _, c := range []float64{-1.0, -1.8, -3.0} { // negative exponent: increasing curve
		b := math.Log(n) - math.Log(ratio)/c
		cands = append(cands, []float64{asym, b, c})
	}
	return bestShape(y, logPowerModel{}, cands)
}

func (logPowerModel) Scales() []float64 { return []float64{0.1, 0.5, 0.2} }

// --- MMF: alpha - (alpha - beta) / (1 + (kappa*x)^delta) -------------

type mmfModel struct{}

func (mmfModel) Name() string   { return "mmf" }
func (mmfModel) NumParams() int { return 4 }

func (mmfModel) Eval(x float64, th []float64) float64 {
	kx := th[2] * x
	if kx < 0 {
		return math.NaN()
	}
	return th[0] - (th[0]-th[1])/(1+math.Pow(kx, th[3]))
}

func (mmfModel) Init(y []float64, asym float64) []float64 {
	y0, yn, n, _ := riseStats(y, asym)
	ratio := math.Max(yn-y0, 0.01) / math.Max(asym-yn, 0.005)
	var cands [][]float64
	for _, delta := range []float64{0.8, 1.2, 1.8, 2.5} {
		kappa := math.Pow(ratio, 1/delta) / n
		cands = append(cands, []float64{asym, y0, kappa, delta})
	}
	return bestShape(y, mmfModel{}, cands)
}

func (mmfModel) Scales() []float64 { return []float64{0.1, 0.05, 0.03, 0.3} }

// --- exp4: c - exp(-a*x^alpha + b) -----------------------------------

type exp4Model struct{}

func (exp4Model) Name() string   { return "exp4" }
func (exp4Model) NumParams() int { return 4 }

func (exp4Model) Eval(x float64, th []float64) float64 {
	return th[0] - math.Exp(-th[1]*math.Pow(x, th[3])+th[2])
}

func (exp4Model) Init(y []float64, asym float64) []float64 {
	y0, _, n, k := riseStats(y, asym)
	diff := math.Max(asym-y0, 0.02)
	lnRatio := math.Max(k*n, 1e-6)
	var cands [][]float64
	for _, alpha := range []float64{0.6, 1.0, 1.4} {
		den := math.Pow(n, alpha) - 1
		if den < 1e-6 {
			den = 1e-6
		}
		a := lnRatio / den
		cands = append(cands, []float64{asym, a, math.Log(diff) + a, alpha})
	}
	return bestShape(y, exp4Model{}, cands)
}

func (exp4Model) Scales() []float64 { return []float64{0.1, 0.03, 0.3, 0.2} }

// --- Janoschek: alpha - (alpha - beta)*exp(-kappa * x^delta) ---------

type janoschekModel struct{}

func (janoschekModel) Name() string   { return "janoschek" }
func (janoschekModel) NumParams() int { return 4 }

func (janoschekModel) Eval(x float64, th []float64) float64 {
	return th[0] - (th[0]-th[1])*math.Exp(-th[2]*math.Pow(x, th[3]))
}

func (janoschekModel) Init(y []float64, asym float64) []float64 {
	y0, _, n, k := riseStats(y, asym)
	lnRatio := k * n
	var cands [][]float64
	for _, delta := range []float64{0.6, 0.8, 1.0, 1.25, 1.6} {
		kappa := lnRatio / math.Pow(n, delta)
		cands = append(cands, []float64{asym, y0, kappa, delta})
	}
	return bestShape(y, janoschekModel{}, cands)
}

func (janoschekModel) Scales() []float64 { return []float64{0.1, 0.05, 0.02, 0.2} }

// --- Weibull: alpha - (alpha - beta)*exp(-(kappa*x)^delta) -----------

type weibullModel struct{}

func (weibullModel) Name() string   { return "weibull" }
func (weibullModel) NumParams() int { return 4 }

func (weibullModel) Eval(x float64, th []float64) float64 {
	kx := th[2] * x
	if kx < 0 {
		return math.NaN()
	}
	return th[0] - (th[0]-th[1])*math.Exp(-math.Pow(kx, th[3]))
}

func (weibullModel) Init(y []float64, asym float64) []float64 {
	y0, _, n, k := riseStats(y, asym)
	lnRatio := math.Max(k*n, 1e-6)
	var cands [][]float64
	for _, delta := range []float64{0.6, 0.8, 1.0, 1.25, 1.6} {
		kappa := math.Pow(lnRatio, 1/delta) / n
		cands = append(cands, []float64{asym, y0, kappa, delta})
	}
	return bestShape(y, weibullModel{}, cands)
}

func (weibullModel) Scales() []float64 { return []float64{0.1, 0.05, 0.02, 0.25} }

// --- ilog2: c - a / ln(x + 1) ----------------------------------------

type ilog2Model struct{}

func (ilog2Model) Name() string   { return "ilog2" }
func (ilog2Model) NumParams() int { return 2 }

func (ilog2Model) Eval(x float64, th []float64) float64 {
	return th[0] - th[1]/math.Log(x+1)
}

func (ilog2Model) Init(y []float64, asym float64) []float64 {
	_, yn, n, _ := riseStats(y, asym)
	// Pass through the endpoint: asym - a/ln(n+1) = yn.
	a := math.Max((asym-yn)*math.Log(n+1), 0.01)
	return []float64{asym, a}
}

func (ilog2Model) Scales() []float64 { return []float64{0.1, 0.1} }

// --- Hill3 (dose-response, zero background): theta*x^eta/(kappa^eta + x^eta)

type hill3Model struct{}

func (hill3Model) Name() string   { return "hill3" }
func (hill3Model) NumParams() int { return 3 }

func (hill3Model) Eval(x float64, th []float64) float64 {
	xe := math.Pow(x, th[1])
	ke := math.Pow(th[2], th[1])
	den := ke + xe
	if den == 0 {
		return math.NaN()
	}
	return th[0] * xe / den
}

func (hill3Model) Init(y []float64, asym float64) []float64 {
	_, yn, n, _ := riseStats(y, asym)
	ratio := math.Max(asym-yn, 0.005) / math.Max(yn, 0.02)
	var cands [][]float64
	for _, eta := range []float64{0.8, 1.3, 2.0} {
		kappa := n * math.Pow(ratio, 1/eta)
		cands = append(cands, []float64{asym, eta, kappa})
	}
	return bestShape(y, hill3Model{}, cands)
}

func (hill3Model) Scales() []float64 { return []float64{0.1, 0.2, 5} }

// modelNames renders the model list for error messages and docs.
func modelNames(ms []Model) string {
	s := ""
	for i, m := range ms {
		if i > 0 {
			s += ","
		}
		s += m.Name()
	}
	return s
}
