package curve_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/core"
	"github.com/hyperdrive-ml/hyperdrive/internal/curve"
)

// detObs is a fixed noisy rising prefix shared by the determinism
// tests (values, not generation, are what matters here).
func detObs() []float64 {
	return []float64{
		0.11, 0.19, 0.27, 0.33, 0.39, 0.43, 0.47, 0.50,
		0.53, 0.55, 0.58, 0.59, 0.61, 0.63, 0.64, 0.66,
		0.67, 0.68, 0.69, 0.70, 0.70, 0.71, 0.72, 0.72,
	}
}

func fitWithWorkers(t *testing.T, workers int) *curve.Posterior {
	t.Helper()
	cfg := curve.FastConfig()
	cfg.Workers = workers
	post, err := curve.MustPredictor(cfg).Fit(detObs(), 120, 77)
	if err != nil {
		t.Fatal(err)
	}
	return post
}

// samplesEqual asserts two posteriors hold byte-identical samples and
// agree exactly on the derived prediction surfaces.
func samplesEqual(t *testing.T, want, got *curve.Posterior, label string) {
	t.Helper()
	ws, gs := want.RawSamples(), got.RawSamples()
	if len(ws) != len(gs) {
		t.Fatalf("%s: sample counts differ: %d vs %d", label, len(ws), len(gs))
	}
	for i := range ws {
		if len(ws[i]) != len(gs[i]) {
			t.Fatalf("%s: sample %d dims differ", label, i)
		}
		for d := range ws[i] {
			if ws[i][d] != gs[i][d] {
				t.Fatalf("%s: sample %d dim %d differs: %v vs %v", label, i, d, ws[i][d], gs[i][d])
			}
		}
	}
	// Derived surfaces must agree exactly too (quantile cache and sweep).
	for _, m := range []int{1, 24, 60, 120} {
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 1} {
			a, b := want.Quantile(m, q), got.Quantile(m, q)
			if a != b {
				t.Fatalf("%s: Quantile(%d, %v) differs: %v vs %v", label, m, q, a, b)
			}
		}
	}
	pa := want.ProbSweep(1, 120, 0.75)
	pb := got.ProbSweep(1, 120, 0.75)
	for k := range pa {
		if pa[k] != pb[k] {
			t.Fatalf("%s: ProbSweep[%d] differs: %v vs %v", label, k, pa[k], pb[k])
		}
	}
}

// TestFitDeterministicAcrossWorkers is the tentpole's determinism
// guarantee: the half-ensemble sampler produces byte-identical
// posterior samples, acceptance rate, and downstream §3.1.1 estimates
// no matter how many workers fan out the logPosterior evaluations and
// no matter what GOMAXPROCS is, and repeated runs with one seed agree.
func TestFitDeterministicAcrossWorkers(t *testing.T) {
	serial := fitWithWorkers(t, 1)
	for _, workers := range []int{2, 3, 8} {
		par := fitWithWorkers(t, workers)
		if serial.AcceptRate() != par.AcceptRate() {
			t.Fatalf("workers=%d: accept rate %v != serial %v", workers, par.AcceptRate(), serial.AcceptRate())
		}
		samplesEqual(t, serial, par, "workers")

		// Downstream scheduling estimate: identical to the last bit.
		probS := func(from, to int) []float64 { return serial.ProbSweep(from, to, 0.75) }
		probP := func(from, to int) []float64 { return par.ProbSweep(from, to, 0.75) }
		a := core.EstimateERTBatch("j", probS, 24, 120, time.Minute, 10*time.Hour)
		b := core.EstimateERTBatch("j", probP, 24, 120, time.Minute, 10*time.Hour)
		if a != b {
			t.Fatalf("workers=%d: estimates differ: %+v vs %+v", workers, a, b)
		}
	}

	// Repeated run, same seed and workers: identical.
	again := fitWithWorkers(t, 8)
	samplesEqual(t, fitWithWorkers(t, 8), again, "repeat")
}

// TestFitDeterministicAcrossGOMAXPROCS pins the scheduler-independence
// claim directly: the same parallel fit on a single-P runtime and on
// the test default produce identical posteriors.
func TestFitDeterministicAcrossGOMAXPROCS(t *testing.T) {
	wide := fitWithWorkers(t, 4)
	prev := runtime.GOMAXPROCS(1)
	narrow := fitWithWorkers(t, 4)
	runtime.GOMAXPROCS(prev)
	if wide.AcceptRate() != narrow.AcceptRate() {
		t.Fatalf("accept rate differs across GOMAXPROCS: %v vs %v", wide.AcceptRate(), narrow.AcceptRate())
	}
	samplesEqual(t, wide, narrow, "gomaxprocs")
}

// TestThinningCapsKeptSamples pins the stride bugfix: a floor stride
// kept up to ~2x MaxSamples (total=3000, cap=2000 -> stride 1 ->
// 3000 kept); the ceiling stride keeps at most MaxSamples.
func TestThinningCapsKeptSamples(t *testing.T) {
	cfg := curve.Config{Walkers: 10, Iters: 600, BurnFrac: 0.5, MaxSamples: 2000, StretchA: 2, Seed: 1, Workers: 1}
	// total = (600 - 300) * 10 = 3000 kept candidates against a 2000 cap.
	post, err := curve.MustPredictor(cfg).Fit(detObs(), 120, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := post.NumSamples(); got > cfg.MaxSamples {
		t.Fatalf("NumSamples() = %d exceeds MaxSamples = %d", got, cfg.MaxSamples)
	}
	if got := post.NumSamples(); got < cfg.MaxSamples/2 {
		t.Fatalf("NumSamples() = %d suspiciously far below the %d cap", got, cfg.MaxSamples)
	}
}

// TestPredictConcurrentStampede exercises the single-flight Predict
// path under the race detector: concurrent callers on one epoch must
// agree and must not corrupt the cache.
func TestPredictConcurrentStampede(t *testing.T) {
	post := fitWithWorkers(t, 2)
	wantMean, wantStd := post.Predict(90)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				m, s := post.Predict(90)
				if m != wantMean || s != wantStd {
					t.Errorf("concurrent Predict diverged: (%v, %v) vs (%v, %v)", m, s, wantMean, wantStd)
					return
				}
				lo, hi := post.CredibleBand(90, 0.05, 0.95)
				if lo > hi {
					t.Errorf("credible band inverted: %v > %v", lo, hi)
					return
				}
			}
		}()
	}
	wg.Wait()
}
