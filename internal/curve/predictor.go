package curve

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
)

// MinObservations is the shortest curve prefix the predictor accepts:
// with fewer points the posterior is vacuous.
const MinObservations = 4

// ErrTooFewObservations is returned by Fit for over-short prefixes.
var ErrTooFewObservations = errors.New("curve: need more observations to fit")

// Config sets the MCMC budget.
type Config struct {
	// Walkers is the ensemble size (paper §5.2: 100).
	Walkers int
	// Iters is the number of ensemble iterations (paper §5.2: 700
	// after their 2500 -> 700 reduction).
	Iters int
	// BurnFrac is the fraction of iterations discarded as burn-in.
	BurnFrac float64
	// MaxSamples caps the kept posterior samples (thinned uniformly);
	// bounds downstream prediction cost.
	MaxSamples int
	// StretchA is the stretch-move parameter a (conventionally 2).
	StretchA float64
	// Seed makes the sampler deterministic.
	Seed int64
}

// PaperConfig returns the configuration the paper runs in production:
// 100 walkers x 700 iterations = 70,000 samples (§5.2).
func PaperConfig() Config {
	return Config{Walkers: 100, Iters: 700, BurnFrac: 0.5, MaxSamples: 2000, StretchA: 2, Seed: 1}
}

// OriginalConfig returns the unreduced configuration of the reference
// implementation (100 x 2500), used by the MCMC-budget ablation.
func OriginalConfig() Config {
	c := PaperConfig()
	c.Iters = 2500
	return c
}

// FastConfig returns a reduced budget suitable for simulation sweeps
// and unit tests, trading posterior resolution for speed the same way
// §5.2 trades 2500 iterations for 700.
func FastConfig() Config {
	return Config{Walkers: 30, Iters: 120, BurnFrac: 0.5, MaxSamples: 600, StretchA: 2, Seed: 1}
}

func (c Config) validate() error {
	if c.Walkers < 4 {
		return fmt.Errorf("curve: need >= 4 walkers, got %d", c.Walkers)
	}
	if c.Iters < 2 {
		return fmt.Errorf("curve: need >= 2 iterations, got %d", c.Iters)
	}
	if c.BurnFrac < 0 || c.BurnFrac >= 1 {
		return fmt.Errorf("curve: burn fraction %v out of [0, 1)", c.BurnFrac)
	}
	if c.StretchA <= 1 {
		return fmt.Errorf("curve: stretch parameter must exceed 1, got %v", c.StretchA)
	}
	return nil
}

// Predictor fits the ensemble learning-curve model to curve prefixes.
// It is safe for concurrent use; each Fit runs an independent chain.
type Predictor struct {
	cfg    Config
	models []Model

	// Observability handles (nil-safe no-ops when uninstrumented).
	fitDur     *obs.Histogram
	fitErrors  *obs.Counter
	acceptRate *obs.Gauge
}

// NewPredictor builds a predictor over the standard eleven families.
func NewPredictor(cfg Config) (*Predictor, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Predictor{cfg: cfg, models: Models()}, nil
}

// MustPredictor is NewPredictor for known-good configs.
func MustPredictor(cfg Config) *Predictor {
	p, err := NewPredictor(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// ModelNames lists the families in the ensemble.
func (p *Predictor) ModelNames() string { return modelNames(p.models) }

// Instrument binds the predictor's fit telemetry (wall-clock fit
// duration, error count, last acceptance rate) to a registry. Call
// once at setup, before any concurrent Fit.
func (p *Predictor) Instrument(r *obs.Registry) {
	p.fitDur = r.Histogram(obs.MCMCFitDurationSeconds)
	p.fitErrors = r.Counter(obs.MCMCFitErrorsTotal)
	p.acceptRate = r.Gauge(obs.MCMCAcceptRate)
}

// Fit samples the posterior over curve parameters given the observed
// prefix y (y[i] is the metric after epoch i+1, on a [0, 1] scale) and
// the horizon xlim (the largest epoch predictions will be requested
// for; typically the job's max epoch). The seed is mixed into the
// sampler so per-job chains differ deterministically.
func (p *Predictor) Fit(y []float64, xlim int, seed int64) (*Posterior, error) {
	// Real wall-clock time is the quantity being exported here
	// (hyperdrive_mcmc_fit_duration_seconds, the §5.2 prediction-cost
	// telemetry): operators tune OverlapPrediction against measured fit
	// latency. It feeds only the histogram, never a scheduling decision,
	// so fit results — and replays — are unaffected by it.
	t0 := time.Now() //hdlint:ignore detclock measured wall-clock fit latency is the telemetry itself; see above
	post, err := p.fit(y, xlim, seed)
	p.fitDur.Observe(time.Since(t0).Seconds()) //hdlint:ignore detclock measured wall-clock fit latency is the telemetry itself; see above
	if err != nil {
		p.fitErrors.Inc()
	} else {
		p.acceptRate.Set(post.acceptRate)
	}
	return post, err
}

// fit is the uninstrumented fit body.
func (p *Predictor) fit(y []float64, xlim int, seed int64) (*Posterior, error) {
	if len(y) < MinObservations {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewObservations, len(y), MinObservations)
	}
	if xlim <= len(y) {
		xlim = len(y) + 1
	}
	for i, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("curve: observation %d is not finite", i)
		}
	}

	e := newEnsemble(p.models, xlim)
	rng := rand.New(rand.NewSource(p.cfg.Seed ^ seed ^ int64(len(y))*0x9e37))

	// Initialize each walker from its own asymptote hypothesis spread
	// over [slightly-below-current, 1.02]: short prefixes genuinely do
	// not constrain where the curve tops out, and the ensemble must
	// represent that uncertainty for P(m, y) to be honest.
	yn := y[len(y)-1]
	defaultInit := e.initVector(y, DefaultAsym(y))
	scales := e.scales()
	walkers := make([][]float64, p.cfg.Walkers)
	logps := make([]float64, p.cfg.Walkers)
	for i := range walkers {
		w := make([]float64, e.dim)
		for attempt := 0; ; attempt++ {
			lo := yn - 0.05
			if lo < 0.02 {
				lo = 0.02
			}
			asym := lo + rng.Float64()*(1.02-lo)
			init := e.initVector(y, asym)
			jitter := 0.05 + 0.10*float64(attempt%5)
			for d := range w {
				w[d] = init[d] + jitter*scales[d]*rng.NormFloat64()
				// Weights must stay non-negative.
				if d < len(p.models) && w[d] < 0 {
					w[d] = -w[d]
				}
			}
			lp := e.logPosterior(y, w)
			if !math.IsInf(lp, -1) {
				logps[i] = lp
				break
			}
			if attempt > 200 {
				// Fall back to the exact heuristic vector.
				copy(w, defaultInit)
				logps[i] = e.logPosterior(y, w)
				break
			}
		}
		walkers[i] = w
	}

	burn := int(float64(p.cfg.Iters) * p.cfg.BurnFrac)
	total := (p.cfg.Iters - burn) * p.cfg.Walkers
	stride := 1
	if p.cfg.MaxSamples > 0 && total > p.cfg.MaxSamples {
		stride = total / p.cfg.MaxSamples
	}

	post := &Posterior{ens: e, horizon: xlim}
	count := 0
	s := &sampler{logProb: func(th []float64) float64 { return e.logPosterior(y, th) }, dim: e.dim, a: p.cfg.StretchA, rng: rng}
	accepted := s.run(walkers, logps, p.cfg.Iters, burn, func(th []float64, lp float64) {
		if count%stride == 0 {
			cp := make([]float64, len(th))
			copy(cp, th)
			post.samples = append(post.samples, cp)
		}
		count++
	})
	post.acceptRate = float64(accepted) / float64(p.cfg.Iters*p.cfg.Walkers)
	if len(post.samples) == 0 {
		return nil, errors.New("curve: sampler kept no samples")
	}
	return post, nil
}

// Posterior is a sampled posterior over learning curves.
type Posterior struct {
	ens        *ensemble
	samples    [][]float64
	horizon    int
	acceptRate float64

	mu    sync.Mutex
	cache map[int][2]float64 // epoch -> (mean, std) of the mean curve
}

// NumSamples reports the kept posterior sample count.
func (p *Posterior) NumSamples() int { return len(p.samples) }

// AcceptRate reports the MCMC acceptance rate (diagnostic).
func (p *Posterior) AcceptRate() float64 { return p.acceptRate }

// Horizon returns the xlim the posterior was fitted for.
func (p *Posterior) Horizon() int { return p.horizon }

// ProbAtLeast returns P(y(m) >= y | observations): the posterior
// probability that the metric is at least y at epoch m, marginalizing
// over curves and observation noise.
func (p *Posterior) ProbAtLeast(m int, y float64) float64 {
	if m < 1 {
		m = 1
	}
	x := float64(m)
	var sum float64
	n := 0
	for _, th := range p.samples {
		pred := p.ens.eval(x, th)
		if math.IsNaN(pred) {
			continue
		}
		sigma := p.ens.sigma(th)
		sum += gaussCDF((pred - y) / sigma)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Predict returns the posterior mean and standard deviation of the
// mean curve at epoch m. The standard deviation is the paper's
// "prediction accuracy" PA (§3.1.1): the std across MCMC samples.
func (p *Posterior) Predict(m int) (mean, std float64) {
	if m < 1 {
		m = 1
	}
	p.mu.Lock()
	if p.cache == nil {
		p.cache = make(map[int][2]float64)
	}
	if v, ok := p.cache[m]; ok {
		p.mu.Unlock()
		return v[0], v[1]
	}
	p.mu.Unlock()

	x := float64(m)
	var sum, sumsq float64
	n := 0
	for _, th := range p.samples {
		pred := p.ens.eval(x, th)
		if math.IsNaN(pred) {
			continue
		}
		sum += pred
		sumsq += pred * pred
		n++
	}
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	mean = sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	std = math.Sqrt(variance)
	p.mu.Lock()
	p.cache[m] = [2]float64{mean, std}
	p.mu.Unlock()
	return mean, std
}

// Band returns the predicted mean curve and +/- one posterior std band
// for epochs from (1-based) to (inclusive); used to draw Figures 2c
// and 3.
func (p *Posterior) Band(from, to int) (means, stds []float64) {
	if from < 1 {
		from = 1
	}
	if to < from {
		to = from
	}
	means = make([]float64, 0, to-from+1)
	stds = make([]float64, 0, to-from+1)
	for m := from; m <= to; m++ {
		mu, sd := p.Predict(m)
		means = append(means, mu)
		stds = append(stds, sd)
	}
	return means, stds
}

// gaussCDF is the standard normal CDF.
func gaussCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// Quantile returns the q-quantile (0..1) of the posterior mean-curve
// distribution at epoch m — the credible bands of Figures 2c and 3.
func (p *Posterior) Quantile(m int, q float64) float64 {
	if m < 1 {
		m = 1
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	x := float64(m)
	vals := make([]float64, 0, len(p.samples))
	for _, th := range p.samples {
		v := p.ens.eval(x, th)
		if !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return math.NaN()
	}
	sort.Float64s(vals)
	idx := q * float64(len(vals)-1)
	lo := int(idx)
	if lo >= len(vals)-1 {
		return vals[len(vals)-1]
	}
	frac := idx - float64(lo)
	return vals[lo]*(1-frac) + vals[lo+1]*frac
}

// CredibleBand returns the [lo, hi] quantile band at epoch m, e.g.
// (0.05, 0.95) for a 90% band.
func (p *Posterior) CredibleBand(m int, lo, hi float64) (low, high float64) {
	return p.Quantile(m, lo), p.Quantile(m, hi)
}
