package curve

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/obs"
)

// MinObservations is the shortest curve prefix the predictor accepts:
// with fewer points the posterior is vacuous.
const MinObservations = 4

// ErrTooFewObservations is returned by Fit for over-short prefixes.
var ErrTooFewObservations = errors.New("curve: need more observations to fit")

// Config sets the MCMC budget.
type Config struct {
	// Walkers is the ensemble size (paper §5.2: 100).
	Walkers int
	// Iters is the number of ensemble iterations (paper §5.2: 700
	// after their 2500 -> 700 reduction).
	Iters int
	// BurnFrac is the fraction of iterations discarded as burn-in.
	BurnFrac float64
	// MaxSamples caps the kept posterior samples (thinned uniformly);
	// bounds downstream prediction cost.
	MaxSamples int
	// StretchA is the stretch-move parameter a (conventionally 2).
	StretchA float64
	// Seed makes the sampler deterministic.
	Seed int64
	// Workers sizes the worker pool the sampler fans logPosterior
	// evaluations across; 0 uses GOMAXPROCS, 1 runs fully serial.
	// The posterior is bit-identical for every value: parallelism
	// changes wall-clock time, never results.
	Workers int
}

// PaperConfig returns the configuration the paper runs in production:
// 100 walkers x 700 iterations = 70,000 samples (§5.2).
func PaperConfig() Config {
	return Config{Walkers: 100, Iters: 700, BurnFrac: 0.5, MaxSamples: 2000, StretchA: 2, Seed: 1}
}

// OriginalConfig returns the unreduced configuration of the reference
// implementation (100 x 2500), used by the MCMC-budget ablation.
func OriginalConfig() Config {
	c := PaperConfig()
	c.Iters = 2500
	return c
}

// FastConfig returns a reduced budget suitable for simulation sweeps
// and unit tests, trading posterior resolution for speed the same way
// §5.2 trades 2500 iterations for 700.
func FastConfig() Config {
	return Config{Walkers: 30, Iters: 120, BurnFrac: 0.5, MaxSamples: 600, StretchA: 2, Seed: 1}
}

func (c Config) validate() error {
	if c.Walkers < 4 {
		return fmt.Errorf("curve: need >= 4 walkers, got %d", c.Walkers)
	}
	if c.Iters < 2 {
		return fmt.Errorf("curve: need >= 2 iterations, got %d", c.Iters)
	}
	if c.BurnFrac < 0 || c.BurnFrac >= 1 {
		return fmt.Errorf("curve: burn fraction %v out of [0, 1)", c.BurnFrac)
	}
	if c.StretchA <= 1 {
		return fmt.Errorf("curve: stretch parameter must exceed 1, got %v", c.StretchA)
	}
	if c.Workers < 0 {
		return fmt.Errorf("curve: negative worker count %d", c.Workers)
	}
	return nil
}

// workers resolves the effective sampler worker-pool size.
func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Predictor fits the ensemble learning-curve model to curve prefixes.
// It is safe for concurrent use; each Fit runs an independent chain.
type Predictor struct {
	cfg    Config
	models []Model

	// Observability handles (nil-safe no-ops when uninstrumented).
	fitDur     *obs.Histogram
	fitErrors  *obs.Counter
	acceptRate *obs.Gauge
	workersG   *obs.Gauge
}

// NewPredictor builds a predictor over the standard eleven families.
func NewPredictor(cfg Config) (*Predictor, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Predictor{cfg: cfg, models: Models()}, nil
}

// MustPredictor is NewPredictor for known-good configs.
func MustPredictor(cfg Config) *Predictor {
	p, err := NewPredictor(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// ModelNames lists the families in the ensemble.
func (p *Predictor) ModelNames() string { return modelNames(p.models) }

// Instrument binds the predictor's fit telemetry (wall-clock fit
// duration, error count, last acceptance rate) to a registry. Call
// once at setup, before any concurrent Fit.
func (p *Predictor) Instrument(r *obs.Registry) {
	p.fitDur = r.Histogram(obs.MCMCFitDurationSeconds)
	p.fitErrors = r.Counter(obs.MCMCFitErrorsTotal)
	p.acceptRate = r.Gauge(obs.MCMCAcceptRate)
	p.workersG = r.Gauge(obs.MCMCParallelWorkers)
	p.workersG.Set(float64(p.cfg.workers()))
}

// Fit samples the posterior over curve parameters given the observed
// prefix y (y[i] is the metric after epoch i+1, on a [0, 1] scale) and
// the horizon xlim (the largest epoch predictions will be requested
// for; typically the job's max epoch). The seed is mixed into the
// sampler so per-job chains differ deterministically.
func (p *Predictor) Fit(y []float64, xlim int, seed int64) (*Posterior, error) {
	// Real wall-clock time is the quantity being exported here
	// (hyperdrive_mcmc_fit_duration_seconds, the §5.2 prediction-cost
	// telemetry): operators tune OverlapPrediction against measured fit
	// latency. It feeds only the histogram, never a scheduling decision,
	// so fit results — and replays — are unaffected by it.
	t0 := time.Now() //hdlint:ignore detclock measured wall-clock fit latency is the telemetry itself; see above
	post, err := p.fit(y, xlim, seed)
	p.fitDur.Observe(time.Since(t0).Seconds()) //hdlint:ignore detclock measured wall-clock fit latency is the telemetry itself; see above
	if err != nil {
		p.fitErrors.Inc()
	} else {
		p.acceptRate.Set(post.acceptRate)
	}
	return post, err
}

// fit is the uninstrumented fit body.
func (p *Predictor) fit(y []float64, xlim int, seed int64) (*Posterior, error) {
	if len(y) < MinObservations {
		return nil, fmt.Errorf("%w: have %d, need %d", ErrTooFewObservations, len(y), MinObservations)
	}
	if xlim <= len(y) {
		xlim = len(y) + 1
	}
	for i, v := range y {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("curve: observation %d is not finite", i)
		}
	}

	e := newEnsemble(p.models, xlim)
	sampleSeed := p.cfg.Seed ^ seed ^ int64(len(y))*0x9e37
	rng := rand.New(rand.NewSource(sampleSeed))

	// Initialize each walker from its own asymptote hypothesis spread
	// over [slightly-below-current, 1.02]: short prefixes genuinely do
	// not constrain where the curve tops out, and the ensemble must
	// represent that uncertainty for P(m, y) to be honest.
	yn := y[len(y)-1]
	defaultInit := e.initVector(y, DefaultAsym(y))
	scales := e.scales()
	walkers := make([][]float64, p.cfg.Walkers)
	logps := make([]float64, p.cfg.Walkers)
	for i := range walkers {
		w := make([]float64, e.dim)
		for attempt := 0; ; attempt++ {
			lo := yn - 0.05
			if lo < 0.02 {
				lo = 0.02
			}
			asym := lo + rng.Float64()*(1.02-lo)
			init := e.initVector(y, asym)
			jitter := 0.05 + 0.10*float64(attempt%5)
			for d := range w {
				w[d] = init[d] + jitter*scales[d]*rng.NormFloat64()
				// Weights must stay non-negative.
				if d < len(p.models) && w[d] < 0 {
					w[d] = -w[d]
				}
			}
			lp := e.logPosterior(y, w)
			if !math.IsInf(lp, -1) {
				logps[i] = lp
				break
			}
			if attempt > 200 {
				// Fall back to the exact heuristic vector.
				copy(w, defaultInit)
				logps[i] = e.logPosterior(y, w)
				break
			}
		}
		walkers[i] = w
	}

	burn := int(float64(p.cfg.Iters) * p.cfg.BurnFrac)
	total := (p.cfg.Iters - burn) * p.cfg.Walkers
	stride := 1
	if p.cfg.MaxSamples > 0 && total > p.cfg.MaxSamples {
		// Ceiling division: a floor stride keeps up to ~2x MaxSamples
		// (e.g. total=2999, cap=2000 -> stride 1 -> 2999 kept), which
		// inflates every downstream prediction pass.
		stride = (total + p.cfg.MaxSamples - 1) / p.cfg.MaxSamples
	}

	post := &Posterior{ens: e, horizon: xlim, workers: p.cfg.workers()}
	count := 0
	s := &sampler{logProb: func(th []float64) float64 { return e.logPosterior(y, th) }, dim: e.dim, a: p.cfg.StretchA, workers: p.cfg.workers()}
	accepted := s.run(walkers, logps, p.cfg.Iters, burn, sampleSeed, func(th []float64, lp float64) {
		if count%stride == 0 {
			cp := make([]float64, len(th))
			copy(cp, th)
			post.samples = append(post.samples, cp)
		}
		count++
	})
	post.acceptRate = float64(accepted) / float64(p.cfg.Iters*p.cfg.Walkers)
	if len(post.samples) == 0 {
		return nil, errors.New("curve: sampler kept no samples")
	}
	return post, nil
}

// Posterior is a sampled posterior over learning curves.
type Posterior struct {
	ens        *ensemble
	samples    [][]float64
	horizon    int
	acceptRate float64
	workers    int // sweep fan-out width, inherited from Config

	mu     sync.Mutex
	cache  map[int][2]float64 // epoch -> (mean, std) of the mean curve
	sorted map[int][]float64  // epoch -> ascending finite sample values
}

// NumSamples reports the kept posterior sample count.
func (p *Posterior) NumSamples() int { return len(p.samples) }

// AcceptRate reports the MCMC acceptance rate (diagnostic).
func (p *Posterior) AcceptRate() float64 { return p.acceptRate }

// Horizon returns the xlim the posterior was fitted for.
func (p *Posterior) Horizon() int { return p.horizon }

// ProbAtLeast returns P(y(m) >= y | observations): the posterior
// probability that the metric is at least y at epoch m, marginalizing
// over curves and observation noise. It is a width-1 ProbSweep, so the
// scalar and batch paths share one summation tree and agree bit for
// bit.
func (p *Posterior) ProbAtLeast(m int, y float64) float64 {
	return p.ProbSweep(m, m, y)[0]
}

// sweepBlock is the fixed sample-block size of the sweep summation
// tree: contributions are accumulated serially within each block and
// the block partials combined in block order. The tree shape is part
// of the result — independent of worker count and GOMAXPROCS — so
// sweeps stay bit-identical however they are scheduled.
const sweepBlock = 256

// sweepParallelWork is the epochs x samples product below which a
// sweep runs on the calling goroutine: fanning a pool out over less
// work than this costs more than it saves.
const sweepParallelWork = 1 << 14

// ProbSweep returns P(y(m) >= target | observations) for every epoch
// m in [from, to] inclusive (element k corresponds to m = from+k) in
// one sample-major pass: each posterior sample's curve is evaluated
// once per epoch and its noise scale once in total, instead of once
// per (epoch, query) as repeated ProbAtLeast calls would, and sample
// blocks fan out across the fit's worker pool when the range is wide
// enough to pay for it. Element k is bit-identical to
// ProbAtLeast(from+k, target) — the scalar path is a width-1 sweep
// over the same fixed summation tree.
func (p *Posterior) ProbSweep(from, to int, target float64) []float64 {
	if to < from {
		to = from
	}
	width := to - from + 1
	n := len(p.samples)
	nb := (n + sweepBlock - 1) / sweepBlock
	sums := make([][]float64, nb)
	counts := make([][]int, nb)
	p.forBlocks(nb, width*n, func(b int) {
		lo, hi := b*sweepBlock, (b+1)*sweepBlock
		if hi > n {
			hi = n
		}
		bs := make([]float64, width)
		bc := make([]int, width)
		for _, th := range p.samples[lo:hi] {
			sigma := p.ens.sigma(th)
			for k := 0; k < width; k++ {
				m := from + k
				if m < 1 {
					m = 1 // same epoch clamp as the scalar path
				}
				pred := p.ens.eval(float64(m), th)
				if math.IsNaN(pred) {
					continue
				}
				bs[k] += gaussCDF((pred - target) / sigma)
				bc[k]++
			}
		}
		sums[b], counts[b] = bs, bc
	})
	out := make([]float64, width)
	outc := make([]int, width)
	for b := 0; b < nb; b++ {
		for k := 0; k < width; k++ {
			out[k] += sums[b][k]
			outc[k] += counts[b][k]
		}
	}
	for k := range out {
		if outc[k] == 0 {
			out[k] = 0
			continue
		}
		out[k] /= float64(outc[k])
	}
	return out
}

// forBlocks invokes fn(0 .. nb-1), striding the blocks across the
// worker pool when the total work justifies goroutines. Blocks write
// disjoint slots, so scheduling never affects results.
func (p *Posterior) forBlocks(nb, work int, fn func(b int)) {
	workers := p.workers
	if workers > nb {
		workers = nb
	}
	if workers <= 1 || work < sweepParallelWork {
		for b := 0; b < nb; b++ {
			fn(b)
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for b := w; b < nb; b += workers {
				fn(b)
			}
		}(w)
	}
	wg.Wait()
}

// Predict returns the posterior mean and standard deviation of the
// mean curve at epoch m. The standard deviation is the paper's
// "prediction accuracy" PA (§3.1.1): the std across MCMC samples.
//
// The O(samples) computation runs while the posterior mutex is held,
// which doubles as a single-flight: concurrent boundary estimates for
// the same epoch wait for the first computation instead of duplicating
// it (the previous check-unlock-recompute-lock pattern stampeded).
func (p *Posterior) Predict(m int) (mean, std float64) {
	if m < 1 {
		m = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.predictLocked(m)
}

// predictLocked computes (or returns the cached) mean/std at epoch m.
// Callers hold p.mu; m is already clamped to >= 1.
func (p *Posterior) predictLocked(m int) (mean, std float64) {
	if v, ok := p.cache[m]; ok {
		return v[0], v[1]
	}
	x := float64(m)
	var sum, sumsq float64
	n := 0
	for _, th := range p.samples {
		pred := p.ens.eval(x, th)
		if math.IsNaN(pred) {
			continue
		}
		sum += pred
		sumsq += pred * pred
		n++
	}
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	mean = sum / float64(n)
	variance := sumsq/float64(n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	std = math.Sqrt(variance)
	if p.cache == nil {
		p.cache = make(map[int][2]float64)
	}
	p.cache[m] = [2]float64{mean, std}
	return mean, std
}

// PredictRange returns Predict(m) for every m in [from, to] inclusive
// under a single lock hold, filling the shared (mean, std) cache as it
// goes: one mutex round trip and one cache pass per epoch range
// instead of one per epoch.
func (p *Posterior) PredictRange(from, to int) (means, stds []float64) {
	if from < 1 {
		from = 1
	}
	if to < from {
		to = from
	}
	means = make([]float64, 0, to-from+1)
	stds = make([]float64, 0, to-from+1)
	p.mu.Lock()
	defer p.mu.Unlock()
	for m := from; m <= to; m++ {
		mu, sd := p.predictLocked(m)
		means = append(means, mu)
		stds = append(stds, sd)
	}
	return means, stds
}

// Band returns the predicted mean curve and +/- one posterior std band
// for epochs from (1-based) to (inclusive); used to draw Figures 2c
// and 3.
func (p *Posterior) Band(from, to int) (means, stds []float64) {
	return p.PredictRange(from, to)
}

// gaussCDF is the standard normal CDF.
func gaussCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// Quantile returns the q-quantile (0..1) of the posterior mean-curve
// distribution at epoch m — the credible bands of Figures 2c and 3.
// The per-epoch sorted sample values are cached, so repeated quantile
// queries at one epoch (CredibleBand issues two) evaluate and sort the
// samples once instead of per call.
func (p *Posterior) Quantile(m int, q float64) float64 {
	if m < 1 {
		m = 1
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	p.mu.Lock()
	vals := p.sortedLocked(m)
	p.mu.Unlock()
	if len(vals) == 0 {
		return math.NaN()
	}
	idx := q * float64(len(vals)-1)
	lo := int(idx)
	if lo >= len(vals)-1 {
		return vals[len(vals)-1]
	}
	frac := idx - float64(lo)
	return vals[lo]*(1-frac) + vals[lo+1]*frac
}

// sortedLocked returns the ascending finite sample values at epoch m,
// computing and caching them on first use. Callers hold p.mu; the
// returned slice is never mutated after insertion, so reading it after
// the unlock is safe.
func (p *Posterior) sortedLocked(m int) []float64 {
	if v, ok := p.sorted[m]; ok {
		return v
	}
	x := float64(m)
	vals := make([]float64, 0, len(p.samples))
	for _, th := range p.samples {
		v := p.ens.eval(x, th)
		if !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	sort.Float64s(vals)
	if p.sorted == nil {
		p.sorted = make(map[int][]float64)
	}
	p.sorted[m] = vals
	return vals
}

// CredibleBand returns the [lo, hi] quantile band at epoch m, e.g.
// (0.05, 0.95) for a 90% band.
func (p *Posterior) CredibleBand(m int, lo, hi float64) (low, high float64) {
	return p.Quantile(m, lo), p.Quantile(m, hi)
}
