package curve

import (
	"math"
	"math/rand"
)

// sampler runs Goodman & Weare's affine-invariant ensemble MCMC
// ("stretch move", the algorithm behind emcee, which the reference
// pylearningcurvepredictor uses). Each walker is updated by stretching
// toward a randomly chosen complementary walker:
//
//	Y = X_j + z (X_i - X_j),  z ~ g(z) ∝ 1/sqrt(z) on [1/a, a]
//
// accepted with probability min(1, z^(d-1) p(Y)/p(X_i)).
type sampler struct {
	logProb func([]float64) float64
	dim     int
	a       float64 // stretch parameter, conventionally 2
	rng     *rand.Rand
}

// drawZ samples from g(z) ∝ 1/sqrt(z) on [1/a, a] via inverse CDF:
// z = ((a-1)u + 1)^2 / a.
func (s *sampler) drawZ() float64 {
	u := s.rng.Float64()
	v := (math.Sqrt(s.a)-1/math.Sqrt(s.a))*u + 1/math.Sqrt(s.a)
	return v * v
}

// run advances an ensemble of walkers for iters steps, invoking keep
// with every walker position after each step past burn. Positions
// passed to keep must not be retained without copying; run reuses
// buffers. It returns the number of accepted moves (for diagnostics).
func (s *sampler) run(walkers [][]float64, logps []float64, iters, burn int, keep func(th []float64, logp float64)) int {
	n := len(walkers)
	accepted := 0
	proposal := make([]float64, s.dim)
	for it := 0; it < iters; it++ {
		for i := 0; i < n; i++ {
			j := s.rng.Intn(n - 1)
			if j >= i {
				j++
			}
			z := s.drawZ()
			xi, xj := walkers[i], walkers[j]
			for d := 0; d < s.dim; d++ {
				proposal[d] = xj[d] + z*(xi[d]-xj[d])
			}
			lp := s.logProb(proposal)
			logAccept := float64(s.dim-1)*math.Log(z) + lp - logps[i]
			if lp > math.Inf(-1) && (logAccept >= 0 || math.Log(s.rng.Float64()+1e-300) < logAccept) {
				copy(xi, proposal)
				logps[i] = lp
				accepted++
			}
			if it >= burn {
				keep(xi, logps[i])
			}
		}
	}
	return accepted
}
