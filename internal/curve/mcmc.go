package curve

import (
	"math"
	"math/rand"
	"sync"
)

// sampler runs Goodman & Weare's affine-invariant ensemble MCMC
// ("stretch move", the algorithm behind emcee, which the reference
// pylearningcurvepredictor uses). Each walker is updated by stretching
// toward a randomly chosen complementary walker:
//
//	Y = X_j + z (X_i - X_j),  z ~ g(z) ∝ 1/sqrt(z) on [1/a, a]
//
// accepted with probability min(1, z^(d-1) p(Y)/p(X_i)).
//
// The ensemble is parallelized with the red/black half-ensemble scheme
// of Foreman-Mackey et al. (the emcee §3 parallelization): walkers are
// split into two fixed halves, and each half is updated as a block
// with every proposal stretching toward a walker of the *frozen*
// complementary half. Within a half, walker i mutates only its own
// state and draws every random number (complement index, stretch z,
// accept u) from its own seeded stream, so the accept/reject sequence
// depends only on (walker index, iteration) — never on goroutine
// scheduling. Posterior draws are therefore bit-identical for any
// worker count and any GOMAXPROCS.
type sampler struct {
	logProb func([]float64) float64
	dim     int
	a       float64 // stretch parameter, conventionally 2
	workers int     // parallel evaluators per half; <= 1 runs serial
}

// walker is the per-chain state: position, cached log-probability, a
// private RNG stream, and a reusable proposal buffer.
type walker struct {
	pos      []float64
	logp     float64
	rng      *rand.Rand
	proposal []float64
	accepted int
}

// walkerSeed derives walker i's RNG stream from the fit seed by
// splitmix64-style mixing, so streams are decorrelated from each other
// and from the initialization RNG.
func walkerSeed(seed int64, i int) int64 {
	z := uint64(seed) ^ 0x9e3779b97f4a7c15
	z += uint64(i+1) * 0xbf58476d1ce4e5b9
	z ^= z >> 30
	z *= 0x94d049bb133111eb
	z ^= z >> 27
	return int64(z)
}

// drawZ samples from g(z) ∝ 1/sqrt(z) on [1/a, a] via inverse CDF:
// z = ((a-1)u + 1)^2 / a.
func drawZ(a float64, rng *rand.Rand) float64 {
	u := rng.Float64()
	v := (math.Sqrt(a)-1/math.Sqrt(a))*u + 1/math.Sqrt(a)
	return v * v
}

// run advances an ensemble of walkers for iters steps, invoking keep
// with every walker position (in walker order) after each step past
// burn. Positions passed to keep must not be retained without copying;
// run reuses buffers. seed roots the per-walker RNG streams. It
// returns the number of accepted moves (for diagnostics).
func (s *sampler) run(positions [][]float64, logps []float64, iters, burn int, seed int64, keep func(th []float64, logp float64)) int {
	n := len(positions)
	ws := make([]walker, n)
	for i := range ws {
		ws[i] = walker{
			pos:      positions[i],
			logp:     logps[i],
			rng:      rand.New(rand.NewSource(walkerSeed(seed, i))),
			proposal: make([]float64, s.dim),
		}
	}
	half := n / 2
	for it := 0; it < iters; it++ {
		// First half proposes against the frozen second half, then the
		// second half against the just-updated (now frozen) first half.
		s.updateHalf(ws, 0, half, half, n)
		s.updateHalf(ws, half, n, 0, half)
		if it >= burn {
			for i := range ws {
				keep(ws[i].pos, ws[i].logp)
			}
		}
	}
	accepted := 0
	for i := range ws {
		accepted += ws[i].accepted
	}
	return accepted
}

// updateHalf steps every walker in [lo, hi) against the frozen
// complementary block [clo, chi), fanning the independent walker
// updates (and their logProb evaluations) across the worker pool.
// Each walker touches only its own state, so the fan-out is race-free
// and, because all randomness is per-walker, order-independent.
func (s *sampler) updateHalf(ws []walker, lo, hi, clo, chi int) {
	count := hi - lo
	workers := s.workers
	if workers > count {
		workers = count
	}
	if workers <= 1 {
		for i := lo; i < hi; i++ {
			s.step(ws, i, clo, chi)
		}
		return
	}
	var wg sync.WaitGroup
	chunk := (count + workers - 1) / workers
	for start := lo; start < hi; start += chunk {
		end := start + chunk
		if end > hi {
			end = hi
		}
		wg.Add(1)
		go func(start, end int) {
			defer wg.Done()
			for i := start; i < end; i++ {
				s.step(ws, i, clo, chi)
			}
		}(start, end)
	}
	wg.Wait()
}

// step advances one walker: draw a complement from the frozen block,
// stretch, evaluate, accept/reject. All three draws come from the
// walker's own stream in a fixed order, so the outcome is a pure
// function of (walker state, iteration).
func (s *sampler) step(ws []walker, i, clo, chi int) {
	w := &ws[i]
	j := clo + w.rng.Intn(chi-clo)
	z := drawZ(s.a, w.rng)
	u := w.rng.Float64()
	xj := ws[j].pos
	for d := 0; d < s.dim; d++ {
		w.proposal[d] = xj[d] + z*(w.pos[d]-xj[d])
	}
	lp := s.logProb(w.proposal)
	logAccept := float64(s.dim-1)*math.Log(z) + lp - w.logp
	if lp > math.Inf(-1) && (logAccept >= 0 || math.Log(u+1e-300) < logAccept) {
		w.pos, w.proposal = w.proposal, w.pos
		w.logp = lp
		w.accepted++
	}
}
