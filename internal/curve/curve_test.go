package curve

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestModelsCount(t *testing.T) {
	if got := len(Models()); got != 11 {
		t.Fatalf("Models() returned %d families, want 11 (paper §3.1.1)", got)
	}
	seen := make(map[string]bool)
	for _, m := range Models() {
		if seen[m.Name()] {
			t.Fatalf("duplicate model name %q", m.Name())
		}
		seen[m.Name()] = true
		if m.NumParams() != len(m.Scales()) {
			t.Fatalf("%s: NumParams %d != len(Scales) %d", m.Name(), m.NumParams(), len(m.Scales()))
		}
	}
}

// TestModelInitFinite checks every family's heuristic initialization
// produces finite, roughly on-scale values over the whole horizon.
func TestModelInitFinite(t *testing.T) {
	y := []float64{0.12, 0.2, 0.3, 0.35, 0.42, 0.45, 0.5, 0.52}
	for _, m := range Models() {
		th := m.Init(y, DefaultAsym(y))
		if len(th) != m.NumParams() {
			t.Fatalf("%s: Init returned %d params, want %d", m.Name(), len(th), m.NumParams())
		}
		for x := 1; x <= 200; x++ {
			v := m.Eval(float64(x), th)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%s: Eval(%d) not finite with Init params", m.Name(), x)
			}
			if v < -2 || v > 3 {
				t.Fatalf("%s: Eval(%d) = %v wildly off metric scale", m.Name(), x, v)
			}
		}
	}
}

func TestModelInvalidParamsReturnNaN(t *testing.T) {
	if v := (pow4Model{}).Eval(1, []float64{0.5, -2, 0, 0.5}); !math.IsNaN(v) {
		t.Fatalf("pow4 with non-positive base = %v, want NaN", v)
	}
	if v := (logLogLinearModel{}).Eval(1, []float64{0, -1}); !math.IsNaN(v) {
		t.Fatalf("logloglinear with non-positive arg = %v, want NaN", v)
	}
}

func TestEnsembleLayout(t *testing.T) {
	e := newEnsemble(Models(), 120)
	wantDim := len(Models()) + 1 // weights + logSigma
	for _, m := range Models() {
		wantDim += m.NumParams()
	}
	if e.dim != wantDim {
		t.Fatalf("dim = %d, want %d", e.dim, wantDim)
	}
	y := []float64{0.1, 0.2, 0.3, 0.4}
	th := e.initVector(y, DefaultAsym(y))
	if len(th) != e.dim {
		t.Fatalf("initVector len = %d, want %d", len(th), e.dim)
	}
	if lp := e.logPosterior(y, th); math.IsInf(lp, -1) || math.IsNaN(lp) {
		t.Fatalf("init vector has invalid posterior %v", lp)
	}
}

func TestEnsemblePriorRejects(t *testing.T) {
	e := newEnsemble(Models(), 120)
	y := []float64{0.1, 0.2, 0.3, 0.4}
	th := e.initVector(y, DefaultAsym(y))

	bad := append([]float64(nil), th...)
	bad[0] = -0.1 // negative weight
	if !math.IsInf(e.logPrior(bad), -1) {
		t.Fatal("prior accepted negative weight")
	}

	bad = append([]float64(nil), th...)
	for i := range Models() {
		bad[i] = 0 // zero weight sum
	}
	if !math.IsInf(e.logPrior(bad), -1) {
		t.Fatal("prior accepted zero weight sum")
	}

	bad = append([]float64(nil), th...)
	bad[len(bad)-1] = math.Log(5) // absurd noise
	if !math.IsInf(e.logPrior(bad), -1) {
		t.Fatal("prior accepted sigma > 0.5")
	}
}

func TestSamplerDrawZBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		z := drawZ(2, rng)
		if z < 0.5-1e-12 || z > 2+1e-12 {
			t.Fatalf("drawZ = %v out of [1/a, a]", z)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name string
		mut  func(*Config)
	}{
		{"few walkers", func(c *Config) { c.Walkers = 1 }},
		{"few iters", func(c *Config) { c.Iters = 1 }},
		{"bad burn", func(c *Config) { c.BurnFrac = 1.0 }},
		{"bad stretch", func(c *Config) { c.StretchA = 1.0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := FastConfig()
			tt.mut(&cfg)
			if _, err := NewPredictor(cfg); err == nil {
				t.Fatal("NewPredictor accepted invalid config")
			}
		})
	}
	if _, err := NewPredictor(PaperConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestFitRejectsShortAndBadInput(t *testing.T) {
	p := MustPredictor(FastConfig())
	if _, err := p.Fit([]float64{0.1, 0.2}, 120, 1); !errors.Is(err, ErrTooFewObservations) {
		t.Fatalf("err = %v, want ErrTooFewObservations", err)
	}
	if _, err := p.Fit([]float64{0.1, 0.2, math.NaN(), 0.3}, 120, 1); err == nil {
		t.Fatal("Fit accepted NaN observation")
	}
}

// synthCurve generates a noisy Janoschek-style rising curve.
func synthCurve(n int, final, rate, noise float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	y := make([]float64, n)
	for i := range y {
		x := float64(i + 1)
		y[i] = 0.1 + (final-0.1)*(1-math.Exp(-rate*x)) + noise*rng.NormFloat64()
	}
	return y
}

func TestFitRisingCurve(t *testing.T) {
	p := MustPredictor(FastConfig())
	obs := synthCurve(30, 0.80, 0.035, 0.008, 42)
	post, err := p.Fit(obs, 120, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("samples=%d accept=%.2f", post.NumSamples(), post.AcceptRate())
	if post.AcceptRate() < 0.02 || post.AcceptRate() > 0.95 {
		t.Errorf("acceptance rate %.3f looks pathological", post.AcceptRate())
	}

	// In-sample fit: posterior mean near the observations.
	mean, _ := post.Predict(30)
	if math.Abs(mean-obs[29]) > 0.08 {
		t.Errorf("Predict(30) = %.3f, observed %.3f", mean, obs[29])
	}

	// A curve racing to 0.8 should look likely to clear 0.5 by the
	// horizon and unlikely to clear 0.95.
	if pr := post.ProbAtLeast(120, 0.5); pr < 0.6 {
		t.Errorf("P(y(120) >= 0.5) = %.3f, want high for a strong riser", pr)
	}
	if pr := post.ProbAtLeast(120, 0.97); pr > 0.5 {
		t.Errorf("P(y(120) >= 0.97) = %.3f, want low", pr)
	}
}

func TestFitFlatCurvePessimistic(t *testing.T) {
	p := MustPredictor(FastConfig())
	rng := rand.New(rand.NewSource(9))
	obs := make([]float64, 30)
	for i := range obs {
		obs[i] = 0.10 + 0.008*rng.NormFloat64()
	}
	post, err := p.Fit(obs, 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pr := post.ProbAtLeast(120, 0.77); pr > 0.25 {
		t.Errorf("P(non-learner reaches 0.77) = %.3f, want small", pr)
	}
}

func TestProbAtLeastMonotoneInTarget(t *testing.T) {
	p := MustPredictor(FastConfig())
	post, err := p.Fit(synthCurve(25, 0.7, 0.04, 0.01, 5), 120, 5)
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.1
	for _, y := range []float64{0.2, 0.4, 0.6, 0.8, 0.95} {
		pr := post.ProbAtLeast(120, y)
		if pr > prev+1e-9 {
			t.Fatalf("ProbAtLeast not monotone: P(>=%v) = %v after %v", y, pr, prev)
		}
		if pr < 0 || pr > 1 {
			t.Fatalf("ProbAtLeast out of [0,1]: %v", pr)
		}
		prev = pr
	}
}

func TestFitDeterministicGivenSeed(t *testing.T) {
	p := MustPredictor(FastConfig())
	obs := synthCurve(20, 0.6, 0.05, 0.01, 11)
	a, err := p.Fit(obs, 120, 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Fit(obs, 120, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumSamples() != b.NumSamples() {
		t.Fatalf("sample counts differ: %d vs %d", a.NumSamples(), b.NumSamples())
	}
	pa, pb := a.ProbAtLeast(120, 0.6), b.ProbAtLeast(120, 0.6)
	if pa != pb {
		t.Fatalf("same seed gave different posteriors: %v vs %v", pa, pb)
	}
}

func TestPosteriorBand(t *testing.T) {
	p := MustPredictor(FastConfig())
	post, err := p.Fit(synthCurve(20, 0.6, 0.05, 0.01, 2), 120, 2)
	if err != nil {
		t.Fatal(err)
	}
	means, stds := post.Band(1, 50)
	if len(means) != 50 || len(stds) != 50 {
		t.Fatalf("band lengths = %d, %d, want 50", len(means), len(stds))
	}
	for i := range means {
		if math.IsNaN(means[i]) || stds[i] < 0 {
			t.Fatalf("band[%d] = (%v, %v)", i, means[i], stds[i])
		}
	}
	// Uncertainty should generally grow with extrapolation distance.
	if stds[49] < stds[5]*0.2 {
		t.Errorf("band std at 50 (%v) unexpectedly tiny vs at 6 (%v)", stds[49], stds[5])
	}
}

func TestPredictCacheConsistent(t *testing.T) {
	p := MustPredictor(FastConfig())
	post, err := p.Fit(synthCurve(20, 0.6, 0.05, 0.01, 4), 120, 4)
	if err != nil {
		t.Fatal(err)
	}
	m1, s1 := post.Predict(80)
	m2, s2 := post.Predict(80)
	if m1 != m2 || s1 != s2 {
		t.Fatal("cached Predict differs from first call")
	}
}

func TestFitClampsSmallHorizon(t *testing.T) {
	p := MustPredictor(FastConfig())
	obs := synthCurve(20, 0.6, 0.05, 0.01, 8)
	post, err := p.Fit(obs, 5 /* smaller than prefix */, 8)
	if err != nil {
		t.Fatal(err)
	}
	if post.Horizon() <= len(obs) {
		t.Fatalf("horizon %d not clamped past prefix %d", post.Horizon(), len(obs))
	}
}

func TestGaussCDF(t *testing.T) {
	tests := []struct {
		z, want float64
	}{
		{0, 0.5},
		{1.6448536269514722, 0.95},
		{-1.6448536269514722, 0.05},
	}
	for _, tt := range tests {
		if got := gaussCDF(tt.z); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("gaussCDF(%v) = %v, want %v", tt.z, got, tt.want)
		}
	}
}

func TestPredictorModelNames(t *testing.T) {
	p := MustPredictor(FastConfig())
	if p.ModelNames() == "" {
		t.Fatal("empty model names")
	}
}

// TestProbSweepMatchesProbAtLeast pins the batch API's contract:
// every element is bit-identical to the scalar call (both run the same
// fixed block-summation tree) and both agree with a plain serial
// marginalization oracle up to summation-order rounding.
func TestProbSweepMatchesProbAtLeast(t *testing.T) {
	p := MustPredictor(FastConfig())
	post, err := p.Fit(synthCurve(25, 0.7, 0.04, 0.01, 13), 120, 13)
	if err != nil {
		t.Fatal(err)
	}
	// Independent oracle: a straight sample loop over the raw draws.
	oracle := func(m int, target float64) float64 {
		if m < 1 {
			m = 1
		}
		ens := PosteriorEnsembleForTest(post)
		var sum float64
		n := 0
		for _, th := range post.RawSamples() {
			pred := ens.eval(float64(m), th)
			if math.IsNaN(pred) {
				continue
			}
			sum += gaussCDF((pred - target) / ens.sigma(th))
			n++
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	for _, target := range []float64{0.3, 0.6, 0.9} {
		sweep := post.ProbSweep(0, 120, target)
		if len(sweep) != 121 {
			t.Fatalf("sweep length %d, want 121", len(sweep))
		}
		for m := 0; m <= 120; m++ {
			if want := post.ProbAtLeast(m, target); sweep[m] != want {
				t.Fatalf("ProbSweep[%d] = %v, ProbAtLeast = %v (target %v)", m, sweep[m], want, target)
			}
			if want := oracle(m, target); math.Abs(sweep[m]-want) > 1e-12 {
				t.Fatalf("ProbSweep[%d] = %v, oracle = %v (target %v)", m, sweep[m], want, target)
			}
		}
	}
	// Degenerate range clamps like the scalar path.
	if got := post.ProbSweep(5, 3, 0.5); len(got) != 1 || got[0] != post.ProbAtLeast(5, 0.5) {
		t.Fatalf("inverted range: got %v", got)
	}
}

// TestPredictRangeMatchesPredict pins the batch mean/std path and its
// interaction with the shared cache.
func TestPredictRangeMatchesPredict(t *testing.T) {
	p := MustPredictor(FastConfig())
	post, err := p.Fit(synthCurve(25, 0.7, 0.04, 0.01, 17), 120, 17)
	if err != nil {
		t.Fatal(err)
	}
	// Warm part of the cache through the scalar path first.
	post.Predict(40)
	means, stds := post.PredictRange(1, 80)
	if len(means) != 80 || len(stds) != 80 {
		t.Fatalf("range lengths = %d, %d, want 80", len(means), len(stds))
	}
	for m := 1; m <= 80; m++ {
		wm, ws := post.Predict(m)
		if means[m-1] != wm || stds[m-1] != ws {
			t.Fatalf("PredictRange[%d] = (%v, %v), Predict = (%v, %v)", m, means[m-1], stds[m-1], wm, ws)
		}
	}
}

func TestPosteriorQuantiles(t *testing.T) {
	p := MustPredictor(FastConfig())
	post, err := p.Fit(synthCurve(20, 0.6, 0.05, 0.01, 6), 120, 6)
	if err != nil {
		t.Fatal(err)
	}
	q05, q95 := post.CredibleBand(100, 0.05, 0.95)
	med := post.Quantile(100, 0.5)
	if math.IsNaN(q05) || math.IsNaN(q95) || math.IsNaN(med) {
		t.Fatal("NaN quantiles")
	}
	if !(q05 <= med && med <= q95) {
		t.Fatalf("quantiles out of order: %v %v %v", q05, med, q95)
	}
	mean, _ := post.Predict(100)
	if mean < q05-0.05 || mean > q95+0.05 {
		t.Fatalf("mean %v far outside the 90%% band [%v, %v]", mean, q05, q95)
	}
	// Degenerate inputs clamp.
	if post.Quantile(100, -1) > post.Quantile(100, 2) {
		t.Fatal("clamped quantiles out of order")
	}
}
