package curve_test

import (
	"math/rand"
	"testing"

	"github.com/hyperdrive-ml/hyperdrive/internal/curve"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// TestPredictionDiscriminates runs the full prediction stack against
// the synthetic workload population: fit each learnable configuration's
// 30-epoch prefix and ask for P(y(120) >= 0.6). The probabilities must
// discriminate — configurations that actually reach 0.6 should receive
// systematically higher probabilities than those that do not. This is
// the property POP's classification quality rests on (§2.2).
func TestPredictionDiscriminates(t *testing.T) {
	if testing.Short() {
		t.Skip("many MCMC fits")
	}
	spec := workload.CIFAR10()
	rng := rand.New(rand.NewSource(41))
	pred := curve.MustPredictor(curve.FastConfig())

	const target = 0.60
	var probReach, probMiss []float64
	i := 0
	for len(probReach) < 12 || len(probMiss) < 12 {
		if i > 400 {
			break
		}
		cfg := spec.Space().Sample(rng)
		prof := workload.NewCIFAR10Profile(spec.Space(), cfg, int64(i))
		i++
		if !prof.Learnable {
			continue
		}
		var obs []float64
		for e := 1; e <= 30; e++ {
			obs = append(obs, prof.AccuracyAt(e))
		}
		post, err := pred.Fit(obs, spec.MaxEpoch(), int64(i))
		if err != nil {
			t.Fatal(err)
		}
		p := post.ProbAtLeast(spec.MaxEpoch(), target)
		reaches := false
		for e := 31; e <= spec.MaxEpoch(); e++ {
			if prof.AccuracyAt(e) >= target {
				reaches = true
				break
			}
		}
		if reaches {
			probReach = append(probReach, p)
		} else {
			probMiss = append(probMiss, p)
		}
	}
	if len(probReach) < 8 || len(probMiss) < 8 {
		t.Fatalf("population too lopsided: %d reach, %d miss", len(probReach), len(probMiss))
	}
	meanReach := mean(probReach)
	meanMiss := mean(probMiss)
	t.Logf("mean P(reach %.2f): reachers %.3f (n=%d) vs missers %.3f (n=%d)",
		target, meanReach, len(probReach), meanMiss, len(probMiss))
	if meanReach <= meanMiss+0.15 {
		t.Fatalf("prediction does not discriminate: %.3f vs %.3f", meanReach, meanMiss)
	}
}

func mean(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
