package figures

import (
	"fmt"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/curve"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
	"github.com/hyperdrive-ml/hyperdrive/internal/sim"
	"github.com/hyperdrive-ml/hyperdrive/internal/stats"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// AblationMCMC compares the §5.2 MCMC budget reduction: the paper cut
// 100x2500 samples to 100x700 for >2x faster prediction "without
// significant degradation in our policy's performance". Here the
// quality axis is the time-to-target POP achieves with each budget,
// and the cost axis is wall time per fit (measured directly).
func AblationMCMC(o Options) (*Report, error) {
	spec := workload.CIFAR10()
	n := pick(o, 30, 60)
	tr, err := collectWinnerTrace(spec, n, o.Seed+20, 0, 1)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "ablation-mcmc",
		Title:  "MCMC budget: reduced (700 iters) vs original (2500 iters)",
		Header: []string{"budget", "walkers", "iters", "ms_per_fit", "ttt_h", "reached"},
	}
	// Measure per-fit wall cost on a representative 30-epoch prefix.
	obs := make([]float64, 30)
	prof := workload.NewCIFAR10Profile(spec.Space(), sampleConfigs(spec, 1, o.Seed+21)[0], 1)
	for e := 1; e <= 30; e++ {
		obs[e-1] = prof.AccuracyAt(e)
	}
	budgets := []struct {
		name string
		cfg  curve.Config
	}{
		{"reduced(paper)", scaledBudget(o, curve.PaperConfig())},
		{"original", scaledBudget(o, curve.OriginalConfig())},
	}
	for _, b := range budgets {
		pred := curve.MustPredictor(b.cfg)
		t0 := time.Now()
		reps := 3
		for r := 0; r < reps; r++ {
			if _, err := pred.Fit(obs, spec.MaxEpoch(), int64(r)); err != nil {
				return nil, err
			}
		}
		msPerFit := float64(time.Since(t0).Milliseconds()) / float64(reps)

		pop, err := policy.NewPOP(policy.POPOptions{Predictor: b.cfg})
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(sim.Options{Trace: tr, Machines: 4, Policy: pop, StopAtTarget: true})
		if err != nil {
			return nil, err
		}
		rep.AddRow(b.name, b.cfg.Walkers, b.cfg.Iters, msPerFit,
			boolHours(res.Reached, res.TimeToTarget), res.Reached)
	}
	rep.Note("paper §5.2: the reduction cut prediction time >2x without significant policy degradation")
	return rep, nil
}

// scaledBudget shrinks the paper budgets at fast scale so the ablation
// finishes quickly while preserving the 700:2500 iteration ratio.
func scaledBudget(o Options, cfg curve.Config) curve.Config {
	if o.fast() {
		cfg.Walkers = 20
		cfg.Iters = cfg.Iters / 10
	}
	return cfg
}

// AblationInstant compares trajectory-based prediction against the
// §2.2a strawman: classifying by instantaneous accuracy only (what
// TuPAQ does). Instantaneous classification misranks slow-rising
// winners, hurting time-to-target.
func AblationInstant(o Options) (*Report, error) {
	return popOptionAblation(o, "ablation-instant",
		"trajectory prediction vs instantaneous accuracy",
		[]popVariantSpec{
			{"trajectory(POP)", policy.POPOptions{}},
			{"instantaneous", policy.POPOptions{InstantAccuracy: true}},
		},
		"paper §2.2a: most-recent performance alone misses overtaking configurations")
}

// AblationThreshold compares the dynamic desired/deserved threshold
// with fixed thresholds (§2.2c): too low floods the promising pool,
// too high starves it.
func AblationThreshold(o Options) (*Report, error) {
	return popOptionAblation(o, "ablation-threshold",
		"dynamic vs static promising threshold",
		[]popVariantSpec{
			{"dynamic(POP)", policy.POPOptions{}},
			{"static-0.2", policy.POPOptions{StaticThreshold: 0.2}},
			{"static-0.5", policy.POPOptions{StaticThreshold: 0.5}},
			{"static-0.9", policy.POPOptions{StaticThreshold: 0.9}},
		},
		"paper §2.2c: a static threshold cannot trade exploration for exploitation as confidence grows")
}

// AblationKill compares domain-knowledge pruning on and off (§2.1):
// without the kill threshold, non-learners burn slots until the
// confidence floor catches them, and every one costs prediction work.
func AblationKill(o Options) (*Report, error) {
	return popOptionAblation(o, "ablation-kill",
		"kill threshold on vs off",
		[]popVariantSpec{
			{"kill@15%(POP)", policy.POPOptions{}},
			{"no-kill", policy.POPOptions{DisableKillThreshold: true}},
		},
		"paper §2.1: early termination of non-learners (32% of configs) saves resources")
}

type popVariantSpec struct {
	name string
	opts policy.POPOptions
}

// popOptionAblation is the shared POP-variant ablation: the same
// trace replayed under several configuration orders (so scheduling
// differences are not masked by a lucky early winner), varying one POP
// option per variant.
func popOptionAblation(o Options, id, title string, variants []popVariantSpec, note string) (*Report, error) {
	spec := workload.CIFAR10()
	n := pick(o, 30, 60)
	orders := pick(o, 5, 10)
	base, err := collectWinnerTrace(spec, n, o.Seed+22, 0, 1)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     id,
		Title:  title,
		Header: []string{"variant", "mean_ttt_h", "max_ttt_h", "reached", "terminations", "fits"},
	}
	for _, v := range variants {
		opts := v.opts
		if opts.Predictor.Walkers == 0 {
			opts.Predictor = predictorFor(o)
		}
		var ttts []float64
		reached, terms, fits := 0, 0, 0
		for ord := 0; ord < orders; ord++ {
			tr := base
			if ord > 0 {
				tr = base.Permute(int64(100 + ord))
			}
			pop, err := policy.NewPOP(opts)
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(sim.Options{Trace: tr, Machines: 4, Policy: pop, StopAtTarget: true})
			if err != nil {
				return nil, err
			}
			if res.Reached {
				reached++
				ttts = append(ttts, res.TimeToTarget.Hours())
			}
			terms += res.Terminations
			fits += res.Fits
		}
		if len(ttts) == 0 {
			rep.AddRow(v.name, "-", "-", fmt.Sprintf("0/%d", orders), terms, fits)
			continue
		}
		box, err := stats.BoxSummary(ttts)
		if err != nil {
			return nil, err
		}
		rep.AddRow(v.name, box.Mean, box.Max, fmt.Sprintf("%d/%d", reached, orders), terms, fits)
	}
	rep.Note("%s", note)
	return rep, nil
}

// AblationOverlap compares overlapped and blocking prediction (§5.2):
// when prediction blocks training, every fit delays the job's machine;
// overlapping hides the cost.
func AblationOverlap(o Options) (*Report, error) {
	spec := workload.CIFAR10()
	n := pick(o, 30, 60)
	tr, err := collectWinnerTrace(spec, n, o.Seed+23, 0, 1)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "ablation-overlap",
		Title:  "overlapped vs blocking curve prediction",
		Header: []string{"mode", "ttt_h", "reached", "fits"},
	}
	// The modeled fit cost: the paper's optimized predictor takes tens
	// of seconds per fit on their CPUs; one simulated minute is a
	// conservative stand-in.
	const fitCost = time.Minute
	for _, mode := range []struct {
		name    string
		overlap bool
	}{
		{"overlapped(POP)", true},
		{"blocking", false},
	} {
		pop, err := policy.NewPOP(policy.POPOptions{Predictor: predictorFor(o)})
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(sim.Options{
			Trace: tr, Machines: 4, Policy: pop, StopAtTarget: true,
			PredictionCost: fitCost, OverlapPrediction: mode.overlap,
		})
		if err != nil {
			return nil, err
		}
		rep.AddRow(mode.name, boolHours(res.Reached, res.TimeToTarget), res.Reached, res.Fits)
	}
	rep.Note("paper §5.2: end-to-end gains of overlapping outweigh training slowdown from contention")
	return rep, nil
}
