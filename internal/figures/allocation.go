package figures

import (
	"fmt"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/core"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
	"github.com/hyperdrive-ml/hyperdrive/internal/sim"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// Fig4ab regenerates Figures 4a/4b: the desired-slots and
// deserved-slots curves over the confidence grid, snapshotted early in
// an experiment (low confidences, crossing point near zero) and late
// (high confidences, crossing point high).
func Fig4ab(o Options) (*Report, error) {
	spec := workload.CIFAR10()
	n := pick(o, 40, 100)
	machines := 8
	tr, err := collectWinnerTrace(spec, n, o.Seed+10, 0, 1)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "fig4ab",
		Title:  fmt.Sprintf("desired vs deserved slots, %d machines", machines),
		Header: []string{"stage", "p", "desired", "deserved", "effective"},
	}
	pred := predictorFor(o)
	for _, stage := range []struct {
		name string
		dur  time.Duration
	}{
		{"early(~30min)", 30 * time.Minute},
		{"late(~4h)", 4 * time.Hour},
	} {
		pop, err := policy.NewPOP(policy.POPOptions{Predictor: pred})
		if err != nil {
			return nil, err
		}
		if _, err := sim.Run(sim.Options{
			Trace: tr, Machines: machines, Policy: pop, MaxDuration: stage.dur,
		}); err != nil {
			return nil, err
		}
		ests := make([]core.Estimate, 0)
		for _, e := range pop.Estimates() {
			ests = append(ests, e)
		}
		curvePts := core.DesiredDeservedCurve(ests, machines, 1, 21)
		for _, pt := range curvePts {
			eff := pt.Desired
			if pt.Deserved < eff {
				eff = pt.Deserved
			}
			rep.AddRow(stage.name, pt.P, pt.Desired, pt.Deserved, eff)
		}
		alloc := core.AllocateSlots(ests, machines, 1)
		rep.Note("%s: %d active estimates, threshold %.2f, %d promising slots",
			stage.name, len(ests), alloc.Threshold, alloc.PromisingSlots)
	}
	rep.Note("paper: S_desired is non-increasing and S_deserved increasing in p; their crossing maximizes S_effective")
	return rep, nil
}

// Fig4c regenerates Figure 4c: the ratio of promising to active jobs
// over the experiment's lifetime, rising as prediction confidence
// accumulates (exploration -> exploitation shift).
func Fig4c(o Options) (*Report, error) {
	spec := workload.CIFAR10()
	n := pick(o, 40, 100)
	tr, err := collectWinnerTrace(spec, n, o.Seed+11, 0, 1)
	if err != nil {
		return nil, err
	}
	pop, err := policy.NewPOP(policy.POPOptions{Predictor: predictorFor(o)})
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(sim.Options{
		Trace: tr, Machines: 4, Policy: pop, TrackAllocation: true,
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "fig4c",
		Title:  "promising/active job ratio over the experiment",
		Header: []string{"hours", "ratio", "promising", "active"},
	}
	for _, r := range res.Ratios {
		rep.AddRow(r.T.Hours(), r.Ratio, r.Promised, r.Active)
	}
	if len(res.Ratios) >= 4 {
		q := len(res.Ratios) / 4
		early := meanRatio(res.Ratios[:q])
		late := meanRatio(res.Ratios[len(res.Ratios)-q:])
		rep.Note("mean ratio in first quarter: %.2f vs last quarter: %.2f (paper: exploitation share rises)", early, late)
	}
	return rep, nil
}

func meanRatio(rs []sim.RatioPoint) float64 {
	if len(rs) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rs {
		sum += r.Ratio
	}
	return sum / float64(len(rs))
}
