package figures

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/hyperdrive-ml/hyperdrive/internal/checkpoint"
	"github.com/hyperdrive-ml/hyperdrive/internal/curve"
	"github.com/hyperdrive-ml/hyperdrive/internal/param"
	"github.com/hyperdrive-ml/hyperdrive/internal/sim"
	"github.com/hyperdrive-ml/hyperdrive/internal/stats"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// Fig1 regenerates Figure 1: validation accuracy of randomly selected
// supervised-learning configurations as a function of training
// iteration. The paper's observations to reproduce: a majority of
// curves stuck near 10% random accuracy and only ~3 of 50 exceeding
// 75%.
func Fig1(o Options) (*Report, error) {
	spec := workload.CIFAR10()
	n := pick(o, 20, 50)
	cfgs := sampleConfigs(spec, n, o.Seed+1)

	rep := &Report{
		ID:     "fig1",
		Title:  fmt.Sprintf("accuracy vs iteration, %d random CIFAR-10 configs", n),
		Header: []string{"config", "epoch", "accuracy"},
	}
	ge75, poor := 0, 0
	for i, cfg := range cfgs {
		tr := spec.New(cfg, int64(i))
		best := 0.0
		for {
			s, done := tr.Step()
			if s.Epoch%5 == 0 || s.Epoch == 1 || done {
				rep.AddRow(fmt.Sprintf("c%02d", i), s.Epoch, s.Metric)
			}
			if s.Metric > best {
				best = s.Metric
			}
			if done {
				break
			}
		}
		if best >= 0.75 {
			ge75++
		}
		if best <= 0.15 {
			poor++
		}
	}
	rep.Note("%d/%d configs exceed 75%% accuracy (paper: 3/50)", ge75, n)
	rep.Note("%d/%d configs never escape random accuracy (paper: a significant portion)", poor, n)
	return rep, nil
}

// Fig2a regenerates Figure 2a: the CDF of final validation accuracy
// over 90 random configurations; the paper reports 32% at or below
// random accuracy.
func Fig2a(o Options) (*Report, error) {
	spec := workload.CIFAR10()
	n := pick(o, 90, 90)
	cfgs := sampleConfigs(spec, n, o.Seed+2)
	finals := make([]float64, 0, n)
	for i, cfg := range cfgs {
		p := workload.NewCIFAR10Profile(spec.Space(), cfg, int64(i))
		if p.Learnable {
			finals = append(finals, p.AccuracyAt(spec.MaxEpoch()))
		} else {
			finals = append(finals, p.Floor)
		}
	}
	rep := &Report{
		ID:     "fig2a",
		Title:  fmt.Sprintf("final validation accuracy CDF, %d configs", n),
		Header: []string{"accuracy", "cdf"},
	}
	for _, pt := range stats.ECDF(finals) {
		rep.AddRow(pt.X, pt.P)
	}
	atRandom := stats.CDFAt(finals, 0.13)
	rep.Note("fraction at/below random accuracy: %.2f (paper: 0.32)", atRandom)
	return rep, nil
}

// overtakePair scans random configurations for a Figure 2b pair: A
// leads at epoch 20 but B has the better final accuracy.
func overtakePair(spec workload.Spec, seed int64) (a, b param.Config, aSeed, bSeed int64, err error) {
	rng := rand.New(rand.NewSource(seed))
	type cand struct {
		cfg   param.Config
		seed  int64
		early float64
		final float64
	}
	var cands []cand
	for i := 0; i < 400; i++ {
		cfg := spec.Space().Sample(rng)
		p := workload.NewCIFAR10Profile(spec.Space(), cfg, int64(i))
		if !p.Learnable {
			continue
		}
		cands = append(cands, cand{cfg: cfg, seed: int64(i), early: p.AccuracyAt(20), final: p.AccuracyAt(120)})
	}
	bestGap := 0.0
	var bi, bj int = -1, -1
	for i := range cands {
		for j := range cands {
			// i leads early, j wins finally.
			gap := min2(cands[i].early-cands[j].early, cands[j].final-cands[i].final)
			if gap > bestGap {
				bestGap = gap
				bi, bj = i, j
			}
		}
	}
	if bi < 0 {
		return nil, nil, 0, 0, fmt.Errorf("no overtaking pair found")
	}
	return cands[bi].cfg, cands[bj].cfg, cands[bi].seed, cands[bj].seed, nil
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Fig2b regenerates Figure 2b: two configurations where the early
// leader (A) is overtaken by the eventual winner (B) after ~epoch 50.
func Fig2b(o Options) (*Report, error) {
	spec := workload.CIFAR10()
	cfgA, cfgB, seedA, seedB, err := overtakePair(spec, o.Seed+3)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "fig2b",
		Title:  "overtaking configurations A and B",
		Header: []string{"config", "epoch", "accuracy"},
	}
	for name, pair := range map[string]struct {
		cfg  param.Config
		seed int64
	}{"A": {cfgA, seedA}, "B": {cfgB, seedB}} {
		tr := spec.New(pair.cfg, pair.seed)
		for {
			s, done := tr.Step()
			if s.Epoch%4 == 0 || s.Epoch == 1 || done {
				rep.AddRow(name, s.Epoch, s.Metric)
			}
			if done {
				break
			}
		}
	}
	pa := workload.NewCIFAR10Profile(spec.Space(), cfgA, seedA)
	pb := workload.NewCIFAR10Profile(spec.Space(), cfgB, seedB)
	rep.Note("A at epoch 20: %.3f vs B: %.3f (A leads)", pa.AccuracyAt(20), pb.AccuracyAt(20))
	rep.Note("A final: %.3f vs B final: %.3f (B overtakes)", pa.AccuracyAt(120), pb.AccuracyAt(120))
	return rep, nil
}

// Fig2c regenerates Figure 2c: predicted accuracy with confidence
// bands for A and B from a 10-epoch prefix. The paper's point: A's
// expected accuracy is higher at epoch 10 but with wider variance;
// expectation alone misleads without the confidence.
func Fig2c(o Options) (*Report, error) {
	spec := workload.CIFAR10()
	cfgA, cfgB, seedA, seedB, err := overtakePair(spec, o.Seed+3)
	if err != nil {
		return nil, err
	}
	pred, err := curve.NewPredictor(predictorFor(o))
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "fig2c",
		Title:  "prediction at epoch 10 for configs A and B",
		Header: []string{"config", "epoch", "measured", "predicted", "std"},
	}
	for name, pair := range map[string]struct {
		cfg  param.Config
		seed int64
	}{"A": {cfgA, seedA}, "B": {cfgB, seedB}} {
		prof := workload.NewCIFAR10Profile(spec.Space(), pair.cfg, pair.seed)
		var obs []float64
		for e := 1; e <= 10; e++ {
			obs = append(obs, prof.AccuracyAt(e))
		}
		post, err := pred.Fit(obs, spec.MaxEpoch(), pair.seed)
		if err != nil {
			return nil, err
		}
		for e := 1; e <= spec.MaxEpoch(); e += 6 {
			mean, std := post.Predict(e)
			rep.AddRow(name, e, prof.AccuracyAt(e), mean, std)
		}
	}
	return rep, nil
}

// Fig3 regenerates Figure 3: predicted and measured accuracy curves at
// three stages (epoch 10, epoch 30, final), showing confidence
// sharpening as history accumulates.
func Fig3(o Options) (*Report, error) {
	spec := workload.CIFAR10()
	cfgs := sampleConfigs(spec, 60, o.Seed+4)
	pred, err := curve.NewPredictor(predictorFor(o))
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "fig3",
		Title:  "predictions at epochs 10 and 30 vs final curves",
		Header: []string{"config", "stage", "epoch", "value", "std"},
	}
	count := 0
	avgStd10, avgStd30 := 0.0, 0.0
	for i, cfg := range cfgs {
		prof := workload.NewCIFAR10Profile(spec.Space(), cfg, int64(i))
		if !prof.Learnable || count >= pick(o, 3, 5) {
			continue
		}
		count++
		name := fmt.Sprintf("c%02d", i)
		var obs []float64
		for e := 1; e <= spec.MaxEpoch(); e++ {
			obs = append(obs, prof.AccuracyAt(e))
			if e%12 == 0 || e == 1 {
				rep.AddRow(name, "measured", e, prof.AccuracyAt(e), 0.0)
			}
		}
		for _, stage := range []int{10, 30} {
			post, err := pred.Fit(obs[:stage], spec.MaxEpoch(), int64(i))
			if err != nil {
				return nil, err
			}
			sumStd := 0.0
			pts := 0
			for e := stage; e <= spec.MaxEpoch(); e += 12 {
				mean, std := post.Predict(e)
				rep.AddRow(name, fmt.Sprintf("pred@%d", stage), e, mean, std)
				sumStd += std
				pts++
			}
			if stage == 10 {
				avgStd10 += sumStd / float64(pts)
			} else {
				avgStd30 += sumStd / float64(pts)
			}
		}
	}
	if count > 0 {
		rep.Note("mean prediction std at epoch 10: %.3f vs epoch 30: %.3f (confidence grows with history)",
			avgStd10/float64(count), avgStd30/float64(count))
	}
	return rep, nil
}

// Fig6 regenerates Figure 6: the distribution of per-job execution
// durations under POP, Bandit, and EarlyTerm. The paper's shape: POP
// spends >= 30 minutes on only ~5% of jobs, the baselines on ~15%.
func Fig6(o Options) (*Report, error) {
	spec := workload.CIFAR10()
	n := pick(o, 40, 100)
	tr, err := collectWinnerTrace(spec, n, o.Seed+6, 0, 1)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "fig6",
		Title:  fmt.Sprintf("job execution duration distribution, %d configs, 4 machines", n),
		Header: []string{"policy", "percentile", "hours"},
	}
	pred := predictorFor(o)
	for _, polName := range []string{"pop", "bandit", "earlyterm"} {
		pol, err := buildPolicy(polName, pred)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(sim.Options{Trace: tr, Machines: 4, Policy: pol})
		if err != nil {
			return nil, err
		}
		durs := res.JobDurations()
		for p := 10; p <= 100; p += 10 {
			rep.AddRow(polName, p, stats.Percentile(durs, float64(p)))
		}
		longFrac := 1 - stats.CDFAt(durs, 0.5)
		rep.Note("%s: %.0f%% of jobs run >= 30 min (paper: POP ~5%%, baselines ~15%%)", polName, longFrac*100)
	}
	return rep, nil
}

// Fig7 regenerates Figure 7: boxplots of time to reach 77% validation
// accuracy under each policy across repeated experiments. The paper:
// POP 2.8h mean vs Bandit 4.5h (1.6x) vs EarlyTerm 6.1h (2.1x), with
// POP's min-max spread ~2x smaller.
func Fig7(o Options) (*Report, error) {
	return timeToTargetBoxes(o, "fig7", workload.CIFAR10(), pick(o, 40, 100), 4, pick(o, 6, 10), o.Seed+7)
}

// timeToTargetBoxes is the shared Fig7/Fig9 experiment: repeated
// time-to-target measurement with per-repeat training seeds.
func timeToTargetBoxes(o Options, id string, spec workload.Spec, nConfigs, machines, repeats int, seed int64) (*Report, error) {
	rep := &Report{
		ID: id,
		Title: fmt.Sprintf("time to target, %s, %d configs, %d machines, %d repeats",
			spec.Name(), nConfigs, machines, repeats),
		Header: []string{"policy", "min_h", "q1_h", "median_h", "q3_h", "max_h", "mean_h", "reached"},
	}
	pred := predictorFor(o)
	policies := []string{"pop", "bandit", "earlyterm", "default"}
	means := make(map[string]float64, len(policies))
	medAll := make(map[string]float64, len(policies))
	for _, polName := range policies {
		var ttts, penalized []float64
		reached := 0
		for r := 0; r < repeats; r++ {
			tr, err := collectWinnerTrace(spec, nConfigs, seed, int64(1000*(r+1)), 1)
			if err != nil {
				return nil, err
			}
			res, err := timeToTarget(tr, polName, machines, pred)
			if err != nil {
				return nil, err
			}
			if res.Reached {
				reached++
				ttts = append(ttts, res.TimeToTarget.Hours())
				penalized = append(penalized, res.TimeToTarget.Hours())
			} else {
				penalized = append(penalized, math.Inf(1)) // DNF: never reached
			}
		}
		medAll[polName] = median(penalized)
		if reached < repeats {
			rep.Note("%s failed to reach the target in %d/%d repeats (terminated every winner)",
				polName, repeats-reached, repeats)
		}
		if len(ttts) == 0 {
			rep.AddRow(polName, "-", "-", "-", "-", "-", "-", fmt.Sprintf("0/%d", repeats))
			continue
		}
		box, err := stats.BoxSummary(ttts)
		if err != nil {
			return nil, err
		}
		means[polName] = box.Mean
		rep.AddRow(polName, box.Min, box.Q1, box.Med, box.Q3, box.Max, box.Mean,
			fmt.Sprintf("%d/%d", reached, repeats))
	}
	if pop, ok := means["pop"]; ok && pop > 0 {
		for _, other := range []string{"bandit", "earlyterm", "default"} {
			if m, ok := means[other]; ok {
				rep.Note("POP speedup over %s: %.2fx (mean of reached runs), %s (median with DNF penalty)",
					other, m/pop, speedupStr(medAll[other], medAll["pop"]))
			}
		}
	}
	return rep, nil
}

// speedupStr renders a ratio that may involve DNF (infinite) medians.
func speedupStr(other, pop float64) string {
	if math.IsInf(other, 1) {
		return "inf"
	}
	if pop <= 0 || math.IsInf(pop, 1) {
		return "-"
	}
	return fmt.Sprintf("%.2fx", other/pop)
}

// OverheadSL regenerates the §6.2.3 supervised suspend-overhead
// measurements: ~158ms mean suspend latency (p95 219ms, max 1.12s) and
// ~358KB mean snapshot size (p95 685KB).
func OverheadSL(o Options) (*Report, error) {
	spec := workload.CIFAR10()
	tr, err := collectWinnerTrace(spec, pick(o, 40, 100), o.Seed+8, 0, 1)
	if err != nil {
		return nil, err
	}
	capt, err := checkpoint.NewCapturer(checkpoint.Framework, o.Seed+8)
	if err != nil {
		return nil, err
	}
	var acct checkpoint.Accounting
	pol, err := buildPolicy("pop", predictorFor(o))
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(sim.Options{
		Trace: tr, Machines: 4, Policy: pol,
		Checkpointer: capt, CheckpointAccounting: &acct,
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "overhead-sl",
		Title:  "supervised-learning suspend overhead (framework snapshots)",
		Header: []string{"metric", "mean", "std", "p95", "max"},
	}
	lats := acct.Latencies()
	if len(lats) == 0 {
		rep.Note("no suspends occurred in this run (%d suspends)", res.Suspends)
		return rep, nil
	}
	msec := make([]float64, len(lats))
	for i, v := range lats {
		msec[i] = v * 1000
	}
	latSum, _ := stats.Summarize(msec)
	rep.AddRow("suspend latency (ms)", latSum.Mean, latSum.Std, stats.Percentile(msec, 95), latSum.Max)
	sizes := acct.Sizes()
	kb := make([]float64, len(sizes))
	for i, v := range sizes {
		kb[i] = v / 1024
	}
	sizeSum, _ := stats.Summarize(kb)
	rep.AddRow("snapshot size (KB)", sizeSum.Mean, sizeSum.Std, stats.Percentile(kb, 95), sizeSum.Max)
	rep.Note("paper §6.2.3: latency mean 157.69ms std 72ms p95 219ms max 1.12s; size mean 357.67KB std 122.46KB p95 685.26KB")
	rep.Note("%d suspends across %d jobs", res.Suspends, len(res.Jobs))
	return rep, nil
}

// Headline regenerates the abstract's claims: POP speedup up to 6.7x
// over random/grid search (Default) and up to 2.1x over the
// state-of-the-art baselines.
func Headline(o Options) (*Report, error) {
	spec := workload.CIFAR10()
	n := pick(o, 40, 100)
	repeats := pick(o, 3, 5)
	rep := &Report{
		ID:     "headline",
		Title:  "POP speedup over baselines (mean time-to-target ratios)",
		Header: []string{"baseline", "speedup"},
	}
	pred := predictorFor(o)
	sums := map[string]float64{}
	counts := map[string]int{}
	for r := 0; r < repeats; r++ {
		tr, err := collectWinnerTrace(spec, n, o.Seed+9+int64(r), int64(500*r), 1)
		if err != nil {
			return nil, err
		}
		for _, polName := range []string{"pop", "bandit", "earlyterm", "default"} {
			res, err := timeToTarget(tr, polName, 4, pred)
			if err != nil {
				return nil, err
			}
			if res.Reached {
				sums[polName] += res.TimeToTarget.Hours()
				counts[polName]++
			}
		}
	}
	pop := sums["pop"] / float64(max1(counts["pop"]))
	for _, other := range []string{"default", "bandit", "earlyterm"} {
		if counts[other] == 0 || pop == 0 {
			rep.AddRow(other, "-")
			continue
		}
		mean := sums[other] / float64(counts[other])
		rep.AddRow(other, mean/pop)
	}
	rep.Note("paper: up to 6.7x vs random/grid search, up to 2.1x vs state of the art")
	return rep, nil
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}
