package figures

import (
	"fmt"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/curve"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
	"github.com/hyperdrive-ml/hyperdrive/internal/sim"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// curveNew builds a predictor (indirection keeps the import local).
func curveNew(cfg curve.Config) (*curve.Predictor, error) { return curve.NewPredictor(cfg) }

// ExtDynamicTarget evaluates the §9 dynamic-target extension. Setup:
// the model owner does not know a good target and sets a soft one
// (55% accuracy) that many configurations can reach. A static-target
// POP then treats every such configuration as equally promising and
// loses its discrimination; the dynamic variant raises the bar each
// time it is met, so exploitation keeps chasing the actual best. The
// measured quantity is the time until the trace's true best accuracy
// is (nearly) found.
func ExtDynamicTarget(o Options) (*Report, error) {
	spec := workload.CIFAR10()
	n := pick(o, 30, 60)
	orders := pick(o, 3, 6)
	base, err := collectWinnerTrace(spec, n, o.Seed+24, 0, 1)
	if err != nil {
		return nil, err
	}
	// The true best accuracy in the trace.
	best := 0.0
	for _, j := range base.Jobs {
		for _, s := range j.Samples {
			if s.Metric > best {
				best = s.Metric
			}
		}
	}
	rep := &Report{
		ID: "ext-dynamic-target",
		Title: fmt.Sprintf("static vs dynamic y_target (§9), soft plan target 0.55, stop at true best %.3f",
			best),
		Header: []string{"variant", "mean_time_to_best_h", "reached", "fits"},
	}
	pred := predictorFor(o)
	for _, v := range []struct {
		name    string
		dynamic bool
	}{
		{"static-target", false},
		{"dynamic-target", true},
	} {
		var sum float64
		reached, fits := 0, 0
		for ord := 0; ord < orders; ord++ {
			tr := base
			if ord > 0 {
				tr = base.Permute(int64(300 + ord))
			}
			pop, err := policy.NewPOP(policy.POPOptions{Predictor: pred, DynamicTarget: v.dynamic})
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(sim.Options{
				Trace: tr, Machines: 4, Policy: pop,
				StopAtTarget: true,
				PlanTarget:   0.55,
				StopMetric:   best - 0.005,
				MaxDuration:  72 * time.Hour,
			})
			if err != nil {
				return nil, err
			}
			if res.Reached {
				reached++
				sum += res.TimeToTarget.Hours()
			}
			fits += res.Fits
		}
		ttt := "-"
		if reached > 0 {
			ttt = fmt.Sprintf("%.2f", sum/float64(reached))
		}
		rep.AddRow(v.name, ttt, fmt.Sprintf("%d/%d", reached, orders), fits)
	}
	rep.Note("paper §9 sketches the mechanism and defers evaluation; measured here: comparable time-to-best without needing a good prior target, at the cost of extra prediction work (the risen bar keeps triggering refits)")
	return rep, nil
}

// ExtSHAComparison pits the §8 related-work algorithms (successive
// halving and HyperBand brackets), implemented as SAPs, against POP on
// the same trace — demonstrating the framework's support for "existing
// and future search and scheduling algorithms" (§4.1) with a live
// comparison.
func ExtSHAComparison(o Options) (*Report, error) {
	spec := workload.CIFAR10()
	n := pick(o, 40, 100)
	orders := pick(o, 4, 8)
	base, err := collectWinnerTrace(spec, n, o.Seed+25, 0, 1)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "ext-sha",
		Title:  fmt.Sprintf("POP vs successive halving vs HyperBand, %d configs, 4 machines, %d orders", n, orders),
		Header: []string{"policy", "mean_ttt_h", "reached", "mean_busy_h"},
	}
	build := func(name string) (policy.Policy, error) {
		switch name {
		case "sha":
			return policy.NewSuccessiveHalving(policy.SHAOptions{})
		case "hyperband":
			return policy.NewSuccessiveHalving(policy.SHAOptions{Brackets: 3})
		default:
			return buildPolicy(name, predictorFor(o))
		}
	}
	for _, name := range []string{"pop", "sha", "hyperband", "default"} {
		var sumTTT, sumBusy float64
		reached := 0
		for ord := 0; ord < orders; ord++ {
			tr := base
			if ord > 0 {
				tr = base.Permute(int64(200 + ord))
			}
			pol, err := build(name)
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(sim.Options{Trace: tr, Machines: 4, Policy: pol, StopAtTarget: true})
			if err != nil {
				return nil, err
			}
			if res.Reached {
				reached++
				sumTTT += res.TimeToTarget.Hours()
			}
			for _, j := range res.Jobs {
				sumBusy += j.BusyTime.Hours()
			}
		}
		ttt := "-"
		if reached > 0 {
			ttt = fmt.Sprintf("%.2f", sumTTT/float64(reached))
		}
		rep.AddRow(name, ttt, fmt.Sprintf("%d/%d", reached, orders), sumBusy/float64(orders))
	}
	rep.Note("halving variants bound per-config budgets without curve prediction; POP's trajectory model protects slow winners they cut")
	return rep, nil
}

// ExtUtilization compares cluster utilization and total training
// volume across policies — the resource-efficiency story behind §1's
// motivation: Default keeps machines 100% busy doing mostly wasted
// work; the early-terminating policies trade a little idleness at the
// tail for far less total work.
func ExtUtilization(o Options) (*Report, error) {
	spec := workload.CIFAR10()
	n := pick(o, 40, 100)
	tr, err := collectWinnerTrace(spec, n, o.Seed+26, 0, 1)
	if err != nil {
		return nil, err
	}
	machines := 4
	rep := &Report{
		ID:     "ext-utilization",
		Title:  fmt.Sprintf("cluster utilization and training volume, %d configs, %d machines", n, machines),
		Header: []string{"policy", "utilization", "machine_hours", "experiment_h", "wasted_on_poor_h"},
	}
	pred := predictorFor(o)
	for _, name := range []string{"pop", "bandit", "earlyterm", "default"} {
		pol, err := buildPolicy(name, pred)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(sim.Options{Trace: tr, Machines: machines, Policy: pol})
		if err != nil {
			return nil, err
		}
		var total, wasted float64
		for _, j := range res.Jobs {
			total += j.BusyTime.Hours()
			if j.Best <= spec.KillThreshold() {
				wasted += j.BusyTime.Hours()
			}
		}
		rep.AddRow(name, res.Utilization(machines), total, res.Duration.Hours(), wasted)
	}
	rep.Note("utilization counts machine-time spent training; 'wasted' is training spent on configs that never beat the 15%% kill threshold")
	return rep, nil
}

// ExtCalibration measures the learning-curve predictor's
// discrimination: configurations are fitted at 30 epochs and asked for
// P(reach 0.6 by 120); the probabilities are bucketed against whether
// the configuration actually gets there. POP's classification quality
// (§2.2) rests on this separation.
func ExtCalibration(o Options) (*Report, error) {
	spec := workload.CIFAR10()
	pred, err := curveNew(predictorFor(o))
	if err != nil {
		return nil, err
	}
	const target = 0.60
	nWanted := pick(o, 30, 80)
	rep := &Report{
		ID:     "ext-calibration",
		Title:  fmt.Sprintf("prediction calibration at 30 epochs, target %.2f", target),
		Header: []string{"bucket", "n", "fraction_actually_reach"},
	}
	type obs struct {
		p       float64
		reaches bool
	}
	var all []obs
	cfgs := sampleConfigs(spec, 600, o.Seed+27)
	for i, cfg := range cfgs {
		if len(all) >= nWanted {
			break
		}
		prof := workload.NewCIFAR10Profile(spec.Space(), cfg, int64(i))
		if !prof.Learnable {
			continue
		}
		var prefix []float64
		for e := 1; e <= 30; e++ {
			prefix = append(prefix, prof.AccuracyAt(e))
		}
		post, err := pred.Fit(prefix, spec.MaxEpoch(), int64(i))
		if err != nil {
			return nil, err
		}
		p := post.ProbAtLeast(spec.MaxEpoch(), target)
		reaches := false
		for e := 31; e <= spec.MaxEpoch(); e++ {
			if prof.AccuracyAt(e) >= target {
				reaches = true
				break
			}
		}
		all = append(all, obs{p: p, reaches: reaches})
	}
	buckets := []struct {
		name   string
		lo, hi float64
	}{
		{"P<0.1", 0, 0.1},
		{"0.1-0.4", 0.1, 0.4},
		{"0.4-0.7", 0.4, 0.7},
		{"P>=0.7", 0.7, 1.01},
	}
	for _, b := range buckets {
		n, reach := 0, 0
		for _, ob := range all {
			if ob.p >= b.lo && ob.p < b.hi {
				n++
				if ob.reaches {
					reach++
				}
			}
		}
		frac := "-"
		if n > 0 {
			frac = fmt.Sprintf("%.2f", float64(reach)/float64(n))
		}
		rep.AddRow(b.name, n, frac)
	}
	rep.Note("higher predicted probability buckets must contain higher fractions of actual target-reachers")
	return rep, nil
}
