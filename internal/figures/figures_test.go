package figures

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func fastOpts() Options { return Options{Scale: "fast", Seed: 1} }

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 26 {
		t.Fatalf("registry has %d figures, want 26 (every paper table/figure + ablations + extensions)", len(ids))
	}
	for _, id := range ids {
		if Describe(id) == "" {
			t.Errorf("figure %s has no description", id)
		}
	}
	if Describe("nope") != "" {
		t.Error("Describe of unknown id should be empty")
	}
	if _, err := Run("nope", fastOpts()); err == nil {
		t.Error("Run of unknown id should fail")
	}
}

func TestReportPrintAndCSV(t *testing.T) {
	rep := &Report{ID: "test", Title: "t", Header: []string{"a", "b"}}
	rep.AddRow("x", 1.5)
	rep.AddRow(2, "with,comma")
	rep.Note("note %d", 1)
	var buf bytes.Buffer
	rep.Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "== test: t ==") || !strings.Contains(out, "# note 1") {
		t.Fatalf("print output:\n%s", out)
	}
	dir := t.TempDir()
	if err := rep.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "test.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"with,comma"`) {
		t.Fatalf("csv escaping broken:\n%s", data)
	}
}

// cell parses a numeric report cell.
func cell(t *testing.T, rep *Report, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(rep.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("%s row %d col %d = %q: %v", rep.ID, row, col, rep.Rows[row][col], err)
	}
	return v
}

// findRow locates the first row whose first cell equals key.
func findRow(t *testing.T, rep *Report, key string) []string {
	t.Helper()
	for _, row := range rep.Rows {
		if row[0] == key {
			return row
		}
	}
	t.Fatalf("%s: no row %q in %v", rep.ID, key, rep.Rows)
	return nil
}

func TestFig1Shape(t *testing.T) {
	rep, err := Run("fig1", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("fig1 produced no series")
	}
	// Every accuracy on [0, 1].
	for _, row := range rep.Rows {
		v, _ := strconv.ParseFloat(row[2], 64)
		if v < 0 || v > 1 {
			t.Fatalf("accuracy %v out of range", v)
		}
	}
}

func TestFig2aShape(t *testing.T) {
	rep, err := Run("fig2a", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// CDF ends at 1 and the at-random fraction note exists.
	last := cell(t, rep, len(rep.Rows)-1, 1)
	if last != 1 {
		t.Fatalf("CDF ends at %v", last)
	}
	if len(rep.Notes) == 0 {
		t.Fatal("missing population note")
	}
}

func TestFig2bOvertake(t *testing.T) {
	rep, err := Run("fig2b", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Reconstruct A and B finals from the series.
	finals := map[string]float64{}
	early := map[string]float64{}
	for _, row := range rep.Rows {
		e, _ := strconv.Atoi(row[1])
		v, _ := strconv.ParseFloat(row[2], 64)
		if e == 20 {
			early[row[0]] = v
		}
		if e == 120 {
			finals[row[0]] = v
		}
	}
	if !(early["A"] > early["B"]) {
		t.Fatalf("A should lead at epoch 20: %v vs %v", early["A"], early["B"])
	}
	if !(finals["B"] > finals["A"]) {
		t.Fatalf("B should win finally: %v vs %v", finals["B"], finals["A"])
	}
}

func TestFig3ConfidenceSharpens(t *testing.T) {
	rep, err := Run("fig3", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Mean prediction std at 30 epochs must be below that at 10.
	var s10, s30 float64
	var n10, n30 int
	for _, row := range rep.Rows {
		std, _ := strconv.ParseFloat(row[4], 64)
		switch row[1] {
		case "pred@10":
			s10 += std
			n10++
		case "pred@30":
			s30 += std
			n30++
		}
	}
	if n10 == 0 || n30 == 0 {
		t.Fatal("missing prediction stages")
	}
	if s30/float64(n30) >= s10/float64(n10) {
		t.Fatalf("prediction std did not shrink: @10=%v @30=%v", s10/float64(n10), s30/float64(n30))
	}
}

func TestFig4abMonotoneCurves(t *testing.T) {
	rep, err := Run("fig4ab", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Per stage: desired non-increasing, deserved increasing in p.
	prev := map[string][2]float64{}
	for _, row := range rep.Rows {
		stage := row[0]
		des, _ := strconv.ParseFloat(row[2], 64)
		dese, _ := strconv.ParseFloat(row[3], 64)
		if p, ok := prev[stage]; ok {
			if des > p[0]+1e-9 {
				t.Fatalf("desired increased within %s", stage)
			}
			if dese < p[1]-1e-9 {
				t.Fatalf("deserved decreased within %s", stage)
			}
		}
		prev[stage] = [2]float64{des, dese}
	}
}

func TestFig4cExploitationRises(t *testing.T) {
	rep, err := Run("fig4c", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) < 8 {
		t.Fatalf("too few ratio samples: %d", len(rep.Rows))
	}
	q := len(rep.Rows) / 4
	var early, late float64
	for i := 0; i < q; i++ {
		early += cell(t, rep, i, 1)
		late += cell(t, rep, len(rep.Rows)-1-i, 1)
	}
	if late <= early {
		t.Fatalf("promising ratio did not rise: early=%v late=%v", early/float64(q), late/float64(q))
	}
}

func TestFig6POPShedsLongJobs(t *testing.T) {
	rep, err := Run("fig6", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// POP's p90 job duration should be under EarlyTerm's (EarlyTerm
	// runs survivors to completion).
	var pop90, et90 float64
	for _, row := range rep.Rows {
		if row[1] != "90" {
			continue
		}
		v, _ := strconv.ParseFloat(row[2], 64)
		switch row[0] {
		case "pop":
			pop90 = v
		case "earlyterm":
			et90 = v
		}
	}
	if pop90 == 0 || et90 == 0 {
		t.Fatal("missing p90 rows")
	}
	if pop90 >= et90 {
		t.Fatalf("POP p90 job duration %.2fh not below EarlyTerm %.2fh", pop90, et90)
	}
}

func TestFig7DefaultSlowest(t *testing.T) {
	rep, err := Run("fig7", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	pop := findRow(t, rep, "pop")
	def := findRow(t, rep, "default")
	popMean, _ := strconv.ParseFloat(pop[6], 64)
	defMean, _ := strconv.ParseFloat(def[6], 64)
	if popMean <= 0 || defMean <= popMean {
		t.Fatalf("POP mean %.2fh should beat default %.2fh", popMean, defMean)
	}
}

func TestFig9PaperOrdering(t *testing.T) {
	rep, err := Run("fig9", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	pop := findRow(t, rep, "pop")
	def := findRow(t, rep, "default")
	popMean, _ := strconv.ParseFloat(pop[6], 64)
	defMean, _ := strconv.ParseFloat(def[6], 64)
	if popMean <= 0 || defMean <= popMean {
		t.Fatalf("POP mean %.2fh should beat default %.2fh on RL", popMean, defMean)
	}
}

func TestOverheadSLBands(t *testing.T) {
	rep, err := Run("overhead-sl", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Skip("no suspends in this run")
	}
	lat := findRow(t, rep, "suspend latency (ms)")
	mean, _ := strconv.ParseFloat(lat[1], 64)
	if mean < 50 || mean > 500 {
		t.Fatalf("suspend latency mean %.0fms outside the §6.2.3 regime", mean)
	}
}

func TestFig10WithinPaperCaps(t *testing.T) {
	rep, err := Run("fig10", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		v, _ := strconv.ParseFloat(row[2], 64)
		switch row[0] {
		case "latency_s":
			if v > 22.36+1e-9 {
				t.Fatalf("latency %vs exceeds the paper's 22.36s cap", v)
			}
		case "size_MB":
			if v > 43.75+1e-9 {
				t.Fatalf("size %vMB exceeds the paper's 43.75MB cap", v)
			}
		}
	}
}

func TestFig12aValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("live runs sleep wall-clock time")
	}
	rep, err := Run("fig12a", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// Every reached policy within a generous 30% of the simulator.
	for _, row := range rep.Rows {
		if row[3] == "-" {
			continue
		}
		errPct, _ := strconv.ParseFloat(row[3], 64)
		if errPct > 30 {
			t.Fatalf("%s live-vs-sim error %.1f%% (paper max 13%%)", row[0], errPct)
		}
	}
}

func TestFig12bMoreMachinesHelp(t *testing.T) {
	rep, err := Run("fig12b", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// POP column must be non-increasing as machines grow.
	prev := -1.0
	for _, row := range rep.Rows {
		if row[1] == "-" {
			continue
		}
		v, _ := strconv.ParseFloat(row[1], 64)
		if prev > 0 && v > prev*1.05 {
			t.Fatalf("POP time grew with machines: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestFig12cPOPLeastSensitive(t *testing.T) {
	rep, err := Run("fig12c", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	pop := findRow(t, rep, "pop")
	def := findRow(t, rep, "default")
	popSpread, _ := strconv.ParseFloat(pop[4], 64)
	defSpread, _ := strconv.ParseFloat(def[4], 64)
	if popSpread <= 0 || defSpread <= popSpread {
		t.Fatalf("POP spread %.2fh should be below default %.2fh", popSpread, defSpread)
	}
}

func TestHeadlineSpeedups(t *testing.T) {
	rep, err := Run("headline", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	def := findRow(t, rep, "default")
	if def[1] == "-" {
		t.Skip("default never reached in this sample")
	}
	v, _ := strconv.ParseFloat(def[1], 64)
	if v < 1.2 {
		t.Fatalf("POP speedup over default = %.2fx, want clearly > 1", v)
	}
}

func TestAblationMCMCFaster(t *testing.T) {
	rep, err := Run("ablation-mcmc", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	red := findRow(t, rep, "reduced(paper)")
	orig := findRow(t, rep, "original")
	redMs, _ := strconv.ParseFloat(red[3], 64)
	origMs, _ := strconv.ParseFloat(orig[3], 64)
	if origMs < redMs*1.5 {
		t.Fatalf("original budget (%.0fms) should cost >=1.5x the reduced (%.0fms)", origMs, redMs)
	}
}

func TestAblationInstantWorse(t *testing.T) {
	rep, err := Run("ablation-instant", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	traj := findRow(t, rep, "trajectory(POP)")
	inst := findRow(t, rep, "instantaneous")
	if traj[1] == "-" {
		t.Fatal("trajectory POP never reached")
	}
	tv, _ := strconv.ParseFloat(traj[1], 64)
	if inst[1] == "-" {
		return // instantaneous DNF: even stronger evidence
	}
	iv, _ := strconv.ParseFloat(inst[1], 64)
	if iv < tv {
		t.Fatalf("instantaneous (%.2fh) should not beat trajectory (%.2fh)", iv, tv)
	}
}

func TestAblationOverlapFaster(t *testing.T) {
	rep, err := Run("ablation-overlap", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	over := findRow(t, rep, "overlapped(POP)")
	block := findRow(t, rep, "blocking")
	ov, _ := strconv.ParseFloat(over[1], 64)
	bv, _ := strconv.ParseFloat(block[1], 64)
	if ov <= 0 || bv < ov {
		t.Fatalf("blocking (%.2fh) should not beat overlapped (%.2fh)", bv, ov)
	}
}

func TestAblationKillAndThresholdRun(t *testing.T) {
	for _, id := range []string{"ablation-kill", "ablation-threshold"} {
		rep, err := Run(id, fastOpts())
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Rows) < 2 {
			t.Fatalf("%s has %d rows", id, len(rep.Rows))
		}
	}
}

func TestFig8LearningCrash(t *testing.T) {
	rep, err := Run("fig8", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Notes) == 0 || !strings.Contains(rep.Notes[0], "non-learning") {
		t.Fatal("fig8 missing the non-learning population note")
	}
	for _, row := range rep.Rows {
		v, _ := strconv.ParseFloat(row[2], 64)
		if v < -500 || v > 300 {
			t.Fatalf("reward %v out of range", v)
		}
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	if _, err := Run("fig2a", Options{Scale: "fast", Seed: 1, OutDir: dir}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "fig2a.csv")); err != nil {
		t.Fatal("CSV not written:", err)
	}
}

func TestExtensionFigures(t *testing.T) {
	dyn, err := Run("ext-dynamic-target", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(dyn.Rows) != 2 {
		t.Fatalf("ext-dynamic-target rows = %d", len(dyn.Rows))
	}
	sha, err := Run("ext-sha", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	pop := findRow(t, sha, "pop")
	def := findRow(t, sha, "default")
	if pop[1] == "-" {
		t.Fatal("POP never reached in ext-sha")
	}
	popT, _ := strconv.ParseFloat(pop[1], 64)
	if def[1] != "-" {
		defT, _ := strconv.ParseFloat(def[1], 64)
		if defT < popT {
			t.Fatalf("default (%.2fh) beat POP (%.2fh) on mean time-to-target", defT, popT)
		}
	}
	// Halving variants must save training volume vs default.
	shaRow := findRow(t, sha, "sha")
	shaBusy, _ := strconv.ParseFloat(shaRow[3], 64)
	defBusy, _ := strconv.ParseFloat(def[3], 64)
	if shaBusy >= defBusy {
		t.Fatalf("sha busy %.1fh not below default %.1fh", shaBusy, defBusy)
	}
}

func TestExtUtilizationAndCalibration(t *testing.T) {
	util, err := Run("ext-utilization", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	def := findRow(t, util, "default")
	pop := findRow(t, util, "pop")
	defBusy, _ := strconv.ParseFloat(def[2], 64)
	popBusy, _ := strconv.ParseFloat(pop[2], 64)
	if popBusy >= defBusy {
		t.Fatalf("POP machine-hours %.1f not below default %.1f", popBusy, defBusy)
	}
	defWaste, _ := strconv.ParseFloat(def[4], 64)
	popWaste, _ := strconv.ParseFloat(pop[4], 64)
	if popWaste >= defWaste {
		t.Fatalf("POP wasted %.1fh on poor configs, default %.1fh", popWaste, defWaste)
	}

	cal, err := Run("ext-calibration", fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	// The lowest-probability bucket must reach less often than the
	// highest (when both are populated).
	var lowFrac, highFrac float64 = -1, -1
	for _, row := range cal.Rows {
		if row[2] == "-" {
			continue
		}
		v, _ := strconv.ParseFloat(row[2], 64)
		switch row[0] {
		case "P<0.1":
			lowFrac = v
		case "P>=0.7":
			highFrac = v
		}
	}
	if lowFrac >= 0 && highFrac >= 0 && highFrac <= lowFrac {
		t.Fatalf("calibration inverted: P<0.1 reaches %.2f vs P>=0.7 reaches %.2f", lowFrac, highFrac)
	}
}
