package figures

import (
	"context"
	"fmt"
	"math"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/clock"
	"github.com/hyperdrive-ml/hyperdrive/internal/cluster"
	"github.com/hyperdrive-ml/hyperdrive/internal/curve"
	"github.com/hyperdrive-ml/hyperdrive/internal/hypergen"
	"github.com/hyperdrive-ml/hyperdrive/internal/param"
	"github.com/hyperdrive-ml/hyperdrive/internal/stats"
	"github.com/hyperdrive-ml/hyperdrive/internal/trace"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// Fig12a regenerates Figure 12a: validating the discrete-event
// simulator against the live runtime. The same configurations (and
// training seeds) run twice — once through the live cluster runtime on
// a scaled clock, once replayed as a trace through the simulator — and
// the time-to-target must agree closely (the paper reports a maximum
// error of 13%).
func Fig12a(o Options) (*Report, error) {
	spec := workload.CIFAR10()
	n := pick(o, 25, 50)
	machines := 4
	// Moderate compression: on the live runtime, wall-clock costs
	// (curve fits, scheduling) are amplified by the speedup factor, so
	// validation fidelity requires the amplified overhead to stay
	// negligible against simulated epochs — exactly the paper's live
	// regime, where a seconds-long fit is small against one-minute
	// epochs.
	speedup := 1500.0

	// A configuration set containing a winner.
	var cfgs []param.Config
	var tr *trace.Trace
	for attempt := int64(0); ; attempt++ {
		if attempt >= 60 {
			return nil, fmt.Errorf("no winner trace found")
		}
		cfgs = sampleConfigs(spec, n, o.Seed+15+attempt)
		// Trainer seeds must match the live runtime's assignment
		// (cluster seed + 1-based creation index) so both executions
		// observe identical curves.
		seeds := make([]int64, n)
		for i := range seeds {
			seeds[i] = int64(i) + 1
		}
		var err error
		tr, err = trace.Collect(spec, cfgs, seeds)
		if err != nil {
			return nil, err
		}
		if traceWinners(tr) >= 1 {
			break
		}
	}

	rep := &Report{
		ID:     "fig12a",
		Title:  fmt.Sprintf("simulator vs live runtime, %d configs, %d machines", n, machines),
		Header: []string{"policy", "live_h", "sim_h", "error_pct"},
	}
	// A small MCMC budget keeps per-fit wall cost (amplified by the
	// scaled clock) negligible on the live side.
	pred := curve.Config{Walkers: 8, Iters: 30, BurnFrac: 0.5, MaxSamples: 100, StretchA: 2, Seed: 1}
	maxErr := 0.0
	for _, polName := range []string{"pop", "bandit", "earlyterm", "default"} {
		// Live run over the in-process cluster runtime.
		livePol, err := buildPolicy(polName, pred)
		if err != nil {
			return nil, err
		}
		exp, err := cluster.New(cluster.Config{
			Workload:     spec.Name(),
			Generator:    hypergen.NewFixed(cfgs),
			Policy:       livePol,
			Machines:     machines,
			MaxJobs:      n,
			Clock:        clock.NewScaled(time.Date(2017, 12, 11, 0, 0, 0, 0, time.UTC), speedup),
			StopAtTarget: true,
			Seed:         0, // trainer seeds: Seed + index + 1 must match trace seeds
		})
		if err != nil {
			return nil, err
		}
		liveRes, err := exp.Run(context.Background())
		if err != nil {
			return nil, err
		}

		simRes, err := timeToTarget(tr, polName, machines, pred)
		if err != nil {
			return nil, err
		}

		if !liveRes.Reached || !simRes.Reached {
			rep.AddRow(polName, boolHours(liveRes.Reached, liveRes.TimeToTarget),
				boolHours(simRes.Reached, simRes.TimeToTarget), "-")
			continue
		}
		errPct := 100 * math.Abs(liveRes.TimeToTarget.Hours()-simRes.TimeToTarget.Hours()) /
			simRes.TimeToTarget.Hours()
		if errPct > maxErr {
			maxErr = errPct
		}
		rep.AddRow(polName, liveRes.TimeToTarget.Hours(), simRes.TimeToTarget.Hours(),
			fmt.Sprintf("%.1f", errPct))
	}
	rep.Note("max simulation error: %.1f%% (paper: max 13%%)", maxErr)
	return rep, nil
}

func boolHours(ok bool, d time.Duration) string {
	if !ok {
		return "-"
	}
	return fmt.Sprintf("%.2f", d.Hours())
}

// Fig12b regenerates Figure 12b: time-to-target as a function of
// cluster size. The paper: all policies improve with more machines,
// POP wins at every size, and its margin grows with capacity.
func Fig12b(o Options) (*Report, error) {
	spec := workload.CIFAR10()
	n := pick(o, 40, 100)
	tr, err := collectWinnerTrace(spec, n, o.Seed+16, 0, 1)
	if err != nil {
		return nil, err
	}
	orders := pick(o, 3, 5)
	rep := &Report{
		ID:     "fig12b",
		Title:  fmt.Sprintf("time to target vs machines, %d configs, mean over %d orders", n, orders),
		Header: []string{"machines", "pop_h", "bandit_h", "earlyterm_h", "default_h"},
	}
	pred := predictorFor(o)
	sizes := []int{1, 5, 15, 25}
	for _, m := range sizes {
		row := []interface{}{m}
		for _, polName := range []string{"pop", "bandit", "earlyterm", "default"} {
			var sum float64
			reached := 0
			for ord := 0; ord < orders; ord++ {
				t9 := tr
				if ord > 0 {
					t9 = tr.Permute(int64(ord))
				}
				res, err := timeToTarget(t9, polName, m, pred)
				if err != nil {
					return nil, err
				}
				if res.Reached {
					reached++
					sum += res.TimeToTarget.Hours()
				}
			}
			if reached == 0 {
				row = append(row, "-")
			} else {
				row = append(row, sum/float64(reached))
			}
		}
		rep.AddRow(row...)
	}
	rep.Note("paper: time improves with machines for all policies; POP always fastest")
	return rep, nil
}

// Fig12c regenerates Figure 12c: the distribution of time-to-target
// over random configuration orders on 5 machines. The paper: POP's
// spread is 4.05h vs Bandit 8.33h, EarlyTerm 8.50h, and Default a
// staggering 25.74h.
func Fig12c(o Options) (*Report, error) {
	spec := workload.CIFAR10()
	n := pick(o, 40, 100)
	orders := pick(o, 10, 25)
	machines := 5
	base, err := collectWinnerTrace(spec, n, o.Seed+17, 0, 2)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "fig12c",
		Title:  fmt.Sprintf("time-to-target over %d configuration orders, %d machines", orders, machines),
		Header: []string{"policy", "min_h", "median_h", "max_h", "spread_h", "reached"},
	}
	pred := predictorFor(o)
	spreads := make(map[string]float64)
	for _, polName := range []string{"pop", "bandit", "earlyterm", "default"} {
		var ttts []float64
		reached := 0
		for ord := 0; ord < orders; ord++ {
			tr := base
			if ord > 0 {
				tr = base.Permute(int64(ord))
			}
			res, err := timeToTarget(tr, polName, machines, pred)
			if err != nil {
				return nil, err
			}
			if res.Reached {
				reached++
				ttts = append(ttts, res.TimeToTarget.Hours())
			}
		}
		if len(ttts) == 0 {
			rep.AddRow(polName, "-", "-", "-", "-", fmt.Sprintf("0/%d", orders))
			continue
		}
		box, err := stats.BoxSummary(ttts)
		if err != nil {
			return nil, err
		}
		spreads[polName] = box.Spread()
		rep.AddRow(polName, box.Min, box.Med, box.Max, box.Spread(), fmt.Sprintf("%d/%d", reached, orders))
	}
	if pop, ok := spreads["pop"]; ok {
		for _, other := range []string{"bandit", "earlyterm", "default"} {
			if s, ok := spreads[other]; ok && pop > 0 {
				rep.Note("%s spread / POP spread: %.1fx (paper: POP is least order-sensitive)", other, s/pop)
			}
		}
	}
	return rep, nil
}
