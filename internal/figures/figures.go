// Package figures regenerates every table and figure of the paper's
// evaluation (§2 design-motivation plots, §6 live experiments, §7
// sensitivity analysis) plus the ablations called out in DESIGN.md.
// Each experiment is a named function returning a Report that the
// hdbench CLI prints and writes as CSV, and that bench_test.go wraps
// in testing.B benchmarks.
//
// Absolute numbers differ from the paper (the substrate is a synthetic
// trainer, not a GPU cluster); the reproduced quantity is the *shape*:
// which policy wins, by roughly what factor, and where distributions
// sit. EXPERIMENTS.md records paper-vs-measured for every figure.
package figures

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/curve"
	"github.com/hyperdrive-ml/hyperdrive/internal/param"
	"github.com/hyperdrive-ml/hyperdrive/internal/policy"
	"github.com/hyperdrive-ml/hyperdrive/internal/sim"
	"github.com/hyperdrive-ml/hyperdrive/internal/trace"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// Options sizes an experiment run.
type Options struct {
	// Scale is "fast" (reduced configs/repeats, for benchmarks and CI)
	// or "full" (paper-scale populations).
	Scale string
	// Seed varies the configuration sample.
	Seed int64
	// OutDir, when non-empty, receives <id>.csv files.
	OutDir string
}

// fast reports whether the reduced scale is selected.
func (o Options) fast() bool { return o.Scale != "full" }

// pick selects by scale.
func pick(o Options, fast, full int) int {
	if o.fast() {
		return fast
	}
	return full
}

// Report is one regenerated table/figure.
type Report struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row, stringifying values.
func (r *Report) AddRow(vals ...interface{}) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = strconv.FormatFloat(x, 'g', 6, 64)
		case time.Duration:
			row[i] = strconv.FormatFloat(x.Hours(), 'g', 6, 64)
		case int:
			row[i] = strconv.Itoa(x)
		case bool:
			row[i] = strconv.FormatBool(x)
		default:
			row[i] = fmt.Sprint(x)
		}
	}
	r.Rows = append(r.Rows, row)
}

// Note appends a free-form annotation.
func (r *Report) Note(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Print renders the report as an aligned text table.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(r.Header)
	const maxPrint = 48
	for i, row := range r.Rows {
		if i == maxPrint && len(r.Rows) > maxPrint+8 {
			fmt.Fprintf(w, "... (%d more rows; full data in CSV)\n", len(r.Rows)-maxPrint)
			break
		}
		printRow(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "# %s\n", n)
	}
	fmt.Fprintln(w)
}

// WriteCSV writes the report to <dir>/<id>.csv.
func (r *Report) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, r.ID+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeLine := func(cells []string) error {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = esc(c)
		}
		_, err := fmt.Fprintln(f, strings.Join(out, ","))
		return err
	}
	if err := writeLine(r.Header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := writeLine(row); err != nil {
			return err
		}
	}
	return f.Sync()
}

// Func regenerates one figure.
type Func func(Options) (*Report, error)

// registry maps figure IDs to implementations, in presentation order.
var registry = []struct {
	ID   string
	Desc string
	Fn   Func
}{
	{"fig1", "accuracy vs iteration for 50 random supervised configs", Fig1},
	{"fig2a", "CDF of final validation accuracy (90 configs)", Fig2a},
	{"fig2b", "overtaking configurations A and B", Fig2b},
	{"fig2c", "early prediction with confidence for A and B", Fig2c},
	{"fig3", "predictions at epochs 10/30 vs final curves", Fig3},
	{"fig4ab", "desired vs deserved slots, early and late", Fig4ab},
	{"fig4c", "promising/active ratio over the experiment", Fig4c},
	{"fig6", "job execution duration distribution per policy", Fig6},
	{"fig7", "time to 77% accuracy per policy (CIFAR-10)", Fig7},
	{"overhead-sl", "supervised suspend latency and snapshot size (§6.2.3)", OverheadSL},
	{"fig8", "reward vs trials for 15 LunarLander configs", Fig8},
	{"fig9", "time to solved per policy (LunarLander)", Fig9},
	{"fig10", "CRIU suspend latency and snapshot size CDFs", Fig10},
	{"fig12a", "simulator validation against the live runtime", Fig12a},
	{"fig12b", "time to target vs cluster size", Fig12b},
	{"fig12c", "sensitivity to configuration order (25 orders)", Fig12c},
	{"headline", "POP speedup over random search and the baselines", Headline},
	{"ablation-mcmc", "MCMC budget: 100x700 vs 100x2500 (§5.2)", AblationMCMC},
	{"ablation-instant", "trajectory prediction vs instantaneous accuracy (§2.2a)", AblationInstant},
	{"ablation-threshold", "dynamic vs static promising threshold (§2.2c)", AblationThreshold},
	{"ablation-overlap", "overlapped vs blocking prediction (§5.2)", AblationOverlap},
	{"ablation-kill", "kill threshold on vs off (§2.1)", AblationKill},
	{"ext-dynamic-target", "static vs dynamic y_target (§9 extension)", ExtDynamicTarget},
	{"ext-sha", "POP vs successive halving vs HyperBand (§8)", ExtSHAComparison},
	{"ext-utilization", "cluster utilization and training volume per policy", ExtUtilization},
	{"ext-calibration", "learning-curve prediction calibration", ExtCalibration},
}

// IDs lists registered figures in order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.ID
	}
	return out
}

// Describe returns a figure's one-line description.
func Describe(id string) string {
	for _, e := range registry {
		if e.ID == id {
			return e.Desc
		}
	}
	return ""
}

// Run regenerates one figure by ID.
func Run(id string, opts Options) (*Report, error) {
	for _, e := range registry {
		if e.ID == id {
			rep, err := e.Fn(opts)
			if err != nil {
				return nil, fmt.Errorf("figures: %s: %w", id, err)
			}
			if opts.OutDir != "" {
				if err := rep.WriteCSV(opts.OutDir); err != nil {
					return nil, fmt.Errorf("figures: %s: write csv: %w", id, err)
				}
			}
			return rep, nil
		}
	}
	return nil, fmt.Errorf("figures: unknown figure %q (have %v)", id, IDs())
}

// --- shared experiment plumbing ---------------------------------------

// litePredictor is the reduced MCMC budget used at fast scale.
func litePredictor() curve.Config {
	return curve.Config{Walkers: 12, Iters: 60, BurnFrac: 0.5, MaxSamples: 200, StretchA: 2, Seed: 1}
}

// predictorFor picks the curve budget by scale.
func predictorFor(o Options) curve.Config {
	if o.fast() {
		return litePredictor()
	}
	return curve.FastConfig()
}

// sampleConfigs draws n configurations from the workload's space.
func sampleConfigs(spec workload.Spec, n int, seed int64) []param.Config {
	rng := rand.New(rand.NewSource(seed))
	out := make([]param.Config, n)
	for i := range out {
		out[i] = spec.Space().Sample(rng)
	}
	return out
}

// collectTrace runs n random configurations to completion.
func collectTrace(spec workload.Spec, n int, cfgSeed, trainSeedBase int64) (*trace.Trace, error) {
	cfgs := sampleConfigs(spec, n, cfgSeed)
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = trainSeedBase + int64(i)
	}
	return trace.Collect(spec, cfgs, seeds)
}

// collectWinnerTrace retries configuration seeds until the trace
// contains at least minWinners target-reaching configurations, so
// time-to-target is well-defined (the paper's 100-config populations
// always contained winners).
func collectWinnerTrace(spec workload.Spec, n int, seed, trainSeedBase int64, minWinners int) (*trace.Trace, error) {
	for attempt := int64(0); attempt < 60; attempt++ {
		tr, err := collectTrace(spec, n, seed+attempt, trainSeedBase)
		if err != nil {
			return nil, err
		}
		if traceWinners(tr) >= minWinners {
			return tr, nil
		}
	}
	return nil, fmt.Errorf("figures: no %d-winner %s trace within 60 seeds", minWinners, spec.Name())
}

// traceWinners counts target-reaching jobs.
func traceWinners(tr *trace.Trace) int {
	w := 0
	for _, j := range tr.Jobs {
		for _, s := range j.Samples {
			if s.Metric >= tr.Target {
				w++
				break
			}
		}
	}
	return w
}

// buildPolicy constructs a fresh policy instance for a sim run.
func buildPolicy(name string, pred curve.Config) (policy.Policy, error) {
	switch name {
	case "pop":
		return policy.NewPOP(policy.POPOptions{Predictor: pred})
	case "bandit":
		return policy.NewBandit(policy.BanditOptions{})
	case "earlyterm":
		return policy.NewEarlyTerm(policy.EarlyTermOptions{Predictor: pred})
	case "default":
		return policy.NewDefault(), nil
	case "sha":
		return policy.NewSuccessiveHalving(policy.SHAOptions{})
	default:
		return nil, fmt.Errorf("figures: unknown policy %q", name)
	}
}

// timeToTarget replays tr under the named policy and returns the
// time-to-target result.
func timeToTarget(tr *trace.Trace, polName string, machines int, pred curve.Config) (*sim.Result, error) {
	pol, err := buildPolicy(polName, pred)
	if err != nil {
		return nil, err
	}
	return sim.Run(sim.Options{
		Trace:        tr,
		Machines:     machines,
		Policy:       pol,
		StopAtTarget: true,
	})
}

// fmtHours renders a duration in hours with 2 decimals.
func fmtHours(d time.Duration) string { return fmt.Sprintf("%.2f", d.Hours()) }

// median of a float slice (copy-safe).
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
