package figures

import (
	"fmt"

	"github.com/hyperdrive-ml/hyperdrive/internal/checkpoint"
	"github.com/hyperdrive-ml/hyperdrive/internal/sim"
	"github.com/hyperdrive-ml/hyperdrive/internal/stats"
	"github.com/hyperdrive-ml/hyperdrive/internal/workload"
)

// Fig8 regenerates Figure 8: reward of 15 randomly selected
// LunarLander configurations over 20,000 episode trials, exhibiting
// the "learning-crash" phenomenon and >50% non-learning population.
func Fig8(o Options) (*Report, error) {
	spec := workload.LunarLander()
	n := 15
	cfgs := sampleConfigs(spec, n, o.Seed+12)
	rep := &Report{
		ID:     "fig8",
		Title:  "reward vs episode trials, 15 LunarLander configs",
		Header: []string{"config", "trials", "reward"},
	}
	nonLearning, crashes := 0, 0
	for i, cfg := range cfgs {
		prof := workload.NewLunarLanderProfile(spec.Space(), cfg, int64(i))
		if !prof.Learns || prof.Crashes {
			nonLearning++
		}
		if prof.Learns && prof.Crashes {
			crashes++
		}
		tr := spec.New(cfg, int64(i))
		for {
			s, done := tr.Step()
			if s.Epoch%5 == 0 || s.Epoch == 1 || done {
				rep.AddRow(fmt.Sprintf("c%02d", i), s.Epoch*100, s.Metric)
			}
			if done {
				break
			}
		}
	}
	rep.Note("%d/%d configs non-learning overall (paper: over 50%%), %d of them learning-crashes", nonLearning, n, crashes)
	return rep, nil
}

// Fig9 regenerates Figure 9: boxplots of time to reach the solved
// condition (mean reward 200 over 100 consecutive trials) on 15
// machines. The paper: POP median 2.07x faster than Bandit and 1.26x
// faster than EarlyTerm, with far smaller variance.
func Fig9(o Options) (*Report, error) {
	return timeToTargetBoxes(o, "fig9", workload.LunarLander(), pick(o, 40, 100), 15, pick(o, 4, 5), o.Seed+13)
}

// Fig10 regenerates Figure 10: the CDFs of suspend latency and
// snapshot size for the RL workload under CRIU whole-process capture.
// The paper: size up to 43.75 MB, latency up to 22.36 s.
func Fig10(o Options) (*Report, error) {
	spec := workload.LunarLander()
	tr, err := collectWinnerTrace(spec, pick(o, 40, 100), o.Seed+14, 0, 1)
	if err != nil {
		return nil, err
	}
	capt, err := checkpoint.NewCapturer(checkpoint.CRIU, o.Seed+14)
	if err != nil {
		return nil, err
	}
	var acct checkpoint.Accounting
	pol, err := buildPolicy("pop", predictorFor(o))
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(sim.Options{
		Trace: tr, Machines: 15, Policy: pol,
		Checkpointer: capt, CheckpointAccounting: &acct,
	})
	if err != nil {
		return nil, err
	}
	rep := &Report{
		ID:     "fig10",
		Title:  "CRIU suspend latency and snapshot size distributions",
		Header: []string{"metric", "percentile", "value"},
	}
	lats := acct.Latencies()
	if len(lats) == 0 {
		rep.Note("no suspends occurred (%d suspends)", res.Suspends)
		return rep, nil
	}
	sizesMB := make([]float64, len(acct.Sizes()))
	for i, v := range acct.Sizes() {
		sizesMB[i] = v / 1024 / 1024
	}
	for p := 10; p <= 100; p += 10 {
		rep.AddRow("latency_s", p, stats.Percentile(lats, float64(p)))
		rep.AddRow("size_MB", p, stats.Percentile(sizesMB, float64(p)))
	}
	rep.Note("max latency %.2fs (paper <= 22.36s), max size %.2fMB (paper <= 43.75MB), %d suspends",
		stats.Percentile(lats, 100), stats.Percentile(sizesMB, 100), res.Suspends)
	return rep, nil
}
