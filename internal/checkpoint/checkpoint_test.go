package checkpoint

import (
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/stats"
)

func TestNewCapturerRejectsBadMode(t *testing.T) {
	if _, err := NewCapturer(Mode(0), 1); err == nil {
		t.Fatal("NewCapturer accepted invalid mode")
	}
}

func TestModeString(t *testing.T) {
	if Framework.String() != "framework" || CRIU.String() != "criu" {
		t.Fatal("bad mode strings")
	}
	if Mode(7).String() == "" {
		t.Fatal("unknown mode should render")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c, err := NewCapturer(Framework, 1)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte(`{"workload":"cifar10","epoch":37}`)
	img := c.Capture(payload)
	enc := img.Encode()
	if len(enc) != img.Size {
		t.Fatalf("encoded size %d != modeled size %d", len(enc), img.Size)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(payload) {
		t.Fatalf("payload corrupted: %q", got)
	}
}

func TestDecodeRejectsCorrupt(t *testing.T) {
	if _, err := Decode([]byte{1, 2}); err == nil {
		t.Fatal("Decode accepted short image")
	}
	// Header claims more payload than the image holds.
	bad := make([]byte, 16)
	bad[7] = 200
	if _, err := Decode(bad); err == nil {
		t.Fatal("Decode accepted lying header")
	}
}

func TestFrameworkDistribution(t *testing.T) {
	c, err := NewCapturer(Framework, 42)
	if err != nil {
		t.Fatal(err)
	}
	var sizes, lats []float64
	for i := 0; i < 2000; i++ {
		img := c.Capture([]byte("state"))
		sizes = append(sizes, float64(img.Size)/1024)   // KB
		lats = append(lats, img.Latency.Seconds()*1000) // ms
	}
	sizeSum, _ := stats.Summarize(sizes)
	latSum, _ := stats.Summarize(lats)
	t.Logf("size KB: mean=%.1f p95=%.1f max=%.1f; latency ms: mean=%.1f p95=%.1f max=%.1f",
		sizeSum.Mean, stats.Percentile(sizes, 95), sizeSum.Max,
		latSum.Mean, stats.Percentile(lats, 95), latSum.Max)
	// §6.2.3: mean size ~358 KB capped at ~686 KB; mean latency
	// ~158 ms with max ~1.12 s. Allow generous bands.
	if sizeSum.Mean < 250 || sizeSum.Mean > 470 {
		t.Errorf("mean snapshot size %.1f KB outside §6.2.3 band", sizeSum.Mean)
	}
	if sizeSum.Max > 687 {
		t.Errorf("max snapshot size %.1f KB exceeds cap", sizeSum.Max)
	}
	if latSum.Mean < 110 || latSum.Mean > 230 {
		t.Errorf("mean suspend latency %.1f ms outside §6.2.3 band (paper: 157.69)", latSum.Mean)
	}
	if latSum.Max > 1125 {
		t.Errorf("max suspend latency %.1f ms exceeds 1.12 s cap", latSum.Max)
	}
}

func TestCRIUDistribution(t *testing.T) {
	c, err := NewCapturer(CRIU, 42)
	if err != nil {
		t.Fatal(err)
	}
	var sizesMB, latsSec []float64
	for i := 0; i < 2000; i++ {
		img := c.Capture([]byte("state"))
		sizesMB = append(sizesMB, float64(img.Size)/1024/1024)
		latsSec = append(latsSec, img.Latency.Seconds())
	}
	sizeSum, _ := stats.Summarize(sizesMB)
	latSum, _ := stats.Summarize(latsSec)
	t.Logf("size MB: mean=%.1f max=%.2f; latency s: mean=%.1f max=%.2f",
		sizeSum.Mean, sizeSum.Max, latSum.Mean, latSum.Max)
	// §6.3.2: size does not exceed 43.75 MB, latency does not exceed
	// 22.36 s; both long-tailed.
	if sizeSum.Max > 43.75+1e-9 {
		t.Errorf("max CRIU image %.2f MB exceeds 43.75", sizeSum.Max)
	}
	if latSum.Max > 22.36+1e-9 {
		t.Errorf("max CRIU latency %.2f s exceeds 22.36", latSum.Max)
	}
	if sizeSum.Mean < 4 || sizeSum.Mean > 30 {
		t.Errorf("mean CRIU image %.1f MB implausible", sizeSum.Mean)
	}
}

func TestCaptureNeverSmallerThanPayload(t *testing.T) {
	c, _ := NewCapturer(Framework, 3)
	big := make([]byte, 2<<20)
	img := c.Capture(big)
	if img.Size < len(big)+8 {
		t.Fatalf("image size %d smaller than payload %d", img.Size, len(big))
	}
	dec, err := Decode(img.Encode())
	if err != nil || len(dec) != len(big) {
		t.Fatalf("big payload round trip failed: %v", err)
	}
}

func TestAccounting(t *testing.T) {
	var a Accounting
	a.Observe(Record{Size: 1024, Latency: 100 * time.Millisecond})
	a.Observe(Record{Size: 2048, Latency: 200 * time.Millisecond})
	if got := a.Records(); len(got) != 2 {
		t.Fatalf("records = %d", len(got))
	}
	sizes := a.Sizes()
	if len(sizes) != 2 || sizes[0] != 1024 {
		t.Fatalf("sizes = %v", sizes)
	}
	lats := a.Latencies()
	if len(lats) != 2 || lats[1] != 0.2 {
		t.Fatalf("latencies = %v", lats)
	}
}

func TestCapturerDeterministicPerSeed(t *testing.T) {
	a, _ := NewCapturer(CRIU, 5)
	b, _ := NewCapturer(CRIU, 5)
	ia, ib := a.Capture(nil), b.Capture(nil)
	if ia.Size != ib.Size || ia.Latency != ib.Latency {
		t.Fatal("same seed should give same capture model")
	}
}
