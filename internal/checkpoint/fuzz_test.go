package checkpoint

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzCheckpointDecode feeds arbitrary images to Decode. Invariants: no
// panic; an accepted payload fits inside the image minus the header;
// re-encoding the payload yields an image that decodes back to it.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})                       // too short
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}) // empty payload
	f.Add((Image{Payload: []byte("weights"), Size: 64}).Encode())
	lying := make([]byte, headerSize+4)
	binary.BigEndian.PutUint64(lying[:headerSize], 1<<40) // length exceeds image
	f.Add(lying)

	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := Decode(data)
		if err != nil {
			return
		}
		if len(payload) > len(data)-headerSize {
			t.Fatalf("decoded %d payload bytes from a %d-byte image", len(payload), len(data))
		}
		img := Image{Payload: payload, Size: len(payload) + headerSize}
		back, err := Decode(img.Encode())
		if err != nil {
			t.Fatalf("re-decode of re-encoded payload failed: %v", err)
		}
		if !bytes.Equal(back, payload) {
			t.Fatalf("round trip changed payload: %q != %q", back, payload)
		}
	})
}
