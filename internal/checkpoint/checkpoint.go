// Package checkpoint models the suspend/resume snapshot mechanism of
// HyperDrive (paper §5.1): capturing a training job's state so it can
// be resumed on any machine. Two capture modes mirror the paper's two
// deployments:
//
//   - Framework capture (supervised learning, §6.2.3): the learning
//     framework's own snapshot facility. Small images (~360 KB mean)
//     and low latency (~160 ms mean).
//   - CRIU capture (reinforcement learning, §6.3.2): whole-process
//     images for mixed Python/Theano state. Large images (up to
//     ~44 MB) and latencies up to ~22 s.
//
// Since the synthetic trainers' logical state is tiny, the captured
// image is padded to a realistic size drawn from the mode's
// distribution, and capture latency is modeled from a base cost plus a
// size-proportional transfer term — reproducing the distributions of
// Figure 10 and the summary statistics of §6.2.3. The real trainer
// state rides along, so restores are exact.
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// Mode selects the capture mechanism.
type Mode int

// Capture modes.
const (
	// Framework snapshots via the learning framework (small, fast).
	Framework Mode = iota + 1
	// CRIU whole-process snapshots (large, slow).
	CRIU
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case Framework:
		return "framework"
	case CRIU:
		return "criu"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Image is one captured snapshot.
type Image struct {
	Payload []byte        // real trainer state (restorable)
	Size    int           // total modeled image size in bytes
	Latency time.Duration // modeled capture latency
}

// errCorrupt reports an image that fails structural checks.
var errCorrupt = errors.New("checkpoint: corrupt image")

// Capturer produces snapshot images with realistic size and latency.
// Safe for concurrent use.
type Capturer struct {
	mode Mode

	mu  sync.Mutex
	rng *rand.Rand
}

// NewCapturer builds a Capturer for the mode; seed controls the size
// and latency jitter.
func NewCapturer(mode Mode, seed int64) (*Capturer, error) {
	if mode != Framework && mode != CRIU {
		return nil, fmt.Errorf("checkpoint: unknown mode %d", int(mode))
	}
	return &Capturer{mode: mode, rng: rand.New(rand.NewSource(seed))}, nil
}

// Mode returns the capture mode.
func (c *Capturer) Mode() Mode { return c.mode }

// Capture wraps the trainer payload into a snapshot image, modeling
// the mode's size and latency distributions.
func (c *Capturer) Capture(payload []byte) Image {
	c.mu.Lock()
	u := c.rng.Float64()
	g := c.rng.NormFloat64()
	c.mu.Unlock()

	var size int
	var latency time.Duration
	switch c.mode {
	case Framework:
		// §6.2.3: mean 357.67 KB, std 122.46 KB, p95 685 KB, capped
		// ~686 KB; latency mean 157.69 ms, std 72 ms, p95 219 ms,
		// max ~1.12 s.
		kb := 358 + 122*g
		kb = clampF(kb, 64, 686)
		size = int(kb * 1024)
		// Mean ~158ms with a tight body (p95 ~220ms) and a rare spike
		// toward the 1.12s max, per §6.2.3.
		ms := 85 + float64(size)/1024/8 + 25*math.Abs(g) + 1000*math.Pow(u, 40)
		latency = time.Duration(clampF(ms, 20, 1120)) * time.Millisecond
	case CRIU:
		// §6.3.2 / Figure 10: process images up to 43.75 MB, capture
		// latency up to 22.36 s. Long-tailed in both dimensions.
		mb := 6 + 30*u*u + 4*math.Abs(g)
		mb = clampF(mb, 2, 43.75)
		size = int(mb * 1024 * 1024)
		sec := 1.2 + mb/4 + 2.5*math.Abs(g)*u
		latency = time.Duration(clampF(sec, 0.3, 22.36) * float64(time.Second))
	}
	if size < len(payload)+headerSize {
		size = len(payload) + headerSize
	}
	return Image{Payload: append([]byte(nil), payload...), Size: size, Latency: latency}
}

const headerSize = 8

// Encode serializes an image into its padded on-wire form: an 8-byte
// payload-length header, the payload, and zero padding to the modeled
// size (standing in for the process pages a CRIU image would hold).
func (i Image) Encode() []byte {
	buf := make([]byte, i.Size)
	binary.BigEndian.PutUint64(buf[:headerSize], uint64(len(i.Payload)))
	copy(buf[headerSize:], i.Payload)
	return buf
}

// Decode extracts the trainer payload from an encoded image.
func Decode(b []byte) ([]byte, error) {
	if len(b) < headerSize {
		return nil, fmt.Errorf("%w: %d bytes", errCorrupt, len(b))
	}
	n := binary.BigEndian.Uint64(b[:headerSize])
	if n > uint64(len(b)-headerSize) {
		return nil, fmt.Errorf("%w: payload length %d exceeds image", errCorrupt, n)
	}
	return append([]byte(nil), b[headerSize:headerSize+n]...), nil
}

// Record is one capture observation kept for overhead accounting.
type Record struct {
	Size    int
	Latency time.Duration
}

// Accounting aggregates suspend overhead measurements (the data behind
// §6.2.3 and Figure 10). Safe for concurrent use.
type Accounting struct {
	mu      sync.Mutex
	records []Record
}

// Observe records one capture.
func (a *Accounting) Observe(r Record) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.records = append(a.records, r)
}

// Records returns a copy of all observations.
func (a *Accounting) Records() []Record {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Record(nil), a.records...)
}

// Sizes returns the observed sizes in bytes.
func (a *Accounting) Sizes() []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]float64, len(a.records))
	for i, r := range a.records {
		out[i] = float64(r.Size)
	}
	return out
}

// Latencies returns the observed latencies in seconds.
func (a *Accounting) Latencies() []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]float64, len(a.records))
	for i, r := range a.records {
		out[i] = r.Latency.Seconds()
	}
	return out
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
