package hypergen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"github.com/hyperdrive-ml/hyperdrive/internal/param"
)

// GPOptions configures the Gaussian-process generator.
type GPOptions struct {
	// Warmup random draws before the surrogate takes over; default 8.
	Warmup int
	// Candidates scored by expected improvement per draw; default 64.
	Candidates int
	// LengthScale of the RBF kernel on the normalized unit cube;
	// default 0.3.
	LengthScale float64
	// NoiseVar is the observation-noise variance; default 1e-3.
	NoiseVar float64
	// Xi is the EI exploration bonus; default 0.01.
	Xi float64
	// MaxHistory caps the conditioning set (newest observations kept)
	// to bound the O(n^3) Cholesky cost; default 128.
	MaxHistory int
}

// GP is a Bayesian-optimization Hyperparameter Generator: a Gaussian
// process with an RBF kernel over the normalized hyperparameter cube,
// proposing the candidate with maximal expected improvement. It is
// this repository's concrete instance of the adaptive (Bayesian
// optimization) generators the paper plugs into HyperDrive via a shim
// (§4.2: Spearmint, HyperOpt, GPyOpt).
type GP struct {
	mu      sync.Mutex
	space   *param.Space
	rng     *rand.Rand
	opts    GPOptions
	next    int
	limit   int
	configs map[string]param.Config
	xs      [][]float64 // normalized points
	ys      []float64   // observed performance
}

// NewGP builds the generator. limit bounds configurations (0 =
// unlimited).
func NewGP(space *param.Space, seed int64, limit int, opts GPOptions) (*GP, error) {
	if opts.Warmup == 0 {
		opts.Warmup = 8
	}
	if opts.Candidates == 0 {
		opts.Candidates = 64
	}
	if opts.LengthScale == 0 {
		opts.LengthScale = 0.3
	}
	if opts.NoiseVar == 0 {
		opts.NoiseVar = 1e-3
	}
	if opts.Xi == 0 {
		opts.Xi = 0.01
	}
	if opts.MaxHistory == 0 {
		opts.MaxHistory = 128
	}
	if opts.Warmup < 1 || opts.Candidates < 1 || opts.LengthScale <= 0 ||
		opts.NoiseVar <= 0 || opts.MaxHistory < 2 {
		return nil, fmt.Errorf("hypergen: invalid GP options %+v", opts)
	}
	return &GP{
		space:   space,
		rng:     rand.New(rand.NewSource(seed)),
		opts:    opts,
		limit:   limit,
		configs: make(map[string]param.Config),
	}, nil
}

// CreateJob implements Generator.
func (g *GP) CreateJob() (string, param.Config, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.limit > 0 && g.next >= g.limit {
		return "", nil, ErrExhausted
	}
	id := jobName("gp", g.next)
	g.next++

	var cfg param.Config
	if len(g.ys) < g.opts.Warmup {
		cfg = g.space.Sample(g.rng)
	} else {
		var err error
		cfg, err = g.propose()
		if err != nil {
			cfg = g.space.Sample(g.rng) // surrogate failure: fall back to random
		}
	}
	g.configs[id] = cfg
	return id, cfg.Clone(), nil
}

// ReportFinalPerformance implements Generator.
func (g *GP) ReportFinalPerformance(jobID string, perf float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	cfg, ok := g.configs[jobID]
	if !ok {
		return
	}
	g.xs = append(g.xs, g.normalize(cfg))
	g.ys = append(g.ys, perf)
	if len(g.ys) > g.opts.MaxHistory {
		g.xs = g.xs[len(g.xs)-g.opts.MaxHistory:]
		g.ys = g.ys[len(g.ys)-g.opts.MaxHistory:]
	}
}

// normalize maps a configuration onto the unit cube.
func (g *GP) normalize(cfg param.Config) []float64 {
	params := g.space.Params()
	x := make([]float64, len(params))
	for i, p := range params {
		x[i] = p.Normalize(cfg.Get(p.Name, 0))
	}
	return x
}

// propose scores random candidates by expected improvement under the
// GP posterior. Caller holds the lock.
func (g *GP) propose() (param.Config, error) {
	post, err := newGPPosterior(g.xs, g.ys, g.opts.LengthScale, g.opts.NoiseVar)
	if err != nil {
		return nil, err
	}
	ybest := math.Inf(-1)
	for _, y := range g.ys {
		if y > ybest {
			ybest = y
		}
	}
	var best param.Config
	bestEI := math.Inf(-1)
	for c := 0; c < g.opts.Candidates; c++ {
		cand := g.space.Sample(g.rng)
		mu, variance := post.predict(g.normalize(cand))
		ei := expectedImprovement(mu, variance, ybest, g.opts.Xi)
		if ei > bestEI {
			bestEI = ei
			best = cand
		}
	}
	if best == nil {
		return nil, errors.New("hypergen: no candidate scored")
	}
	return best, nil
}

// gpPosterior is a fitted GP (Cholesky factor + alpha weights).
type gpPosterior struct {
	xs     [][]float64
	lchol  [][]float64
	alpha  []float64
	ls     float64
	yMean  float64
	yScale float64
}

// newGPPosterior conditions a zero-mean RBF GP on (xs, ys) with
// standardized targets.
func newGPPosterior(xs [][]float64, ys []float64, lengthScale, noiseVar float64) (*gpPosterior, error) {
	n := len(xs)
	if n == 0 || n != len(ys) {
		return nil, fmt.Errorf("hypergen: gp needs matched observations, have %d/%d", len(xs), len(ys))
	}
	// Standardize targets for a stable prior scale.
	var mean float64
	for _, y := range ys {
		mean += y
	}
	mean /= float64(n)
	var ss float64
	for _, y := range ys {
		d := y - mean
		ss += d * d
	}
	scale := math.Sqrt(ss / float64(n))
	if scale < 1e-9 {
		scale = 1
	}
	yn := make([]float64, n)
	for i, y := range ys {
		yn[i] = (y - mean) / scale
	}

	// Kernel matrix with noise on the diagonal.
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := rbf(xs[i], xs[j], lengthScale)
			k[i][j] = v
			k[j][i] = v
		}
		k[i][i] += noiseVar
	}
	l, err := cholesky(k)
	if err != nil {
		return nil, err
	}
	alpha := choleskySolve(l, yn)
	return &gpPosterior{xs: xs, lchol: l, alpha: alpha, ls: lengthScale, yMean: mean, yScale: scale}, nil
}

// predict returns the posterior mean and variance at x (on the
// original target scale).
func (p *gpPosterior) predict(x []float64) (mu, variance float64) {
	n := len(p.xs)
	kstar := make([]float64, n)
	for i, xi := range p.xs {
		kstar[i] = rbf(x, xi, p.ls)
	}
	var m float64
	for i := range kstar {
		m += kstar[i] * p.alpha[i]
	}
	// v = L^-1 k*; variance = k(x,x) - v'v.
	v := forwardSolve(p.lchol, kstar)
	var vv float64
	for _, vi := range v {
		vv += vi * vi
	}
	variance = 1 - vv // k(x,x) = 1 for RBF
	if variance < 1e-12 {
		variance = 1e-12
	}
	mu = p.yMean + p.yScale*m
	variance *= p.yScale * p.yScale
	return mu, variance
}

// expectedImprovement is the standard EI acquisition for maximization.
func expectedImprovement(mu, variance, ybest, xi float64) float64 {
	sigma := math.Sqrt(variance)
	if sigma < 1e-12 {
		if mu > ybest+xi {
			return mu - ybest - xi
		}
		return 0
	}
	z := (mu - ybest - xi) / sigma
	return (mu-ybest-xi)*stdNormCDF(z) + sigma*stdNormPDF(z)
}

// rbf is the squared-exponential kernel with unit signal variance.
func rbf(a, b []float64, ls float64) float64 {
	var d2 float64
	for i := range a {
		d := a[i] - b[i]
		d2 += d * d
	}
	return math.Exp(-d2 / (2 * ls * ls))
}

// cholesky computes the lower-triangular factor of a symmetric
// positive-definite matrix.
func cholesky(a [][]float64) ([][]float64, error) {
	n := len(a)
	l := make([][]float64, n)
	for i := range l {
		l[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := a[i][j]
			for k := 0; k < j; k++ {
				sum -= l[i][k] * l[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("hypergen: matrix not positive definite at %d (%g)", i, sum)
				}
				l[i][i] = math.Sqrt(sum)
			} else {
				l[i][j] = sum / l[j][j]
			}
		}
	}
	return l, nil
}

// forwardSolve solves L z = b for lower-triangular L.
func forwardSolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	z := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= l[i][k] * z[k]
		}
		z[i] = sum / l[i][i]
	}
	return z
}

// choleskySolve solves (L L') x = b.
func choleskySolve(l [][]float64, b []float64) []float64 {
	n := len(b)
	z := forwardSolve(l, b)
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := z[i]
		for k := i + 1; k < n; k++ {
			sum -= l[k][i] * x[k]
		}
		x[i] = sum / l[i][i]
	}
	return x
}

func stdNormPDF(z float64) float64 {
	return math.Exp(-0.5*z*z) / math.Sqrt(2*math.Pi)
}

func stdNormCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}
