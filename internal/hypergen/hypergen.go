// Package hypergen implements the Hyperparameter Generator component of
// HyperDrive (paper §4.2, component ②): pluggable sources of candidate
// configurations behind the two-call API
//
//	createJob() -> (jobID, hyperparameters)
//	reportFinalPerformance(jobID, performance)
//
// Random and grid generation match the paper's built-ins; Adaptive is a
// lightweight density-ratio sampler standing in for the Bayesian
// optimization frameworks the paper plugs in through a shim.
package hypergen

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"

	"github.com/hyperdrive-ml/hyperdrive/internal/param"
)

// ErrExhausted is returned by CreateJob when a generator has no more
// configurations to offer (e.g., a fully enumerated grid).
var ErrExhausted = errors.New("hypergen: generator exhausted")

// Generator produces candidate configurations. Implementations must be
// safe for concurrent use.
type Generator interface {
	// CreateJob returns a fresh job ID and its configuration.
	CreateJob() (jobID string, cfg param.Config, err error)
	// ReportFinalPerformance feeds a finished configuration's final
	// metric back to adaptive generators; non-adaptive generators
	// ignore it.
	ReportFinalPerformance(jobID string, perf float64)
}

// jobName formats sequential job IDs.
func jobName(prefix string, n int) string { return fmt.Sprintf("%s-%03d", prefix, n) }

// Random samples configurations independently and uniformly from the
// space (log-uniformly on log-scaled axes).
type Random struct {
	mu    sync.Mutex
	space *param.Space
	rng   *rand.Rand
	next  int
	limit int // 0 = unlimited
}

// NewRandom builds a random-search generator. limit bounds the number
// of configurations (0 = unlimited); the paper's experiments use 100.
func NewRandom(space *param.Space, seed int64, limit int) *Random {
	return &Random{space: space, rng: rand.New(rand.NewSource(seed)), limit: limit}
}

// CreateJob implements Generator.
func (g *Random) CreateJob() (string, param.Config, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.limit > 0 && g.next >= g.limit {
		return "", nil, ErrExhausted
	}
	id := jobName("rand", g.next)
	g.next++
	return id, g.space.Sample(g.rng), nil
}

// ReportFinalPerformance implements Generator (no-op).
func (g *Random) ReportFinalPerformance(string, float64) {}

// Grid enumerates the cross-product grid in deterministic order.
type Grid struct {
	mu   sync.Mutex
	grid []param.Config
	next int
}

// NewGrid builds a grid-search generator with perAxis values per
// continuous axis.
func NewGrid(space *param.Space, perAxis int) *Grid {
	return &Grid{grid: space.Grid(perAxis)}
}

// Size returns the total number of grid points.
func (g *Grid) Size() int { return len(g.grid) }

// CreateJob implements Generator.
func (g *Grid) CreateJob() (string, param.Config, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.next >= len(g.grid) {
		return "", nil, ErrExhausted
	}
	id := jobName("grid", g.next)
	cfg := g.grid[g.next]
	g.next++
	return id, cfg, nil
}

// ReportFinalPerformance implements Generator (no-op).
func (g *Grid) ReportFinalPerformance(string, float64) {}

// Fixed replays a predetermined configuration list; the experiment
// harness uses it to hand every policy the identical configuration set
// in the identical order (§6.1 "the same set of hyperparameters ...
// with the same initial random seed").
type Fixed struct {
	mu   sync.Mutex
	cfgs []param.Config
	next int
}

// NewFixed builds a generator over an explicit configuration list.
func NewFixed(cfgs []param.Config) *Fixed {
	return &Fixed{cfgs: cfgs}
}

// CreateJob implements Generator.
func (g *Fixed) CreateJob() (string, param.Config, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.next >= len(g.cfgs) {
		return "", nil, ErrExhausted
	}
	id := jobName("job", g.next)
	cfg := g.cfgs[g.next].Clone()
	g.next++
	return id, cfg, nil
}

// ReportFinalPerformance implements Generator (no-op).
func (g *Fixed) ReportFinalPerformance(string, float64) {}

// Adaptive is a density-ratio sampler in the spirit of TPE: after a
// warmup of random draws it splits observed results into good/bad by
// performance quantile, draws candidates, and keeps the candidate with
// the highest good/bad kernel-density ratio. It stands in for the
// Bayesian-optimization generators (Hyperopt, Spearmint, GPyOpt) the
// paper integrates via a shim.
type Adaptive struct {
	mu         sync.Mutex
	space      *param.Space
	rng        *rand.Rand
	next       int
	limit      int
	warmup     int
	gamma      float64 // good-quantile fraction
	candidates int

	configs map[string]param.Config
	results []result
}

type result struct {
	cfg  param.Config
	perf float64
}

// NewAdaptive builds an adaptive generator. Warmup random draws happen
// before density guidance kicks in.
func NewAdaptive(space *param.Space, seed int64, limit int) *Adaptive {
	return &Adaptive{
		space:      space,
		rng:        rand.New(rand.NewSource(seed)),
		limit:      limit,
		warmup:     10,
		gamma:      0.25,
		candidates: 24,
		configs:    make(map[string]param.Config),
	}
}

// CreateJob implements Generator.
func (g *Adaptive) CreateJob() (string, param.Config, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.limit > 0 && g.next >= g.limit {
		return "", nil, ErrExhausted
	}
	id := jobName("adapt", g.next)
	g.next++

	var cfg param.Config
	if len(g.results) < g.warmup {
		cfg = g.space.Sample(g.rng)
	} else {
		cfg = g.guidedSample()
	}
	g.configs[id] = cfg
	return id, cfg.Clone(), nil
}

// ReportFinalPerformance implements Generator.
func (g *Adaptive) ReportFinalPerformance(jobID string, perf float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	cfg, ok := g.configs[jobID]
	if !ok {
		return
	}
	g.results = append(g.results, result{cfg: cfg, perf: perf})
}

// guidedSample draws candidates and keeps the best good/bad density
// ratio. Caller holds the lock.
func (g *Adaptive) guidedSample() param.Config {
	// Split results into good (top gamma fraction) and bad.
	sorted := append([]result(nil), g.results...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j].perf > sorted[j-1].perf; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	nGood := int(math.Ceil(g.gamma * float64(len(sorted))))
	if nGood < 2 {
		nGood = 2
	}
	if nGood > len(sorted) {
		nGood = len(sorted)
	}
	good, bad := sorted[:nGood], sorted[nGood:]
	if len(bad) == 0 {
		return g.space.Sample(g.rng)
	}

	bestScore := math.Inf(-1)
	var best param.Config
	for c := 0; c < g.candidates; c++ {
		cand := g.space.Sample(g.rng)
		score := g.logDensity(cand, good) - g.logDensity(cand, bad)
		if score > bestScore {
			bestScore = score
			best = cand
		}
	}
	return best
}

// logDensity is a product of per-axis Gaussian kernels over the
// normalized parameter values.
func (g *Adaptive) logDensity(cfg param.Config, rs []result) float64 {
	const bw = 0.15
	var ll float64
	for _, p := range g.space.Params() {
		x := p.Normalize(cfg.Get(p.Name, 0))
		var sum float64
		for _, r := range rs {
			d := (x - p.Normalize(r.cfg.Get(p.Name, 0))) / bw
			sum += math.Exp(-0.5 * d * d)
		}
		ll += math.Log(sum/float64(len(rs)) + 1e-12)
	}
	return ll
}
