package hypergen

import (
	"errors"
	"math"
	"sync"
	"testing"

	"github.com/hyperdrive-ml/hyperdrive/internal/param"
)

func smallSpace(t *testing.T) *param.Space {
	t.Helper()
	s, err := param.NewSpace(
		param.Param{Name: "x", Kind: param.Uniform, Min: 0, Max: 1},
		param.Param{Name: "y", Kind: param.LogUniform, Min: 1e-3, Max: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRandomGenerator(t *testing.T) {
	g := NewRandom(smallSpace(t), 1, 5)
	seen := make(map[string]bool)
	for i := 0; i < 5; i++ {
		id, cfg, err := g.CreateJob()
		if err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatalf("duplicate job id %s", id)
		}
		seen[id] = true
		if len(cfg) != 2 {
			t.Fatalf("config = %v", cfg)
		}
	}
	if _, _, err := g.CreateJob(); !errors.Is(err, ErrExhausted) {
		t.Fatalf("err = %v, want ErrExhausted at limit", err)
	}
	g.ReportFinalPerformance("rand-000", 0.5) // must not panic
}

func TestRandomDeterministicSeed(t *testing.T) {
	a := NewRandom(smallSpace(t), 9, 0)
	b := NewRandom(smallSpace(t), 9, 0)
	_, ca, _ := a.CreateJob()
	_, cb, _ := b.CreateJob()
	if ca.Key() != cb.Key() {
		t.Fatal("same seed produced different configs")
	}
}

func TestRandomUnlimited(t *testing.T) {
	g := NewRandom(smallSpace(t), 2, 0)
	for i := 0; i < 200; i++ {
		if _, _, err := g.CreateJob(); err != nil {
			t.Fatalf("unlimited generator exhausted at %d: %v", i, err)
		}
	}
}

func TestGridGenerator(t *testing.T) {
	g := NewGrid(smallSpace(t), 3)
	if g.Size() != 9 {
		t.Fatalf("grid size = %d, want 9", g.Size())
	}
	seen := make(map[string]bool)
	for i := 0; i < 9; i++ {
		_, cfg, err := g.CreateJob()
		if err != nil {
			t.Fatal(err)
		}
		if seen[cfg.Key()] {
			t.Fatalf("duplicate grid point %v", cfg)
		}
		seen[cfg.Key()] = true
	}
	if _, _, err := g.CreateJob(); !errors.Is(err, ErrExhausted) {
		t.Fatal("grid should exhaust")
	}
}

func TestFixedGenerator(t *testing.T) {
	cfgs := []param.Config{{"x": 0.1, "y": 0.01}, {"x": 0.9, "y": 0.5}}
	g := NewFixed(cfgs)
	id0, c0, err := g.CreateJob()
	if err != nil || id0 != "job-000" || c0.Key() != cfgs[0].Key() {
		t.Fatalf("first = %s %v %v", id0, c0, err)
	}
	// Mutating the returned config must not corrupt the source.
	c0["x"] = 42
	_, c1, _ := g.CreateJob()
	if c1.Key() != cfgs[1].Key() {
		t.Fatalf("second config = %v", c1)
	}
	if _, _, err := g.CreateJob(); !errors.Is(err, ErrExhausted) {
		t.Fatal("fixed should exhaust")
	}
	if cfgs[0]["x"] == 42 {
		t.Fatal("CreateJob leaked internal storage")
	}
}

func TestAdaptiveWarmupThenGuided(t *testing.T) {
	space := smallSpace(t)
	g := NewAdaptive(space, 3, 0)
	// Synthetic objective: best near x = 0.8.
	objective := func(cfg param.Config) float64 {
		d := cfg.Get("x", 0) - 0.8
		return 1 - d*d
	}
	for i := 0; i < 60; i++ {
		id, cfg, err := g.CreateJob()
		if err != nil {
			t.Fatal(err)
		}
		g.ReportFinalPerformance(id, objective(cfg))
	}
	// After guidance kicks in, draws should concentrate near the
	// optimum compared to uniform sampling.
	var guided []float64
	for i := 0; i < 40; i++ {
		id, cfg, err := g.CreateJob()
		if err != nil {
			t.Fatal(err)
		}
		guided = append(guided, cfg.Get("x", 0))
		g.ReportFinalPerformance(id, objective(cfg))
	}
	var meanDist float64
	for _, x := range guided {
		meanDist += math.Abs(x - 0.8)
	}
	meanDist /= float64(len(guided))
	// Uniform sampling would average ~0.34 distance from 0.8.
	if meanDist > 0.30 {
		t.Errorf("guided mean distance from optimum = %.3f, want < 0.30", meanDist)
	}
}

func TestAdaptiveLimit(t *testing.T) {
	g := NewAdaptive(smallSpace(t), 1, 3)
	for i := 0; i < 3; i++ {
		if _, _, err := g.CreateJob(); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := g.CreateJob(); !errors.Is(err, ErrExhausted) {
		t.Fatal("adaptive should respect limit")
	}
}

func TestAdaptiveIgnoresUnknownJob(t *testing.T) {
	g := NewAdaptive(smallSpace(t), 1, 0)
	g.ReportFinalPerformance("nope", 1.0) // must not panic
}

func TestGeneratorsConcurrentUse(t *testing.T) {
	g := NewRandom(smallSpace(t), 4, 0)
	var wg sync.WaitGroup
	ids := make(chan string, 100)
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id, _, err := g.CreateJob()
			if err != nil {
				t.Error(err)
				return
			}
			ids <- id
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[string]bool)
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate concurrent id %s", id)
		}
		seen[id] = true
	}
}
