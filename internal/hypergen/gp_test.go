package hypergen

import (
	"errors"
	"math"
	"testing"

	"github.com/hyperdrive-ml/hyperdrive/internal/param"
)

func TestGPOptionsValidation(t *testing.T) {
	space := smallSpaceForGP(t)
	if _, err := NewGP(space, 1, 0, GPOptions{LengthScale: -1}); err == nil {
		t.Fatal("accepted negative length scale")
	}
	if _, err := NewGP(space, 1, 0, GPOptions{NoiseVar: -1}); err == nil {
		t.Fatal("accepted negative noise")
	}
	if _, err := NewGP(space, 1, 0, GPOptions{}); err != nil {
		t.Fatal(err)
	}
}

func smallSpaceForGP(t *testing.T) *param.Space {
	t.Helper()
	s, err := param.NewSpace(
		param.Param{Name: "x", Kind: param.Uniform, Min: 0, Max: 1},
		param.Param{Name: "y", Kind: param.Uniform, Min: 0, Max: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCholeskyRoundTrip(t *testing.T) {
	// A = [[4,2],[2,3]]; L = [[2,0],[1,sqrt(2)]].
	a := [][]float64{{4, 2}, {2, 3}}
	l, err := cholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l[0][0]-2) > 1e-12 || math.Abs(l[1][0]-1) > 1e-12 ||
		math.Abs(l[1][1]-math.Sqrt(2)) > 1e-12 {
		t.Fatalf("L = %v", l)
	}
	// Solve A x = b for b = [8, 7]: x = [1.3, 1.466...]? Verify by
	// multiplying back.
	b := []float64{8, 7}
	x := choleskySolve(l, b)
	for i := range b {
		var got float64
		for j := range x {
			got += a[i][j] * x[j]
		}
		if math.Abs(got-b[i]) > 1e-9 {
			t.Fatalf("A x != b at %d: %v vs %v", i, got, b[i])
		}
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	if _, err := cholesky([][]float64{{1, 2}, {2, 1}}); err == nil {
		t.Fatal("accepted indefinite matrix")
	}
}

func TestGPPosteriorInterpolates(t *testing.T) {
	xs := [][]float64{{0.1, 0.1}, {0.5, 0.5}, {0.9, 0.9}}
	ys := []float64{0.2, 0.8, 0.3}
	post, err := newGPPosterior(xs, ys, 0.3, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		mu, variance := post.predict(x)
		if math.Abs(mu-ys[i]) > 0.05 {
			t.Fatalf("posterior mean at training point %d = %v, want ~%v", i, mu, ys[i])
		}
		if variance < 0 {
			t.Fatalf("negative variance %v", variance)
		}
	}
	// Far from data the posterior reverts toward the mean with larger
	// variance.
	_, varFar := post.predict([]float64{0.1, 0.9})
	_, varNear := post.predict(xs[1])
	if varFar <= varNear {
		t.Fatalf("variance should grow away from data: near=%v far=%v", varNear, varFar)
	}
}

func TestExpectedImprovement(t *testing.T) {
	// Well above the incumbent with small variance: EI ~ mu - ybest - xi.
	ei := expectedImprovement(1.0, 1e-8, 0.5, 0.01)
	if math.Abs(ei-0.49) > 1e-6 {
		t.Fatalf("EI = %v, want ~0.49", ei)
	}
	// Below the incumbent with no variance: zero.
	if ei := expectedImprovement(0.1, 1e-14, 0.5, 0.01); ei != 0 {
		t.Fatalf("EI = %v, want 0", ei)
	}
	// Uncertainty always buys non-negative EI.
	if ei := expectedImprovement(0.1, 0.2, 0.5, 0.01); ei <= 0 {
		t.Fatalf("EI = %v, want > 0 under uncertainty", ei)
	}
}

func TestGPGeneratorConvergesTowardOptimum(t *testing.T) {
	space := smallSpaceForGP(t)
	g, err := NewGP(space, 3, 0, GPOptions{Warmup: 8, Candidates: 48})
	if err != nil {
		t.Fatal(err)
	}
	objective := func(cfg param.Config) float64 {
		dx := cfg.Get("x", 0) - 0.7
		dy := cfg.Get("y", 0) - 0.3
		return 1 - (dx*dx + dy*dy)
	}
	for i := 0; i < 50; i++ {
		id, cfg, err := g.CreateJob()
		if err != nil {
			t.Fatal(err)
		}
		g.ReportFinalPerformance(id, objective(cfg))
	}
	// The last draws should concentrate near (0.7, 0.3).
	var dist float64
	const tail = 10
	for i := 0; i < tail; i++ {
		id, cfg, err := g.CreateJob()
		if err != nil {
			t.Fatal(err)
		}
		dx := cfg.Get("x", 0) - 0.7
		dy := cfg.Get("y", 0) - 0.3
		dist += math.Sqrt(dx*dx + dy*dy)
		g.ReportFinalPerformance(id, objective(cfg))
	}
	dist /= tail
	// Uniform sampling averages ~0.46 from (0.7, 0.3).
	if dist > 0.35 {
		t.Fatalf("GP draws average %.3f from the optimum, want < 0.35", dist)
	}
}

func TestGPGeneratorLimitAndUnknownJob(t *testing.T) {
	space := smallSpaceForGP(t)
	g, err := NewGP(space, 1, 2, GPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	g.ReportFinalPerformance("unknown", 1) // no panic
	for i := 0; i < 2; i++ {
		if _, _, err := g.CreateJob(); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := g.CreateJob(); !errors.Is(err, ErrExhausted) {
		t.Fatal("limit not enforced")
	}
}

func TestGPHistoryCap(t *testing.T) {
	space := smallSpaceForGP(t)
	g, err := NewGP(space, 1, 0, GPOptions{MaxHistory: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		id, cfg, err := g.CreateJob()
		if err != nil {
			t.Fatal(err)
		}
		g.ReportFinalPerformance(id, cfg.Get("x", 0))
	}
	if len(g.ys) != 5 || len(g.xs) != 5 {
		t.Fatalf("history = %d/%d, want capped at 5", len(g.xs), len(g.ys))
	}
}

func TestGPDegenerateIdenticalObservations(t *testing.T) {
	// All targets equal: standardization must not divide by zero.
	xs := [][]float64{{0.1, 0.1}, {0.9, 0.9}}
	ys := []float64{0.5, 0.5}
	post, err := newGPPosterior(xs, ys, 0.3, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	mu, _ := post.predict([]float64{0.5, 0.5})
	if math.IsNaN(mu) {
		t.Fatal("NaN posterior mean on flat targets")
	}
}
