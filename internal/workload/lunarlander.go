package workload

import (
	"math"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/param"
)

// LunarLander workload constants (§6.1, §6.3). One trainer epoch is a
// block of 100 episode trials reporting the block's mean reward — the
// same granularity as the task's "solved" condition (average reward of
// 200 over 100 consecutive trials). 200 blocks = the paper's 20,000
// episode trials; the 2,000-trial evaluation boundary is 20 blocks.
const (
	llMaxEpoch       = 200
	llTrialsPerEpoch = 100
	llEvalBoundary   = 20
	llTarget         = 200.0
	llKillThreshold  = -100.0
	llRandomFloor    = -100.0
	llRewardMin      = -500.0
	llRewardMax      = 300.0
)

type lunarLanderSpec struct {
	space *param.Space
}

// LunarLander returns the synthetic reinforcement-learning workload
// modeled on OpenAI Gym's LunarLander-v2. The generative model
// reproduces the behaviours of Figure 8: more than half of
// configurations are non-learning (never rising above the -100 crash
// floor, or "learning-crashing" back down to it after temporary
// progress), with only a small fraction reaching the solved condition.
func LunarLander() Spec {
	return &lunarLanderSpec{space: param.LunarLanderSpace()}
}

func (s *lunarLanderSpec) Name() string                  { return "lunarlander" }
func (s *lunarLanderSpec) Space() *param.Space           { return s.space }
func (s *lunarLanderSpec) Metric() MetricKind            { return Reward }
func (s *lunarLanderSpec) MetricRange() (lo, hi float64) { return llRewardMin, llRewardMax }
func (s *lunarLanderSpec) Target() float64               { return llTarget }
func (s *lunarLanderSpec) KillThreshold() float64        { return llKillThreshold }
func (s *lunarLanderSpec) RandomFloor() float64          { return llRandomFloor }
func (s *lunarLanderSpec) EvalBoundary() int             { return llEvalBoundary }
func (s *lunarLanderSpec) MaxEpoch() int                 { return llMaxEpoch }

func (s *lunarLanderSpec) New(cfg param.Config, seed int64) Trainer {
	p := NewLunarLanderProfile(s.space, cfg, seed)
	return &curveTrainer{
		workload: s.Name(),
		maxEpoch: llMaxEpoch,
		metricAt: p.RewardAt,
		durAt:    p.EpochDurationAt,
	}
}

// LunarLanderProfile is the latent outcome of training one LunarLander
// configuration.
type LunarLanderProfile struct {
	Learns    bool    // rises above the crash floor at all
	Crashes   bool    // "learning-crash": learns, then falls to the floor
	Peak      float64 // asymptotic mean reward if no crash
	Start     float64 // initial mean reward
	MidBlock  float64 // logistic midpoint (blocks)
	RiseWidth float64 // logistic width (blocks)
	CrashAt   int     // crash block (if Crashes)
	CrashTo   float64 // post-crash reward level
	Noise     float64 // per-block reward noise std
	EpochDur  time.Duration

	noise noiseSource
}

// NewLunarLanderProfile derives the latent training outcome for cfg
// under the given seed.
func NewLunarLanderProfile(space *param.Space, cfg param.Config, seed int64) *LunarLanderProfile {
	norm := func(name string) float64 {
		p, ok := space.Lookup(name)
		if !ok {
			return 0.5
		}
		return p.Normalize(cfg.Get(name, 0))
	}

	var (
		nlr    = norm("learning_rate")
		sLR    = gaussBump(nlr, 0.50, 0.22)
		sDisc  = gaussBump(cfg.Get("discount", 0.99), 0.99, 0.02)
		sEps   = gaussBump(norm("epsilon_decay"), 0.75, 0.35)
		sCap   = (norm("hidden1") + norm("hidden2")) / 2
		sRep   = gaussBump(norm("replay_size"), 0.65, 0.45)
		sTgt   = gaussBump(norm("target_update"), 0.40, 0.40)
		sScale = gaussBump(norm("reward_scale"), 0.50, 0.35)
	)
	score := 0.34*sLR + 0.16*sDisc + 0.12*sEps + 0.10*(0.3+0.7*sCap) +
		0.10*sRep + 0.10*sTgt + 0.08*sScale

	cfgNoise := newNoiseSource(cfg.Key(), seed, "lunarlander")
	luck := cfgNoise.uniform(1)

	p := &LunarLanderProfile{noise: cfgNoise}
	p.Noise = 8 + 20*cfgNoise.uniform(2)
	p.Start = -260 + 60*cfgNoise.uniform(3)

	// Per-trial wall time rises with network capacity and batch size;
	// a block is 100 trials. Calibrated to the paper's regime: a small
	// Keras/Theano agent steps a trial in a fraction of a second on a
	// c4.xlarge, so time-to-solved lands in the tens-of-minutes-to-
	// hours range of Figure 9.
	trialSec := 0.14 + 0.16*sCap + 0.05*norm("batch_size") + 0.03*cfgNoise.uniform(4)
	p.EpochDur = time.Duration(trialSec * llTrialsPerEpoch * float64(time.Second))

	// Never-learners: bad learning rates or hopeless score.
	p.Learns = sLR >= 0.08 && score >= 0.34
	if !p.Learns {
		return p
	}

	q := clamp01((score - 0.34) / 0.50)
	blend := clamp01(0.60*q + 0.40*luck)
	p.Peak = -80 + 370*math.Pow(blend, 1.15)
	p.Peak = math.Min(p.Peak, 285)
	// Learners escape the -100 crash floor early (a DQN quickly stops
	// crashing within the first one-to-two thousand trials) and then
	// grind toward their peak: parameterize by the floor-crossing
	// block and solve the logistic midpoint from it.
	crossAt := cfgNoise.uniformIn(5, 5, 18)
	p.RiseWidth = cfgNoise.uniformIn(6, 6, 30)
	f := (llRandomFloor - p.Start) / (p.Peak - p.Start)
	f = clampRange(f, 0.02, 0.85)
	p.MidBlock = crossAt - p.RiseWidth*math.Log(f/(1-f))
	if p.MidBlock < 3 {
		p.MidBlock = 3
	}

	// Learning-crash (Figure 8): instability grows with learning rate
	// and infrequent target updates. Crashed configurations fall to
	// the floor and stay there, making them non-learning in aggregate.
	instab := clamp01(0.30 + 0.55*clamp01((nlr-0.55)/0.45) + 0.35*(1-sTgt) - 0.45*q)
	p.Crashes = cfgNoise.uniform(7) < instab
	if p.Crashes {
		frac := cfgNoise.uniformIn(8, 0.25, 0.85)
		p.CrashAt = int(p.MidBlock + frac*float64(llMaxEpoch)*0.5)
		if p.CrashAt < 5 {
			p.CrashAt = 5
		}
		if p.CrashAt > llMaxEpoch-10 {
			p.CrashAt = llMaxEpoch - 10
		}
		p.CrashTo = cfgNoise.uniformIn(9, -170, -105)
	}
	return p
}

// RewardAt returns the mean reward of the given 1-based block of 100
// trials; a pure function of the profile.
func (p *LunarLanderProfile) RewardAt(epoch int) float64 {
	if epoch < 1 {
		epoch = 1
	}
	t := float64(epoch)
	var r float64
	switch {
	case !p.Learns:
		// Wander around the crash floor, staying at or below it on
		// average (Figure 8's flat lines near -100 and below).
		level := p.Start + (llRandomFloor-30-p.Start)*logistic((t-20)/10)
		r = level + p.Noise*p.noise.normal(uint64(epoch)+100)
	case p.Crashes && epoch >= p.CrashAt:
		pre := p.rewardRise(float64(p.CrashAt))
		decay := math.Exp(-(t - float64(p.CrashAt)) / 3.0)
		r = p.CrashTo + (pre-p.CrashTo)*decay + p.Noise*p.noise.normal(uint64(epoch)+100)
	default:
		r = p.rewardRise(t) + p.Noise*p.noise.normal(uint64(epoch)+100)
	}
	return clampRange(r, llRewardMin, llRewardMax)
}

// rewardRise is the noiseless logistic learning curve.
func (p *LunarLanderProfile) rewardRise(t float64) float64 {
	return p.Start + (p.Peak-p.Start)*logistic((t-p.MidBlock)/p.RiseWidth)
}

// EpochDurationAt returns the simulated duration of a block with ~3%
// jitter.
func (p *LunarLanderProfile) EpochDurationAt(epoch int) time.Duration {
	j := 1 + 0.03*p.noise.normal(uint64(epoch)+5000)
	if j < 0.5 {
		j = 0.5
	}
	return time.Duration(float64(p.EpochDur) * j)
}

// Solved reports whether a reward history (one entry per 100-trial
// block) has reached the environment's solved condition: a block mean
// of at least the target.
func Solved(history []float64, target float64) bool {
	for _, r := range history {
		if r >= target {
			return true
		}
	}
	return false
}
