package workload

import (
	"math"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/param"
)

// CIFAR-10 workload constants, chosen to mirror the paper's setup
// (§6.1-6.2): ~120 one-minute epochs per configuration, random accuracy
// 10%, kill threshold 15%, target accuracy 77%, evaluation boundary 10.
const (
	cifarMaxEpoch      = 120
	cifarEvalBoundary  = 10
	cifarTarget        = 0.77
	cifarKillThreshold = 0.15
	cifarRandomFloor   = 0.10
)

// cifar10Spec implements Spec for the supervised-learning workload.
type cifar10Spec struct {
	space *param.Space
}

// CIFAR10 returns the synthetic CIFAR-10 image-classification workload.
// The generative model is calibrated so random configurations reproduce
// the population statistics of the paper's Figures 1 and 2a: roughly a
// third of configurations never escape random accuracy, a small handful
// exceed 75%, and learning curves rise with heterogeneous rates so that
// slow-but-good configurations overtake fast-but-mediocre ones.
func CIFAR10() Spec {
	return &cifar10Spec{space: param.CIFAR10Space()}
}

func (s *cifar10Spec) Name() string                  { return "cifar10" }
func (s *cifar10Spec) Space() *param.Space           { return s.space }
func (s *cifar10Spec) Metric() MetricKind            { return Accuracy }
func (s *cifar10Spec) MetricRange() (lo, hi float64) { return 0, 1 }
func (s *cifar10Spec) Target() float64               { return cifarTarget }
func (s *cifar10Spec) KillThreshold() float64        { return cifarKillThreshold }
func (s *cifar10Spec) RandomFloor() float64          { return cifarRandomFloor }
func (s *cifar10Spec) EvalBoundary() int             { return cifarEvalBoundary }
func (s *cifar10Spec) MaxEpoch() int                 { return cifarMaxEpoch }

func (s *cifar10Spec) New(cfg param.Config, seed int64) Trainer {
	p := NewCIFAR10Profile(s.space, cfg, seed)
	return &curveTrainer{
		workload: s.Name(),
		maxEpoch: cifarMaxEpoch,
		metricAt: p.AccuracyAt,
		durAt:    p.EpochDurationAt,
	}
}

// CIFAR10Profile is the latent outcome of training one CIFAR-10
// configuration: whether it learns at all, the accuracy it converges to,
// how fast it gets there, and its epoch timing. It is exposed so the
// figure harness and calibration tests can inspect the population.
type CIFAR10Profile struct {
	Learnable bool    // false: stuck at random accuracy
	Floor     float64 // non-learner accuracy level
	Final     float64 // asymptotic validation accuracy
	Rate      float64 // 1/epochs time constant of the rise
	Shape     float64 // stretched-exponential shape (Janoschek delta)
	Noise     float64 // per-epoch accuracy noise std
	EpochDur  time.Duration

	noise noiseSource
}

// NewCIFAR10Profile derives the latent training outcome for cfg under
// the given training seed.
func NewCIFAR10Profile(space *param.Space, cfg param.Config, seed int64) *CIFAR10Profile {
	norm := func(name string) float64 {
		p, ok := space.Lookup(name)
		if !ok {
			return 0.5
		}
		return p.Normalize(cfg.Get(name, 0))
	}

	// Suitability scores in [0, 1] per hyperparameter group. The
	// learning rate dominates, as in real SGD training.
	var (
		nlr   = norm("learning_rate")
		sLR   = gaussBump(nlr, 0.62, 0.20)
		sMom  = gaussBump(cfg.Get("momentum", 0.9), 0.90, 0.45)
		sWD   = gaussBump(norm("weight_decay"), 0.45, 0.45)
		sInit = gaussBump(norm("init_std"), 0.67, 0.35)
		sDrop = gaussBump(cfg.Get("dropout", 0.2), 0.15, 0.55)
		sCap  = (norm("conv1_filters") + norm("conv2_filters") + norm("conv3_filters") + norm("fc_size")) / 4
		sBat  = gaussBump(norm("batch_size"), 0.35, 0.80)
	)
	score := 0.40*sLR + 0.14*sMom + 0.10*sWD + 0.12*sInit +
		0.09*sDrop + 0.10*(0.35+0.65*sCap) + 0.05*sBat

	cfgNoise := newNoiseSource(cfg.Key(), seed, "cifar10")
	luck := cfgNoise.uniform(1)

	p := &CIFAR10Profile{noise: cfgNoise}

	// Divergent learning rates (top of the log range) and hopeless
	// score regions never learn; this carves out the ~32% of
	// configurations the paper observes at or below random accuracy.
	p.Learnable = sLR >= 0.05 && nlr < 0.97 && score >= 0.33
	p.Floor = cifarRandomFloor + cfgNoise.uniformIn(2, -0.02, 0.02)
	p.Noise = 0.004 + 0.011*cfgNoise.uniform(3)

	// Epoch duration: ~1 minute, growing with model capacity and
	// shrinking batch size, constant per configuration up to a small
	// per-epoch jitter (§9 "Epoch durations").
	base := 42 + 22*sCap + 8*(1-norm("batch_size"))
	mult := cfgNoise.uniformIn(4, 0.90, 1.15)
	p.EpochDur = time.Duration(base * mult * float64(time.Second))

	if !p.Learnable {
		return p
	}

	// Final accuracy blends the suitability score with unmodelled
	// "luck" (interactions the score cannot see), then is shaped so
	// that only a few percent of configurations exceed 75%.
	q := clamp01((score - 0.33) / 0.42)
	blend := clamp01(0.58*q + 0.42*luck)
	p.Final = 0.10 + 0.76*math.Pow(blend, 1.35) + 0.015*cfgNoise.normal(5)
	p.Final = math.Min(math.Max(p.Final, p.Floor), 0.84)

	// Convergence speed: higher learning rates converge faster;
	// independent per-configuration variation makes speed only weakly
	// correlated with final accuracy, which produces the overtaking
	// behaviour of Figure 2b. The stretched-exponential shape
	// (delta < 1) gives the fast-start-long-tail profile real CIFAR-10
	// training shows: good configurations reach 40-60% accuracy within
	// ~10 epochs, then grind out the last points over 100+.
	speedLR := 0.6 + 0.9*clamp01((nlr-0.45)/0.4)
	p.Rate = 0.050 * speedLR * math.Exp(0.45*cfgNoise.normal(6))
	p.Rate = math.Min(math.Max(p.Rate, 0.012), 0.20)
	p.Shape = cfgNoise.uniformIn(7, 0.50, 0.90)
	return p
}

// AccuracyAt returns the validation accuracy after the given 1-based
// epoch. It is a pure function of the profile, so suspended and resumed
// runs observe identical curves.
func (p *CIFAR10Profile) AccuracyAt(epoch int) float64 {
	if epoch < 1 {
		epoch = 1
	}
	e := float64(epoch)
	var y float64
	if !p.Learnable {
		// Non-learners stay clearly below the 15% kill threshold: a
		// random-guessing model's validation accuracy wobbles by well
		// under a percentage point on a 10k-image validation set.
		y = p.Floor + 0.006*p.noise.normal(uint64(epoch)+100)
	} else {
		rise := 1 - math.Exp(-math.Pow(p.Rate*e, p.Shape))
		y = p.Floor + (p.Final-p.Floor)*rise + p.Noise*p.noise.normal(uint64(epoch)+100)
	}
	return clampRange(y, 0.01, 0.99)
}

// EpochDurationAt returns the simulated duration of the given epoch:
// the configuration's constant epoch time plus ~2% jitter.
func (p *CIFAR10Profile) EpochDurationAt(epoch int) time.Duration {
	j := 1 + 0.02*p.noise.normal(uint64(epoch)+5000)
	if j < 0.5 {
		j = 0.5
	}
	return time.Duration(float64(p.EpochDur) * j)
}

func clamp01(v float64) float64 { return clampRange(v, 0, 1) }

func clampRange(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
