// Package workload provides the synthetic training jobs that stand in
// for the paper's real ML workloads (a Caffe CNN on CIFAR-10 and a
// Keras/Theano LunarLander agent). The schedulers under study only ever
// observe streams of (epoch, metric, duration) samples, so a seeded
// generative model whose population statistics match the paper's
// (fraction of non-learners, achievable accuracy, overtaking curves,
// per-epoch noise, learning-crash behaviour) exercises exactly the same
// scheduling code paths. See DESIGN.md §2 for the substitution argument.
//
// Trainers are deterministic given (config, seed): per-epoch noise is
// derived from a counter-based hash rather than mutable RNG state, so a
// trainer suspended at epoch e and resumed elsewhere produces the same
// curve as an uninterrupted run — which the suspend/resume tests verify.
package workload

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/param"
)

// MetricKind distinguishes supervised accuracy from RL reward.
type MetricKind int

// Metric kinds.
const (
	Accuracy MetricKind = iota + 1
	Reward
)

// String returns the metric kind name.
func (k MetricKind) String() string {
	switch k {
	case Accuracy:
		return "accuracy"
	case Reward:
		return "reward"
	default:
		return fmt.Sprintf("metrickind(%d)", int(k))
	}
}

// Sample is one observation emitted by a trainer: the validation metric
// after an epoch together with the epoch's (simulated) duration.
type Sample struct {
	Epoch    int           // 1-based epoch index
	Metric   float64       // validation accuracy or mean reward
	Duration time.Duration // simulated training time for this epoch
}

// Trainer is a resumable synthetic training job.
type Trainer interface {
	// Workload returns the registry name of the spec that built this
	// trainer.
	Workload() string
	// Epoch returns the number of completed epochs.
	Epoch() int
	// MaxEpoch returns the epoch budget.
	MaxEpoch() int
	// Step trains one epoch and returns its sample; done is true when
	// the budget is exhausted after this step.
	Step() (s Sample, done bool)
	// Snapshot serializes resumable state.
	Snapshot() ([]byte, error)
	// Restore replaces the trainer state with a snapshot.
	Restore([]byte) error
}

// Spec describes a workload: its search space, domain knowledge used by
// the schedulers (targets, kill thresholds, boundaries), and a trainer
// factory.
type Spec interface {
	// Name is the registry key ("cifar10", "lunarlander").
	Name() string
	// Space returns the hyperparameter search space.
	Space() *param.Space
	// New builds a trainer for one configuration. Seed selects the
	// training non-determinism (the paper reruns experiments with
	// different seeds to average it out).
	New(cfg param.Config, seed int64) Trainer
	// Metric reports whether samples carry accuracy or reward.
	Metric() MetricKind
	// MetricRange returns the metric's (min, max) used for min-max
	// normalization (§6.3 Eq. 4). For accuracy this is (0, 1).
	MetricRange() (lo, hi float64)
	// Target is the default target performance y_target (§6.2.2: 77%
	// accuracy; §6.3.1: solved at reward 200).
	Target() float64
	// KillThreshold is the domain-knowledge "not learning" cutoff
	// (§5.3: 15% for CIFAR-10, -100 for LunarLander).
	KillThreshold() float64
	// RandomFloor is the metric value of a non-learning model (10%
	// random accuracy; -100 crash reward).
	RandomFloor() float64
	// EvalBoundary is the default iteration boundary b between policy
	// evaluations (§5.3: 10 epochs supervised, 2,000 trials RL — 20
	// blocks at 100 trials per block).
	EvalBoundary() int
	// MaxEpoch is the per-job epoch budget.
	MaxEpoch() int
}

// Registry maps workload names to specs so node agents can construct
// trainers from wire messages.
type Registry struct {
	specs map[string]Spec
}

// NewRegistry returns a registry preloaded with the built-in workloads.
func NewRegistry() *Registry {
	r := &Registry{specs: make(map[string]Spec)}
	r.Register(CIFAR10())
	r.Register(LunarLander())
	return r
}

// Register adds a spec, replacing any previous spec of the same name.
func (r *Registry) Register(s Spec) { r.specs[s.Name()] = s }

// Lookup returns the spec registered under name.
func (r *Registry) Lookup(name string) (Spec, error) {
	s, ok := r.specs[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q", name)
	}
	return s, nil
}

// Names lists registered workloads in sorted order.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.specs))
	for name := range r.specs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// --- deterministic counter-based noise -------------------------------

// splitmix64 advances the SplitMix64 generator; used as a stateless
// counter-based hash so per-epoch noise is a pure function of
// (config, seed, epoch).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hashString folds a string into a 64-bit seed (FNV-1a).
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// noiseSource yields deterministic uniform/normal variates indexed by a
// counter.
type noiseSource struct {
	base uint64
}

func newNoiseSource(configKey string, seed int64, stream string) noiseSource {
	h := hashString(configKey)
	h = splitmix64(h ^ uint64(seed))
	h = splitmix64(h ^ hashString(stream))
	return noiseSource{base: h}
}

// uniform returns u_i in [0, 1).
func (n noiseSource) uniform(i uint64) float64 {
	v := splitmix64(n.base + i*0x9e3779b97f4a7c15)
	return float64(v>>11) / float64(1<<53)
}

// normal returns a standard normal variate indexed by i (Box-Muller on
// two counter-derived uniforms).
func (n noiseSource) normal(i uint64) float64 {
	u1 := n.uniform(2 * i)
	u2 := n.uniform(2*i + 1)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// uniformIn maps the i-th uniform into [lo, hi).
func (n noiseSource) uniformIn(i uint64, lo, hi float64) float64 {
	return lo + n.uniform(i)*(hi-lo)
}

// --- shared trainer machinery ----------------------------------------

// curveTrainer is a Trainer whose metric at epoch e is a pure function
// metricAt(e); only the completed-epoch counter is mutable state.
type curveTrainer struct {
	workload string
	maxEpoch int
	epoch    int
	metricAt func(epoch int) float64
	durAt    func(epoch int) time.Duration
}

func (t *curveTrainer) Workload() string { return t.workload }
func (t *curveTrainer) Epoch() int       { return t.epoch }
func (t *curveTrainer) MaxEpoch() int    { return t.maxEpoch }

func (t *curveTrainer) Step() (Sample, bool) {
	if t.epoch >= t.maxEpoch {
		return Sample{Epoch: t.epoch, Metric: t.metricAt(t.epoch)}, true
	}
	t.epoch++
	s := Sample{
		Epoch:    t.epoch,
		Metric:   t.metricAt(t.epoch),
		Duration: t.durAt(t.epoch),
	}
	return s, t.epoch >= t.maxEpoch
}

// trainerState is the serialized form of a curveTrainer; because the
// curve is a pure function of (config, seed, epoch), the epoch counter
// is the entire resumable state — the analogue of the paper's model
// snapshot, whose bulk we account for separately in
// internal/checkpoint.
type trainerState struct {
	Workload string `json:"workload"`
	Epoch    int    `json:"epoch"`
}

func (t *curveTrainer) Snapshot() ([]byte, error) {
	return json.Marshal(trainerState{Workload: t.workload, Epoch: t.epoch})
}

func (t *curveTrainer) Restore(b []byte) error {
	var st trainerState
	if err := json.Unmarshal(b, &st); err != nil {
		return fmt.Errorf("workload: restore: %w", err)
	}
	if st.Workload != t.workload {
		return fmt.Errorf("workload: restore: snapshot for %q applied to %q", st.Workload, t.workload)
	}
	if st.Epoch < 0 || st.Epoch > t.maxEpoch {
		return fmt.Errorf("workload: restore: epoch %d out of [0, %d]", st.Epoch, t.maxEpoch)
	}
	t.epoch = st.Epoch
	return nil
}

// gaussBump scores how close x is to an ideal value on a unit scale:
// exp(-((x-ideal)/width)^2).
func gaussBump(x, ideal, width float64) float64 {
	d := (x - ideal) / width
	return math.Exp(-d * d)
}

// logistic is the standard logistic function.
func logistic(x float64) float64 { return 1 / (1 + math.Exp(-x)) }
