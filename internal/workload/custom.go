package workload

import (
	"fmt"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/param"
)

// CurveFunc derives a configuration's training behaviour: a pure
// metric function of the (1-based) epoch and a per-epoch duration
// function. Purity in the epoch makes the trainer's suspend/resume
// exact for free (the epoch counter is the entire state).
type CurveFunc func(cfg param.Config, seed int64) (metricAt func(epoch int) float64, durationAt func(epoch int) time.Duration)

// CustomOptions defines a user workload for NewCustom.
type CustomOptions struct {
	// Name is the registry key.
	Name string
	// Space is the hyperparameter search space.
	Space *param.Space
	// Metric is Accuracy or Reward.
	Metric MetricKind
	// MetricMin/MetricMax bound the metric for min-max normalization.
	MetricMin, MetricMax float64
	// Target is the default y_target.
	Target float64
	// KillThreshold is the non-learning cutoff.
	KillThreshold float64
	// RandomFloor is the non-learning metric level.
	RandomFloor float64
	// EvalBoundary is the default b between policy evaluations.
	EvalBoundary int
	// MaxEpoch is the per-job epoch budget.
	MaxEpoch int
	// Curve derives per-configuration behaviour.
	Curve CurveFunc
}

// customSpec implements Spec for user-defined workloads.
type customSpec struct {
	opts CustomOptions
}

// NewCustom builds a workload Spec from a curve function — the
// extension point for model owners bringing their own domains (§4.1
// "support different learning domains"). Register the result on a
// Registry and it is schedulable by every policy, runnable on node
// agents, traceable, and simulatable like the built-ins.
func NewCustom(opts CustomOptions) (Spec, error) {
	switch {
	case opts.Name == "":
		return nil, fmt.Errorf("workload: custom spec needs a name")
	case opts.Space == nil:
		return nil, fmt.Errorf("workload: custom spec %q needs a space", opts.Name)
	case opts.Curve == nil:
		return nil, fmt.Errorf("workload: custom spec %q needs a curve function", opts.Name)
	case opts.MaxEpoch < 1:
		return nil, fmt.Errorf("workload: custom spec %q needs a positive max epoch", opts.Name)
	case opts.MetricMax <= opts.MetricMin:
		return nil, fmt.Errorf("workload: custom spec %q needs MetricMax > MetricMin", opts.Name)
	}
	if opts.Metric == 0 {
		opts.Metric = Accuracy
	}
	if opts.EvalBoundary < 1 {
		opts.EvalBoundary = 1
	}
	return &customSpec{opts: opts}, nil
}

func (s *customSpec) Name() string                  { return s.opts.Name }
func (s *customSpec) Space() *param.Space           { return s.opts.Space }
func (s *customSpec) Metric() MetricKind            { return s.opts.Metric }
func (s *customSpec) MetricRange() (lo, hi float64) { return s.opts.MetricMin, s.opts.MetricMax }
func (s *customSpec) Target() float64               { return s.opts.Target }
func (s *customSpec) KillThreshold() float64        { return s.opts.KillThreshold }
func (s *customSpec) RandomFloor() float64          { return s.opts.RandomFloor }
func (s *customSpec) EvalBoundary() int             { return s.opts.EvalBoundary }
func (s *customSpec) MaxEpoch() int                 { return s.opts.MaxEpoch }

func (s *customSpec) New(cfg param.Config, seed int64) Trainer {
	metricAt, durAt := s.opts.Curve(cfg, seed)
	return &curveTrainer{
		workload: s.opts.Name,
		maxEpoch: s.opts.MaxEpoch,
		metricAt: metricAt,
		durAt:    durAt,
	}
}

var _ Spec = (*customSpec)(nil)
