package workload

import (
	"math/rand"
	"testing"
	"time"

	"github.com/hyperdrive-ml/hyperdrive/internal/param"
)

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	names := r.Names()
	if len(names) != 2 || names[0] != "cifar10" || names[1] != "lunarlander" {
		t.Fatalf("Names = %v", names)
	}
	if _, err := r.Lookup("cifar10"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Lookup("mnist"); err == nil {
		t.Fatal("Lookup of unknown workload should fail")
	}
}

func TestRegistryRegisterReplaces(t *testing.T) {
	r := NewRegistry()
	r.Register(CIFAR10())
	if len(r.Names()) != 2 {
		t.Fatalf("re-registering should not duplicate: %v", r.Names())
	}
}

func TestMetricKindString(t *testing.T) {
	if Accuracy.String() != "accuracy" || Reward.String() != "reward" {
		t.Fatal("bad MetricKind strings")
	}
	if MetricKind(9).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestSpecConstants(t *testing.T) {
	c := CIFAR10()
	if c.MaxEpoch() != 120 || c.EvalBoundary() != 10 || c.Target() != 0.77 ||
		c.KillThreshold() != 0.15 || c.RandomFloor() != 0.10 {
		t.Fatal("CIFAR10 constants do not match paper §5.3/§6")
	}
	lo, hi := c.MetricRange()
	if lo != 0 || hi != 1 {
		t.Fatalf("CIFAR10 metric range = (%v, %v)", lo, hi)
	}
	l := LunarLander()
	if l.MaxEpoch() != 200 || l.EvalBoundary() != 20 || l.Target() != 200 ||
		l.KillThreshold() != -100 || l.RandomFloor() != -100 {
		t.Fatal("LunarLander constants do not match paper §5.3/§6.3")
	}
	lo, hi = l.MetricRange()
	if lo != -500 || hi != 300 {
		t.Fatalf("LunarLander metric range = (%v, %v), want (-500, 300) per Eq. 4", lo, hi)
	}
}

func runAll(t *testing.T, tr Trainer) []Sample {
	t.Helper()
	var out []Sample
	for {
		s, done := tr.Step()
		out = append(out, s)
		if done {
			return out
		}
	}
}

func TestTrainerDeterminism(t *testing.T) {
	for _, spec := range []Spec{CIFAR10(), LunarLander()} {
		t.Run(spec.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			cfg := spec.Space().Sample(rng)
			a := runAll(t, spec.New(cfg, 7))
			b := runAll(t, spec.New(cfg, 7))
			if len(a) != len(b) || len(a) != spec.MaxEpoch() {
				t.Fatalf("lengths %d vs %d, want %d", len(a), len(b), spec.MaxEpoch())
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("sample %d differs: %+v vs %+v", i, a[i], b[i])
				}
			}
		})
	}
}

func TestTrainerSeedChangesCurve(t *testing.T) {
	spec := CIFAR10()
	rng := rand.New(rand.NewSource(42))
	cfg := spec.Space().Sample(rng)
	a := runAll(t, spec.New(cfg, 1))
	b := runAll(t, spec.New(cfg, 2))
	same := true
	for i := range a {
		if a[i].Metric != b[i].Metric {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical curves")
	}
}

func TestSuspendResumeEquivalence(t *testing.T) {
	for _, spec := range []Spec{CIFAR10(), LunarLander()} {
		t.Run(spec.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(9))
			cfg := spec.Space().Sample(rng)
			straight := runAll(t, spec.New(cfg, 3))

			tr := spec.New(cfg, 3)
			var resumed []Sample
			for i := 0; i < 30; i++ {
				s, _ := tr.Step()
				resumed = append(resumed, s)
			}
			snap, err := tr.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			// Resume on a "different machine": a fresh trainer.
			tr2 := spec.New(cfg, 3)
			if err := tr2.Restore(snap); err != nil {
				t.Fatal(err)
			}
			if tr2.Epoch() != 30 {
				t.Fatalf("restored epoch = %d, want 30", tr2.Epoch())
			}
			for {
				s, done := tr2.Step()
				resumed = append(resumed, s)
				if done {
					break
				}
			}
			if len(resumed) != len(straight) {
				t.Fatalf("resumed run has %d samples, want %d", len(resumed), len(straight))
			}
			for i := range straight {
				if resumed[i] != straight[i] {
					t.Fatalf("sample %d differs after resume: %+v vs %+v", i, resumed[i], straight[i])
				}
			}
		})
	}
}

func TestRestoreRejectsWrongWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ctr := CIFAR10().New(param.CIFAR10Space().Sample(rng), 1)
	ltr := LunarLander().New(param.LunarLanderSpace().Sample(rng), 1)
	snap, err := ltr.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := ctr.Restore(snap); err == nil {
		t.Fatal("Restore accepted snapshot from another workload")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr := CIFAR10().New(param.CIFAR10Space().Sample(rng), 1)
	if err := tr.Restore([]byte("not json")); err == nil {
		t.Fatal("Restore accepted garbage")
	}
	if err := tr.Restore([]byte(`{"workload":"cifar10","epoch":-4}`)); err == nil {
		t.Fatal("Restore accepted negative epoch")
	}
	if err := tr.Restore([]byte(`{"workload":"cifar10","epoch":100000}`)); err == nil {
		t.Fatal("Restore accepted epoch past budget")
	}
}

func TestStepAfterDone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	spec := CIFAR10()
	tr := spec.New(spec.Space().Sample(rng), 1)
	runAll(t, tr)
	s, done := tr.Step()
	if !done || s.Epoch != spec.MaxEpoch() {
		t.Fatalf("Step after done = (%+v, %v)", s, done)
	}
}

func TestCIFARMetricBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	spec := CIFAR10()
	for i := 0; i < 50; i++ {
		cfg := spec.Space().Sample(rng)
		for _, s := range runAll(t, spec.New(cfg, int64(i))) {
			if s.Metric < 0.01 || s.Metric > 0.99 {
				t.Fatalf("accuracy %v out of bounds", s.Metric)
			}
			if s.Duration <= 0 {
				t.Fatalf("non-positive epoch duration %v", s.Duration)
			}
		}
	}
}

func TestLunarLanderMetricBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	spec := LunarLander()
	for i := 0; i < 30; i++ {
		cfg := spec.Space().Sample(rng)
		for _, s := range runAll(t, spec.New(cfg, int64(i))) {
			if s.Metric < -500 || s.Metric > 300 {
				t.Fatalf("reward %v out of [-500, 300]", s.Metric)
			}
		}
	}
}

func TestCIFAREpochDurationRoughlyConstant(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	spec := CIFAR10()
	cfg := spec.Space().Sample(rng)
	samples := runAll(t, spec.New(cfg, 1))
	var min, max time.Duration = samples[0].Duration, samples[0].Duration
	for _, s := range samples {
		if s.Duration < min {
			min = s.Duration
		}
		if s.Duration > max {
			max = s.Duration
		}
	}
	if float64(max-min)/float64(min) > 0.30 {
		t.Fatalf("epoch durations vary too much: min %v max %v", min, max)
	}
	if min < 20*time.Second || max > 150*time.Second {
		t.Fatalf("epoch duration %v..%v outside the ~1 minute regime", min, max)
	}
}

// TestCIFARPopulation checks the generative model against the paper's
// population statistics (Figures 1 and 2a): roughly a third of random
// configurations are stuck at random accuracy, only a few percent reach
// 75%+, and the target accuracy of 77% is attainable but rare.
func TestCIFARPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(2017))
	space := param.CIFAR10Space()
	const n = 2000
	poor, ge75, geTarget := 0, 0, 0
	maxFinal := 0.0
	for i := 0; i < n; i++ {
		cfg := space.Sample(rng)
		p := NewCIFAR10Profile(space, cfg, int64(i))
		final := p.Final
		if !p.Learnable {
			final = p.Floor
		}
		if final <= 0.13 {
			poor++
		}
		if final >= 0.75 {
			ge75++
		}
		if final >= cifarTarget {
			geTarget++
		}
		if final > maxFinal {
			maxFinal = final
		}
	}
	poorFrac := float64(poor) / n
	ge75Frac := float64(ge75) / n
	targetFrac := float64(geTarget) / n
	t.Logf("poor=%.3f ge75=%.3f geTarget=%.3f max=%.3f", poorFrac, ge75Frac, targetFrac, maxFinal)
	if poorFrac < 0.20 || poorFrac > 0.45 {
		t.Errorf("poor fraction = %.3f, want ~0.32 (paper §2.1)", poorFrac)
	}
	if ge75Frac < 0.01 || ge75Frac > 0.15 {
		t.Errorf(">=75%% fraction = %.3f, want a few percent (Figure 1)", ge75Frac)
	}
	if targetFrac < 0.005 {
		t.Errorf("target accuracy unreachable: fraction = %.4f", targetFrac)
	}
	if maxFinal > 0.85 {
		t.Errorf("max accuracy %.3f exceeds the plausible ceiling for this model", maxFinal)
	}
}

// TestLunarLanderPopulation checks the RL population against §6.3:
// over 50% of jobs are non-learning (including learning-crashes), and
// only a modest fraction ever solves the task.
func TestLunarLanderPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(2018))
	space := param.LunarLanderSpace()
	const n = 1500
	nonLearning, solved := 0, 0
	for i := 0; i < n; i++ {
		cfg := space.Sample(rng)
		p := NewLunarLanderProfile(space, cfg, int64(i))
		if !p.Learns || p.Crashes {
			nonLearning++
		}
		if p.Learns && !p.Crashes && p.Peak >= llTarget+15 {
			solved++
		}
	}
	nlFrac := float64(nonLearning) / n
	solvedFrac := float64(solved) / n
	t.Logf("nonlearning=%.3f solvable=%.3f", nlFrac, solvedFrac)
	if nlFrac < 0.50 || nlFrac > 0.85 {
		t.Errorf("non-learning fraction = %.3f, want >50%% (paper §6.3)", nlFrac)
	}
	if solvedFrac < 0.02 || solvedFrac > 0.30 {
		t.Errorf("solvable fraction = %.3f, want small but nonzero", solvedFrac)
	}
}

func TestLunarLanderCrashStaysDown(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	space := param.LunarLanderSpace()
	spec := LunarLander()
	found := false
	for i := 0; i < 300 && !found; i++ {
		cfg := space.Sample(rng)
		p := NewLunarLanderProfile(space, cfg, int64(i))
		if !p.Learns || !p.Crashes || p.CrashAt > 150 {
			continue
		}
		found = true
		samples := runAll(t, spec.New(cfg, int64(i)))
		// After the crash settles, rewards must hover at or below the
		// non-learning floor (Figure 8's "learning-crash").
		var post []float64
		for _, s := range samples[p.CrashAt+20:] {
			post = append(post, s.Metric)
		}
		var sum float64
		for _, v := range post {
			sum += v
		}
		if mean := sum / float64(len(post)); mean > llKillThreshold+40 {
			t.Fatalf("post-crash mean reward %.1f, want near the floor", mean)
		}
	}
	if !found {
		t.Fatal("no crashing configuration found in 300 samples")
	}
}

// TestCIFAROvertake verifies Figure 2b's behaviour exists in the
// population: a configuration leading at epoch 20 is overtaken by the
// eventual winner.
func TestCIFAROvertake(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	space := param.CIFAR10Space()
	type run struct{ early, final float64 }
	var runs []run
	for i := 0; i < 80; i++ {
		cfg := space.Sample(rng)
		p := NewCIFAR10Profile(space, cfg, int64(i))
		if !p.Learnable {
			continue
		}
		runs = append(runs, run{early: p.AccuracyAt(20), final: p.AccuracyAt(120)})
	}
	overtake := false
	for i := range runs {
		for j := range runs {
			if runs[i].early > runs[j].early+0.03 && runs[j].final > runs[i].final+0.03 {
				overtake = true
			}
		}
	}
	if !overtake {
		t.Fatal("no overtaking pair among 80 configurations (Figure 2b behaviour missing)")
	}
}

func TestCIFARNonLearnerStaysAtFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	space := param.CIFAR10Space()
	spec := CIFAR10()
	checked := 0
	for i := 0; i < 200 && checked < 5; i++ {
		cfg := space.Sample(rng)
		p := NewCIFAR10Profile(space, cfg, int64(i))
		if p.Learnable {
			continue
		}
		checked++
		for _, s := range runAll(t, spec.New(cfg, int64(i))) {
			if s.Metric > cifarKillThreshold+0.05 {
				t.Fatalf("non-learner reached %.3f at epoch %d", s.Metric, s.Epoch)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no non-learners found")
	}
}

func TestSolvedHelper(t *testing.T) {
	if Solved([]float64{100, 150}, 200) {
		t.Fatal("Solved should be false below target")
	}
	if !Solved([]float64{100, 210}, 200) {
		t.Fatal("Solved should be true at target")
	}
}

func TestNoiseSourceDeterministicStreams(t *testing.T) {
	a := newNoiseSource("cfg", 1, "s")
	b := newNoiseSource("cfg", 1, "s")
	if a.uniform(5) != b.uniform(5) || a.normal(9) != b.normal(9) {
		t.Fatal("noise source not deterministic")
	}
	c := newNoiseSource("cfg", 2, "s")
	if a.uniform(5) == c.uniform(5) {
		t.Fatal("different seeds should change the stream")
	}
	d := newNoiseSource("cfg", 1, "other")
	if a.uniform(5) == d.uniform(5) {
		t.Fatal("different stream labels should change the stream")
	}
}

func TestNoiseUniformBounds(t *testing.T) {
	n := newNoiseSource("x", 3, "u")
	for i := uint64(0); i < 10000; i++ {
		u := n.uniform(i)
		if u < 0 || u >= 1 {
			t.Fatalf("uniform(%d) = %v", i, u)
		}
	}
}

func customTestSpec(t *testing.T) Spec {
	t.Helper()
	space := param.MustSpace(param.Param{Name: "k", Kind: param.Uniform, Min: 0.01, Max: 0.2})
	spec, err := NewCustom(CustomOptions{
		Name:          "toy",
		Space:         space,
		Metric:        Accuracy,
		MetricMin:     0,
		MetricMax:     1,
		Target:        0.9,
		KillThreshold: 0.1,
		RandomFloor:   0.05,
		EvalBoundary:  5,
		MaxEpoch:      50,
		Curve: func(cfg param.Config, seed int64) (func(int) float64, func(int) time.Duration) {
			k := cfg.Get("k", 0.1)
			return func(e int) float64 {
					return 1 - 1/(1+k*float64(e))
				}, func(int) time.Duration {
					return 10 * time.Second
				}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestCustomSpecValidation(t *testing.T) {
	space := param.MustSpace(param.Param{Name: "k", Kind: param.Uniform, Min: 0, Max: 1})
	curve := func(param.Config, int64) (func(int) float64, func(int) time.Duration) {
		return func(int) float64 { return 0 }, func(int) time.Duration { return time.Second }
	}
	bad := []CustomOptions{
		{Space: space, Curve: curve, MaxEpoch: 10, MetricMax: 1},                          // no name
		{Name: "x", Curve: curve, MaxEpoch: 10, MetricMax: 1},                             // no space
		{Name: "x", Space: space, MaxEpoch: 10, MetricMax: 1},                             // no curve
		{Name: "x", Space: space, Curve: curve, MetricMax: 1},                             // no max epoch
		{Name: "x", Space: space, Curve: curve, MaxEpoch: 10},                             // degenerate range
		{Name: "x", Space: space, Curve: curve, MaxEpoch: 10, MetricMin: 2, MetricMax: 1}, // inverted
	}
	for i, opts := range bad {
		if _, err := NewCustom(opts); err == nil {
			t.Errorf("case %d: accepted invalid options", i)
		}
	}
}

func TestCustomSpecEndToEnd(t *testing.T) {
	spec := customTestSpec(t)
	reg := NewRegistry()
	reg.Register(spec)
	if _, err := reg.Lookup("toy"); err != nil {
		t.Fatal(err)
	}
	tr := spec.New(param.Config{"k": 0.1}, 3)
	var samples []Sample
	for {
		s, done := tr.Step()
		samples = append(samples, s)
		if done {
			break
		}
	}
	if len(samples) != 50 {
		t.Fatalf("samples = %d", len(samples))
	}
	// Deterministic logistic-ish rise: monotone increasing.
	for i := 1; i < len(samples); i++ {
		if samples[i].Metric <= samples[i-1].Metric {
			t.Fatalf("custom curve not monotone at %d", i)
		}
	}
	// Suspend/resume still exact.
	tr2 := spec.New(param.Config{"k": 0.1}, 3)
	for i := 0; i < 20; i++ {
		tr2.Step()
	}
	snap, err := tr2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	tr3 := spec.New(param.Config{"k": 0.1}, 3)
	if err := tr3.Restore(snap); err != nil {
		t.Fatal(err)
	}
	s, _ := tr3.Step()
	if s.Epoch != 21 || s.Metric != samples[20].Metric {
		t.Fatalf("resume mismatch: %+v vs %+v", s, samples[20])
	}
}

func TestCustomSpecDefaults(t *testing.T) {
	space := param.MustSpace(param.Param{Name: "k", Kind: param.Uniform, Min: 0, Max: 1})
	spec, err := NewCustom(CustomOptions{
		Name: "d", Space: space, MaxEpoch: 5, MetricMax: 1,
		Curve: func(param.Config, int64) (func(int) float64, func(int) time.Duration) {
			return func(int) float64 { return 0.5 }, func(int) time.Duration { return time.Second }
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if spec.Metric() != Accuracy || spec.EvalBoundary() != 1 {
		t.Fatalf("defaults not applied: %v %v", spec.Metric(), spec.EvalBoundary())
	}
}
