package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestCIFARProfileProperties property-tests the generative model over
// random configurations and seeds: finite bounded outputs, valid
// shapes, determinism.
func TestCIFARProfileProperties(t *testing.T) {
	space := CIFAR10().Space()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := space.Sample(rng)
		p := NewCIFAR10Profile(space, cfg, seed)
		q := NewCIFAR10Profile(space, cfg, seed)
		// Deterministic derivation.
		if p.Learnable != q.Learnable || p.Final != q.Final || p.Rate != q.Rate {
			return false
		}
		if p.Floor < 0.05 || p.Floor > 0.14 {
			return false
		}
		if p.EpochDur < 20*time.Second || p.EpochDur > 150*time.Second {
			return false
		}
		if p.Learnable {
			if p.Final < p.Floor || p.Final > 0.85 {
				return false
			}
			if p.Rate <= 0 || p.Shape <= 0 {
				return false
			}
		}
		// Curve values stay on the metric scale at every epoch.
		for _, e := range []int{1, 7, 33, 120} {
			v := p.AccuracyAt(e)
			if math.IsNaN(v) || v < 0.01 || v > 0.99 {
				return false
			}
			if p.EpochDurationAt(e) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLunarLanderProfileProperties is the RL counterpart.
func TestLunarLanderProfileProperties(t *testing.T) {
	space := LunarLander().Space()
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := space.Sample(rng)
		p := NewLunarLanderProfile(space, cfg, seed)
		if p.Crashes && !p.Learns {
			return false // only learners can learning-crash
		}
		if p.Learns {
			if p.Peak < -100 || p.Peak > 285 {
				return false
			}
			if p.RiseWidth <= 0 || p.MidBlock <= 0 {
				return false
			}
			if p.Crashes && (p.CrashAt < 5 || p.CrashAt > 190 || p.CrashTo > -100) {
				return false
			}
		}
		for _, e := range []int{1, 20, 100, 200} {
			v := p.RewardAt(e)
			if math.IsNaN(v) || v < -500 || v > 300 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestLearnersEscapeFloorWithinBoundary verifies the §5.3 assumption
// behind the RL kill threshold: learning configurations escape the
// -100 floor within the first evaluation boundary (2,000 trials),
// so the kill rule prunes only genuine non-learners.
func TestLearnersEscapeFloorWithinBoundary(t *testing.T) {
	space := LunarLander().Space()
	spec := LunarLander()
	rng := rand.New(rand.NewSource(99))
	checked, escaped := 0, 0
	for i := 0; i < 400 && checked < 40; i++ {
		cfg := space.Sample(rng)
		p := NewLunarLanderProfile(space, cfg, int64(i))
		if !p.Learns {
			continue
		}
		checked++
		best := math.Inf(-1)
		for e := 1; e <= spec.EvalBoundary(); e++ {
			if v := p.RewardAt(e); v > best {
				best = v
			}
		}
		if best > spec.KillThreshold() {
			escaped++
		}
	}
	if checked == 0 {
		t.Fatal("no learners sampled")
	}
	frac := float64(escaped) / float64(checked)
	t.Logf("%d/%d learners escape -100 within the first boundary", escaped, checked)
	if frac < 0.9 {
		t.Fatalf("only %.0f%% of learners escape the floor in time; the kill rule would misfire", frac*100)
	}
}

// TestCIFARWinnersSurviveKillWindow is the supervised counterpart: no
// learnable configuration destined for the target should sit below the
// 15% kill threshold at the first boundary.
func TestCIFARWinnersSurviveKillWindow(t *testing.T) {
	space := CIFAR10().Space()
	spec := CIFAR10()
	rng := rand.New(rand.NewSource(98))
	winners, killed := 0, 0
	for i := 0; i < 3000; i++ {
		cfg := space.Sample(rng)
		p := NewCIFAR10Profile(space, cfg, int64(i))
		if !p.Learnable || p.Final < spec.Target() {
			continue
		}
		winners++
		best := 0.0
		for e := 1; e <= spec.EvalBoundary(); e++ {
			if v := p.AccuracyAt(e); v > best {
				best = v
			}
		}
		if best <= spec.KillThreshold() {
			killed++
		}
	}
	if winners == 0 {
		t.Fatal("no winners sampled")
	}
	t.Logf("%d/%d target-reaching configs would be killed at the first boundary", killed, winners)
	if float64(killed)/float64(winners) > 0.1 {
		t.Fatalf("kill threshold would destroy %d of %d winners", killed, winners)
	}
}
