// Package chaos is a deterministic fault-injection harness for the
// cluster transport: a net.Conn wrapper with scriptable delay, drop,
// and partition behaviour, driven by a seeded RNG so every failure
// schedule replays identically. The e2e chaos tests and the hdagent
// -chaos-* flags are its two consumers.
package chaos

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Options scripts one connection's faults. The zero value injects
// nothing.
type Options struct {
	// Seed drives the jitter RNG (0 means 1): same seed, same schedule.
	Seed int64
	// Delay is injected before every Read and Write.
	Delay time.Duration
	// Jitter spreads Delay by ± this fraction (0..1).
	Jitter float64
	// FailReadsAfter kills the connection after this many successful
	// Reads (0 = never): the next Read closes the transport and
	// returns an error, as a crashed peer would.
	FailReadsAfter int
	// FailWritesAfter is the same guillotine for Writes.
	FailWritesAfter int
}

// Conn wraps a net.Conn with the scripted faults. A partitioned Conn
// blackholes writes (they "succeed" but reach nobody) and blocks reads
// until Heal or Close — the classic gray failure a heartbeat must
// catch, since the TCP layer reports nothing wrong.
type Conn struct {
	inner net.Conn
	opts  Options

	mu       sync.Mutex
	rng      *rand.Rand
	reads    int
	writes   int
	part     chan struct{} // non-nil while partitioned; closed by Heal
	closed   chan struct{} // closed by Close
	closing  sync.Once
	injected time.Duration
}

// Wrap dresses nc in the fault script.
func Wrap(nc net.Conn, opts Options) *Conn {
	seed := opts.Seed
	if seed == 0 {
		seed = 1
	}
	return &Conn{
		inner:  nc,
		opts:   opts,
		rng:    rand.New(rand.NewSource(seed)),
		closed: make(chan struct{}),
	}
}

// Partition cuts the link without telling TCP: subsequent writes are
// silently discarded and reads block until Heal or Close.
func (c *Conn) Partition() {
	c.mu.Lock()
	if c.part == nil {
		c.part = make(chan struct{})
	}
	c.mu.Unlock()
}

// Heal ends a partition; blocked reads resume against the transport.
func (c *Conn) Heal() {
	c.mu.Lock()
	part := c.part
	c.part = nil
	c.mu.Unlock()
	if part != nil {
		close(part)
	}
}

// Partitioned reports whether the link is currently cut.
func (c *Conn) Partitioned() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.part != nil
}

// InjectedDelay totals the latency added so far.
func (c *Conn) InjectedDelay() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injected
}

// delay computes (and accounts) one injected latency sample; the sleep
// itself happens at the call site, outside the lock.
func (c *Conn) delay() time.Duration {
	if c.opts.Delay <= 0 {
		return 0
	}
	c.mu.Lock()
	d := c.opts.Delay
	if c.opts.Jitter > 0 {
		d = time.Duration(float64(d) * (1 + c.opts.Jitter*(2*c.rng.Float64()-1)))
	}
	c.injected += d
	c.mu.Unlock()
	return d
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	if d := c.delay(); d > 0 {
		time.Sleep(d)
	}
	c.mu.Lock()
	part := c.part
	c.mu.Unlock()
	if part != nil {
		select {
		case <-part: // healed
		case <-c.closed:
			return 0, net.ErrClosed
		}
	}
	c.mu.Lock()
	c.reads++
	kill := c.opts.FailReadsAfter > 0 && c.reads > c.opts.FailReadsAfter
	c.mu.Unlock()
	if kill {
		c.Close()
		return 0, fmt.Errorf("chaos: injected read failure after %d reads", c.opts.FailReadsAfter)
	}
	return c.inner.Read(p)
}

// Write implements net.Conn. Partitioned writes report success while
// delivering nothing.
func (c *Conn) Write(p []byte) (int, error) {
	if d := c.delay(); d > 0 {
		time.Sleep(d)
	}
	c.mu.Lock()
	partitioned := c.part != nil
	c.writes++
	kill := c.opts.FailWritesAfter > 0 && c.writes > c.opts.FailWritesAfter
	c.mu.Unlock()
	if kill {
		c.Close()
		return 0, fmt.Errorf("chaos: injected write failure after %d writes", c.opts.FailWritesAfter)
	}
	if partitioned {
		return len(p), nil
	}
	return c.inner.Write(p)
}

// Close implements net.Conn: releases partition-blocked readers and
// closes the transport.
func (c *Conn) Close() error {
	c.closing.Do(func() { close(c.closed) })
	return c.inner.Close()
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

var _ net.Conn = (*Conn)(nil)

// Listener wraps a net.Listener so every accepted connection carries
// the fault script, each with a seed derived from Options.Seed and the
// accept order (deterministic per connection, distinct across them).
type Listener struct {
	inner net.Listener
	opts  Options

	mu    sync.Mutex
	n     int64
	conns []*Conn
}

// NewListener wraps l.
func NewListener(l net.Listener, opts Options) *Listener {
	return &Listener{inner: l, opts: opts}
}

// Accept implements net.Listener.
func (l *Listener) Accept() (net.Conn, error) {
	nc, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	l.n++
	opts := l.opts
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	opts.Seed += l.n
	c := Wrap(nc, opts)
	l.conns = append(l.conns, c)
	l.mu.Unlock()
	return c, nil
}

// Close implements net.Listener.
func (l *Listener) Close() error { return l.inner.Close() }

// Addr implements net.Listener.
func (l *Listener) Addr() net.Addr { return l.inner.Addr() }

// Conns snapshots every connection accepted so far.
func (l *Listener) Conns() []*Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Conn(nil), l.conns...)
}

// PartitionAll cuts every accepted connection.
func (l *Listener) PartitionAll() {
	for _, c := range l.Conns() {
		c.Partition()
	}
}

// HealAll restores every accepted connection.
func (l *Listener) HealAll() {
	for _, c := range l.Conns() {
		c.Heal()
	}
}

var _ net.Listener = (*Listener)(nil)
