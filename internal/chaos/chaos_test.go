package chaos

import (
	"errors"
	"net"
	"testing"
	"time"
)

// A partitioned conn must blackhole writes: they report success
// immediately even though net.Pipe writes normally block until the
// peer reads.
func TestPartitionBlackholesWrites(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := Wrap(a, Options{})
	defer c.Close()
	c.Partition()
	if !c.Partitioned() {
		t.Fatal("Partitioned() = false after Partition()")
	}
	n, err := c.Write([]byte("lost"))
	if err != nil || n != 4 {
		t.Fatalf("partitioned Write = (%d, %v), want (4, nil)", n, err)
	}
}

// A partitioned read blocks until Heal, then resumes against the
// transport.
func TestPartitionBlocksReadsUntilHeal(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := Wrap(a, Options{})
	defer c.Close()
	c.Partition()

	type res struct {
		n   int
		err error
	}
	got := make(chan res, 1)
	go func() {
		buf := make([]byte, 8)
		n, err := c.Read(buf)
		got <- res{n, err}
	}()
	go func() {
		if _, err := b.Write([]byte("ok")); err != nil {
			t.Errorf("peer write: %v", err)
		}
	}()
	c.Heal()
	r := <-got
	if r.err != nil || r.n != 2 {
		t.Fatalf("post-heal Read = (%d, %v), want (2, nil)", r.n, r.err)
	}
}

// Close must release a partition-blocked reader with net.ErrClosed.
func TestCloseUnblocksPartitionedRead(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := Wrap(a, Options{})
	c.Partition()

	got := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 1))
		got <- err
	}()
	// Give the reader a moment to park on the partition gate, then cut.
	time.Sleep(10 * time.Millisecond)
	c.Close()
	if err := <-got; !errors.Is(err, net.ErrClosed) {
		t.Fatalf("Read after Close = %v, want net.ErrClosed", err)
	}
}

// FailReadsAfter kills the connection on the N+1th read, like a
// crashed peer.
func TestFailReadsAfter(t *testing.T) {
	a, b := net.Pipe()
	defer b.Close()
	c := Wrap(a, Options{FailReadsAfter: 1})
	go func() {
		if _, err := b.Write([]byte("x")); err != nil {
			t.Errorf("peer write: %v", err)
		}
	}()
	if _, err := c.Read(make([]byte, 1)); err != nil {
		t.Fatalf("first Read: %v", err)
	}
	if _, err := c.Read(make([]byte, 1)); err == nil {
		t.Fatal("second Read succeeded, want injected failure")
	}
	// The transport must be dead too.
	if _, err := b.Read(make([]byte, 1)); !errors.Is(err, net.ErrClosed) && err == nil {
		t.Fatalf("peer Read after injected failure: %v, want closed", err)
	}
}

// The same seed must produce the same delay schedule.
func TestDelayScheduleIsDeterministic(t *testing.T) {
	run := func(seed int64) time.Duration {
		a, b := net.Pipe()
		defer b.Close()
		c := Wrap(a, Options{Seed: seed, Delay: time.Microsecond, Jitter: 0.5})
		defer c.Close()
		c.Partition() // blackhole so writes return without a peer
		for i := 0; i < 16; i++ {
			if _, err := c.Write([]byte("x")); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
		return c.InjectedDelay()
	}
	if d1, d2 := run(7), run(7); d1 != d2 {
		t.Fatalf("same seed, different injected delay: %v vs %v", d1, d2)
	}
}

// Listener-accepted conns get distinct derived seeds, so their
// schedules differ while staying reproducible.
func TestListenerDerivesSeeds(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := NewListener(inner, Options{Seed: 42, Delay: time.Microsecond, Jitter: 0.9})
	defer l.Close()

	accepted := make(chan net.Conn, 2)
	go func() {
		for i := 0; i < 2; i++ {
			nc, err := l.Accept()
			if err != nil {
				t.Errorf("accept: %v", err)
				return
			}
			accepted <- nc
		}
	}()
	for i := 0; i < 2; i++ {
		nc, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer nc.Close()
	}
	c1 := (<-accepted).(*Conn)
	c2 := (<-accepted).(*Conn)
	defer c1.Close()
	defer c2.Close()
	if len(l.Conns()) != 2 {
		t.Fatalf("Conns() = %d, want 2", len(l.Conns()))
	}
	c1.Partition()
	c2.Partition()
	for i := 0; i < 32; i++ {
		if _, err := c1.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
		if _, err := c2.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if c1.InjectedDelay() == c2.InjectedDelay() {
		t.Fatal("two accepted conns share an identical delay schedule; seeds not derived per-conn")
	}
}
